#include "core/minimize.hpp"

#include <stdexcept>

#include "sim/simulator.hpp"

namespace trojanscout::core {

namespace {

/// Replays `witness` and reports whether `bad` is 1 at the violation frame.
bool still_violates(const netlist::Netlist& nl, netlist::SignalId bad,
                    const sim::Witness& witness) {
  sim::Simulator simulator(nl);
  for (std::size_t t = 0; t < witness.frames.size(); ++t) {
    simulator.set_inputs(witness.frames[t].bits);
    simulator.eval();
    if (t == witness.violation_frame) return simulator.value(bad);
    simulator.step();
  }
  return false;
}

}  // namespace

sim::Witness minimize_witness(const netlist::Netlist& nl,
                              netlist::SignalId bad,
                              const sim::Witness& witness,
                              MinimizeStats* stats) {
  MinimizeStats local;
  if (!still_violates(nl, bad, witness)) {
    throw std::invalid_argument("minimize_witness: witness does not violate");
  }
  local.simulations = 1;

  sim::Witness minimized = witness;
  const std::size_t n_inputs = nl.num_inputs();
  for (const auto& frame : minimized.frames) {
    local.bits_before += frame.bits.popcount();
    (void)frame;
  }

  // Greedy: clear one set bit at a time, latest frames first (late inputs
  // are the least likely to be load-bearing, so the violation frame's own
  // slack disappears quickly).
  for (std::size_t t = minimized.frames.size(); t-- > 0;) {
    auto& bits = minimized.frames[t].bits;
    for (std::size_t i = 0; i < n_inputs; ++i) {
      if (!bits.get(i)) continue;
      bits.set(i, false);
      local.simulations++;
      if (!still_violates(nl, bad, minimized)) {
        bits.set(i, true);  // load-bearing: restore
      }
    }
  }

  for (const auto& frame : minimized.frames) {
    local.bits_after += frame.bits.popcount();
  }
  if (stats != nullptr) *stats = local;
  return minimized;
}

}  // namespace trojanscout::core
