#include "core/telemetry_sink.hpp"

#include <cstdint>

#include "util/resource.hpp"

namespace trojanscout::core {

namespace {

/// FNV-1a over the report signature: a compact fingerprint that lets two
/// metrics files be compared for behavioural equality without embedding the
/// multi-line signature text itself.
std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::string witness_hex(const sim::Witness& witness) {
  std::string out;
  for (std::size_t i = 0; i < witness.frames.size(); ++i) {
    if (i > 0) out += ' ';
    out += witness.frames[i].bits.to_hex_string();
  }
  return out;
}

}  // namespace

void append_detection_report(telemetry::RunReport& report,
                             const std::string& design_name,
                             const std::string& engine,
                             const DetectionReport& detection,
                             double total_seconds) {
  for (const PropertyRun& run : detection.runs) {
    auto& rec = report.add("obligation");
    rec.set("design", design_name)
        .set("engine", engine)
        .set("property", run.property)
        .set("status", run.check.status)
        .set("violated", run.check.violated)
        .set("cancelled", run.check.cancelled)
        .set("bound_reached", run.check.bound_reached)
        .set("proven_unbounded", run.check.proven_unbounded)
        .set("engine_used", engine_flag_name(run.check.engine_used))
        .set("frames_completed", run.check.frames_completed);
    if (run.check.invariant.has_value()) {
      rec.set("invariant_clauses", run.check.invariant->clauses.size());
    }

    const EngineCounters& c = run.check.counters;
    rec.set("sat_decisions", c.sat.decisions)
        .set("sat_propagations", c.sat.propagations)
        .set("sat_conflicts", c.sat.conflicts)
        .set("sat_restarts", c.sat.restarts)
        .set("sat_learned_clauses", c.sat.learned_clauses)
        .set("cnf_vars", c.cnf_vars);
    std::vector<std::uint64_t> frame_clauses(c.frame_clauses.begin(),
                                             c.frame_clauses.end());
    rec.set("frame_clauses", std::move(frame_clauses));
    rec.set("atpg_decisions", c.atpg_decisions)
        .set("atpg_backtracks", c.atpg_backtracks)
        .set("atpg_implications", c.atpg_implications)
        .set("atpg_frames_proven_clean", c.atpg_frames_proven_clean)
        .set("atpg_frames_aborted", c.atpg_frames_aborted)
        .set("pdr_frames", c.pdr_frames)
        .set("pdr_pushed_clauses", c.pdr_pushed_clauses)
        .set("pdr_ctis", c.pdr_ctis)
        .set("pdr_obligations", c.pdr_obligations);

    if (run.check.witness) {
      rec.set("witness_frame", run.check.witness->violation_frame);
      rec.set("witness", witness_hex(*run.check.witness));
    }
    rec.set("seconds", run.check.seconds, /*timing=*/true);
    rec.set("memory_bytes", run.check.memory_bytes, /*timing=*/true);

    // One race summary per portfolio run. The winner is deterministic
    // (verdict strength + fixed priority); which losers got far enough to
    // be cancelled is wall-clock ordering, so the per-leg breakdown is
    // timing-flagged. Cache hits restore only the winning verdict and thus
    // emit no portfolio record — by design, not an omission.
    if (!run.check.portfolio.empty()) {
      auto& race = report.add("portfolio");
      race.set("design", design_name)
          .set("property", run.property)
          .set("winner", engine_flag_name(run.check.engine_used));
      for (const PortfolioOutcome& outcome : run.check.portfolio) {
        const std::string prefix = engine_flag_name(outcome.engine);
        race.set(prefix + ".status", outcome.status, /*timing=*/true);
        race.set(prefix + ".cancelled", outcome.cancelled, /*timing=*/true);
        race.set(prefix + ".seconds", outcome.seconds, /*timing=*/true);
      }
    }
  }

  auto& summary = report.add("summary");
  summary.set("design", design_name)
      .set("engine", engine)
      .set("trojan_found", detection.trojan_found)
      .set("findings", detection.findings.size())
      .set("certified_pseudo_critical",
           detection.certified_pseudo_critical.size())
      .set("obligations", detection.runs.size())
      .set("trust_bound_frames", detection.trust_bound_frames)
      .set("signature_fnv1a", fnv1a(detection.signature()))
      .set("total_seconds", total_seconds, /*timing=*/true)
      .set("peak_rss_bytes", util::peak_rss_bytes(), /*timing=*/true)
      .set("peak_rss_hwm_bytes", util::peak_rss_hwm_bytes(),
           /*timing=*/true);
}

void append_registry_snapshot(telemetry::RunReport& report,
                              const telemetry::Registry& registry) {
  const telemetry::Registry::Snapshot snap = registry.snapshot();
  auto& rec = report.add("counters");
  for (const auto& counter : snap.counters) {
    rec.set(counter.name, counter.value);
  }
  for (const auto& hist : snap.histograms) {
    rec.set(hist.name + ".count", hist.count);
    rec.set(hist.name + ".sum_seconds", hist.sum_seconds, /*timing=*/true);
    rec.set(hist.name + ".max_seconds", hist.max_seconds, /*timing=*/true);
  }
}

}  // namespace trojanscout::core
