// Bridges the detector's DetectionReport into telemetry::RunReport records.
//
// The telemetry library is deliberately core-agnostic (it knows nothing
// about obligations or witnesses); this sink owns the schema instead:
//   {"type":"obligation", ...}  one per property run, in merge order
//   {"type":"summary", ...}     one per detection report
//   {"type":"counters", ...}    one per Registry snapshot
// Field order is fixed here and validated by tools/check_metrics.py and the
// golden-schema test. Only wall-clock / memory fields are flagged timing,
// so to_jsonl(false) output is byte-identical across --jobs settings.
#pragma once

#include <string>

#include "core/detector.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/run_report.hpp"

namespace trojanscout::core {

/// Appends one "obligation" record per property run plus one "summary"
/// record for `detection`. `design_name` and `engine` label every record;
/// `total_seconds` (timing) is the caller's wall clock for the whole audit.
void append_detection_report(telemetry::RunReport& report,
                             const std::string& design_name,
                             const std::string& engine,
                             const DetectionReport& detection,
                             double total_seconds = 0.0);

/// Appends one "counters" record holding every counter of `registry`'s
/// current snapshot (sorted by name). Histogram timers are wall-clock data
/// and are flagged timing: histogram sample *counts* are kept (they are
/// deterministic), their durations are not serialized here.
void append_registry_snapshot(telemetry::RunReport& report,
                              const telemetry::Registry& registry);

}  // namespace trojanscout::core
