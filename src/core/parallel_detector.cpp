#include "core/parallel_detector.hpp"

#include <utility>
#include <vector>

#include "telemetry/progress.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/span.hpp"
#include "util/logging.hpp"
#include "util/thread_pool.hpp"

namespace trojanscout::core {

ParallelDetector::ParallelDetector(const designs::Design& design,
                                   ParallelDetectorOptions options)
    : design_(design), options_(std::move(options)) {}

DetectionReport ParallelDetector::run() {
  // Root span for the whole audit; obligation spans running on pool workers
  // attach to it by explicit id (the thread-local span stack does not cross
  // threads).
  telemetry::Span audit_span("audit");
  const std::uint64_t audit_id = audit_span.id();
  // The merge detector sees the caller's options verbatim; the worker
  // detector additionally carries the shared cancellation flag (only armed
  // in fail_fast mode so a plain run cannot depend on it).
  TrojanDetector merger(design_, options_.detector);
  const std::vector<Obligation> obligations = merger.enumerate_obligations();

  util::CancellationToken cancel;
  DetectorOptions worker_options = options_.detector;
  if (options_.fail_fast) {
    worker_options.engine.cancel = cancel.flag();
  }
  const TrojanDetector worker(design_, worker_options);

  // The shared netlist's fanout cache is materialized before workers start
  // copying the design concurrently (every engine run begins with a copy).
  (void)design_.nl.fanouts();

  telemetry::ProgressReporter* reporter = telemetry::ProgressReporter::global();
  if (reporter != nullptr) reporter->add_planned(obligations.size());

  std::vector<CheckResult> results(obligations.size());
  {
    util::ThreadPool pool(options_.jobs);
    for (std::size_t i = 0; i < obligations.size(); ++i) {
      pool.submit([this, &worker, &obligations, &results, &cancel, audit_id,
                   reporter, i] {
        if (options_.fail_fast && cancel.cancelled()) {
          results[i].status = "cancelled";
          results[i].cancelled = true;
          return;
        }
        telemetry::Span span("obligation:" + obligations[i].property_name(),
                             audit_id);
        TS_COUNTER_ADD("detector.obligations", 1);
        // A store hit serves the verdict without any engine run; a miss
        // computes and feeds the store. Either way the result still flows
        // through the fail-fast classification below, so a cached finding
        // cancels outstanding obligations exactly like a fresh one.
        const bool hit = options_.store != nullptr &&
                         options_.store->lookup(obligations[i], results[i]);
        if (hit) {
          if (reporter != nullptr) {
            // Keep the heartbeat's done/planned tally honest.
            reporter->begin(obligations[i].property_name())->finish();
          }
        } else {
          std::shared_ptr<telemetry::ProgressReporter::Task> task;
          EngineOptions engine = worker.options().engine;
          if (reporter != nullptr) {
            task = reporter->begin(obligations[i].property_name());
            engine.progress = &task->cells;
          }
          results[i] = worker.run_obligation(obligations[i], engine);
          if (task != nullptr) task->finish();
          if (options_.store != nullptr) {
            options_.store->store(obligations[i], results[i]);
          }
        }
        if (options_.fail_fast &&
            worker.is_finding(obligations[i], results[i])) {
          TS_LOG_INFO("parallel-detector: fail-fast cancel after %s",
                      obligations[i].property_name().c_str());
          cancel.cancel();
        }
      });
    }
    pool.wait_idle();
  }

  DetectionReport report;
  report.trust_bound_frames = options_.detector.engine.max_frames;
  for (std::size_t i = 0; i < obligations.size(); ++i) {
    merger.merge_obligation(report, obligations[i], results[i]);
  }
  return report;
}

}  // namespace trojanscout::core
