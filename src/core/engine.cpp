#include "core/engine.hpp"

namespace trojanscout::core {

const char* engine_name(EngineKind kind) {
  return kind == EngineKind::kBmc ? "BMC" : "ATPG";
}

CheckResult run_engine(const netlist::Netlist& nl, netlist::SignalId bad,
                       const EngineOptions& options) {
  CheckResult result;
  if (options.kind == EngineKind::kBmc) {
    bmc::BmcOptions bo;
    bo.max_frames = options.max_frames;
    bo.time_limit_seconds = options.time_limit_seconds;
    bo.solver = options.solver;
    bo.cancel = options.cancel;
    bo.proof = options.proof;
    bmc::BmcResult r = bmc::check_bad_signal(nl, bad, bo);
    result.violated = r.violated();
    result.bound_reached = r.status == bmc::BmcStatus::kBoundReached;
    result.witness = std::move(r.witness);
    result.frames_completed = r.frames_completed;
    result.seconds = r.seconds;
    result.memory_bytes = r.memory_bytes;
    result.cancelled = r.cancelled;
    result.status = r.cancelled ? "cancelled" : r.status_name();
  } else {
    atpg::AtpgOptions ao;
    ao.max_frames = options.max_frames;
    ao.time_limit_seconds = options.time_limit_seconds;
    ao.backtrack_limit_per_frame = options.atpg_backtrack_limit;
    ao.use_scoap_guidance = options.atpg_use_scoap;
    ao.stimulus_sequences = options.atpg_stimulus;
    ao.random_sequences = options.atpg_random_sequences;
    ao.cancel = options.cancel;
    atpg::AtpgResult r = atpg::check_bad_signal(nl, bad, ao);
    result.violated = r.violated();
    result.bound_reached = r.status == atpg::AtpgStatus::kBoundReached;
    result.witness = std::move(r.witness);
    result.frames_completed = r.frames_completed;
    result.seconds = r.seconds;
    result.memory_bytes = r.memory_bytes;
    result.cancelled = r.cancelled;
    result.status = r.cancelled ? "cancelled" : r.status_name();
  }
  return result;
}

}  // namespace trojanscout::core
