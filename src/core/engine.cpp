#include "core/engine.hpp"

#include "portfolio/portfolio.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/timer.hpp"

namespace trojanscout::core {

CheckResult run_engine(const netlist::Netlist& nl, netlist::SignalId bad,
                       const EngineOptions& options) {
  TS_COUNTER_ADD("engine.runs", 1);
  TS_SCOPED_TIMER("engine.run_seconds");
  if (options.kind == EngineKind::kPortfolio) {
    return portfolio::race(nl, bad, options);
  }
  return portfolio::run_single(nl, bad, options, options.kind);
}

}  // namespace trojanscout::core
