#include "core/engine.hpp"

#include "telemetry/registry.hpp"
#include "telemetry/span.hpp"
#include "telemetry/timer.hpp"

namespace trojanscout::core {

const char* engine_name(EngineKind kind) {
  return kind == EngineKind::kBmc ? "BMC" : "ATPG";
}

CheckResult run_engine(const netlist::Netlist& nl, netlist::SignalId bad,
                       const EngineOptions& options) {
  CheckResult result;
  TS_COUNTER_ADD("engine.runs", 1);
  TS_SCOPED_TIMER("engine.run_seconds");
  if (options.kind == EngineKind::kBmc) {
    telemetry::Span span("engine:bmc");
    bmc::BmcOptions bo;
    bo.max_frames = options.max_frames;
    bo.time_limit_seconds = options.time_limit_seconds;
    bo.solver = options.solver;
    bo.cancel = options.cancel;
    bo.proof = options.proof;
    bo.progress = options.progress;
    bmc::BmcResult r = bmc::check_bad_signal(nl, bad, bo);
    result.violated = r.violated();
    result.bound_reached = r.status == bmc::BmcStatus::kBoundReached;
    result.witness = std::move(r.witness);
    result.frames_completed = r.frames_completed;
    result.seconds = r.seconds;
    result.memory_bytes = r.memory_bytes;
    result.cancelled = r.cancelled;
    result.status = r.cancelled ? "cancelled" : r.status_name();
    result.counters.sat = r.sat_stats;
    result.counters.cnf_vars = r.vars;
    result.counters.frame_clauses = std::move(r.frame_clauses);
    result.counters.flight = std::move(r.flight);
  } else {
    telemetry::Span span("engine:atpg");
    atpg::AtpgOptions ao;
    ao.max_frames = options.max_frames;
    ao.time_limit_seconds = options.time_limit_seconds;
    ao.backtrack_limit_per_frame = options.atpg_backtrack_limit;
    ao.use_scoap_guidance = options.atpg_use_scoap;
    ao.stimulus_sequences = options.atpg_stimulus;
    ao.random_sequences = options.atpg_random_sequences;
    ao.cancel = options.cancel;
    ao.progress = options.progress;
    atpg::AtpgResult r = atpg::check_bad_signal(nl, bad, ao);
    result.violated = r.violated();
    result.bound_reached = r.status == atpg::AtpgStatus::kBoundReached;
    result.witness = std::move(r.witness);
    result.frames_completed = r.frames_completed;
    result.seconds = r.seconds;
    result.memory_bytes = r.memory_bytes;
    result.cancelled = r.cancelled;
    result.status = r.cancelled ? "cancelled" : r.status_name();
    result.counters.atpg_decisions = r.decisions;
    result.counters.atpg_backtracks = r.backtracks;
    result.counters.atpg_implications = r.implications;
    result.counters.atpg_frames_proven_clean = r.frames_proven_clean;
    result.counters.atpg_frames_aborted = r.frames_aborted;
    result.counters.flight = std::move(r.flight);
  }
  return result;
}

}  // namespace trojanscout::core
