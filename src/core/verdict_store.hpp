// Abstract per-obligation verdict store consulted by the schedulers.
//
// Algorithm 1's obligations are pure functions of (netlist, property,
// engine configuration), which makes their CheckResults cacheable. The
// core library stays storage-agnostic: ParallelDetector (and
// proof::certify) only see this interface, while cache::AuditVerdictStore
// binds it to the persistent content-addressed store in src/cache —
// keeping the dependency arrow cache -> core, never the reverse.
#pragma once

namespace trojanscout::core {

struct Obligation;
struct CheckResult;

class VerdictStore {
 public:
  virtual ~VerdictStore() = default;

  /// Fills `out` and returns true when a previously computed verdict for
  /// this obligation exists. Must be thread-safe: the parallel scheduler
  /// calls it from worker threads.
  virtual bool lookup(const Obligation& obligation, CheckResult& out) = 0;

  /// Persists a freshly computed verdict. Implementations must ignore
  /// cancelled results (a cancelled run is not a verdict). Thread-safe.
  virtual void store(const Obligation& obligation,
                     const CheckResult& result) = 0;
};

}  // namespace trojanscout::core
