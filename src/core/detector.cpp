#include "core/detector.hpp"

#include <algorithm>
#include <memory>
#include <sstream>

#include "properties/miter.hpp"
#include "sim/simulator.hpp"
#include "telemetry/progress.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/span.hpp"
#include "util/bitvec.hpp"
#include "util/logging.hpp"

namespace trojanscout::core {

using designs::Design;
using netlist::Netlist;
using netlist::SignalId;

const char* finding_kind_name(FindingKind kind) {
  switch (kind) {
    case FindingKind::kCorruption:
      return "data-corruption";
    case FindingKind::kPseudoCritical:
      return "pseudo-critical-corruption";
    case FindingKind::kBypass:
      return "bypass";
  }
  return "?";
}

std::string DetectionReport::summary() const {
  std::ostringstream os;
  if (trojan_found) {
    os << "TROJAN FOUND: ";
    for (const auto& f : findings) {
      os << finding_kind_name(f.kind) << " on " << f.register_name;
      if (!f.candidate_register.empty()) {
        os << " (via " << f.candidate_register << ")";
      }
      os << " at cycle " << (f.check.witness ? f.check.witness->violation_frame
                                             : 0)
         << "; ";
    }
  } else {
    os << "No data-corruption Trojan found for " << trust_bound_frames
       << " clock cycles";
  }
  return os.str();
}

std::string Obligation::property_name() const {
  switch (kind) {
    case Kind::kPseudo:
      return "pseudo(" + reg + "," + candidate + ")";
    case Kind::kCorruption:
      return "corruption(" + reg + ")";
    case Kind::kBypass:
      return "bypass(" + reg + ")";
  }
  return "?";
}

std::string DetectionReport::signature() const {
  std::ostringstream os;
  os << "trojan_found=" << trojan_found
     << " trust_bound=" << trust_bound_frames << "\n";
  for (const auto& run : runs) {
    os << "run " << run.property << " status=" << run.check.status
       << " violated=" << run.check.violated
       << " bound_reached=" << run.check.bound_reached
       << " frames=" << run.check.frames_completed;
    if (run.check.witness) {
      const auto& w = *run.check.witness;
      os << " witness@" << w.violation_frame << ":";
      for (const auto& frame : w.frames) {
        os << " " << frame.bits.to_hex_string();
      }
    }
    os << "\n";
  }
  for (const auto& f : findings) {
    os << "finding " << finding_kind_name(f.kind) << " " << f.register_name;
    if (!f.candidate_register.empty()) os << " via " << f.candidate_register;
    os << "\n";
  }
  for (const auto& reg : certified_pseudo_critical) {
    os << "certified " << reg << "\n";
  }
  return os.str();
}

TrojanDetector::TrojanDetector(const Design& design, DetectorOptions options)
    : design_(design), options_(std::move(options)) {}

CheckResult TrojanDetector::check_corruption(const std::string& reg) const {
  Design scratch = design_;  // monitors are appended to a throwaway copy
  const auto* spec = scratch.spec.find(reg);
  if (spec == nullptr) {
    throw std::invalid_argument("check_corruption: no valid-ways spec for " +
                                reg);
  }
  const SignalId bad = properties::build_corruption_monitor(
      scratch.nl, *spec, options_.monitor_kind);
  return run_engine(scratch.nl, bad, options_.engine);
}

CheckResult TrojanDetector::check_pseudo_pair(
    const std::string& critical_reg, const std::string& candidate_reg,
    properties::PseudoPolarity polarity, bool candidate_leads) const {
  Design scratch = design_;
  const SignalId bad = properties::build_pseudo_critical_monitor(
      scratch.nl, critical_reg, candidate_reg, polarity, candidate_leads);
  return run_engine(scratch.nl, bad, options_.engine);
}

CheckResult TrojanDetector::check_bypass(const std::string& reg) const {
  const auto* spec = design_.spec.find(reg);
  if (spec == nullptr || spec->obligations.empty()) {
    throw std::invalid_argument(
        "check_bypass: register " + reg +
        " has no observability obligations in the spec");
  }
  properties::BypassMiter miter =
      properties::build_bypass_miter(design_.nl, *spec);
  return run_engine(miter.nl, miter.bad, options_.engine);
}

std::vector<std::string> TrojanDetector::pseudo_candidates(
    const std::string& reg) const {
  const auto& critical = design_.nl.find_register(reg);
  std::vector<std::string> out;
  for (const auto& r : design_.nl.registers()) {
    if (r.name == reg) continue;
    if (r.dffs.size() != critical.dffs.size()) continue;
    out.push_back(r.name);
  }
  return out;
}

std::vector<Obligation> TrojanDetector::enumerate_obligations() const {
  std::vector<Obligation> obligations;

  // Step 1 (Algorithm 1, inner loop): pseudo-critical scan pairs.
  if (options_.scan_pseudo_critical) {
    for (const std::string& reg : design_.critical_registers) {
      for (const std::string& candidate : pseudo_candidates(reg)) {
        obligations.push_back(
            {Obligation::Kind::kPseudo, reg, candidate});
      }
    }
  }

  // Step 2: no-data-corruption check per critical register with a spec.
  for (const std::string& reg : design_.critical_registers) {
    if (design_.spec.find(reg) == nullptr) continue;
    obligations.push_back({Obligation::Kind::kCorruption, reg, {}});
  }

  // Step 3: bypass check where the spec supports it.
  if (options_.check_bypass) {
    for (const std::string& reg : design_.critical_registers) {
      const auto* spec = design_.spec.find(reg);
      if (spec == nullptr || spec->obligations.empty()) continue;
      obligations.push_back({Obligation::Kind::kBypass, reg, {}});
    }
  }

  return obligations;
}

TrojanDetector::InstrumentedProperty TrojanDetector::instrument_obligation(
    const Obligation& obligation) const {
  switch (obligation.kind) {
    case Obligation::Kind::kPseudo: {
      Design scratch = design_;
      const SignalId bad = properties::build_pseudo_critical_monitor(
          scratch.nl, obligation.reg, obligation.candidate,
          properties::PseudoPolarity::kIdentity, /*candidate_leads=*/false);
      return {std::move(scratch.nl), bad};
    }
    case Obligation::Kind::kCorruption: {
      Design scratch = design_;
      const auto* spec = scratch.spec.find(obligation.reg);
      if (spec == nullptr) {
        throw std::invalid_argument(
            "instrument_obligation: no valid-ways spec for " + obligation.reg);
      }
      const SignalId bad = properties::build_corruption_monitor(
          scratch.nl, *spec, options_.monitor_kind);
      return {std::move(scratch.nl), bad};
    }
    case Obligation::Kind::kBypass: {
      const auto* spec = design_.spec.find(obligation.reg);
      if (spec == nullptr || spec->obligations.empty()) {
        throw std::invalid_argument(
            "instrument_obligation: register " + obligation.reg +
            " has no observability obligations in the spec");
      }
      properties::BypassMiter miter =
          properties::build_bypass_miter(design_.nl, *spec);
      return {std::move(miter.nl), miter.bad};
    }
  }
  throw std::logic_error("instrument_obligation: bad obligation kind");
}

CheckResult TrojanDetector::run_obligation(const Obligation& obligation,
                                           const EngineOptions& engine) const {
  const InstrumentedProperty property = instrument_obligation(obligation);
  return run_engine(property.nl, property.bad, engine);
}

CheckResult TrojanDetector::run_obligation(const Obligation& obligation) const {
  return run_obligation(obligation, options_.engine);
}

bool TrojanDetector::pseudo_violation_is_trojan(
    const Obligation& obligation, const CheckResult& check) const {
  // Deviation found: a Trojan if the candidate mirrored faithfully before
  // the violation (see header note). The monitor compares latched values,
  // so the corrupted value is already visible one frame before the
  // reported violation: the faithful-mirror window is t in
  // [1, violation_frame - 2].
  const auto& witness = *check.witness;
  if (witness.violation_frame < options_.min_pseudo_violation_depth) {
    return false;  // unrelated register pair (diverges trivially)
  }
  telemetry::Span span("witness:replay");
  TS_COUNTER_ADD("detector.witness_replays", 1);
  const auto cand_trace =
      sim::replay_register(design_.nl, witness, obligation.candidate);
  const auto crit_trace =
      sim::replay_register(design_.nl, witness, obligation.reg);
  std::size_t mirrored = 0;
  std::size_t window = 0;
  for (std::size_t t = 1; t + 1 < witness.violation_frame; ++t) {
    ++window;
    if (cand_trace[t] == crit_trace[t - 1]) ++mirrored;
  }
  double fraction = 0.0;
  if (window > 0) {
    fraction = static_cast<double>(mirrored) / static_cast<double>(window);
  } else {
    // Empty window (trigger fired immediately): fall back to the
    // reset-state relation.
    const auto& crit_dffs = design_.nl.find_register(obligation.reg).dffs;
    util::BitVec crit_init(crit_dffs.size());
    for (std::size_t i = 0; i < crit_dffs.size(); ++i) {
      crit_init.set(i, design_.nl.gate(crit_dffs[i]).init);
    }
    fraction = cand_trace[0] == crit_init ? 1.0 : 0.0;
  }
  return fraction >= options_.mirror_threshold;
}

bool TrojanDetector::is_finding(const Obligation& obligation,
                                const CheckResult& check) const {
  if (!check.violated) return false;
  if (obligation.kind == Obligation::Kind::kPseudo) {
    return pseudo_violation_is_trojan(obligation, check);
  }
  return true;
}

void TrojanDetector::merge_obligation(DetectionReport& report,
                                      const Obligation& obligation,
                                      const CheckResult& check) const {
  report.runs.push_back({obligation.property_name(), check});

  auto note_bound = [&report](const CheckResult& c) {
    // A cancelled run certifies nothing — it must not drag the trust bound
    // to its (arbitrary) abandonment frame.
    if (!c.violated && !c.cancelled) {
      report.trust_bound_frames =
          std::min(report.trust_bound_frames, c.frames_completed);
    }
  };

  if (obligation.kind == Obligation::Kind::kPseudo) {
    if (!check.violated) {
      if (!check.cancelled) {
        // Mirrors within the bound: certified pseudo-critical. Its Eq. (2)
        // check is exactly the mirror relation just certified.
        report.certified_pseudo_critical.push_back(obligation.candidate);
        TS_LOG_INFO("detector: %s certified pseudo-critical for %s",
                    obligation.candidate.c_str(), obligation.reg.c_str());
      }
      note_bound(check);
      return;
    }
    if (!pseudo_violation_is_trojan(obligation, check)) return;
    Finding finding;
    finding.kind = FindingKind::kPseudoCritical;
    finding.register_name = obligation.reg;
    finding.candidate_register = obligation.candidate;
    finding.check = check;
    report.findings.push_back(std::move(finding));
    report.trojan_found = true;
    return;
  }

  note_bound(check);
  if (!check.violated) return;
  Finding finding;
  finding.kind = obligation.kind == Obligation::Kind::kCorruption
                     ? FindingKind::kCorruption
                     : FindingKind::kBypass;
  finding.register_name = obligation.reg;
  finding.check = check;
  report.findings.push_back(std::move(finding));
  report.trojan_found = true;
}

DetectionReport TrojanDetector::run() {
  telemetry::Span audit_span("audit");
  DetectionReport report;
  report.trust_bound_frames = options_.engine.max_frames;
  telemetry::ProgressReporter* reporter = telemetry::ProgressReporter::global();
  const std::vector<Obligation> obligations = enumerate_obligations();
  if (reporter != nullptr) reporter->add_planned(obligations.size());
  for (const Obligation& obligation : obligations) {
    CheckResult check;
    {
      telemetry::Span span("obligation:" + obligation.property_name());
      TS_COUNTER_ADD("detector.obligations", 1);
      std::shared_ptr<telemetry::ProgressReporter::Task> task;
      EngineOptions engine = options_.engine;
      if (reporter != nullptr) {
        task = reporter->begin(obligation.property_name());
        engine.progress = &task->cells;
      }
      check = run_obligation(obligation, engine);
      if (task != nullptr) task->finish();
    }
    merge_obligation(report, obligation, check);
  }
  return report;
}

}  // namespace trojanscout::core
