// Parallel property scheduler for Algorithm 1.
//
// Algorithm 1's obligations — one Eq. 3 pseudo-critical check per candidate
// pair, one Eq. 2 corruption check per critical register, one Eq. 4 bypass
// check per observability spec — are independent: each engine run works on
// its own copy of the design and shares nothing but the read-only netlist.
// The scheduler enumerates every obligation up front, executes them on a
// work-stealing thread pool, and merges the results in enumeration order,
// so the DetectionReport is byte-identical (see DetectionReport::signature)
// to TrojanDetector::run() regardless of the jobs count or completion order.
//
// fail_fast mode trades that determinism for latency: the first obligation
// classified as a Trojan finding cancels all outstanding engine runs
// cooperatively (cancelled runs appear in the report with status
// "cancelled" and do not contribute to the trust bound). The finding that
// triggered the cancellation is always retained.
#pragma once

#include <cstddef>

#include "core/detector.hpp"
#include "core/verdict_store.hpp"

namespace trojanscout::core {

struct ParallelDetectorOptions {
  DetectorOptions detector;
  /// Worker threads; 0 = one per hardware thread.
  std::size_t jobs = 0;
  /// Cancel outstanding obligations after the first Trojan finding.
  bool fail_fast = false;
  /// Optional verdict store consulted before each obligation's engine run
  /// and fed with every freshly computed (non-cancelled) result. A hit
  /// skips the engine entirely — same report, zero solves. Must outlive
  /// run(); null disables caching.
  VerdictStore* store = nullptr;
};

class ParallelDetector {
 public:
  ParallelDetector(const designs::Design& design,
                   ParallelDetectorOptions options);

  /// Runs Algorithm 1 with all obligations scheduled across the pool.
  DetectionReport run();

 private:
  const designs::Design& design_;
  ParallelDetectorOptions options_;
};

}  // namespace trojanscout::core
