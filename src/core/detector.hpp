// TrojanDetector: the paper's Algorithm 1.
//
// Given a design, its valid-ways spec, and the list of critical registers,
// the detector:
//   1. scans all other registers for pseudo-critical relations to each
//      critical register (Eq. 3) and widens the critical set;
//   2. checks each critical register for data corruption (Eq. 2) with the
//      selected engine, reporting the witness (trigger sequence) on a hit;
//   3. checks each critical register for bypass behaviour (Eq. 4) when the
//      spec carries observability obligations.
//
// A subtlety the paper glosses over (Section 4.1): on a design carrying the
// pseudo-critical attack, the Eq. 3 relation itself is violated *by the
// Trojan trigger* — the shadow register mirrors the critical register in
// normal operation and deviates exactly when the payload fires. The
// detector therefore treats an Eq. 3 counterexample on a pair that mirrored
// faithfully up to the violation as a Trojan finding in its own right (the
// witness is the trigger), and an unviolated Eq. 3 bound as certification
// that the candidate is pseudo-critical (it is then checked with Eq. 2 via
// its mirror relation).
#pragma once

#include <string>
#include <vector>

#include "core/engine.hpp"
#include "designs/design.hpp"
#include "properties/monitors.hpp"

namespace trojanscout::core {

enum class FindingKind {
  kCorruption,       // Eq. 2 violated: register corrupted outside valid ways
  kPseudoCritical,   // Eq. 3 violated after faithful mirroring: shadow corrupted
  kBypass,           // Eq. 4 violated: register bypassed
};

const char* finding_kind_name(FindingKind kind);

struct Finding {
  FindingKind kind = FindingKind::kCorruption;
  /// Critical register involved; for kPseudoCritical also the candidate.
  std::string register_name;
  std::string candidate_register;
  CheckResult check;
};

struct PropertyRun {
  std::string property;  // "corruption(R)", "pseudo(R,P)", "bypass(R)"
  CheckResult check;
};

struct DetectionReport {
  bool trojan_found = false;
  std::vector<Finding> findings;
  /// Every property run executed (for the experiment tables).
  std::vector<PropertyRun> runs;
  /// Registers certified pseudo-critical within the bound.
  std::vector<std::string> certified_pseudo_critical;
  /// The trustworthiness bound actually achieved (min frames over runs that
  /// completed without violation).
  std::size_t trust_bound_frames = 0;

  [[nodiscard]] std::string summary() const;
};

struct DetectorOptions {
  EngineOptions engine;
  properties::CorruptionMonitorKind monitor_kind =
      properties::CorruptionMonitorKind::kExact;
  /// Scan for pseudo-critical registers among same-width registers
  /// (Algorithm 1 line 1). Disable to check only the given critical set.
  bool scan_pseudo_critical = true;
  /// Run the Eq. 4 bypass check for registers with obligations.
  bool check_bypass = true;
  /// Fraction of pre-violation cycles in which the candidate must have
  /// mirrored the critical register for an Eq. 3 counterexample to count as
  /// a pseudo-critical Trojan finding.
  double mirror_threshold = 0.8;
  /// Minimum depth of the earliest Eq. 3 violation for the pair to count as
  /// a Trojan finding: unrelated register pairs diverge within a cycle or
  /// two under adversarial inputs, while a corrupted shadow register only
  /// deviates once its trigger sequence completes.
  std::size_t min_pseudo_violation_depth = 4;
};

class TrojanDetector {
 public:
  TrojanDetector(const designs::Design& design, DetectorOptions options);

  /// Runs Algorithm 1 end to end.
  DetectionReport run();

  // Individual steps, usable à la carte (the bench harnesses call these).
  CheckResult check_corruption(const std::string& reg) const;
  CheckResult check_pseudo_pair(const std::string& critical_reg,
                                const std::string& candidate_reg,
                                properties::PseudoPolarity polarity,
                                bool candidate_leads) const;
  CheckResult check_bypass(const std::string& reg) const;

  /// Candidate registers worth scanning for a pseudo-critical relation to
  /// `reg`: same width, not the register itself, not tiny control state.
  std::vector<std::string> pseudo_candidates(const std::string& reg) const;

 private:
  const designs::Design& design_;
  DetectorOptions options_;
};

}  // namespace trojanscout::core
