// TrojanDetector: the paper's Algorithm 1.
//
// Given a design, its valid-ways spec, and the list of critical registers,
// the detector:
//   1. scans all other registers for pseudo-critical relations to each
//      critical register (Eq. 3) and widens the critical set;
//   2. checks each critical register for data corruption (Eq. 2) with the
//      selected engine, reporting the witness (trigger sequence) on a hit;
//   3. checks each critical register for bypass behaviour (Eq. 4) when the
//      spec carries observability obligations.
//
// A subtlety the paper glosses over (Section 4.1): on a design carrying the
// pseudo-critical attack, the Eq. 3 relation itself is violated *by the
// Trojan trigger* — the shadow register mirrors the critical register in
// normal operation and deviates exactly when the payload fires. The
// detector therefore treats an Eq. 3 counterexample on a pair that mirrored
// faithfully up to the violation as a Trojan finding in its own right (the
// witness is the trigger), and an unviolated Eq. 3 bound as certification
// that the candidate is pseudo-critical (it is then checked with Eq. 2 via
// its mirror relation).
#pragma once

#include <string>
#include <vector>

#include "core/engine.hpp"
#include "designs/design.hpp"
#include "properties/monitors.hpp"

namespace trojanscout::core {

enum class FindingKind {
  kCorruption,       // Eq. 2 violated: register corrupted outside valid ways
  kPseudoCritical,   // Eq. 3 violated after faithful mirroring: shadow corrupted
  kBypass,           // Eq. 4 violated: register bypassed
};

const char* finding_kind_name(FindingKind kind);

struct Finding {
  FindingKind kind = FindingKind::kCorruption;
  /// Critical register involved; for kPseudoCritical also the candidate.
  std::string register_name;
  std::string candidate_register;
  CheckResult check;
};

struct PropertyRun {
  std::string property;  // "corruption(R)", "pseudo(R,P)", "bypass(R)"
  CheckResult check;
};

struct DetectionReport {
  bool trojan_found = false;
  std::vector<Finding> findings;
  /// Every property run executed (for the experiment tables).
  std::vector<PropertyRun> runs;
  /// Registers certified pseudo-critical within the bound.
  std::vector<std::string> certified_pseudo_critical;
  /// The trustworthiness bound actually achieved (min frames over runs that
  /// completed without violation).
  std::size_t trust_bound_frames = 0;

  [[nodiscard]] std::string summary() const;

  /// Canonical text form of everything deterministic in the report: run
  /// order, statuses, witness input bits, findings, certifications, trust
  /// bound. Wall-clock and memory fields are excluded, so two runs of the
  /// same detection — serial or parallel, any jobs count — must produce
  /// byte-identical signatures. The equivalence tests and the scaling
  /// bench diff this string.
  [[nodiscard]] std::string signature() const;
};

struct DetectorOptions {
  EngineOptions engine;
  properties::CorruptionMonitorKind monitor_kind =
      properties::CorruptionMonitorKind::kExact;
  /// Scan for pseudo-critical registers among same-width registers
  /// (Algorithm 1 line 1). Disable to check only the given critical set.
  bool scan_pseudo_critical = true;
  /// Run the Eq. 4 bypass check for registers with obligations.
  bool check_bypass = true;
  /// Fraction of pre-violation cycles in which the candidate must have
  /// mirrored the critical register for an Eq. 3 counterexample to count as
  /// a pseudo-critical Trojan finding.
  double mirror_threshold = 0.8;
  /// Minimum depth of the earliest Eq. 3 violation for the pair to count as
  /// a Trojan finding: unrelated register pairs diverge within a cycle or
  /// two under adversarial inputs, while a corrupted shadow register only
  /// deviates once its trigger sequence completes.
  std::size_t min_pseudo_violation_depth = 4;
};

/// One property obligation of Algorithm 1: an independent engine run whose
/// outcome feeds the report. Obligations share nothing but the read-only
/// design, which is what makes them safe to execute on worker threads.
struct Obligation {
  enum class Kind { kPseudo, kCorruption, kBypass };
  Kind kind = Kind::kCorruption;
  std::string reg;        // critical register
  std::string candidate;  // kPseudo only: the scanned same-width register

  /// "corruption(R)" / "pseudo(R,P)" / "bypass(R)" — the PropertyRun label.
  [[nodiscard]] std::string property_name() const;
};

class TrojanDetector {
 public:
  TrojanDetector(const designs::Design& design, DetectorOptions options);

  /// Runs Algorithm 1 end to end (serially; see core::ParallelDetector for
  /// the multi-threaded scheduler producing the identical report).
  DetectionReport run();

  // -- obligation API (the parallel scheduler is built on these) -----------

  /// All property obligations Algorithm 1 would check, in the canonical
  /// order: Eq. 3 pseudo-critical pairs per critical register, then Eq. 2
  /// corruption per critical register with a spec, then Eq. 4 bypass where
  /// the spec carries obligations. Deterministic for a given design.
  [[nodiscard]] std::vector<Obligation> enumerate_obligations() const;

  /// Executes one obligation's engine run. Thread-safe: works on a private
  /// copy of the design and touches no detector state.
  [[nodiscard]] CheckResult run_obligation(const Obligation& obligation) const;

  /// Same, but with caller-supplied engine options (the certificate layer
  /// attaches a per-obligation proof listener this way). Thread-safe.
  [[nodiscard]] CheckResult run_obligation(const Obligation& obligation,
                                           const EngineOptions& engine) const;

  /// The monitored netlist an obligation's engine run executes on: a copy
  /// of the design with the property monitor appended (for kBypass, the
  /// fork miter), plus its bad signal. Deterministic for a given design and
  /// obligation — the certificate checker rebuilds it independently to
  /// replay witnesses and re-derive CNF. Thread-safe.
  struct InstrumentedProperty {
    netlist::Netlist nl;
    netlist::SignalId bad = netlist::kNullSignal;
  };
  [[nodiscard]] InstrumentedProperty instrument_obligation(
      const Obligation& obligation) const;

  /// Folds one obligation's result into the report (run log, trust bound,
  /// certification, finding classification). Must be called in
  /// enumerate_obligations() order for a deterministic report; not
  /// thread-safe (merge on one thread).
  void merge_obligation(DetectionReport& report, const Obligation& obligation,
                        const CheckResult& check) const;

  /// Whether a completed obligation constitutes a Trojan finding (for
  /// kPseudo this applies the faithful-mirror classification). Thread-safe.
  [[nodiscard]] bool is_finding(const Obligation& obligation,
                                const CheckResult& check) const;

  // Individual steps, usable à la carte (the bench harnesses call these).
  CheckResult check_corruption(const std::string& reg) const;
  CheckResult check_pseudo_pair(const std::string& critical_reg,
                                const std::string& candidate_reg,
                                properties::PseudoPolarity polarity,
                                bool candidate_leads) const;
  CheckResult check_bypass(const std::string& reg) const;

  /// Candidate registers worth scanning for a pseudo-critical relation to
  /// `reg`: same width, not the register itself, not tiny control state.
  std::vector<std::string> pseudo_candidates(const std::string& reg) const;

  [[nodiscard]] const DetectorOptions& options() const { return options_; }

 private:
  /// The Section 4.1 classification: does this Eq. 3 counterexample show a
  /// faithfully-mirroring candidate deviating only at the trigger?
  [[nodiscard]] bool pseudo_violation_is_trojan(const Obligation& obligation,
                                                const CheckResult& check) const;

  const designs::Design& design_;
  DetectorOptions options_;
};

}  // namespace trojanscout::core
