// Counterexample minimization.
//
// Raw witnesses from the SAT model or the ATPG search carry arbitrary
// values on irrelevant inputs. Greedy delta-minimization re-simulates the
// monitor and clears every input bit that is not needed for the violation,
// leaving exactly the trigger the integrator must audit (e.g. only the
// instruction bits that drive the Trojan counter).
#pragma once

#include "netlist/netlist.hpp"
#include "sim/witness.hpp"

namespace trojanscout::core {

struct MinimizeStats {
  std::size_t bits_before = 0;
  std::size_t bits_after = 0;
  std::size_t simulations = 0;
};

/// Returns a witness that still drives `bad` to 1 at the original violation
/// frame, with a minimal-ish set of 1-bits (greedy, one pass per frame from
/// the last frame backwards). The input witness must itself violate.
/// Throws std::invalid_argument if it does not.
sim::Witness minimize_witness(const netlist::Netlist& nl,
                              netlist::SignalId bad,
                              const sim::Witness& witness,
                              MinimizeStats* stats = nullptr);

}  // namespace trojanscout::core
