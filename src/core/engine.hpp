// Unified front end over the two verification back ends (BMC and ATPG),
// mirroring the paper's setup where the same property monitor is handed to
// either Cadence SMV or TetraMAX.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>

#include <vector>

#include "atpg/atpg.hpp"
#include "bmc/bmc.hpp"
#include "netlist/netlist.hpp"
#include "sim/witness.hpp"
#include "telemetry/flight.hpp"

namespace trojanscout::core {

enum class EngineKind { kBmc, kAtpg };

const char* engine_name(EngineKind kind);

struct EngineOptions {
  EngineKind kind = EngineKind::kBmc;
  /// The paper's T bound: number of clock cycles to unroll.
  std::size_t max_frames = 1024;
  /// Wall-clock budget (paper: 100 s).
  double time_limit_seconds = 100.0;
  /// BMC back-end configuration (ablation hooks).
  sat::SolverOptions solver;
  /// ATPG back-end configuration.
  std::uint64_t atpg_backtrack_limit = 4000;
  bool atpg_use_scoap = true;
  std::size_t atpg_random_sequences = 64;
  /// Functional stimulus hints forwarded to the ATPG simulation phase
  /// (ignored by BMC). See AtpgOptions::stimulus_sequences.
  std::vector<std::vector<util::BitVec>> atpg_stimulus;
  /// Cooperative cancellation flag polled by both back ends; a set flag
  /// ends the run early with CheckResult::cancelled. Used by the parallel
  /// scheduler's fail-fast mode; leave null for standalone runs.
  const std::atomic<bool>* cancel = nullptr;
  /// Clause-proof stream for the BMC back end (forwarded to
  /// BmcOptions::proof; the ATPG back end has no clause proofs and ignores
  /// it). Used by proof::certify to make UNSAT answers checkable.
  sat::ProofListener* proof = nullptr;
  /// Live-progress cells (telemetry::ObligationProgress) forwarded to the
  /// back end; the --progress heartbeat and stall watchdog read them from
  /// the reporter thread. Null (the default) costs nothing.
  telemetry::ObligationProgress* progress = nullptr;
};

/// Deterministic per-run work counters, copied off whichever back end ran.
/// Everything here is a function of (netlist, property, options) only —
/// never of wall-clock time or machine load — so the telemetry sink can
/// assert byte-identical reports across --jobs settings. One carve-out:
/// `flight` carries per-frame wall_us samples (timing), so it is excluded
/// from both the cached-verdict codec and the run report — it exists for
/// live inspection (`audit --flight-out`) only.
struct EngineCounters {
  // BMC back end (zero for ATPG runs).
  sat::SolverStats sat;
  std::size_t cnf_vars = 0;
  std::vector<std::uint32_t> frame_clauses;
  // ATPG back end (zero for BMC runs).
  std::uint64_t atpg_decisions = 0;
  std::uint64_t atpg_backtracks = 0;
  std::uint64_t atpg_implications = 0;
  std::size_t atpg_frames_proven_clean = 0;
  std::size_t atpg_frames_aborted = 0;
  /// Flight recorder: one window of counter deltas + frame wall time per
  /// engine frame, in frame order (see telemetry/flight.hpp).
  std::vector<telemetry::FlightWindow> flight;
};

/// Engine-agnostic outcome of checking one bad signal.
struct CheckResult {
  bool violated = false;
  /// True when every frame up to max_frames was proven clean (BMC UNSAT per
  /// frame / ATPG search exhausted per frame).
  bool bound_reached = false;
  std::optional<sim::Witness> witness;
  std::size_t frames_completed = 0;
  double seconds = 0.0;
  std::uint64_t memory_bytes = 0;
  std::string status;
  /// True when the run was cut short by EngineOptions::cancel (fail-fast).
  bool cancelled = false;
  /// Deterministic work counters for the run report (see EngineCounters).
  EngineCounters counters;

  /// Table-1-style verdict text: "Yes" (witness found) or "N/A".
  [[nodiscard]] const char* detected_cell() const {
    return violated ? "Yes" : "N/A";
  }
};

/// Runs the selected engine on (netlist, bad signal).
CheckResult run_engine(const netlist::Netlist& nl, netlist::SignalId bad,
                       const EngineOptions& options);

}  // namespace trojanscout::core
