// Unified front end over the verification back ends, mirroring the paper's
// setup where the same property monitor is handed to either Cadence SMV
// (BMC) or TetraMAX (ATPG) — extended with an unbounded IC3/PDR engine and
// a portfolio mode that races all three on one obligation.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>

#include <vector>

#include "atpg/atpg.hpp"
#include "bmc/bmc.hpp"
#include "netlist/netlist.hpp"
#include "pdr/invariant.hpp"
#include "sim/witness.hpp"
#include "telemetry/flight.hpp"

namespace trojanscout::core {

enum class EngineKind { kBmc, kAtpg, kPdr, kPortfolio };

/// Report-facing engine name ("BMC" / "ATPG" / "PDR" / "PORTFOLIO").
inline const char* engine_name(EngineKind kind) {
  switch (kind) {
    case EngineKind::kBmc:
      return "BMC";
    case EngineKind::kAtpg:
      return "ATPG";
    case EngineKind::kPdr:
      return "PDR";
    case EngineKind::kPortfolio:
      return "PORTFOLIO";
  }
  return "?";
}

/// CLI / wire-protocol engine name ("bmc" / "atpg" / "pdr" / "portfolio").
inline const char* engine_flag_name(EngineKind kind) {
  switch (kind) {
    case EngineKind::kBmc:
      return "bmc";
    case EngineKind::kAtpg:
      return "atpg";
    case EngineKind::kPdr:
      return "pdr";
    case EngineKind::kPortfolio:
      return "portfolio";
  }
  return "?";
}

/// Parses a CLI / wire-protocol engine name; nullopt on anything unknown.
inline std::optional<EngineKind> engine_kind_from_string(
    const std::string& name) {
  if (name == "bmc") return EngineKind::kBmc;
  if (name == "atpg") return EngineKind::kAtpg;
  if (name == "pdr") return EngineKind::kPdr;
  if (name == "portfolio") return EngineKind::kPortfolio;
  return std::nullopt;
}

struct EngineOptions {
  EngineKind kind = EngineKind::kBmc;
  /// The paper's T bound: number of clock cycles to unroll.
  std::size_t max_frames = 1024;
  /// Wall-clock budget (paper: 100 s).
  double time_limit_seconds = 100.0;
  /// BMC back-end configuration (ablation hooks); PDR shares the solver.
  sat::SolverOptions solver;
  /// ATPG back-end configuration.
  std::uint64_t atpg_backtrack_limit = 4000;
  bool atpg_use_scoap = true;
  std::size_t atpg_random_sequences = 64;
  /// Functional stimulus hints forwarded to the ATPG simulation phase
  /// (ignored by BMC). See AtpgOptions::stimulus_sequences.
  std::vector<std::vector<util::BitVec>> atpg_stimulus;
  /// PDR inductive generalization (literal dropping). Part of the
  /// obligation cache key: it changes which invariant a proven run emits.
  bool pdr_generalize = true;
  /// Cooperative cancellation flag polled by all back ends; a set flag
  /// ends the run early with CheckResult::cancelled. Used by the parallel
  /// scheduler's fail-fast mode; leave null for standalone runs.
  const std::atomic<bool>* cancel = nullptr;
  /// Clause-proof stream for the BMC back end (forwarded to
  /// BmcOptions::proof; ATPG has no clause proofs and PDR's evidence is
  /// its invariant, so both ignore it). In portfolio mode the stream is
  /// attached to the BMC leg only, and its contents are meaningful only
  /// when BMC wins the race. Used by proof::certify.
  sat::ProofListener* proof = nullptr;
  /// Live-progress cells (telemetry::ObligationProgress) forwarded to the
  /// back end; the --progress heartbeat and stall watchdog read them from
  /// the reporter thread. Null (the default) costs nothing.
  telemetry::ObligationProgress* progress = nullptr;
};

/// Deterministic per-run work counters, copied off whichever back end ran.
/// Everything here is a function of (netlist, property, options) only —
/// never of wall-clock time or machine load — so the telemetry sink can
/// assert byte-identical reports across --jobs settings. One carve-out:
/// `flight` carries per-frame wall_us samples (timing), so it is excluded
/// from both the cached-verdict codec and the run report — it exists for
/// live inspection (`audit --flight-out`) only.
struct EngineCounters {
  // BMC back end (zero for ATPG runs); PDR also fills the SAT counters.
  sat::SolverStats sat;
  std::size_t cnf_vars = 0;
  std::vector<std::uint32_t> frame_clauses;
  // ATPG back end (zero for BMC runs).
  std::uint64_t atpg_decisions = 0;
  std::uint64_t atpg_backtracks = 0;
  std::uint64_t atpg_implications = 0;
  std::size_t atpg_frames_proven_clean = 0;
  std::size_t atpg_frames_aborted = 0;
  // PDR back end (zero for BMC/ATPG runs).
  std::uint64_t pdr_frames = 0;
  std::uint64_t pdr_pushed_clauses = 0;
  std::uint64_t pdr_ctis = 0;
  std::uint64_t pdr_obligations = 0;
  /// Flight recorder: one window of counter deltas + frame wall time per
  /// engine frame, in frame order (see telemetry/flight.hpp).
  std::vector<telemetry::FlightWindow> flight;
};

/// Per-engine outcome of one portfolio race, in fixed priority order
/// (BMC, ATPG, PDR). TIMING CARVE-OUT, like EngineCounters::flight: which
/// losers got how far before observing the cancel flag depends on machine
/// load, so this vector is excluded from the report signature and the
/// cached-verdict codec — it feeds the {"type":"portfolio"} run-report
/// record (timing-flagged fields) and the win/cancel tallies only.
struct PortfolioOutcome {
  EngineKind engine = EngineKind::kBmc;
  /// The engine's own status string ("violated", "cancelled", ...).
  std::string status;
  bool violated = false;
  bool proven_unbounded = false;
  bool cancelled = false;
  /// True for the engine whose result the race reported.
  bool won = false;
  double seconds = 0.0;
};

/// Engine-agnostic outcome of checking one bad signal.
struct CheckResult {
  bool violated = false;
  /// True when every frame up to max_frames was proven clean (BMC UNSAT per
  /// frame / ATPG search exhausted per frame / PDR frontier or fixpoint).
  bool bound_reached = false;
  /// True when PDR converged to an inductive invariant: clean at *every*
  /// depth, not just up to the bound. Implies bound_reached; the status
  /// string is "proven-unbounded" (distinguishable in signatures).
  bool proven_unbounded = false;
  std::optional<sim::Witness> witness;
  /// Inductive-invariant evidence, present exactly when proven_unbounded;
  /// `certify` re-validates it with an independent solver.
  std::optional<pdr::Invariant> invariant;
  std::size_t frames_completed = 0;
  double seconds = 0.0;
  std::uint64_t memory_bytes = 0;
  std::string status;
  /// True when the run was cut short by EngineOptions::cancel (fail-fast).
  bool cancelled = false;
  /// The back end that produced this result: the engine itself for single
  /// runs, the race winner for portfolio runs. Deterministic (the race
  /// selects by verdict strength then fixed priority, never arrival
  /// order), but excluded from the report signature so single-engine
  /// golden signatures stay stable.
  EngineKind engine_used = EngineKind::kBmc;
  /// Deterministic work counters for the run report (see EngineCounters).
  EngineCounters counters;
  /// Portfolio race outcomes (empty for single-engine runs); see
  /// PortfolioOutcome for the timing carve-out contract.
  std::vector<PortfolioOutcome> portfolio;

  /// Table-1-style verdict text: "Yes" (witness found) or "N/A".
  [[nodiscard]] const char* detected_cell() const {
    return violated ? "Yes" : "N/A";
  }
};

/// Runs the selected engine on (netlist, bad signal). kPortfolio races
/// BMC, ATPG, and PDR concurrently (see portfolio/portfolio.hpp).
CheckResult run_engine(const netlist::Netlist& nl, netlist::SignalId bad,
                       const EngineOptions& options);

}  // namespace trojanscout::core
