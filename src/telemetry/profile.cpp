#include "telemetry/profile.hpp"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <unordered_map>

namespace trojanscout::telemetry {

namespace {

constexpr const char* kObligationPrefix = "obligation:";

void append_escaped(std::string& out, const std::string& text) {
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string json_double(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  return buf;
}

void sort_phases(std::vector<PhaseStats>& phases) {
  std::sort(phases.begin(), phases.end(),
            [](const PhaseStats& a, const PhaseStats& b) {
              return a.name < b.name;
            });
}

void append_phase_array(std::string& out,
                        const std::vector<PhaseStats>& phases,
                        bool include_timing) {
  out += '[';
  bool first = true;
  for (const PhaseStats& phase : phases) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    append_escaped(out, phase.name);
    out += "\",\"count\":" + std::to_string(phase.count);
    if (include_timing) {
      out += ",\"inclusive_us\":" + std::to_string(phase.inclusive_us);
      out += ",\"exclusive_us\":" + std::to_string(phase.exclusive_us);
    }
    out += '}';
  }
  out += ']';
}

}  // namespace

double histogram_quantile(const Registry::HistogramValue& hist, double q) {
  if (hist.count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // The extremes are carried exactly; only interior quantiles estimate.
  if (q == 0.0) return hist.min_seconds;
  if (q == 1.0) return hist.max_seconds;
  // Rank of the target sample (0-based, continuous).
  const double rank = q * static_cast<double>(hist.count - 1);
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < Registry::kHistogramBuckets; ++b) {
    const std::uint64_t in_bucket = hist.buckets[b];
    if (in_bucket == 0) continue;
    const double bucket_first = static_cast<double>(cumulative);
    cumulative += in_bucket;
    if (rank >= static_cast<double>(cumulative)) continue;
    // Bucket b spans [2^(b-1), 2^b) µs; bucket 0 is [0, 1) µs.
    const double lo_us = b == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(b) - 1);
    const double hi_us = std::ldexp(1.0, static_cast<int>(b));
    // Interpolate by the rank's position among this bucket's samples.
    const double within =
        in_bucket > 1
            ? (rank - bucket_first) / static_cast<double>(in_bucket - 1)
            : 0.5;
    const double us = lo_us + (hi_us - lo_us) * std::clamp(within, 0.0, 1.0);
    return std::clamp(us / 1e6, hist.min_seconds, hist.max_seconds);
  }
  return hist.max_seconds;
}

Profile build_profile(const std::vector<TraceEvent>& events) {
  Profile profile;
  if (events.empty()) return profile;

  // Per-tid event order is chronological (each thread appends its own
  // events in program order); split by tid and walk each thread's stack.
  std::map<int, std::vector<const TraceEvent*>> by_tid;
  std::uint64_t min_ts = UINT64_MAX;
  std::uint64_t max_ts = 0;
  for (const TraceEvent& event : events) {
    by_tid[event.tid].push_back(&event);
    min_ts = std::min(min_ts, event.ts_us);
    max_ts = std::max(max_ts, event.ts_us);
  }
  profile.wall_us = max_ts - min_ts;
  profile.thread_count = by_tid.size();

  struct Frame {
    const TraceEvent* begin = nullptr;
    std::uint64_t child_us = 0;   // same-thread children's inclusive time
    std::string obligation;       // nearest enclosing obligation (inherited)
  };
  // One record per completed span, for the cross-thread child pass.
  struct Closed {
    std::string name;
    std::string obligation;
    std::uint64_t span_id = 0;
    std::uint64_t parent_id = 0;
    int tid = 0;
    std::uint64_t inclusive_us = 0;
    std::uint64_t child_us = 0;
  };
  std::vector<Closed> closed;
  std::map<std::string, std::uint64_t> obligation_total;

  auto close_frame = [&](const Frame& frame, std::uint64_t end_ts) {
    const std::uint64_t inclusive =
        end_ts >= frame.begin->ts_us ? end_ts - frame.begin->ts_us : 0;
    const std::string& name = frame.begin->name;
    if (name.rfind(kObligationPrefix, 0) == 0) {
      obligation_total[frame.obligation] += inclusive;
    }
    closed.push_back({name, frame.obligation, frame.begin->span_id,
                      frame.begin->parent_id, frame.begin->tid, inclusive,
                      frame.child_us});
    return inclusive;
  };

  for (auto& [tid, tid_events] : by_tid) {
    std::vector<Frame> stack;
    std::uint64_t latest_ts = 0;
    for (const TraceEvent* event : tid_events) {
      latest_ts = std::max(latest_ts, event->ts_us);
      if (event->begin) {
        Frame frame;
        frame.begin = event;
        if (event->name.rfind(kObligationPrefix, 0) == 0) {
          frame.obligation =
              event->name.substr(std::strlen(kObligationPrefix));
          obligation_total.emplace(frame.obligation, 0);
        } else if (!stack.empty()) {
          frame.obligation = stack.back().obligation;
        }
        stack.push_back(std::move(frame));
        continue;
      }
      // Spans are RAII, so an end event matches the top of its thread's
      // stack; tolerate strays (span_id mismatch) by ignoring them.
      if (stack.empty() || stack.back().begin->span_id != event->span_id) {
        continue;
      }
      Frame frame = std::move(stack.back());
      stack.pop_back();
      const std::uint64_t inclusive = close_frame(frame, event->ts_us);
      if (!stack.empty()) stack.back().child_us += inclusive;
    }
    // Unclosed spans (snapshot taken mid-run): charge up to the thread's
    // latest timestamp, innermost first so child time propagates.
    while (!stack.empty()) {
      Frame frame = std::move(stack.back());
      stack.pop_back();
      const std::uint64_t inclusive = close_frame(frame, latest_ts);
      if (!stack.empty()) stack.back().child_us += inclusive;
    }
  }

  // Cross-thread child pass: a span whose explicit parent lives on another
  // thread (the scheduler's audit span parenting pool-worker obligations)
  // charges its inclusive time to that parent too — the parent is blocked
  // in wait_idle() while the child runs, and counting that wait as busy
  // would double the wall-clock. Overlapping concurrent children can push
  // the subtraction past the parent's inclusive time; the clamp to zero is
  // then the right answer (the parent did nothing but wait).
  {
    std::unordered_map<std::uint64_t, std::size_t> by_span;
    by_span.reserve(closed.size());
    for (std::size_t i = 0; i < closed.size(); ++i) {
      by_span.emplace(closed[i].span_id, i);
    }
    for (const Closed& span : closed) {
      if (span.parent_id == 0) continue;
      const auto it = by_span.find(span.parent_id);
      if (it == by_span.end()) continue;
      Closed& parent = closed[it->second];
      if (parent.tid != span.tid) parent.child_us += span.inclusive_us;
    }
  }

  // (phase name) -> stats and (obligation, phase) -> stats.
  std::map<std::string, PhaseStats> phases;
  std::map<std::string, std::map<std::string, PhaseStats>> per_obligation;
  for (const Closed& span : closed) {
    const std::uint64_t exclusive =
        span.inclusive_us >= span.child_us ? span.inclusive_us - span.child_us
                                           : 0;
    PhaseStats& phase = phases[span.name];
    phase.name = span.name;
    phase.count += 1;
    phase.inclusive_us += span.inclusive_us;
    phase.exclusive_us += exclusive;
    profile.busy_us += exclusive;

    PhaseStats& scoped = per_obligation[span.obligation][span.name];
    scoped.name = span.name;
    scoped.count += 1;
    scoped.inclusive_us += span.inclusive_us;
    scoped.exclusive_us += exclusive;
  }

  profile.phases.reserve(phases.size());
  for (auto& [name, stats] : phases) profile.phases.push_back(stats);

  for (auto& [name, scoped] : per_obligation) {
    ObligationProfile op;
    // Spans outside any obligation span (scheduler, report assembly) land
    // in a named catch-all bucket rather than an empty-string key.
    op.name = name.empty() ? "(unattributed)" : name;
    const auto total = obligation_total.find(name);
    op.total_us = total != obligation_total.end() ? total->second : 0;
    for (auto& [phase_name, stats] : scoped) op.phases.push_back(stats);
    sort_phases(op.phases);
    profile.obligations.push_back(std::move(op));
  }
  // Make sure obligations that recorded no nested spans still appear.
  for (const auto& [name, total] : obligation_total) {
    const bool present =
        std::any_of(profile.obligations.begin(), profile.obligations.end(),
                    [&](const ObligationProfile& op) { return op.name == name; });
    if (!present) {
      ObligationProfile op;
      op.name = name;
      op.total_us = total;
      profile.obligations.push_back(std::move(op));
    }
  }
  std::sort(profile.obligations.begin(), profile.obligations.end(),
            [](const ObligationProfile& a, const ObligationProfile& b) {
              return a.name < b.name;
            });
  return profile;
}

Profile build_profile(const TraceRecorder& recorder,
                      const Registry::Snapshot& snapshot) {
  Profile profile = build_profile(recorder.events());
  for (const Registry::HistogramValue& hist : snapshot.histograms) {
    Profile::TimerStats timer;
    timer.name = hist.name;
    timer.count = hist.count;
    timer.sum_seconds = hist.sum_seconds;
    timer.min_seconds = hist.min_seconds;
    timer.max_seconds = hist.max_seconds;
    timer.p50_seconds = histogram_quantile(hist, 0.5);
    timer.p90_seconds = histogram_quantile(hist, 0.9);
    profile.timers.push_back(std::move(timer));
  }
  std::sort(profile.timers.begin(), profile.timers.end(),
            [](const Profile::TimerStats& a, const Profile::TimerStats& b) {
              return a.name < b.name;
            });
  return profile;
}

std::string Profile::to_json(bool include_timing) const {
  std::string out = "{\"schema\":\"trojanscout-profile-v1\"";
  if (include_timing) {
    out += ",\"wall_us\":" + std::to_string(wall_us);
    out += ",\"busy_us\":" + std::to_string(busy_us);
    // Scheduling-dependent like the timings (varies with --jobs), so it is
    // stripped with them to keep the invariant form jobs-identical.
    out += ",\"threads\":" + std::to_string(thread_count);
  }
  out += ",\"phases\":";
  append_phase_array(out, phases, include_timing);
  out += ",\"obligations\":[";
  bool first = true;
  for (const ObligationProfile& op : obligations) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    append_escaped(out, op.name);
    out += '"';
    if (include_timing) out += ",\"total_us\":" + std::to_string(op.total_us);
    out += ",\"phases\":";
    append_phase_array(out, op.phases, include_timing);
    out += '}';
  }
  out += "],\"timers\":[";
  first = true;
  for (const TimerStats& timer : timers) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    append_escaped(out, timer.name);
    out += "\",\"count\":" + std::to_string(timer.count);
    if (include_timing) {
      out += ",\"sum_seconds\":" + json_double(timer.sum_seconds);
      out += ",\"min_seconds\":" + json_double(timer.min_seconds);
      out += ",\"max_seconds\":" + json_double(timer.max_seconds);
      out += ",\"p50_seconds\":" + json_double(timer.p50_seconds);
      out += ",\"p90_seconds\":" + json_double(timer.p90_seconds);
    }
    out += '}';
  }
  out += "]}";
  return out;
}

bool Profile::write_file(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  os << to_json(true) << "\n";
  return os.good();
}

std::string Profile::top_table(std::size_t n) const {
  std::vector<const PhaseStats*> ranked;
  ranked.reserve(phases.size());
  for (const PhaseStats& phase : phases) ranked.push_back(&phase);
  std::sort(ranked.begin(), ranked.end(),
            [](const PhaseStats* a, const PhaseStats* b) {
              if (a->exclusive_us != b->exclusive_us)
                return a->exclusive_us > b->exclusive_us;
              return a->name < b->name;
            });
  if (ranked.size() > n) ranked.resize(n);

  std::string out;
  char buf[160];
  std::snprintf(buf, sizeof(buf), "  %-28s %10s %12s %12s %7s\n", "phase",
                "count", "incl (ms)", "excl (ms)", "excl%");
  out += buf;
  const double busy = busy_us > 0 ? static_cast<double>(busy_us) : 1.0;
  for (const PhaseStats* phase : ranked) {
    std::snprintf(buf, sizeof(buf), "  %-28s %10" PRIu64 " %12.3f %12.3f %6.1f%%\n",
                  phase->name.c_str(), phase->count,
                  static_cast<double>(phase->inclusive_us) / 1e3,
                  static_cast<double>(phase->exclusive_us) / 1e3,
                  100.0 * static_cast<double>(phase->exclusive_us) / busy);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "  wall %.3f ms, busy %.3f ms across %" PRIu64 " thread%s\n",
                static_cast<double>(wall_us) / 1e3,
                static_cast<double>(busy_us) / 1e3, thread_count,
                thread_count == 1 ? "" : "s");
  out += buf;
  return out;
}

}  // namespace trojanscout::telemetry
