#include "telemetry/registry.hpp"

#include <algorithm>
#include <cstdlib>
#include <unordered_map>

namespace trojanscout::telemetry {

namespace {

/// Single-writer cell: the owning thread stores (load + store, no RMW),
/// snapshot() reads from other threads with relaxed loads.
using Cell = std::atomic<std::uint64_t>;

inline void cell_add(Cell& cell, std::uint64_t delta) {
  cell.store(cell.load(std::memory_order_relaxed) + delta,
             std::memory_order_relaxed);
}

inline void cell_max(Cell& cell, std::uint64_t value) {
  if (value > cell.load(std::memory_order_relaxed)) {
    cell.store(value, std::memory_order_relaxed);
  }
}

inline void cell_min(Cell& cell, std::uint64_t value) {
  const std::uint64_t current = cell.load(std::memory_order_relaxed);
  if (current == 0 || value < current) {
    cell.store(value, std::memory_order_relaxed);
  }
}

std::uint64_t next_registry_serial() {
  static std::atomic<std::uint64_t> serial{1};
  return serial.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

/// Per-histogram, per-shard accumulator. Durations are kept in integer
/// nanoseconds so the cells stay plain uint64 atomics.
struct HistCell {
  Cell count{0};
  Cell sum_ns{0};
  Cell min_ns{0};  // 0 = no sample yet
  Cell max_ns{0};
  std::array<Cell, Registry::kHistogramBuckets> buckets{};
};

struct Registry::Shard {
  // Owned cells; the vectors grow only under State::mutex (the owning
  // thread's unlocked reads are safe — nobody else ever resizes them).
  std::vector<std::unique_ptr<Cell>> counters;
  std::vector<std::unique_ptr<HistCell>> histograms;
};

struct Registry::State {
  mutable std::mutex mutex;
  std::vector<std::string> counter_names;
  std::vector<std::string> histogram_names;
  std::unordered_map<std::string, MetricId> counter_ids;
  std::unordered_map<std::string, MetricId> histogram_ids;
  std::vector<std::shared_ptr<Shard>> shards;
};

Registry::Registry()
    : state_(std::make_shared<State>()), serial_(next_registry_serial()) {}

Registry::~Registry() = default;

Registry& Registry::global() {
  static Registry* instance = [] {
    auto* registry = new Registry();
    if (const char* env = std::getenv("TROJANSCOUT_TELEMETRY")) {
      if (env[0] != '\0' && !(env[0] == '0' && env[1] == '\0')) {
        registry->set_enabled(true);
      }
    }
    return registry;
  }();
  return *instance;
}

MetricId Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(state_->mutex);
  const auto it = state_->counter_ids.find(name);
  if (it != state_->counter_ids.end()) return it->second;
  const MetricId id = state_->counter_names.size();
  state_->counter_names.push_back(name);
  state_->counter_ids.emplace(name, id);
  return id;
}

MetricId Registry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(state_->mutex);
  const auto it = state_->histogram_ids.find(name);
  if (it != state_->histogram_ids.end()) return it->second;
  const MetricId id = state_->histogram_names.size();
  state_->histogram_names.push_back(name);
  state_->histogram_ids.emplace(name, id);
  return id;
}

Registry::Shard& Registry::local_shard() {
  // One entry per (thread, registry) pair, keyed by the registry serial so
  // a test registry reusing a destroyed registry's address cannot collide.
  struct TlsEntry {
    std::uint64_t serial;
    std::shared_ptr<Shard> shard;
  };
  thread_local std::vector<TlsEntry> tls;
  for (const TlsEntry& entry : tls) {
    if (entry.serial == serial_) return *entry.shard;
  }
  auto shard = std::make_shared<Shard>();
  {
    std::lock_guard<std::mutex> lock(state_->mutex);
    state_->shards.push_back(shard);
  }
  tls.push_back({serial_, shard});
  return *tls.back().shard;
}

void Registry::add(MetricId id, std::uint64_t delta) {
  if (!enabled()) return;
  Shard& shard = local_shard();
  if (id >= shard.counters.size()) {
    std::lock_guard<std::mutex> lock(state_->mutex);
    while (shard.counters.size() <= id) {
      shard.counters.push_back(std::make_unique<Cell>(0));
    }
  }
  cell_add(*shard.counters[id], delta);
}

std::size_t Registry::bucket_of(double seconds) {
  if (seconds <= 0) return 0;
  const double us = seconds * 1e6;
  std::size_t bucket = 0;
  double bound = 1.0;
  while (us >= bound && bucket + 1 < kHistogramBuckets) {
    bound *= 2.0;
    ++bucket;
  }
  return bucket;
}

void Registry::record_seconds(MetricId id, double seconds) {
  if (!enabled()) return;
  Shard& shard = local_shard();
  if (id >= shard.histograms.size()) {
    std::lock_guard<std::mutex> lock(state_->mutex);
    while (shard.histograms.size() <= id) {
      shard.histograms.push_back(std::make_unique<HistCell>());
    }
  }
  HistCell& cell = *shard.histograms[id];
  const double clamped = std::max(seconds, 0.0);
  const auto ns = static_cast<std::uint64_t>(clamped * 1e9);
  cell_add(cell.count, 1);
  cell_add(cell.sum_ns, ns);
  cell_min(cell.min_ns, ns == 0 ? 1 : ns);
  cell_max(cell.max_ns, ns == 0 ? 1 : ns);
  cell_add(cell.buckets[bucket_of(clamped)], 1);
}

Registry::Snapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(state_->mutex);
  Snapshot out;
  out.counters.resize(state_->counter_names.size());
  for (std::size_t i = 0; i < state_->counter_names.size(); ++i) {
    out.counters[i].name = state_->counter_names[i];
  }
  out.histograms.resize(state_->histogram_names.size());
  for (std::size_t i = 0; i < state_->histogram_names.size(); ++i) {
    out.histograms[i].name = state_->histogram_names[i];
  }

  std::vector<std::uint64_t> hist_min(out.histograms.size(), 0);
  std::vector<std::uint64_t> hist_max(out.histograms.size(), 0);
  std::vector<std::uint64_t> hist_sum_ns(out.histograms.size(), 0);
  for (const auto& shard : state_->shards) {
    for (std::size_t i = 0; i < shard->counters.size(); ++i) {
      out.counters[i].value +=
          shard->counters[i]->load(std::memory_order_relaxed);
    }
    for (std::size_t i = 0; i < shard->histograms.size(); ++i) {
      const HistCell& cell = *shard->histograms[i];
      out.histograms[i].count += cell.count.load(std::memory_order_relaxed);
      hist_sum_ns[i] += cell.sum_ns.load(std::memory_order_relaxed);
      const std::uint64_t mn = cell.min_ns.load(std::memory_order_relaxed);
      if (mn != 0 && (hist_min[i] == 0 || mn < hist_min[i])) hist_min[i] = mn;
      hist_max[i] =
          std::max(hist_max[i], cell.max_ns.load(std::memory_order_relaxed));
      for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
        out.histograms[i].buckets[b] +=
            cell.buckets[b].load(std::memory_order_relaxed);
      }
    }
  }
  for (std::size_t i = 0; i < out.histograms.size(); ++i) {
    out.histograms[i].sum_seconds = static_cast<double>(hist_sum_ns[i]) * 1e-9;
    out.histograms[i].min_seconds = static_cast<double>(hist_min[i]) * 1e-9;
    out.histograms[i].max_seconds = static_cast<double>(hist_max[i]) * 1e-9;
  }

  const auto by_name = [](const auto& a, const auto& b) {
    return a.name < b.name;
  };
  std::sort(out.counters.begin(), out.counters.end(), by_name);
  std::sort(out.histograms.begin(), out.histograms.end(), by_name);
  return out;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(state_->mutex);
  for (const auto& shard : state_->shards) {
    for (const auto& cell : shard->counters) {
      cell->store(0, std::memory_order_relaxed);
    }
    for (const auto& hist : shard->histograms) {
      hist->count.store(0, std::memory_order_relaxed);
      hist->sum_ns.store(0, std::memory_order_relaxed);
      hist->min_ns.store(0, std::memory_order_relaxed);
      hist->max_ns.store(0, std::memory_order_relaxed);
      for (auto& bucket : hist->buckets) {
        bucket.store(0, std::memory_order_relaxed);
      }
    }
  }
}

}  // namespace trojanscout::telemetry
