// Post-run phase-attribution profiler: folds the recorded span tree and
// Registry histogram timers into an inclusive/exclusive time breakdown per
// phase and per obligation (the `--profile-out` report).
//
// Spans are RAII and therefore properly nested per thread, so attribution
// is a per-tid stack walk over the TraceRecorder's events: a span's
// *inclusive* time is end − begin; its *exclusive* time subtracts the
// inclusive time of same-thread children (cross-thread children run
// concurrently on their own tid and are charged there, keeping the
// exclusive times of one thread telescoping — summed over all spans they
// account for that thread's busy wall-clock exactly). Each span is also
// attributed to the nearest enclosing `obligation:<name>` span on its
// thread's stack, which reproduces the paper's per-property cost columns
// (Tables 1–3 report per-design/per-fault time and memory).
//
// The JSON schema is `trojanscout-profile-v1`. Every timing field's key
// ends in `_us` or `_seconds`; to_json(/*include_timing=*/false) omits all
// of them, leaving phase/obligation names and span counts — a function of
// (netlist, property, options) only, byte-identical across --jobs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/registry.hpp"
#include "telemetry/span.hpp"

namespace trojanscout::telemetry {

/// Aggregated cost of one span name ("phase"): sat:solve, bmc:frame, ...
struct PhaseStats {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t inclusive_us = 0;
  std::uint64_t exclusive_us = 0;
};

/// Per-obligation rollup: exclusive time of every span nested (same-thread)
/// under that obligation's span, bucketed by phase name.
struct ObligationProfile {
  std::string name;          // obligation span name without the prefix
  std::uint64_t total_us = 0;  // inclusive time of the obligation span
  std::vector<PhaseStats> phases;  // sorted by name
};

struct Profile {
  /// All phases across the run, sorted by name.
  std::vector<PhaseStats> phases;
  /// Per-obligation breakdowns, sorted by name. Spans outside any
  /// obligation roll up under "(unattributed)" (run overhead).
  std::vector<ObligationProfile> obligations;
  /// Registry histogram timers (count/sum/min/max + estimated quantiles).
  struct TimerStats {
    std::string name;
    std::uint64_t count = 0;
    double sum_seconds = 0.0;
    double min_seconds = 0.0;
    double max_seconds = 0.0;
    double p50_seconds = 0.0;
    double p90_seconds = 0.0;
  };
  std::vector<TimerStats> timers;  // sorted by name
  /// Wall-clock span of the trace (max ts − min ts) and total busy time
  /// (sum of exclusive over all spans, i.e. thread-seconds of traced work).
  std::uint64_t wall_us = 0;
  std::uint64_t busy_us = 0;
  std::uint64_t thread_count = 0;

  /// Deterministic JSON document. include_timing=false drops every field
  /// whose key ends `_us`/`_seconds` (the jobs-invariance form).
  [[nodiscard]] std::string to_json(bool include_timing = true) const;

  /// Writes to_json(true) to `path`; false on I/O failure.
  [[nodiscard]] bool write_file(const std::string& path) const;

  /// Human-readable top-N phases by exclusive time, as table lines for the
  /// CLI summary (header + up to n rows).
  [[nodiscard]] std::string top_table(std::size_t n = 10) const;
};

/// Folds recorded events into a Profile. Unclosed spans (recorder snapshot
/// taken mid-run) are charged up to the latest timestamp seen on their tid.
[[nodiscard]] Profile build_profile(const std::vector<TraceEvent>& events);

/// build_profile + Registry histogram timers attached.
[[nodiscard]] Profile build_profile(const TraceRecorder& recorder,
                                    const Registry::Snapshot& snapshot);

/// Quantile estimate (q in [0,1]) from a log2-µs histogram: walks the
/// cumulative bucket counts and interpolates linearly inside the target
/// bucket's [2^(b-1), 2^b) µs bounds, clamped to the observed [min, max].
/// Returns 0 for an empty histogram.
[[nodiscard]] double histogram_quantile(const Registry::HistogramValue& hist,
                                        double q);

}  // namespace trojanscout::telemetry
