// Per-solve flight recorder: one window per engine frame, sampled as the
// frame closes. Where the Registry answers "how much work, total" and the
// time series "how fast, lately", the flight series answers "where inside
// *this* solve did the work go" — the windowed conflict/restart/decision/
// backtrack curve that distinguishes a frame that got hard from a solve
// that was slow all along (`audit --flight-out`).
#pragma once

#include <cstdint>

namespace trojanscout::telemetry {

/// One engine frame's work deltas. `decisions` is meaningful for both
/// back ends; propagations/conflicts/restarts are SAT-solver (BMC)
/// counters, backtracks/implications are ATPG search counters — each
/// back end leaves the other's fields zero.
struct FlightWindow {
  std::uint64_t frame = 0;
  std::uint64_t decisions = 0;
  // BMC (SAT) deltas; zero for ATPG frames.
  std::uint64_t propagations = 0;
  std::uint64_t conflicts = 0;
  std::uint64_t restarts = 0;
  // ATPG deltas; zero for BMC frames.
  std::uint64_t backtracks = 0;
  std::uint64_t implications = 0;
  /// Frame wall time in microseconds. TIMING CARVE-OUT: unlike every
  /// other per-run counter this depends on machine load, so the flight
  /// series is observational only — excluded from the cached-verdict
  /// codec and the run report, which must stay byte-identical across
  /// --jobs settings and cache temperature.
  std::uint64_t wall_us = 0;
};

}  // namespace trojanscout::telemetry
