#include "telemetry/progress.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "telemetry/run_report.hpp"

namespace trojanscout::telemetry {

namespace {

std::atomic<ProgressReporter*> g_reporter{nullptr};

bool stream_is_tty(std::FILE* stream) {
#if defined(__unix__) || defined(__APPLE__)
  return isatty(fileno(stream)) == 1;
#else
  (void)stream;
  return false;
#endif
}

/// "1234", "56.7k", "1.2M" — heartbeat lines have ~100 columns to spend.
std::string format_quantity(double value) {
  char buf[32];
  if (value >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.1fG", value / 1e9);
  } else if (value >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.1fM", value / 1e6);
  } else if (value >= 1e4) {
    std::snprintf(buf, sizeof(buf), "%.1fk", value / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f", value);
  }
  return buf;
}

std::string format_duration(double seconds) {
  char buf[48];
  if (seconds >= 3600.0) {
    std::snprintf(buf, sizeof(buf), "%dh%02dm", static_cast<int>(seconds) / 3600,
                  (static_cast<int>(seconds) % 3600) / 60);
  } else if (seconds >= 60.0) {
    std::snprintf(buf, sizeof(buf), "%dm%02ds", static_cast<int>(seconds) / 60,
                  static_cast<int>(seconds) % 60);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1fs", seconds);
  }
  return buf;
}

}  // namespace

ProgressReporter::ProgressReporter(ProgressOptions options)
    : options_(options) {
  if (options_.out == nullptr) options_.out = stderr;
  if (options_.interval_seconds > 0.0) {
    thread_ = std::thread([this] { thread_main(); });
  }
}

ProgressReporter::~ProgressReporter() {
  stop();
  if (global() == this) set_global(nullptr);
}

ProgressReporter* ProgressReporter::global() {
  return g_reporter.load(std::memory_order_acquire);
}

void ProgressReporter::set_global(ProgressReporter* reporter) {
  g_reporter.store(reporter, std::memory_order_release);
}

std::shared_ptr<ProgressReporter::Task> ProgressReporter::begin(
    std::string label) {
  auto task = std::make_shared<Task>();
  task->label_ = std::move(label);
  std::lock_guard<std::mutex> lock(mutex_);
  task->last_advance_seconds_ = clock_.elapsed_seconds();
  tasks_.push_back(task);
  return task;
}

void ProgressReporter::add_planned(std::size_t count) {
  std::lock_guard<std::mutex> lock(mutex_);
  planned_ += count;
}

ProgressReporter::Aggregate ProgressReporter::aggregate() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Aggregate agg;
  agg.planned = planned_;
  agg.started = tasks_.size();
  agg.elapsed_seconds = clock_.elapsed_seconds();
  for (const auto& task : tasks_) {
    const bool done = task->done();
    if (done) {
      ++agg.done;
    } else {
      ++agg.active;
      if (task->stalled_) ++agg.stalled;
      const std::uint64_t frame =
          task->cells.frames.load(std::memory_order_relaxed);
      if (frame >= agg.deepest_frame) {
        agg.deepest_frame = frame;
        agg.deepest_label = task->label_;
      }
    }
    agg.conflicts += task->cells.conflicts.load(std::memory_order_relaxed);
    agg.propagations +=
        task->cells.propagations.load(std::memory_order_relaxed);
    agg.learned_clauses +=
        task->cells.learned_clauses.load(std::memory_order_relaxed);
    agg.backtracks += task->cells.backtracks.load(std::memory_order_relaxed);
  }
  return agg;
}

void ProgressReporter::tick() {
  Aggregate agg;
  double interval = 0.0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const double now = clock_.elapsed_seconds();

    // Watchdog pass: a task whose key has not moved for stall_window is
    // stalled; the flag is sticky per episode (one StallEvent per episode,
    // cleared when the key advances again).
    for (const auto& task : tasks_) {
      if (task->done()) {
        task->stalled_ = false;
        continue;
      }
      const std::uint64_t key = task->cells.key();
      if (key != task->last_key_) {
        task->last_key_ = key;
        task->last_advance_seconds_ = now;
        task->stalled_ = false;
        continue;
      }
      const double idle = now - task->last_advance_seconds_;
      if (!task->stalled_ && options_.stall_window_seconds > 0.0 &&
          idle >= options_.stall_window_seconds) {
        task->stalled_ = true;
        stalls_.push_back(
            {task->label_, task->cells.frames.load(std::memory_order_relaxed),
             key, idle});
      }
    }

    // Aggregate inline (aggregate() would deadlock on mutex_).
    agg.planned = planned_;
    agg.started = tasks_.size();
    agg.elapsed_seconds = now;
    for (const auto& task : tasks_) {
      const bool done = task->done();
      if (done) {
        ++agg.done;
      } else {
        ++agg.active;
        if (task->stalled_) ++agg.stalled;
        const std::uint64_t frame =
            task->cells.frames.load(std::memory_order_relaxed);
        if (frame >= agg.deepest_frame) {
          agg.deepest_frame = frame;
          agg.deepest_label = task->label_;
        }
      }
      agg.conflicts += task->cells.conflicts.load(std::memory_order_relaxed);
      agg.propagations +=
          task->cells.propagations.load(std::memory_order_relaxed);
      agg.learned_clauses +=
          task->cells.learned_clauses.load(std::memory_order_relaxed);
      agg.backtracks += task->cells.backtracks.load(std::memory_order_relaxed);
    }
    interval = now - last_tick_seconds_;
    last_tick_seconds_ = now;
  }

  const std::string line = format_line(agg, interval);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    last_line_ = line;
    last_conflicts_ = agg.conflicts;
    last_propagations_ = agg.propagations;
  }
  if (!options_.render) return;
  if (!options_.force_plain && stream_is_tty(options_.out)) {
    // Rewrite one status line in place: CR + erase-to-end-of-line.
    std::fprintf(options_.out, "\r\x1b[K%s", line.c_str());
    wrote_tty_line_ = true;
  } else {
    std::fprintf(options_.out, "[progress] %s\n", line.c_str());
  }
  std::fflush(options_.out);
}

std::string ProgressReporter::format_line(const Aggregate& agg,
                                          double interval_seconds) {
  std::uint64_t prev_conflicts = 0;
  std::uint64_t prev_propagations = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    prev_conflicts = last_conflicts_;
    prev_propagations = last_propagations_;
  }
  const double dt = interval_seconds > 1e-6 ? interval_seconds : 1e-6;
  const double conf_rate =
      static_cast<double>(agg.conflicts - std::min(prev_conflicts,
                                                   agg.conflicts)) /
      dt;
  const double prop_rate =
      static_cast<double>(
          agg.propagations - std::min(prev_propagations, agg.propagations)) /
      dt;

  std::string line;
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%zu/%zu done, %zu active", agg.done,
                std::max(agg.planned, agg.started), agg.active);
  line += buf;
  if (agg.stalled > 0) {
    std::snprintf(buf, sizeof(buf), " (%zu stalled)", agg.stalled);
    line += buf;
  }
  if (agg.active > 0 && !agg.deepest_label.empty()) {
    std::snprintf(buf, sizeof(buf), " | %s frame %" PRIu64,
                  agg.deepest_label.c_str(), agg.deepest_frame);
    line += buf;
  }
  line += " | " + format_quantity(conf_rate) + " conf/s, " +
          format_quantity(prop_rate) + " prop/s, " +
          format_quantity(static_cast<double>(agg.learned_clauses)) +
          " learned";
  if (agg.backtracks > 0) {
    line += ", " + format_quantity(static_cast<double>(agg.backtracks)) +
            " backtracks";
  }
  line += " | elapsed " + format_duration(agg.elapsed_seconds);
  // ETA from completion throughput so far; only meaningful once something
  // finished and work remains.
  const std::size_t total = std::max(agg.planned, agg.started);
  if (agg.done > 0 && agg.done < total && agg.elapsed_seconds > 0.0) {
    const double per_obligation =
        agg.elapsed_seconds / static_cast<double>(agg.done);
    const double eta =
        per_obligation * static_cast<double>(total - agg.done);
    line += ", ETA " + format_duration(eta);
  }
  return line;
}

void ProgressReporter::thread_main() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stopping_) {
    const auto wait = std::chrono::duration<double>(options_.interval_seconds);
    cv_.wait_for(lock, wait, [this] { return stopping_; });
    if (stopping_) break;
    lock.unlock();
    tick();
    lock.lock();
  }
}

void ProgressReporter::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopped_) return;
    stopped_ = true;
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  // Final snapshot so even a run shorter than one interval renders a line
  // (and the last line reflects the completed state).
  if (options_.interval_seconds > 0.0) tick();
  if (options_.render && wrote_tty_line_) {
    // Leave the terminal on a fresh line after the in-place heartbeat.
    std::fprintf(options_.out, "\n");
    std::fflush(options_.out);
  }
}

std::vector<StallEvent> ProgressReporter::stall_events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stalls_;
}

std::size_t ProgressReporter::stall_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stalls_.size();
}

std::string ProgressReporter::last_line() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return last_line_;
}

void append_stall_records(RunReport& report, const ProgressReporter& reporter) {
  for (const StallEvent& stall : reporter.stall_events()) {
    report.add("stall")
        .set("property", stall.property)
        .set("at_frame", stall.at_frame)
        .set("progress_key", stall.progress_key, /*timing=*/true)
        .set("stalled_seconds", stall.stalled_seconds, /*timing=*/true);
  }
}

}  // namespace trojanscout::telemetry
