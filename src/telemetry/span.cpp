#include "telemetry/span.hpp"

#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <utility>

namespace trojanscout::telemetry {

namespace {

std::atomic<TraceRecorder*> g_recorder{nullptr};
std::atomic<std::uint64_t> g_span_ids{1};
std::atomic<int> g_tids{1};

thread_local std::uint64_t tls_current_span = 0;

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void append_escaped(std::string& out, const std::string& text) {
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

TraceRecorder::TraceRecorder() : epoch_ns_(steady_ns()) {}

TraceRecorder* TraceRecorder::global() {
  return g_recorder.load(std::memory_order_acquire);
}

void TraceRecorder::set_global(TraceRecorder* recorder) {
  g_recorder.store(recorder, std::memory_order_release);
}

std::uint64_t TraceRecorder::next_id() {
  return g_span_ids.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t TraceRecorder::now_us() const {
  return (steady_ns() - epoch_ns_) / 1000u;
}

int TraceRecorder::thread_tid() {
  thread_local int tid = g_tids.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

void TraceRecorder::begin_event(const std::string& name, std::uint64_t span_id,
                                std::uint64_t parent_id, int tid,
                                std::uint64_t ts_us) {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back({true, name, span_id, parent_id, tid, ts_us});
}

void TraceRecorder::end_event(const std::string& name, std::uint64_t span_id,
                              int tid, std::uint64_t ts_us) {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back({false, name, span_id, 0, tid, ts_us});
}

std::size_t TraceRecorder::event_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

std::vector<TraceEvent> TraceRecorder::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

void TraceRecorder::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
}

std::string TraceRecorder::to_chrome_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\"traceEvents\":[";
  char buf[160];
  bool first = true;
  for (const TraceEvent& event : events_) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    append_escaped(out, event.name);
    std::snprintf(buf, sizeof(buf),
                  "\",\"ph\":\"%c\",\"ts\":%" PRIu64
                  ",\"pid\":1,\"tid\":%d,\"args\":{\"span_id\":%" PRIu64,
                  event.begin ? 'B' : 'E', event.ts_us, event.tid,
                  event.span_id);
    out += buf;
    if (event.begin) {
      std::snprintf(buf, sizeof(buf), ",\"parent_id\":%" PRIu64,
                    event.parent_id);
      out += buf;
    }
    out += "}}";
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

bool TraceRecorder::write_file(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  os << to_chrome_json() << "\n";
  return os.good();
}

Span::Span(std::string name) : name_(std::move(name)) {
  open(tls_current_span);
}

Span::Span(std::string name, std::uint64_t parent_id) : name_(std::move(name)) {
  open(parent_id);
}

void Span::open(std::uint64_t parent_id) {
  recorder_ = TraceRecorder::global();
  if (recorder_ == nullptr) return;
  id_ = recorder_->next_id();
  prev_current_ = tls_current_span;
  tls_current_span = id_;
  recorder_->begin_event(name_, id_, parent_id, TraceRecorder::thread_tid(),
                         recorder_->now_us());
}

Span::~Span() {
  if (recorder_ == nullptr) return;
  recorder_->end_event(name_, id_, TraceRecorder::thread_tid(),
                       recorder_->now_us());
  tls_current_span = prev_current_;
}

std::uint64_t Span::current_id() { return tls_current_span; }

}  // namespace trojanscout::telemetry
