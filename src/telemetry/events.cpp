#include "telemetry/events.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>

#include <unistd.h>

namespace trojanscout::telemetry {

namespace {

std::atomic<EventLog*> g_event_log{nullptr};

std::uint64_t wall_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

void append_escaped(std::string& out, std::string_view text) {
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string quoted(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  out += '"';
  append_escaped(out, text);
  out += '"';
  return out;
}

}  // namespace

EventLog::Field::Field(std::string_view field_key, std::string_view value)
    : key(field_key), json(quoted(value)) {}
EventLog::Field::Field(std::string_view field_key, const char* value)
    : Field(field_key, std::string_view(value)) {}
EventLog::Field::Field(std::string_view field_key, std::uint64_t value)
    : key(field_key), json(std::to_string(value)) {}
EventLog::Field::Field(std::string_view field_key, std::int64_t value)
    : key(field_key), json(std::to_string(value)) {}
EventLog::Field::Field(std::string_view field_key, int value)
    : key(field_key), json(std::to_string(value)) {}
EventLog::Field::Field(std::string_view field_key, double value)
    : key(field_key) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  json = buf;
}
EventLog::Field::Field(std::string_view field_key, bool value)
    : key(field_key), json(value ? "true" : "false") {}

EventLog::EventLog(const std::string& path, std::uint64_t max_bytes)
    : path_(path), max_bytes_(max_bytes) {
  out_.open(path, std::ios::out | std::ios::trunc);
  ok_ = out_.good();
  if (!ok_) return;
  std::lock_guard<std::mutex> lock(mutex_);
  write_header();
}

EventLog::~EventLog() {
  if (g_event_log.load(std::memory_order_acquire) == this) {
    g_event_log.store(nullptr, std::memory_order_release);
  }
}

std::uint64_t EventLog::emit(std::string_view type,
                             std::initializer_list<Field> fields) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!ok_) return 0;  // failed sink: record nothing, advance nothing
  if (max_bytes_ > 0 && bytes_written_ >= max_bytes_) {
    // Size-based rotation: the finished generation moves to `<path>.1`
    // (replacing the previous one) and a fresh stream restarts — header
    // first, seq from 0 — so each generation is a self-describing,
    // independently valid `trojanscout-events-v1` stream.
    out_.close();
    std::rename(path_.c_str(), (path_ + ".1").c_str());
    out_.open(path_, std::ios::out | std::ios::trunc);
    ok_ = out_.good();
    bytes_written_ = 0;
    next_seq_ = 0;
    rotations_++;
    if (!ok_) return 0;
    write_header();
  }
  return write_record(type, fields);
}

void EventLog::write_header() {
  // Header record: carries the schema name so validators can identify the
  // stream from its first line, and anchors seq 0.
  write_record("header", {{"schema", "trojanscout-events-v1"},
                          {"pid", static_cast<std::int64_t>(::getpid())}});
}

std::uint64_t EventLog::write_record(std::string_view type,
                                     std::initializer_list<Field> fields) {
  const std::uint64_t seq = next_seq_++;
  std::string line;
  line.reserve(128);
  line += "{\"type\": ";
  line += quoted(type);
  line += ", \"seq\": ";
  line += std::to_string(seq);
  line += ", \"ts_ms\": ";
  line += std::to_string(wall_ms());
  for (const Field& f : fields) {
    line += ", ";
    line += quoted(f.key);
    line += ": ";
    line += f.json;
  }
  line += "}\n";
  out_ << line;
  out_.flush();
  bytes_written_ += line.size();
  return seq;
}

std::uint64_t EventLog::record_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return next_seq_;
}

std::uint64_t EventLog::rotations() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return rotations_;
}

EventLog* EventLog::global() {
  return g_event_log.load(std::memory_order_acquire);
}

void EventLog::set_global(EventLog* log) {
  g_event_log.store(log, std::memory_order_release);
}

void emit_event(std::string_view type,
                std::initializer_list<EventLog::Field> fields) {
  EventLog* log = EventLog::global();
  if (log == nullptr) return;
  log->emit(type, fields);
}

}  // namespace trojanscout::telemetry
