// Structured event log: the `--events-out` JSONL sink of the audit daemon
// and the fleet coordinator.
//
// Where the Registry answers "how much" and the TraceRecorder answers
// "when", the event log answers "what happened": discrete operational
// facts — a worker died and was evicted from the ring, a batch of
// obligations was re-sharded, a job was refused with retry-after, a stale
// L2 claim file was stolen, a corrupt cache entry was skipped — each as
// one self-describing JSON line, so PR 7's failure handling is a
// machine-checkable artifact instead of unstructured log text.
//
// Format (`trojanscout-events-v1`): the first line is a header record
// carrying the schema name; every record has "type" first, a strictly
// increasing "seq" (monotonic per sink — the total order of what this
// process observed), and a wall-clock "ts_ms". tools/check_metrics.py
// validates the stream.
//
// Emitters deep in the stack (the cache layers) call the free function
// emit_event(), which forwards to the process-global sink installed with
// set_global() and is a no-op when none is — exactly the TraceRecorder
// pattern, so library code never depends on where the log goes.
#pragma once

#include <cstdint>
#include <fstream>
#include <initializer_list>
#include <mutex>
#include <string>
#include <string_view>

namespace trojanscout::telemetry {

class EventLog {
 public:
  /// One key/value of an event record. The value is pre-rendered to its
  /// JSON text so emit() is a single formatting pass under the lock.
  struct Field {
    Field(std::string_view key, std::string_view value);
    Field(std::string_view key, const char* value);
    Field(std::string_view key, std::uint64_t value);
    Field(std::string_view key, std::int64_t value);
    Field(std::string_view key, int value);
    Field(std::string_view key, double value);
    Field(std::string_view key, bool value);

    std::string key;
    std::string json;  // rendered JSON value (quoted/escaped for strings)
  };

  /// Opens (truncating) the sink and writes the schema header record
  /// (seq 0). Check ok() — a bad path records nothing but never throws.
  /// With `max_bytes` > 0 the sink rotates before growing past that size:
  /// the current file is renamed to `<path>.1` (replacing any previous
  /// rotation) and a fresh file restarts at seq 0 with a new header — a
  /// week-long daemon holds at most two generations on disk.
  explicit EventLog(const std::string& path, std::uint64_t max_bytes = 0);
  ~EventLog();

  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] const std::string& path() const { return path_; }

  /// Appends one record and flushes (the log must survive the crash it is
  /// describing). Returns the record's seq. Thread-safe.
  std::uint64_t emit(std::string_view type,
                     std::initializer_list<Field> fields);

  /// Records written so far to the *current* generation, header included.
  [[nodiscard]] std::uint64_t record_count() const;

  /// Size-based rotations performed so far.
  [[nodiscard]] std::uint64_t rotations() const;

  /// The installed sink, or nullptr when event logging is off.
  static EventLog* global();
  /// Installs (or removes, with nullptr) the process-global sink. The
  /// caller owns the sink and must keep it alive while installed.
  static void set_global(EventLog* log);

 private:
  /// Renders and writes one record; assumes mutex_ is held and ok_.
  std::uint64_t write_record(std::string_view type,
                             std::initializer_list<Field> fields);
  void write_header();

  std::string path_;
  std::uint64_t max_bytes_ = 0;
  bool ok_ = false;
  mutable std::mutex mutex_;
  std::ofstream out_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t bytes_written_ = 0;
  std::uint64_t rotations_ = 0;
};

/// Emits on the global sink; no-op (one relaxed load) when none installed.
void emit_event(std::string_view type,
                std::initializer_list<EventLog::Field> fields);

}  // namespace trojanscout::telemetry
