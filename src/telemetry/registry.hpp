// Low-overhead, thread-safe metrics registry: named monotonic counters and
// log-scale histogram timers.
//
// Hot-path design: every thread lazily acquires a *shard* per registry — a
// flat array of relaxed-atomic cells indexed by the interned metric id.
// Increments are single-writer (only the owning thread stores), so the fast
// path is one relaxed enabled-check, one thread-local lookup, and one
// relaxed store; there is no lock and no atomic RMW. snapshot() merges all
// shards under the registry mutex (shards of exited threads stay in the
// shard list and keep contributing — thread counts here are bounded by the
// pool size, so retiring them buys nothing).
//
// The registry is *disabled* by default: a disabled registry costs one
// relaxed atomic load per TS_COUNTER_ADD, and defining
// TROJANSCOUT_TELEMETRY_DISABLED (CMake -DTROJANSCOUT_DISABLE_TELEMETRY=ON)
// compiles the macros out entirely.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace trojanscout::telemetry {

using MetricId = std::size_t;

class Registry {
 public:
  /// Histogram buckets are log2 of the recorded duration in microseconds:
  /// bucket b counts samples in [2^(b-1), 2^b) µs, bucket 0 is < 1 µs.
  static constexpr std::size_t kHistogramBuckets = 40;

  Registry();
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Process-global registry the TS_COUNTER_* / TS_SCOPED_TIMER macros use.
  /// Starts disabled unless the TROJANSCOUT_TELEMETRY environment variable
  /// is set to a non-zero value.
  static Registry& global();

  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Interns a counter / histogram name; idempotent, thread-safe. Metric
  /// ids are stable for the registry's lifetime (reset() keeps them).
  MetricId counter(const std::string& name);
  MetricId histogram(const std::string& name);

  /// Adds to a counter on this thread's shard. Cheap and lock-free; safe
  /// from any thread. No-op while the registry is disabled.
  void add(MetricId id, std::uint64_t delta = 1);

  /// Records one duration sample into a histogram. No-op while disabled.
  void record_seconds(MetricId id, double seconds);

  struct CounterValue {
    std::string name;
    std::uint64_t value = 0;
  };
  struct HistogramValue {
    std::string name;
    std::uint64_t count = 0;
    double sum_seconds = 0.0;
    double min_seconds = 0.0;
    double max_seconds = 0.0;
    std::array<std::uint64_t, kHistogramBuckets> buckets{};
  };
  struct Snapshot {
    /// Sorted by name, so two runs doing the same work serialize the same.
    std::vector<CounterValue> counters;
    std::vector<HistogramValue> histograms;
  };

  /// Merges every thread's shard. Counter sums are exact (each cell is a
  /// monotonic single-writer atomic); a snapshot taken while workers are
  /// mid-increment simply observes a slightly earlier total.
  [[nodiscard]] Snapshot snapshot() const;

  /// Zeroes every cell of every shard (names and ids survive). Tests only:
  /// the caller must ensure no thread is concurrently incrementing.
  void reset();

  /// Bucket index for a duration (exposed for the tests).
  static std::size_t bucket_of(double seconds);

 private:
  struct Shard;
  struct State;

  Shard& local_shard();

  std::atomic<bool> enabled_{false};
  // Shared with thread-local handles so a shard never outlives its cells.
  std::shared_ptr<State> state_;
  const std::uint64_t serial_;
};

}  // namespace trojanscout::telemetry

#ifdef TROJANSCOUT_TELEMETRY_DISABLED

#define TS_COUNTER_ADD(name, delta) \
  do {                              \
  } while (0)

#else

/// Adds `delta` to the named global counter when telemetry is enabled.
/// The name→id lookup happens once per call site (function-local static).
#define TS_COUNTER_ADD(name, delta)                                  \
  do {                                                               \
    auto& ts_registry_ = ::trojanscout::telemetry::Registry::global(); \
    if (ts_registry_.enabled()) {                                    \
      static const ::trojanscout::telemetry::MetricId ts_metric_ =   \
          ts_registry_.counter(name);                                \
      ts_registry_.add(ts_metric_, (delta));                         \
    }                                                                \
  } while (0)

#endif
