// RAII span tracing exported as Chrome trace_event JSON.
//
// A Span marks one phase of work (an obligation, an unroll step, a SAT
// solve). Spans nest per thread through a thread-local current-span id, and
// cross thread-pool boundaries through an *explicit parent id*: the
// scheduler creates a root span, passes root.id() into each worker task,
// and the task's span names it as parent — so a full `soc_audit --jobs=N`
// run reconstructs as one span tree per obligation in Perfetto /
// chrome://tracing.
//
// Tracing is off unless a TraceRecorder is installed with set_global();
// with no recorder a Span construction is a single relaxed atomic load.
// Events are emitted as matched "B"/"E" (duration begin/end) pairs with
// span_id/parent_id args, timestamps in microseconds on the steady clock
// since the recorder's construction.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include <memory>
#include <mutex>

namespace trojanscout::telemetry {

/// One begin/end trace event as recorded. Public so the phase profiler
/// (telemetry/profile.hpp) can fold the span tree without reparsing the
/// Chrome JSON it serializes to.
struct TraceEvent {
  bool begin = true;
  std::string name;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;
  int tid = 0;
  std::uint64_t ts_us = 0;
};

class TraceRecorder {
 public:
  TraceRecorder();

  /// The installed recorder, or nullptr when tracing is off.
  static TraceRecorder* global();
  /// Installs (or removes, with nullptr) the process-global recorder. The
  /// caller owns the recorder and must keep it alive while installed and
  /// until every live Span that observed it has been destroyed.
  static void set_global(TraceRecorder* recorder);

  /// Fresh process-unique span id (never 0; 0 means "no parent").
  std::uint64_t next_id();

  /// Microseconds since the recorder was constructed (steady clock).
  [[nodiscard]] std::uint64_t now_us() const;

  /// Small dense id for the calling thread (assigned on first use).
  static int thread_tid();

  void begin_event(const std::string& name, std::uint64_t span_id,
                   std::uint64_t parent_id, int tid, std::uint64_t ts_us);
  void end_event(const std::string& name, std::uint64_t span_id, int tid,
                 std::uint64_t ts_us);

  [[nodiscard]] std::size_t event_count() const;

  /// Snapshot of all recorded events, in recording order. Per-thread
  /// subsequences are chronological; the interleaving across threads is not.
  [[nodiscard]] std::vector<TraceEvent> events() const;

  /// Drops all recorded events (ids keep advancing — they are process
  /// global). Lets a long-lived recorder bound its memory between jobs;
  /// a Span still live across a clear() leaves an unmatched end event,
  /// which per-job reachability filtering discards.
  void clear();

  /// The full {"traceEvents":[...]} document (Chrome trace_event JSON
  /// array format — loadable in Perfetto and chrome://tracing).
  [[nodiscard]] std::string to_chrome_json() const;

  /// Writes to_chrome_json() to `path`; false on I/O failure.
  bool write_file(const std::string& path) const;

 private:
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
  std::uint64_t epoch_ns_ = 0;
  std::uint64_t next_id_ = 1;
};

class Span {
 public:
  /// Child of the calling thread's current span (or a root if none).
  explicit Span(std::string name);
  /// Child of an explicit span — the cross-thread form: the parent id was
  /// produced on another thread (e.g. the scheduler's root span).
  Span(std::string name, std::uint64_t parent_id);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// This span's id (0 when tracing is off) — pass to tasks as their
  /// explicit parent.
  [[nodiscard]] std::uint64_t id() const { return id_; }

  /// The calling thread's innermost live span id (0 if none).
  static std::uint64_t current_id();

 private:
  void open(std::uint64_t parent_id);

  TraceRecorder* recorder_ = nullptr;  // captured at construction
  std::string name_;
  std::uint64_t id_ = 0;
  std::uint64_t prev_current_ = 0;
};

}  // namespace trojanscout::telemetry
