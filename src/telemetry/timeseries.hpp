// Continuous-monitoring time series: a bounded ring of per-window metric
// deltas derived from consecutive Registry snapshots.
//
// The Registry answers "how much since the process started"; a daemon
// meant to serve traffic for days also needs "how fast right now" and
// "how fast five minutes ago". A background Sampler thread snapshots the
// registry every --sample-interval-ms and folds each pair of consecutive
// snapshots into one Window: counters become deltas + rates over the
// window, histograms become per-window sample counts with p50/p90/p99
// estimated from the log2-µs bucket deltas. The ring keeps the newest
// `capacity` windows, so memory is bounded no matter how long the daemon
// lives (default 120 windows ≈ 2 minutes of history at 1 Hz).
//
// Concurrency: single writer (the sampler thread), lock-free readers.
// record() builds a fresh immutable window vector and publishes it through
// one atomic shared_ptr store; windows() is one atomic load. Readers never
// block the sampler and the sampler never blocks a stats/metrics reply —
// the copy cost stays O(capacity) per sample, trivial at sampling rates.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/registry.hpp"

namespace trojanscout::telemetry {

class TimeSeries {
 public:
  /// One counter's movement over a window. Only counters that moved are
  /// recorded — an idle daemon's windows stay near-empty.
  struct CounterWindow {
    std::string name;
    std::uint64_t delta = 0;
    double rate_per_s = 0.0;  // delta / span_seconds (0 when span unknown)
  };

  /// One histogram's samples recorded during a window, with tail
  /// quantiles estimated from the window's log2-µs bucket deltas (same
  /// estimator as telemetry::histogram_quantile).
  struct HistogramWindow {
    std::string name;
    std::uint64_t count = 0;
    double sum_seconds = 0.0;
    double p50_seconds = 0.0;
    double p90_seconds = 0.0;
    double p99_seconds = 0.0;
  };

  struct Window {
    std::uint64_t seq = 0;        // strictly increasing window ordinal
    std::uint64_t t_ms = 0;       // wall clock at the closing sample
    double span_seconds = 0.0;    // distance to the previous sample
    std::vector<CounterWindow> counters;      // sorted by name, moved only
    std::vector<HistogramWindow> histograms;  // sorted by name, moved only
  };

  explicit TimeSeries(std::size_t capacity = 120);

  /// Writer side (one thread). The first call only establishes the delta
  /// baseline and produces no window; every later call appends the window
  /// between the previous snapshot and this one. `t_ms` is wall clock,
  /// `steady_us` a monotonic clock (spans and staleness use the monotonic
  /// one; wall time is display-only).
  void record(const Registry::Snapshot& snapshot, std::uint64_t t_ms,
              std::uint64_t steady_us);

  /// Reader side, lock-free: the newest windows, oldest first. The
  /// returned vector is immutable — record() publishes a fresh one.
  [[nodiscard]] std::shared_ptr<const std::vector<Window>> windows() const;

  /// Total record() calls (baseline sample included).
  [[nodiscard]] std::uint64_t samples() const {
    return samples_.load(std::memory_order_relaxed);
  }
  /// Monotonic timestamp of the newest sample; 0 before the first.
  [[nodiscard]] std::uint64_t last_sample_steady_us() const {
    return last_steady_us_.load(std::memory_order_relaxed);
  }
  /// Wall-clock of the newest sample; 0 before the first.
  [[nodiscard]] std::uint64_t last_sample_ms() const {
    return last_ms_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  std::size_t capacity_;
  // Writer-private delta baseline.
  Registry::Snapshot prev_;
  bool has_prev_ = false;
  std::uint64_t prev_steady_us_ = 0;
  std::uint64_t next_seq_ = 0;

  std::atomic<std::uint64_t> samples_{0};
  std::atomic<std::uint64_t> last_steady_us_{0};
  std::atomic<std::uint64_t> last_ms_{0};
  std::shared_ptr<const std::vector<Window>> published_;  // atomic access
};

/// Background sampler feeding a TimeSeries from a Registry: one thread,
/// one snapshot per interval (plus an immediate baseline at start()).
class Sampler {
 public:
  Sampler(TimeSeries& series, Registry& registry, double interval_ms);
  ~Sampler();

  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  void start();
  /// Stops and joins the thread. Idempotent.
  void stop();

  [[nodiscard]] double interval_ms() const { return interval_ms_; }
  /// Microseconds since the newest sample on the sampler's monotonic
  /// clock; a value far above interval_ms means the sampler is stalled.
  [[nodiscard]] std::uint64_t last_sample_age_us() const;

 private:
  void run();

  TimeSeries& series_;
  Registry& registry_;
  double interval_ms_;
  std::thread thread_;
  bool stop_ = false;  // guarded by mutex_
  std::mutex mutex_;
  std::condition_variable cv_;
};

}  // namespace trojanscout::telemetry
