// Live audit progress: a heartbeat renderer and stall watchdog fed by the
// engine/BMC/ATPG/SAT layers while obligations run.
//
// The plumbing is one lock-free ObligationProgress cell block per in-flight
// obligation: the worker publishes absolute totals (frames unrolled, SAT
// conflicts/propagations, clauses learned, ATPG backtracks) with relaxed
// stores at coarse intervals, and the reporter thread reads them without
// ever touching the solver. A ProgressReporter installed with set_global()
// (the CLI does this for --progress) owns a background thread that renders
// a throttled stderr heartbeat — single-line rewrite on a TTY, plain
// `[progress]` log lines otherwise — and runs the watchdog: an obligation
// whose progress key stops advancing for stall_window_seconds is flagged
// *stalled* (a hung 30-minute audit becomes distinguishable from a
// productive one). Stall episodes are kept as events and can be appended to
// a RunReport ({"type":"stall"} records) after the run.
//
// With no reporter installed nothing in the hot paths costs more than a
// null-pointer test, and stderr stays byte-untouched.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "util/stopwatch.hpp"

namespace trojanscout::telemetry {

class RunReport;

/// Publication cells for one obligation's live progress. All counters are
/// absolute totals (monotone per obligation); writers use relaxed stores,
/// the reporter uses relaxed loads — a torn read across fields only skews
/// one heartbeat line.
struct ObligationProgress {
  std::atomic<std::uint64_t> frames{0};
  std::atomic<std::uint64_t> conflicts{0};
  std::atomic<std::uint64_t> propagations{0};
  std::atomic<std::uint64_t> learned_clauses{0};
  std::atomic<std::uint64_t> backtracks{0};

  /// Monotone progress key the watchdog compares between ticks: advances
  /// whenever any counter advances.
  [[nodiscard]] std::uint64_t key() const {
    return frames.load(std::memory_order_relaxed) +
           conflicts.load(std::memory_order_relaxed) +
           propagations.load(std::memory_order_relaxed) +
           learned_clauses.load(std::memory_order_relaxed) +
           backtracks.load(std::memory_order_relaxed);
  }
};

struct ProgressOptions {
  /// Heartbeat period. <= 0 starts no background thread — the owner calls
  /// tick() by hand (tests, and callers embedding their own loop).
  double interval_seconds = 1.0;
  /// Watchdog: flag an obligation as stalled after this long without its
  /// progress key advancing.
  double stall_window_seconds = 30.0;
  /// Render heartbeat lines (false = watchdog only, no output).
  bool render = true;
  /// Force plain log lines even on a TTY (tests, CI logs).
  bool force_plain = false;
  /// Heartbeat destination; nullptr = stderr.
  std::FILE* out = nullptr;
};

/// One watchdog detection: the obligation made no progress for
/// `stalled_seconds` (>= the configured window). The run is NOT aborted —
/// stalls are reported, budgets do the killing.
struct StallEvent {
  std::string property;
  std::uint64_t at_frame = 0;
  std::uint64_t progress_key = 0;
  double stalled_seconds = 0.0;
};

class ProgressReporter {
 public:
  /// Handle for one in-flight obligation. The worker owns a shared_ptr so
  /// the cells outlive the reporter's snapshots even if the reporter is
  /// destroyed mid-run.
  class Task {
   public:
    ObligationProgress cells;

    [[nodiscard]] const std::string& label() const { return label_; }
    [[nodiscard]] bool done() const {
      return done_.load(std::memory_order_acquire);
    }
    /// Marks the obligation complete; it leaves the active set and can no
    /// longer stall.
    void finish() { done_.store(true, std::memory_order_release); }

   private:
    friend class ProgressReporter;
    std::string label_;
    std::atomic<bool> done_{false};
    // Watchdog bookkeeping — reporter-thread only (guarded by the
    // reporter's mutex).
    std::uint64_t last_key_ = 0;
    double last_advance_seconds_ = 0.0;
    bool stalled_ = false;
  };

  explicit ProgressReporter(ProgressOptions options = {});
  ~ProgressReporter();
  ProgressReporter(const ProgressReporter&) = delete;
  ProgressReporter& operator=(const ProgressReporter&) = delete;

  /// The installed reporter, or nullptr when live progress is off. Same
  /// ownership contract as TraceRecorder::set_global.
  static ProgressReporter* global();
  static void set_global(ProgressReporter* reporter);

  /// Registers an obligation; the caller updates task->cells while it runs
  /// and calls task->finish() when it completes.
  std::shared_ptr<Task> begin(std::string label);

  /// Adds to the planned-obligation total (the "12/21 done" denominator and
  /// the ETA basis). Cumulative: call once per scheduled batch.
  void add_planned(std::size_t count);

  /// Cross-obligation totals as of the last tick()/aggregate() call.
  struct Aggregate {
    std::size_t planned = 0;
    std::size_t started = 0;
    std::size_t done = 0;
    std::size_t active = 0;
    std::size_t stalled = 0;
    std::uint64_t conflicts = 0;
    std::uint64_t propagations = 0;
    std::uint64_t learned_clauses = 0;
    std::uint64_t backtracks = 0;
    /// Deepest frame among active obligations, and its label.
    std::uint64_t deepest_frame = 0;
    std::string deepest_label;
    double elapsed_seconds = 0.0;
  };
  [[nodiscard]] Aggregate aggregate() const;

  /// One watchdog + render pass. The background thread calls this every
  /// interval; tests call it directly (interval_seconds <= 0).
  void tick();

  /// Stops the background thread and finishes the heartbeat line (TTY mode
  /// leaves the cursor mid-line otherwise). Idempotent; the destructor
  /// calls it.
  void stop();

  [[nodiscard]] std::vector<StallEvent> stall_events() const;
  [[nodiscard]] std::size_t stall_count() const;

  /// The last heartbeat line rendered (without cursor control), for tests.
  [[nodiscard]] std::string last_line() const;

 private:
  void thread_main();
  std::string format_line(const Aggregate& agg, double interval_seconds);

  ProgressOptions options_;
  util::Stopwatch clock_;

  mutable std::mutex mutex_;
  std::vector<std::shared_ptr<Task>> tasks_;
  std::vector<StallEvent> stalls_;
  std::size_t planned_ = 0;
  // Rate bookkeeping between ticks (mutex-guarded; only tick() writes).
  double last_tick_seconds_ = 0.0;
  std::uint64_t last_conflicts_ = 0;
  std::uint64_t last_propagations_ = 0;
  std::string last_line_;
  std::atomic<bool> wrote_tty_line_{false};

  std::condition_variable cv_;
  bool stopping_ = false;
  bool stopped_ = false;
  std::thread thread_;
};

/// Appends one {"type":"stall"} record per watchdog event. Stalls are
/// wall-clock phenomena, so these records are inherently timing-dependent;
/// the duration field is flagged timing, the identity fields are not.
void append_stall_records(RunReport& report, const ProgressReporter& reporter);

}  // namespace trojanscout::telemetry
