// Machine-readable run reports: typed records serialized as JSON-lines.
//
// Every record is an ordered list of (key, value) fields — insertion order
// is serialization order, so a given emitter produces byte-stable output.
// Fields flagged `timing` carry wall-clock / memory measurements that vary
// run to run; to_jsonl(/*include_timing=*/false) omits them, which is how
// the tests (and the acceptance bar) assert that a --jobs=4 report is
// byte-identical to a --jobs=1 report modulo timing.
//
// The same sink serves the CLI (`--metrics-out audit.jsonl`) and the bench
// harnesses (`bench_table1 --metrics-out BENCH_table1.json`);
// tools/check_metrics.py validates the emitted lines against the schema.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace trojanscout::telemetry {

class RunReport {
 public:
  class Record {
   public:
    Record& set(std::string key, std::int64_t value, bool timing = false);
    Record& set(std::string key, std::uint64_t value, bool timing = false);
    Record& set(std::string key, int value, bool timing = false) {
      return set(std::move(key), static_cast<std::int64_t>(value), timing);
    }
    Record& set(std::string key, double value, bool timing = false);
    Record& set(std::string key, bool value, bool timing = false);
    Record& set(std::string key, std::string value, bool timing = false);
    Record& set(std::string key, const char* value, bool timing = false) {
      return set(std::move(key), std::string(value), timing);
    }
    Record& set(std::string key, std::vector<std::uint64_t> values,
                bool timing = false);

    /// One JSON object, no trailing newline.
    [[nodiscard]] std::string to_json(bool include_timing) const;

   private:
    struct Field {
      enum class Kind { kInt, kUint, kDouble, kBool, kString, kUintArray };
      std::string key;
      Kind kind = Kind::kInt;
      bool timing = false;
      std::int64_t int_value = 0;
      std::uint64_t uint_value = 0;
      double double_value = 0.0;
      bool bool_value = false;
      std::string string_value;
      std::vector<std::uint64_t> array_value;
    };

    Field& upsert(std::string key, bool timing);

    std::vector<Field> fields_;
  };

  /// Appends a record whose first field is `"type": type` — every consumer
  /// (tools/check_metrics.py, the tests) dispatches on it.
  Record& add(const std::string& type);

  [[nodiscard]] std::size_t size() const { return records_.size(); }
  [[nodiscard]] const std::vector<Record>& records() const { return records_; }

  /// One JSON object per line, each terminated by '\n'.
  [[nodiscard]] std::string to_jsonl(bool include_timing = true) const;

  /// Writes to_jsonl(true) to `path`; false on I/O failure.
  bool write_file(const std::string& path) const;

 private:
  std::vector<Record> records_;
};

}  // namespace trojanscout::telemetry
