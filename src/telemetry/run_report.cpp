#include "telemetry/run_report.hpp"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <utility>

namespace trojanscout::telemetry {

namespace {

void append_escaped(std::string& out, const std::string& text) {
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_double(std::string& out, double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  // %.17g never emits JSON-invalid text for finite values; inf/nan would,
  // so clamp them to null.
  const std::string text(buf);
  if (text.find("inf") != std::string::npos ||
      text.find("nan") != std::string::npos) {
    out += "null";
  } else {
    out += text;
  }
}

}  // namespace

RunReport::Record::Field& RunReport::Record::upsert(std::string key,
                                                    bool timing) {
  for (Field& field : fields_) {
    if (field.key == key) {
      field.timing = timing;
      return field;
    }
  }
  fields_.emplace_back();
  fields_.back().key = std::move(key);
  fields_.back().timing = timing;
  return fields_.back();
}

RunReport::Record& RunReport::Record::set(std::string key, std::int64_t value,
                                          bool timing) {
  Field& field = upsert(std::move(key), timing);
  field.kind = Field::Kind::kInt;
  field.int_value = value;
  return *this;
}

RunReport::Record& RunReport::Record::set(std::string key, std::uint64_t value,
                                          bool timing) {
  Field& field = upsert(std::move(key), timing);
  field.kind = Field::Kind::kUint;
  field.uint_value = value;
  return *this;
}

RunReport::Record& RunReport::Record::set(std::string key, double value,
                                          bool timing) {
  Field& field = upsert(std::move(key), timing);
  field.kind = Field::Kind::kDouble;
  field.double_value = value;
  return *this;
}

RunReport::Record& RunReport::Record::set(std::string key, bool value,
                                          bool timing) {
  Field& field = upsert(std::move(key), timing);
  field.kind = Field::Kind::kBool;
  field.bool_value = value;
  return *this;
}

RunReport::Record& RunReport::Record::set(std::string key, std::string value,
                                          bool timing) {
  Field& field = upsert(std::move(key), timing);
  field.kind = Field::Kind::kString;
  field.string_value = std::move(value);
  return *this;
}

RunReport::Record& RunReport::Record::set(std::string key,
                                          std::vector<std::uint64_t> values,
                                          bool timing) {
  Field& field = upsert(std::move(key), timing);
  field.kind = Field::Kind::kUintArray;
  field.array_value = std::move(values);
  return *this;
}

std::string RunReport::Record::to_json(bool include_timing) const {
  std::string out = "{";
  char buf[32];
  bool first = true;
  for (const Field& field : fields_) {
    if (field.timing && !include_timing) continue;
    if (!first) out += ',';
    first = false;
    out += '"';
    append_escaped(out, field.key);
    out += "\":";
    switch (field.kind) {
      case Field::Kind::kInt:
        std::snprintf(buf, sizeof(buf), "%" PRId64, field.int_value);
        out += buf;
        break;
      case Field::Kind::kUint:
        std::snprintf(buf, sizeof(buf), "%" PRIu64, field.uint_value);
        out += buf;
        break;
      case Field::Kind::kDouble:
        append_double(out, field.double_value);
        break;
      case Field::Kind::kBool:
        out += field.bool_value ? "true" : "false";
        break;
      case Field::Kind::kString:
        out += '"';
        append_escaped(out, field.string_value);
        out += '"';
        break;
      case Field::Kind::kUintArray: {
        out += '[';
        bool first_item = true;
        for (const std::uint64_t value : field.array_value) {
          if (!first_item) out += ',';
          first_item = false;
          std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
          out += buf;
        }
        out += ']';
        break;
      }
    }
  }
  out += '}';
  return out;
}

RunReport::Record& RunReport::add(const std::string& type) {
  records_.emplace_back();
  records_.back().set("type", type);
  return records_.back();
}

std::string RunReport::to_jsonl(bool include_timing) const {
  std::string out;
  for (const Record& record : records_) {
    out += record.to_json(include_timing);
    out += '\n';
  }
  return out;
}

bool RunReport::write_file(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  os << to_jsonl(true);
  return os.good();
}

}  // namespace trojanscout::telemetry
