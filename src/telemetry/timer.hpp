// ScopedTimer: RAII timer that feeds a Registry histogram on destruction.
//
// Built on util::Stopwatch (steady clock — never the wall clock, so a
// recorded duration cannot go negative under NTP adjustment). Use the
// TS_SCOPED_TIMER macro for the common global-registry case; it is fully
// compiled out under TROJANSCOUT_TELEMETRY_DISABLED and costs one relaxed
// load when the registry is disabled.
#pragma once

#include "telemetry/registry.hpp"
#include "util/stopwatch.hpp"

namespace trojanscout::telemetry {

class ScopedTimer {
 public:
  /// Records into `registry`'s histogram `id` when the scope exits.
  ScopedTimer(Registry& registry, MetricId id)
      : registry_(registry.enabled() ? &registry : nullptr), id_(id) {}

  /// Global-registry convenience (interned per call through the macro).
  explicit ScopedTimer(const char* name)
      : registry_(Registry::global().enabled() ? &Registry::global()
                                               : nullptr),
        id_(registry_ != nullptr ? registry_->histogram(name) : 0) {}

  ~ScopedTimer() {
    if (registry_ != nullptr) {
      registry_->record_seconds(id_, watch_.elapsed_seconds());
    }
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Registry* registry_;  // null = disabled at construction: record nothing
  MetricId id_;
  util::Stopwatch watch_;
};

}  // namespace trojanscout::telemetry

#ifdef TROJANSCOUT_TELEMETRY_DISABLED

#define TS_SCOPED_TIMER(name) \
  do {                        \
  } while (0)

#else

#define TS_TIMER_CONCAT_IMPL(a, b) a##b
#define TS_TIMER_CONCAT(a, b) TS_TIMER_CONCAT_IMPL(a, b)
/// Times the rest of the enclosing scope into the named global histogram.
#define TS_SCOPED_TIMER(name)                           \
  ::trojanscout::telemetry::ScopedTimer TS_TIMER_CONCAT( \
      ts_scoped_timer_, __LINE__)(name)

#endif
