#include "telemetry/timeseries.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <utility>

#include "telemetry/profile.hpp"

namespace trojanscout::telemetry {

namespace {

/// Bucket-delta histogram reconstructed for one window, shaped so the
/// shared histogram_quantile estimator applies. min/max are the edges of
/// the populated delta buckets (the registry's exact min/max describe the
/// whole run, not this window).
Registry::HistogramValue window_histogram(
    const Registry::HistogramValue& now, const Registry::HistogramValue* prev) {
  Registry::HistogramValue delta;
  delta.name = now.name;
  delta.count = now.count - (prev != nullptr ? prev->count : 0);
  delta.sum_seconds = now.sum_seconds - (prev != nullptr ? prev->sum_seconds : 0.0);
  if (delta.sum_seconds < 0.0) delta.sum_seconds = 0.0;
  bool first_seen = false;
  for (std::size_t b = 0; b < delta.buckets.size(); ++b) {
    const std::uint64_t before = prev != nullptr ? prev->buckets[b] : 0;
    delta.buckets[b] = now.buckets[b] - before;
    if (delta.buckets[b] == 0) continue;
    const double lo_us = b == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(b) - 1);
    const double hi_us = std::ldexp(1.0, static_cast<int>(b));
    if (!first_seen) {
      delta.min_seconds = lo_us / 1e6;
      first_seen = true;
    }
    delta.max_seconds = hi_us / 1e6;
  }
  return delta;
}

}  // namespace

TimeSeries::TimeSeries(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      published_(std::make_shared<const std::vector<Window>>()) {}

void TimeSeries::record(const Registry::Snapshot& snapshot, std::uint64_t t_ms,
                        std::uint64_t steady_us) {
  samples_.fetch_add(1, std::memory_order_relaxed);
  last_ms_.store(t_ms, std::memory_order_relaxed);
  last_steady_us_.store(steady_us, std::memory_order_relaxed);
  if (!has_prev_) {
    prev_ = snapshot;
    prev_steady_us_ = steady_us;
    has_prev_ = true;
    return;
  }

  Window window;
  window.seq = next_seq_++;
  window.t_ms = t_ms;
  window.span_seconds =
      steady_us > prev_steady_us_
          ? static_cast<double>(steady_us - prev_steady_us_) / 1e6
          : 0.0;

  // Both snapshot vectors are sorted by name; walk them in lockstep. A
  // counter absent from the baseline (first touched this window) counts
  // from zero. Counters can only appear, never vanish — the registry
  // interns names for its lifetime.
  std::size_t pi = 0;
  for (const auto& c : snapshot.counters) {
    while (pi < prev_.counters.size() && prev_.counters[pi].name < c.name) pi++;
    const std::uint64_t before =
        pi < prev_.counters.size() && prev_.counters[pi].name == c.name
            ? prev_.counters[pi].value
            : 0;
    if (c.value <= before) continue;  // idle counter: no window entry
    CounterWindow cw;
    cw.name = c.name;
    cw.delta = c.value - before;
    cw.rate_per_s = window.span_seconds > 0.0
                        ? static_cast<double>(cw.delta) / window.span_seconds
                        : 0.0;
    window.counters.push_back(std::move(cw));
  }
  pi = 0;
  for (const auto& h : snapshot.histograms) {
    while (pi < prev_.histograms.size() && prev_.histograms[pi].name < h.name) {
      pi++;
    }
    const Registry::HistogramValue* before =
        pi < prev_.histograms.size() && prev_.histograms[pi].name == h.name
            ? &prev_.histograms[pi]
            : nullptr;
    const Registry::HistogramValue delta = window_histogram(h, before);
    if (delta.count == 0) continue;
    HistogramWindow hw;
    hw.name = h.name;
    hw.count = delta.count;
    hw.sum_seconds = delta.sum_seconds;
    hw.p50_seconds = histogram_quantile(delta, 0.5);
    hw.p90_seconds = histogram_quantile(delta, 0.9);
    hw.p99_seconds = histogram_quantile(delta, 0.99);
    window.histograms.push_back(std::move(hw));
  }

  auto current = std::atomic_load_explicit(&published_, std::memory_order_acquire);
  auto next = std::make_shared<std::vector<Window>>();
  next->reserve(std::min(current->size() + 1, capacity_));
  const std::size_t drop =
      current->size() + 1 > capacity_ ? current->size() + 1 - capacity_ : 0;
  next->insert(next->end(), current->begin() + static_cast<std::ptrdiff_t>(drop),
               current->end());
  next->push_back(std::move(window));
  std::atomic_store_explicit(
      &published_,
      std::shared_ptr<const std::vector<Window>>(std::move(next)),
      std::memory_order_release);

  prev_ = snapshot;
  prev_steady_us_ = steady_us;
}

std::shared_ptr<const std::vector<TimeSeries::Window>> TimeSeries::windows()
    const {
  return std::atomic_load_explicit(&published_, std::memory_order_acquire);
}

Sampler::Sampler(TimeSeries& series, Registry& registry, double interval_ms)
    : series_(series),
      registry_(registry),
      interval_ms_(interval_ms > 0.0 ? interval_ms : 0.0) {}

Sampler::~Sampler() { stop(); }

void Sampler::start() {
  if (interval_ms_ <= 0.0 || thread_.joinable()) return;
  thread_ = std::thread([this] { run(); });
}

void Sampler::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

std::uint64_t Sampler::last_sample_age_us() const {
  const std::uint64_t last = series_.last_sample_steady_us();
  if (last == 0) return 0;
  const auto now = std::chrono::duration_cast<std::chrono::microseconds>(
                       std::chrono::steady_clock::now().time_since_epoch())
                       .count();
  const auto now_us = static_cast<std::uint64_t>(now);
  return now_us > last ? now_us - last : 0;
}

void Sampler::run() {
  const auto sample = [this] {
    const std::uint64_t t_ms = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
    const std::uint64_t steady_us = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
    series_.record(registry_.snapshot(), t_ms, steady_us);
  };
  sample();  // baseline: the first real window closes one interval later
  const auto interval = std::chrono::duration<double, std::milli>(interval_ms_);
  std::unique_lock<std::mutex> lock(mutex_);
  while (!cv_.wait_for(lock, interval, [this] { return stop_; })) {
    lock.unlock();
    sample();
    lock.lock();
  }
}

}  // namespace trojanscout::telemetry
