#include "atpg/atpg.hpp"

#include <algorithm>

#include "netlist/coi.hpp"
#include "netlist/scoap.hpp"
#include "sim/ternary.hpp"
#include "telemetry/progress.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/span.hpp"
#include "util/logging.hpp"
#include "util/resource.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace trojanscout::atpg {

using netlist::Gate;
using netlist::kNullSignal;
using netlist::Netlist;
using netlist::Op;
using netlist::Scoap;
using netlist::SignalId;
using sim::Ternary;

namespace {

/// A justification objective: drive `signal` at `frame` to `value`.
struct Objective {
  SignalId signal;
  std::size_t frame;
  bool value;
};

class Engine {
 public:
  Engine(const Netlist& nl, SignalId bad, const AtpgOptions& options)
      : nl_(nl),
        bad_(bad),
        options_(options),
        topo_(nl.topo_order()),
        scoap_(options.use_scoap_guidance ? netlist::compute_scoap(nl)
                                          : Scoap{}) {
    // Cone-of-influence reduction: only gates that can affect the bad
    // signal are simulated and searched.
    const std::vector<bool> cone = netlist::sequential_coi(nl, {bad});
    std::vector<SignalId> filtered;
    filtered.reserve(topo_.size());
    for (const SignalId id : topo_) {
      if (cone[id]) filtered.push_back(id);
    }
    topo_ = std::move(filtered);
    if (!options.use_scoap_guidance) {
      scoap_.cc0.assign(nl.size(), 1);
      scoap_.cc1.assign(nl.size(), 1);
    }
    rng_ = util::Xoshiro256(options.seed);
  }

  AtpgResult run() {
    util::Stopwatch timer;
    const std::uint64_t rss_before = util::current_rss_bytes();
    AtpgResult result;

    {
      telemetry::Span random_span("atpg:random-sim");
      if (random_phase(timer, result)) {
        result.seconds = timer.elapsed_seconds();
        const std::uint64_t rss_now = util::current_rss_bytes();
        result.memory_bytes =
            rss_now > rss_before ? rss_now - rss_before : nl_.size();
        finish_counters(result);
        return result;
      }
    }

    for (std::size_t target = options_.start_frame;
         target < options_.max_frames; ++target) {
      if (cancel_requested()) {
        result.status = AtpgStatus::kResourceOut;
        result.cancelled = true;
        break;
      }
      if (timer.elapsed_seconds() > options_.time_limit_seconds ||
          (target + 1) * (nl_.size() + nl_.num_inputs()) *
                  sizeof(Ternary) * 2 >
              options_.memory_limit_bytes) {
        result.status = AtpgStatus::kResourceOut;
        break;
      }
      ensure_frames(target + 1);
      if (options_.progress != nullptr) {
        options_.progress->frames.store(target + 1,
                                        std::memory_order_relaxed);
      }
      telemetry::Span frame_span("atpg:frame");
      const std::uint64_t decisions_before = decisions_;
      const std::uint64_t backtracks_before = backtracks_;
      const std::uint64_t implications_before = implications_;
      const double frame_started = timer.elapsed_seconds();
      const FrameSearch outcome = search_frame(target, timer);
      {
        telemetry::FlightWindow w;
        w.frame = target;
        w.decisions = decisions_ - decisions_before;
        w.backtracks = backtracks_ - backtracks_before;
        w.implications = implications_ - implications_before;
        w.wall_us = static_cast<std::uint64_t>(
            (timer.elapsed_seconds() - frame_started) * 1e6);
        result.flight.push_back(w);
      }
      TS_COUNTER_ADD("atpg.frames", 1);
      if (outcome == FrameSearch::kFound) {
        result.status = AtpgStatus::kViolated;
        result.witness = extract_witness(target);
        result.frames_completed = target;
        break;
      }
      if (outcome == FrameSearch::kTimeout) {
        result.status = AtpgStatus::kResourceOut;
        result.cancelled = cancel_requested();
        break;
      }
      if (outcome == FrameSearch::kClean) {
        result.frames_proven_clean++;
      } else {
        result.frames_aborted++;
      }
      result.frames_completed = target + 1;
      if (result.frames_completed == options_.max_frames) {
        result.status = AtpgStatus::kBoundReached;
      }
    }

    result.seconds = timer.elapsed_seconds();
    // Engine working set: one ternary value array and one PI assignment
    // array per materialized frame — no CNF copies, no learned clauses.
    // This is what reproduces the paper's ~10x memory advantage over BMC.
    std::uint64_t accounted = 0;
    for (const auto& frame : values_) accounted += frame.capacity();
    for (const auto& frame : pi_assign_) accounted += frame.capacity();
    const std::uint64_t rss_after = util::current_rss_bytes();
    const std::uint64_t rss_delta =
        rss_after > rss_before ? rss_after - rss_before : 0;
    (void)rss_delta;
    result.memory_bytes = accounted * sizeof(Ternary);
    finish_counters(result);
    return result;
  }

 private:
  enum class FrameSearch { kFound, kClean, kAborted, kTimeout };

  /// Copies the engine tallies into the result and publishes the run's
  /// deltas to the global telemetry registry.
  void finish_counters(AtpgResult& result) const {
    result.decisions = decisions_;
    result.backtracks = backtracks_;
    result.implications = implications_;
    TS_COUNTER_ADD("atpg.runs", 1);
    TS_COUNTER_ADD("atpg.decisions", decisions_);
    TS_COUNTER_ADD("atpg.backtracks", backtracks_);
    TS_COUNTER_ADD("atpg.implications", implications_);
    // Final publication so the cells agree with the result totals once the
    // run returns.
    if (options_.progress != nullptr) {
      options_.progress->backtracks.store(backtracks_,
                                          std::memory_order_relaxed);
    }
  }

  [[nodiscard]] bool cancel_requested() const {
    return options_.cancel != nullptr &&
           options_.cancel->load(std::memory_order_acquire);
  }

  /// Random-pattern phase: simulates random input sequences watching the
  /// bad signal. On a hit, fills the result (violated + witness) and
  /// returns true. Spends at most ~20% of the time budget.
  bool random_phase(const util::Stopwatch& timer, AtpgResult& result) {
    // Functional stimulus hints first, then weighted random sequences.
    const std::size_t total = options_.stimulus_sequences.size() +
                              options_.random_sequences;
    if (total == 0) return false;
    const std::size_t n_inputs = nl_.num_inputs();
    for (std::size_t s = 0; s < total; ++s) {
      if (timer.elapsed_seconds() > options_.time_limit_seconds * 0.2) break;
      ensure_frames(1);
      const std::vector<util::BitVec>* scripted =
          s < options_.stimulus_sequences.size()
              ? &options_.stimulus_sequences[s]
              : nullptr;
      // Reuse frame 0 storage as rolling state; keep the input history so a
      // hit can be converted into a witness.
      std::vector<std::vector<bool>> history;
      auto& vals = values_[0];
      std::vector<Ternary> regs(nl_.dffs().size());
      for (std::size_t i = 0; i < nl_.dffs().size(); ++i) {
        regs[i] = sim::t_from_bool(nl_.gate(nl_.dffs()[i]).init);
      }
      // Weighted random patterns (industry standard): each input gets a
      // per-sequence bias so rare-but-necessary polarities (e.g. an
      // inactive reset) hold for long stretches.
      std::vector<std::uint8_t> bias(n_inputs);
      for (auto& b : bias) {
        const std::uint64_t r = rng_.next_below(4);
        b = r == 0 ? 1 : r == 1 ? 15 : 8;  // P(one) = 1/16, 15/16, or 1/2
      }
      const std::size_t run_frames =
          scripted ? std::min(options_.max_frames, scripted->size())
                   : options_.max_frames;
      for (std::size_t f = 0; f < run_frames; ++f) {
        if ((f & 0x3FF) == 0 &&
            (cancel_requested() ||
             timer.elapsed_seconds() > options_.time_limit_seconds * 0.2)) {
          break;
        }
        history.emplace_back(n_inputs);
        auto& frame_inputs = history.back();
        for (std::size_t i = 0; i < n_inputs; ++i) {
          frame_inputs[i] = scripted ? (i < (*scripted)[f].size() &&
                                        (*scripted)[f].get(i))
                                     : (rng_.next_below(16) < bias[i]);
        }
        // One combinational evaluation with concrete state and inputs.
        for (std::size_t i = 0; i < nl_.dffs().size(); ++i) {
          vals[nl_.dffs()[i]] = regs[i];
        }
        for (const SignalId id : topo_) {
          const Gate& g = nl_.gate(id);
          switch (g.op) {
            case Op::kConst0: vals[id] = Ternary::kZero; break;
            case Op::kConst1: vals[id] = Ternary::kOne; break;
            case Op::kInput:
              vals[id] = sim::t_from_bool(
                  frame_inputs[nl_.input_index(id)]);
              break;
            case Op::kDff: break;
            case Op::kBuf: vals[id] = vals[g.fanin[0]]; break;
            case Op::kNot: vals[id] = sim::t_not(vals[g.fanin[0]]); break;
            case Op::kAnd:
              vals[id] = sim::t_and(vals[g.fanin[0]], vals[g.fanin[1]]);
              break;
            case Op::kOr:
              vals[id] = sim::t_or(vals[g.fanin[0]], vals[g.fanin[1]]);
              break;
            case Op::kXor:
              vals[id] = sim::t_xor(vals[g.fanin[0]], vals[g.fanin[1]]);
              break;
            case Op::kXnor:
              vals[id] = sim::t_not(
                  sim::t_xor(vals[g.fanin[0]], vals[g.fanin[1]]));
              break;
            case Op::kNand:
              vals[id] = sim::t_not(
                  sim::t_and(vals[g.fanin[0]], vals[g.fanin[1]]));
              break;
            case Op::kNor:
              vals[id] = sim::t_not(
                  sim::t_or(vals[g.fanin[0]], vals[g.fanin[1]]));
              break;
            case Op::kMux:
              vals[id] = sim::t_mux(vals[g.fanin[0]], vals[g.fanin[1]],
                                    vals[g.fanin[2]]);
              break;
          }
        }
        implications_++;
        if (vals[bad_] == Ternary::kOne && f >= options_.start_frame) {
          result.status = AtpgStatus::kViolated;
          sim::Witness witness;
          witness.violation_frame = f;
          for (std::size_t k = 0; k <= f; ++k) {
            sim::InputFrame in_frame;
            in_frame.bits = util::BitVec(n_inputs);
            for (std::size_t i = 0; i < n_inputs; ++i) {
              in_frame.bits.set(i, history[k][i]);
            }
            witness.frames.push_back(std::move(in_frame));
          }
          result.witness = std::move(witness);
          result.frames_completed = f;
          TS_LOG_DEBUG("atpg: random phase hit at frame %zu (seq %zu)", f, s);
          return true;
        }
        for (std::size_t i = 0; i < nl_.dffs().size(); ++i) {
          regs[i] = vals[nl_.gate(nl_.dffs()[i]).fanin[0]];
        }
      }
    }
    return false;
  }

  struct Decision {
    std::size_t frame;
    SignalId pi;
    bool value;
    bool flipped;
  };

  void ensure_frames(std::size_t count) {
    while (values_.size() < count) {
      values_.emplace_back(nl_.size(), Ternary::kX);
      pi_assign_.emplace_back(nl_.num_inputs(), Ternary::kX);
    }
  }

  /// Re-simulates frames [from, upto] with current PI assignments.
  void simulate(std::size_t from, std::size_t upto) {
    for (std::size_t f = from; f <= upto; ++f) {
      implications_++;
      auto& vals = values_[f];
      for (const SignalId id : topo_) {
        const Gate& g = nl_.gate(id);
        switch (g.op) {
          case Op::kConst0:
            vals[id] = Ternary::kZero;
            break;
          case Op::kConst1:
            vals[id] = Ternary::kOne;
            break;
          case Op::kInput:
            vals[id] = pi_assign_[f][nl_.input_index(id)];
            break;
          case Op::kDff:
            vals[id] = f == 0 ? sim::t_from_bool(g.init)
                              : values_[f - 1][g.fanin[0]];
            break;
          case Op::kBuf:
            vals[id] = vals[g.fanin[0]];
            break;
          case Op::kNot:
            vals[id] = sim::t_not(vals[g.fanin[0]]);
            break;
          case Op::kAnd:
            vals[id] = sim::t_and(vals[g.fanin[0]], vals[g.fanin[1]]);
            break;
          case Op::kOr:
            vals[id] = sim::t_or(vals[g.fanin[0]], vals[g.fanin[1]]);
            break;
          case Op::kXor:
            vals[id] = sim::t_xor(vals[g.fanin[0]], vals[g.fanin[1]]);
            break;
          case Op::kXnor:
            vals[id] =
                sim::t_not(sim::t_xor(vals[g.fanin[0]], vals[g.fanin[1]]));
            break;
          case Op::kNand:
            vals[id] =
                sim::t_not(sim::t_and(vals[g.fanin[0]], vals[g.fanin[1]]));
            break;
          case Op::kNor:
            vals[id] =
                sim::t_not(sim::t_or(vals[g.fanin[0]], vals[g.fanin[1]]));
            break;
          case Op::kMux:
            vals[id] = sim::t_mux(vals[g.fanin[0]], vals[g.fanin[1]],
                                  vals[g.fanin[2]]);
            break;
        }
      }
    }
  }

  [[nodiscard]] std::uint32_t cost(SignalId s, bool v) const {
    return v ? scoap_.cc1[s] : scoap_.cc0[s];
  }

  /// During randomized restart attempts, tie-breaking decisions in the
  /// backtrace are made randomly to diversify the search (the structural
  /// analogue of SAT restart + phase randomization).
  [[nodiscard]] bool coin() const { return rng_.next_bool(); }

  /// PODEM backtrace: walk from (signal, frame, desired) through X-valued
  /// gates toward an unassigned primary input. Returns nullopt when no
  /// X-path exists (the objective cannot be influenced: backtrack).
  std::optional<Objective> backtrace(SignalId signal, std::size_t frame,
                                     bool desired) const {
    const bool randomized = randomized_attempt_;
    for (;;) {
      const Gate& g = nl_.gate(signal);
      const auto& vals = values_[frame];
      switch (g.op) {
        case Op::kConst0:
        case Op::kConst1:
          return std::nullopt;
        case Op::kInput: {
          if (pi_assign_[frame][nl_.input_index(signal)] != Ternary::kX) {
            return std::nullopt;  // already assigned (to the wrong value)
          }
          return Objective{signal, frame, desired};
        }
        case Op::kDff: {
          if (frame == 0) return std::nullopt;  // reset value is fixed
          signal = g.fanin[0];
          --frame;
          continue;
        }
        case Op::kBuf:
          signal = g.fanin[0];
          continue;
        case Op::kNot:
          signal = g.fanin[0];
          desired = !desired;
          continue;
        case Op::kNand:
          desired = !desired;
          [[fallthrough]];
        case Op::kAnd: {
          if (!pick_binary(g, vals, desired, /*and_gate=*/true, randomized,
                           signal, desired)) {
            return std::nullopt;
          }
          continue;
        }
        case Op::kNor:
          desired = !desired;
          [[fallthrough]];
        case Op::kOr: {
          if (!pick_binary(g, vals, desired, /*and_gate=*/false, randomized,
                           signal, desired)) {
            return std::nullopt;
          }
          continue;
        }
        case Op::kXnor:
          desired = !desired;
          [[fallthrough]];
        case Op::kXor: {
          const SignalId a = g.fanin[0];
          const SignalId b = g.fanin[1];
          const Ternary va = vals[a];
          const Ternary vb = vals[b];
          if (va == Ternary::kX && vb == Ternary::kX) {
            // Pick the cheaper of the two consistent assignments for a.
            const std::uint32_t c_a0 = cost(a, false) + cost(b, desired);
            const std::uint32_t c_a1 = cost(a, true) + cost(b, !desired);
            desired = randomized ? coin() : (c_a1 < c_a0);
            signal = a;
          } else if (va == Ternary::kX) {
            desired = desired != (vb == Ternary::kOne);
            signal = a;
          } else if (vb == Ternary::kX) {
            desired = desired != (va == Ternary::kOne);
            signal = b;
          } else {
            return std::nullopt;
          }
          continue;
        }
        case Op::kMux: {
          const SignalId sel = g.fanin[0];
          const SignalId t = g.fanin[1];
          const SignalId f = g.fanin[2];
          if (vals[sel] == Ternary::kOne) {
            signal = t;
            continue;
          }
          if (vals[sel] == Ternary::kZero) {
            signal = f;
            continue;
          }
          // Select is X. If one branch already carries the desired value,
          // steer the select toward it. If one branch is known and *wrong*,
          // the select must be steered away from it before anything else —
          // otherwise the search justifies data down a branch the select
          // will never take (the classic PODEM mux rule; without it the
          // engine drowns in reset-branch decisions).
          const Ternary want = sim::t_from_bool(desired);
          if (vals[t] == want) {
            signal = sel;
            desired = true;
            continue;
          }
          if (vals[f] == want) {
            signal = sel;
            desired = false;
            continue;
          }
          if (vals[t] != Ternary::kX) {  // t known-wrong: need sel = 0
            signal = sel;
            desired = false;
            continue;
          }
          if (vals[f] != Ternary::kX) {  // f known-wrong: need sel = 1
            signal = sel;
            desired = true;
            continue;
          }
          // Both branches X: walk the cheaper data side.
          const std::uint32_t via_t = cost(sel, true) + cost(t, desired);
          const std::uint32_t via_f = cost(sel, false) + cost(f, desired);
          const bool prefer_t = randomized ? coin() : via_t <= via_f;
          signal = prefer_t ? t : f;
          continue;
        }
      }
    }
  }

  /// Chooses the next fanin for an AND/OR-style gate during backtrace.
  /// `all_inputs_needed` is true when every input must carry `desired`
  /// (AND wanting 1, OR wanting 0): pick the *hardest* X input to fail fast.
  /// Otherwise one controlling input suffices: pick the *easiest* X input.
  bool pick_binary(const Gate& g, const std::vector<Ternary>& vals,
                   bool desired, bool and_gate, bool randomized,
                   SignalId& out_signal, bool& out_desired) const {
    const bool all_inputs_needed = (and_gate && desired) || (!and_gate && !desired);
    SignalId best = kNullSignal;
    std::uint32_t best_cost = 0;
    int candidates = 0;
    for (int k = 0; k < 2; ++k) {
      const SignalId s = g.fanin[k];
      if (vals[s] != Ternary::kX) continue;
      ++candidates;
      const std::uint32_t c = cost(s, desired);
      if (best == kNullSignal ||
          (randomized ? coin()
                      : (all_inputs_needed ? c > best_cost : c < best_cost))) {
        best = s;
        best_cost = c;
      }
    }
    (void)candidates;
    if (best == kNullSignal) return false;
    out_signal = best;
    out_desired = desired;
    return true;
  }

  FrameSearch search_frame(std::size_t target, const util::Stopwatch& timer) {
    // Attempt 0 runs the deterministic SCOAP-guided search to completion or
    // its backtrack share; only it can prove a frame clean (exhaustion).
    // Later attempts restart with randomized backtrace tie-breaking, the
    // structural analogue of SAT restarts, which rescues searches that
    // committed to a bad prefix.
    const std::uint64_t limit = options_.backtrack_limit_per_frame;
    const std::uint64_t budgets[4] = {limit / 2, limit / 4, limit / 8,
                                      limit / 8};
    for (int attempt = 0; attempt < 4; ++attempt) {
      randomized_attempt_ = attempt > 0;
      const FrameSearch result = search_attempt(
          target, timer, std::max<std::uint64_t>(budgets[attempt], 1));
      if (result != FrameSearch::kAborted) {
        // Exhaustion is exhaustion regardless of tie-breaking order: any
        // attempt that empties its decision stack has covered the space.
        return result;
      }
    }
    return FrameSearch::kAborted;
  }

  FrameSearch search_attempt(std::size_t target, const util::Stopwatch& timer,
                             std::uint64_t backtrack_budget) {
    // Fresh search for each attempt.
    stack_.clear();
    for (std::size_t f = 0; f <= target; ++f) {
      std::fill(pi_assign_[f].begin(), pi_assign_[f].end(), Ternary::kX);
    }
    simulate(0, target);

    std::uint64_t backtracks_here = 0;
    for (;;) {
      const Ternary bad = values_[target][bad_];
      if (bad == Ternary::kOne) return FrameSearch::kFound;

      bool need_backtrack = (bad == Ternary::kZero);
      if (!need_backtrack) {
        const auto objective = backtrace(bad_, target, true);
        if (!objective) {
          need_backtrack = true;  // no X-path: bad can never become 1 here
        } else {
          decisions_++;
          TS_LOG_DEBUG("decide %s@%zu=%d (stack %zu)",
                       nl_.name_of(objective->signal).c_str(),
                       objective->frame, objective->value ? 1 : 0,
                       stack_.size());
          if (cancel_requested()) return FrameSearch::kTimeout;
          if ((decisions_ & 0x3F) == 0 &&
              timer.elapsed_seconds() > options_.time_limit_seconds) {
            return FrameSearch::kTimeout;
          }
          pi_assign_[objective->frame][nl_.input_index(objective->signal)] =
              sim::t_from_bool(objective->value);
          stack_.push_back(
              Decision{objective->frame, objective->signal, objective->value,
                       false});
          simulate(objective->frame, target);
          continue;
        }
      }

      // Backtrack: flip the deepest unflipped decision.
      TS_LOG_DEBUG("backtrack (bad=%c stack %zu)",
                   sim::t_char(values_[target][bad_]), stack_.size());
      backtracks_++;
      backtracks_here++;
      // Coarse live-progress publication; the watchdog only needs the key
      // to keep moving while the search is productive.
      if (options_.progress != nullptr && (backtracks_ & 0x3F) == 0) {
        options_.progress->backtracks.store(backtracks_,
                                            std::memory_order_relaxed);
      }
      if (backtracks_here > backtrack_budget) {
        return FrameSearch::kAborted;
      }
      std::size_t lowest_frame = target;
      while (!stack_.empty() && stack_.back().flipped) {
        const Decision& d = stack_.back();
        lowest_frame = std::min(lowest_frame, d.frame);
        pi_assign_[d.frame][nl_.input_index(d.pi)] = Ternary::kX;
        stack_.pop_back();
      }
      if (stack_.empty()) {
        simulate(0, target);  // restore the all-X baseline for reuse
        return FrameSearch::kClean;
      }
      Decision& d = stack_.back();
      d.value = !d.value;
      d.flipped = true;
      pi_assign_[d.frame][nl_.input_index(d.pi)] = sim::t_from_bool(d.value);
      lowest_frame = std::min(lowest_frame, d.frame);
      simulate(lowest_frame, target);
    }
  }

  sim::Witness extract_witness(std::size_t target) const {
    sim::Witness witness;
    witness.violation_frame = target;
    for (std::size_t f = 0; f <= target; ++f) {
      sim::InputFrame frame;
      frame.bits = util::BitVec(nl_.num_inputs());
      for (std::size_t i = 0; i < nl_.num_inputs(); ++i) {
        // X inputs are irrelevant to the violation; fix them to 0.
        frame.bits.set(i, pi_assign_[f][i] == Ternary::kOne);
      }
      witness.frames.push_back(std::move(frame));
    }
    return witness;
  }

  const Netlist& nl_;
  SignalId bad_;
  AtpgOptions options_;
  std::vector<SignalId> topo_;
  Scoap scoap_;
  std::vector<std::vector<Ternary>> values_;      // [frame][signal]
  std::vector<std::vector<Ternary>> pi_assign_;   // [frame][input ordinal]
  std::vector<Decision> stack_;
  mutable util::Xoshiro256 rng_{0xa7b6c5d4e3f21ull};  // reseeded in ctor
  bool randomized_attempt_ = false;
  std::uint64_t decisions_ = 0;
  std::uint64_t backtracks_ = 0;
  std::uint64_t implications_ = 0;
};

}  // namespace

std::string AtpgResult::status_name() const {
  switch (status) {
    case AtpgStatus::kViolated:
      return "violated";
    case AtpgStatus::kBoundReached:
      return "bound-reached";
    case AtpgStatus::kResourceOut:
      return "resource-out";
  }
  return "?";
}

AtpgResult check_bad_signal(const netlist::Netlist& nl,
                            netlist::SignalId bad_signal,
                            const AtpgOptions& options) {
  Engine engine(nl, bad_signal, options);
  return engine.run();
}

}  // namespace trojanscout::atpg
