// Sequential ATPG back end (Section 3.2 of the paper).
//
// The no-data-corruption property is compiled into a monitor circuit whose
// output ("bad signal") is 1 exactly when the property is violated; the
// paper then asks a full-sequential ATPG tool to generate a test for a
// stuck-at fault at that output, which forces the tool to produce an input
// sequence that violates the property.
//
// This engine implements that search directly: a PODEM-style branch-and-
// bound over primary-input assignments across lazily materialized time
// frames, with three-valued implication (event semantics: re-simulate from
// the earliest affected frame) and SCOAP-guided objective backtrace.
//
// Contrast with the BMC back end: no CNF, no clause learning, no copies of
// the design per frame — only one Ternary value array per frame. This is
// what reproduces the paper's observation that ATPG uses roughly an order
// of magnitude less memory and unrolls ~3x more frames per unit time.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>

#include <vector>

#include "netlist/netlist.hpp"
#include "sim/witness.hpp"
#include "telemetry/flight.hpp"
#include "util/bitvec.hpp"

namespace trojanscout::telemetry {
struct ObligationProgress;
}  // namespace trojanscout::telemetry

namespace trojanscout::atpg {

struct AtpgOptions {
  /// Maximum number of frames to consider (the paper's T bound).
  std::size_t max_frames = 1024;
  /// First target frame (earlier frames are skipped, e.g. when a caller
  /// already knows the trigger cannot fire sooner).
  std::size_t start_frame = 0;
  /// Wall-clock budget in seconds.
  double time_limit_seconds = 100.0;
  /// Backtrack budget per target frame; past it the frame is "aborted"
  /// (inconclusive), mirroring industrial ATPG abort behavior.
  std::uint64_t backtrack_limit_per_frame = 4000;
  /// Random-simulation phase before the deterministic search, as industrial
  /// sequential ATPG does: this many random input sequences of max_frames
  /// cycles are simulated looking for an accidental violation. Cheap, and
  /// it rescues targets whose prerequisites are individually likely (e.g. a
  /// trigger counter fed by common instructions).
  std::size_t random_sequences = 64;
  std::uint64_t seed = 0x70a57;
  /// Optional functional stimulus sequences (one BitVec per cycle, in
  /// Netlist::inputs() order) simulated before the weighted-random phase —
  /// the analogue of the functional initialization sequences industrial
  /// sequential ATPG accepts. Typically produced by the family workload
  /// generator (baselines/workloads.hpp).
  std::vector<std::vector<util::BitVec>> stimulus_sequences;
  /// Use SCOAP controllability to pick backtrace branches.
  bool use_scoap_guidance = true;
  /// Cap on the per-frame value arrays (kResourceOut past it).
  std::uint64_t memory_limit_bytes = 2ull << 30;
  /// Cooperative cancellation flag polled between frames and inside the
  /// branch-and-bound; a set flag ends the run with kResourceOut + cancelled.
  const std::atomic<bool>* cancel = nullptr;
  /// Live-progress cells for the --progress heartbeat / stall watchdog:
  /// frame depth per target frame, decisions/backtracks at coarse
  /// intervals inside the search. Null costs nothing.
  telemetry::ObligationProgress* progress = nullptr;
};

enum class AtpgStatus {
  kViolated,      // test found: property violated, witness available
  kBoundReached,  // all frames up to max_frames processed, no test
  kResourceOut,   // time budget exhausted
};

struct AtpgResult {
  AtpgStatus status = AtpgStatus::kResourceOut;
  std::optional<sim::Witness> witness;
  /// Frames processed (proven clean + aborted) before stopping.
  std::size_t frames_completed = 0;
  /// Frames for which the search space was exhausted (no test exists).
  std::size_t frames_proven_clean = 0;
  /// Frames abandoned at the backtrack limit (inconclusive).
  std::size_t frames_aborted = 0;
  double seconds = 0.0;
  std::uint64_t memory_bytes = 0;
  std::uint64_t decisions = 0;
  std::uint64_t backtracks = 0;
  std::uint64_t implications = 0;
  /// Flight recorder: per-frame search-counter deltas + frame wall time
  /// (observational; see telemetry/flight.hpp for the timing carve-out).
  std::vector<telemetry::FlightWindow> flight;
  /// True when the run stopped because AtpgOptions::cancel was set.
  bool cancelled = false;

  [[nodiscard]] bool violated() const { return status == AtpgStatus::kViolated; }
  [[nodiscard]] std::string status_name() const;
};

/// Searches for an input sequence driving `bad_signal` to 1 at some frame
/// < max_frames (equivalently: a test for bad_signal stuck-at-0).
AtpgResult check_bad_signal(const netlist::Netlist& nl,
                            netlist::SignalId bad_signal,
                            const AtpgOptions& options);

}  // namespace trojanscout::atpg
