// Dense dynamically sized bit vector.
//
// Used for register values in witnesses, simulator state snapshots, and the
// FANCI truth-table sampler. Unlike std::vector<bool> it exposes word-level
// access and cheap population count / comparison.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace trojanscout::util {

class BitVec {
 public:
  BitVec() = default;
  explicit BitVec(std::size_t nbits, bool fill = false);

  /// Builds a BitVec from the low `nbits` bits of `value` (bit 0 = LSB).
  static BitVec from_uint(std::uint64_t value, std::size_t nbits);

  /// Parses a binary string, MSB first (e.g. "1010" -> bit3=1 ... bit0=0).
  /// Characters other than '0'/'1' throw std::invalid_argument.
  static BitVec from_binary_string(const std::string& text);

  [[nodiscard]] std::size_t size() const { return nbits_; }
  [[nodiscard]] bool empty() const { return nbits_ == 0; }

  [[nodiscard]] bool get(std::size_t i) const;
  void set(std::size_t i, bool value);
  void flip(std::size_t i);

  /// Resizes, zero-filling any new bits.
  void resize(std::size_t nbits);

  void clear_all();
  void set_all();

  [[nodiscard]] std::size_t popcount() const;

  /// Value of the low 64 bits (or all bits if size() <= 64), bit 0 = LSB.
  [[nodiscard]] std::uint64_t to_uint() const;

  /// Binary string, MSB first.
  [[nodiscard]] std::string to_binary_string() const;

  /// Hex string, MSB first, zero-padded to ceil(size/4) digits.
  [[nodiscard]] std::string to_hex_string() const;

  BitVec& operator^=(const BitVec& other);
  BitVec& operator&=(const BitVec& other);
  BitVec& operator|=(const BitVec& other);

  bool operator==(const BitVec& other) const;
  bool operator!=(const BitVec& other) const { return !(*this == other); }

  [[nodiscard]] const std::vector<std::uint64_t>& words() const {
    return words_;
  }

 private:
  void mask_top();

  std::size_t nbits_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace trojanscout::util
