// Lightweight leveled logging for trojanscout.
//
// Usage:
//   TS_LOG_INFO("unrolled frame %d (%zu clauses)", frame, n);
//
// The log level is a process-global, settable via set_log_level() or the
// TROJANSCOUT_LOG environment variable (error|warn|info|debug|trace).
#pragma once

#include <cstdarg>
#include <string>

namespace trojanscout::util {

enum class LogLevel : int {
  kError = 0,
  kWarn = 1,
  kInfo = 2,
  kDebug = 3,
  kTrace = 4,
};

/// Sets the global log level. Thread-safe (relaxed atomic).
void set_log_level(LogLevel level);

/// Returns the current global log level.
LogLevel log_level();

/// Parses a level name ("error", "warn", "info", "debug", "trace").
/// Returns kInfo for unrecognized names.
LogLevel parse_log_level(const std::string& name);

/// Core printf-style log sink. Prefer the TS_LOG_* macros.
void log_message(LogLevel level, const char* file, int line, const char* fmt,
                 ...) __attribute__((format(printf, 4, 5)));

}  // namespace trojanscout::util

/// Compile-time log floor: calls with a level *above* this number are
/// removed entirely — the branch is constant-false, so the argument
/// expressions are dead code and the call compiles out. 4 (trace) keeps
/// everything; build with -DTROJANSCOUT_LOG_COMPILED_MAX_LEVEL=2 to strip
/// debug/trace logging from release binaries.
#ifndef TROJANSCOUT_LOG_COMPILED_MAX_LEVEL
#define TROJANSCOUT_LOG_COMPILED_MAX_LEVEL 4
#endif

// The runtime check short-circuits before the format arguments are
// evaluated, so a disabled TS_LOG_TRACE("%d", expensive()) never calls
// expensive() — tests/test_logging.cpp pins this down.
#define TS_LOG_AT(level, ...)                                       \
  do {                                                              \
    if (static_cast<int>(level) <= TROJANSCOUT_LOG_COMPILED_MAX_LEVEL && \
        static_cast<int>(level) <=                                  \
            static_cast<int>(::trojanscout::util::log_level())) {   \
      ::trojanscout::util::log_message(level, __FILE__, __LINE__,   \
                                       __VA_ARGS__);                \
    }                                                               \
  } while (0)

#define TS_LOG_ERROR(...) \
  TS_LOG_AT(::trojanscout::util::LogLevel::kError, __VA_ARGS__)
#define TS_LOG_WARN(...) \
  TS_LOG_AT(::trojanscout::util::LogLevel::kWarn, __VA_ARGS__)
#define TS_LOG_INFO(...) \
  TS_LOG_AT(::trojanscout::util::LogLevel::kInfo, __VA_ARGS__)
#define TS_LOG_DEBUG(...) \
  TS_LOG_AT(::trojanscout::util::LogLevel::kDebug, __VA_ARGS__)
#define TS_LOG_TRACE(...) \
  TS_LOG_AT(::trojanscout::util::LogLevel::kTrace, __VA_ARGS__)
