#include "util/thread_pool.hpp"

namespace trojanscout::util {

std::size_t ThreadPool::default_thread_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t count = threads == 0 ? default_thread_count() : threads;
  queues_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  threads_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  wait_idle();
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::submit(Task task) {
  in_flight_.fetch_add(1, std::memory_order_relaxed);
  const std::size_t slot =
      next_queue_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
  {
    std::lock_guard<std::mutex> lock(queues_[slot]->mutex);
    queues_[slot]->tasks.push_back(std::move(task));
  }
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    ++queued_;
  }
  wake_cv_.notify_one();
}

bool ThreadPool::try_get_task(std::size_t self, Task& out) {
  // Own queue first (LIFO: most recently pushed work is cache-warm)...
  {
    WorkerQueue& own = *queues_[self];
    std::lock_guard<std::mutex> lock(own.mutex);
    if (!own.tasks.empty()) {
      out = std::move(own.tasks.back());
      own.tasks.pop_back();
      return true;
    }
  }
  // ...then steal from siblings (FIFO: oldest work migrates first).
  for (std::size_t k = 1; k < queues_.size(); ++k) {
    WorkerQueue& victim = *queues_[(self + k) % queues_.size()];
    std::lock_guard<std::mutex> lock(victim.mutex);
    if (!victim.tasks.empty()) {
      out = std::move(victim.tasks.front());
      victim.tasks.pop_front();
      return true;
    }
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t self) {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(wake_mutex_);
      wake_cv_.wait(lock, [this] { return stop_ || queued_ > 0; });
      if (stop_ && queued_ == 0) return;
      --queued_;
    }
    Task task;
    if (!try_get_task(self, task)) {
      // Unreachable by the queued_ accounting (a worker only claims after
      // queued_ > 0, and submit() pushes before crediting); restore the
      // claim if it ever trips so no task is stranded.
      std::lock_guard<std::mutex> lock(wake_mutex_);
      ++queued_;
      continue;
    }
    task();
    if (in_flight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(idle_mutex_);
      idle_cv_.notify_all();
    }
  }
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(idle_mutex_);
  idle_cv_.wait(lock, [this] {
    return in_flight_.load(std::memory_order_acquire) == 0;
  });
}

}  // namespace trojanscout::util
