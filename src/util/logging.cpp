#include "util/logging.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace trojanscout::util {
namespace {

std::atomic<int>& level_storage() {
  static std::atomic<int> level = [] {
    if (const char* env = std::getenv("TROJANSCOUT_LOG")) {
      return static_cast<int>(parse_log_level(env));
    }
    return static_cast<int>(LogLevel::kWarn);
  }();
  return level;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kTrace:
      return "TRACE";
  }
  return "?????";
}

}  // namespace

void set_log_level(LogLevel level) {
  level_storage().store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(
      level_storage().load(std::memory_order_relaxed));
}

LogLevel parse_log_level(const std::string& name) {
  if (name == "error") return LogLevel::kError;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "info") return LogLevel::kInfo;
  if (name == "debug") return LogLevel::kDebug;
  if (name == "trace") return LogLevel::kTrace;
  return LogLevel::kInfo;
}

void log_message(LogLevel level, const char* file, int line, const char* fmt,
                 ...) {
  // Strip the directory part so log lines stay short.
  const char* base = std::strrchr(file, '/');
  base = base != nullptr ? base + 1 : file;

  char buffer[2048];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buffer, sizeof(buffer), fmt, args);
  va_end(args);

  std::fprintf(stderr, "[%s %s:%d] %s\n", level_name(level), base, line,
               buffer);
}

}  // namespace trojanscout::util
