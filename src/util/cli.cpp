#include "util/cli.hpp"

#include <cstdlib>

namespace trojanscout::util {

CliParser::CliParser(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[arg] = argv[++i];
    } else {
      flags_[arg] = "";
    }
  }
}

bool CliParser::has(const std::string& name) const {
  return flags_.count(name) != 0;
}

std::string CliParser::get_string(const std::string& name,
                                  const std::string& fallback) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

std::int64_t CliParser::get_int(const std::string& name,
                                std::int64_t fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end() || it->second.empty()) return fallback;
  return std::strtoll(it->second.c_str(), nullptr, 0);
}

double CliParser::get_double(const std::string& name, double fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end() || it->second.empty()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

bool CliParser::get_bool(const std::string& name, bool fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  if (it->second.empty() || it->second == "1" || it->second == "true" ||
      it->second == "yes") {
    return true;
  }
  return false;
}

}  // namespace trojanscout::util
