#include "util/resource.hpp"

#include <sys/resource.h>
#include <unistd.h>

#include <cstdio>

namespace trojanscout::util {

std::uint64_t peak_rss_bytes() {
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) {
    return 0;
  }
  // ru_maxrss is in kilobytes on Linux.
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024u;
}

std::uint64_t peak_rss_hwm_bytes() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) {
    return 0;
  }
  char line[256];
  unsigned long long kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::sscanf(line, "VmHWM: %llu kB", &kb) == 1) {
      break;
    }
  }
  std::fclose(f);
  return static_cast<std::uint64_t>(kb) * 1024u;
}

std::uint64_t current_rss_bytes() {
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) {
    return 0;
  }
  unsigned long long total_pages = 0;
  unsigned long long resident_pages = 0;
  const int n = std::fscanf(f, "%llu %llu", &total_pages, &resident_pages);
  std::fclose(f);
  if (n != 2) {
    return 0;
  }
  const long page = sysconf(_SC_PAGESIZE);
  return resident_pages * static_cast<std::uint64_t>(page > 0 ? page : 4096);
}

const char* format_bytes(std::uint64_t bytes) {
  thread_local char buffer[32];
  const double b = static_cast<double>(bytes);
  if (b >= 1ull << 30) {
    std::snprintf(buffer, sizeof(buffer), "%.2f GB", b / (1ull << 30));
  } else if (b >= 1ull << 20) {
    std::snprintf(buffer, sizeof(buffer), "%.2f MB", b / (1ull << 20));
  } else if (b >= 1ull << 10) {
    std::snprintf(buffer, sizeof(buffer), "%.2f KB", b / (1ull << 10));
  } else {
    std::snprintf(buffer, sizeof(buffer), "%llu B",
                  static_cast<unsigned long long>(bytes));
  }
  return buffer;
}

}  // namespace trojanscout::util
