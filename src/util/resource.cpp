#include "util/resource.hpp"

#include <sys/resource.h>
#include <unistd.h>

#include <cstdio>

namespace trojanscout::util {

std::uint64_t peak_rss_bytes() {
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) {
    return 0;
  }
  // ru_maxrss is in kilobytes on Linux.
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024u;
}

std::uint64_t peak_rss_hwm_bytes() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) {
    return 0;
  }
  char line[256];
  unsigned long long kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::sscanf(line, "VmHWM: %llu kB", &kb) == 1) {
      break;
    }
  }
  std::fclose(f);
  return static_cast<std::uint64_t>(kb) * 1024u;
}

std::uint64_t current_rss_bytes() {
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) {
    return 0;
  }
  unsigned long long total_pages = 0;
  unsigned long long resident_pages = 0;
  const int n = std::fscanf(f, "%llu %llu", &total_pages, &resident_pages);
  std::fclose(f);
  if (n != 2) {
    return 0;
  }
  const long page = sysconf(_SC_PAGESIZE);
  return resident_pages * static_cast<std::uint64_t>(page > 0 ? page : 4096);
}

std::string peak_rss_summary() {
  const std::uint64_t rusage_peak = peak_rss_bytes();
  const std::uint64_t hwm = peak_rss_hwm_bytes();
  std::string out = format_bytes(rusage_peak);
  out += " (getrusage";
  if (hwm == 0) {
    // /proc/self/status has no readable VmHWM here (non-Linux kernel or a
    // hardened container): the independent sampling path does not exist,
    // so say so instead of comparing against 0.
    out += "; VmHWM unavailable, cross-check skipped)";
    return out;
  }
  out += ") / ";
  out += format_bytes(hwm);
  out += " (VmHWM";
  // The two paths should agree to within a few pages; flag divergence
  // beyond 25% + 1 MiB so a broken sampling path is visible.
  const std::uint64_t hi = rusage_peak > hwm ? rusage_peak : hwm;
  const std::uint64_t lo = rusage_peak > hwm ? hwm : rusage_peak;
  if (hi - lo > hi / 4 + (1u << 20)) {
    out += "; MISMATCH between sampling paths";
  }
  out += ")";
  return out;
}

const char* format_bytes(std::uint64_t bytes) {
  thread_local char buffer[32];
  const double b = static_cast<double>(bytes);
  if (b >= 1ull << 30) {
    std::snprintf(buffer, sizeof(buffer), "%.2f GB", b / (1ull << 30));
  } else if (b >= 1ull << 20) {
    std::snprintf(buffer, sizeof(buffer), "%.2f MB", b / (1ull << 20));
  } else if (b >= 1ull << 10) {
    std::snprintf(buffer, sizeof(buffer), "%.2f KB", b / (1ull << 10));
  } else {
    std::snprintf(buffer, sizeof(buffer), "%llu B",
                  static_cast<unsigned long long>(bytes));
  }
  return buffer;
}

}  // namespace trojanscout::util
