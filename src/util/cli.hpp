// Minimal command-line flag parser for the example and benchmark binaries.
//
// Supports "--name=value", "--name value", and boolean "--name" forms.
// Unknown flags are reported; positional arguments are collected in order.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace trojanscout::util {

class CliParser {
 public:
  CliParser(int argc, const char* const* argv);

  /// True if the flag appeared on the command line (with or without value).
  [[nodiscard]] bool has(const std::string& name) const;

  [[nodiscard]] std::string get_string(const std::string& name,
                                       const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;

  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace trojanscout::util
