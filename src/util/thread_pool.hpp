// Work-stealing thread pool for the parallel property scheduler.
//
// Each worker owns a deque: it pops its own work LIFO (cache-warm) and
// steals FIFO from a sibling when empty, which keeps the long BMC/ATPG
// property runs spread across cores without a single contended queue.
// Tasks here are seconds-long engine runs, so per-queue mutexes (rather
// than lock-free Chase-Lev deques) are well below the noise floor.
//
// Determinism note: the pool makes no ordering promises — callers that
// need deterministic output (core::ParallelDetector) index results by
// submission slot and merge in submission order.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace trojanscout::util {

/// Shared cancellation flag with copyable handles. A task observes the
/// raw atomic via `flag()` (cheap polling inside engine inner loops);
/// any holder may `cancel()`.
class CancellationToken {
 public:
  CancellationToken()
      : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void cancel() noexcept { flag_->store(true, std::memory_order_release); }
  [[nodiscard]] bool cancelled() const noexcept {
    return flag_->load(std::memory_order_acquire);
  }
  /// Stable address for the lifetime of every token copy; engines poll it.
  [[nodiscard]] const std::atomic<bool>* flag() const noexcept {
    return flag_.get();
  }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

class ThreadPool {
 public:
  using Task = std::function<void()>;

  /// `threads == 0` uses default_thread_count().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Thread-safe; may be called from worker threads.
  void submit(Task task);

  /// Blocks until every submitted task has finished executing.
  void wait_idle();

  [[nodiscard]] std::size_t thread_count() const { return threads_.size(); }

  /// Tasks submitted but not yet finished (queued or executing) — the
  /// pool-depth gauge the service's `metrics` exposition reports.
  [[nodiscard]] std::size_t in_flight() const {
    return in_flight_.load(std::memory_order_relaxed);
  }

  /// std::thread::hardware_concurrency with a floor of 1.
  static std::size_t default_thread_count();

 private:
  struct WorkerQueue {
    std::mutex mutex;
    std::deque<Task> tasks;
  };

  void worker_loop(std::size_t self);
  bool try_get_task(std::size_t self, Task& out);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> threads_;

  // Tasks submitted but not yet finished (drives wait_idle).
  std::atomic<std::size_t> in_flight_{0};
  // Tasks sitting in queues, guarded by wake_mutex_ (drives worker sleep).
  std::size_t queued_ = 0;
  bool stop_ = false;
  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;

  std::mutex idle_mutex_;
  std::condition_variable idle_cv_;

  std::atomic<std::size_t> next_queue_{0};
};

}  // namespace trojanscout::util
