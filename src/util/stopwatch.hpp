// Monotonic stopwatch used by the BMC/ATPG resource budgets and the
// benchmark harnesses. Always std::chrono::steady_clock — never the system
// clock — so elapsed times cannot jump under NTP adjustment; every timer in
// the tree goes through this class (or telemetry::ScopedTimer, which wraps
// it and feeds a Registry histogram).
#pragma once

#include <chrono>

namespace trojanscout::util {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch from zero.
  void reset() { start_ = Clock::now(); }

  /// Elapsed time in seconds since construction or the last reset().
  [[nodiscard]] double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  [[nodiscard]] double elapsed_ms() const { return elapsed_seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace trojanscout::util
