// Monotonic wall-clock stopwatch used by the BMC/ATPG resource budgets and
// the benchmark harnesses.
#pragma once

#include <chrono>

namespace trojanscout::util {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch from zero.
  void reset() { start_ = Clock::now(); }

  /// Elapsed time in seconds since construction or the last reset().
  [[nodiscard]] double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  [[nodiscard]] double elapsed_ms() const { return elapsed_seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace trojanscout::util
