// Process resource measurement (peak and current RSS).
//
// The paper reports memory in GB for both the BMC and ATPG back ends
// (Table 1, columns 7 and 11); we reproduce those columns with RSS deltas
// sampled around each engine run.
#pragma once

#include <cstdint>
#include <string>

namespace trojanscout::util {

/// Peak resident set size of this process in bytes (ru_maxrss).
std::uint64_t peak_rss_bytes();

/// Peak resident set size in bytes from the kernel's own high-water mark
/// (/proc/self/status VmHWM) — an independent sampling path from the
/// getrusage() value above; the two must agree to within a few pages.
/// Returns 0 where the proc file is unavailable (non-Linux).
std::uint64_t peak_rss_hwm_bytes();

/// Current resident set size in bytes, read from /proc/self/statm.
/// Returns 0 if the proc file is unavailable.
std::uint64_t current_rss_bytes();

/// Formats a byte count as a short human-readable string ("1.25 GB").
/// The buffer is static thread_local; copy the result if you keep it.
const char* format_bytes(std::uint64_t bytes);

/// One-line peak-RSS summary cross-checking getrusage against the kernel's
/// VmHWM. Kernels/containers without a readable /proc/self/status VmHWM
/// line (non-Linux, hardened containers) get an explicit "cross-check
/// skipped" note instead of a bogus 0-byte comparison; a large divergence
/// between the two sampling paths is called out rather than hidden.
std::string peak_rss_summary();

}  // namespace trojanscout::util
