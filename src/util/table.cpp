#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace trojanscout::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto print_row = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c];
      os << std::string(widths[c] - row[c].size() + 1, ' ') << '|';
    }
    os << '\n';
  };

  auto print_rule = [&] {
    os << '+';
    for (const auto w : widths) {
      os << std::string(w + 2, '-') << '+';
    }
    os << '\n';
  };

  print_rule();
  print_row(headers_);
  print_rule();
  for (const auto& row : rows_) {
    print_row(row);
  }
  print_rule();
}

std::string cell_double(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string cell_bool_yesno(bool value) { return value ? "Yes" : "No"; }

}  // namespace trojanscout::util
