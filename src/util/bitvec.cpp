#include "util/bitvec.hpp"

#include <bit>
#include <stdexcept>

namespace trojanscout::util {

namespace {
constexpr std::size_t kWordBits = 64;

std::size_t word_count(std::size_t nbits) {
  return (nbits + kWordBits - 1) / kWordBits;
}
}  // namespace

BitVec::BitVec(std::size_t nbits, bool fill)
    : nbits_(nbits), words_(word_count(nbits), fill ? ~0ull : 0ull) {
  mask_top();
}

BitVec BitVec::from_uint(std::uint64_t value, std::size_t nbits) {
  BitVec v(nbits);
  if (!v.words_.empty()) {
    v.words_[0] = value;
    v.mask_top();
  }
  return v;
}

BitVec BitVec::from_binary_string(const std::string& text) {
  BitVec v(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[text.size() - 1 - i];
    if (c == '1') {
      v.set(i, true);
    } else if (c != '0') {
      throw std::invalid_argument("BitVec: invalid binary character");
    }
  }
  return v;
}

bool BitVec::get(std::size_t i) const {
  return (words_[i / kWordBits] >> (i % kWordBits)) & 1u;
}

void BitVec::set(std::size_t i, bool value) {
  const std::uint64_t mask = 1ull << (i % kWordBits);
  if (value) {
    words_[i / kWordBits] |= mask;
  } else {
    words_[i / kWordBits] &= ~mask;
  }
}

void BitVec::flip(std::size_t i) { words_[i / kWordBits] ^= 1ull << (i % kWordBits); }

void BitVec::resize(std::size_t nbits) {
  nbits_ = nbits;
  words_.resize(word_count(nbits), 0);
  mask_top();
}

void BitVec::clear_all() {
  for (auto& w : words_) w = 0;
}

void BitVec::set_all() {
  for (auto& w : words_) w = ~0ull;
  mask_top();
}

std::size_t BitVec::popcount() const {
  std::size_t count = 0;
  for (const auto w : words_) count += static_cast<std::size_t>(std::popcount(w));
  return count;
}

std::uint64_t BitVec::to_uint() const {
  return words_.empty() ? 0 : words_[0];
}

std::string BitVec::to_binary_string() const {
  std::string out(nbits_, '0');
  for (std::size_t i = 0; i < nbits_; ++i) {
    if (get(i)) out[nbits_ - 1 - i] = '1';
  }
  return out;
}

std::string BitVec::to_hex_string() const {
  const std::size_t digits = (nbits_ + 3) / 4;
  std::string out(digits, '0');
  static const char* kHex = "0123456789abcdef";
  for (std::size_t d = 0; d < digits; ++d) {
    unsigned nibble = 0;
    for (unsigned b = 0; b < 4; ++b) {
      const std::size_t bit = d * 4 + b;
      if (bit < nbits_ && get(bit)) nibble |= 1u << b;
    }
    out[digits - 1 - d] = kHex[nibble];
  }
  return out;
}

BitVec& BitVec::operator^=(const BitVec& other) {
  for (std::size_t i = 0; i < words_.size() && i < other.words_.size(); ++i) {
    words_[i] ^= other.words_[i];
  }
  mask_top();
  return *this;
}

BitVec& BitVec::operator&=(const BitVec& other) {
  for (std::size_t i = 0; i < words_.size(); ++i) {
    words_[i] &= i < other.words_.size() ? other.words_[i] : 0ull;
  }
  return *this;
}

BitVec& BitVec::operator|=(const BitVec& other) {
  for (std::size_t i = 0; i < words_.size() && i < other.words_.size(); ++i) {
    words_[i] |= other.words_[i];
  }
  mask_top();
  return *this;
}

bool BitVec::operator==(const BitVec& other) const {
  return nbits_ == other.nbits_ && words_ == other.words_;
}

void BitVec::mask_top() {
  const std::size_t rem = nbits_ % kWordBits;
  if (rem != 0 && !words_.empty()) {
    words_.back() &= (1ull << rem) - 1;
  }
}

}  // namespace trojanscout::util
