// ASCII table printer used by the benchmark binaries to print rows in the
// same layout as the paper's Tables 1-3.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace trojanscout::util {

class Table {
 public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; missing cells render empty, extra cells are dropped.
  void add_row(std::vector<std::string> cells);

  /// Renders the table with aligned columns and a header separator.
  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Convenience numeric cell formatters.
std::string cell_double(double value, int precision = 2);
std::string cell_bool_yesno(bool value);

}  // namespace trojanscout::util
