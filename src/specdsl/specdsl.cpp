#include "specdsl/specdsl.hpp"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "netlist/wordops.hpp"

namespace trojanscout::specdsl {

using netlist::Netlist;
using netlist::SignalId;
using netlist::Word;

namespace {

struct SpecError : std::runtime_error {
  SpecError(int line, const std::string& message)
      : std::runtime_error("spec: line " + std::to_string(line) + ": " +
                           message) {}
};

/// Tokenizer over one condition/value tail.
class Tokens {
 public:
  Tokens(int line, const std::string& text) : line_(line) {
    std::size_t i = 0;
    while (i < text.size()) {
      const char c = text[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
        std::size_t j = i;
        while (j < text.size() &&
               (std::isalnum(static_cast<unsigned char>(text[j])) ||
                text[j] == '_')) {
          ++j;
        }
        tokens_.push_back(text.substr(i, j - i));
        i = j;
        continue;
      }
      // Two-char operators.
      if (i + 1 < text.size()) {
        const std::string two = text.substr(i, 2);
        if (two == "&&" || two == "||" || two == "==" || two == "!=" ||
            two == "->") {
          tokens_.push_back(two);
          i += 2;
          continue;
        }
      }
      if (c == '(' || c == ')' || c == '!' || c == '[' || c == ']') {
        tokens_.push_back(std::string(1, c));
        ++i;
        continue;
      }
      throw SpecError(line_, std::string("unexpected character '") + c + "'");
    }
  }

  [[nodiscard]] bool done() const { return pos_ >= tokens_.size(); }
  [[nodiscard]] const std::string& peek() const {
    static const std::string kEnd = "<end>";
    return done() ? kEnd : tokens_[pos_];
  }
  std::string next() {
    if (done()) throw SpecError(line_, "unexpected end of line");
    return tokens_[pos_++];
  }
  void expect(const std::string& token) {
    const std::string got = next();
    if (got != token) {
      throw SpecError(line_, "expected '" + token + "', got '" + got + "'");
    }
  }
  [[nodiscard]] int line() const { return line_; }

 private:
  int line_;
  std::vector<std::string> tokens_;
  std::size_t pos_ = 0;
};

std::uint64_t parse_integer(Tokens& t) {
  const std::string token = t.next();
  char* end = nullptr;
  const std::uint64_t value = std::strtoull(token.c_str(), &end, 0);
  if (end == token.c_str() || *end != '\0') {
    throw SpecError(t.line(), "expected integer, got '" + token + "'");
  }
  return value;
}

/// Resolves an identifier to a Word: input port first, then register.
Word resolve_word(Netlist& nl, Tokens& t, const std::string& name) {
  for (const auto& port : nl.input_ports()) {
    if (port.name == name) return port.bits;
  }
  if (nl.has_register(name)) return nl.find_register(name).dffs;
  throw SpecError(t.line(), "unknown port or register '" + name + "'");
}

/// operand := identifier [ '[' bit ']' ]
Word parse_operand(Netlist& nl, Tokens& t) {
  const std::string name = t.next();
  Word word = resolve_word(nl, t, name);
  if (t.peek() == "[") {
    t.expect("[");
    const std::uint64_t bit = parse_integer(t);
    t.expect("]");
    if (bit >= word.size()) {
      throw SpecError(t.line(), "bit index out of range for '" + name + "'");
    }
    return Word{word[bit]};
  }
  return word;
}

SignalId parse_or(Netlist& nl, Tokens& t);

SignalId parse_unary(Netlist& nl, Tokens& t) {
  if (t.peek() == "!") {
    t.expect("!");
    return nl.b_not(parse_unary(nl, t));
  }
  if (t.peek() == "(") {
    t.expect("(");
    const SignalId inner = parse_or(nl, t);
    t.expect(")");
    return inner;
  }
  const Word lhs = parse_operand(nl, t);
  const std::string op = t.next();
  if (op != "==" && op != "!=") {
    throw SpecError(t.line(), "expected == or != after operand");
  }
  const std::uint64_t value = parse_integer(t);
  const SignalId eq = netlist::w_eq_const(nl, lhs, value);
  return op == "==" ? eq : nl.b_not(eq);
}

SignalId parse_and(Netlist& nl, Tokens& t) {
  SignalId acc = parse_unary(nl, t);
  while (t.peek() == "&&") {
    t.expect("&&");
    acc = nl.b_and(acc, parse_unary(nl, t));
  }
  return acc;
}

SignalId parse_or(Netlist& nl, Tokens& t) {
  SignalId acc = parse_and(nl, t);
  while (t.peek() == "||") {
    t.expect("||");
    acc = nl.b_or(acc, parse_and(nl, t));
  }
  return acc;
}

/// value := const N | hold | add N | sub N | operand
Word parse_value(Netlist& nl, Tokens& t, const Word& reg) {
  const std::string& head = t.peek();
  if (head == "const") {
    t.expect("const");
    return netlist::w_const(nl, parse_integer(t), reg.size());
  }
  if (head == "hold") {
    t.expect("hold");
    return reg;
  }
  if (head == "add") {
    t.expect("add");
    return netlist::w_add_const(nl, reg, parse_integer(t));
  }
  if (head == "sub") {
    t.expect("sub");
    return netlist::w_sub(nl, reg,
                          netlist::w_const(nl, parse_integer(t), reg.size()));
  }
  Word word = parse_operand(nl, t);
  if (word.size() < reg.size()) {
    word = netlist::w_resize(nl, word, reg.size());
  }
  if (word.size() != reg.size()) {
    throw SpecError(t.line(), "value width does not match the register");
  }
  return word;
}

/// Extracts the "quoted description" from a raw line; returns the remainder.
std::string take_quoted(int line, std::string& rest) {
  const auto open = rest.find('"');
  if (open == std::string::npos) throw SpecError(line, "expected '\"'");
  const auto close = rest.find('"', open + 1);
  if (close == std::string::npos) {
    throw SpecError(line, "unterminated description string");
  }
  const std::string description = rest.substr(open + 1, close - open - 1);
  rest = rest.substr(close + 1);
  return description;
}

std::string strip(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  const auto end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

}  // namespace

properties::DesignSpec parse_spec(Netlist& nl, const std::string& text) {
  properties::DesignSpec spec;
  properties::RegisterSpec* current = nullptr;
  Word current_reg;

  std::istringstream in(text);
  std::string raw;
  int line_number = 0;
  while (std::getline(in, raw)) {
    ++line_number;
    // Strip comments, but only a '#' outside of a quoted description.
    bool in_quotes = false;
    for (std::size_t i = 0; i < raw.size(); ++i) {
      if (raw[i] == '"') in_quotes = !in_quotes;
      if (raw[i] == '#' && !in_quotes) {
        raw = raw.substr(0, i);
        break;
      }
    }
    const std::string line = strip(raw);
    if (line.empty()) continue;

    if (line.rfind("register ", 0) == 0) {
      const std::string name = strip(line.substr(9));
      if (!nl.has_register(name)) {
        throw SpecError(line_number, "design has no register '" + name + "'");
      }
      for (const auto& existing : spec.registers) {
        if (existing.reg == name) {
          throw SpecError(line_number,
                          "duplicate register block '" + name + "'");
        }
      }
      spec.registers.emplace_back();
      current = &spec.registers.back();
      current->reg = name;
      current_reg = nl.find_register(name).dffs;
      continue;
    }
    if (current == nullptr) {
      throw SpecError(line_number, "statement outside a register block");
    }

    if (line.rfind("way ", 0) == 0) {
      std::string rest = line.substr(4);
      properties::ValidWay way;
      way.description = take_quoted(line_number, rest);
      rest = strip(rest);
      way.cycle_label = "Any";
      if (rest.rfind("cycle ", 0) == 0) {
        rest = strip(rest.substr(6));
        const auto colon = rest.find(':');
        if (colon == std::string::npos) {
          throw SpecError(line_number, "expected ':' after cycle label");
        }
        way.cycle_label = strip(rest.substr(0, colon));
        rest = rest.substr(colon + 1);
      } else {
        if (rest.empty() || rest[0] != ':') {
          throw SpecError(line_number, "expected ':' before the condition");
        }
        rest = rest.substr(1);
      }
      const auto arrow = rest.find("->");
      if (arrow == std::string::npos) {
        throw SpecError(line_number, "expected '->' in way");
      }
      Tokens cond_tokens(line_number, rest.substr(0, arrow));
      way.condition = parse_or(nl, cond_tokens);
      if (!cond_tokens.done()) {
        throw SpecError(line_number, "trailing tokens after condition");
      }
      Tokens value_tokens(line_number, rest.substr(arrow + 2));
      way.value_description = strip(rest.substr(arrow + 2));
      way.next_value = parse_value(nl, value_tokens, current_reg);
      if (!value_tokens.done()) {
        throw SpecError(line_number, "trailing tokens after value");
      }
      current->ways.push_back(std::move(way));
      continue;
    }

    if (line.rfind("obligation ", 0) == 0) {
      std::string rest = line.substr(11);
      properties::Obligation obligation;
      obligation.description = take_quoted(line_number, rest);
      rest = strip(rest);
      if (rest.empty() || rest[0] != ':') {
        throw SpecError(line_number, "expected ':' before the condition");
      }
      rest = rest.substr(1);
      // Optional "observe <operand>" and required "latency <N>" tails.
      std::size_t latency_pos = rest.rfind("latency");
      if (latency_pos == std::string::npos) {
        throw SpecError(line_number, "obligation needs 'latency <N>'");
      }
      std::string head = rest.substr(0, latency_pos);
      Tokens latency_tokens(line_number, rest.substr(latency_pos + 7));
      obligation.latency =
          static_cast<std::size_t>(parse_integer(latency_tokens));

      const auto observe_pos = head.find("observe");
      if (observe_pos != std::string::npos) {
        Tokens observe_tokens(line_number, head.substr(observe_pos + 7));
        obligation.observed_value = parse_operand(nl, observe_tokens);
        head = head.substr(0, observe_pos);
      }
      Tokens cond_tokens(line_number, head);
      obligation.condition = parse_or(nl, cond_tokens);
      current->obligations.push_back(std::move(obligation));
      continue;
    }

    throw SpecError(line_number, "unrecognized statement: " + line);
  }
  if (spec.registers.empty()) {
    throw std::runtime_error("spec: no register blocks found");
  }
  return spec;
}

properties::DesignSpec load_spec_file(Netlist& nl, const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("spec: cannot open " + path);
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  return parse_spec(nl, buffer.str());
}

}  // namespace trojanscout::specdsl
