// Text format for valid-ways specifications — the defender-side contract as
// a reviewable file, so a design delivered as (structural) Verilog can be
// audited without writing C++.
//
// Grammar (line oriented; '#' starts a comment):
//
//   register <name>
//     way "<description>" [cycle <label>] : <condition> -> <value>
//     obligation "<description>" : <condition> [observe <operand>] latency <N>
//
//   condition := or_expr
//   or_expr   := and_expr { '||' and_expr }
//   and_expr  := unary { '&&' unary }
//   unary     := '!' unary | '(' or_expr ')' | comparison
//   comparison:= operand ('==' | '!=') integer
//   operand   := identifier                 (input port or register name)
//              | identifier '[' bit ']'     (single bit of it)
//
//   value     := 'const' integer            (register takes the constant)
//              | 'hold'                     (explicitly keep the value)
//              | 'add' integer | 'sub' integer
//              | operand                    (copied from a port/register)
//
// Identifiers resolve to input ports first, then to registers. Integers
// accept 0x prefixes. Conditions and values elaborate into netlist gates
// against the supplied design.
#pragma once

#include <string>

#include "netlist/netlist.hpp"
#include "properties/spec.hpp"

namespace trojanscout::specdsl {

/// Parses and elaborates a spec file against `nl`. Throws
/// std::runtime_error with a line number on syntax errors or unknown names.
properties::DesignSpec parse_spec(netlist::Netlist& nl,
                                  const std::string& text);

/// Convenience: reads the file at `path` and parses it.
properties::DesignSpec load_spec_file(netlist::Netlist& nl,
                                      const std::string& path);

}  // namespace trojanscout::specdsl
