// Router benchmark (extension): the paper's third motivating target — "a
// register that holds [the] destination address in a router" (Sections 1.3
// and 1.4) — as a concrete 4-port packet-router IP.
//
// Protocol: one 16-bit flit per cycle when `flit_valid` is high. A flit
// with bit 13 set is a *header*: bits [15:14] select the destination port
// and are latched into the destination register; bits [12:0] are control
// payload. Non-header flits are body data for the current destination. The
// router presents the data on `out_data` and raises the one-hot
// `out_valid[4]` line of the latched destination.
//
// Critical register: `dest_reg` (the destination address). Valid ways:
// Reset=1 -> 0; header flit -> flit[15:14].
//
// Trojan (kMisroute): after two *consecutive* body flits carrying the magic
// payloads 0x1F3A then 0x0C5B, every subsequent packet is silently diverted
// to port 3 (the attacker's tap) — corruption of the destination register
// without any header. DeTrust-hardened: the two 13/14-bit payload matches
// are accumulated through registered stages and the firing pulse crosses
// into the payload mux through a register.
#pragma once

#include "designs/design.hpp"

namespace trojanscout::designs {

enum class RouterTrojan { kNone, kMisroute };

struct RouterOptions {
  RouterTrojan trojan = RouterTrojan::kNone;
  /// See RiscOptions::payload_enabled.
  bool payload_enabled = true;
};

Design build_router(const RouterOptions& options = {});

}  // namespace trojanscout::designs
