// A benchmark design bundles the netlist, the defender-side valid-ways
// specification (paper Table 2 style), and metadata used by the experiment
// harness.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "properties/spec.hpp"

namespace trojanscout::designs {

struct Design {
  std::string name;
  netlist::Netlist nl;
  properties::DesignSpec spec;
  /// Registers the SoC integrator deems critical (Algorithm 1 input).
  std::vector<std::string> critical_registers;
  /// When a Trojan (or externally payloaded trigger) is present: the sticky
  /// trigger signal. Used by the Section 4 attack transformers, which attach
  /// their own payloads (pseudo-critical / bypass corruption) to the same
  /// trigger machinery the direct Trojans use. kNullSignal when clean.
  netlist::SignalId trojan_trigger = netlist::kNullSignal;
  /// Half-open [first, last) ranges of gate ids that belong to the Trojan
  /// (trigger machinery and payload muxes). Used by the FANCI / VeriTrust
  /// benches to decide whether a flagged suspect is actually Trojan logic.
  std::vector<std::pair<netlist::SignalId, netlist::SignalId>>
      trojan_gate_ranges;

  [[nodiscard]] bool is_trojan_gate(netlist::SignalId id) const {
    for (const auto& [lo, hi] : trojan_gate_ranges) {
      if (id >= lo && id < hi) return true;
    }
    return false;
  }
};

}  // namespace trojanscout::designs
