// Software reference model of AES-128 (FIPS-197), used to verify the
// gate-level AES core bit-for-bit and by the AES workload generators.
//
// The S-box is derived at first use from GF(2^8) inversion plus the affine
// transform rather than a transcribed table, so it is correct by
// construction; unit tests pin known entries and the FIPS-197 example
// vector.
#pragma once

#include <array>
#include <cstdint>

namespace trojanscout::designs {

using AesBlock = std::array<std::uint8_t, 16>;  // byte 0 = first input byte

/// The AES S-box (computed once, cached).
const std::array<std::uint8_t, 256>& aes_sbox();

/// GF(2^8) multiplication modulo x^8 + x^4 + x^3 + x + 1.
std::uint8_t gf_mul(std::uint8_t a, std::uint8_t b);

/// Expands a 128-bit key into 11 round keys.
std::array<AesBlock, 11> aes_expand_key(const AesBlock& key);

/// Encrypts one block with AES-128.
AesBlock aes_encrypt(const AesBlock& plaintext, const AesBlock& key);

/// One round key step: next = f(prev, rcon) as used by the on-the-fly
/// hardware key schedule (exposed for unit tests of the netlist schedule).
AesBlock aes_next_round_key(const AesBlock& prev, std::uint8_t rcon);

/// Parses a 32-hex-digit string ("00112233...") into a block.
AesBlock aes_block_from_hex(const char* hex);

}  // namespace trojanscout::designs
