// Helper that builds an architected register's next-state logic and its
// valid-ways specification from one priority-ordered list, guaranteeing the
// clean design satisfies its own spec by construction (the vendor implements
// the datasheet; the defender transcribes the same datasheet).
//
// A Trojan payload is applied *after* the golden case resolution and is, of
// course, never part of the spec.
#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "netlist/wordops.hpp"
#include "properties/spec.hpp"

namespace trojanscout::designs {

class RegSpecBuilder {
 public:
  RegSpecBuilder(netlist::Netlist& nl, std::string name, std::size_t width,
                 std::uint64_t reset_value = 0)
      : nl_(nl), width_(width) {
    spec_.reg = name;
    reg_ = netlist::w_make_register(nl, name, width, reset_value);
  }

  [[nodiscard]] const netlist::Word& reg() const { return reg_; }
  [[nodiscard]] netlist::SignalId bit(std::size_t i) const { return reg_[i]; }

  /// Appends a valid way (priority = insertion order).
  RegSpecBuilder& way(const std::string& description,
                      const std::string& cycle_label,
                      const std::string& value_description,
                      netlist::SignalId condition, netlist::Word value) {
    properties::ValidWay w;
    w.description = description;
    w.cycle_label = cycle_label;
    w.value_description = value_description;
    w.condition = condition;
    w.next_value = std::move(value);
    spec_.ways.push_back(std::move(w));
    return *this;
  }

  RegSpecBuilder& obligation(const std::string& description,
                             netlist::SignalId condition,
                             netlist::Word observed_value,
                             std::size_t latency) {
    properties::Obligation o;
    o.description = description;
    o.condition = condition;
    o.observed_value = std::move(observed_value);
    o.latency = latency;
    spec_.obligations.push_back(std::move(o));
    return *this;
  }

  /// Resolves the priority case into the golden next value (hold if no way
  /// fires). Does not connect the register yet.
  [[nodiscard]] netlist::Word golden_next() const {
    std::vector<netlist::CaseEntry> entries;
    entries.reserve(spec_.ways.size());
    for (const auto& w : spec_.ways) {
      entries.push_back(netlist::CaseEntry{w.condition, w.next_value});
    }
    return netlist::w_case(nl_, entries, reg_);
  }

  /// Connects the register to the golden next value and registers the spec.
  void finish(properties::DesignSpec& spec) {
    finish_with(spec, golden_next());
  }

  /// Connects the register to `next` (typically the golden value wrapped in
  /// a Trojan payload mux) and registers the spec.
  void finish_with(properties::DesignSpec& spec, const netlist::Word& next) {
    netlist::w_connect(nl_, reg_, next);
    spec.registers.push_back(spec_);
  }

 private:
  netlist::Netlist& nl_;
  std::size_t width_;
  netlist::Word reg_;
  properties::RegisterSpec spec_;
};

}  // namespace trojanscout::designs
