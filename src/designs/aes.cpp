#include "designs/aes.hpp"

#include <array>
#include <functional>

#include "designs/aes_ref.hpp"
#include "designs/regspec_builder.hpp"
#include "netlist/wordops.hpp"

namespace trojanscout::designs {

using netlist::Netlist;
using netlist::SignalId;
using netlist::Word;
using netlist::w_const;
using netlist::w_eq;
using netlist::w_eq_const;
using netlist::w_inc;
using netlist::w_make_register;
using netlist::w_mux;
using netlist::w_slice;
using netlist::w_xor;

const char* kAesT700Plaintext = "00112233445566778899aabbccddeeff";
const char* const kAesT800Sequence[4] = {
    "3243f6a8885a308d313198a2e0370734",
    "00112233445566778899aabbccddeeff",
    "00000000000000000000000000000001",
    "00000000000000000000000000000001",
};

const char* aes_trojan_target(AesTrojan trojan) {
  return trojan == AesTrojan::kNone ? "" : "key_reg";
}

namespace {

constexpr std::uint8_t kRcon[10] = {0x01, 0x02, 0x04, 0x08, 0x10,
                                    0x20, 0x40, 0x80, 0x1b, 0x36};

/// Bytes of a 128-bit port word: byte 0 is the first (leftmost) input byte,
/// living in the most significant bit positions.
Word byte_of(const Word& block, std::size_t b) {
  return w_slice(block, 8 * (15 - b), 8);
}

Word block_from_bytes(const std::array<Word, 16>& bytes) {
  Word out(128);
  for (std::size_t b = 0; b < 16; ++b) {
    for (std::size_t i = 0; i < 8; ++i) {
      out[8 * (15 - b) + i] = bytes[b][i];
    }
  }
  return out;
}

std::array<Word, 16> bytes_of(const Word& block) {
  std::array<Word, 16> bytes;
  for (std::size_t b = 0; b < 16; ++b) bytes[b] = byte_of(block, b);
  return bytes;
}

Word block_const(Netlist& nl, const AesBlock& value) {
  std::array<Word, 16> bytes;
  for (std::size_t b = 0; b < 16; ++b) {
    bytes[b] = w_const(nl, value[b], 8);
  }
  return block_from_bytes(bytes);
}

SignalId eq_block_const(Netlist& nl, const Word& block,
                        const AesBlock& value) {
  return w_eq(nl, block, block_const(nl, value));
}

/// S-box as a Shannon-expansion mux tree over the input bits. Structural
/// hashing collapses shared subtrees, and the constant leaves fold the
/// bottom mux level into wires, giving a compact LUT network that is
/// correct by construction against the reference table.
Word sbox_netlist(Netlist& nl, const Word& in) {
  const auto& table = aes_sbox();
  Word out(8);
  for (int bit = 0; bit < 8; ++bit) {
    std::function<SignalId(int, unsigned)> expand =
        [&](int level, unsigned prefix) -> SignalId {
      if (level == 8) {
        return nl.b_const(((table[prefix] >> bit) & 1u) != 0);
      }
      const int select_bit = 7 - level;
      const SignalId t =
          expand(level + 1, prefix | (1u << select_bit));
      const SignalId f = expand(level + 1, prefix);
      return nl.b_mux(in[static_cast<std::size_t>(select_bit)], t, f);
    };
    out[static_cast<std::size_t>(bit)] = expand(0, 0);
  }
  return out;
}

Word xtime(Netlist& nl, const Word& a) {
  // a * 2 in GF(2^8): shift left, conditionally XOR 0x1b.
  const SignalId msb = a[7];
  Word out(8);
  out[0] = msb;                 // 0x1b bit 0
  out[1] = nl.b_xor(a[0], msb); // 0x1b bit 1
  out[2] = a[1];
  out[3] = nl.b_xor(a[2], msb); // 0x1b bit 3
  out[4] = nl.b_xor(a[3], msb); // 0x1b bit 4
  out[5] = a[4];
  out[6] = a[5];
  out[7] = a[6];
  return out;
}

Word gf3(Netlist& nl, const Word& a) { return w_xor(nl, xtime(nl, a), a); }

std::array<Word, 16> sub_bytes(Netlist& nl, const std::array<Word, 16>& s) {
  std::array<Word, 16> out;
  for (std::size_t b = 0; b < 16; ++b) out[b] = sbox_netlist(nl, s[b]);
  return out;
}

std::array<Word, 16> shift_rows(const std::array<Word, 16>& s) {
  std::array<Word, 16> out = s;
  for (std::size_t r = 1; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      out[r + 4 * c] = s[r + 4 * ((c + r) % 4)];
    }
  }
  return out;
}

std::array<Word, 16> mix_columns(Netlist& nl, const std::array<Word, 16>& s) {
  std::array<Word, 16> out;
  for (std::size_t c = 0; c < 4; ++c) {
    const Word& a0 = s[4 * c];
    const Word& a1 = s[4 * c + 1];
    const Word& a2 = s[4 * c + 2];
    const Word& a3 = s[4 * c + 3];
    out[4 * c] = w_xor(nl, w_xor(nl, xtime(nl, a0), gf3(nl, a1)),
                       w_xor(nl, a2, a3));
    out[4 * c + 1] = w_xor(nl, w_xor(nl, a0, xtime(nl, a1)),
                           w_xor(nl, gf3(nl, a2), a3));
    out[4 * c + 2] = w_xor(nl, w_xor(nl, a0, a1),
                           w_xor(nl, xtime(nl, a2), gf3(nl, a3)));
    out[4 * c + 3] = w_xor(nl, w_xor(nl, gf3(nl, a0), a1),
                           w_xor(nl, a2, xtime(nl, a3)));
  }
  return out;
}

std::array<Word, 16> add_key(Netlist& nl, const std::array<Word, 16>& s,
                             const std::array<Word, 16>& rk) {
  std::array<Word, 16> out;
  for (std::size_t b = 0; b < 16; ++b) out[b] = w_xor(nl, s[b], rk[b]);
  return out;
}

/// One on-the-fly key-schedule step (matches aes_next_round_key).
std::array<Word, 16> next_round_key(Netlist& nl,
                                    const std::array<Word, 16>& prev,
                                    const Word& rcon) {
  std::array<Word, 4> temp = {
      sbox_netlist(nl, prev[13]), sbox_netlist(nl, prev[14]),
      sbox_netlist(nl, prev[15]), sbox_netlist(nl, prev[12])};
  temp[0] = w_xor(nl, temp[0], rcon);
  std::array<Word, 16> next;
  for (std::size_t i = 0; i < 4; ++i) next[i] = w_xor(nl, prev[i], temp[i]);
  for (std::size_t w = 1; w < 4; ++w) {
    for (std::size_t i = 0; i < 4; ++i) {
      next[4 * w + i] = w_xor(nl, prev[4 * w + i], next[4 * (w - 1) + i]);
    }
  }
  return next;
}

}  // namespace

Design build_aes(const AesOptions& options) {
  Design design;
  design.name = "aes";
  Netlist& nl = design.nl;

  // ---- environment ---------------------------------------------------------
  const SignalId reset = nl.add_input_port("reset", 1)[0];
  const SignalId load_key = nl.add_input_port("load_key", 1)[0];
  const Word key_in = nl.add_input_port("key_in", 128);
  const SignalId start = nl.add_input_port("start", 1)[0];
  const Word plaintext = nl.add_input_port("plaintext", 128);

  // ---- control -------------------------------------------------------------
  const Word busy_reg = w_make_register(nl, "busy", 1, 0);
  const SignalId busy = busy_reg[0];
  const SignalId idle = nl.b_not(busy);
  const SignalId kick = nl.b_and(nl.b_and(start, idle), nl.b_not(reset));

  const Word round = w_make_register(nl, "round", 4, 0);
  const SignalId last_round = w_eq_const(nl, round, 10);

  // ---- key register (the critical register) ---------------------------------
  RegSpecBuilder key(nl, "key_reg", 128, 0);
  const Word& key_reg = key.reg();
  key.way("Reset=1", "Any", "0x00", reset, w_const(nl, 0, 128))
      .way("Load key=1", "Any", "key input", load_key, key_in);
  key.obligation("the key is consumed whenever an encryption starts", kick,
                 key_reg, 4);

  // ---- datapath ----------------------------------------------------------------
  const Word state_reg = w_make_register(nl, "state", 128, 0);
  const Word rkey_reg = w_make_register(nl, "rkey", 128, 0);

  const auto state_bytes = bytes_of(state_reg);
  const auto rkey_bytes = bytes_of(rkey_reg);
  const auto key_bytes = bytes_of(key_reg);

  // Round transform of the state: Sub, Shift, (Mix unless last), AddKey.
  const auto subbed = sub_bytes(nl, state_bytes);
  const auto shifted = shift_rows(subbed);
  const auto mixed = mix_columns(nl, shifted);
  std::array<Word, 16> rounded;
  for (std::size_t b = 0; b < 16; ++b) {
    rounded[b] = w_mux(nl, last_round, shifted[b], mixed[b]);
  }
  const auto after_round = add_key(nl, rounded, rkey_bytes);

  // rcon for the key-schedule step taken *this* cycle.
  std::vector<netlist::CaseEntry> rcon_entries;
  for (unsigned r = 1; r <= 9; ++r) {
    rcon_entries.push_back(netlist::CaseEntry{
        w_eq_const(nl, round, r), w_const(nl, kRcon[r], 8)});
  }
  const Word rcon_busy =
      netlist::w_case(nl, rcon_entries, w_const(nl, 0, 8));
  const Word rcon = w_mux(nl, kick, w_const(nl, kRcon[0], 8), rcon_busy);

  const auto sched_src_bytes = bytes_of(w_mux(nl, kick, key_reg, rkey_reg));
  const Word rkey_next = block_from_bytes(next_round_key(nl, sched_src_bytes, rcon));

  // State register updates.
  Word state_next = state_reg;
  state_next = w_mux(nl, busy, block_from_bytes(after_round), state_next);
  state_next = w_mux(nl, kick, w_xor(nl, plaintext, key_reg), state_next);
  state_next = w_mux(nl, reset, w_const(nl, 0, 128), state_next);
  netlist::w_connect(nl, state_reg, state_next);

  Word rkey_upd = rkey_reg;
  rkey_upd = w_mux(nl, nl.b_or(kick, busy), rkey_next, rkey_upd);
  rkey_upd = w_mux(nl, reset, w_const(nl, 0, 128), rkey_upd);
  netlist::w_connect(nl, rkey_reg, rkey_upd);

  // Round counter / busy / done.
  Word round_next = round;
  round_next = w_mux(nl, busy, w_inc(nl, round), round_next);
  round_next = w_mux(nl, kick, w_const(nl, 1, 4), round_next);
  round_next = w_mux(nl, reset, w_const(nl, 0, 4), round_next);
  netlist::w_connect(nl, round, round_next);

  const SignalId finishing = nl.b_and(busy, last_round);
  Word busy_next = busy_reg;
  busy_next = w_mux(nl, finishing, w_const(nl, 0, 1), busy_next);
  busy_next = w_mux(nl, kick, w_const(nl, 1, 1), busy_next);
  busy_next = w_mux(nl, reset, w_const(nl, 0, 1), busy_next);
  netlist::w_connect(nl, busy_reg, busy_next);

  const Word done_reg = w_make_register(nl, "done", 1, 0);
  Word done_next = Word{nl.b_and(finishing, nl.b_not(reset))};
  netlist::w_connect(nl, done_reg, done_next);

  // ---- Trojan triggers -------------------------------------------------------
  // All three triggers are DeTrust-hardened: no Trojan gate performs a
  // comparison wider than one byte combinationally; wide matches are
  // accumulated across clock cycles through registered match bits. This is
  // what defeats FANCI (every Trojan wire has control values >= ~2^-11) and
  // VeriTrust (every Trojan gate is driven by functional data).
  SignalId fire_pulse = nl.const0();
  SignalId triggered_sticky = nl.const0();
  const SignalId trojan_begin = static_cast<SignalId>(nl.size());
  if (options.trojan == AesTrojan::kT700 && !options.detrust_hardened) {
    // Naive variant: single-cycle 128-bit comparator against a secret
    // constant (baseline-validation bench).
    fire_pulse = nl.b_and(
        kick, eq_block_const(
                  nl, plaintext,
                  aes_block_from_hex("deadbeef00c0ffee123456789abcdef0")));
  } else if (options.trojan == AesTrojan::kT700) {
    // DeTrust-hardened sequential comparator: capture the plaintext at
    // start, scan one byte per cycle against the trigger constant.
    const AesBlock target = aes_block_from_hex(kAesT700Plaintext);
    const Word tbuf = w_make_register(nl, "trojan_buf", 128, 0);
    Word tbuf_next = w_mux(nl, kick, plaintext, tbuf);
    netlist::w_connect(nl, tbuf, tbuf_next);

    const Word phase = w_make_register(nl, "trojan_phase", 5, 16);
    const SignalId scanning =
        nl.b_not(w_eq_const(nl, phase, 16));
    const Word match = w_make_register(nl, "trojan_match", 1, 0);

    // Select the byte under scan and its expected constant via balanced
    // trees (a priority chain would leave deep nodes with vanishing control
    // values for FANCI to catch).
    std::vector<Word> bytes;
    std::vector<Word> consts;
    for (unsigned b = 0; b < 16; ++b) {
      bytes.push_back(byte_of(tbuf, b));
      consts.push_back(w_const(nl, target[b], 8));
    }
    const Word phase_low = w_slice(phase, 0, 4);
    const Word scanned = netlist::w_select_tree(nl, phase_low, bytes);
    const Word expected = netlist::w_select_tree(nl, phase_low, consts);
    const SignalId byte_ok = w_eq(nl, scanned, expected);

    const SignalId match_now = nl.b_and(match[0], byte_ok);
    const SignalId at_last = w_eq_const(nl, phase, 15);
    fire_pulse = nl.b_and(nl.b_and(scanning, at_last), match_now);

    Word phase_next = phase;
    phase_next = w_mux(nl, scanning, w_inc(nl, phase), phase_next);
    phase_next = w_mux(nl, kick, w_const(nl, 0, 5), phase_next);
    netlist::w_connect(nl, phase, phase_next);

    Word match_next = match;
    match_next = w_mux(nl, scanning, Word{match_now}, match_next);
    match_next = w_mux(nl, kick, w_const(nl, 1, 1), match_next);
    netlist::w_connect(nl, match, match_next);
  } else if (options.trojan == AesTrojan::kT800) {
    // Four-plaintext sequence, each element verified by a 16-cycle byte
    // scan of the captured plaintext (DeTrust hardening of the Trust-Hub
    // shift-register comparators). A start arriving mid-scan restarts the
    // scan and breaks the sequence.
    const Word tbuf = w_make_register(nl, "trojan_buf", 128, 0);
    netlist::w_connect(nl, tbuf, w_mux(nl, kick, plaintext, tbuf));

    const Word phase = w_make_register(nl, "trojan_phase", 5, 16);
    const SignalId scanning = nl.b_not(w_eq_const(nl, phase, 16));
    const Word match = w_make_register(nl, "trojan_match", 1, 0);
    const Word seq_state = w_make_register(nl, "trojan_state", 2, 0);

    // Byte under scan (by phase) and its expected constant (by state and
    // phase), selected with balanced trees (see the T700 note).
    std::vector<Word> bytes;
    std::vector<Word> consts;  // index bits = {state (low), phase (high)}
    AesBlock targets[4];
    for (unsigned k = 0; k < 4; ++k) {
      targets[k] = aes_block_from_hex(kAesT800Sequence[k]);
    }
    for (unsigned b = 0; b < 16; ++b) {
      bytes.push_back(byte_of(tbuf, b));
      for (unsigned k = 0; k < 4; ++k) {
        consts.push_back(w_const(nl, targets[k][b], 8));
      }
    }
    const Word phase_low = w_slice(phase, 0, 4);
    const Word scanned = netlist::w_select_tree(nl, phase_low, bytes);
    Word state_phase = seq_state;  // low bits: state; high bits: phase
    state_phase.insert(state_phase.end(), phase_low.begin(), phase_low.end());
    const Word expected = netlist::w_select_tree(nl, state_phase, consts);
    const SignalId byte_ok = w_eq(nl, scanned, expected);
    const SignalId match_now = nl.b_and(match[0], byte_ok);
    const SignalId scan_done =
        nl.b_and(scanning, w_eq_const(nl, phase, 15));
    fire_pulse = nl.b_and(scan_done,
                          nl.b_and(match_now, w_eq_const(nl, seq_state, 3)));

    Word seq_next = seq_state;
    seq_next = w_mux(nl, nl.b_and(kick, scanning), w_const(nl, 0, 2),
                     seq_next);  // broken sequence
    seq_next = w_mux(
        nl, scan_done,
        w_mux(nl, match_now, w_inc(nl, seq_state), w_const(nl, 0, 2)),
        seq_next);
    seq_next = w_mux(nl, reset, w_const(nl, 0, 2), seq_next);
    netlist::w_connect(nl, seq_state, seq_next);

    Word phase_next = phase;
    phase_next = w_mux(nl, scanning, w_inc(nl, phase), phase_next);
    phase_next = w_mux(nl, kick, w_const(nl, 0, 5), phase_next);
    phase_next = w_mux(nl, reset, w_const(nl, 16, 5), phase_next);
    netlist::w_connect(nl, phase, phase_next);

    Word match_next = match;
    match_next = w_mux(nl, scanning, Word{match_now}, match_next);
    match_next = w_mux(nl, kick, w_const(nl, 1, 1), match_next);
    netlist::w_connect(nl, match, match_next);
  } else if (options.trojan == AesTrojan::kT1200) {
    // Time bomb (DeTrust-hardened): a 128-bit LFSR that advances once per
    // 32-cycle scan window; within each window the state is verified nibble
    // by nibble against a secret target state. The LFSR reaches the target
    // only after an astronomical number of windows (~2^128 cycles), so no
    // bounded unrolling can trigger it — the paper's N/A row. Unlike a
    // binary counter, every LFSR bit toggles constantly under simulation,
    // which is what keeps VeriTrust-style dormancy analysis blind to it.
    const Word phase = w_make_register(nl, "trojan_phase", 5, 0);
    netlist::w_connect(nl, phase, w_inc(nl, phase));  // wraps mod 32
    const SignalId window_end = w_eq_const(nl, phase, 31);

    // Fibonacci LFSR (taps 128, 126, 101, 99) with a dense seed so every
    // bit toggles within a few dozen windows under simulation.
    Word lfsr(128);
    for (unsigned i = 0; i < 128; ++i) {
      lfsr[i] = nl.add_dff((i % 3) != 2);  // seed 0b110110110...
      nl.set_name(lfsr[i], "trojan_lfsr[" + std::to_string(i) + "]");
    }
    nl.add_register("trojan_lfsr", lfsr);
    const SignalId feedback = nl.b_xor(
        nl.b_xor(lfsr[127], lfsr[125]), nl.b_xor(lfsr[100], lfsr[98]));
    Word lfsr_next(128);
    lfsr_next[0] = feedback;
    for (unsigned i = 1; i < 128; ++i) lfsr_next[i] = lfsr[i - 1];
    netlist::w_connect(nl, lfsr, w_mux(nl, window_end, lfsr_next, lfsr));

    const AesBlock target =
        aes_block_from_hex("0123456789abcdef0fedcba987654321");
    const Word target_word = block_const(nl, target);
    std::vector<Word> nibbles;
    std::vector<Word> expects;
    for (unsigned i = 0; i < 32; ++i) {
      nibbles.push_back(w_slice(lfsr, 4 * i, 4));
      expects.push_back(w_slice(target_word, 4 * i, 4));
    }
    const Word nibble = netlist::w_select_tree(nl, phase, nibbles);
    const Word expect = netlist::w_select_tree(nl, phase, expects);
    const SignalId nibble_ok = w_eq(nl, nibble, expect);

    const Word match = w_make_register(nl, "trojan_match", 1, 0);
    const SignalId at_first = w_eq_const(nl, phase, 0);
    const SignalId match_now =
        nl.b_mux(at_first, nibble_ok, nl.b_and(match[0], nibble_ok));
    netlist::w_connect(nl, match, Word{match_now});
    fire_pulse = nl.b_and(window_end, match_now);
  }

  SignalId fire_registered = nl.const0();
  if (options.trojan != AesTrojan::kNone) {
    // The firing pulse crosses into the payload through a register, so the
    // payload mux's fan-in cone sees a free flip-flop instead of the firing
    // conjunction (DeTrust rule; keeps FANCI blind).
    const SignalId fire_dff = nl.add_dff(false);
    nl.set_name(fire_dff, "trojan_fire");
    nl.connect_dff_input(fire_dff, fire_pulse);
    fire_registered = fire_dff;
    const SignalId sticky = nl.add_dff(false);
    nl.set_name(sticky, "trojan_triggered");
    triggered_sticky = nl.b_or(sticky, fire_dff);
    nl.connect_dff_input(sticky, triggered_sticky);
    design.trojan_trigger = sticky;
    design.trojan_gate_ranges.emplace_back(trojan_begin,
                                           static_cast<SignalId>(nl.size()));
  }

  // ---- key register update (+ payload) ------------------------------------------
  {
    Word next = key.golden_next();
    const SignalId payload_begin = static_cast<SignalId>(nl.size());
    if (options.trojan != AesTrojan::kNone && options.payload_enabled) {
      // Payload: corrupt the key register. T700 flips the LSB byte; T800 and
      // T1200 additionally flip the MSB ("modifies key register").
      AesBlock mask{};
      mask[15] = 0xFF;
      if (options.trojan != AesTrojan::kT700) mask[0] = 0x80;
      const Word corrupted = w_xor(nl, key_reg, block_const(nl, mask));
      next = w_mux(nl, fire_registered, corrupted, next);
      design.trojan_gate_ranges.emplace_back(
          payload_begin, static_cast<SignalId>(nl.size()));
    }
    key.finish_with(design.spec, next);
  }

  // Silence unused warnings for documentation-only views.
  (void)key_bytes;

  // ---- outputs --------------------------------------------------------------------
  nl.add_output_port("ciphertext", state_reg);
  nl.add_output_port("done", done_reg);
  nl.add_output_port("busy", busy_reg);

  design.critical_registers = {"key_reg"};
  nl.validate();
  return design;
}

}  // namespace trojanscout::designs
