// Catalog of the paper's nine Trust-Hub benchmark rows (Table 1) plus the
// clean designs used for the false-positive experiment, with the metadata
// the table-printing benches need.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "designs/design.hpp"

namespace trojanscout::designs {

struct BenchmarkInfo {
  std::string name;               // e.g. "MC8051-T400"
  std::string family;             // "mc8051" | "risc" | "aes"
  std::string trigger_condition;  // Table 1 column 2 text
  std::string payload;            // Table 1 column 3 text
  std::string critical_register;  // register the Trojan corrupts
  /// Whether the paper expects the formal checks to find it (false only for
  /// AES-T1200, whose 2^128-cycle trigger is out of reach).
  bool detectable = true;
  /// Builds the Trojan-infected design. payload_enabled=false exposes the
  /// trigger for the Section 4 attack transformers instead.
  std::function<Design(bool payload_enabled)> build;
};

struct CatalogOptions {
  /// RISC trigger count (paper: 100 matching instructions = 400 clock
  /// cycles; Table 1's unroll depths imply a smaller count was used there —
  /// see EXPERIMENTS.md). Default 25 instructions = 100 cycles.
  unsigned risc_trigger_count = 25;
};

/// The nine Table 1 rows, in table order.
std::vector<BenchmarkInfo> trojan_benchmarks(const CatalogOptions& options = {});

/// Clean (Trojan-free) design per family, for the false-positive checks.
Design build_clean(const std::string& family);

}  // namespace trojanscout::designs
