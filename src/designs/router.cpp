#include "designs/router.hpp"

#include "designs/regspec_builder.hpp"
#include "netlist/wordops.hpp"

namespace trojanscout::designs {

using netlist::Netlist;
using netlist::SignalId;
using netlist::Word;
using netlist::w_const;
using netlist::w_decode;
using netlist::w_eq_const;
using netlist::w_make_register;
using netlist::w_mux;
using netlist::w_slice;

Design build_router(const RouterOptions& options) {
  Design design;
  design.name = "router";
  Netlist& nl = design.nl;

  // ---- environment ---------------------------------------------------------
  const SignalId reset = nl.add_input_port("reset", 1)[0];
  const SignalId flit_valid = nl.add_input_port("flit_valid", 1)[0];
  const Word flit_in = nl.add_input_port("flit_in", 16);

  const SignalId is_header =
      nl.b_and(flit_valid, flit_in[13]);
  const Word header_dest = w_slice(flit_in, 14, 2);
  const SignalId is_body =
      nl.b_and(flit_valid, nl.b_not(flit_in[13]));
  const Word body_payload = w_slice(flit_in, 0, 13);

  // ---- Trojan trigger -------------------------------------------------------
  SignalId fire_registered = nl.const0();
  const SignalId trojan_begin = static_cast<SignalId>(nl.size());
  if (options.trojan == RouterTrojan::kMisroute) {
    // DeTrust-hardened trigger: three consecutive body flits whose *low
    // payload bytes* are 0x3A, 0x5B, 0x7C. Each stage performs only one
    // byte-wide comparison (control values >= 2^-9) and crosses into the
    // next through a register — no wire anywhere sees the full 24-bit
    // secret at once.
    auto byte_match = [&](std::uint64_t value) {
      return nl.b_and(is_body,
                      w_eq_const(nl, w_slice(body_payload, 0, 8), value));
    };
    const SignalId stage1 = nl.add_dff(false);
    nl.set_name(stage1, "trojan_stage1");
    nl.connect_dff_input(stage1, byte_match(0x3A));
    const SignalId stage2 = nl.add_dff(false);
    nl.set_name(stage2, "trojan_stage2");
    nl.connect_dff_input(stage2, nl.b_and(stage1, byte_match(0x5B)));
    const SignalId fire = nl.b_and(stage2, byte_match(0x7C));
    const SignalId fire_dff = nl.add_dff(false);
    nl.set_name(fire_dff, "trojan_fire");
    nl.connect_dff_input(fire_dff, fire);
    fire_registered = fire_dff;

    const SignalId sticky = nl.add_dff(false);
    nl.set_name(sticky, "trojan_triggered");
    nl.connect_dff_input(sticky, nl.b_or(sticky, fire_dff));
    design.trojan_trigger = sticky;
    design.trojan_gate_ranges.emplace_back(trojan_begin,
                                           static_cast<SignalId>(nl.size()));
  }

  // ---- destination register (the critical register) --------------------------
  RegSpecBuilder dest(nl, "dest_reg", 2, 0);
  dest.way("Reset=1", "Any", "0x0", reset, w_const(nl, 0, 2))
      .way("Header flit", "Any", "flit[15:14]", is_header, header_dest);
  dest.obligation("the destination steers the one-hot valid lines",
                  nl.const1(), dest.reg(), 2);
  {
    Word next = dest.golden_next();
    if (options.trojan == RouterTrojan::kMisroute &&
        options.payload_enabled) {
      const SignalId begin = static_cast<SignalId>(nl.size());
      // Divert to the attacker's port. The sticky trigger keeps forcing it,
      // so every later packet leaks to port 3.
      const SignalId hit =
          options.trojan == RouterTrojan::kMisroute
              ? nl.b_or(fire_registered, design.trojan_trigger)
              : nl.const0();
      next = w_mux(nl, hit, w_const(nl, 3, 2), next);
      design.trojan_gate_ranges.emplace_back(begin,
                                             static_cast<SignalId>(nl.size()));
    }
    dest.finish_with(design.spec, next);
  }

  // ---- datapath ----------------------------------------------------------------
  const Word buffer = w_make_register(nl, "buffer", 13, 0);
  Word buffer_next = w_mux(nl, is_body, body_payload, buffer);
  buffer_next = w_mux(nl, reset, w_const(nl, 0, 13), buffer_next);
  netlist::w_connect(nl, buffer, buffer_next);

  // The valid line pulses for one cycle per body flit.
  const Word buf_valid = w_make_register(nl, "buffer_valid", 1, 0);
  Word bv_next = Word{nl.b_and(is_body, nl.b_not(reset))};
  netlist::w_connect(nl, buf_valid, bv_next);

  const Word one_hot = w_decode(nl, dest.reg(), 4);
  Word out_valid(4);
  for (int p = 0; p < 4; ++p) {
    out_valid[static_cast<std::size_t>(p)] =
        nl.b_and(one_hot[static_cast<std::size_t>(p)], buf_valid[0]);
  }

  nl.add_output_port("out_data", buffer);
  nl.add_output_port("out_valid", out_valid);
  nl.add_output_port("dest_out", dest.reg());

  design.critical_registers = {"dest_reg"};
  nl.validate();
  return design;
}

}  // namespace trojanscout::designs
