// Section 4 attack-injection transformers.
//
// These implement the two evasion attacks of the paper on top of any
// benchmark design, reusing the design's own Trojan trigger machinery
// (build the design with payload_enabled = false so Design::trojan_trigger
// is exposed but unarmed):
//
//  * plant_pseudo_critical (Figure 2): inserts register "pseudo_<R>" whose
//    input is R's output, reroutes R's fanout logic to read the
//    pseudo-critical register, and corrupts *it* (bitwise complement) when
//    the trigger fires. R itself is never corrupted, so the Eq. (2) check
//    on R stays silent; the Eq. (3) pseudo-critical property is what
//    exposes the attack.
//
//  * plant_bypass (Figure 3): inserts register "bypass_<R>" that shadows
//    ~R until the trigger fires and then freezes; a mux at R's fanout
//    selects the bypass register once triggered. R is never corrupted and
//    still updates validly; the Eq. (4) bypass property (fork miter)
//    exposes the attack.
//
// Both transformers leave R's own next-state cone reading the real R
// (Figure 2 keeps the increment/decrement feedback on the critical
// register) and leave the design's valid-ways spec untouched.
#pragma once

#include <string>

#include "designs/design.hpp"

namespace trojanscout::designs {

/// Name of the planted register for register `reg`.
std::string pseudo_register_name(const std::string& reg);
std::string bypass_register_name(const std::string& reg);

/// Plants a pseudo-critical register on `reg`. The design must expose
/// trojan_trigger (build with payload_enabled = false). Throws
/// std::invalid_argument otherwise. With corrupt=false the shadow register
/// faithfully mirrors `reg` forever (benign variant, used to measure how
/// deep the Eq. 3 property can be certified within a budget).
void plant_pseudo_critical(Design& design, const std::string& reg,
                           bool corrupt = true);

/// Plants a bypass register + fanout mux on `reg`. Same preconditions.
void plant_bypass(Design& design, const std::string& reg);

}  // namespace trojanscout::designs
