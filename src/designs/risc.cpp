#include "designs/risc.hpp"

#include <stdexcept>

#include "designs/regspec_builder.hpp"
#include "netlist/wordops.hpp"

namespace trojanscout::designs {

using netlist::Netlist;
using netlist::SignalId;
using netlist::Word;
using netlist::w_add_const;
using netlist::w_concat;
using netlist::w_const;
using netlist::w_dec;
using netlist::w_eq_const;
using netlist::w_in_range;
using netlist::w_inc;
using netlist::w_make_register;
using netlist::w_mux;
using netlist::w_resize;
using netlist::w_slice;

namespace {
constexpr std::size_t kPcBits = 13;
constexpr std::size_t kSpBits = 3;
constexpr std::size_t kStackDepth = 8;
constexpr std::size_t kRamDepth = 16;
}  // namespace

const char* risc_trojan_target(RiscTrojan trojan) {
  switch (trojan) {
    case RiscTrojan::kNone:
      return "";
    case RiscTrojan::kT100:
      return "program_counter";
    case RiscTrojan::kT300:
      return "eeprom_data";
    case RiscTrojan::kT400:
      return "eeprom_address";
    case RiscTrojan::kFig1StackPointer:
      return "stack_pointer";
  }
  return "";
}

Design build_risc(const RiscOptions& options) {
  Design design;
  design.name = "risc";
  Netlist& nl = design.nl;

  // ---- environment --------------------------------------------------------
  const SignalId reset = nl.add_input_port("reset", 1)[0];
  const Word prog_data = nl.add_input_port("prog_data", 14);
  const SignalId ext_interrupt = nl.add_input_port("ext_interrupt", 1)[0];
  const Word eeprom_in = nl.add_input_port("eeprom_in", 8);
  const SignalId write_complete = nl.add_input_port("write_complete", 1)[0];

  // ---- machine cycle (Q1..Q4 as 0..3) -------------------------------------
  const Word cycle = w_make_register(nl, "cycle", 2, 0);
  netlist::w_connect(nl, cycle,
                     w_mux(nl, reset, w_const(nl, 0, 2), w_inc(nl, cycle)));
  const SignalId cycle2 = w_eq_const(nl, cycle, 1);
  const SignalId cycle4 = w_eq_const(nl, cycle, 3);

  // ---- instruction register & decode --------------------------------------
  RegSpecBuilder ir(nl, "instruction_register", 14, 0);
  const Word& instr = ir.reg();

  const Word op_top3 = w_slice(instr, 11, 3);
  const Word op_top6 = w_slice(instr, 8, 6);
  const SignalId is_call = w_eq_const(nl, op_top3, 0b100);
  const SignalId is_goto = w_eq_const(nl, op_top3, 0b101);
  const SignalId is_movlw = w_eq_const(nl, op_top6, 0b110000);
  const SignalId is_addlw = w_eq_const(nl, op_top6, 0b011110);
  const SignalId is_movwf = w_eq_const(nl, op_top6, 0b000001);
  const SignalId is_movf = w_eq_const(nl, op_top6, 0b001000);
  const SignalId is_return = w_eq_const(nl, instr, 0x008);
  const SignalId is_sleep = w_eq_const(nl, instr, 0x063);
  const SignalId is_eerd = w_eq_const(nl, instr, 0x040);
  const Word literal8 = w_slice(instr, 0, 8);
  const Word file4 = w_slice(instr, 0, 4);
  const SignalId dest_is_pcl = nl.b_and(is_movwf, w_eq_const(nl, file4, 0x2));

  // ---- stall / sleep gating ------------------------------------------------
  const Word stall_reg = w_make_register(nl, "stall", 1, 1);  // flush at boot
  const SignalId stall_bit = stall_reg[0];
  RegSpecBuilder sleepf(nl, "sleep_flag", 1, 0);
  const SignalId sleeping = sleepf.bit(0);
  // "Stall=0" in Table 2 terms: the instruction executes this machine cycle.
  const SignalId stall = nl.b_or(stall_bit, sleeping);
  const SignalId run = nl.b_not(stall);
  nl.set_name(stall, "stall_effective");

  // ---- interrupt flag (Table 2 "Interrupt enable") -------------------------
  RegSpecBuilder inte(nl, "interrupt_enable", 1, 0);
  const SignalId int_flag = inte.bit(0);
  const SignalId int_taken = nl.b_and(nl.b_and(int_flag, cycle4), run);
  nl.set_name(int_taken, "interrupt_taken");

  // ---- stack pointer (Table 2) ---------------------------------------------
  RegSpecBuilder sp(nl, "stack_pointer", kSpBits, 0);
  const Word& sp_reg = sp.reg();

  // ---- W register and RAM ---------------------------------------------------
  const Word w_register = w_make_register(nl, "w_register", 8, 0);
  const SignalId ram_write =
      nl.b_and(nl.b_and(is_movwf, nl.b_not(dest_is_pcl)),
               nl.b_and(cycle4, run));
  const netlist::RamPorts ram = netlist::w_ram(
      nl, "ram", kRamDepth, 8, /*read_addr=*/file4, /*write_addr=*/file4,
      /*write_data=*/w_register, /*write_en=*/ram_write);
  // RAM[0x09] is the EEPROM address special-purpose register source.
  const Word ram9 = nl.find_register("ram[9]").dffs;

  Word w_next = w_register;
  w_next = w_mux(nl, is_movf, ram.read_data, w_next);
  const Word addlw_sum = netlist::w_add(nl, w_resize(nl, w_register, 9),
                                        w_resize(nl, literal8, 9));
  const SignalId overflow =
      nl.b_and(nl.b_and(is_addlw, addlw_sum[8]), nl.b_and(cycle4, run));
  w_next = w_mux(nl, is_addlw, w_slice(addlw_sum, 0, 8), w_next);
  w_next = w_mux(nl, is_movlw, literal8, w_next);
  const SignalId w_update = nl.b_and(nl.b_and(cycle4, run),
                                     nl.b_or(nl.b_or(is_movlw, is_addlw), is_movf));
  netlist::w_connect(nl, w_register,
                     w_mux(nl, w_update, w_next, w_register));

  // ---- PC latch (PCLATH) -----------------------------------------------------
  const Word pc_latch = w_make_register(nl, "pc_latch", 5, 0);
  const SignalId pclath_write =
      nl.b_and(nl.b_and(is_movwf, w_eq_const(nl, file4, 0xA)),
               nl.b_and(cycle4, run));
  netlist::w_connect(
      nl, pc_latch,
      w_mux(nl, pclath_write, w_slice(w_register, 0, 5), pc_latch));

  // ---- program counter & stack ----------------------------------------------
  RegSpecBuilder pc(nl, "program_counter", kPcBits, 0);
  const Word& pc_reg = pc.reg();

  const SignalId sp_dec_now = nl.b_and(nl.b_and(is_return, cycle2), run);
  const SignalId sp_inc_now = nl.b_and(nl.b_and(is_call, cycle4), run);
  sp.way("Reset=1", "Any", "0x00", reset, w_const(nl, 0, kSpBits))
      .way("Return=1", "2", "Decrement by 1", sp_dec_now, w_dec(nl, sp_reg))
      .way("Call=1", "4", "Increment by 1", sp_inc_now, w_inc(nl, sp_reg));

  // Stack array: push PC+1 on CALL at cycle 4 (SP increments the same edge).
  const SignalId stack_push = sp_inc_now;
  const netlist::RamPorts stack = netlist::w_ram(
      nl, "stack", kStackDepth, kPcBits, /*read_addr=*/sp_reg,
      /*write_addr=*/sp_reg, /*write_data=*/w_inc(nl, pc_reg),
      /*write_en=*/stack_push);
  const Word return_target = stack.read_data;  // stack[SP], SP already -1'd

  const SignalId pc_return = nl.b_and(nl.b_and(is_return, cycle4), run);
  const SignalId pc_jump =
      nl.b_and(nl.b_and(nl.b_or(is_goto, is_call), cycle4), run);
  const Word jump_target =
      w_concat(w_slice(instr, 0, 11), w_slice(pc_latch, 0, 2));
  const Word pcl_target =
      w_concat(w_resize(nl, w_register, 8), w_slice(pc_latch, 0, 5));
  const SignalId pc_write_pcl = nl.b_and(nl.b_and(dest_is_pcl, cycle4), run);
  const SignalId pc_step = nl.b_and(cycle4, run);

  pc.way("Reset=1", "Any", "0x00", reset, w_const(nl, 0, kPcBits))
      .way("Interrupt=1 & Stall=0", "4", "0x04", int_taken,
           w_const(nl, 0x04, kPcBits))
      .way("Return=1 & Stall=0", "4", "Stack array[Stack pointer]", pc_return,
           return_target)
      .way("Goto=1 & Stall=0", "4", "{PC latch, Instr. register}", pc_jump,
           jump_target)
      .way("Destination=PCL", "4", "{PC latch, Output of ALU}", pc_write_pcl,
           pcl_target)
      .way("Stall=0", "4", "Increment by 1", pc_step, w_inc(nl, pc_reg));

  // ---- interrupt-flag valid ways ---------------------------------------------
  const SignalId int_set =
      nl.b_or(nl.b_or(ext_interrupt, overflow), write_complete);
  inte.way("Reset=1", "Any", "0x00", reset, w_const(nl, 0, 1))
      .way("Interrupt taken", "4", "0x00", int_taken, w_const(nl, 0, 1))
      .way("Extl. interrupt | Overflow | Write complete", "Any", "0x01",
           int_set, w_const(nl, 1, 1));
  // Taking vs not taking the interrupt only diverges the PC when the
  // sequential fetch would not have landed on the vector anyway.
  // (The discriminating condition is completed below, once the PC exists.)

  // ---- EEPROM registers --------------------------------------------------------
  RegSpecBuilder eedata(nl, "eeprom_data", 8, 0);
  const SignalId ee_read = nl.b_and(nl.b_and(is_eerd, cycle4), run);
  eedata.way("Reset=1", "Any", "0x00", reset, w_const(nl, 0, 8))
      .way("Stall=0 & EEPROM read=1", "4", "EEPROM input", ee_read, eeprom_in);
  eedata.obligation("eeprom_data drives eeprom_data_out continuously",
                    nl.const1(), eedata.reg(), 2);

  RegSpecBuilder eeaddr(nl, "eeprom_address", 8, 0);
  const SignalId ee_addr_load = nl.b_and(cycle4, run);
  eeaddr.way("Reset=1", "Any", "0x00", reset, w_const(nl, 0, 8))
      .way("Stall=0", "4", "RAM[0x09]", ee_addr_load, ram9);
  eeaddr.obligation("eeprom_address drives eeprom_addr_out continuously",
                    nl.const1(), eeaddr.reg(), 2);

  // ---- IR / sleep / stall updates ------------------------------------------------
  ir.way("Reset=1", "Any", "0x00 (NOP)", reset, w_const(nl, 0, 14))
      .way("-", "4", "RAM[Program counter]", cycle4, prog_data);
  ir.finish(design.spec);

  const SignalId sleep_now = nl.b_and(nl.b_and(is_sleep, cycle4), run);
  sleepf.way("Reset=1", "Any", "0", reset, w_const(nl, 0, 1))
      .way("Sleep inst.", "4", "1", sleep_now, w_const(nl, 1, 1));
  sleepf.obligation("sleep flag drives sleep_out continuously", nl.const1(),
                    sleepf.reg(), 2);
  sleepf.finish(design.spec);

  const SignalId flush =
      nl.b_or(nl.b_or(pc_return, pc_jump), nl.b_or(pc_write_pcl, int_taken));
  Word stall_next = stall_reg;
  stall_next = w_mux(nl, cycle4, Word{flush}, stall_next);
  stall_next = w_mux(nl, reset, w_const(nl, 1, 1), stall_next);
  netlist::w_connect(nl, stall_reg, stall_next);

  // ---- Trojan trigger: Figure 1 / Table 1 RISC trigger -------------------------
  // Counts instructions whose bits [13:10] are in 0x4..0xB; fires at
  // options.trigger_count and stays triggered (sticky).
  SignalId triggered = nl.const0();
  const SignalId trojan_begin = static_cast<SignalId>(nl.size());
  if (options.trojan != RiscTrojan::kNone) {
    const Word msb4 = w_slice(instr, 10, 4);
    const SignalId in_range = w_in_range(nl, msb4, 0x4, 0xB);
    const SignalId count_now = nl.b_and(cycle4, in_range);

    // Counter sized to the trigger count, as the Trust-Hub Trojans do: no
    // permanently dead upper bits for a dormancy analysis to latch onto.
    std::size_t count_bits = 1;
    while ((1ull << count_bits) < options.trigger_count) ++count_bits;
    const Word count = w_make_register(nl, "trojan_count", count_bits, 0);
    const SignalId trig_dff = nl.add_dff(false);
    nl.set_name(trig_dff, "trojan_triggered");
    const SignalId will_fire = nl.b_and(
        count_now,
        w_eq_const(nl, count, options.trigger_count >= 1
                                  ? options.trigger_count - 1
                                  : 0));
    triggered = trig_dff;  // payloads key on the *registered* trigger:
    // no payload-side gate ever sees the combinational firing conjunction,
    // which is what keeps its control values healthy (DeTrust rule).
    nl.connect_dff_input(trig_dff, nl.b_or(trig_dff, will_fire));
    netlist::w_connect(
        nl, count,
        w_mux(nl, nl.b_and(count_now, nl.b_not(trig_dff)),
              w_inc(nl, count), count));
    design.trojan_trigger = triggered;
    design.trojan_gate_ranges.emplace_back(trojan_begin,
                                           static_cast<SignalId>(nl.size()));
  }

  // ---- apply payloads and close the registers -----------------------------------
  // Program counter (RISC-T100: +2 instead of +1 when triggered).
  {
    Word next = pc.golden_next();
    if (options.trojan == RiscTrojan::kT100 && options.payload_enabled) {
      const SignalId begin = static_cast<SignalId>(nl.size());
      const SignalId hit = nl.b_and(triggered, pc_step);
      next = w_mux(nl, hit, w_add_const(nl, pc_reg, 2), next);
      design.trojan_gate_ranges.emplace_back(begin,
                                             static_cast<SignalId>(nl.size()));
    }
    pc.obligation("PC is the program-memory fetch address", nl.const1(),
                  pc_reg, 2);
    pc.finish_with(design.spec, next);
  }

  // Observation functions for the Eq. 4 obligations (elaborated alongside
  // the design like assertions; see DESIGN.md): a second stack read port at
  // the complemented stack pointer lets the bypass miter require that the
  // two return targets genuinely differ before demanding PC divergence.
  const Word alt_sp = netlist::w_not(nl, sp_reg);
  Word alt_return_target = w_const(nl, 0, kPcBits);
  {
    const Word alt_sel = netlist::w_decode(nl, alt_sp, kStackDepth);
    for (std::size_t entry = 0; entry < kStackDepth; ++entry) {
      alt_return_target = w_mux(
          nl, alt_sel[entry],
          nl.find_register("stack[" + std::to_string(entry) + "]").dffs,
          alt_return_target);
    }
  }
  const SignalId targets_differ =
      nl.b_not(netlist::w_eq(nl, return_target, alt_return_target));
  // The not-taken next PC must genuinely differ from the vector: a program
  // can mask the flag by jumping (GOTO/RETURN/PCL-write) to 0x04 exactly
  // when the interrupt would have fired, so exclude every way, not just the
  // sequential fetch.
  Word pc_not_taken = pc_reg;
  pc_not_taken = w_mux(nl, pc_step, w_inc(nl, pc_reg), pc_not_taken);
  pc_not_taken = w_mux(nl, pc_write_pcl, pcl_target, pc_not_taken);
  pc_not_taken = w_mux(nl, pc_jump, jump_target, pc_not_taken);
  pc_not_taken = w_mux(nl, pc_return, return_target, pc_not_taken);
  const SignalId inte_discriminator = nl.b_and(
      nl.b_and(nl.b_and(cycle4, run), nl.b_not(reset)),
      nl.b_not(w_eq_const(nl, pc_not_taken, 0x04)));
  inte.obligation(
      "interrupt flag steers the PC at cycle 4 (vector != next PC)",
      inte_discriminator, Word{}, 4);

  // Stack pointer (Figure 1 Trojan: SP -= 2 when triggered).
  {
    Word next = sp.golden_next();
    if (options.trojan == RiscTrojan::kFig1StackPointer &&
        options.payload_enabled) {
      const SignalId begin = static_cast<SignalId>(nl.size());
      const SignalId hit = nl.b_and(triggered, cycle4);
      next = w_mux(nl, hit, w_dec(nl, w_dec(nl, sp_reg)), next);
      design.trojan_gate_ranges.emplace_back(begin,
                                             static_cast<SignalId>(nl.size()));
    }
    // The Return way must actually win the PC priority mux: a pending
    // interrupt (or reset) hijacks the PC in both miter copies at the very
    // cycle the RETURN executes, masking the differing return targets.
    const SignalId return_wins =
        nl.b_and(pc_return, nl.b_not(nl.b_or(int_taken, reset)));
    sp.obligation(
        "Return wins the PC mux and observes stack[SP] (targets differ)",
        nl.b_and(return_wins, targets_differ), Word{}, 3);
    sp.finish_with(design.spec, next);
  }

  // Interrupt flag.
  inte.finish(design.spec);

  // EEPROM data (RISC-T300: corrupted while the read strobe is disabled).
  {
    Word next = eedata.golden_next();
    if (options.trojan == RiscTrojan::kT300 && options.payload_enabled) {
      const SignalId begin = static_cast<SignalId>(nl.size());
      const SignalId hit = nl.b_and(
          triggered, nl.b_and(cycle4, nl.b_not(ee_read)));
      next = w_mux(nl, hit, netlist::w_not(nl, eeprom_in), next);
      design.trojan_gate_ranges.emplace_back(begin,
                                             static_cast<SignalId>(nl.size()));
    }
    eedata.finish_with(design.spec, next);
  }

  // EEPROM address (RISC-T400: forced to 0x00 during a stall).
  {
    Word next = eeaddr.golden_next();
    if (options.trojan == RiscTrojan::kT400 && options.payload_enabled) {
      const SignalId begin = static_cast<SignalId>(nl.size());
      const SignalId hit =
          nl.b_and(triggered, nl.b_and(cycle4, stall));
      next = w_mux(nl, hit, w_const(nl, 0, 8), next);
      design.trojan_gate_ranges.emplace_back(begin,
                                             static_cast<SignalId>(nl.size()));
    }
    eeaddr.finish_with(design.spec, next);
  }

  // ---- outputs ----------------------------------------------------------------
  nl.add_output_port("pc_out", pc_reg);
  nl.add_output_port("w_out", w_register);
  nl.add_output_port("eeprom_addr_out", eeaddr.reg());
  nl.add_output_port("eeprom_data_out", eedata.reg());
  nl.add_output_port("sleep_out", sleepf.reg());

  design.critical_registers = {"program_counter", "stack_pointer",
                               "interrupt_enable", "eeprom_data",
                               "eeprom_address"};
  nl.validate();
  return design;
}

}  // namespace trojanscout::designs
