// AES-128 benchmark: a round-per-cycle encryption core with an on-the-fly
// key schedule, the design class behind the Trust-Hub AES Trojans the paper
// evaluates (AES-T700 / T800 / T1200, payloads modified per the paper's
// footnote 2 to corrupt — rather than leak — the key).
//
// Interface:
//   inputs : reset, load_key, key_in[128], start, plaintext[128]
//   outputs: ciphertext[128] (the state register), done, busy
//
// Operation: load_key latches key_in into the key register. start (when
// idle) kicks off an encryption: state := plaintext ^ key, then one AES
// round per cycle for 10 cycles (the last round skips MixColumns), after
// which done pulses and the state register holds the ciphertext. Round keys
// are computed on the fly in a separate rkey register, so the key register
// itself is quiescent during encryption — exactly the invariant the
// no-data-corruption property checks.
//
// 128-bit ports use big-endian bit order: port bit (127 - 8b - i) is bit i
// (LSB) of byte b, so a witness hex dump reads like a FIPS-197 vector.
//
// Trojans (triggers per Table 1; all corrupt the key register):
//   kT700  — trigger: plaintext == 00112233445566778899aabbccddeeff.
//            DeTrust-hardened: the comparison is *sequential*, scanning the
//            captured plaintext one byte per cycle over 16 cycles, so every
//            trigger gate has activation probability >= 2^-8 (defeats
//            FANCI) and is driven by functional data (defeats VeriTrust).
//            Payload: XORs 0xFF into the least-significant key byte.
//   kT800  — trigger: the 4-plaintext sequence of Table 1 presented on
//            consecutive encryptions. Payload: corrupts the key register.
//   kT1200 — trigger: a 128-bit free-running cycle counter reaching all
//            ones (2^128 - 1 cycles). Undetectable within any feasible
//            unrolling bound — the paper's N/A row.
#pragma once

#include "designs/design.hpp"

namespace trojanscout::designs {

enum class AesTrojan { kNone, kT700, kT800, kT1200 };

struct AesOptions {
  AesTrojan trojan = AesTrojan::kNone;
  /// See RiscOptions::payload_enabled.
  bool payload_enabled = true;
  /// When false, kT700 uses a naive single-cycle 128-bit combinational
  /// comparator against a secret plaintext (not a known-answer vector), the
  /// structure FANCI/VeriTrust were designed to catch.
  bool detrust_hardened = true;
};

Design build_aes(const AesOptions& options = {});

const char* aes_trojan_target(AesTrojan trojan);

/// The four T800 trigger plaintexts (Table 1), as hex strings.
extern const char* const kAesT800Sequence[4];
/// The T700 trigger plaintext (Table 1).
extern const char* kAesT700Plaintext;

}  // namespace trojanscout::designs
