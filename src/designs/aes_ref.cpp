#include "designs/aes_ref.hpp"

#include <cstring>
#include <stdexcept>

namespace trojanscout::designs {

std::uint8_t gf_mul(std::uint8_t a, std::uint8_t b) {
  std::uint8_t result = 0;
  std::uint16_t aa = a;
  while (b != 0) {
    if (b & 1u) result ^= static_cast<std::uint8_t>(aa);
    aa <<= 1;
    if (aa & 0x100u) aa ^= 0x11b;
    b >>= 1;
  }
  return result;
}

const std::array<std::uint8_t, 256>& aes_sbox() {
  static const std::array<std::uint8_t, 256> table = [] {
    std::array<std::uint8_t, 256> t{};
    for (int x = 0; x < 256; ++x) {
      // Multiplicative inverse in GF(2^8); 0 maps to 0.
      std::uint8_t inv = 0;
      if (x != 0) {
        for (int y = 1; y < 256; ++y) {
          if (gf_mul(static_cast<std::uint8_t>(x),
                     static_cast<std::uint8_t>(y)) == 1) {
            inv = static_cast<std::uint8_t>(y);
            break;
          }
        }
      }
      // Affine transform: b'_i = b_i ^ b_{i+4} ^ b_{i+5} ^ b_{i+6} ^ b_{i+7}
      // ^ c_i with c = 0x63 (indices mod 8).
      std::uint8_t out = 0;
      for (int i = 0; i < 8; ++i) {
        const int bit = ((inv >> i) & 1) ^ ((inv >> ((i + 4) % 8)) & 1) ^
                        ((inv >> ((i + 5) % 8)) & 1) ^
                        ((inv >> ((i + 6) % 8)) & 1) ^
                        ((inv >> ((i + 7) % 8)) & 1) ^ ((0x63 >> i) & 1);
        out |= static_cast<std::uint8_t>(bit << i);
      }
      t[static_cast<std::size_t>(x)] = out;
    }
    return t;
  }();
  return table;
}

namespace {

constexpr std::uint8_t kRcon[10] = {0x01, 0x02, 0x04, 0x08, 0x10,
                                    0x20, 0x40, 0x80, 0x1b, 0x36};

void sub_bytes(AesBlock& s) {
  for (auto& b : s) b = aes_sbox()[b];
}

// State layout: state[r][c] = block[r + 4c] (FIPS-197 column-major).
void shift_rows(AesBlock& s) {
  AesBlock t = s;
  for (int r = 1; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) {
      s[static_cast<std::size_t>(r + 4 * c)] =
          t[static_cast<std::size_t>(r + 4 * ((c + r) % 4))];
    }
  }
}

void mix_columns(AesBlock& s) {
  for (int c = 0; c < 4; ++c) {
    const std::uint8_t a0 = s[static_cast<std::size_t>(4 * c)];
    const std::uint8_t a1 = s[static_cast<std::size_t>(4 * c + 1)];
    const std::uint8_t a2 = s[static_cast<std::size_t>(4 * c + 2)];
    const std::uint8_t a3 = s[static_cast<std::size_t>(4 * c + 3)];
    s[static_cast<std::size_t>(4 * c)] = static_cast<std::uint8_t>(
        gf_mul(a0, 2) ^ gf_mul(a1, 3) ^ a2 ^ a3);
    s[static_cast<std::size_t>(4 * c + 1)] = static_cast<std::uint8_t>(
        a0 ^ gf_mul(a1, 2) ^ gf_mul(a2, 3) ^ a3);
    s[static_cast<std::size_t>(4 * c + 2)] = static_cast<std::uint8_t>(
        a0 ^ a1 ^ gf_mul(a2, 2) ^ gf_mul(a3, 3));
    s[static_cast<std::size_t>(4 * c + 3)] = static_cast<std::uint8_t>(
        gf_mul(a0, 3) ^ a1 ^ a2 ^ gf_mul(a3, 2));
  }
}

void add_round_key(AesBlock& s, const AesBlock& rk) {
  for (int i = 0; i < 16; ++i) {
    s[static_cast<std::size_t>(i)] ^= rk[static_cast<std::size_t>(i)];
  }
}

}  // namespace

AesBlock aes_next_round_key(const AesBlock& prev, std::uint8_t rcon) {
  AesBlock next{};
  // Words are 4 consecutive bytes; w3 = bytes 12..15.
  std::uint8_t temp[4] = {
      aes_sbox()[prev[13]], aes_sbox()[prev[14]], aes_sbox()[prev[15]],
      aes_sbox()[prev[12]]};  // RotWord then SubWord
  temp[0] ^= rcon;
  for (int i = 0; i < 4; ++i) {
    next[static_cast<std::size_t>(i)] =
        prev[static_cast<std::size_t>(i)] ^ temp[i];
  }
  for (int w = 1; w < 4; ++w) {
    for (int i = 0; i < 4; ++i) {
      next[static_cast<std::size_t>(4 * w + i)] =
          prev[static_cast<std::size_t>(4 * w + i)] ^
          next[static_cast<std::size_t>(4 * (w - 1) + i)];
    }
  }
  return next;
}

std::array<AesBlock, 11> aes_expand_key(const AesBlock& key) {
  std::array<AesBlock, 11> round_keys{};
  round_keys[0] = key;
  for (int r = 1; r <= 10; ++r) {
    round_keys[static_cast<std::size_t>(r)] = aes_next_round_key(
        round_keys[static_cast<std::size_t>(r - 1)],
        kRcon[static_cast<std::size_t>(r - 1)]);
  }
  return round_keys;
}

AesBlock aes_encrypt(const AesBlock& plaintext, const AesBlock& key) {
  const auto round_keys = aes_expand_key(key);
  AesBlock state = plaintext;
  add_round_key(state, round_keys[0]);
  for (int round = 1; round <= 9; ++round) {
    sub_bytes(state);
    shift_rows(state);
    mix_columns(state);
    add_round_key(state, round_keys[static_cast<std::size_t>(round)]);
  }
  sub_bytes(state);
  shift_rows(state);
  add_round_key(state, round_keys[10]);
  return state;
}

AesBlock aes_block_from_hex(const char* hex) {
  if (std::strlen(hex) != 32) {
    throw std::invalid_argument("aes_block_from_hex: need 32 hex digits");
  }
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    throw std::invalid_argument("aes_block_from_hex: bad hex digit");
  };
  AesBlock block{};
  for (int i = 0; i < 16; ++i) {
    block[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(
        (nibble(hex[2 * i]) << 4) | nibble(hex[2 * i + 1]));
  }
  return block;
}

}  // namespace trojanscout::designs
