// MC8051 benchmark: a compact 8051-class microcontroller core covering the
// architectural state and instructions the Trust-Hub MC8051 Trojans
// (T400/T700/T800, DeTrust-hardened) interact with.
//
// One instruction executes per clock cycle. The code memory is external:
// each cycle the environment supplies an opcode byte and an operand byte
// (`code_op`, `code_operand`), which is what lets the model checker choose
// the instruction stream. The UART receive buffer latches `uart_rx` every
// cycle; external RAM reads arrive on `xram_in`.
//
// Architectural registers: acc (8b, the accumulator), sp (8b, reset 0x07),
// ie (8b, interrupt enable), r1 (8b, pointer for MOVX @R1), pc (12b),
// uart_buf (8b), psw_c (1b carry).
//
// Instruction subset (opcode byte):
//   0x74  MOV  A,#data      acc := operand
//   0xE3  MOVX A,@R1        acc := xram_in
//   0xE0  MOVX A,@DPTR      acc := xram_in
//   0xF3  MOVX @R1,A        external write strobe (xram_we output)
//   0x24  ADD  A,#data      acc := acc + operand, carry to psw_c
//   0x12  LCALL addr        sp := sp + 1
//   0x22  RET               sp := sp - 1
//   0x75  MOV  SP,#data     sp := operand
//   0xA8  MOV  IE,#data     ie := operand
//   0x79  MOV  R1,#data     r1 := operand
//   else  NOP
//
// Trojans (trigger/payload per Table 1, structures per DeTrust):
//   kT400 — trigger: the 4-instruction sequence MOV A,#d; MOVX A,@R1;
//           MOVX A,@DPTR; MOVX @R1,A arriving over 4 consecutive cycles
//           (multi-cycle DeTrust trigger); payload clears the interrupt
//           enable register ("prevents interrupt").
//   kT700 — trigger: MOV A,#data with data == 0xCA (single-cycle trigger);
//           payload forces the value written to the accumulator to 0x00.
//   kT800 — trigger: UART receive buffer == 0xFF; payload decrements the
//           stack pointer by two.
#pragma once

#include "designs/design.hpp"

namespace trojanscout::designs {

enum class Mc8051Trojan { kNone, kT400, kT700, kT800 };

struct Mc8051Options {
  Mc8051Trojan trojan = Mc8051Trojan::kNone;
  /// See RiscOptions::payload_enabled.
  bool payload_enabled = true;
  /// When false, kT700 is built the *naive* way (a single-cycle, wide
  /// combinational comparator against a secret pattern) instead of the
  /// DeTrust-hardened way. Used by the baseline-validation bench to show
  /// FANCI and VeriTrust do catch naive Trojans.
  bool detrust_hardened = true;
};

Design build_mc8051(const Mc8051Options& options = {});

const char* mc8051_trojan_target(Mc8051Trojan trojan);

}  // namespace trojanscout::designs
