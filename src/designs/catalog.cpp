#include "designs/catalog.hpp"

#include <stdexcept>

#include "designs/aes.hpp"
#include "designs/mc8051.hpp"
#include "designs/risc.hpp"
#include "designs/router.hpp"

namespace trojanscout::designs {

std::vector<BenchmarkInfo> trojan_benchmarks(const CatalogOptions& options) {
  std::vector<BenchmarkInfo> list;
  const unsigned n = options.risc_trigger_count;

  auto mc = [](Mc8051Trojan trojan) {
    return [trojan](bool payload) {
      Mc8051Options o;
      o.trojan = trojan;
      o.payload_enabled = payload;
      return build_mc8051(o);
    };
  };
  auto risc = [n](RiscTrojan trojan) {
    return [trojan, n](bool payload) {
      RiscOptions o;
      o.trojan = trojan;
      o.trigger_count = n;
      o.payload_enabled = payload;
      return build_risc(o);
    };
  };
  auto aes = [](AesTrojan trojan) {
    return [trojan](bool payload) {
      AesOptions o;
      o.trojan = trojan;
      o.payload_enabled = payload;
      return build_aes(o);
    };
  };

  list.push_back({"MC8051-T400", "mc8051",
                  "Instruction sequence MOV A,#d; MOVX A,@R1; MOVX A,@DPTR; "
                  "MOVX @R1,A",
                  "Prevents interrupt", "ie", true, mc(Mc8051Trojan::kT400)});
  list.push_back({"MC8051-T700", "mc8051", "MOV A,#data (data = 0xCA)",
                  "Modifies the data to 0x00", "acc", true,
                  mc(Mc8051Trojan::kT700)});
  list.push_back({"MC8051-T800", "mc8051", "Input data of UART = 0xFF",
                  "Decrements stack pointer by two", "sp", true,
                  mc(Mc8051Trojan::kT800)});
  list.push_back({"RISC-T100", "risc",
                  "After " + std::to_string(n) +
                      " instructions whose 4 MSBs are in 0x4-0xB",
                  "Increments program counter by two", "program_counter",
                  true, risc(RiscTrojan::kT100)});
  list.push_back({"RISC-T300", "risc",
                  "After " + std::to_string(n) +
                      " instructions whose 4 MSBs are in 0x4-0xB",
                  "Modifies the data written to memory", "eeprom_data", true,
                  risc(RiscTrojan::kT300)});
  list.push_back({"RISC-T400", "risc",
                  "After " + std::to_string(n) +
                      " instructions whose 4 MSBs are in 0x4-0xB",
                  "Modifies the data address to 0x00", "eeprom_address", true,
                  risc(RiscTrojan::kT400)});
  list.push_back({"AES-T700", "aes",
                  std::string("Plaintext = 128'h") + kAesT700Plaintext,
                  "Modifies LSB 8-bits of key register", "key_reg", true,
                  aes(AesTrojan::kT700)});
  list.push_back({"AES-T800", "aes", "Sequence of 4 plaintexts (Table 1)",
                  "Modifies key register", "key_reg", true,
                  aes(AesTrojan::kT800)});
  list.push_back({"AES-T1200", "aes", "After 2^128 clock cycles",
                  "Modifies key register", "key_reg", false,
                  aes(AesTrojan::kT1200)});
  return list;
}

Design build_clean(const std::string& family) {
  if (family == "mc8051") return build_mc8051({});
  if (family == "risc") return build_risc({});
  if (family == "aes") return build_aes({});
  if (family == "router") return build_router({});
  throw std::invalid_argument("build_clean: unknown family " + family);
}

}  // namespace trojanscout::designs
