#include "designs/attacks.hpp"

#include <stdexcept>

#include "netlist/wordops.hpp"

namespace trojanscout::designs {

using netlist::Netlist;
using netlist::SignalId;
using netlist::Word;

std::string pseudo_register_name(const std::string& reg) {
  return "pseudo_" + reg;
}

std::string bypass_register_name(const std::string& reg) {
  return "bypass_" + reg;
}

namespace {

/// Marks R's next-state cone (the gates computing R's DFF data inputs, up
/// to state/input boundaries) plus R's DFFs themselves: those must keep
/// reading the real register so its own update dynamics stay intact.
std::vector<bool> update_cone_mask(const Netlist& nl,
                                   const netlist::Register& reg) {
  Word roots;
  for (const SignalId dff : reg.dffs) {
    const SignalId d = nl.gate(dff).fanin[0];
    if (d == netlist::kNullSignal) {
      throw std::runtime_error("attack transformer: register " + reg.name +
                               " has unconnected DFF input");
    }
    roots.push_back(d);
  }
  std::vector<bool> mask(nl.size(), false);
  for (const SignalId id : nl.fanin_cone(roots)) mask[id] = true;
  for (const SignalId dff : reg.dffs) mask[dff] = true;
  return mask;
}

void require_trigger(const Design& design, const char* what) {
  if (design.trojan_trigger == netlist::kNullSignal) {
    throw std::invalid_argument(
        std::string(what) +
        ": design has no exposed trigger (build with payload_enabled=false "
        "and a Trojan variant)");
  }
}

}  // namespace

void plant_pseudo_critical(Design& design, const std::string& reg_name,
                           bool corrupt) {
  require_trigger(design, "plant_pseudo_critical");
  Netlist& nl = design.nl;
  const netlist::Register reg = nl.find_register(reg_name);  // copy: surgery below
  const SignalId trigger = design.trojan_trigger;

  // Snapshot: only pre-existing gates are rerouted.
  const SignalId limit = static_cast<SignalId>(nl.size());
  std::vector<bool> keep = update_cone_mask(nl, reg);

  // The pseudo-critical register: P := R each cycle — except when the
  // Trojan fires, when it takes the complement of R (corrupted data).
  Word pseudo(reg.dffs.size());
  for (std::size_t i = 0; i < reg.dffs.size(); ++i) {
    pseudo[i] = nl.add_dff(nl.gate(reg.dffs[i]).init);
    nl.set_name(pseudo[i], pseudo_register_name(reg_name) + "[" +
                               std::to_string(i) + "]");
  }
  nl.add_register(pseudo_register_name(reg_name), pseudo);
  for (std::size_t i = 0; i < reg.dffs.size(); ++i) {
    const SignalId corrupted = nl.b_not(reg.dffs[i]);
    nl.connect_dff_input(
        pseudo[i], corrupt ? nl.b_mux(trigger, corrupted, reg.dffs[i])
                           : reg.dffs[i]);
  }

  // Reroute R's fanout (outputs and consuming logic, not R's own update
  // cone and not the just-built P input muxes) to read P.
  for (std::size_t i = 0; i < reg.dffs.size(); ++i) {
    nl.redirect_readers(reg.dffs[i], pseudo[i], limit, keep);
  }
  design.name += "+pseudo(" + reg_name + ")";
}

void plant_bypass(Design& design, const std::string& reg_name) {
  require_trigger(design, "plant_bypass");
  Netlist& nl = design.nl;
  const netlist::Register reg = nl.find_register(reg_name);  // copy
  const SignalId trigger = design.trojan_trigger;

  const SignalId limit = static_cast<SignalId>(nl.size());
  std::vector<bool> keep = update_cone_mask(nl, reg);

  // The bypass register shadows ~R until the trigger fires, then freezes:
  // from that point its value is independent of R.
  Word bypass(reg.dffs.size());
  for (std::size_t i = 0; i < reg.dffs.size(); ++i) {
    bypass[i] = nl.add_dff(!nl.gate(reg.dffs[i]).init);
    nl.set_name(bypass[i], bypass_register_name(reg_name) + "[" +
                               std::to_string(i) + "]");
  }
  nl.add_register(bypass_register_name(reg_name), bypass);
  for (std::size_t i = 0; i < reg.dffs.size(); ++i) {
    nl.connect_dff_input(
        bypass[i], nl.b_mux(trigger, bypass[i], nl.b_not(reg.dffs[i])));
  }

  // Fanout mux: triggered -> bypass value, else the real register.
  for (std::size_t i = 0; i < reg.dffs.size(); ++i) {
    const SignalId muxed = nl.b_mux(trigger, bypass[i], reg.dffs[i]);
    nl.redirect_readers(reg.dffs[i], muxed, limit, keep);
  }
  design.name += "+bypass(" + reg_name + ")";
}

}  // namespace trojanscout::designs
