// RISC processor benchmark: a 4-cycle non-pipelined core modeled on the
// PIC16F84A, the processor behind the Trust-Hub "RISC" benchmarks the paper
// evaluates (Section 3.4, Table 2, Figure 1).
//
// Architectural state (all registers the paper's Table 2 lists):
//   program_counter (13b), stack_pointer (3b), stack[0..7] (8 x 13b),
//   interrupt_enable (1b), eeprom_data (8b), eeprom_address (8b),
//   instruction_register (14b), sleep_flag (1b), pc_latch (2b),
//   w_register (8b), ram[0..15] (16 x 8b), cycle (2b), stall (1b).
//
// The instruction stream arrives on the `prog_data` input port (external
// program memory, addressed by the program counter — the PC is visible on
// the `pc_out` output as the fetch address). This models the memory as an
// unconstrained environment, standard practice when model-checking a CPU
// core and exactly what lets BMC choose the instruction sequence that
// triggers a Trojan.
//
// Instruction set (14-bit, PIC-flavored encodings):
//   opcode[13:11] = 100          CALL  addr11
//   opcode[13:11] = 101          GOTO  addr11
//   opcode[13:8]  = 110000       MOVLW k8      (W := k)
//   opcode[13:8]  = 111110       ADDLW k8      (W := W + k, sets overflow)
//   opcode        = 0x008        RETURN
//   opcode        = 0x009        RETFIE        (clears interrupt flag)
//   opcode        = 0x063        SLEEP
//   opcode[13:8]  = 000001, f4   MOVWF f       (ram[f] := W)
//   opcode[13:8]  = 001000, f4   MOVF  f       (W := ram[f])
//   opcode        = 0x040        EERD          (EEPROM read strobe)
//   anything else                NOP
//
// Trojans (trigger per Figure 1 / Table 1: a 7-bit counter of instructions
// whose bits [13:10] lie in 0x4..0xB; fires at 100):
//   kT100 — increments the program counter by 2 when triggered.
//   kT300 — corrupts eeprom_data while the EEPROM read strobe is disabled.
//   kT400 — forces eeprom_address to 0x00 during a stall.
//   kFig1StackPointer — decrements the stack pointer by 2 (Figure 1).
#pragma once

#include "designs/design.hpp"

namespace trojanscout::designs {

enum class RiscTrojan {
  kNone,
  kT100,
  kT300,
  kT400,
  kFig1StackPointer,
};

struct RiscOptions {
  RiscTrojan trojan = RiscTrojan::kNone;
  /// Number of matching instructions required to trigger (paper: 100).
  /// Exposed so tests and the trigger-length ablation can use smaller counts.
  unsigned trigger_count = 100;
  /// When false, the trigger FSM is built and exposed via
  /// Design::trojan_trigger but no payload is attached — the Section 4
  /// attack transformers (pseudo-critical / bypass) supply their own.
  bool payload_enabled = true;
};

/// Builds the RISC core, its Table 2 valid-ways spec, and obligations.
Design build_risc(const RiscOptions& options = {});

/// Name of the critical register attacked by each Trojan variant.
const char* risc_trojan_target(RiscTrojan trojan);

}  // namespace trojanscout::designs
