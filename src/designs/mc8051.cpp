#include "designs/mc8051.hpp"

#include "designs/regspec_builder.hpp"
#include "netlist/wordops.hpp"

namespace trojanscout::designs {

using netlist::Netlist;
using netlist::SignalId;
using netlist::Word;
using netlist::w_const;
using netlist::w_dec;
using netlist::w_eq_const;
using netlist::w_inc;
using netlist::w_make_register;
using netlist::w_mux;
using netlist::w_resize;
using netlist::w_slice;

const char* mc8051_trojan_target(Mc8051Trojan trojan) {
  switch (trojan) {
    case Mc8051Trojan::kNone:
      return "";
    case Mc8051Trojan::kT400:
      return "ie";
    case Mc8051Trojan::kT700:
      return "acc";
    case Mc8051Trojan::kT800:
      return "sp";
  }
  return "";
}

// The core uses the 8051's two-cycle instruction timing: a fetch cycle
// latches the opcode byte; the following execute cycle consumes the operand
// byte. Besides realism, this is what lets the DeTrust-hardened Trojans
// register each 8-bit match separately — no Trojan gate ever sees a
// combinational comparison wider than one byte, which is exactly how
// DeTrust defeats FANCI's control-value analysis.
Design build_mc8051(const Mc8051Options& options) {
  Design design;
  design.name = "mc8051";
  Netlist& nl = design.nl;

  // ---- environment ---------------------------------------------------------
  const SignalId reset = nl.add_input_port("reset", 1)[0];
  const Word code_op = nl.add_input_port("code_op", 8);
  const Word code_operand = nl.add_input_port("code_operand", 8);
  const Word uart_rx = nl.add_input_port("uart_rx", 8);
  const Word xram_in = nl.add_input_port("xram_in", 8);
  const SignalId int_req = nl.add_input_port("int_req", 1)[0];

  // ---- fetch / execute phases -----------------------------------------------
  const Word phase = w_make_register(nl, "phase", 1, 0);
  const SignalId fetch = nl.b_and(nl.b_not(phase[0]), nl.b_not(reset));
  const SignalId exec = nl.b_and(phase[0], nl.b_not(reset));
  netlist::w_connect(
      nl, phase, w_mux(nl, reset, w_const(nl, 0, 1), netlist::w_not(nl, phase)));

  const Word opcode = w_make_register(nl, "opcode", 8, 0);
  netlist::w_connect(nl, opcode, w_mux(nl, fetch, code_op, opcode));

  // ---- decode (of the latched opcode, during execute) ------------------------
  const SignalId is_mov_a = w_eq_const(nl, opcode, 0x74);
  const SignalId is_movx_r1 = w_eq_const(nl, opcode, 0xE3);
  const SignalId is_movx_dptr = w_eq_const(nl, opcode, 0xE0);
  const SignalId is_movx_wr = w_eq_const(nl, opcode, 0xF3);
  const SignalId is_add = w_eq_const(nl, opcode, 0x24);
  const SignalId is_lcall = w_eq_const(nl, opcode, 0x12);
  const SignalId is_ret = w_eq_const(nl, opcode, 0x22);
  const SignalId is_mov_sp = w_eq_const(nl, opcode, 0x75);
  const SignalId is_mov_ie = w_eq_const(nl, opcode, 0xA8);
  const SignalId is_mov_r1 = w_eq_const(nl, opcode, 0x79);
  const SignalId is_movx_rd = nl.b_or(is_movx_r1, is_movx_dptr);

  // ---- UART receive buffer ------------------------------------------------------
  const Word uart_buf = w_make_register(nl, "uart_buf", 8, 0);
  netlist::w_connect(nl, uart_buf,
                     w_mux(nl, reset, w_const(nl, 0, 8), uart_rx));

  // ---- Trojan trigger machinery ----------------------------------------------
  SignalId triggered = nl.const0();
  const SignalId trojan_begin = static_cast<SignalId>(nl.size());
  if (options.trojan == Mc8051Trojan::kT400) {
    // DeTrust multi-cycle trigger: MOV A,#d; MOVX A,@R1; MOVX A,@DPTR;
    // MOVX @R1,A on four consecutive instructions. The FSM advances one
    // stage per *executed* instruction; every gate sees at most one byte-
    // wide comparison plus registered state.
    const Word state = w_make_register(nl, "trojan_state", 2, 0);
    const SignalId at0 = w_eq_const(nl, state, 0);
    const SignalId at1 = w_eq_const(nl, state, 1);
    const SignalId at2 = w_eq_const(nl, state, 2);
    const SignalId at3 = w_eq_const(nl, state, 3);
    const SignalId fire = nl.b_and(exec, nl.b_and(at3, is_movx_wr));
    const SignalId trig_dff = nl.add_dff(false);
    nl.set_name(trig_dff, "trojan_triggered");
    triggered = trig_dff;  // registered trigger (see RISC note)
    nl.connect_dff_input(trig_dff, nl.b_or(trig_dff, fire));

    Word advanced = w_const(nl, 0, 2);
    advanced = w_mux(nl, nl.b_and(at0, is_mov_a), w_const(nl, 1, 2), advanced);
    advanced =
        w_mux(nl, nl.b_and(at1, is_movx_r1), w_const(nl, 2, 2), advanced);
    advanced =
        w_mux(nl, nl.b_and(at2, is_movx_dptr), w_const(nl, 3, 2), advanced);
    advanced =
        w_mux(nl, nl.b_and(at3, is_movx_wr), w_const(nl, 3, 2), advanced);
    Word next = w_mux(nl, exec, advanced, state);
    next = w_mux(nl, reset, w_const(nl, 0, 2), next);
    netlist::w_connect(nl, state, next);
  } else if (options.trojan == Mc8051Trojan::kT700) {
    if (options.detrust_hardened) {
      // Two-stage trigger: the opcode match is *registered* during fetch,
      // the operand match happens during execute — no gate combines both
      // bytes combinationally (DeTrust hardening).
      const SignalId op_match = nl.add_dff(false);
      nl.set_name(op_match, "trojan_op_match");
      nl.connect_dff_input(
          op_match, nl.b_and(fetch, w_eq_const(nl, code_op, 0x74)));
      triggered = nl.b_and(nl.b_and(op_match, exec),
                           w_eq_const(nl, code_operand, 0xCA));
    } else {
      // Naive variant: one wide combinational comparator against a secret
      // 24-bit pattern that functional stimuli essentially never produce.
      // FANCI flags the comparator (vanishing control values) and VeriTrust
      // flags its readers (a chain of dormant logic).
      netlist::Word pattern = opcode;
      pattern.insert(pattern.end(), code_operand.begin(), code_operand.end());
      pattern.insert(pattern.end(), uart_buf.begin(), uart_buf.end());
      triggered =
          nl.b_and(exec, w_eq_const(nl, pattern, 0x5ACA74));
    }
    nl.set_name(triggered, "trojan_triggered");
  } else if (options.trojan == Mc8051Trojan::kT800) {
    // Combinational trigger on the latched UART byte.
    triggered = w_eq_const(nl, uart_buf, 0xFF);
    nl.set_name(triggered, "trojan_triggered");
  }
  if (options.trojan != Mc8051Trojan::kNone) {
    design.trojan_trigger = triggered;
    design.trojan_gate_ranges.emplace_back(trojan_begin,
                                           static_cast<SignalId>(nl.size()));
  }
  const SignalId payload_hit =
      options.payload_enabled ? triggered : nl.const0();

  auto mark_trojan_gates = [&](auto&& build) {
    const SignalId begin = static_cast<SignalId>(nl.size());
    build();
    if (options.trojan != Mc8051Trojan::kNone) {
      design.trojan_gate_ranges.emplace_back(begin,
                                             static_cast<SignalId>(nl.size()));
    }
  };

  // ---- accumulator ---------------------------------------------------------------
  RegSpecBuilder acc(nl, "acc", 8, 0);
  const Word& acc_reg = acc.reg();
  const Word add_sum = netlist::w_add(nl, w_resize(nl, acc_reg, 9),
                                      w_resize(nl, code_operand, 9));
  acc.way("Reset=1", "Any", "0x00", reset, w_const(nl, 0, 8))
      .way("MOV A,#data", "exec", "operand", nl.b_and(exec, is_mov_a),
           code_operand)
      .way("MOVX A,@R1 / @DPTR", "exec", "XRAM input",
           nl.b_and(exec, is_movx_rd), xram_in)
      .way("ADD A,#data", "exec", "A + operand", nl.b_and(exec, is_add),
           w_slice(add_sum, 0, 8));
  acc.obligation("acc drives port0_out continuously", nl.const1(), acc_reg, 2);
  {
    Word next = acc.golden_next();
    if (options.trojan == Mc8051Trojan::kT700) {
      mark_trojan_gates([&] {
        next = w_mux(nl, payload_hit, w_const(nl, 0, 8), next);
      });
    }
    acc.finish_with(design.spec, next);
  }

  // ---- carry flag ------------------------------------------------------------------
  const Word psw_c = w_make_register(nl, "psw_c", 1, 0);
  Word carry_next = psw_c;
  carry_next = w_mux(nl, nl.b_and(exec, is_add), Word{add_sum[8]}, carry_next);
  carry_next = w_mux(nl, reset, w_const(nl, 0, 1), carry_next);
  netlist::w_connect(nl, psw_c, carry_next);

  // ---- stack pointer --------------------------------------------------------------
  RegSpecBuilder sp(nl, "sp", 8, 0x07);
  const Word& sp_reg = sp.reg();
  sp.way("Reset=1", "Any", "0x07", reset, w_const(nl, 0x07, 8))
      .way("LCALL", "exec", "Increment by 1", nl.b_and(exec, is_lcall),
           w_inc(nl, sp_reg))
      .way("RET", "exec", "Decrement by 1", nl.b_and(exec, is_ret),
           w_dec(nl, sp_reg))
      .way("MOV SP,#data", "exec", "operand", nl.b_and(exec, is_mov_sp),
           code_operand);
  sp.obligation("sp drives sp_out continuously", nl.const1(), sp_reg, 2);
  {
    Word next = sp.golden_next();
    if (options.trojan == Mc8051Trojan::kT800) {
      mark_trojan_gates([&] {
        next = w_mux(nl, payload_hit, w_dec(nl, w_dec(nl, sp_reg)), next);
      });
    }
    sp.finish_with(design.spec, next);
  }

  // ---- interrupt enable --------------------------------------------------------------
  RegSpecBuilder ie(nl, "ie", 8, 0);
  const Word& ie_reg = ie.reg();
  ie.way("Reset=1", "Any", "0x00", reset, w_const(nl, 0, 8))
      .way("MOV IE,#data", "exec", "operand", nl.b_and(exec, is_mov_ie),
           code_operand);
  // The ack collapses ie to one bit (ie.7 & ie.0); complementing ie flips
  // the ack only when ie.7 == ie.0, so the obligation condition carries
  // that discriminator (see DESIGN.md on Eq. 4 obligations).
  ie.obligation("ie gates the interrupt acknowledge",
                nl.b_and(int_req, nl.b_xnor(ie_reg[7], ie_reg[0])),
                netlist::Word{}, 2);
  {
    Word next = ie.golden_next();
    if (options.trojan == Mc8051Trojan::kT400) {
      mark_trojan_gates([&] {
        next = w_mux(nl, payload_hit, w_const(nl, 0, 8), next);
      });
    }
    ie.finish_with(design.spec, next);
  }
  const SignalId int_ack =
      nl.b_and(int_req, nl.b_and(ie_reg[7], ie_reg[0]));

  // ---- pointer register & program counter -------------------------------------------
  const Word r1 = w_make_register(nl, "r1", 8, 0);
  Word r1_next = w_mux(nl, nl.b_and(exec, is_mov_r1), code_operand, r1);
  r1_next = w_mux(nl, reset, w_const(nl, 0, 8), r1_next);
  netlist::w_connect(nl, r1, r1_next);

  const Word pc = w_make_register(nl, "pc", 12, 0);
  Word pc_next = w_mux(nl, exec, w_inc(nl, pc), pc);
  pc_next = w_mux(nl, nl.b_and(exec, is_lcall),
                  w_resize(nl, code_operand, 12), pc_next);
  pc_next = w_mux(nl, reset, w_const(nl, 0, 12), pc_next);
  netlist::w_connect(nl, pc, pc_next);

  // ---- outputs -----------------------------------------------------------------------
  nl.add_output_port("port0_out", acc_reg);
  nl.add_output_port("sp_out", sp_reg);
  nl.add_output_port("int_ack", Word{int_ack});
  nl.add_output_port("xram_addr", r1);
  nl.add_output_port("xram_wdata", acc_reg);
  nl.add_output_port("xram_we", Word{nl.b_and(exec, is_movx_wr)});
  nl.add_output_port("pc_out", pc);

  design.critical_registers = {"acc", "sp", "ie"};
  nl.validate();
  return design;
}

}  // namespace trojanscout::designs
