#include "pdr/pdr.hpp"

#include <algorithm>
#include <cstddef>
#include <set>
#include <utility>

#include "cnf/unroller.hpp"
#include "netlist/coi.hpp"
#include "telemetry/progress.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/span.hpp"
#include "util/bitvec.hpp"
#include "util/logging.hpp"
#include "util/resource.hpp"
#include "util/stopwatch.hpp"

namespace trojanscout::pdr {

namespace {

/// A cube over state (DFF) variables: (signal, value) pairs sorted by
/// signal id. Cubes name *sets of states*; the engine blocks them by adding
/// their negation (a clause) to frames.
using Cube = std::vector<std::pair<netlist::SignalId, bool>>;

/// One node of the counterexample-in-progress: a state the engine must
/// prove unreachable, the input vector that steps it to `succ`'s state (for
/// the root CTI: the input that makes `bad` fire in this state), and the
/// successor link toward the bad state. Surviving chains become witnesses.
struct ObNode {
  Cube state;
  util::BitVec inputs;
  std::ptrdiff_t succ = -1;
};

/// Proof obligations ordered by (frame, insertion sequence): lowest frame
/// first, FIFO within a frame — a fixed order that keeps runs deterministic.
struct ObKey {
  std::size_t frame = 0;
  std::uint64_t seq = 0;
  std::size_t node = 0;
  bool operator<(const ObKey& other) const {
    if (frame != other.frame) return frame < other.frame;
    return seq < other.seq;
  }
};

class Ic3 {
 public:
  Ic3(const netlist::Netlist& nl, netlist::SignalId bad,
      const PdrOptions& options)
      : nl_(nl),
        bad_(bad),
        options_(options),
        solver_(options.solver),
        unroller_(nl, solver_, {bad}, /*free_initial_state=*/true),
        in_cone_(netlist::sequential_coi(nl, {bad})) {
    // Two frames give the whole query vocabulary: frame-0 DFF literals are
    // the (free) current-state variables S, frame-1 DFF literals are the
    // next-state functions over S and the frame-0 inputs, and the bad
    // signal at frame 0 asks "can this state raise bad under some input?".
    unroller_.add_frame();
    unroller_.add_frame();
    for (const netlist::SignalId dff : nl.dffs()) {
      if (in_cone_[dff]) state_vars_.push_back(dff);
    }
    for (const netlist::SignalId v : state_vars_) {
      init_cube_.emplace_back(v, nl.gate(v).init);
    }
    bad0_ = unroller_.lit_of(bad, 0);
    acts_.push_back(sat::undef_lit());  // level 0 is Init; no activation var
    frames_.emplace_back();
  }

  PdrResult run();

 private:
  // -- solver plumbing ------------------------------------------------------

  sat::SolveResult solve(const std::vector<sat::Lit>& assumptions) {
    if (options_.cancel != nullptr &&
        options_.cancel->load(std::memory_order_acquire)) {
      cancelled_ = true;
      return sat::SolveResult::kUnknown;
    }
    const double remaining =
        options_.time_limit_seconds - timer_.elapsed_seconds();
    if (remaining <= 0) return sat::SolveResult::kUnknown;
    sat::Budget budget;
    budget.time_limit_seconds = remaining;
    budget.cancel = options_.cancel;
    budget.progress = options_.progress;
    const sat::SolveResult r = solver_.solve(assumptions, budget);
    if (r == sat::SolveResult::kUnknown && sat::budget_cancelled(budget)) {
      cancelled_ = true;
    }
    return r;
  }

  /// Literal asserting "DFF `v` has value `b`" at frame 0 (current state)
  /// or frame 1 (next state).
  sat::Lit state_lit(netlist::SignalId v, bool b, std::size_t frame) const {
    const sat::Lit l = unroller_.lit_of(v, frame);
    return b ? l : ~l;
  }

  /// Assumptions activating frame `i`: the reset-state literals for F_0,
  /// the activation literals of every level >= i otherwise (frames are
  /// stored monotonically: a clause at level j belongs to F_1..F_j).
  std::vector<sat::Lit> frame_assumptions(std::size_t i) const {
    std::vector<sat::Lit> assumptions;
    if (i == 0) {
      for (const auto& [v, b] : init_cube_) {
        assumptions.push_back(state_lit(v, b, 0));
      }
      return assumptions;
    }
    for (std::size_t j = i; j < acts_.size(); ++j) {
      assumptions.push_back(acts_[j]);
    }
    return assumptions;
  }

  void open_frame() {
    acts_.push_back(sat::Lit(solver_.new_var(), false));
    frames_.emplace_back();
  }

  Cube model_state() const {
    Cube cube;
    cube.reserve(state_vars_.size());
    for (const netlist::SignalId v : state_vars_) {
      cube.emplace_back(v, solver_.model_value(unroller_.lit_of(v, 0)));
    }
    return cube;
  }

  util::BitVec model_inputs() const {
    const auto& inputs = nl_.inputs();
    util::BitVec bits(inputs.size());
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      // Inputs outside the monitor cone are irrelevant: fix them to 0, the
      // same convention Unroller::extract_witness uses.
      if (in_cone_[inputs[i]]) {
        bits.set(i, solver_.model_value(unroller_.lit_of(inputs[i], 0)));
      }
    }
    return bits;
  }

  // -- IC3 queries ----------------------------------------------------------

  /// Relative-induction query for `cube` at level `j`:
  /// SAT?(F_{j-1} ∧ ¬cube ∧ T ∧ cube'). UNSAT means no F_{j-1} state
  /// outside the cube can step into it, so its negation may be blocked at
  /// level j. On SAT the predecessor model is parked in pending_*_. The
  /// ¬cube conjunct rides a throwaway activation variable retired with a
  /// unit clause right after the query.
  sat::SolveResult query_relative(const Cube& cube, std::size_t j) {
    const sat::Var t = solver_.new_var();
    sat::Clause guard;
    guard.reserve(cube.size() + 1);
    guard.push_back(sat::Lit(t, true));
    for (const auto& [v, b] : cube) guard.push_back(~state_lit(v, b, 0));
    solver_.add_clause(std::move(guard));

    std::vector<sat::Lit> assumptions = frame_assumptions(j - 1);
    assumptions.push_back(sat::Lit(t, false));
    for (const auto& [v, b] : cube) {
      assumptions.push_back(state_lit(v, b, 1));
    }
    const sat::SolveResult r = solve(assumptions);
    if (r == sat::SolveResult::kSat) {
      pending_state_ = model_state();
      pending_inputs_ = model_inputs();
    }
    solver_.add_clause(sat::Lit(t, true));
    return r;
  }

  /// True when some literal of the cube disagrees with the reset state —
  /// the initiation requirement for blocking it (Init must satisfy ¬cube).
  bool excludes_init(const Cube& cube) const {
    for (const auto& [v, b] : cube) {
      if (b != nl_.gate(v).init) return true;
    }
    return false;
  }

  /// Inductive generalization: drop literals in ascending signal-id order
  /// while the shrunk cube stays relatively inductive and init-excluded.
  /// Fewer literals = a stronger blocking clause covering more states.
  void generalize(Cube& cube, std::size_t j) {
    std::size_t i = 0;
    while (i < cube.size() && cube.size() > 1) {
      Cube candidate = cube;
      candidate.erase(candidate.begin() +
                      static_cast<std::ptrdiff_t>(i));
      if (!excludes_init(candidate)) {
        ++i;
        continue;
      }
      const sat::SolveResult r = query_relative(candidate, j);
      if (r == sat::SolveResult::kUnsat) {
        cube = std::move(candidate);
      } else if (r == sat::SolveResult::kSat) {
        ++i;
      } else {
        return;  // budget ran out: the current cube is already sound
      }
    }
  }

  /// Stores ¬cube at level j (holds in F_1..F_j) unless already present.
  void add_blocked(const Cube& cube, std::size_t j) {
    auto& level = frames_[j];
    if (std::find(level.begin(), level.end(), cube) != level.end()) return;
    level.push_back(cube);
    sat::Clause clause;
    clause.reserve(cube.size() + 1);
    clause.push_back(~acts_[j]);
    for (const auto& [v, b] : cube) clause.push_back(~state_lit(v, b, 0));
    solver_.add_clause(std::move(clause));
  }

  void enqueue(std::size_t frame, std::size_t node) {
    queue_.insert(ObKey{frame, next_seq_++, node});
  }

  sim::Witness build_witness(std::size_t node) const {
    sim::Witness witness;
    for (std::ptrdiff_t cur = static_cast<std::ptrdiff_t>(node); cur >= 0;
         cur = nodes_[static_cast<std::size_t>(cur)].succ) {
      sim::InputFrame frame;
      frame.bits = nodes_[static_cast<std::size_t>(cur)].inputs;
      witness.frames.push_back(std::move(frame));
    }
    witness.violation_frame = witness.frames.size() - 1;
    return witness;
  }

  // -- main phases ----------------------------------------------------------

  /// Pulls counterexamples-to-induction from the frontier F_k and blocks
  /// (or traces) them until F_k ∧ Bad goes UNSAT. Returns false with
  /// result.status set when the run ends here (violation / budget).
  bool block_all_ctis(std::size_t k, PdrResult& result) {
    while (true) {
      std::vector<sat::Lit> assumptions = frame_assumptions(k);
      assumptions.push_back(bad0_);
      const sat::SolveResult r = solve(assumptions);
      if (r == sat::SolveResult::kUnknown) {
        result.status = PdrStatus::kResourceOut;
        return false;
      }
      if (r == sat::SolveResult::kUnsat) return true;
      ++counters_.ctis;
      TS_COUNTER_ADD("pdr.ctis", 1);
      nodes_.push_back(ObNode{model_state(), model_inputs(), -1});
      enqueue(k, nodes_.size() - 1);
      if (!discharge_obligations(k, result)) return false;
    }
  }

  bool discharge_obligations(std::size_t k, PdrResult& result) {
    while (!queue_.empty()) {
      const ObKey ob = *queue_.begin();
      queue_.erase(queue_.begin());
      ++counters_.obligations;
      // Copy: nodes_ may reallocate when a predecessor is appended.
      const Cube state = nodes_[ob.node].state;
      if (ob.frame == 0 || state == init_cube_) {
        // The obligation chain starts in the reset state: a real trace.
        result.status = PdrStatus::kViolated;
        result.witness = build_witness(ob.node);
        return false;
      }
      const sat::SolveResult r = query_relative(state, ob.frame);
      if (r == sat::SolveResult::kUnknown) {
        result.status = PdrStatus::kResourceOut;
        return false;
      }
      if (r == sat::SolveResult::kUnsat) {
        Cube cube = state;
        if (options_.generalize) generalize(cube, ob.frame);
        add_blocked(cube, ob.frame);
        // Reschedule deeper: the same state must stay unreachable at every
        // later frame, and finding that out now speeds convergence.
        if (ob.frame < k) enqueue(ob.frame + 1, ob.node);
      } else {
        nodes_.push_back(ObNode{std::move(pending_state_),
                                std::move(pending_inputs_),
                                static_cast<std::ptrdiff_t>(ob.node)});
        enqueue(ob.frame - 1, nodes_.size() - 1);
        enqueue(ob.frame, ob.node);
      }
    }
    return true;
  }

  /// Pushes clauses forward: a clause still inductive one frame later
  /// migrates there. Returns false on budget exhaustion. Sets
  /// `fixpoint_level` to i+1 when some level i ends up empty — then
  /// F_i = F_{i+1} and the clauses at levels > i are an inductive invariant.
  bool propagate(std::size_t k, PdrResult& result,
                 std::size_t& fixpoint_level) {
    for (std::size_t i = 1; i <= k; ++i) {
      std::vector<Cube> kept;
      for (std::size_t c = 0; c < frames_[i].size(); ++c) {
        const Cube cube = frames_[i][c];
        std::vector<sat::Lit> assumptions = frame_assumptions(i);
        for (const auto& [v, b] : cube) {
          assumptions.push_back(state_lit(v, b, 1));
        }
        const sat::SolveResult r = solve(assumptions);
        if (r == sat::SolveResult::kUnknown) {
          for (std::size_t rest = c; rest < frames_[i].size(); ++rest) {
            kept.push_back(frames_[i][rest]);
          }
          frames_[i] = std::move(kept);
          result.status = PdrStatus::kResourceOut;
          return false;
        }
        if (r == sat::SolveResult::kUnsat) {
          add_blocked(cube, i + 1);
          ++counters_.pushed_clauses;
          TS_COUNTER_ADD("pdr.pushed_clauses", 1);
        } else {
          kept.push_back(cube);
        }
      }
      frames_[i] = std::move(kept);
    }
    for (std::size_t i = 1; i <= k; ++i) {
      if (frames_[i].empty()) {
        fixpoint_level = i + 1;
        return true;
      }
    }
    return true;
  }

  Invariant extract_invariant(std::size_t level) const {
    Invariant invariant;
    for (std::size_t i = level; i < frames_.size(); ++i) {
      for (const Cube& cube : frames_[i]) {
        std::vector<std::int32_t> clause;
        clause.reserve(cube.size());
        for (const auto& [v, b] : cube) {
          const auto dimacs = static_cast<std::int32_t>(v) + 1;
          clause.push_back(b ? -dimacs : dimacs);
        }
        invariant.clauses.push_back(std::move(clause));
      }
    }
    return invariant;
  }

  const netlist::Netlist& nl_;
  netlist::SignalId bad_;
  const PdrOptions& options_;
  sat::Solver solver_;
  cnf::Unroller unroller_;
  std::vector<bool> in_cone_;
  std::vector<netlist::SignalId> state_vars_;
  Cube init_cube_;
  sat::Lit bad0_;
  std::vector<sat::Lit> acts_;       // activation literal per level (1-based)
  std::vector<std::vector<Cube>> frames_;  // cubes blocked exactly at level
  std::vector<ObNode> nodes_;
  std::set<ObKey> queue_;
  std::uint64_t next_seq_ = 0;
  Cube pending_state_;
  util::BitVec pending_inputs_;
  PdrCounters counters_;
  bool cancelled_ = false;
  util::Stopwatch timer_;
};

PdrResult Ic3::run() {
  const std::uint64_t rss_before = util::current_rss_bytes();
  PdrResult result;

  const auto finalize = [&](PdrResult& r) {
    r.seconds = timer_.elapsed_seconds();
    const std::uint64_t rss_after = util::current_rss_bytes();
    const std::uint64_t rss_delta =
        rss_after > rss_before ? rss_after - rss_before : 0;
    r.memory_bytes = std::max(rss_delta, solver_.clause_bytes());
    r.sat_stats = solver_.stats();
    r.vars = unroller_.vars_allocated();
    r.counters = counters_;
    r.cancelled = cancelled_;
  };

  // Base case: can the reset state itself raise bad under some input?
  {
    std::vector<sat::Lit> assumptions = frame_assumptions(0);
    assumptions.push_back(bad0_);
    const sat::SolveResult r = solve(assumptions);
    if (r == sat::SolveResult::kSat) {
      result.status = PdrStatus::kViolated;
      sim::Witness witness;
      witness.frames.push_back(sim::InputFrame{model_inputs()});
      witness.violation_frame = 0;
      result.witness = std::move(witness);
      finalize(result);
      return result;
    }
    if (r == sat::SolveResult::kUnknown) {
      result.status = PdrStatus::kResourceOut;
      finalize(result);
      return result;
    }
  }
  result.frames_completed = 1;
  if (options_.progress != nullptr) {
    options_.progress->frames.store(1, std::memory_order_relaxed);
  }

  if (state_vars_.empty()) {
    // No state in the monitor cone: the reset check covered every
    // reachable state, so the empty invariant already proves the property.
    result.status = PdrStatus::kProven;
    result.invariant = Invariant{};
    result.frames_completed = options_.max_frames;
    finalize(result);
    return result;
  }
  if (options_.max_frames <= 1) {
    result.status = PdrStatus::kBoundReached;
    finalize(result);
    return result;
  }

  open_frame();  // level 1
  for (std::size_t k = 1;; ++k) {
    telemetry::Span frontier_span("pdr:frontier");
    const sat::SolverStats stats_before = solver_.stats();
    const double frontier_started = timer_.elapsed_seconds();

    const bool blocked = block_all_ctis(k, result);
    if (blocked) {
      // F_k overapproximates all states reachable in <= k steps, so a
      // blocked frontier certifies k+1 clean cycles (frames 0..k).
      result.frames_completed = k + 1;
      counters_.frames = k;
      TS_COUNTER_ADD("pdr.frames", 1);
      if (options_.progress != nullptr) {
        options_.progress->frames.store(result.frames_completed,
                                        std::memory_order_relaxed);
      }
    }

    bool done = !blocked;
    std::size_t fixpoint_level = 0;
    if (!done) {
      open_frame();  // level k+1 receives pushed clauses
      done = !propagate(k, result, fixpoint_level);
    }

    {
      const sat::SolverStats stats_after = solver_.stats();
      telemetry::FlightWindow w;
      w.frame = k;
      w.decisions = stats_after.decisions - stats_before.decisions;
      w.propagations = stats_after.propagations - stats_before.propagations;
      w.conflicts = stats_after.conflicts - stats_before.conflicts;
      w.restarts = stats_after.restarts - stats_before.restarts;
      w.wall_us = static_cast<std::uint64_t>(
          (timer_.elapsed_seconds() - frontier_started) * 1e6);
      result.flight.push_back(w);
    }
    if (done) break;

    if (fixpoint_level != 0) {
      Invariant invariant = extract_invariant(fixpoint_level);
      // Self-check before claiming a proof; certify re-checks independently.
      const InvariantCheck check = check_invariant(nl_, bad_, invariant);
      if (!check.ok) {
        TS_LOG_ERROR("pdr: invariant self-check failed: %s",
                     check.detail.c_str());
        result.status = PdrStatus::kResourceOut;
        break;
      }
      result.status = PdrStatus::kProven;
      result.invariant = std::move(invariant);
      result.frames_completed = options_.max_frames;
      TS_LOG_DEBUG("pdr: fixpoint at level %zu (%zu clauses)",
                   fixpoint_level, result.invariant->clauses.size());
      break;
    }
    if (k + 1 >= options_.max_frames) {
      result.status = PdrStatus::kBoundReached;
      break;
    }
    TS_LOG_DEBUG("pdr: frontier %zu blocked (%.2fs elapsed)", k,
                 timer_.elapsed_seconds());
  }

  finalize(result);
  return result;
}

}  // namespace

std::string PdrResult::status_name() const {
  switch (status) {
    case PdrStatus::kViolated:
      return "violated";
    case PdrStatus::kProven:
      return "proven-unbounded";
    case PdrStatus::kBoundReached:
      return "bound-reached";
    case PdrStatus::kResourceOut:
      return "resource-out";
  }
  return "?";
}

PdrResult check_bad_signal(const netlist::Netlist& nl,
                           netlist::SignalId bad_signal,
                           const PdrOptions& options) {
  Ic3 engine(nl, bad_signal, options);
  return engine.run();
}

InvariantCheck check_invariant(const netlist::Netlist& nl,
                               netlist::SignalId bad,
                               const Invariant& invariant) {
  InvariantCheck verdict;
  const std::vector<bool> in_cone = netlist::sequential_coi(nl, {bad});

  // Structural validation + syntactic initiation (reset is a total
  // assignment, so "some literal agrees with reset" is a complete check).
  for (std::size_t ci = 0; ci < invariant.clauses.size(); ++ci) {
    const auto& clause = invariant.clauses[ci];
    if (clause.empty()) {
      verdict.detail = "clause " + std::to_string(ci) + " is empty";
      return verdict;
    }
    bool init_satisfied = false;
    for (const std::int32_t lit : clause) {
      if (lit == 0) {
        verdict.detail = "clause " + std::to_string(ci) + " has literal 0";
        return verdict;
      }
      const auto id = static_cast<std::uint64_t>(lit > 0 ? lit : -lit) - 1;
      if (id >= nl.size() ||
          nl.gate(static_cast<netlist::SignalId>(id)).op !=
              netlist::Op::kDff) {
        verdict.detail = "clause " + std::to_string(ci) +
                         " references a non-register signal";
        return verdict;
      }
      const auto v = static_cast<netlist::SignalId>(id);
      if (!in_cone[v]) {
        verdict.detail = "clause " + std::to_string(ci) +
                         " references a register outside the monitor cone";
        return verdict;
      }
      if (nl.gate(v).init == (lit > 0)) init_satisfied = true;
    }
    if (!init_satisfied) {
      verdict.detail =
          "initiation fails for clause " + std::to_string(ci) +
          " (the reset state falsifies it)";
      return verdict;
    }
  }

  sat::Solver solver;
  cnf::Unroller unroller(nl, solver, {bad}, /*free_initial_state=*/true);
  unroller.add_frame();
  unroller.add_frame();
  const auto lit_at = [&](std::int32_t lit, std::size_t frame) {
    const auto v = static_cast<netlist::SignalId>((lit > 0 ? lit : -lit) - 1);
    const sat::Lit l = unroller.lit_of(v, frame);
    return lit > 0 ? l : ~l;
  };
  for (const auto& clause : invariant.clauses) {
    sat::Clause cnf_clause;
    cnf_clause.reserve(clause.size());
    for (const std::int32_t lit : clause) {
      cnf_clause.push_back(lit_at(lit, 0));
    }
    solver.add_clause(std::move(cnf_clause));
  }

  util::Stopwatch timer;
  const double limit_seconds = 100.0;
  const auto solve = [&](const std::vector<sat::Lit>& assumptions) {
    sat::Budget budget;
    budget.time_limit_seconds = limit_seconds - timer.elapsed_seconds();
    return solver.solve(assumptions, budget);
  };

  // Property: no invariant state raises bad under any input.
  {
    const sat::SolveResult r = solve({unroller.lit_of(bad, 0)});
    if (r == sat::SolveResult::kSat) {
      verdict.detail =
          "property fails: an invariant state can raise the bad signal";
      return verdict;
    }
    if (r == sat::SolveResult::kUnknown) {
      verdict.detail = "resource limit while checking the property";
      return verdict;
    }
  }
  // Consecution: Inv ∧ T ∧ ¬c' is UNSAT for every clause c.
  for (std::size_t ci = 0; ci < invariant.clauses.size(); ++ci) {
    std::vector<sat::Lit> assumptions;
    assumptions.reserve(invariant.clauses[ci].size());
    for (const std::int32_t lit : invariant.clauses[ci]) {
      assumptions.push_back(~lit_at(lit, 1));
    }
    const sat::SolveResult r = solve(assumptions);
    if (r == sat::SolveResult::kSat) {
      verdict.detail = "consecution fails for clause " + std::to_string(ci);
      return verdict;
    }
    if (r == sat::SolveResult::kUnknown) {
      verdict.detail = "resource limit while checking consecution";
      return verdict;
    }
  }

  verdict.ok = true;
  return verdict;
}

}  // namespace trojanscout::pdr
