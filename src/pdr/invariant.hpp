// Inductive-invariant payload emitted by the IC3/PDR engine on a proven
// (unbounded) verdict, and the independent checker that validates it.
//
// The invariant is a conjunction of clauses over the design's register
// (DFF) signals, in DIMACS style: literal +(id+1) means "DFF `id` is 1",
// -(id+1) means "DFF `id` is 0". Together with the implicit property clause
// (the monitor's bad signal never fires), a valid invariant certifies
//   initiation:   Init |= Inv
//   consecution:  Inv ∧ T |= Inv'
//   property:     Inv ∧ Bad is UNSAT
// i.e. no reachable state — at *any* depth — can raise the bad signal.
// This is the unbounded counterpart of the per-frame DRAT chains in
// src/proof: `certify` re-checks all three conditions with a fresh SAT
// solver instead of trusting the engine that produced the invariant.
//
// This header is intentionally link-free (core/engine.hpp embeds an
// Invariant in CheckResult without depending on the ts_pdr library);
// check_invariant lives in ts_pdr.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace trojanscout::pdr {

/// Conjunction of clauses over DFF signal ids (DIMACS-style literals,
/// ±(signal_id + 1)). Clause literal order and clause order are part of the
/// deterministic engine output and survive the verdict-cache round trip.
struct Invariant {
  std::vector<std::vector<std::int32_t>> clauses;

  bool operator==(const Invariant&) const = default;
};

/// Verdict of the independent invariant check.
struct InvariantCheck {
  bool ok = false;
  /// Human-readable reason when !ok ("initiation fails for clause 3", ...).
  std::string detail;
};

/// Validates `invariant` against the design and its bad signal with a fresh
/// SAT solver: initiation (every clause is satisfied by the reset state),
/// consecution (each clause is implied one step after all of them), and the
/// property (no state satisfying the invariant can raise `bad` under any
/// input). Clauses may only mention DFFs inside the sequential cone of
/// influence of `bad`; anything else fails the check rather than throwing.
InvariantCheck check_invariant(const netlist::Netlist& nl,
                               netlist::SignalId bad,
                               const Invariant& invariant);

}  // namespace trojanscout::pdr
