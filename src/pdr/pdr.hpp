// Property-directed reachability (IC3) engine — the portfolio's unbounded
// back end.
//
// Where BMC unrolls the design frame by frame and can only ever certify
// "trustworthy for T clock cycles", IC3 maintains a sequence of stepwise
// over-approximations F_0 = Init, F_1, ..., F_k of the reachable states and
// strengthens them with relatively-inductive clauses until either a real
// counterexample trace is assembled from proof obligations, or two adjacent
// frames become equal — at which point that frame is a true inductive
// invariant and the design is clean at *every* depth, not just up to a
// bound. The invariant is returned as evidence (see invariant.hpp) and
// `certify` re-validates it with an independent solver.
//
// The implementation uses the existing CNF/SAT stack: one incremental
// solver holding a two-frame unrolling of the monitor cone (current state,
// transition relation, next state), monotone frames activated per query via
// assumption literals, and deterministic generalization / obligation
// ordering so runs are reproducible byte for byte.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "pdr/invariant.hpp"
#include "sat/solver.hpp"
#include "sim/witness.hpp"
#include "telemetry/flight.hpp"

namespace trojanscout::pdr {

struct PdrOptions {
  /// Frontier cap: mirrors the BMC bound so a non-converging run still
  /// certifies "trustworthy for max_frames cycles" (kBoundReached).
  std::size_t max_frames = 1024;
  /// Wall-clock budget in seconds (matches the paper's 100 s tool runs).
  double time_limit_seconds = 100.0;
  /// SAT solver configuration (shared with the BMC ablation benches).
  sat::SolverOptions solver;
  /// Inductive generalization (literal dropping). On by default; the knob
  /// exists for the bench suite and is part of the obligation cache key.
  bool generalize = true;
  /// Cooperative cancellation flag, polled at every obligation and inside
  /// the SAT search; a set flag ends the run with kResourceOut + cancelled.
  const std::atomic<bool>* cancel = nullptr;
  /// Live-progress cells for the --progress heartbeat / stall watchdog.
  telemetry::ObligationProgress* progress = nullptr;
};

enum class PdrStatus {
  /// Counterexample trace found (same witness contract as BMC/ATPG).
  kViolated,
  /// Two adjacent frames converged: inductive invariant, clean forever.
  kProven,
  /// Frontier reached max_frames without converging: bounded-clean only.
  kBoundReached,
  /// Budget exhausted or cancelled.
  kResourceOut,
};

struct PdrCounters {
  /// Highest frontier level whose blocking phase completed.
  std::uint64_t frames = 0;
  /// Clauses moved forward one frame during propagation phases.
  std::uint64_t pushed_clauses = 0;
  /// Counterexamples-to-induction pulled from the frontier.
  std::uint64_t ctis = 0;
  /// Proof obligations handled (CTIs + predecessors + reschedules).
  std::uint64_t obligations = 0;
};

struct PdrResult {
  PdrStatus status = PdrStatus::kResourceOut;
  std::optional<sim::Witness> witness;
  /// Present exactly when status == kProven; already self-checked by the
  /// engine, and re-checked independently by `certify`.
  std::optional<Invariant> invariant;
  /// "Trustworthy for N cycles" semantics shared with BMC: the number of
  /// frontier levels fully blocked. A proven run reports max_frames (the
  /// invariant covers every depth; downstream trust-bound merging takes a
  /// min across obligations).
  std::size_t frames_completed = 0;
  double seconds = 0.0;
  std::uint64_t memory_bytes = 0;
  sat::SolverStats sat_stats;
  std::size_t vars = 0;
  PdrCounters counters;
  /// Flight recorder: one window per frontier level (timing carve-out —
  /// see telemetry/flight.hpp).
  std::vector<telemetry::FlightWindow> flight;
  bool cancelled = false;

  [[nodiscard]] bool violated() const { return status == PdrStatus::kViolated; }
  [[nodiscard]] std::string status_name() const;
};

/// Runs IC3/PDR on `nl` for the given bad signal.
PdrResult check_bad_signal(const netlist::Netlist& nl,
                           netlist::SignalId bad_signal,
                           const PdrOptions& options);

}  // namespace trojanscout::pdr
