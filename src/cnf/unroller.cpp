#include "cnf/unroller.hpp"

#include <stdexcept>

#include "netlist/coi.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/span.hpp"

namespace trojanscout::cnf {

using netlist::Gate;
using netlist::Netlist;
using netlist::Op;
using netlist::SignalId;
using sat::Clause;
using sat::Lit;
using sat::Var;

Unroller::Unroller(const Netlist& nl, sat::Solver& solver,
                   const std::vector<SignalId>& coi_roots,
                   bool free_initial_state)
    : nl_(nl),
      solver_(solver),
      topo_(nl.topo_order()),
      free_initial_state_(free_initial_state) {
  if (coi_roots.empty()) {
    in_cone_.assign(nl.size(), true);
  } else {
    in_cone_ = netlist::sequential_coi(nl, coi_roots);
  }
  // Keep only cone members in the evaluation order.
  std::vector<SignalId> filtered;
  filtered.reserve(topo_.size());
  for (const SignalId id : topo_) {
    if (in_cone_[id]) filtered.push_back(id);
  }
  topo_ = std::move(filtered);
  const Var t = solver_.new_var();
  true_lit_ = Lit(t, false);
  solver_.add_clause(true_lit_);
}

std::size_t Unroller::add_frame() {
  telemetry::Span span("cnf:unroll");
  const std::size_t vars_before = vars_allocated_;
  const std::size_t frame = frames_.size();
  frames_.emplace_back(nl_.size(), sat::undef_lit());
  auto& lits = frames_.back();

  // Primary inputs: fresh variables.
  for (const SignalId in : nl_.inputs()) {
    if (!in_cone_[in]) continue;
    const Var v = solver_.new_var();
    ++vars_allocated_;
    lits[in] = Lit(v, false);
  }
  // State: reset constants at frame 0, previous-frame data input afterwards.
  for (const SignalId dff : nl_.dffs()) {
    if (!in_cone_[dff]) continue;
    if (frame == 0) {
      if (free_initial_state_) {
        const Var v = solver_.new_var();
        ++vars_allocated_;
        lits[dff] = Lit(v, false);
      } else {
        lits[dff] = nl_.gate(dff).init ? true_lit_ : ~true_lit_;
      }
    } else {
      const SignalId d = nl_.gate(dff).fanin[0];
      if (d == netlist::kNullSignal) {
        throw std::runtime_error("Unroller: DFF with unconnected input");
      }
      lits[dff] = frames_[frame - 1][d];
    }
  }
  // Combinational logic in topological order.
  for (const SignalId id : topo_) {
    if (lits[id].index() != sat::kUndefLitIndex) continue;  // already mapped
    lits[id] = encode_gate(id, frame);
  }
  TS_COUNTER_ADD("cnf.frames", 1);
  TS_COUNTER_ADD("cnf.vars", vars_allocated_ - vars_before);
  return frame;
}

Lit Unroller::encode_gate(SignalId id, std::size_t frame) {
  auto& lits = frames_[frame];
  const Gate& g = nl_.gate(id);
  auto in = [&](int k) { return lits[g.fanin[k]]; };

  switch (g.op) {
    case Op::kConst0:
      return ~true_lit_;
    case Op::kConst1:
      return true_lit_;
    case Op::kInput:
    case Op::kDff:
      throw std::logic_error("encode_gate: source gate not pre-mapped");
    case Op::kBuf:
      return in(0);
    case Op::kNot:
      return ~in(0);
    case Op::kNand:
    case Op::kAnd: {
      const Lit a = in(0);
      const Lit b = in(1);
      const Lit c = Lit(solver_.new_var(), false);
      ++vars_allocated_;
      solver_.add_clause(~c, a);
      solver_.add_clause(~c, b);
      solver_.add_clause(c, ~a, ~b);
      return g.op == Op::kAnd ? c : ~c;
    }
    case Op::kNor:
    case Op::kOr: {
      const Lit a = in(0);
      const Lit b = in(1);
      const Lit c = Lit(solver_.new_var(), false);
      ++vars_allocated_;
      solver_.add_clause(c, ~a);
      solver_.add_clause(c, ~b);
      solver_.add_clause(~c, a, b);
      return g.op == Op::kOr ? c : ~c;
    }
    case Op::kXnor:
    case Op::kXor: {
      const Lit a = in(0);
      const Lit b = in(1);
      const Lit c = Lit(solver_.new_var(), false);
      ++vars_allocated_;
      solver_.add_clause(Clause{~c, a, b});
      solver_.add_clause(Clause{~c, ~a, ~b});
      solver_.add_clause(Clause{c, ~a, b});
      solver_.add_clause(Clause{c, a, ~b});
      return g.op == Op::kXor ? c : ~c;
    }
    case Op::kMux: {
      const Lit s = in(0);
      const Lit t = in(1);
      const Lit f = in(2);
      const Lit c = Lit(solver_.new_var(), false);
      ++vars_allocated_;
      solver_.add_clause(Clause{~s, ~t, c});
      solver_.add_clause(Clause{~s, t, ~c});
      solver_.add_clause(Clause{s, ~f, c});
      solver_.add_clause(Clause{s, f, ~c});
      // Redundant but propagation-strengthening clauses.
      solver_.add_clause(Clause{~t, ~f, c});
      solver_.add_clause(Clause{t, f, ~c});
      return c;
    }
  }
  throw std::logic_error("encode_gate: unhandled op");
}

Lit Unroller::lit_of(SignalId signal, std::size_t frame) const {
  const Lit lit = frames_.at(frame).at(signal);
  if (lit.index() == sat::kUndefLitIndex) {
    throw std::logic_error("lit_of: signal not encoded in frame");
  }
  return lit;
}

sim::Witness Unroller::extract_witness(std::size_t violation_frame) const {
  sim::Witness witness;
  witness.violation_frame = violation_frame;
  const auto& inputs = nl_.inputs();
  for (std::size_t t = 0; t <= violation_frame && t < frames_.size(); ++t) {
    sim::InputFrame frame;
    frame.bits = util::BitVec(inputs.size());
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      // Inputs outside the cone of influence are irrelevant: fix them to 0.
      if (in_cone_[inputs[i]]) {
        frame.bits.set(i, solver_.model_value(frames_[t][inputs[i]]));
      }
    }
    witness.frames.push_back(std::move(frame));
  }
  return witness;
}

}  // namespace trojanscout::cnf
