// Tseitin encoding of a sequential netlist into CNF, one time frame at a
// time (the "unrolling" of bounded model checking, Section 2.2 of the paper).
//
// Frame semantics match the simulator: at frame 0 every DFF holds its reset
// value; at frame t > 0 a DFF holds the value its data input had at frame
// t-1. A gate's literal at frame t is created lazily when the frame is added.
//
// NOT/BUF/NAND/NOR/XNOR do not allocate variables: they map to (negated)
// literals of their operands, which keeps the CNF close to what a
// production encoder emits.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"
#include "sat/solver.hpp"
#include "sim/witness.hpp"

namespace trojanscout::cnf {

class Unroller {
 public:
  /// `coi_roots`: when non-empty, only the sequential cone of influence of
  /// these signals is encoded (standard model-checking reduction); signals
  /// outside the cone have no literals.
  /// `free_initial_state`: frame 0 registers become fresh variables instead
  /// of their reset constants — the encoding k-induction's step case needs.
  Unroller(const netlist::Netlist& nl, sat::Solver& solver,
           const std::vector<netlist::SignalId>& coi_roots = {},
           bool free_initial_state = false);

  /// Adds one more time frame; returns its index (0-based).
  std::size_t add_frame();

  [[nodiscard]] std::size_t frame_count() const { return frames_.size(); }

  /// Literal representing `signal` at `frame`. The frame must exist.
  [[nodiscard]] sat::Lit lit_of(netlist::SignalId signal,
                                std::size_t frame) const;

  /// After a SAT result, extracts the input assignment of frames
  /// [0, frames] into a witness with the given violation frame.
  [[nodiscard]] sim::Witness extract_witness(std::size_t violation_frame) const;

  /// Number of SAT variables allocated so far (for memory diagnostics).
  [[nodiscard]] std::size_t vars_allocated() const { return vars_allocated_; }

 private:
  sat::Lit encode_gate(netlist::SignalId id, std::size_t frame);

  const netlist::Netlist& nl_;
  sat::Solver& solver_;
  std::vector<netlist::SignalId> topo_;
  std::vector<bool> in_cone_;
  bool free_initial_state_ = false;
  // frames_[t][signal] = literal (kUndefLitIndex-marked before encoding).
  std::vector<std::vector<sat::Lit>> frames_;
  sat::Lit true_lit_;
  std::size_t vars_allocated_ = 0;
};

}  // namespace trojanscout::cnf
