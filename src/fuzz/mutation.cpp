#include "fuzz/mutation.hpp"

#include <algorithm>
#include <stdexcept>

#include "designs/attacks.hpp"
#include "designs/catalog.hpp"
#include "util/rng.hpp"

namespace trojanscout::fuzz {

using netlist::Netlist;
using netlist::SignalId;
using netlist::Word;

const char* trigger_kind_name(TriggerKind kind) {
  switch (kind) {
    case TriggerKind::kCombinational: return "comb";
    case TriggerKind::kSequence: return "seq";
    case TriggerKind::kCounter: return "count";
  }
  return "?";
}

const char* payload_style_name(PayloadStyle style) {
  switch (style) {
    case PayloadStyle::kBitFlip: return "bitflip";
    case PayloadStyle::kStuckAt: return "stuckat";
    case PayloadStyle::kSwap: return "swap";
    case PayloadStyle::kDelayedWrite: return "delayed";
    case PayloadStyle::kPseudoCritical: return "pseudo";
    case PayloadStyle::kBypass: return "bypass";
  }
  return "?";
}

namespace {

/// True when plant_bypass on `reg_name` would redirect at least one reader:
/// some gate outside the register's own update cone (or an output pad)
/// reads the register. Registers whose only readers sit inside their
/// next-state cone — which the transformer must keep on the real register —
/// yield a behaviorally vacuous bypass that no sound detector can flag.
bool bypass_is_effective(const designs::Design& design,
                         const std::string& reg_name) {
  const Netlist& nl = design.nl;
  const auto& reg = nl.find_register(reg_name);
  Word roots;
  for (const SignalId dff : reg.dffs) {
    const SignalId d = nl.gate(dff).fanin[0];
    if (d == netlist::kNullSignal) return false;
    roots.push_back(d);
  }
  std::vector<bool> cone(nl.size(), false);
  for (const SignalId id : nl.fanin_cone(roots)) cone[id] = true;
  std::vector<bool> is_reg_dff(nl.size(), false);
  for (const SignalId dff : reg.dffs) {
    cone[dff] = true;
    is_reg_dff[dff] = true;
  }
  for (SignalId id = 0; id < nl.size(); ++id) {
    if (cone[id]) continue;
    for (const SignalId f : nl.gate(id).fanin) {
      if (f != netlist::kNullSignal && is_reg_dff[f]) return true;
    }
  }
  for (const auto& port : nl.output_ports()) {
    for (const SignalId bit : port.bits) {
      if (is_reg_dff[bit]) return true;
    }
  }
  return false;
}

std::string hex_u64(std::uint64_t value) {
  static const char* digits = "0123456789abcdef";
  if (value == 0) return "0x0";
  std::string out;
  while (value != 0) {
    out.insert(out.begin(), digits[value & 0xF]);
    value >>= 4;
  }
  return "0x" + out;
}

/// Primary-input bits a trigger may tap: everything except the reset port
/// (asserting reset while the trigger counts would make the activation
/// sequence fight the design's own initialization).
std::vector<SignalId> eligible_taps(const Netlist& nl) {
  std::vector<SignalId> taps;
  for (const auto& port : nl.input_ports()) {
    if (port.name == "reset") continue;
    taps.insert(taps.end(), port.bits.begin(), port.bits.end());
  }
  if (taps.empty()) {
    // Degenerate designs without named non-reset ports: fall back to all.
    taps = nl.inputs();
  }
  return taps;
}

/// Bit j of stage k's match pattern (trigger_width bits per stage, wrapping
/// around the 64-bit pattern word).
bool stage_pattern_bit(const MutationSpec& spec, std::size_t stage,
                       std::size_t j) {
  const std::size_t index = (stage * spec.trigger_width + j) % 64;
  return ((spec.pattern >> index) & 1u) != 0;
}

std::size_t bit_width(std::size_t value) {
  std::size_t n = 0;
  while (value != 0) {
    ++n;
    value >>= 1;
  }
  return n == 0 ? 1 : n;
}

/// Canonicalizes a raw sweep point against the concrete design so that any
/// field value becomes a well-defined mutant (and two specs that
/// canonicalize identically build identical netlists).
MutationSpec canonicalize(const MutationSpec& raw,
                          const designs::Design& design,
                          std::size_t eligible_count) {
  MutationSpec spec = raw;
  spec.trigger_width =
      std::clamp<std::size_t>(spec.trigger_width, 1,
                              std::min<std::size_t>(eligible_count, 16));
  spec.insertion_point %= eligible_count;
  if (spec.trigger == TriggerKind::kCombinational) spec.sequence_length = 1;
  spec.sequence_length = std::max<std::size_t>(spec.sequence_length, 1);

  // Target must carry a valid-ways spec block (the Eq. 2 obligation set).
  if (design.spec.find(spec.target) == nullptr) {
    if (design.spec.registers.empty()) {
      throw std::runtime_error("build_mutant: design '" + design.name +
                               "' has no spec'd registers");
    }
    spec.target = design.spec.registers.front().reg;
  }
  const std::size_t width = design.nl.find_register(spec.target).dffs.size();

  if (spec.payload == PayloadStyle::kBypass) {
    // Eq. 4 only runs for registers with observability obligations, and the
    // planted bypass must redirect at least one reader to change behavior.
    const auto* reg_spec = design.spec.find(spec.target);
    if (reg_spec->obligations.empty() ||
        !bypass_is_effective(design, spec.target)) {
      std::string fallback;
      for (const auto& rs : design.spec.registers) {
        if (!rs.obligations.empty() && bypass_is_effective(design, rs.reg)) {
          fallback = rs.reg;
          break;
        }
      }
      if (fallback.empty()) {
        spec.payload = PayloadStyle::kBitFlip;
      } else {
        spec.target = fallback;
      }
    }
  }
  if (spec.payload == PayloadStyle::kPseudoCritical) {
    // The Eq. 3 Trojan classification requires the violation deeper than
    // min_pseudo_violation_depth; a shallow trigger would be dismissed as
    // ordinary register divergence.
    if (spec.trigger == TriggerKind::kCombinational) {
      spec.trigger = TriggerKind::kSequence;
    }
    spec.sequence_length = std::max<std::size_t>(spec.sequence_length, 5);
  }
  if (spec.payload == PayloadStyle::kSwap && width < 2) {
    spec.payload = PayloadStyle::kBitFlip;
  }

  // Style parameter canonical forms (all nonzero so the payload is never a
  // no-op): flip mask / stuck-difference mask in [1, 2^w - 1], rotation in
  // [1, w - 1].
  switch (spec.payload) {
    case PayloadStyle::kBitFlip:
    case PayloadStyle::kStuckAt: {
      // Mask to the register width, then bump 0 to 1. Values already in
      // canonical form map to themselves (canonicalize is a fixpoint).
      if (width < 64) spec.payload_param &= (1ull << width) - 1;
      if (spec.payload_param == 0) spec.payload_param = 1;
      break;
    }
    case PayloadStyle::kSwap:
      spec.payload_param %= width;
      if (spec.payload_param == 0) spec.payload_param = 1;
      break;
    case PayloadStyle::kDelayedWrite:
    case PayloadStyle::kPseudoCritical:
    case PayloadStyle::kBypass:
      spec.payload_param = 0;
      break;
  }
  return spec;
}

/// Builds the trigger machinery; returns the trigger signal and sets
/// fire_depth to the first cycle it can fire under the activation pattern.
SignalId build_trigger(Netlist& nl, const MutationSpec& spec,
                       const std::vector<SignalId>& taps,
                       std::size_t& fire_depth) {
  auto match = [&](std::size_t stage) {
    SignalId m = nl.const1();
    for (std::size_t j = 0; j < taps.size(); ++j) {
      const SignalId bit = stage_pattern_bit(spec, stage, j)
                               ? taps[j]
                               : nl.b_not(taps[j]);
      m = nl.b_and(m, bit);
    }
    return m;
  };

  switch (spec.trigger) {
    case TriggerKind::kCombinational: {
      fire_depth = 0;
      return match(0);
    }
    case TriggerKind::kSequence: {
      // armed_{k+1} <= armed_k && match_k; fires combinationally in the
      // cycle the last stage matches, then latches.
      SignalId armed = nl.const1();
      SignalId fire_now = nl.const0();
      for (std::size_t k = 0; k < spec.sequence_length; ++k) {
        const SignalId step = nl.b_and(armed, match(k));
        if (k + 1 == spec.sequence_length) {
          fire_now = step;
          break;
        }
        const SignalId next = nl.add_dff(false);
        nl.connect_dff_input(next, step);
        armed = next;
      }
      const SignalId sticky = nl.add_dff(false);
      const SignalId trigger = nl.b_or(sticky, fire_now);
      nl.connect_dff_input(sticky, trigger);
      fire_depth = spec.sequence_length - 1;
      return trigger;
    }
    case TriggerKind::kCounter: {
      // Saturating counter of matched cycles; done == (count == N) holds
      // the count, so the trigger is sticky by construction.
      const std::size_t n = bit_width(spec.sequence_length);
      Word count(n);
      for (std::size_t i = 0; i < n; ++i) count[i] = nl.add_dff(false);
      SignalId done = nl.const1();
      for (std::size_t i = 0; i < n; ++i) {
        const bool bit = ((spec.sequence_length >> i) & 1u) != 0;
        done = nl.b_and(done, bit ? count[i] : nl.b_not(count[i]));
      }
      SignalId carry = nl.b_and(match(0), nl.b_not(done));
      for (std::size_t i = 0; i < n; ++i) {
        nl.connect_dff_input(count[i], nl.b_xor(count[i], carry));
        carry = nl.b_and(count[i], carry);
      }
      fire_depth = spec.sequence_length;
      return done;
    }
  }
  throw std::logic_error("build_trigger: unhandled trigger kind");
}

/// Wraps a corruption mux around the target register's golden next-state
/// cone for the four direct payload styles.
void insert_direct_payload(Netlist& nl, const MutationSpec& spec,
                           SignalId trigger) {
  const netlist::Register reg = nl.find_register(spec.target);  // copy
  const std::size_t w = reg.dffs.size();
  Word old_d(w);
  for (std::size_t i = 0; i < w; ++i) old_d[i] = nl.gate(reg.dffs[i]).fanin[0];

  Word corrupted(w);
  for (std::size_t i = 0; i < w; ++i) {
    const bool param_bit = ((spec.payload_param >> (i % 64)) & 1u) != 0;
    switch (spec.payload) {
      case PayloadStyle::kBitFlip:
        corrupted[i] = param_bit ? nl.b_not(old_d[i]) : old_d[i];
        break;
      case PayloadStyle::kStuckAt:
        // Stuck value = reset value XOR the (nonzero) difference mask, so
        // the forced constant always differs from the reset/hold state.
        corrupted[i] = nl.b_const(nl.gate(reg.dffs[i]).init != param_bit);
        break;
      case PayloadStyle::kSwap:
        corrupted[i] = old_d[(i + spec.payload_param) % w];
        break;
      case PayloadStyle::kDelayedWrite:
        corrupted[i] = reg.dffs[i];  // hold: drop the incoming write
        break;
      default:
        throw std::logic_error("insert_direct_payload: not a direct style");
    }
  }
  for (std::size_t i = 0; i < w; ++i) {
    nl.rewire_dff_input(reg.dffs[i],
                        nl.b_mux(trigger, corrupted[i], old_d[i]));
  }
}

}  // namespace

std::string MutationSpec::name() const {
  std::string out = family;
  out += '/';
  out += trigger_kind_name(trigger);
  out += std::to_string(sequence_length);
  out += 'w';
  out += std::to_string(trigger_width);
  out += '@';
  out += std::to_string(insertion_point);
  out += '/';
  out += payload_style_name(payload);
  out += '(';
  out += target;
  out += ',';
  out += hex_u64(payload_param);
  out += ')';
  return out;
}

proof::Json MutationSpec::to_json() const {
  proof::Json j = proof::Json::object();
  j.set("name", name());
  j.set("family", family);
  proof::Json trig = proof::Json::object();
  trig.set("kind", trigger_kind_name(trigger));
  trig.set("width", static_cast<std::uint64_t>(trigger_width));
  trig.set("sequence_length", static_cast<std::uint64_t>(sequence_length));
  trig.set("pattern", hex_u64(pattern));
  trig.set("insertion_point", static_cast<std::uint64_t>(insertion_point));
  j.set("trigger", std::move(trig));
  proof::Json pay = proof::Json::object();
  pay.set("style", payload_style_name(payload));
  pay.set("target", target);
  pay.set("param", hex_u64(payload_param));
  j.set("payload", std::move(pay));
  return j;
}

Mutant build_mutant(const MutationSpec& raw) {
  Mutant mutant;
  mutant.design = designs::build_clean(raw.family);
  designs::Design& design = mutant.design;
  Netlist& nl = design.nl;

  const std::vector<SignalId> eligible = eligible_taps(nl);
  const MutationSpec spec = canonicalize(raw, design, eligible.size());
  mutant.spec = spec;

  std::vector<SignalId> taps(spec.trigger_width);
  for (std::size_t j = 0; j < spec.trigger_width; ++j) {
    taps[j] = eligible[(spec.insertion_point + j) % eligible.size()];
  }

  const SignalId first_trojan_gate = static_cast<SignalId>(nl.size());
  const SignalId trigger = build_trigger(nl, spec, taps, mutant.fire_depth);
  design.trojan_trigger = trigger;
  design.name = spec.name();

  switch (spec.payload) {
    case PayloadStyle::kPseudoCritical:
      designs::plant_pseudo_critical(design, spec.target);
      break;
    case PayloadStyle::kBypass:
      designs::plant_bypass(design, spec.target);
      break;
    default:
      insert_direct_payload(nl, spec, trigger);
      break;
  }
  design.name = spec.name();
  design.trojan_gate_ranges.push_back(
      {first_trojan_gate, static_cast<SignalId>(nl.size())});
  design.critical_registers = {spec.target};
  nl.validate();

  // Ground-truth activation: stage patterns on the tapped bits, everything
  // else zero, one frame past the fire depth so the fire cycle is covered.
  mutant.activation.resize(mutant.fire_depth + 1);
  for (std::size_t t = 0; t < mutant.activation.size(); ++t) {
    util::BitVec bits(nl.num_inputs());
    const bool in_pattern = t < spec.sequence_length;
    if (in_pattern) {
      const std::size_t stage =
          spec.trigger == TriggerKind::kCounter ? 0 : t;
      for (std::size_t j = 0; j < taps.size(); ++j) {
        if (stage_pattern_bit(spec, stage, j)) {
          bits.set(nl.input_index(taps[j]), true);
        }
      }
    }
    mutant.activation[t].bits = std::move(bits);
  }
  return mutant;
}

std::vector<MutationSpec> generate_corpus(const CorpusOptions& options) {
  if (options.families.empty()) {
    throw std::invalid_argument("generate_corpus: no families");
  }
  struct TargetInfo {
    std::string reg;
    std::size_t width = 0;
    bool bypassable = false;  // has obligations and a non-vacuous bypass
  };
  struct FamilyInfo {
    std::string family;
    std::vector<TargetInfo> targets;
  };
  std::vector<FamilyInfo> families;
  for (const std::string& family : options.families) {
    const designs::Design clean = designs::build_clean(family);
    FamilyInfo info{family, {}};
    for (const auto& reg_spec : clean.spec.registers) {
      info.targets.push_back(
          {reg_spec.reg, clean.nl.find_register(reg_spec.reg).dffs.size(),
           !reg_spec.obligations.empty() &&
               bypass_is_effective(clean, reg_spec.reg)});
    }
    if (info.targets.empty()) {
      throw std::invalid_argument("generate_corpus: family '" + family +
                                  "' has no spec'd registers");
    }
    families.push_back(std::move(info));
  }

  util::Xoshiro256 rng(options.seed);
  std::vector<MutationSpec> corpus;
  corpus.reserve(options.count);
  for (std::size_t i = 0; i < options.count; ++i) {
    // Fixed draw count per variant keeps same-seed corpora prefix-stable.
    const std::uint64_t d_family = rng.next();
    const std::uint64_t d_target = rng.next();
    const std::uint64_t d_kind = rng.next();
    const std::uint64_t d_width = rng.next();
    const std::uint64_t d_len = rng.next();
    const std::uint64_t d_pattern = rng.next();
    const std::uint64_t d_insert = rng.next();
    const std::uint64_t d_style = rng.next();
    const std::uint64_t d_param = rng.next();
    const double d_deep = rng.next_double();

    const FamilyInfo& fam = families[d_family % families.size()];
    const TargetInfo& target = fam.targets[d_target % fam.targets.size()];

    MutationSpec spec;
    spec.family = fam.family;
    spec.target = target.reg;
    spec.trigger = static_cast<TriggerKind>(d_kind % 3);
    spec.trigger_width = d_width % options.max_trigger_width + 1;
    spec.sequence_length = d_len % options.max_sequence_length + 1;
    spec.pattern = d_pattern;
    spec.insertion_point = d_insert % 4096;
    spec.payload_param = d_param;

    // Style distribution: the four direct styles dominate; the Section-4
    // attack styles appear where their detection preconditions hold
    // (pseudo needs width >= 4 for a meaningful mirror, bypass needs an
    // observability obligation).
    const std::size_t style_slots = options.include_attack_styles ? 6 : 4;
    PayloadStyle style = static_cast<PayloadStyle>(d_style % style_slots);
    if (style == PayloadStyle::kPseudoCritical && target.width < 4) {
      style = PayloadStyle::kBitFlip;
    }
    if (style == PayloadStyle::kBypass && !target.bypassable) {
      style = PayloadStyle::kStuckAt;
    }
    spec.payload = style;

    if (d_deep < options.deep_fraction) {
      spec.trigger = TriggerKind::kCounter;
      spec.sequence_length = options.deep_sequence_length;
      // Deep variants exist to exercise the all-clean path; keep their
      // payload direct so no Eq. 3/4 machinery is wasted on them.
      if (spec.payload == PayloadStyle::kPseudoCritical ||
          spec.payload == PayloadStyle::kBypass) {
        spec.payload = PayloadStyle::kBitFlip;
      }
    }
    corpus.push_back(std::move(spec));
  }
  return corpus;
}

}  // namespace trojanscout::fuzz
