// Differential detection harness over the mutation engine.
//
// For every generated mutant the harness cross-checks three oracles:
//
//  1. False-positive gate: the clean design of every family appearing in
//     the corpus is audited with the same engine configuration and must
//     stay all-pass.
//  2. Detection gate: a mutant whose trigger the cycle-accurate simulator
//     can fire within the frame bound ("simulator-reachable") must be
//     flagged by at least one Eq. 2/3/4 obligation, and every finding's
//     witness must be confirmed by sim::replay_confirms on the same
//     instrumented netlist the engine ran on.
//  3. Determinism gate: a warm-cache re-run with a different --jobs count
//     must produce a byte-identical timing-stripped report signature
//     (cold-vs-warm and serial-vs-parallel in one pass).
//
// Any oracle violation is recorded on the variant; shrink() then walks a
// failing MutationSpec down a deterministic reduction order (simpler
// trigger, shorter sequence, narrower taps, plainer payload) while the
// failure reproduces, yielding a minimal repro spec.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cache/verdict_cache.hpp"
#include "core/engine.hpp"
#include "fuzz/mutation.hpp"
#include "proof/json.hpp"

namespace trojanscout::fuzz {

struct HarnessOptions {
  core::EngineKind engine = core::EngineKind::kBmc;
  /// Worker threads for the cold detector pass (the warm differential pass
  /// flips to a different count on its own).
  std::size_t jobs = 2;
  /// Engine frame bound per variant: min(fire_depth + slack, frames_cap).
  /// The slack must cover the design's slowest data path after the trigger
  /// fires: on the RISC core a delayed-write on eeprom_address needs a
  /// movlw/movwf/load instruction chain (4-cycle machine cycles, boot
  /// stall, interrupt flushes), which lands ~14 cycles after firing.
  std::size_t frames_slack = 14;
  std::size_t frames_cap = 26;
  /// Per-obligation engine wall-clock budget.
  double budget_seconds = 30.0;
  /// Run oracle 3 (costs one extra all-cache-hits detector pass/variant).
  bool differential = true;
  /// Verdict-cache directory backing the differential leg; empty = fresh
  /// temporary directory, removed when the harness is destroyed.
  std::string cache_dir;
  /// Run oracle 1 over every family the corpus touches.
  bool check_clean = true;
  /// Test hook: a variant whose canonical spec satisfies this predicate is
  /// marked failed ("injected: ..."), exercising the shrink path without a
  /// real detector bug.
  std::function<bool(const MutationSpec&)> inject_failure;
};

struct VariantOutcome {
  MutationSpec spec;  // canonicalized by build_mutant
  /// Fire depth exceeds the frame bound: expected unreachable (the
  /// bound-evasion corner of the sweep).
  bool deep = false;
  std::size_t frames = 0;
  bool reachable = false;
  /// First cycle the simulator saw the trigger high (SIZE_MAX if never).
  std::size_t fire_frame = static_cast<std::size_t>(-1);
  bool detected = false;
  std::string finding_property;  // first finding's obligation name
  bool witness_confirmed = true;
  bool deterministic = true;
  /// First oracle violation ("" = all oracles passed). The text before the
  /// first ':' is the failure category shrink() preserves.
  std::string failure;

  [[nodiscard]] bool ok() const { return failure.empty(); }

  /// Cold-run engine seconds per obligation, run order (timing only).
  std::vector<double> obligation_seconds;
};

struct CleanOutcome {
  std::string family;
  bool scanned = false;  // pseudo-critical scan was enabled
  std::size_t frames = 0;
  std::size_t obligations = 0;
  bool pass = false;
  std::string detail;  // finding summary when !pass
  double seconds = 0.0;  // timing only
};

struct LatencyQuantile {
  std::string engine;
  std::size_t samples = 0;
  double p50_seconds = 0.0;
  double p90_seconds = 0.0;
  double p99_seconds = 0.0;
  double total_seconds = 0.0;
};

struct CorpusReport {
  std::uint64_t seed = 0;
  core::EngineKind engine = core::EngineKind::kBmc;
  std::size_t jobs = 0;
  std::vector<CleanOutcome> clean;
  std::vector<VariantOutcome> variants;

  std::size_t reachable_count = 0;
  std::size_t detected_count = 0;   // reachable && detected
  std::size_t missed_count = 0;     // reachable && !detected
  std::size_t false_positive_count = 0;  // clean-audit findings
  std::size_t failure_count = 0;    // variants with an oracle violation
  /// detected / reachable (1.0 when nothing was reachable).
  double detection_rate = 1.0;

  std::vector<LatencyQuantile> latency;  // timing only
  double total_seconds = 0.0;            // timing only

  /// `trojanscout-corpus-v1` artifact. With include_timing=false the
  /// document is a pure function of (corpus, harness configuration) —
  /// byte-identical across runs, machines, and jobs counts.
  [[nodiscard]] proof::Json to_json(bool include_timing) const;

  /// Compact dump of to_json(false): the corpus signature the CI
  /// determinism check diffs.
  [[nodiscard]] std::string signature() const;

  [[nodiscard]] std::string summary() const;
};

class CorpusHarness {
 public:
  explicit CorpusHarness(HarnessOptions options);
  ~CorpusHarness();

  CorpusHarness(const CorpusHarness&) = delete;
  CorpusHarness& operator=(const CorpusHarness&) = delete;

  /// Builds + audits one mutant and evaluates oracles 2 and 3 on it.
  VariantOutcome run_variant(const MutationSpec& spec);

  /// Runs the whole corpus plus the clean legs (oracle 1).
  CorpusReport run(const std::vector<MutationSpec>& corpus,
                   std::uint64_t seed);

  /// Minimizes a failing spec while its failure category reproduces.
  /// Returns the (canonical) input spec unchanged if it does not fail.
  MutationSpec shrink(const MutationSpec& failing);

  [[nodiscard]] const HarnessOptions& options() const { return options_; }

 private:
  CleanOutcome audit_clean(const std::string& family, bool scan,
                           std::size_t frames);

  HarnessOptions options_;
  std::string cache_dir_;
  bool owns_cache_dir_ = false;
  std::unique_ptr<cache::VerdictCache> cache_;
};

}  // namespace trojanscout::fuzz
