// Seeded Trojan mutation engine.
//
// The catalog's nine Table-1 rows and the two Section-4 transformers in
// designs/attacks.cpp are hand-built points in a much larger attack space.
// This module sweeps that space programmatically: a MutationSpec pins down
// one Trojan variant — trigger shape (combinational match, matched input
// sequence, or saturating match counter), trigger width, where the trigger
// taps the input space, which spec'd register the payload corrupts, and the
// payload style — and build_mutant() materializes it on a clean catalog
// design. The direct payload styles wrap a corruption mux around the
// register's golden next-state cone (Eq. 2 territory); the kPseudoCritical
// and kBypass styles reuse the Section-4 transformers with the generated
// trigger (Eq. 3 / Eq. 4 territory), generalizing attacks.cpp.
//
// Everything is deterministic: the same MutationSpec always produces the
// same netlist, and generate_corpus() with the same seed always produces
// the same spec sequence. Mutants carry their own activation input
// sequence, so a cycle-accurate simulation can confirm the trigger is
// reachable independently of the formal engines.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "designs/design.hpp"
#include "proof/json.hpp"
#include "sim/witness.hpp"

namespace trojanscout::fuzz {

enum class TriggerKind {
  /// Pure combinational match over the tapped input bits; fires in the
  /// first cycle the pattern appears (MC8051-T300 style single-shot).
  kCombinational,
  /// Chain of per-cycle matches: the trigger fires only after
  /// sequence_length *consecutive* cycles matched their stage patterns,
  /// then latches (MC8051-T800 style sequence cheat code).
  kSequence,
  /// Saturating counter of matching cycles: fires once sequence_length
  /// matches accumulated, consecutive or not (RISC/AES count triggers; with
  /// a large count this models AES-T1200-style bound-evading Trojans).
  kCounter,
};

enum class PayloadStyle {
  kBitFlip,         // complement a nonzero bit mask of the next value
  kStuckAt,         // force a constant that differs from the reset value
  kSwap,            // rotate the next-value bits (data scramble)
  kDelayedWrite,    // freeze the register: next := current while triggered
  kPseudoCritical,  // Section 4.1 transformer on the generated trigger
  kBypass,          // Section 4.2 transformer on the generated trigger
};

const char* trigger_kind_name(TriggerKind kind);
const char* payload_style_name(PayloadStyle style);

/// One point in the mutation space. All fields are raw sweep coordinates;
/// build_mutant() canonicalizes them against the concrete design (widths
/// clamp to the available input/register bits, swap on a 1-bit register
/// degrades to bit-flip, ...), so any field value is valid.
struct MutationSpec {
  std::string family;  // "mc8051" | "risc" | "router" | "aes"
  TriggerKind trigger = TriggerKind::kCombinational;
  /// Number of input bits the trigger taps (clamped to [1, available]).
  std::size_t trigger_width = 1;
  /// Stages (kSequence) or match count (kCounter); kCombinational uses 1.
  std::size_t sequence_length = 1;
  /// Per-stage match patterns, trigger_width bits per stage, wrapping
  /// around the 64-bit word.
  std::uint64_t pattern = 0;
  /// Offset into the non-reset input bits where the taps start.
  std::size_t insertion_point = 0;
  /// Target register (must carry a valid-ways spec block).
  std::string target;
  PayloadStyle payload = PayloadStyle::kBitFlip;
  /// Style parameter: flip mask / stuck value / rotation (canonicalized).
  std::uint64_t payload_param = 1;

  /// Compact deterministic identifier, e.g.
  /// "mc8051/seq3w2@17/bitflip(acc,0x5)".
  [[nodiscard]] std::string name() const;

  /// JSON object mirroring every field (pattern/param as hex strings so
  /// the artifact never emits a negative 64-bit value).
  [[nodiscard]] proof::Json to_json() const;
};

/// A materialized mutant: the infected design (trojan_trigger set,
/// trojan_gate_ranges covering the inserted logic) plus the ground-truth
/// activation data the differential harness simulates.
struct Mutant {
  designs::Design design;
  MutationSpec spec;  // canonicalized against the design
  /// Cycle at which the trigger first fires under `activation` (0-based,
  /// sampled combinationally like a monitor's bad signal).
  std::size_t fire_depth = 0;
  /// Input sequence of fire_depth + 1 frames driving the trigger from
  /// reset: stage patterns on the tapped bits, zero elsewhere.
  std::vector<sim::InputFrame> activation;
};

/// Builds the mutant for a spec. Throws std::invalid_argument on an
/// unknown family and std::runtime_error if the target register (after
/// canonicalization) carries no spec block.
Mutant build_mutant(const MutationSpec& spec);

struct CorpusOptions {
  std::uint64_t seed = 42;
  std::size_t count = 100;
  /// Families to draw from (each must have spec'd registers).
  std::vector<std::string> families = {"mc8051", "risc", "router"};
  std::size_t max_trigger_width = 4;
  std::size_t max_sequence_length = 6;
  /// Fraction of variants given a counter trigger too deep for the
  /// harness's frame bound (models trigger-depth bound evasion; such
  /// mutants are expected unreachable and exercise the all-clean path).
  double deep_fraction = 0.05;
  /// Match count assigned to deep variants (must exceed the harness cap).
  std::size_t deep_sequence_length = 200;
  /// Include the Section-4 kPseudoCritical / kBypass payload styles.
  bool include_attack_styles = true;
};

/// Deterministically expands (seed, count) into a spec list. Draws a fixed
/// number of PRNG words per variant, so corpora with the same seed share a
/// prefix regardless of count.
std::vector<MutationSpec> generate_corpus(const CorpusOptions& options);

}  // namespace trojanscout::fuzz
