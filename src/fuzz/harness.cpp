#include "fuzz/harness.hpp"

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <sstream>
#include <stdexcept>

#include "cache/verdict_codec.hpp"
#include "core/parallel_detector.hpp"
#include "designs/catalog.hpp"
#include "sim/simulator.hpp"
#include "util/stopwatch.hpp"

namespace trojanscout::fuzz {

namespace {

/// Identity key over every canonical field (name() omits the pattern).
std::string spec_key(const MutationSpec& spec) {
  return spec.name() + "#" + std::to_string(spec.pattern);
}

core::Obligation finding_obligation(const core::Finding& finding) {
  core::Obligation ob;
  switch (finding.kind) {
    case core::FindingKind::kCorruption:
      ob.kind = core::Obligation::Kind::kCorruption;
      break;
    case core::FindingKind::kPseudoCritical:
      ob.kind = core::Obligation::Kind::kPseudo;
      break;
    case core::FindingKind::kBypass:
      ob.kind = core::Obligation::Kind::kBypass;
      break;
  }
  ob.reg = finding.register_name;
  ob.candidate = finding.candidate_register;
  return ob;
}

double quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const std::size_t index = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(index, sorted.size() - 1)];
}

}  // namespace

CorpusHarness::CorpusHarness(HarnessOptions options)
    : options_(std::move(options)) {
  if (options_.jobs == 0) options_.jobs = 2;
  if (!options_.differential) return;
  cache_dir_ = options_.cache_dir;
  if (cache_dir_.empty()) {
    const std::filesystem::path base =
        std::filesystem::temp_directory_path() /
        ("trojanscout-fuzz-" + std::to_string(::getpid()));
    std::filesystem::path dir = base;
    std::error_code ec;
    for (int n = 0; !std::filesystem::create_directories(dir, ec); ++n) {
      if (n >= 1000) {
        throw std::runtime_error("fuzz harness: cannot create cache dir " +
                                 base.string());
      }
      dir = base.string() + "-" + std::to_string(n);
    }
    cache_dir_ = dir.string();
    owns_cache_dir_ = true;
  }
  cache::VerdictCache::Options co;
  co.dir = cache_dir_;
  cache_ = std::make_unique<cache::VerdictCache>(std::move(co));
}

CorpusHarness::~CorpusHarness() {
  cache_.reset();
  if (owns_cache_dir_) {
    std::error_code ec;
    std::filesystem::remove_all(cache_dir_, ec);
  }
}

VariantOutcome CorpusHarness::run_variant(const MutationSpec& spec) {
  VariantOutcome out;
  Mutant mutant = build_mutant(spec);
  out.spec = mutant.spec;
  out.frames =
      std::min(mutant.fire_depth + options_.frames_slack, options_.frames_cap);
  out.deep = mutant.fire_depth >= out.frames;

  // Ground truth: can the cycle-accurate simulator fire the trigger within
  // the frame bound by replaying the generator's activation sequence?
  {
    sim::Simulator simulator(mutant.design.nl);
    simulator.reset();
    const std::size_t sim_frames =
        std::min(mutant.activation.size(), out.frames);
    for (std::size_t t = 0; t < sim_frames; ++t) {
      simulator.set_inputs(mutant.activation[t].bits);
      simulator.eval();
      if (simulator.value(mutant.design.trojan_trigger)) {
        out.reachable = true;
        out.fire_frame = t;
        break;
      }
      simulator.step();
    }
  }

  core::ParallelDetectorOptions po;
  po.detector.engine.kind = options_.engine;
  po.detector.engine.max_frames = out.frames;
  po.detector.engine.time_limit_seconds = options_.budget_seconds;
  po.detector.scan_pseudo_critical =
      mutant.spec.payload == PayloadStyle::kPseudoCritical;
  po.detector.check_bypass = mutant.spec.payload == PayloadStyle::kBypass;
  po.jobs = options_.jobs;

  std::unique_ptr<cache::AuditVerdictStore> store;
  if (cache_ != nullptr) {
    store = std::make_unique<cache::AuditVerdictStore>(
        *cache_, mutant.design, po.detector, /*fail_fast=*/false);
    po.store = store.get();
  }

  const core::DetectionReport cold =
      core::ParallelDetector(mutant.design, po).run();
  out.detected = cold.trojan_found;
  out.obligation_seconds.reserve(cold.runs.size());
  for (const auto& run : cold.runs) {
    out.obligation_seconds.push_back(run.check.seconds);
  }

  // Oracle 2b: every finding's witness must replay on the instrumented
  // netlist the engine searched.
  const core::TrojanDetector detector(mutant.design, po.detector);
  for (const auto& finding : cold.findings) {
    const core::Obligation ob = finding_obligation(finding);
    if (out.finding_property.empty()) {
      out.finding_property = ob.property_name();
    }
    if (!finding.check.witness.has_value()) {
      out.witness_confirmed = false;
      if (out.failure.empty()) {
        out.failure = "witness: finding " + ob.property_name() +
                      " carries no witness";
      }
      continue;
    }
    const auto instrumented = detector.instrument_obligation(ob);
    const sim::ReplayVerdict verdict = sim::replay_confirms(
        instrumented.nl, instrumented.bad, *finding.check.witness);
    if (!verdict.confirmed) {
      out.witness_confirmed = false;
      if (out.failure.empty()) {
        out.failure = "witness: replay of " + ob.property_name() +
                      " not confirmed (" + verdict.detail + ")";
      }
    }
  }

  // Oracle 3: warm-cache re-run under a different jobs count must produce
  // the identical timing-stripped report.
  if (options_.differential && cache_ != nullptr) {
    core::ParallelDetectorOptions warm_options = po;
    warm_options.jobs = po.jobs == 1 ? 2 : 1;
    const core::DetectionReport warm =
        core::ParallelDetector(mutant.design, warm_options).run();
    if (warm.signature() != cold.signature()) {
      out.deterministic = false;
      if (out.failure.empty()) {
        out.failure =
            "determinism: warm/jobs report signature diverged on " +
            out.spec.name();
      }
    }
  }

  // Oracle 2a: simulator-reachable mutants must be flagged.
  if (out.failure.empty() && out.reachable && !out.detected) {
    out.failure = "detection: simulator-reachable mutant not flagged";
  }

  if (out.failure.empty() && options_.inject_failure &&
      options_.inject_failure(out.spec)) {
    out.failure = "injected: harness failure predicate matched";
  }
  return out;
}

CleanOutcome CorpusHarness::audit_clean(const std::string& family, bool scan,
                                        std::size_t frames) {
  CleanOutcome out;
  out.family = family;
  out.scanned = scan;
  out.frames = frames;
  util::Stopwatch watch;

  designs::Design clean = designs::build_clean(family);
  clean.critical_registers.clear();
  for (const auto& reg_spec : clean.spec.registers) {
    clean.critical_registers.push_back(reg_spec.reg);
  }

  core::ParallelDetectorOptions po;
  po.detector.engine.kind = options_.engine;
  po.detector.engine.max_frames = frames;
  po.detector.engine.time_limit_seconds = options_.budget_seconds;
  po.detector.scan_pseudo_critical = scan;
  po.detector.check_bypass = true;
  po.jobs = options_.jobs;

  std::unique_ptr<cache::AuditVerdictStore> store;
  if (cache_ != nullptr) {
    store = std::make_unique<cache::AuditVerdictStore>(
        *cache_, clean, po.detector, /*fail_fast=*/false);
    po.store = store.get();
  }

  const core::DetectionReport report =
      core::ParallelDetector(clean, po).run();
  out.obligations = report.runs.size();
  out.pass = !report.trojan_found;
  if (!out.pass) {
    std::ostringstream detail;
    for (const auto& finding : report.findings) {
      if (detail.tellp() > 0) detail << "; ";
      detail << core::finding_kind_name(finding.kind) << " on "
             << finding.register_name;
    }
    out.detail = detail.str();
  }
  out.seconds = watch.elapsed_seconds();
  return out;
}

CorpusReport CorpusHarness::run(const std::vector<MutationSpec>& corpus,
                                std::uint64_t seed) {
  util::Stopwatch watch;
  CorpusReport report;
  report.seed = seed;
  report.engine = options_.engine;
  report.jobs = options_.jobs;

  report.variants.reserve(corpus.size());
  for (const MutationSpec& spec : corpus) {
    report.variants.push_back(run_variant(spec));
  }

  // Clean legs: one audit per family the corpus touched, at the deepest
  // bound used. The audit is the canonical one (Eq. 2 corruption + Eq. 4
  // bypass); the Eq. 3 pseudo scan stays off here because it is a
  // screening heuristic scoped to Trojan-suspect cores (Algorithm 1), and
  // architecturally coupled registers on a clean design — RISC stack
  // entries are saved PC copies, RAM cells share the eeprom registers'
  // reset value — satisfy its mirror relation without any Trojan.
  if (options_.check_clean) {
    std::vector<std::string> families;
    for (const auto& outcome : report.variants) {
      if (std::find(families.begin(), families.end(), outcome.spec.family) ==
          families.end()) {
        families.push_back(outcome.spec.family);
      }
    }
    std::sort(families.begin(), families.end());
    for (const std::string& family : families) {
      std::size_t frames = 1;
      for (const auto& outcome : report.variants) {
        if (outcome.spec.family != family) continue;
        frames = std::max(frames, outcome.frames);
      }
      report.clean.push_back(audit_clean(family, /*scan=*/false, frames));
      if (!report.clean.back().pass) ++report.false_positive_count;
    }
  }

  std::vector<double> samples;
  for (const auto& outcome : report.variants) {
    if (outcome.reachable) {
      ++report.reachable_count;
      if (outcome.detected) {
        ++report.detected_count;
      } else {
        ++report.missed_count;
      }
    }
    if (!outcome.ok()) ++report.failure_count;
    samples.insert(samples.end(), outcome.obligation_seconds.begin(),
                   outcome.obligation_seconds.end());
  }
  report.detection_rate =
      report.reachable_count == 0
          ? 1.0
          : static_cast<double>(report.detected_count) /
                static_cast<double>(report.reachable_count);

  std::sort(samples.begin(), samples.end());
  LatencyQuantile lat;
  lat.engine = core::engine_name(options_.engine);
  lat.samples = samples.size();
  lat.p50_seconds = quantile(samples, 0.50);
  lat.p90_seconds = quantile(samples, 0.90);
  lat.p99_seconds = quantile(samples, 0.99);
  for (const double s : samples) lat.total_seconds += s;
  report.latency.push_back(std::move(lat));
  report.total_seconds = watch.elapsed_seconds();
  return report;
}

MutationSpec CorpusHarness::shrink(const MutationSpec& failing) {
  const VariantOutcome base = run_variant(failing);
  if (base.ok()) return base.spec;
  const std::string category =
      base.failure.substr(0, base.failure.find(':'));

  MutationSpec current = base.spec;
  auto reproduces = [&](const MutationSpec& candidate,
                        MutationSpec& canonical) {
    const VariantOutcome outcome = run_variant(candidate);
    if (outcome.ok()) return false;
    if (outcome.failure.substr(0, outcome.failure.find(':')) != category) {
      return false;
    }
    canonical = outcome.spec;
    return true;
  };

  // Deterministic reduction order, biggest simplification first. Each
  // accepted step restarts the pass; canonicalization inside build_mutant
  // may veto a reduction (e.g. pseudo payloads keep sequence_length >= 5),
  // in which case the canonical spec equals the current one and the step
  // is discarded to guarantee termination.
  bool progress = true;
  std::size_t attempts = 0;
  while (progress && attempts < 128) {
    progress = false;
    std::vector<MutationSpec> candidates;
    if (current.trigger != TriggerKind::kCombinational) {
      MutationSpec s = current;
      s.trigger = TriggerKind::kCombinational;
      s.sequence_length = 1;
      candidates.push_back(std::move(s));
    }
    if (current.sequence_length > 1) {
      MutationSpec s = current;
      s.sequence_length = 1;
      candidates.push_back(s);
      s.sequence_length = current.sequence_length / 2;
      candidates.push_back(std::move(s));
    }
    if (current.trigger_width > 1) {
      MutationSpec s = current;
      s.trigger_width = 1;
      candidates.push_back(s);
      s.trigger_width = current.trigger_width / 2;
      candidates.push_back(std::move(s));
    }
    if (current.payload != PayloadStyle::kBitFlip) {
      MutationSpec s = current;
      s.payload = PayloadStyle::kBitFlip;
      s.payload_param = 0;  // canonicalizes to mask 1
      candidates.push_back(std::move(s));
    }
    if (current.payload_param > 1) {
      MutationSpec s = current;
      s.payload_param = 0;
      candidates.push_back(std::move(s));
    }
    if (current.pattern != 0) {
      MutationSpec s = current;
      s.pattern = 0;
      candidates.push_back(std::move(s));
    }
    if (current.insertion_point != 0) {
      MutationSpec s = current;
      s.insertion_point = 0;
      candidates.push_back(std::move(s));
    }
    for (const MutationSpec& candidate : candidates) {
      ++attempts;
      MutationSpec canonical;
      if (reproduces(candidate, canonical) &&
          spec_key(canonical) != spec_key(current)) {
        current = canonical;
        progress = true;
        break;
      }
      if (attempts >= 128) break;
    }
  }
  return current;
}

// ---- report serialization --------------------------------------------------

proof::Json CorpusReport::to_json(bool include_timing) const {
  proof::Json doc = proof::Json::object();
  doc.set("schema", "trojanscout-corpus-v1");
  doc.set("seed", seed);
  doc.set("engine", core::engine_name(engine));
  doc.set("count", static_cast<std::uint64_t>(variants.size()));

  proof::Json clean_array = proof::Json::array();
  for (const auto& outcome : clean) {
    proof::Json c = proof::Json::object();
    c.set("family", outcome.family);
    c.set("scanned", outcome.scanned);
    c.set("frames", static_cast<std::uint64_t>(outcome.frames));
    c.set("obligations", static_cast<std::uint64_t>(outcome.obligations));
    c.set("pass", outcome.pass);
    if (!outcome.pass) c.set("detail", outcome.detail);
    if (include_timing) c.set("seconds", outcome.seconds);
    clean_array.push_back(std::move(c));
  }
  doc.set("clean", std::move(clean_array));

  proof::Json variant_array = proof::Json::array();
  for (const auto& outcome : variants) {
    proof::Json v = outcome.spec.to_json();
    v.set("deep", outcome.deep);
    v.set("frames", static_cast<std::uint64_t>(outcome.frames));
    v.set("reachable", outcome.reachable);
    if (outcome.reachable) {
      v.set("fire_frame", static_cast<std::uint64_t>(outcome.fire_frame));
    }
    v.set("detected", outcome.detected);
    if (outcome.detected) {
      v.set("property", outcome.finding_property);
      v.set("witness_confirmed", outcome.witness_confirmed);
    }
    v.set("deterministic", outcome.deterministic);
    v.set("ok", outcome.ok());
    if (!outcome.ok()) v.set("failure", outcome.failure);
    variant_array.push_back(std::move(v));
  }
  doc.set("variants", std::move(variant_array));

  proof::Json summary = proof::Json::object();
  summary.set("reachable", static_cast<std::uint64_t>(reachable_count));
  summary.set("detected", static_cast<std::uint64_t>(detected_count));
  summary.set("missed", static_cast<std::uint64_t>(missed_count));
  summary.set("false_positives",
              static_cast<std::uint64_t>(false_positive_count));
  summary.set("harness_failures", static_cast<std::uint64_t>(failure_count));
  summary.set("detection_rate", detection_rate);
  doc.set("summary", std::move(summary));

  if (include_timing) {
    proof::Json timing = proof::Json::object();
    // Execution configuration lives with the timing block: detection
    // results are required to be invariant under the jobs count, so it
    // must not appear in the timing-stripped signature.
    timing.set("jobs", static_cast<std::uint64_t>(jobs));
    proof::Json quantiles = proof::Json::array();
    for (const auto& q : latency) {
      proof::Json entry = proof::Json::object();
      entry.set("engine", q.engine);
      entry.set("samples", static_cast<std::uint64_t>(q.samples));
      entry.set("p50_seconds", q.p50_seconds);
      entry.set("p90_seconds", q.p90_seconds);
      entry.set("p99_seconds", q.p99_seconds);
      entry.set("total_seconds", q.total_seconds);
      quantiles.push_back(std::move(entry));
    }
    timing.set("engine_quantiles", std::move(quantiles));
    timing.set("total_seconds", total_seconds);
    doc.set("timing", std::move(timing));
  }
  return doc;
}

std::string CorpusReport::signature() const { return to_json(false).dump(); }

std::string CorpusReport::summary() const {
  std::ostringstream os;
  os << variants.size() << " variants: " << reachable_count << " reachable, "
     << detected_count << " detected, " << missed_count << " missed, "
     << (variants.size() - reachable_count) << " unreachable; "
     << "detection rate "
     << static_cast<int>(detection_rate * 100.0 + 0.5) << "%; "
     << false_positive_count << " clean false positive(s); "
     << failure_count << " harness failure(s)";
  return os.str();
}

}  // namespace trojanscout::fuzz
