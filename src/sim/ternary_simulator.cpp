#include "sim/ternary_simulator.hpp"

#include <stdexcept>

namespace trojanscout::sim {

using netlist::Gate;
using netlist::kNullSignal;
using netlist::Netlist;
using netlist::Op;
using netlist::SignalId;
using netlist::Word;

TernarySimulator::TernarySimulator(const Netlist& nl)
    : nl_(nl), topo_(nl.topo_order()), values_(nl.size(), Ternary::kX) {
  reset();
}

void TernarySimulator::reset() {
  for (auto& v : values_) v = Ternary::kX;
  for (const SignalId dff : nl_.dffs()) {
    values_[dff] = t_from_bool(nl_.gate(dff).init);
  }
  eval();
}

void TernarySimulator::reset_to_x() {
  for (auto& v : values_) v = Ternary::kX;
  eval();
}

void TernarySimulator::set_input(SignalId input, Ternary value) {
  if (nl_.gate(input).op != Op::kInput) {
    throw std::invalid_argument("set_input: signal is not a primary input");
  }
  values_[input] = value;
}

void TernarySimulator::set_input_port(const std::string& name,
                                      std::uint64_t value) {
  const auto& port = nl_.input_port(name);
  for (std::size_t i = 0; i < port.bits.size(); ++i) {
    values_[port.bits[i]] = t_from_bool(i < 64 && ((value >> i) & 1u));
  }
}

void TernarySimulator::set_input_port_x(const std::string& name) {
  const auto& port = nl_.input_port(name);
  for (const SignalId bit : port.bits) values_[bit] = Ternary::kX;
}

void TernarySimulator::eval() {
  for (const SignalId id : topo_) {
    const Gate& g = nl_.gate(id);
    switch (g.op) {
      case Op::kConst0:
        values_[id] = Ternary::kZero;
        break;
      case Op::kConst1:
        values_[id] = Ternary::kOne;
        break;
      case Op::kInput:
      case Op::kDff:
        break;
      case Op::kBuf:
        values_[id] = values_[g.fanin[0]];
        break;
      case Op::kNot:
        values_[id] = t_not(values_[g.fanin[0]]);
        break;
      case Op::kAnd:
        values_[id] = t_and(values_[g.fanin[0]], values_[g.fanin[1]]);
        break;
      case Op::kOr:
        values_[id] = t_or(values_[g.fanin[0]], values_[g.fanin[1]]);
        break;
      case Op::kXor:
        values_[id] = t_xor(values_[g.fanin[0]], values_[g.fanin[1]]);
        break;
      case Op::kXnor:
        values_[id] = t_not(t_xor(values_[g.fanin[0]], values_[g.fanin[1]]));
        break;
      case Op::kNand:
        values_[id] = t_not(t_and(values_[g.fanin[0]], values_[g.fanin[1]]));
        break;
      case Op::kNor:
        values_[id] = t_not(t_or(values_[g.fanin[0]], values_[g.fanin[1]]));
        break;
      case Op::kMux:
        values_[id] = t_mux(values_[g.fanin[0]], values_[g.fanin[1]],
                            values_[g.fanin[2]]);
        break;
    }
  }
}

void TernarySimulator::step() {
  eval();
  std::vector<Ternary> next(nl_.dffs().size());
  for (std::size_t i = 0; i < nl_.dffs().size(); ++i) {
    const Gate& g = nl_.gate(nl_.dffs()[i]);
    if (g.fanin[0] == kNullSignal) {
      throw std::runtime_error("step: DFF with unconnected input");
    }
    next[i] = values_[g.fanin[0]];
  }
  for (std::size_t i = 0; i < nl_.dffs().size(); ++i) {
    values_[nl_.dffs()[i]] = next[i];
  }
  eval();
}

std::string TernarySimulator::read_word_string(const Word& word) const {
  std::string out(word.size(), 'x');
  for (std::size_t i = 0; i < word.size(); ++i) {
    out[word.size() - 1 - i] = t_char(values_[word[i]]);
  }
  return out;
}

}  // namespace trojanscout::sim
