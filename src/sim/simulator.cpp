#include "sim/simulator.hpp"

#include <stdexcept>

namespace trojanscout::sim {

using netlist::Gate;
using netlist::kNullSignal;
using netlist::Netlist;
using netlist::Op;
using netlist::SignalId;
using netlist::Word;

Simulator::Simulator(const Netlist& nl)
    : nl_(nl), topo_(nl.topo_order()), values_(nl.size(), 0) {
  reset();
}

void Simulator::reset() {
  for (SignalId id = 0; id < nl_.size(); ++id) {
    values_[id] = 0;
  }
  values_[nl_.const1()] = 1;
  for (const SignalId dff : nl_.dffs()) {
    values_[dff] = nl_.gate(dff).init ? 1 : 0;
  }
  eval();
}

void Simulator::set_input(SignalId input, bool value) {
  if (nl_.gate(input).op != Op::kInput) {
    throw std::invalid_argument("set_input: signal is not a primary input");
  }
  values_[input] = value ? 1 : 0;
}

void Simulator::set_input_port(const std::string& name, std::uint64_t value) {
  const auto& port = nl_.input_port(name);
  for (std::size_t i = 0; i < port.bits.size(); ++i) {
    values_[port.bits[i]] = (i < 64 && ((value >> i) & 1u)) ? 1 : 0;
  }
}

void Simulator::set_input_port(const std::string& name,
                               const util::BitVec& value) {
  const auto& port = nl_.input_port(name);
  for (std::size_t i = 0; i < port.bits.size(); ++i) {
    values_[port.bits[i]] = (i < value.size() && value.get(i)) ? 1 : 0;
  }
}

void Simulator::set_inputs(const util::BitVec& frame) {
  const auto& ins = nl_.inputs();
  for (std::size_t i = 0; i < ins.size(); ++i) {
    values_[ins[i]] = (i < frame.size() && frame.get(i)) ? 1 : 0;
  }
}

void Simulator::eval() {
  for (const SignalId id : topo_) {
    const Gate& g = nl_.gate(id);
    switch (g.op) {
      case Op::kConst0:
        values_[id] = 0;
        break;
      case Op::kConst1:
        values_[id] = 1;
        break;
      case Op::kInput:
      case Op::kDff:
        break;  // externally driven / state
      case Op::kBuf:
        values_[id] = values_[g.fanin[0]];
        break;
      case Op::kNot:
        values_[id] = values_[g.fanin[0]] ^ 1u;
        break;
      case Op::kAnd:
        values_[id] = values_[g.fanin[0]] & values_[g.fanin[1]];
        break;
      case Op::kOr:
        values_[id] = values_[g.fanin[0]] | values_[g.fanin[1]];
        break;
      case Op::kXor:
        values_[id] = values_[g.fanin[0]] ^ values_[g.fanin[1]];
        break;
      case Op::kXnor:
        values_[id] = (values_[g.fanin[0]] ^ values_[g.fanin[1]]) ^ 1u;
        break;
      case Op::kNand:
        values_[id] = (values_[g.fanin[0]] & values_[g.fanin[1]]) ^ 1u;
        break;
      case Op::kNor:
        values_[id] = (values_[g.fanin[0]] | values_[g.fanin[1]]) ^ 1u;
        break;
      case Op::kMux:
        values_[id] = values_[g.fanin[0]] != 0 ? values_[g.fanin[1]]
                                               : values_[g.fanin[2]];
        break;
    }
  }
}

void Simulator::step() {
  eval();
  // Latch every DFF from its data input simultaneously.
  std::vector<std::uint8_t> next(nl_.dffs().size());
  for (std::size_t i = 0; i < nl_.dffs().size(); ++i) {
    const Gate& g = nl_.gate(nl_.dffs()[i]);
    if (g.fanin[0] == kNullSignal) {
      throw std::runtime_error("step: DFF with unconnected input");
    }
    next[i] = values_[g.fanin[0]];
  }
  for (std::size_t i = 0; i < nl_.dffs().size(); ++i) {
    values_[nl_.dffs()[i]] = next[i];
  }
  eval();
}

std::uint64_t Simulator::read_word(const Word& word) const {
  std::uint64_t out = 0;
  for (std::size_t i = 0; i < word.size() && i < 64; ++i) {
    out |= static_cast<std::uint64_t>(values_[word[i]]) << i;
  }
  return out;
}

util::BitVec Simulator::read_bits(const Word& word) const {
  util::BitVec out(word.size());
  for (std::size_t i = 0; i < word.size(); ++i) {
    out.set(i, values_[word[i]] != 0);
  }
  return out;
}

std::uint64_t Simulator::read_register(const std::string& name) const {
  return read_word(nl_.find_register(name).dffs);
}

util::BitVec Simulator::read_register_bits(const std::string& name) const {
  return read_bits(nl_.find_register(name).dffs);
}

std::uint64_t Simulator::read_output(const std::string& name) const {
  return read_word(nl_.output_port(name).bits);
}

std::vector<util::BitVec> replay_register(const Netlist& nl,
                                          const Witness& witness,
                                          const std::string& reg) {
  Simulator simulator(nl);
  const auto& dffs = nl.find_register(reg).dffs;
  std::vector<util::BitVec> trace;
  trace.reserve(witness.frames.size());
  for (const auto& frame : witness.frames) {
    simulator.set_inputs(frame.bits);
    simulator.step();
    trace.push_back(simulator.read_bits(dffs));
  }
  return trace;
}

}  // namespace trojanscout::sim
