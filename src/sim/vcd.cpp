#include "sim/vcd.hpp"

#include <cstdio>
#include <memory>
#include <vector>

#include "sim/simulator.hpp"

namespace trojanscout::sim {

namespace {

// VCD identifier codes: printable ASCII starting at '!'.
std::string vcd_id(std::size_t index) {
  std::string id;
  do {
    id.push_back(static_cast<char>('!' + index % 94));
    index /= 94;
  } while (index != 0);
  return id;
}

struct TracedWord {
  std::string name;
  netlist::Word bits;
  std::string id;
};

}  // namespace

bool write_witness_vcd(const netlist::Netlist& nl, const Witness& witness,
                       const std::string& path) {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> f(
      std::fopen(path.c_str(), "w"), &std::fclose);
  if (!f) return false;

  std::vector<TracedWord> traced;
  for (const auto& p : nl.input_ports()) {
    traced.push_back({"in_" + p.name, p.bits, vcd_id(traced.size())});
  }
  for (const auto& p : nl.output_ports()) {
    traced.push_back({"out_" + p.name, p.bits, vcd_id(traced.size())});
  }
  for (const auto& r : nl.registers()) {
    std::string safe = r.name;
    for (auto& c : safe) {
      if (c == '[' || c == ']' || c == ' ') c = '_';
    }
    traced.push_back({"reg_" + safe, r.dffs, vcd_id(traced.size())});
  }

  std::fprintf(f.get(), "$date trojanscout witness $end\n");
  std::fprintf(f.get(), "$timescale 1ns $end\n");
  std::fprintf(f.get(), "$scope module dut $end\n");
  for (const auto& t : traced) {
    std::fprintf(f.get(), "$var wire %zu %s %s $end\n", t.bits.size(),
                 t.id.c_str(), t.name.c_str());
  }
  std::fprintf(f.get(), "$upscope $end\n$enddefinitions $end\n");

  Simulator simulator(nl);
  std::vector<std::string> last(traced.size());
  for (std::size_t t = 0; t < witness.frames.size(); ++t) {
    simulator.set_inputs(witness.frames[t].bits);
    simulator.eval();
    std::fprintf(f.get(), "#%zu\n", t * 10);
    for (std::size_t w = 0; w < traced.size(); ++w) {
      std::string value = "b";
      for (std::size_t i = traced[w].bits.size(); i-- > 0;) {
        value.push_back(simulator.value(traced[w].bits[i]) ? '1' : '0');
      }
      if (value != last[w]) {
        std::fprintf(f.get(), "%s %s\n", value.c_str(), traced[w].id.c_str());
        last[w] = value;
      }
    }
    simulator.step();
  }
  std::fprintf(f.get(), "#%zu\n", witness.frames.size() * 10);
  return true;
}

}  // namespace trojanscout::sim
