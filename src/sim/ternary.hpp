// Three-valued logic (0 / 1 / X) shared by the ternary simulator and the
// sequential ATPG engine. X models unknown values: unassigned primary inputs
// during PODEM search and uninitialized state.
#pragma once

#include <cstdint>

namespace trojanscout::sim {

enum class Ternary : std::uint8_t {
  kZero = 0,
  kOne = 1,
  kX = 2,
};

inline Ternary t_from_bool(bool b) { return b ? Ternary::kOne : Ternary::kZero; }

inline bool t_is_known(Ternary t) { return t != Ternary::kX; }

inline Ternary t_not(Ternary a) {
  if (a == Ternary::kX) return Ternary::kX;
  return a == Ternary::kZero ? Ternary::kOne : Ternary::kZero;
}

inline Ternary t_and(Ternary a, Ternary b) {
  if (a == Ternary::kZero || b == Ternary::kZero) return Ternary::kZero;
  if (a == Ternary::kOne && b == Ternary::kOne) return Ternary::kOne;
  return Ternary::kX;
}

inline Ternary t_or(Ternary a, Ternary b) {
  if (a == Ternary::kOne || b == Ternary::kOne) return Ternary::kOne;
  if (a == Ternary::kZero && b == Ternary::kZero) return Ternary::kZero;
  return Ternary::kX;
}

inline Ternary t_xor(Ternary a, Ternary b) {
  if (a == Ternary::kX || b == Ternary::kX) return Ternary::kX;
  return a == b ? Ternary::kZero : Ternary::kOne;
}

inline Ternary t_mux(Ternary sel, Ternary t, Ternary f) {
  if (sel == Ternary::kOne) return t;
  if (sel == Ternary::kZero) return f;
  // Unknown select: known only if both branches agree.
  return t == f ? t : Ternary::kX;
}

inline char t_char(Ternary t) {
  switch (t) {
    case Ternary::kZero: return '0';
    case Ternary::kOne: return '1';
    case Ternary::kX: return 'x';
  }
  return '?';
}

}  // namespace trojanscout::sim
