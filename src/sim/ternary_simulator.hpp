// Three-valued (0/1/X) cycle simulator.
//
// Models unknown inputs and uninitialized state; used to unit-test the
// ternary evaluation shared with the ATPG engine and to sanity-check
// X-propagation through the design cores.
#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/ternary.hpp"

namespace trojanscout::sim {

class TernarySimulator {
 public:
  explicit TernarySimulator(const netlist::Netlist& nl);

  /// All DFFs to reset values, inputs to X.
  void reset();

  /// All DFFs to X (power-up without reset), inputs to X.
  void reset_to_x();

  void set_input(netlist::SignalId input, Ternary value);
  void set_input_port(const std::string& name, std::uint64_t value);
  void set_input_port_x(const std::string& name);

  void eval();
  void step();

  [[nodiscard]] Ternary value(netlist::SignalId id) const {
    return values_[id];
  }

  /// Reads a word as a string of '0'/'1'/'x', MSB first.
  [[nodiscard]] std::string read_word_string(const netlist::Word& word) const;

 private:
  const netlist::Netlist& nl_;
  std::vector<netlist::SignalId> topo_;
  std::vector<Ternary> values_;
};

}  // namespace trojanscout::sim
