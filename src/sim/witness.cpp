#include "sim/witness.hpp"

#include <sstream>

namespace trojanscout::sim {

std::uint64_t Witness::port_value(const netlist::Netlist& nl,
                                  const std::string& port,
                                  std::size_t t) const {
  return port_bits(nl, port, t).to_uint();
}

util::BitVec Witness::port_bits(const netlist::Netlist& nl,
                                const std::string& port,
                                std::size_t t) const {
  const auto& p = nl.input_port(port);
  util::BitVec out(p.bits.size());
  for (std::size_t i = 0; i < p.bits.size(); ++i) {
    const std::size_t idx = nl.input_index(p.bits[i]);
    if (idx < frames[t].bits.size()) {
      out.set(i, frames[t].bits.get(idx));
    }
  }
  return out;
}

std::string Witness::to_string(const netlist::Netlist& nl,
                               std::size_t max_frames) const {
  std::ostringstream os;
  os << "witness of length " << frames.size() << ", violation at cycle "
     << violation_frame << "\n";
  const std::size_t shown = std::min(max_frames, frames.size());
  for (std::size_t t = 0; t < shown; ++t) {
    os << "  cycle " << t << ":";
    for (const auto& port : nl.input_ports()) {
      os << " " << port.name << "=0x" << port_bits(nl, port.name, t).to_hex_string();
    }
    os << "\n";
  }
  if (shown < frames.size()) {
    os << "  ... (" << frames.size() - shown << " more cycles)\n";
  }
  return os.str();
}

}  // namespace trojanscout::sim
