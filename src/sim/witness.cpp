#include "sim/witness.hpp"

#include <sstream>

#include "sim/simulator.hpp"

namespace trojanscout::sim {

std::uint64_t Witness::port_value(const netlist::Netlist& nl,
                                  const std::string& port,
                                  std::size_t t) const {
  return port_bits(nl, port, t).to_uint();
}

util::BitVec Witness::port_bits(const netlist::Netlist& nl,
                                const std::string& port,
                                std::size_t t) const {
  const auto& p = nl.input_port(port);
  util::BitVec out(p.bits.size());
  for (std::size_t i = 0; i < p.bits.size(); ++i) {
    const std::size_t idx = nl.input_index(p.bits[i]);
    if (idx < frames[t].bits.size()) {
      out.set(i, frames[t].bits.get(idx));
    }
  }
  return out;
}

std::string Witness::to_string(const netlist::Netlist& nl,
                               std::size_t max_frames) const {
  std::ostringstream os;
  os << "witness of length " << frames.size() << ", violation at cycle "
     << violation_frame << "\n";
  const std::size_t shown = std::min(max_frames, frames.size());
  for (std::size_t t = 0; t < shown; ++t) {
    os << "  cycle " << t << ":";
    for (const auto& port : nl.input_ports()) {
      os << " " << port.name << "=0x" << port_bits(nl, port.name, t).to_hex_string();
    }
    os << "\n";
  }
  if (shown < frames.size()) {
    os << "  ... (" << frames.size() - shown << " more cycles)\n";
  }
  return os.str();
}

ReplayVerdict replay_confirms(const netlist::Netlist& nl,
                              netlist::SignalId bad, const Witness& witness) {
  ReplayVerdict verdict;
  if (witness.violation_frame >= witness.length()) {
    verdict.detail = "violation frame " +
                     std::to_string(witness.violation_frame) +
                     " outside witness of length " +
                     std::to_string(witness.length());
    return verdict;
  }
  verdict.minimal = true;
  Simulator simulator(nl);
  simulator.reset();
  for (std::size_t t = 0; t <= witness.violation_frame; ++t) {
    simulator.set_inputs(witness.frames[t].bits);
    simulator.eval();
    if (t == witness.violation_frame) {
      verdict.confirmed = simulator.value(bad);
      if (!verdict.confirmed) {
        verdict.detail =
            "bad signal silent at claimed violation cycle " + std::to_string(t);
      }
    } else {
      if (simulator.value(bad)) {
        verdict.minimal = false;
        if (verdict.detail.empty()) {
          verdict.detail = "bad signal fired early at cycle " +
                           std::to_string(t) + " (violation claimed at " +
                           std::to_string(witness.violation_frame) + ")";
        }
      }
      simulator.step();
    }
  }
  return verdict;
}

}  // namespace trojanscout::sim
