// Counterexample (witness) representation shared by the BMC and ATPG back
// ends, matching the paper's notion of a Trojan trigger: "a sequence of
// inputs which violates the property" (Section 1.3).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "util/bitvec.hpp"

namespace trojanscout::sim {

/// One frame of primary-input values, indexed by Netlist::inputs() order.
struct InputFrame {
  util::BitVec bits;
};

/// A witness is an input sequence i_1 ... i_T; the property is violated at
/// clock cycle `violation_frame` (0-based).
struct Witness {
  std::vector<InputFrame> frames;
  std::size_t violation_frame = 0;

  [[nodiscard]] std::size_t length() const { return frames.size(); }

  /// Reads the value assigned to a named input port at frame t.
  [[nodiscard]] std::uint64_t port_value(const netlist::Netlist& nl,
                                         const std::string& port,
                                         std::size_t t) const;

  /// Reads the value assigned to a named input port as a BitVec (any width).
  [[nodiscard]] util::BitVec port_bits(const netlist::Netlist& nl,
                                       const std::string& port,
                                       std::size_t t) const;

  /// Human-readable multi-line dump of the input ports per frame.
  [[nodiscard]] std::string to_string(const netlist::Netlist& nl,
                                      std::size_t max_frames = 16) const;
};

/// Outcome of re-simulating a witness against the monitor it was found on.
struct ReplayVerdict {
  /// The bad signal was 1 at the claimed violation cycle.
  bool confirmed = false;
  /// The bad signal was silent at every earlier cycle. BMC witnesses must
  /// be minimal (each earlier frame was proven UNSAT); ATPG witnesses need
  /// not be (its search may land on a non-first firing).
  bool minimal = false;
  /// Diagnostic when not confirmed / not minimal (empty otherwise).
  std::string detail;
};

/// Replays `witness` from reset on `nl` with the cycle-accurate simulator
/// and reports whether `bad` actually fires at the claimed violation cycle.
/// The bad signal is combinational in cycle t (it reads the DFF data
/// inputs, i.e. the next state), so it is sampled after eval() with frame
/// t's inputs applied and before the clock edge.
///
/// This is the concrete half of the certificate trust argument: a SAT
/// answer from either engine is accepted only when the independent
/// simulator confirms the trigger sequence (see proof::check_certificate).
ReplayVerdict replay_confirms(const netlist::Netlist& nl,
                              netlist::SignalId bad, const Witness& witness);

}  // namespace trojanscout::sim
