// Two-valued cycle-accurate netlist simulator.
//
// Used for: validating witnesses produced by BMC/ATPG (replaying the trigger
// sequence and observing the corrupted register), driving the VeriTrust
// functional-stimulus analysis, and unit-testing the design cores against
// software reference models.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/witness.hpp"
#include "util/bitvec.hpp"

namespace trojanscout::sim {

class Simulator {
 public:
  explicit Simulator(const netlist::Netlist& nl);

  /// Returns all DFFs to their reset values and clears inputs to 0.
  void reset();

  /// Drives one primary-input bit (by signal id).
  void set_input(netlist::SignalId input, bool value);

  /// Drives a named input port with the low bits of `value`.
  void set_input_port(const std::string& name, std::uint64_t value);

  /// Drives a named input port from a BitVec.
  void set_input_port(const std::string& name, const util::BitVec& value);

  /// Drives all inputs at once from a frame (Netlist::inputs() order).
  void set_inputs(const util::BitVec& frame);

  /// Re-evaluates combinational logic with current inputs/state.
  void eval();

  /// eval() then advance all DFFs one clock edge.
  void step();

  /// Current value of any signal (valid after eval()/step()).
  [[nodiscard]] bool value(netlist::SignalId id) const {
    return values_[id] != 0;
  }

  /// Reads a word (e.g. an output port's bits or a register's DFFs).
  [[nodiscard]] std::uint64_t read_word(const netlist::Word& word) const;
  [[nodiscard]] util::BitVec read_bits(const netlist::Word& word) const;

  /// Reads a named register / output port.
  [[nodiscard]] std::uint64_t read_register(const std::string& name) const;
  [[nodiscard]] util::BitVec read_register_bits(const std::string& name) const;
  [[nodiscard]] std::uint64_t read_output(const std::string& name) const;

  [[nodiscard]] const netlist::Netlist& netlist() const { return nl_; }

 private:
  const netlist::Netlist& nl_;
  std::vector<netlist::SignalId> topo_;
  std::vector<std::uint8_t> values_;
};

/// Replays a witness from reset and returns the value of `reg` *after* each
/// cycle (result[t] = register value after applying witness frame t).
std::vector<util::BitVec> replay_register(const netlist::Netlist& nl,
                                          const Witness& witness,
                                          const std::string& reg);

}  // namespace trojanscout::sim
