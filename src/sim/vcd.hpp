// VCD (Value Change Dump) writer for witness replays, so counterexamples
// produced by the detector can be inspected in any waveform viewer.
#pragma once

#include <string>

#include "netlist/netlist.hpp"
#include "sim/witness.hpp"

namespace trojanscout::sim {

/// Replays `witness` on `nl` and writes a VCD trace of all input ports,
/// output ports, and named registers to `path`.
/// Returns false if the file could not be opened.
bool write_witness_vcd(const netlist::Netlist& nl, const Witness& witness,
                       const std::string& path);

}  // namespace trojanscout::sim
