#include "netlist/wordops.hpp"

#include <stdexcept>

namespace trojanscout::netlist {

namespace {
void require_same_width(const Word& a, const Word& b, const char* what) {
  if (a.size() != b.size()) {
    throw std::invalid_argument(std::string(what) + ": width mismatch (" +
                                std::to_string(a.size()) + " vs " +
                                std::to_string(b.size()) + ")");
  }
}
}  // namespace

Word w_const(Netlist& nl, std::uint64_t value, std::size_t width) {
  Word out(width);
  for (std::size_t i = 0; i < width; ++i) {
    out[i] = nl.b_const(i < 64 && ((value >> i) & 1u));
  }
  return out;
}

Word w_resize(Netlist& nl, const Word& a, std::size_t width) {
  Word out(width, nl.const0());
  for (std::size_t i = 0; i < width && i < a.size(); ++i) out[i] = a[i];
  return out;
}

Word w_slice(const Word& a, std::size_t lo, std::size_t width) {
  if (lo + width > a.size()) {
    throw std::out_of_range("w_slice: slice out of range");
  }
  return Word(a.begin() + static_cast<std::ptrdiff_t>(lo),
              a.begin() + static_cast<std::ptrdiff_t>(lo + width));
}

Word w_concat(const Word& lo, const Word& hi) {
  Word out = lo;
  out.insert(out.end(), hi.begin(), hi.end());
  return out;
}

Word w_splat(SignalId bit, std::size_t width) { return Word(width, bit); }

Word w_not(Netlist& nl, const Word& a) {
  Word out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = nl.b_not(a[i]);
  return out;
}

Word w_and(Netlist& nl, const Word& a, const Word& b) {
  require_same_width(a, b, "w_and");
  Word out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = nl.b_and(a[i], b[i]);
  return out;
}

Word w_or(Netlist& nl, const Word& a, const Word& b) {
  require_same_width(a, b, "w_or");
  Word out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = nl.b_or(a[i], b[i]);
  return out;
}

Word w_xor(Netlist& nl, const Word& a, const Word& b) {
  require_same_width(a, b, "w_xor");
  Word out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = nl.b_xor(a[i], b[i]);
  return out;
}

Word w_mux(Netlist& nl, SignalId sel, const Word& t, const Word& f) {
  require_same_width(t, f, "w_mux");
  Word out(t.size());
  for (std::size_t i = 0; i < t.size(); ++i) {
    out[i] = nl.b_mux(sel, t[i], f[i]);
  }
  return out;
}

SignalId w_reduce_or(Netlist& nl, const Word& a) {
  SignalId acc = nl.const0();
  for (const SignalId s : a) acc = nl.b_or(acc, s);
  return acc;
}

SignalId w_reduce_and(Netlist& nl, const Word& a) {
  SignalId acc = nl.const1();
  for (const SignalId s : a) acc = nl.b_and(acc, s);
  return acc;
}

SignalId w_eq(Netlist& nl, const Word& a, const Word& b) {
  require_same_width(a, b, "w_eq");
  SignalId acc = nl.const1();
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc = nl.b_and(acc, nl.b_xnor(a[i], b[i]));
  }
  return acc;
}

SignalId w_eq_const(Netlist& nl, const Word& a, std::uint64_t value) {
  return w_eq(nl, a, w_const(nl, value, a.size()));
}

SignalId w_ult(Netlist& nl, const Word& a, const Word& b) {
  require_same_width(a, b, "w_ult");
  // lt_i = (~a_i & b_i) | (a_i==b_i) & lt_{i-1}, scanning from LSB; the MSB
  // result dominates.
  SignalId lt = nl.const0();
  for (std::size_t i = 0; i < a.size(); ++i) {
    const SignalId bit_lt = nl.b_and(nl.b_not(a[i]), b[i]);
    const SignalId bit_eq = nl.b_xnor(a[i], b[i]);
    lt = nl.b_or(bit_lt, nl.b_and(bit_eq, lt));
  }
  return lt;
}

SignalId w_in_range(Netlist& nl, const Word& a, std::uint64_t lo,
                    std::uint64_t hi) {
  const SignalId below_lo =
      lo == 0 ? nl.const0() : w_ult(nl, a, w_const(nl, lo, a.size()));
  const SignalId above_hi = w_ult(nl, w_const(nl, hi, a.size()), a);
  return nl.b_and(nl.b_not(below_lo), nl.b_not(above_hi));
}

Word w_add(Netlist& nl, const Word& a_in, const Word& b_in,
           SignalId carry_in) {
  const std::size_t width = std::max(a_in.size(), b_in.size());
  const Word a = w_resize(nl, a_in, width);
  const Word b = w_resize(nl, b_in, width);
  SignalId carry = carry_in == kNullSignal ? nl.const0() : carry_in;
  Word out(width);
  for (std::size_t i = 0; i < width; ++i) {
    const SignalId axb = nl.b_xor(a[i], b[i]);
    out[i] = nl.b_xor(axb, carry);
    carry = nl.b_or(nl.b_and(a[i], b[i]), nl.b_and(axb, carry));
  }
  return out;
}

Word w_sub(Netlist& nl, const Word& a, const Word& b) {
  return w_add(nl, a, w_not(nl, w_resize(nl, b, a.size())), nl.const1());
}

Word w_add_const(Netlist& nl, const Word& a, std::uint64_t value) {
  return w_add(nl, a, w_const(nl, value, a.size()));
}

Word w_inc(Netlist& nl, const Word& a) { return w_add_const(nl, a, 1); }

Word w_dec(Netlist& nl, const Word& a) {
  return w_sub(nl, a, w_const(nl, 1, a.size()));
}

Word w_case(Netlist& nl, const std::vector<CaseEntry>& entries,
            const Word& fallback) {
  Word out = fallback;
  for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
    out = w_mux(nl, it->cond, it->value, out);
  }
  return out;
}

Word w_decode(Netlist& nl, const Word& a, std::size_t outputs) {
  Word out(outputs);
  for (std::size_t i = 0; i < outputs; ++i) {
    out[i] = w_eq_const(nl, a, i);
  }
  return out;
}

Word w_select_tree(Netlist& nl, const Word& index,
                   const std::vector<Word>& options) {
  if (options.empty()) {
    throw std::invalid_argument("w_select_tree: no options");
  }
  const std::size_t width = options.front().size();
  for (const auto& option : options) {
    if (option.size() != width) {
      throw std::invalid_argument("w_select_tree: option width mismatch");
    }
  }
  std::vector<Word> level = options;
  level.resize(std::size_t{1} << index.size(), w_const(nl, 0, width));
  for (std::size_t bit = 0; bit < index.size(); ++bit) {
    std::vector<Word> next(level.size() / 2);
    for (std::size_t i = 0; i < next.size(); ++i) {
      next[i] = w_mux(nl, index[bit], level[2 * i + 1], level[2 * i]);
    }
    level = std::move(next);
  }
  return level.front();
}

Word w_make_register(Netlist& nl, const std::string& name, std::size_t width,
                     std::uint64_t reset_value) {
  Word dffs(width);
  for (std::size_t i = 0; i < width; ++i) {
    dffs[i] = nl.add_dff(i < 64 && ((reset_value >> i) & 1u));
    nl.set_name(dffs[i], name + "[" + std::to_string(i) + "]");
  }
  nl.add_register(name, dffs);
  return dffs;
}

void w_connect(Netlist& nl, const Word& dffs, const Word& next) {
  require_same_width(dffs, next, "w_connect");
  for (std::size_t i = 0; i < dffs.size(); ++i) {
    nl.connect_dff_input(dffs[i], next[i]);
  }
}

RamPorts w_ram(Netlist& nl, const std::string& name, std::size_t depth,
               std::size_t width, const Word& read_addr,
               const Word& write_addr, const Word& write_data,
               SignalId write_en) {
  if (write_data.size() != width) {
    throw std::invalid_argument("w_ram: write_data width mismatch");
  }
  const Word write_sel = w_decode(nl, write_addr, depth);
  const Word read_sel = w_decode(nl, read_addr, depth);

  Word read_data = w_const(nl, 0, width);
  for (std::size_t entry = 0; entry < depth; ++entry) {
    Word cell(width);
    for (std::size_t b = 0; b < width; ++b) {
      cell[b] = nl.add_dff(false);
      nl.set_name(cell[b], name + "[" + std::to_string(entry) + "][" +
                               std::to_string(b) + "]");
    }
    nl.add_register(name + "[" + std::to_string(entry) + "]", cell);
    const SignalId we = nl.b_and(write_en, write_sel[entry]);
    w_connect(nl, cell, w_mux(nl, we, write_data, cell));
    read_data = w_mux(nl, read_sel[entry], cell, read_data);
  }
  return RamPorts{read_data};
}

Word w_counter(Netlist& nl, const std::string& name, std::size_t width,
               SignalId enable) {
  const Word count = w_make_register(nl, name, width, 0);
  w_connect(nl, count, w_mux(nl, enable, w_inc(nl, count), count));
  return count;
}

}  // namespace trojanscout::netlist
