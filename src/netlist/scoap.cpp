#include "netlist/scoap.hpp"

#include <algorithm>

namespace trojanscout::netlist {

namespace {

std::uint32_t sat_add(std::uint32_t a, std::uint32_t b) {
  const std::uint64_t sum = static_cast<std::uint64_t>(a) + b;
  return sum > Scoap::kInfinity ? Scoap::kInfinity
                                : static_cast<std::uint32_t>(sum);
}

}  // namespace

Scoap compute_scoap(const Netlist& nl, int iterations) {
  Scoap scoap;
  scoap.cc0.assign(nl.size(), Scoap::kInfinity);
  scoap.cc1.assign(nl.size(), Scoap::kInfinity);

  const auto topo = nl.topo_order();

  for (int round = 0; round < iterations; ++round) {
    bool changed = false;
    auto update = [&](SignalId id, std::uint32_t v0, std::uint32_t v1) {
      if (v0 < scoap.cc0[id]) {
        scoap.cc0[id] = v0;
        changed = true;
      }
      if (v1 < scoap.cc1[id]) {
        scoap.cc1[id] = v1;
        changed = true;
      }
    };

    for (const SignalId id : topo) {
      const Gate& g = nl.gate(id);
      auto c0 = [&](int k) { return scoap.cc0[g.fanin[k]]; };
      auto c1 = [&](int k) { return scoap.cc1[g.fanin[k]]; };
      switch (g.op) {
        case Op::kConst0:
          update(id, 0, Scoap::kInfinity);
          break;
        case Op::kConst1:
          update(id, Scoap::kInfinity, 0);
          break;
        case Op::kInput:
          update(id, 1, 1);
          break;
        case Op::kBuf:
          update(id, c0(0), c1(0));
          break;
        case Op::kNot:
          update(id, c1(0), c0(0));
          break;
        case Op::kAnd:
          update(id, sat_add(std::min(c0(0), c0(1)), 1),
                 sat_add(sat_add(c1(0), c1(1)), 1));
          break;
        case Op::kNand:
          update(id, sat_add(sat_add(c1(0), c1(1)), 1),
                 sat_add(std::min(c0(0), c0(1)), 1));
          break;
        case Op::kOr:
          update(id, sat_add(sat_add(c0(0), c0(1)), 1),
                 sat_add(std::min(c1(0), c1(1)), 1));
          break;
        case Op::kNor:
          update(id, sat_add(std::min(c1(0), c1(1)), 1),
                 sat_add(sat_add(c0(0), c0(1)), 1));
          break;
        case Op::kXor: {
          const std::uint32_t to0 =
              std::min(sat_add(c0(0), c0(1)), sat_add(c1(0), c1(1)));
          const std::uint32_t to1 =
              std::min(sat_add(c0(0), c1(1)), sat_add(c1(0), c0(1)));
          update(id, sat_add(to0, 1), sat_add(to1, 1));
          break;
        }
        case Op::kXnor: {
          const std::uint32_t to1 =
              std::min(sat_add(c0(0), c0(1)), sat_add(c1(0), c1(1)));
          const std::uint32_t to0 =
              std::min(sat_add(c0(0), c1(1)), sat_add(c1(0), c0(1)));
          update(id, sat_add(to0, 1), sat_add(to1, 1));
          break;
        }
        case Op::kMux: {
          // sel ? t : f. Output 0 via (sel=1, t=0) or (sel=0, f=0).
          const std::uint32_t sel0 = scoap.cc0[g.fanin[0]];
          const std::uint32_t sel1 = scoap.cc1[g.fanin[0]];
          const std::uint32_t to0 = std::min(sat_add(sel1, scoap.cc0[g.fanin[1]]),
                                             sat_add(sel0, scoap.cc0[g.fanin[2]]));
          const std::uint32_t to1 = std::min(sat_add(sel1, scoap.cc1[g.fanin[1]]),
                                             sat_add(sel0, scoap.cc1[g.fanin[2]]));
          update(id, sat_add(to0, 1), sat_add(to1, 1));
          break;
        }
        case Op::kDff: {
          // Sequential: controllable via the data input one cycle earlier,
          // or for the reset value, for free at power-up.
          const SignalId d = g.fanin[0];
          std::uint32_t to0 = g.init ? Scoap::kInfinity : 0;
          std::uint32_t to1 = g.init ? 0 : Scoap::kInfinity;
          if (d != kNullSignal) {
            to0 = std::min(to0, sat_add(scoap.cc0[d], 1));
            to1 = std::min(to1, sat_add(scoap.cc1[d], 1));
          }
          update(id, to0, to1);
          break;
        }
      }
    }
    if (!changed) break;
  }
  return scoap;
}

}  // namespace trojanscout::netlist
