// Netlist cloning with read-substitution — the mechanism behind the bypass
// miter (Eq. 4) and the attack-injection transformers (Section 4 attacks).
//
// clone_netlist copies every gate of `src` into `dst` and returns the
// src-id -> dst-id map. Options:
//  * shared_inputs: reuse an existing clone's primary-input mapping so two
//    copies of a design are driven by the same inputs (miter construction);
//    when null, fresh inputs (and src's input ports) are created in dst.
//  * read_overrides: whenever a cloned gate *reads* src signal s, it reads
//    read_overrides[s] (a dst-domain signal) instead. This is how the miter
//    substitutes the critical register's value in one copy.
//  * prefix: prepended to register and output-port names to keep them
//    unique across copies.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "netlist/netlist.hpp"

namespace trojanscout::netlist {

using SignalMap = std::vector<SignalId>;

struct CloneOptions {
  std::string prefix;
  const SignalMap* shared_inputs = nullptr;
  std::unordered_map<SignalId, SignalId> read_overrides;
  /// Register output ports / registers in dst (disable for throwaway copies).
  bool register_ports = true;
};

SignalMap clone_netlist(const Netlist& src, Netlist& dst,
                        const CloneOptions& options);

/// Maps a src-domain word through a clone map.
Word map_word(const SignalMap& map, const Word& word);

}  // namespace trojanscout::netlist
