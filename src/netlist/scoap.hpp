// SCOAP-style testability analysis (Goldstein's controllability measures).
//
// CC0/CC1 approximate the effort to set a signal to 0/1. Two consumers:
//  * the sequential ATPG engine's backtrace, which prefers cheap inputs when
//    several fanins could satisfy an objective (this is the structural
//    guidance that makes ATPG fast, per the paper's footnote 3 / [28]);
//  * the Salmani-style suspicious-signal analysis referenced in the paper's
//    related work (signals that are very hard to control are Trojan-trigger
//    candidates).
//
// Sequential loops are handled by bounded fixpoint iteration with saturation.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"

namespace trojanscout::netlist {

struct Scoap {
  /// cc0[s] / cc1[s]: combinational-style controllability-to-0/1 of signal s.
  std::vector<std::uint32_t> cc0;
  std::vector<std::uint32_t> cc1;

  static constexpr std::uint32_t kInfinity = 1u << 24;
};

/// Computes controllability for every signal. `iterations` bounds the
/// sequential fixpoint rounds (DFFs propagate their data input's cost + 1).
Scoap compute_scoap(const Netlist& nl, int iterations = 8);

}  // namespace trojanscout::netlist
