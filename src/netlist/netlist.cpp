#include "netlist/netlist.hpp"

#include <algorithm>
#include <stdexcept>

namespace trojanscout::netlist {

int op_arity(Op op) {
  switch (op) {
    case Op::kConst0:
    case Op::kConst1:
    case Op::kInput:
      return 0;
    case Op::kBuf:
    case Op::kNot:
    case Op::kDff:
      return 1;
    case Op::kAnd:
    case Op::kOr:
    case Op::kXor:
    case Op::kXnor:
    case Op::kNand:
    case Op::kNor:
      return 2;
    case Op::kMux:
      return 3;
  }
  return 0;
}

const char* op_name(Op op) {
  switch (op) {
    case Op::kConst0: return "CONST0";
    case Op::kConst1: return "CONST1";
    case Op::kInput: return "INPUT";
    case Op::kBuf: return "BUF";
    case Op::kNot: return "NOT";
    case Op::kAnd: return "AND";
    case Op::kOr: return "OR";
    case Op::kXor: return "XOR";
    case Op::kXnor: return "XNOR";
    case Op::kNand: return "NAND";
    case Op::kNor: return "NOR";
    case Op::kMux: return "MUX";
    case Op::kDff: return "DFF";
  }
  return "?";
}

Netlist::Netlist() {
  // Signal 0 is constant-0, signal 1 is constant-1, by construction.
  gates_.push_back(Gate{Op::kConst0, {}, false});
  gates_.push_back(Gate{Op::kConst1, {}, false});
}

Netlist::Netlist(const Netlist& other)
    : gates_(other.gates_),
      inputs_(other.inputs_),
      dffs_(other.dffs_),
      input_ports_(other.input_ports_),
      output_ports_(other.output_ports_),
      registers_(other.registers_),
      strash_(other.strash_),
      strash_enabled_(other.strash_enabled_),
      names_(other.names_),
      input_index_(other.input_index_) {}

Netlist& Netlist::operator=(const Netlist& other) {
  if (this == &other) return *this;
  gates_ = other.gates_;
  inputs_ = other.inputs_;
  dffs_ = other.dffs_;
  input_ports_ = other.input_ports_;
  output_ports_ = other.output_ports_;
  registers_ = other.registers_;
  strash_ = other.strash_;
  strash_enabled_ = other.strash_enabled_;
  names_ = other.names_;
  input_index_ = other.input_index_;
  fanouts_.clear();
  fanouts_valid_.store(false, std::memory_order_relaxed);
  return *this;
}

Netlist::Netlist(Netlist&& other) noexcept
    : gates_(std::move(other.gates_)),
      inputs_(std::move(other.inputs_)),
      dffs_(std::move(other.dffs_)),
      input_ports_(std::move(other.input_ports_)),
      output_ports_(std::move(other.output_ports_)),
      registers_(std::move(other.registers_)),
      strash_(std::move(other.strash_)),
      strash_enabled_(other.strash_enabled_),
      names_(std::move(other.names_)),
      input_index_(std::move(other.input_index_)),
      fanouts_(std::move(other.fanouts_)) {
  fanouts_valid_.store(
      other.fanouts_valid_.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  other.fanouts_valid_.store(false, std::memory_order_relaxed);
}

Netlist& Netlist::operator=(Netlist&& other) noexcept {
  if (this == &other) return *this;
  gates_ = std::move(other.gates_);
  inputs_ = std::move(other.inputs_);
  dffs_ = std::move(other.dffs_);
  input_ports_ = std::move(other.input_ports_);
  output_ports_ = std::move(other.output_ports_);
  registers_ = std::move(other.registers_);
  strash_ = std::move(other.strash_);
  strash_enabled_ = other.strash_enabled_;
  names_ = std::move(other.names_);
  input_index_ = std::move(other.input_index_);
  fanouts_ = std::move(other.fanouts_);
  fanouts_valid_.store(
      other.fanouts_valid_.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  other.fanouts_valid_.store(false, std::memory_order_relaxed);
  return *this;
}

SignalId Netlist::add_input() {
  const SignalId id = push_gate(Op::kInput, kNullSignal);
  input_index_[id] = inputs_.size();
  inputs_.push_back(id);
  return id;
}

Word Netlist::add_input_port(const std::string& name, std::size_t width) {
  Word bits(width);
  for (std::size_t i = 0; i < width; ++i) {
    bits[i] = add_input();
    set_name(bits[i], name + "[" + std::to_string(i) + "]");
  }
  input_ports_.push_back(Port{name, bits});
  return bits;
}

void Netlist::add_output_port(const std::string& name, Word bits) {
  output_ports_.push_back(Port{name, std::move(bits)});
}

SignalId Netlist::add_dff(bool init_value) {
  const SignalId id = push_gate(Op::kDff, kNullSignal);
  gates_[id].init = init_value;
  dffs_.push_back(id);
  fanouts_valid_ = false;
  return id;
}

void Netlist::connect_dff_input(SignalId dff, SignalId d) {
  if (dff >= gates_.size() || gates_[dff].op != Op::kDff) {
    throw std::runtime_error("connect_dff_input: signal is not a DFF");
  }
  if (gates_[dff].fanin[0] != kNullSignal) {
    throw std::runtime_error("connect_dff_input: DFF already connected");
  }
  gates_[dff].fanin[0] = d;
  fanouts_valid_ = false;
}

void Netlist::rewire_dff_input(SignalId dff, SignalId d) {
  if (dff >= gates_.size() || gates_[dff].op != Op::kDff) {
    throw std::runtime_error("rewire_dff_input: signal is not a DFF");
  }
  if (gates_[dff].fanin[0] == kNullSignal) {
    throw std::runtime_error("rewire_dff_input: DFF was never connected");
  }
  gates_[dff].fanin[0] = d;
  fanouts_valid_ = false;
}

void Netlist::add_register(const std::string& name, Word dffs) {
  for (const SignalId s : dffs) {
    if (s >= gates_.size() || gates_[s].op != Op::kDff) {
      throw std::runtime_error("add_register: signal is not a DFF in " + name);
    }
  }
  registers_.push_back(Register{name, std::move(dffs)});
}

SignalId Netlist::b_buf(SignalId a) { return a; }

SignalId Netlist::b_not(SignalId a) {
  if (a == const0()) return const1();
  if (a == const1()) return const0();
  if (gates_[a].op == Op::kNot) return gates_[a].fanin[0];
  return push_gate(Op::kNot, a);
}

SignalId Netlist::b_and(SignalId a, SignalId b) {
  if (a > b) std::swap(a, b);
  if (a == const0()) return const0();
  if (a == const1()) return b;
  if (a == b) return a;
  if (gates_[b].op == Op::kNot && gates_[b].fanin[0] == a) return const0();
  if (gates_[a].op == Op::kNot && gates_[a].fanin[0] == b) return const0();
  return push_gate(Op::kAnd, a, b);
}

SignalId Netlist::b_or(SignalId a, SignalId b) {
  if (a > b) std::swap(a, b);
  if (a == const1()) return const1();
  if (a == const0()) return b;
  if (a == b) return a;
  if (gates_[b].op == Op::kNot && gates_[b].fanin[0] == a) return const1();
  if (gates_[a].op == Op::kNot && gates_[a].fanin[0] == b) return const1();
  return push_gate(Op::kOr, a, b);
}

SignalId Netlist::b_xor(SignalId a, SignalId b) {
  if (a > b) std::swap(a, b);
  if (a == b) return const0();
  if (a == const0()) return b;
  if (a == const1()) return b_not(b);
  if (gates_[b].op == Op::kNot && gates_[b].fanin[0] == a) return const1();
  return push_gate(Op::kXor, a, b);
}

SignalId Netlist::b_xnor(SignalId a, SignalId b) { return b_not(b_xor(a, b)); }

SignalId Netlist::b_nand(SignalId a, SignalId b) { return b_not(b_and(a, b)); }

SignalId Netlist::b_nor(SignalId a, SignalId b) { return b_not(b_or(a, b)); }

SignalId Netlist::b_mux(SignalId sel, SignalId t, SignalId f) {
  if (sel == const0()) return f;
  if (sel == const1()) return t;
  if (t == f) return t;
  if (t == const1() && f == const0()) return sel;
  if (t == const0() && f == const1()) return b_not(sel);
  return push_gate(Op::kMux, sel, t, f);
}

const Port& Netlist::input_port(const std::string& name) const {
  for (const auto& p : input_ports_) {
    if (p.name == name) return p;
  }
  throw std::out_of_range("no input port named " + name);
}

const Port& Netlist::output_port(const std::string& name) const {
  for (const auto& p : output_ports_) {
    if (p.name == name) return p;
  }
  throw std::out_of_range("no output port named " + name);
}

const Register& Netlist::find_register(const std::string& name) const {
  for (const auto& r : registers_) {
    if (r.name == name) return r;
  }
  throw std::out_of_range("no register named " + name);
}

bool Netlist::has_register(const std::string& name) const {
  return std::any_of(registers_.begin(), registers_.end(),
                     [&](const Register& r) { return r.name == name; });
}

void Netlist::set_name(SignalId id, const std::string& name) {
  names_[id] = name;
}

std::string Netlist::name_of(SignalId id) const {
  const auto it = names_.find(id);
  if (it != names_.end()) return it->second;
  return std::string(op_name(gates_[id].op)) + "#" + std::to_string(id);
}

std::size_t Netlist::input_index(SignalId id) const {
  const auto it = input_index_.find(id);
  return it == input_index_.end() ? static_cast<std::size_t>(-1) : it->second;
}

std::vector<SignalId> Netlist::topo_order() const {
  // Kahn's algorithm over combinational edges only (DFF data inputs are
  // sequential edges and excluded).
  std::vector<int> pending(gates_.size(), 0);
  std::vector<SignalId> order;
  order.reserve(gates_.size());

  const auto& fo = fanouts();
  std::vector<SignalId> ready;
  for (SignalId id = 0; id < gates_.size(); ++id) {
    const Gate& g = gates_[id];
    if (g.op == Op::kDff || op_arity(g.op) == 0) {
      pending[id] = 0;
      ready.push_back(id);
    } else {
      pending[id] = op_arity(g.op);
    }
  }

  while (!ready.empty()) {
    const SignalId id = ready.back();
    ready.pop_back();
    order.push_back(id);
    for (const SignalId user : fo[id]) {
      if (gates_[user].op == Op::kDff) continue;  // sequential edge
      if (--pending[user] == 0) ready.push_back(user);
    }
  }

  if (order.size() != gates_.size()) {
    throw std::runtime_error(
        "topo_order: combinational cycle or dangling fanin (" +
        std::to_string(order.size()) + "/" + std::to_string(gates_.size()) +
        " ordered)");
  }
  return order;
}

void Netlist::validate() const {
  for (SignalId id = 0; id < gates_.size(); ++id) {
    const Gate& g = gates_[id];
    const int arity = op_arity(g.op);
    for (int k = 0; k < arity; ++k) {
      if (g.fanin[k] == kNullSignal) {
        throw std::runtime_error("validate: unconnected fanin on gate " +
                                 name_of(id));
      }
      if (g.fanin[k] >= gates_.size()) {
        throw std::runtime_error("validate: out-of-range fanin on gate " +
                                 name_of(id));
      }
    }
  }
  (void)topo_order();  // throws on combinational cycles
}

std::unordered_map<Op, std::size_t> Netlist::op_histogram() const {
  std::unordered_map<Op, std::size_t> hist;
  for (const auto& g : gates_) ++hist[g.op];
  return hist;
}

std::vector<SignalId> Netlist::fanin_cone(
    const std::vector<SignalId>& roots) const {
  std::vector<bool> seen(gates_.size(), false);
  std::vector<SignalId> stack = roots;
  std::vector<SignalId> cone;
  while (!stack.empty()) {
    const SignalId id = stack.back();
    stack.pop_back();
    if (seen[id]) continue;
    seen[id] = true;
    cone.push_back(id);
    const Gate& g = gates_[id];
    if (g.op == Op::kDff) continue;  // stop at state boundary
    const int arity = op_arity(g.op);
    for (int k = 0; k < arity; ++k) {
      if (!seen[g.fanin[k]]) stack.push_back(g.fanin[k]);
    }
  }
  return cone;
}

const std::vector<std::vector<SignalId>>& Netlist::fanouts() const {
  // Double-checked build so concurrent readers of a const netlist (the
  // parallel detector's workers) serialize only on first materialization.
  if (!fanouts_valid_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(fanouts_mutex_);
    if (!fanouts_valid_.load(std::memory_order_relaxed)) {
      fanouts_.assign(gates_.size(), {});
      for (SignalId id = 0; id < gates_.size(); ++id) {
        const Gate& g = gates_[id];
        const int arity = op_arity(g.op);
        for (int k = 0; k < arity; ++k) {
          if (g.fanin[k] != kNullSignal) fanouts_[g.fanin[k]].push_back(id);
        }
      }
      fanouts_valid_.store(true, std::memory_order_release);
    }
  }
  return fanouts_;
}

void Netlist::redirect_readers(SignalId from, SignalId to,
                               SignalId reader_limit,
                               const std::vector<bool>& except) {
  for (SignalId id = 0; id < reader_limit && id < gates_.size(); ++id) {
    if (id < except.size() && except[id]) continue;
    Gate& g = gates_[id];
    const int arity = op_arity(g.op);
    for (int k = 0; k < arity; ++k) {
      if (g.fanin[k] == from) g.fanin[k] = to;
    }
  }
  for (auto& port : output_ports_) {
    for (auto& bit : port.bits) {
      if (bit == from) bit = to;
    }
  }
  // Rewritten gates no longer match their hash keys; disable folding into
  // any pre-existing gate from here on.
  strash_.clear();
  fanouts_valid_ = false;
}

SignalId Netlist::push_gate(Op op, SignalId a, SignalId b, SignalId c) {
  if (op != Op::kInput && op != Op::kDff && strash_enabled_) {
    const GateKey key{op, a, b, c};
    const auto it = strash_.find(key);
    if (it != strash_.end()) return it->second;
    const SignalId id = static_cast<SignalId>(gates_.size());
    gates_.push_back(Gate{op, {a, b, c}, false});
    strash_.emplace(key, id);
    fanouts_valid_ = false;
    return id;
  }
  const SignalId id = static_cast<SignalId>(gates_.size());
  gates_.push_back(Gate{op, {a, b, c}, false});
  fanouts_valid_ = false;
  return id;
}

}  // namespace trojanscout::netlist
