#include "netlist/coi.hpp"

namespace trojanscout::netlist {

std::vector<bool> sequential_coi(const Netlist& nl,
                                 const std::vector<SignalId>& roots) {
  std::vector<bool> in_cone(nl.size(), false);
  std::vector<SignalId> stack = roots;
  for (const SignalId root : roots) in_cone[root] = true;
  while (!stack.empty()) {
    const SignalId id = stack.back();
    stack.pop_back();
    const Gate& g = nl.gate(id);
    const int arity = op_arity(g.op);
    for (int k = 0; k < arity; ++k) {
      const SignalId f = g.fanin[k];
      if (f != kNullSignal && !in_cone[f]) {
        in_cone[f] = true;
        stack.push_back(f);
      }
    }
  }
  return in_cone;
}

}  // namespace trojanscout::netlist
