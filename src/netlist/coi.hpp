// Sequential cone-of-influence (COI) reduction.
//
// Standard model-checking preprocessing: only the logic that can influence
// the property — transitively through register data inputs — needs to be
// unrolled or simulated. For the AES benchmarks this shrinks the per-frame
// problem by an order of magnitude (the encryption datapath does not feed
// the key-register monitor), and both the BMC and ATPG back ends apply it.
#pragma once

#include <vector>

#include "netlist/netlist.hpp"

namespace trojanscout::netlist {

/// Marks every signal in the sequential transitive fanin of `roots`
/// (walking through DFF data inputs). Result is indexed by SignalId.
std::vector<bool> sequential_coi(const Netlist& nl,
                                 const std::vector<SignalId>& roots);

}  // namespace trojanscout::netlist
