// Word-level construction helpers over the gate-level Netlist IR.
//
// All Words are LSB first. These helpers are how the design cores (MC8051,
// RISC, AES) and the property monitor circuits are written: datapath-style
// C++ that elaborates into gates, in the spirit of an RTL elaborator.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace trojanscout::netlist {

// ---- constants & shaping ---------------------------------------------------

/// Constant word from the low `width` bits of `value`.
Word w_const(Netlist& nl, std::uint64_t value, std::size_t width);

/// Zero-extends or truncates to `width`.
Word w_resize(Netlist& nl, const Word& a, std::size_t width);

/// Slice bits [lo, lo+width) of a word.
Word w_slice(const Word& a, std::size_t lo, std::size_t width);

/// Concatenation {hi, lo}: result = lo bits then hi bits (LSB first).
Word w_concat(const Word& lo, const Word& hi);

/// Replicates a single bit into a word.
Word w_splat(SignalId bit, std::size_t width);

// ---- bitwise ---------------------------------------------------------------

Word w_not(Netlist& nl, const Word& a);
Word w_and(Netlist& nl, const Word& a, const Word& b);
Word w_or(Netlist& nl, const Word& a, const Word& b);
Word w_xor(Netlist& nl, const Word& a, const Word& b);

/// Bitwise 2:1 mux with a shared select: sel ? t : f.
Word w_mux(Netlist& nl, SignalId sel, const Word& t, const Word& f);

// ---- reductions & comparisons -----------------------------------------------

SignalId w_reduce_or(Netlist& nl, const Word& a);
SignalId w_reduce_and(Netlist& nl, const Word& a);

/// a == b (widths must match).
SignalId w_eq(Netlist& nl, const Word& a, const Word& b);

/// a == constant.
SignalId w_eq_const(Netlist& nl, const Word& a, std::uint64_t value);

/// Unsigned a < b (widths must match).
SignalId w_ult(Netlist& nl, const Word& a, const Word& b);

/// Unsigned lo <= a <= hi for constant bounds.
SignalId w_in_range(Netlist& nl, const Word& a, std::uint64_t lo,
                    std::uint64_t hi);

// ---- arithmetic --------------------------------------------------------------

/// Ripple-carry a + b + carry_in, truncated to max(width(a), width(b)).
Word w_add(Netlist& nl, const Word& a, const Word& b,
           SignalId carry_in = kNullSignal);

/// a - b (two's complement, truncated).
Word w_sub(Netlist& nl, const Word& a, const Word& b);

/// a + constant.
Word w_add_const(Netlist& nl, const Word& a, std::uint64_t value);

/// a + 1 / a - 1.
Word w_inc(Netlist& nl, const Word& a);
Word w_dec(Netlist& nl, const Word& a);

// ---- structured selection -----------------------------------------------------

/// One entry of a priority case: when `cond` is the first true condition,
/// the result is `value`.
struct CaseEntry {
  SignalId cond;
  Word value;
};

/// Priority case: first matching entry wins; `fallback` if none match.
Word w_case(Netlist& nl, const std::vector<CaseEntry>& entries,
            const Word& fallback);

/// One-hot decoder: out[i] = (a == i) for i in [0, 1<<width(a)), truncated to
/// `outputs` lines.
Word w_decode(Netlist& nl, const Word& a, std::size_t outputs);

/// Balanced (Shannon) selection tree: returns options[index], extending the
/// options list with zeros up to 2^width(index). Unlike the priority chain
/// of w_case, every internal mux has healthy switching activity, which
/// matters when the selection is part of stealth-hardened logic.
Word w_select_tree(Netlist& nl, const Word& index,
                   const std::vector<Word>& options);

// ---- state -------------------------------------------------------------------

/// Creates `width` DFFs with the given per-register reset value and declares
/// them as a named register. Data inputs are connected later via w_connect.
Word w_make_register(Netlist& nl, const std::string& name, std::size_t width,
                     std::uint64_t reset_value = 0);

/// Connects each DFF in `dffs` to the corresponding bit of `next`.
void w_connect(Netlist& nl, const Word& dffs, const Word& next);

/// Synchronous RAM of `depth` words x `width` bits built from DFFs:
/// combinational read (read_data = ram[read_addr]), write on write_en.
/// Returns the read data word. `name` prefixes the per-word register names.
struct RamPorts {
  Word read_data;
};
RamPorts w_ram(Netlist& nl, const std::string& name, std::size_t depth,
               std::size_t width, const Word& read_addr, const Word& write_addr,
               const Word& write_data, SignalId write_en);

/// Free-running `width`-bit counter with synchronous enable; wraps around.
/// Returns the counter register word.
Word w_counter(Netlist& nl, const std::string& name, std::size_t width,
               SignalId enable);

}  // namespace trojanscout::netlist
