#include "netlist/clone.hpp"

#include <stdexcept>

namespace trojanscout::netlist {

SignalMap clone_netlist(const Netlist& src, Netlist& dst,
                        const CloneOptions& options) {
  SignalMap map(src.size(), kNullSignal);
  map[src.const0()] = dst.const0();
  map[src.const1()] = dst.const1();

  // Pass 1a: inputs (shared or fresh).
  if (options.shared_inputs != nullptr) {
    for (const SignalId in : src.inputs()) {
      map[in] = (*options.shared_inputs)[in];
    }
  } else {
    // Recreate ports so names survive; raw inputs outside any port too.
    std::vector<bool> in_port(src.size(), false);
    for (const auto& port : src.input_ports()) {
      const Word bits = dst.add_input_port(port.name, port.bits.size());
      for (std::size_t i = 0; i < port.bits.size(); ++i) {
        map[port.bits[i]] = bits[i];
        in_port[port.bits[i]] = true;
      }
    }
    for (const SignalId in : src.inputs()) {
      if (!in_port[in]) map[in] = dst.add_input();
    }
  }

  // Pass 1b: DFF shells (so sequential feedback can resolve in pass 2).
  for (const SignalId dff : src.dffs()) {
    map[dff] = dst.add_dff(src.gate(dff).init);
    dst.set_name(map[dff], options.prefix + src.name_of(dff));
  }

  // Reads go through the override table.
  auto read = [&](SignalId s) -> SignalId {
    const auto it = options.read_overrides.find(s);
    const SignalId mapped = it != options.read_overrides.end() ? it->second
                                                               : map[s];
    if (mapped == kNullSignal) {
      throw std::runtime_error("clone_netlist: fanin not yet cloned: " +
                               src.name_of(s));
    }
    return mapped;
  };

  // Pass 2a: combinational gates in topological order (creation order is
  // not sufficient after structural surgery such as the attack
  // transformers' fanout redirection).
  for (const SignalId id : src.topo_order()) {
    if (map[id] != kNullSignal) continue;
    const Gate& g = src.gate(id);
    switch (g.op) {
      case Op::kConst0:
      case Op::kConst1:
      case Op::kInput:
      case Op::kDff:
        break;  // already mapped
      case Op::kBuf:
        map[id] = dst.b_buf(read(g.fanin[0]));
        break;
      case Op::kNot:
        map[id] = dst.b_not(read(g.fanin[0]));
        break;
      case Op::kAnd:
        map[id] = dst.b_and(read(g.fanin[0]), read(g.fanin[1]));
        break;
      case Op::kOr:
        map[id] = dst.b_or(read(g.fanin[0]), read(g.fanin[1]));
        break;
      case Op::kXor:
        map[id] = dst.b_xor(read(g.fanin[0]), read(g.fanin[1]));
        break;
      case Op::kXnor:
        map[id] = dst.b_xnor(read(g.fanin[0]), read(g.fanin[1]));
        break;
      case Op::kNand:
        map[id] = dst.b_nand(read(g.fanin[0]), read(g.fanin[1]));
        break;
      case Op::kNor:
        map[id] = dst.b_nor(read(g.fanin[0]), read(g.fanin[1]));
        break;
      case Op::kMux:
        map[id] = dst.b_mux(read(g.fanin[0]), read(g.fanin[1]),
                            read(g.fanin[2]));
        break;
    }
  }

  // Pass 2b: connect DFF data inputs.
  for (const SignalId dff : src.dffs()) {
    const SignalId d = src.gate(dff).fanin[0];
    if (d == kNullSignal) {
      throw std::runtime_error("clone_netlist: DFF with unconnected input");
    }
    dst.connect_dff_input(map[dff], read(d));
  }

  if (options.register_ports) {
    for (const auto& reg : src.registers()) {
      dst.add_register(options.prefix + reg.name, map_word(map, reg.dffs));
    }
    for (const auto& port : src.output_ports()) {
      // Output pads are consumers: they see the read overrides too (the
      // bypass miter forces copy B's entire view of the critical register).
      Word bits(port.bits.size());
      for (std::size_t i = 0; i < bits.size(); ++i) {
        bits[i] = read(port.bits[i]);
      }
      dst.add_output_port(options.prefix + port.name, std::move(bits));
    }
  }
  return map;
}

Word map_word(const SignalMap& map, const Word& word) {
  Word out(word.size());
  for (std::size_t i = 0; i < word.size(); ++i) {
    out[i] = map[word[i]];
    if (out[i] == kNullSignal) {
      throw std::runtime_error("map_word: signal not cloned");
    }
  }
  return out;
}

}  // namespace trojanscout::netlist
