// Gate-level netlist intermediate representation.
//
// This is the substrate every engine in trojanscout operates on: the design
// cores (MC8051 / RISC / AES), the property monitor circuits, the BMC
// unroller, the sequential ATPG engine, the simulators, and the FANCI /
// VeriTrust baselines all consume this IR.
//
// Model:
//  * A netlist is an array of gates addressed by SignalId. A gate's output
//    *is* the signal; there are no separate nets.
//  * Combinational ops: CONST0, CONST1, NOT, AND, OR, XOR, XNOR, NAND, NOR,
//    MUX(sel, t, f) = sel ? t : f, BUF.
//  * Sequential state: DFF with a reset/initial value. DFFs are created
//    before their data input is known (to allow feedback) and connected with
//    connect_dff_input(). All DFFs share one implicit clock, matching the
//    single-clock Trust-Hub cores the paper evaluates.
//  * Named multi-bit input ports, output ports, and registers (groups of
//    DFFs, LSB first) carry the architectural view the security properties
//    reference ("stack pointer", "key register", ...).
//
// Construction performs constant folding and structural hashing so that the
// word-level builder (wordops.hpp) can be used freely without blowing up the
// gate count.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace trojanscout::netlist {

using SignalId = std::uint32_t;
inline constexpr SignalId kNullSignal = 0xFFFFFFFFu;

/// A multi-bit value path, LSB first.
using Word = std::vector<SignalId>;

enum class Op : std::uint8_t {
  kConst0,
  kConst1,
  kInput,
  kBuf,
  kNot,
  kAnd,
  kOr,
  kXor,
  kXnor,
  kNand,
  kNor,
  kMux,  // fanin: {sel, t, f}
  kDff,  // fanin: {d}; init value in Gate::init
};

/// Number of fanin slots an op uses.
int op_arity(Op op);

/// Human-readable op mnemonic ("AND", "DFF", ...).
const char* op_name(Op op);

struct Gate {
  Op op = Op::kConst0;
  std::array<SignalId, 3> fanin = {kNullSignal, kNullSignal, kNullSignal};
  bool init = false;  // DFF only: value after reset
};

struct Port {
  std::string name;
  Word bits;  // LSB first
};

/// A named architectural register: a group of DFF signals, LSB first.
struct Register {
  std::string name;
  Word dffs;
};

class Netlist {
 public:
  Netlist();

  // Copies/moves transfer the logical netlist but not the lazily built
  // fanout cache (it is rebuilt on demand). Explicit because the cache's
  // guard mutex is neither copyable nor movable; not reading the mutable
  // cache fields also keeps copying a shared const netlist race-free
  // while another thread materializes its cache.
  Netlist(const Netlist& other);
  Netlist& operator=(const Netlist& other);
  Netlist(Netlist&& other) noexcept;
  Netlist& operator=(Netlist&& other) noexcept;

  // ---- construction ------------------------------------------------------

  SignalId const0() const { return 0; }
  SignalId const1() const { return 1; }

  /// Adds a raw (unnamed) primary input bit.
  SignalId add_input();

  /// Adds a named multi-bit input port; returns its bits, LSB first.
  Word add_input_port(const std::string& name, std::size_t width);

  /// Registers a named output port over existing signals (LSB first).
  void add_output_port(const std::string& name, Word bits);

  /// Creates a DFF with the given reset value; its data input is connected
  /// later with connect_dff_input (supports feedback paths).
  SignalId add_dff(bool init_value);

  /// Connects the data input of a DFF created with add_dff.
  void connect_dff_input(SignalId dff, SignalId d);

  /// Replaces the data input of an already connected DFF (attack-injection
  /// surgery: the mutation fuzzer wraps payload muxes around the golden
  /// next-state cone of a finished design). Throws if the DFF was never
  /// connected — use connect_dff_input for first-time wiring. Invalidates
  /// the fanout cache.
  void rewire_dff_input(SignalId dff, SignalId d);

  /// Declares a named register over existing DFF signals (LSB first).
  void add_register(const std::string& name, Word dffs);

  // Combinational builders. All perform constant folding and structural
  // hashing; `b_not(b_not(x))` returns x, `b_and(x, const1())` returns x, etc.
  SignalId b_buf(SignalId a);
  SignalId b_not(SignalId a);
  SignalId b_and(SignalId a, SignalId b);
  SignalId b_or(SignalId a, SignalId b);
  SignalId b_xor(SignalId a, SignalId b);
  SignalId b_xnor(SignalId a, SignalId b);
  SignalId b_nand(SignalId a, SignalId b);
  SignalId b_nor(SignalId a, SignalId b);
  SignalId b_mux(SignalId sel, SignalId t, SignalId f);

  /// Constant signal for a boolean value.
  SignalId b_const(bool value) { return value ? const1() : const0(); }

  /// Enables/disables structural hashing for subsequently built gates.
  /// Monitor circuits are built with hashing disabled so they elaborate as
  /// their own logic (the way an SVA assertion does) instead of folding
  /// into the design under verification.
  void set_strash_enabled(bool enabled) { strash_enabled_ = enabled; }
  [[nodiscard]] bool strash_enabled() const { return strash_enabled_; }

  // ---- inspection --------------------------------------------------------

  [[nodiscard]] std::size_t size() const { return gates_.size(); }
  [[nodiscard]] const Gate& gate(SignalId id) const { return gates_[id]; }

  [[nodiscard]] const std::vector<Port>& input_ports() const {
    return input_ports_;
  }
  [[nodiscard]] const std::vector<Port>& output_ports() const {
    return output_ports_;
  }
  [[nodiscard]] const std::vector<Register>& registers() const {
    return registers_;
  }

  /// Looks up a named input port, output port, or register. Throws
  /// std::out_of_range if absent.
  [[nodiscard]] const Port& input_port(const std::string& name) const;
  [[nodiscard]] const Port& output_port(const std::string& name) const;
  [[nodiscard]] const Register& find_register(const std::string& name) const;
  [[nodiscard]] bool has_register(const std::string& name) const;

  /// All DFF signal ids, in creation order.
  [[nodiscard]] const std::vector<SignalId>& dffs() const { return dffs_; }

  /// All primary input bit ids, in creation order (port bits included).
  [[nodiscard]] const std::vector<SignalId>& inputs() const { return inputs_; }

  /// Total primary input bit count.
  [[nodiscard]] std::size_t num_inputs() const { return inputs_.size(); }

  /// Optional per-signal debug names.
  void set_name(SignalId id, const std::string& name);
  [[nodiscard]] std::string name_of(SignalId id) const;

  /// Index of an input bit within inputs() order; kNullSignal-like sentinel
  /// (SIZE_MAX) if the signal is not a primary input.
  [[nodiscard]] std::size_t input_index(SignalId id) const;

  // ---- analysis ----------------------------------------------------------

  /// Combinational topological order: every gate appears after its fanins,
  /// where DFF outputs, inputs, and constants count as sources. DFF *data*
  /// inputs are not followed (they close the sequential loop).
  /// Throws std::runtime_error on a combinational cycle or dangling fanin.
  [[nodiscard]] std::vector<SignalId> topo_order() const;

  /// Validates structural invariants (all fanins connected, no combinational
  /// cycles, registers reference DFFs). Throws std::runtime_error on failure.
  void validate() const;

  /// Gate count by op.
  [[nodiscard]] std::unordered_map<Op, std::size_t> op_histogram() const;

  /// Number of gates in the combinational transitive fanin cone of `roots`,
  /// stopping at DFF outputs / inputs / constants.
  [[nodiscard]] std::vector<SignalId> fanin_cone(
      const std::vector<SignalId>& roots) const;

  /// Builds the reverse (fanout) adjacency once; subsequent structural edits
  /// invalidate it and it is rebuilt on demand. Safe to call concurrently
  /// from multiple threads on a const netlist (the build is serialized);
  /// structural edits still require exclusive access.
  [[nodiscard]] const std::vector<std::vector<SignalId>>& fanouts() const;

  // ---- structural surgery (attack-injection transformers) -----------------

  /// Rewrites every fanin reference to `from` into `to`, for gates with id
  /// < `reader_limit` that are not flagged in `except` (indexed by gate id;
  /// may be shorter than size()). Output-port bit references are rewritten
  /// as well. Invalidates the structural-hash table (later builder calls
  /// will not fold into rewritten gates) and the fanout cache.
  void redirect_readers(SignalId from, SignalId to, SignalId reader_limit,
                        const std::vector<bool>& except);

 private:
  SignalId push_gate(Op op, SignalId a, SignalId b = kNullSignal,
                     SignalId c = kNullSignal);
  std::optional<SignalId> fold(Op op, SignalId a, SignalId b, SignalId c);

  struct GateKey {
    Op op;
    SignalId a, b, c;
    bool operator==(const GateKey&) const = default;
  };
  struct GateKeyHash {
    std::size_t operator()(const GateKey& k) const {
      std::size_t h = static_cast<std::size_t>(k.op);
      h = h * 0x9e3779b97f4a7c15ull + k.a;
      h = h * 0x9e3779b97f4a7c15ull + k.b;
      h = h * 0x9e3779b97f4a7c15ull + k.c;
      return h;
    }
  };

  std::vector<Gate> gates_;
  std::vector<SignalId> inputs_;
  std::vector<SignalId> dffs_;
  std::vector<Port> input_ports_;
  std::vector<Port> output_ports_;
  std::vector<Register> registers_;
  std::unordered_map<GateKey, SignalId, GateKeyHash> strash_;
  bool strash_enabled_ = true;
  std::unordered_map<SignalId, std::string> names_;
  std::unordered_map<SignalId, std::size_t> input_index_;
  mutable std::mutex fanouts_mutex_;
  mutable std::vector<std::vector<SignalId>> fanouts_;
  mutable std::atomic<bool> fanouts_valid_{false};
};

}  // namespace trojanscout::netlist
