// Binary DRAT clause-proof emission (the solver side of the proof
// subsystem).
//
// A ProofLog attaches to a sat::Solver via the ProofListener hooks and
// records three things:
//   * the formula: every input clause exactly as the encoder emitted it,
//   * the proof: every learned clause and every deleted clause, streamed
//     in drat-trim's compact binary-DRAT format ('a'/'d' records with
//     variable-length literal encoding), and
//   * UNSAT marks: one per solve() call that concluded UNSAT, snapshotting
//     (formula size, proof size, assumptions) — the per-frame certificate
//     boundary of incremental BMC.
//
// Checking lives in proof/checker.hpp, which deliberately shares no code
// with this writer or the solver beyond sat/types.hpp.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sat/types.hpp"

namespace trojanscout::proof {

// ---- binary DRAT encoding --------------------------------------------------
//
// Record   := ('a' | 'd') Literal* 0x00
// Literal  := 7-bit little-endian varint of (var + 1) * 2 + sign
// (the format drat-trim consumes with its -i flag).

inline constexpr std::uint8_t kDratAdd = 0x61;     // 'a'
inline constexpr std::uint8_t kDratDelete = 0x64;  // 'd'

/// Appends one binary-DRAT record to `out`.
void append_drat_record(std::vector<std::uint8_t>& out, std::uint8_t tag,
                        const sat::Clause& clause);

/// One decoded proof step.
struct DratStep {
  bool is_delete = false;
  sat::Clause clause;
};

/// Decodes a binary-DRAT stream. Returns false (and sets `error`) on a
/// malformed stream: unknown tag, truncated varint, or truncated record.
bool parse_drat(const std::uint8_t* data, std::size_t size,
                std::vector<DratStep>& out_steps, std::string* error);

// ---- the solver-side recorder ---------------------------------------------

/// Proof statistics (also the bench_proof_overhead measurement surface).
struct ProofLogStats {
  std::uint64_t input_clauses = 0;
  std::uint64_t learned_records = 0;
  std::uint64_t deleted_records = 0;
  std::uint64_t proof_bytes = 0;
};

class ProofLog final : public sat::ProofListener {
 public:
  /// Snapshot taken when a solve() concluded UNSAT: the formula prefix and
  /// proof prefix that, together with `assumptions` as unit clauses, make
  /// the empty clause RUP-derivable.
  struct UnsatMark {
    std::size_t formula_clauses = 0;
    std::size_t proof_bytes = 0;
    std::vector<sat::Lit> assumptions;
  };

  void on_input(const sat::Clause& clause) override;
  void on_learn(const sat::Clause& clause) override;
  void on_delete(const sat::Clause& clause) override;
  void on_solve_unsat(const std::vector<sat::Lit>& assumptions) override;

  /// When disabled, input clauses are counted but not stored — the mode
  /// certify() runs in, since the verifier re-derives the formula from the
  /// netlist and only the clause *counts* enter the certificate. Storing
  /// is the default (derive_bmc_formula and the unit tests need contents).
  void set_record_formula(bool record) { record_formula_ = record; }

  /// Stored input clauses; empty when recording is disabled.
  [[nodiscard]] const std::vector<sat::Clause>& formula() const {
    return formula_;
  }
  /// Input clauses seen (independent of recording mode).
  [[nodiscard]] std::size_t input_clauses() const { return input_clauses_; }
  [[nodiscard]] const std::vector<std::uint8_t>& drat() const { return drat_; }
  [[nodiscard]] const std::vector<UnsatMark>& marks() const { return marks_; }
  [[nodiscard]] ProofLogStats stats() const;

 private:
  bool record_formula_ = true;
  std::size_t input_clauses_ = 0;
  std::vector<sat::Clause> formula_;
  std::vector<std::uint8_t> drat_;
  std::vector<UnsatMark> marks_;
  std::uint64_t learned_records_ = 0;
  std::uint64_t deleted_records_ = 0;
};

}  // namespace trojanscout::proof
