// Independent DRAT/DRUP proof checker.
//
// Verifies that a CNF formula is unsatisfiable given a binary-DRAT clause
// proof (see proof/drat.hpp for the format): the empty clause must be
// RUP-derivable (reverse unit propagation) at the end of the proof, and —
// via drat-trim-style *backward* checking — every lemma the empty clause's
// derivation actually depends on must itself be RUP at its position in the
// stream. Lemmas outside that dependency core are activated lazily and
// never pay for a propagation check, which is what keeps checking cheaper
// than solving on the BMC workloads (most learned clauses never feed the
// final conflict).
//
// Trust argument: this file and its .cpp share nothing with the CDCL
// solver except the literal/clause types in sat/types.hpp. A solver bug
// that produces a bogus UNSAT answer would have to be matched by an
// independent propagation bug here for a bad certificate to pass.
//
// Scope: RUP-only (DRUP). The from-scratch solver performs no
// RAT-introducing inprocessing, so every clause it logs is RUP; a proof
// that needs RAT checking is rejected rather than mis-accepted.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sat/types.hpp"

namespace trojanscout::proof {

struct CheckerStats {
  std::size_t formula_clauses = 0;
  std::size_t proof_additions = 0;
  std::size_t proof_deletions = 0;
  /// Additions in the dependency core: RUP-checked at their position.
  std::size_t checked_additions = 0;
  /// Additions outside the core: lazily skipped (never propagated over).
  std::size_t skipped_additions = 0;
  std::uint64_t propagations = 0;
};

class DratChecker {
 public:
  /// Verifies that `formula` is UNSAT via the binary-DRAT `proof`.
  /// Returns false (with a diagnostic in `error`) when the stream is
  /// malformed, a deletion names a clause not in the database, the empty
  /// clause is not RUP after the final step, or a core lemma fails its RUP
  /// check. The checker is single-use per call: check() resets all state.
  bool check(const std::vector<sat::Clause>& formula,
             const std::uint8_t* proof, std::size_t proof_size,
             std::string* error = nullptr);

  bool check(const std::vector<sat::Clause>& formula,
             const std::vector<std::uint8_t>& proof,
             std::string* error = nullptr) {
    return check(formula, proof.data(), proof.size(), error);
  }

  [[nodiscard]] const CheckerStats& stats() const { return stats_; }

 private:
  using ClauseId = std::uint32_t;
  static constexpr ClauseId kNoClause = 0xFFFFFFFFu;

  struct Watcher {
    ClauseId id;
    sat::Lit blocker;
  };

  void reset();
  void ensure_var(sat::Var v);
  ClauseId store_clause(sat::Clause clause);
  void attach(ClauseId id);

  [[nodiscard]] sat::LBool value(sat::Lit p) const {
    return assigns_[p.var()] ^ p.sign();
  }
  /// Enqueue onto the trail; returns the conflicting clause id (or the
  /// sentinel) when `p` is already falsified. `reason` is kNoClause for the
  /// negated-lemma "decisions" of a RUP check.
  ClauseId enqueue(sat::Lit p, ClauseId reason);
  ClauseId propagate();
  void undo_trail();

  /// RUP check of `clause` against the active database. When it succeeds
  /// and `mark` is set, every clause in the conflict's reason cone is
  /// marked as core.
  bool rup(const sat::Clause& clause, bool mark);
  void mark_cone(ClauseId conflict);

  CheckerStats stats_;

  std::vector<sat::Clause> clauses_;
  std::vector<std::uint8_t> active_;
  std::vector<std::uint8_t> marked_;
  std::vector<ClauseId> unit_ids_;
  std::vector<std::vector<Watcher>> watches_;  // indexed by literal index

  std::vector<sat::LBool> assigns_;
  std::vector<ClauseId> reason_;
  std::vector<std::uint8_t> seen_;
  std::vector<sat::Lit> trail_;
  std::size_t qhead_ = 0;
};

}  // namespace trojanscout::proof
