#include "proof/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace trojanscout::proof {

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

struct Parser {
  const char* p;
  const char* end;
  std::string* error;
  int depth = 0;

  bool fail(const std::string& message) {
    if (error != nullptr) *error = "json: " + message;
    return false;
  }

  void skip_ws() {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r')) {
      ++p;
    }
  }

  bool literal(const char* word) {
    const std::size_t n = std::strlen(word);
    if (static_cast<std::size_t>(end - p) < n || std::memcmp(p, word, n) != 0) {
      return fail("invalid literal");
    }
    p += n;
    return true;
  }

  bool parse_string(std::string& out) {
    ++p;  // opening quote
    while (p < end) {
      const char c = *p++;
      if (c == '"') return true;
      if (c == '\\') {
        if (p >= end) break;
        const char esc = *p++;
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'u': {
            if (end - p < 4) return fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = *p++;
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return fail("bad \\u escape");
            }
            // UTF-8 encode (no surrogate-pair handling; certificates are
            // ASCII in practice).
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            return fail("unknown escape");
        }
      } else {
        out.push_back(c);
      }
    }
    return fail("unterminated string");
  }

  bool parse_number(Json& out) {
    const char* start = p;
    if (p < end && *p == '-') ++p;
    bool is_double = false;
    while (p < end &&
           (std::isdigit(static_cast<unsigned char>(*p)) != 0 || *p == '.' ||
            *p == 'e' || *p == 'E' || *p == '+' || *p == '-')) {
      if (*p == '.' || *p == 'e' || *p == 'E') is_double = true;
      ++p;
    }
    const std::string text(start, p);
    if (text.empty() || text == "-") return fail("bad number");
    if (is_double) {
      out = Json(std::strtod(text.c_str(), nullptr));
    } else {
      out = Json(static_cast<std::int64_t>(
          std::strtoll(text.c_str(), nullptr, 10)));
    }
    return true;
  }

  bool parse_value(Json& out) {
    if (++depth > 200) return fail("nesting too deep");
    skip_ws();
    if (p >= end) return fail("unexpected end of input");
    bool ok = false;
    switch (*p) {
      case '{': {
        ++p;
        out = Json::object();
        skip_ws();
        if (p < end && *p == '}') {
          ++p;
          ok = true;
          break;
        }
        for (;;) {
          skip_ws();
          if (p >= end || *p != '"') return fail("expected object key");
          std::string key;
          if (!parse_string(key)) return false;
          skip_ws();
          if (p >= end || *p != ':') return fail("expected ':'");
          ++p;
          Json value;
          if (!parse_value(value)) return false;
          out.set(std::move(key), std::move(value));
          skip_ws();
          if (p < end && *p == ',') {
            ++p;
            continue;
          }
          if (p < end && *p == '}') {
            ++p;
            ok = true;
            break;
          }
          return fail("expected ',' or '}'");
        }
        break;
      }
      case '[': {
        ++p;
        out = Json::array();
        skip_ws();
        if (p < end && *p == ']') {
          ++p;
          ok = true;
          break;
        }
        for (;;) {
          Json value;
          if (!parse_value(value)) return false;
          out.push_back(std::move(value));
          skip_ws();
          if (p < end && *p == ',') {
            ++p;
            continue;
          }
          if (p < end && *p == ']') {
            ++p;
            ok = true;
            break;
          }
          return fail("expected ',' or ']'");
        }
        break;
      }
      case '"': {
        std::string s;
        if (!parse_string(s)) return false;
        out = Json(std::move(s));
        ok = true;
        break;
      }
      case 't':
        if (!literal("true")) return false;
        out = Json(true);
        ok = true;
        break;
      case 'f':
        if (!literal("false")) return false;
        out = Json(false);
        ok = true;
        break;
      case 'n':
        if (!literal("null")) return false;
        out = Json(nullptr);
        ok = true;
        break;
      default:
        if (!parse_number(out)) return false;
        ok = true;
        break;
    }
    --depth;
    return ok;
  }
};

}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  const auto newline = [&](int d) {
    if (indent <= 0) return;
    out.push_back('\n');
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  switch (type_) {
    case Type::kNull:
      out += "null";
      break;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Type::kInt:
      out += std::to_string(int_);
      break;
    case Type::kDouble: {
      if (std::isfinite(double_)) {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.17g", double_);
        out += buf;
      } else {
        out += "null";  // JSON has no Inf/NaN
      }
      break;
    }
    case Type::kString:
      append_escaped(out, string_);
      break;
    case Type::kArray: {
      out.push_back('[');
      bool first = true;
      for (const Json& item : array_) {
        if (!first) out.push_back(',');
        first = false;
        newline(depth + 1);
        item.dump_to(out, indent, depth + 1);
      }
      if (!array_.empty()) newline(depth);
      out.push_back(']');
      break;
    }
    case Type::kObject: {
      out.push_back('{');
      bool first = true;
      for (const auto& entry : object_) {
        if (!first) out.push_back(',');
        first = false;
        newline(depth + 1);
        append_escaped(out, entry.first);
        out.push_back(':');
        if (indent > 0) out.push_back(' ');
        entry.second.dump_to(out, indent, depth + 1);
      }
      if (!object_.empty()) newline(depth);
      out.push_back('}');
      break;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  dump_to(out, 0, 0);
  return out;
}

std::string Json::dump_pretty() const {
  std::string out;
  dump_to(out, 2, 0);
  out.push_back('\n');
  return out;
}

bool Json::parse(const std::string& text, Json& out, std::string* error) {
  Parser parser{text.data(), text.data() + text.size(), error};
  if (!parser.parse_value(out)) return false;
  parser.skip_ws();
  if (parser.p != parser.end) return parser.fail("trailing content");
  return true;
}

// ---- base64 ---------------------------------------------------------------

namespace {
constexpr char kB64Alphabet[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
}  // namespace

std::string base64_encode(const std::uint8_t* data, std::size_t size) {
  std::string out;
  out.reserve((size + 2) / 3 * 4);
  std::size_t i = 0;
  for (; i + 3 <= size; i += 3) {
    const std::uint32_t v = (static_cast<std::uint32_t>(data[i]) << 16) |
                            (static_cast<std::uint32_t>(data[i + 1]) << 8) |
                            data[i + 2];
    out.push_back(kB64Alphabet[(v >> 18) & 63]);
    out.push_back(kB64Alphabet[(v >> 12) & 63]);
    out.push_back(kB64Alphabet[(v >> 6) & 63]);
    out.push_back(kB64Alphabet[v & 63]);
  }
  const std::size_t rem = size - i;
  if (rem == 1) {
    const std::uint32_t v = static_cast<std::uint32_t>(data[i]) << 16;
    out.push_back(kB64Alphabet[(v >> 18) & 63]);
    out.push_back(kB64Alphabet[(v >> 12) & 63]);
    out += "==";
  } else if (rem == 2) {
    const std::uint32_t v = (static_cast<std::uint32_t>(data[i]) << 16) |
                            (static_cast<std::uint32_t>(data[i + 1]) << 8);
    out.push_back(kB64Alphabet[(v >> 18) & 63]);
    out.push_back(kB64Alphabet[(v >> 12) & 63]);
    out.push_back(kB64Alphabet[(v >> 6) & 63]);
    out.push_back('=');
  }
  return out;
}

bool base64_decode(const std::string& text, std::vector<std::uint8_t>& out) {
  out.clear();
  int table[256];
  for (int& t : table) t = -1;
  for (int i = 0; i < 64; ++i) {
    table[static_cast<unsigned char>(kB64Alphabet[i])] = i;
  }
  std::uint32_t acc = 0;
  int bits = 0;
  std::size_t padding = 0;
  std::size_t symbols = 0;  // alphabet characters plus padding
  for (const char c : text) {
    if (c == '\n' || c == '\r') continue;
    if (c == '=') {
      padding++;
      symbols++;
      continue;
    }
    if (padding > 0) return false;  // data after padding
    const int v = table[static_cast<unsigned char>(c)];
    if (v < 0) return false;
    acc = (acc << 6) | static_cast<std::uint32_t>(v);
    bits += 6;
    symbols++;
    if (bits >= 8) {
      bits -= 8;
      out.push_back(static_cast<std::uint8_t>((acc >> bits) & 0xFF));
    }
  }
  if (padding > 2) return false;
  // RFC 4648: encoded data comes in padded 4-symbol groups, and the
  // leftover bits of the final group must be zero (reject non-canonical
  // encodings — a certificate field has exactly one valid spelling).
  if (symbols % 4 != 0) return false;
  if (bits > 0 && (acc & ((1u << bits) - 1)) != 0) return false;
  return true;
}

}  // namespace trojanscout::proof
