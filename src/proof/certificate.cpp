#include "proof/certificate.hpp"

#include <cstdio>
#include <stdexcept>
#include <utility>

#include "cnf/unroller.hpp"
#include "proof/checker.hpp"
#include "sat/solver.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/span.hpp"
#include "util/thread_pool.hpp"

namespace trojanscout::proof {

namespace {

using core::CheckResult;
using core::EngineKind;
using core::Obligation;
using core::TrojanDetector;

// ---- hashing --------------------------------------------------------------

struct Fnv {
  std::uint64_t h = 14695981039346656037ULL;

  void mix(std::uint64_t value) {
    for (int i = 0; i < 8; ++i) {
      h ^= (value >> (i * 8)) & 0xFF;
      h *= 1099511628211ULL;
    }
  }
  void mix(const std::string& s) {
    mix(static_cast<std::uint64_t>(s.size()));
    for (const char c : s) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ULL;
    }
  }
  void mix(const netlist::Word& word) {
    mix(static_cast<std::uint64_t>(word.size()));
    for (const netlist::SignalId id : word) mix(static_cast<std::uint64_t>(id));
  }
};

std::string hex_u64(std::uint64_t value) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(value));
  return buf;
}

bool parse_hex_u64(const std::string& text, std::uint64_t& out) {
  if (text.empty() || text.size() > 16) return false;
  out = 0;
  for (const char c : text) {
    out <<= 4;
    if (c >= '0' && c <= '9') out |= static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f') out |= static_cast<std::uint64_t>(c - 'a' + 10);
    else if (c >= 'A' && c <= 'F') out |= static_cast<std::uint64_t>(c - 'A' + 10);
    else return false;
  }
  return true;
}

// ---- enum names -----------------------------------------------------------

const char* kind_name(Obligation::Kind kind) {
  switch (kind) {
    case Obligation::Kind::kPseudo: return "pseudo";
    case Obligation::Kind::kCorruption: return "corruption";
    case Obligation::Kind::kBypass: return "bypass";
  }
  return "?";
}

bool kind_from_name(const std::string& name, Obligation::Kind& out) {
  if (name == "pseudo") out = Obligation::Kind::kPseudo;
  else if (name == "corruption") out = Obligation::Kind::kCorruption;
  else if (name == "bypass") out = Obligation::Kind::kBypass;
  else return false;
  return true;
}

const char* monitor_kind_name(properties::CorruptionMonitorKind kind) {
  return kind == properties::CorruptionMonitorKind::kExact ? "exact"
                                                           : "hold-only";
}

bool monitor_kind_from_name(const std::string& name,
                            properties::CorruptionMonitorKind& out) {
  if (name == "exact") out = properties::CorruptionMonitorKind::kExact;
  else if (name == "hold-only") out = properties::CorruptionMonitorKind::kHoldOnly;
  else return false;
  return true;
}

}  // namespace

std::uint64_t design_hash(const netlist::Netlist& nl) {
  Fnv fnv;
  fnv.mix(static_cast<std::uint64_t>(nl.size()));
  for (netlist::SignalId id = 0; id < nl.size(); ++id) {
    const netlist::Gate& g = nl.gate(id);
    fnv.mix(static_cast<std::uint64_t>(g.op));
    fnv.mix(static_cast<std::uint64_t>(g.fanin[0]));
    fnv.mix(static_cast<std::uint64_t>(g.fanin[1]));
    fnv.mix(static_cast<std::uint64_t>(g.fanin[2]));
    fnv.mix(static_cast<std::uint64_t>(g.init ? 1 : 0));
  }
  fnv.mix(static_cast<std::uint64_t>(nl.inputs().size()));
  for (const netlist::SignalId id : nl.inputs()) {
    fnv.mix(static_cast<std::uint64_t>(id));
  }
  for (const auto& port : nl.input_ports()) {
    fnv.mix(port.name);
    fnv.mix(port.bits);
  }
  for (const auto& port : nl.output_ports()) {
    fnv.mix(port.name);
    fnv.mix(port.bits);
  }
  for (const auto& reg : nl.registers()) {
    fnv.mix(reg.name);
    fnv.mix(reg.dffs);
  }
  return fnv.h;
}

std::uint64_t spec_hash(const designs::Design& design) {
  Fnv fnv;
  fnv.mix(design.name);
  fnv.mix(static_cast<std::uint64_t>(design.spec.registers.size()));
  for (const auto& reg : design.spec.registers) {
    fnv.mix(reg.reg);
    fnv.mix(static_cast<std::uint64_t>(reg.ways.size()));
    for (const auto& way : reg.ways) {
      fnv.mix(way.description);
      fnv.mix(way.cycle_label);
      fnv.mix(way.value_description);
      fnv.mix(static_cast<std::uint64_t>(way.condition));
      fnv.mix(way.next_value);
    }
    fnv.mix(static_cast<std::uint64_t>(reg.obligations.size()));
    for (const auto& obligation : reg.obligations) {
      fnv.mix(obligation.description);
      fnv.mix(static_cast<std::uint64_t>(obligation.condition));
      fnv.mix(obligation.observed_value);
      fnv.mix(static_cast<std::uint64_t>(obligation.latency));
    }
  }
  fnv.mix(static_cast<std::uint64_t>(design.critical_registers.size()));
  for (const auto& reg : design.critical_registers) fnv.mix(reg);
  return fnv.h;
}

BmcFormula derive_bmc_formula(const netlist::Netlist& nl,
                              netlist::SignalId bad, std::size_t n_frames) {
  // The unroller's clause emission depends only on the netlist and the
  // frame count — never on solver assignment state — so reconstructing the
  // (solver, unroller) pair and skipping the solve calls reproduces the
  // exact input-clause sequence an engine run streamed to its ProofLog.
  ProofLog log;
  sat::Solver solver;
  solver.set_proof_listener(&log);
  cnf::Unroller unroller(nl, solver, {bad});
  BmcFormula out;
  for (std::size_t t = 0; t < n_frames; ++t) {
    unroller.add_frame();
    const sat::Lit bad_lit = unroller.lit_of(bad, t);
    out.frames.push_back({log.formula().size(), bad_lit});
    solver.add_clause(~bad_lit);
  }
  out.formula = log.formula();
  return out;
}

Certificate certify(const designs::Design& design,
                    const CertifyOptions& options) {
  TrojanDetector detector(design, options.detector);
  const std::vector<Obligation> obligations = detector.enumerate_obligations();
  // BMC emits DRAT; the portfolio forwards the proof stream to its BMC leg,
  // so the evidence is usable exactly when BMC ends up the winning engine.
  const bool wants_drat =
      options.detector.engine.kind == EngineKind::kBmc ||
      options.detector.engine.kind == EngineKind::kPortfolio;

  telemetry::Span certify_span("certify");
  const std::uint64_t certify_id = certify_span.id();

  std::vector<ObligationRecord> records(obligations.size());
  // `run_one` executes on pool workers, so the obligation span parents to
  // the certify root by explicit id rather than the thread-local stack.
  auto run_one = [&](std::size_t i) {
    telemetry::Span span("certify:" + obligations[i].property_name(),
                         certify_id);
    TS_COUNTER_ADD("certify.obligations", 1);
    ProofLog log;
    // Only the input-clause *counts* enter the marks; the verifier
    // re-derives clause contents from the netlist, so skip storing them.
    log.set_record_formula(false);
    core::EngineOptions engine = options.detector.engine;
    engine.cancel = nullptr;  // certificates never race a fail-fast cancel
    if (wants_drat) engine.proof = &log;
    const CheckResult check = detector.run_obligation(obligations[i], engine);
    if (options.store != nullptr) {
      options.store->store(obligations[i], check);
    }

    ObligationRecord& record = records[i];
    record.obligation = obligations[i];
    record.engine_used = check.engine_used;
    record.violated = check.violated;
    record.bound_reached = check.bound_reached;
    record.proven_unbounded = check.proven_unbounded;
    record.cancelled = check.cancelled;
    record.frames_completed = check.frames_completed;
    record.status = check.status;
    record.witness = check.witness;
    record.invariant = check.invariant;
    if (check.engine_used == EngineKind::kBmc) {
      // A winning BMC run always completed its clean frames, so the mark
      // count must line up; a cancelled portfolio leg never gets here.
      if (log.marks().size() != check.frames_completed) {
        throw std::runtime_error(
            "certify: UNSAT mark count " + std::to_string(log.marks().size()) +
            " != frames_completed " + std::to_string(check.frames_completed) +
            " for " + obligations[i].property_name());
      }
      record.drat = DratEvidence{log.drat(), log.marks()};
    }
    if (record.proven_unbounded && !record.invariant.has_value()) {
      throw std::runtime_error(
          "certify: unbounded proof without an inductive invariant for " +
          obligations[i].property_name());
    }
  };

  if (options.jobs <= 1) {
    for (std::size_t i = 0; i < obligations.size(); ++i) run_one(i);
  } else {
    util::ThreadPool pool(options.jobs);
    std::vector<std::exception_ptr> errors(obligations.size());
    for (std::size_t i = 0; i < obligations.size(); ++i) {
      pool.submit([&, i] {
        try {
          run_one(i);
        } catch (...) {
          errors[i] = std::current_exception();
        }
      });
    }
    pool.wait_idle();
    for (const auto& e : errors) {
      if (e) std::rethrow_exception(e);
    }
  }

  // Merge in enumeration order — the same fold the serial detector and the
  // parallel scheduler perform, so the signature matches both.
  core::DetectionReport report;
  report.trust_bound_frames = options.detector.engine.max_frames;
  for (std::size_t i = 0; i < obligations.size(); ++i) {
    CheckResult check;
    check.engine_used = records[i].engine_used;
    check.violated = records[i].violated;
    check.bound_reached = records[i].bound_reached;
    check.proven_unbounded = records[i].proven_unbounded;
    check.cancelled = records[i].cancelled;
    check.frames_completed = records[i].frames_completed;
    check.status = records[i].status;
    check.witness = records[i].witness;
    detector.merge_obligation(report, obligations[i], check);
  }

  Certificate cert;
  cert.design_name = design.name;
  cert.design_hash = design_hash(design.nl);
  cert.spec_hash = spec_hash(design);
  cert.engine = options.detector.engine.kind;
  cert.max_frames = options.detector.engine.max_frames;
  cert.monitor_kind = options.detector.monitor_kind;
  cert.scan_pseudo_critical = options.detector.scan_pseudo_critical;
  cert.check_bypass = options.detector.check_bypass;
  cert.mirror_threshold = options.detector.mirror_threshold;
  cert.min_pseudo_violation_depth = options.detector.min_pseudo_violation_depth;
  cert.records = std::move(records);
  cert.trojan_found = report.trojan_found;
  cert.trust_bound_frames = report.trust_bound_frames;
  cert.report_signature = report.signature();
  return cert;
}

std::string CertificateCheckResult::summary() const {
  std::string out = ok ? "certificate OK" : "certificate REJECTED";
  out += ": " + std::to_string(witnesses_confirmed) + " witness(es) replayed, " +
         std::to_string(drat_marks_checked) + " UNSAT frame(s) DRAT-checked, " +
         std::to_string(invariants_checked) + " invariant(s) re-proved, " +
         std::to_string(unchecked_obligations) + " obligation(s) unchecked";
  for (const auto& e : errors) out += "\n  error: " + e;
  return out;
}

CertificateCheckResult check_certificate(const Certificate& cert,
                                         const designs::Design& design) {
  CertificateCheckResult result;
  auto fail = [&result](std::string message) {
    result.errors.push_back(std::move(message));
  };

  // 1. Identity: the certificate must be about exactly this design + spec.
  if (cert.design_name != design.name) {
    fail("design name mismatch: certificate says '" + cert.design_name +
         "', design is '" + design.name + "'");
  }
  if (cert.design_hash != design_hash(design.nl)) {
    fail("design hash mismatch (netlist differs from the certified one)");
  }
  if (cert.spec_hash != spec_hash(design)) {
    fail("spec hash mismatch (valid-ways spec or critical set differs)");
  }
  if (!result.errors.empty()) {
    return result;  // wrong design: nothing else is meaningful
  }

  // 2. Re-enumerate the obligations with the certified configuration.
  core::DetectorOptions options;
  options.engine.kind = cert.engine;
  options.engine.max_frames = cert.max_frames;
  options.monitor_kind = cert.monitor_kind;
  options.scan_pseudo_critical = cert.scan_pseudo_critical;
  options.check_bypass = cert.check_bypass;
  options.mirror_threshold = cert.mirror_threshold;
  options.min_pseudo_violation_depth = cert.min_pseudo_violation_depth;
  TrojanDetector detector(design, options);

  const std::vector<Obligation> obligations = detector.enumerate_obligations();
  if (obligations.size() != cert.records.size()) {
    fail("obligation count mismatch: design yields " +
         std::to_string(obligations.size()) + ", certificate records " +
         std::to_string(cert.records.size()));
    return result;
  }
  for (std::size_t i = 0; i < obligations.size(); ++i) {
    const Obligation& expected = obligations[i];
    const Obligation& got = cert.records[i].obligation;
    if (expected.kind != got.kind || expected.reg != got.reg ||
        expected.candidate != got.candidate) {
      fail("obligation " + std::to_string(i) + " mismatch: expected " +
           expected.property_name() + ", certificate has " +
           got.property_name());
    }
  }
  if (!result.errors.empty()) return result;

  // 3. Evidence, per record. Requirements follow each record's winning
  // engine: BMC answers need DRAT chains, PDR unbounded proofs need an
  // invariant that re-proves, ATPG clean frames are honestly unchecked.
  for (std::size_t i = 0; i < cert.records.size(); ++i) {
    const ObligationRecord& record = cert.records[i];
    const std::string label = record.obligation.property_name();
    if (record.cancelled) {
      fail(label + ": cancelled run in a certificate (no evidence exists)");
      continue;
    }
    if (cert.engine != EngineKind::kPortfolio &&
        record.engine_used != cert.engine) {
      fail(label + ": record engine " +
           core::engine_name(record.engine_used) +
           " disagrees with the certified configuration " +
           core::engine_name(cert.engine));
      continue;
    }
    if (record.engine_used == EngineKind::kPortfolio) {
      fail(label + ": record engine must be a concrete backend, not the "
           "portfolio itself");
      continue;
    }
    const bool is_bmc = record.engine_used == EngineKind::kBmc;

    // The monitor netlist is rebuilt here, independently of the run that
    // produced the certificate — both the witness replay and the CNF
    // re-derivation below use this reconstruction.
    TrojanDetector::InstrumentedProperty property;
    try {
      property = detector.instrument_obligation(record.obligation);
    } catch (const std::exception& e) {
      fail(label + ": cannot rebuild monitor: " + e.what());
      continue;
    }

    if (record.violated) {
      if (!record.witness.has_value()) {
        fail(label + ": violated but no witness in certificate");
      } else {
        const sim::ReplayVerdict verdict =
            sim::replay_confirms(property.nl, property.bad, *record.witness);
        if (!verdict.confirmed) {
          fail(label + ": witness replay failed: " + verdict.detail);
        } else if (is_bmc && !verdict.minimal) {
          // BMC witnesses are minimal by construction (earlier frames were
          // proven UNSAT); a non-minimal one contradicts the DRAT marks.
          fail(label + ": BMC witness not minimal: " + verdict.detail);
        } else {
          result.witnesses_confirmed++;
        }
      }
    }

    if (is_bmc) {
      if (!record.drat.has_value()) {
        fail(label + ": BMC record without DRAT evidence");
        continue;
      }
      const DratEvidence& evidence = *record.drat;
      if (evidence.marks.size() != record.frames_completed) {
        fail(label + ": " + std::to_string(evidence.marks.size()) +
             " UNSAT marks for " + std::to_string(record.frames_completed) +
             " completed frames");
        continue;
      }
      const BmcFormula derived = derive_bmc_formula(property.nl, property.bad,
                                                    record.frames_completed);
      std::size_t prev_proof_bytes = 0;
      for (std::size_t t = 0; t < evidence.marks.size(); ++t) {
        const ProofLog::UnsatMark& mark = evidence.marks[t];
        const BmcFormula::FramePoint& point = derived.frames[t];
        if (mark.formula_clauses != point.formula_clauses) {
          fail(label + " frame " + std::to_string(t) +
               ": formula prefix mismatch (certificate " +
               std::to_string(mark.formula_clauses) + ", re-derived " +
               std::to_string(point.formula_clauses) + ")");
          continue;
        }
        if (mark.assumptions.size() != 1 || mark.assumptions[0] != point.bad) {
          fail(label + " frame " + std::to_string(t) +
               ": assumption is not this frame's bad literal");
          continue;
        }
        if (mark.proof_bytes < prev_proof_bytes ||
            mark.proof_bytes > evidence.drat.size()) {
          fail(label + " frame " + std::to_string(t) +
               ": proof prefix length out of range");
          continue;
        }
        prev_proof_bytes = mark.proof_bytes;

        // The frame's UNSAT claim: formula prefix + the bad assumption as a
        // unit clause is refuted by the DRAT prefix. The formula comes from
        // the re-derivation, never from the certificate.
        std::vector<sat::Clause> formula(
            derived.formula.begin(),
            derived.formula.begin() +
                static_cast<std::ptrdiff_t>(point.formula_clauses));
        formula.push_back({point.bad});
        DratChecker checker;
        std::string check_error;
        if (!checker.check(formula, evidence.drat.data(), mark.proof_bytes,
                           &check_error)) {
          fail(label + " frame " + std::to_string(t) +
               ": DRAT check failed: " + check_error);
          continue;
        }
        result.drat_marks_checked++;
      }
    } else if (record.engine_used == EngineKind::kPdr) {
      if (record.proven_unbounded) {
        if (!record.invariant.has_value()) {
          fail(label + ": unbounded proof without an inductive invariant");
        } else {
          const pdr::InvariantCheck verdict = pdr::check_invariant(
              property.nl, property.bad, *record.invariant);
          if (!verdict.ok) {
            fail(label + ": invariant re-check failed: " + verdict.detail);
          } else {
            result.invariants_checked++;
          }
        }
      } else if (!record.violated) {
        // A bound-reached PDR run carries no proof object.
        result.unchecked_obligations++;
      }
    } else if (!record.violated) {
      // ATPG clean frames: search exhaustion yields no proof object.
      result.unchecked_obligations++;
    }
    if (record.proven_unbounded && record.engine_used != EngineKind::kPdr) {
      fail(label + ": only PDR can claim an unbounded proof, record says " +
           core::engine_name(record.engine_used));
    }
  }

  // 4. The claim: re-merge the records into a report; its signature must be
  // exactly the certified one.
  core::DetectionReport report;
  report.trust_bound_frames = cert.max_frames;
  for (std::size_t i = 0; i < cert.records.size(); ++i) {
    const ObligationRecord& record = cert.records[i];
    CheckResult check;
    check.engine_used = record.engine_used;
    check.violated = record.violated;
    check.bound_reached = record.bound_reached;
    check.proven_unbounded = record.proven_unbounded;
    check.cancelled = record.cancelled;
    check.frames_completed = record.frames_completed;
    check.status = record.status;
    check.witness = record.witness;
    detector.merge_obligation(report, obligations[i], check);
  }
  if (report.signature() != cert.report_signature) {
    fail("report signature mismatch: the records do not merge into the "
         "certified report");
  }
  if (report.trojan_found != cert.trojan_found) {
    fail("trojan_found mismatch between records and certificate header");
  }
  if (report.trust_bound_frames != cert.trust_bound_frames) {
    fail("trust_bound_frames mismatch between records and certificate header");
  }

  result.ok = result.errors.empty();
  return result;
}

// ---- JSON -----------------------------------------------------------------

Json certificate_to_json(const Certificate& cert) {
  Json root = Json::object();
  root.set("format", Certificate::kFormat);
  root.set("version", Certificate::kVersion);

  Json design = Json::object();
  design.set("name", cert.design_name);
  design.set("design_hash", hex_u64(cert.design_hash));
  design.set("spec_hash", hex_u64(cert.spec_hash));
  root.set("design", std::move(design));

  Json options = Json::object();
  options.set("engine", core::engine_name(cert.engine));
  options.set("max_frames", cert.max_frames);
  options.set("monitor_kind", monitor_kind_name(cert.monitor_kind));
  options.set("scan_pseudo_critical", cert.scan_pseudo_critical);
  options.set("check_bypass", cert.check_bypass);
  options.set("mirror_threshold", cert.mirror_threshold);
  options.set("min_pseudo_violation_depth", cert.min_pseudo_violation_depth);
  root.set("options", std::move(options));

  Json records = Json::array();
  for (const ObligationRecord& record : cert.records) {
    Json r = Json::object();
    r.set("kind", kind_name(record.obligation.kind));
    r.set("reg", record.obligation.reg);
    r.set("candidate", record.obligation.candidate);
    r.set("property", record.obligation.property_name());
    r.set("engine", core::engine_name(record.engine_used));

    Json outcome = Json::object();
    outcome.set("violated", record.violated);
    outcome.set("bound_reached", record.bound_reached);
    outcome.set("proven_unbounded", record.proven_unbounded);
    outcome.set("cancelled", record.cancelled);
    outcome.set("frames_completed", record.frames_completed);
    outcome.set("status", record.status);
    r.set("result", std::move(outcome));

    if (record.witness.has_value()) {
      Json witness = Json::object();
      witness.set("violation_frame", record.witness->violation_frame);
      Json frames = Json::array();
      for (const auto& frame : record.witness->frames) {
        frames.push_back(frame.bits.to_binary_string());
      }
      witness.set("frames", std::move(frames));
      r.set("witness", std::move(witness));
    } else {
      r.set("witness", nullptr);
    }

    if (record.drat.has_value()) {
      Json drat = Json::object();
      drat.set("proof_b64", base64_encode(record.drat->drat));
      Json marks = Json::array();
      for (const auto& mark : record.drat->marks) {
        Json m = Json::object();
        m.set("formula_clauses", mark.formula_clauses);
        m.set("proof_bytes", mark.proof_bytes);
        Json assumptions = Json::array();
        for (const sat::Lit lit : mark.assumptions) {
          assumptions.push_back(lit.to_dimacs());
        }
        m.set("assumptions", std::move(assumptions));
        marks.push_back(std::move(m));
      }
      drat.set("marks", std::move(marks));
      r.set("drat", std::move(drat));
    } else {
      r.set("drat", nullptr);
    }

    if (record.invariant.has_value()) {
      Json clauses = Json::array();
      for (const auto& clause : record.invariant->clauses) {
        Json lits = Json::array();
        for (const std::int32_t lit : clause) {
          lits.push_back(static_cast<std::int64_t>(lit));
        }
        clauses.push_back(std::move(lits));
      }
      r.set("invariant", std::move(clauses));
    } else {
      r.set("invariant", nullptr);
    }
    records.push_back(std::move(r));
  }
  root.set("obligations", std::move(records));

  Json report = Json::object();
  report.set("trojan_found", cert.trojan_found);
  report.set("trust_bound_frames", cert.trust_bound_frames);
  report.set("signature", cert.report_signature);
  root.set("report", std::move(report));
  return root;
}

namespace {

bool get_field(const Json& obj, const char* key, const Json*& out,
               std::string* error) {
  out = obj.find(key);
  if (out == nullptr) {
    if (error != nullptr) {
      *error = "certificate: missing field '" + std::string(key) + "'";
    }
    return false;
  }
  return true;
}

}  // namespace

bool certificate_from_json(const Json& json, Certificate& out,
                           std::string* error) {
  auto fail = [error](const std::string& message) {
    if (error != nullptr) *error = "certificate: " + message;
    return false;
  };
  if (!json.is_object()) return fail("root is not an object");
  const Json* field = nullptr;

  if (!get_field(json, "format", field, error)) return false;
  if (!field->is_string() || field->as_string() != Certificate::kFormat) {
    return fail("unrecognized format");
  }
  if (!get_field(json, "version", field, error)) return false;
  if (!field->is_int() || field->as_int() != Certificate::kVersion) {
    return fail("unsupported version");
  }

  if (!get_field(json, "design", field, error)) return false;
  {
    const Json& design = *field;
    const Json* f = nullptr;
    if (!get_field(design, "name", f, error) || !f->is_string()) {
      return fail("bad design.name");
    }
    out.design_name = f->as_string();
    if (!get_field(design, "design_hash", f, error) || !f->is_string() ||
        !parse_hex_u64(f->as_string(), out.design_hash)) {
      return fail("bad design.design_hash");
    }
    if (!get_field(design, "spec_hash", f, error) || !f->is_string() ||
        !parse_hex_u64(f->as_string(), out.spec_hash)) {
      return fail("bad design.spec_hash");
    }
  }

  if (!get_field(json, "options", field, error)) return false;
  {
    const Json& options = *field;
    const Json* f = nullptr;
    if (!get_field(options, "engine", f, error) || !f->is_string()) {
      return fail("bad options.engine");
    }
    if (f->as_string() == "BMC") out.engine = EngineKind::kBmc;
    else if (f->as_string() == "ATPG") out.engine = EngineKind::kAtpg;
    else if (f->as_string() == "PDR") out.engine = EngineKind::kPdr;
    else if (f->as_string() == "PORTFOLIO") out.engine = EngineKind::kPortfolio;
    else return fail("unknown engine '" + f->as_string() + "'");
    if (!get_field(options, "max_frames", f, error) || !f->is_int()) {
      return fail("bad options.max_frames");
    }
    out.max_frames = static_cast<std::size_t>(f->as_int());
    if (!get_field(options, "monitor_kind", f, error) || !f->is_string() ||
        !monitor_kind_from_name(f->as_string(), out.monitor_kind)) {
      return fail("bad options.monitor_kind");
    }
    if (!get_field(options, "scan_pseudo_critical", f, error) || !f->is_bool()) {
      return fail("bad options.scan_pseudo_critical");
    }
    out.scan_pseudo_critical = f->as_bool();
    if (!get_field(options, "check_bypass", f, error) || !f->is_bool()) {
      return fail("bad options.check_bypass");
    }
    out.check_bypass = f->as_bool();
    if (!get_field(options, "mirror_threshold", f, error) || !f->is_number()) {
      return fail("bad options.mirror_threshold");
    }
    out.mirror_threshold = f->as_double();
    if (!get_field(options, "min_pseudo_violation_depth", f, error) ||
        !f->is_int()) {
      return fail("bad options.min_pseudo_violation_depth");
    }
    out.min_pseudo_violation_depth = static_cast<std::size_t>(f->as_int());
  }

  if (!get_field(json, "obligations", field, error)) return false;
  if (!field->is_array()) return fail("obligations is not an array");
  out.records.clear();
  for (const Json& r : field->items()) {
    if (!r.is_object()) return fail("obligation record is not an object");
    ObligationRecord record;
    const Json* f = nullptr;
    if (!get_field(r, "kind", f, error) || !f->is_string() ||
        !kind_from_name(f->as_string(), record.obligation.kind)) {
      return fail("bad record kind");
    }
    if (!get_field(r, "reg", f, error) || !f->is_string()) {
      return fail("bad record reg");
    }
    record.obligation.reg = f->as_string();
    if (!get_field(r, "candidate", f, error) || !f->is_string()) {
      return fail("bad record candidate");
    }
    record.obligation.candidate = f->as_string();
    if (!get_field(r, "engine", f, error) || !f->is_string()) {
      return fail("bad record engine");
    }
    if (f->as_string() == "BMC") record.engine_used = EngineKind::kBmc;
    else if (f->as_string() == "ATPG") record.engine_used = EngineKind::kAtpg;
    else if (f->as_string() == "PDR") record.engine_used = EngineKind::kPdr;
    else return fail("unknown record engine '" + f->as_string() + "'");

    if (!get_field(r, "result", f, error) || !f->is_object()) {
      return fail("bad record result");
    }
    {
      const Json& outcome = *f;
      const Json* g = nullptr;
      if (!get_field(outcome, "violated", g, error) || !g->is_bool()) {
        return fail("bad result.violated");
      }
      record.violated = g->as_bool();
      if (!get_field(outcome, "bound_reached", g, error) || !g->is_bool()) {
        return fail("bad result.bound_reached");
      }
      record.bound_reached = g->as_bool();
      if (!get_field(outcome, "proven_unbounded", g, error) || !g->is_bool()) {
        return fail("bad result.proven_unbounded");
      }
      record.proven_unbounded = g->as_bool();
      if (!get_field(outcome, "cancelled", g, error) || !g->is_bool()) {
        return fail("bad result.cancelled");
      }
      record.cancelled = g->as_bool();
      if (!get_field(outcome, "frames_completed", g, error) || !g->is_int()) {
        return fail("bad result.frames_completed");
      }
      record.frames_completed = static_cast<std::size_t>(g->as_int());
      if (!get_field(outcome, "status", g, error) || !g->is_string()) {
        return fail("bad result.status");
      }
      record.status = g->as_string();
    }

    if (!get_field(r, "witness", f, error)) return false;
    if (!f->is_null()) {
      if (!f->is_object()) return fail("bad record witness");
      const Json* g = nullptr;
      sim::Witness witness;
      if (!get_field(*f, "violation_frame", g, error) || !g->is_int()) {
        return fail("bad witness.violation_frame");
      }
      witness.violation_frame = static_cast<std::size_t>(g->as_int());
      if (!get_field(*f, "frames", g, error) || !g->is_array()) {
        return fail("bad witness.frames");
      }
      for (const Json& frame : g->items()) {
        if (!frame.is_string()) return fail("bad witness frame");
        try {
          witness.frames.push_back(
              {util::BitVec::from_binary_string(frame.as_string())});
        } catch (const std::exception&) {
          return fail("bad witness frame bits");
        }
      }
      record.witness = std::move(witness);
    }

    if (!get_field(r, "drat", f, error)) return false;
    if (!f->is_null()) {
      if (!f->is_object()) return fail("bad record drat");
      DratEvidence evidence;
      const Json* g = nullptr;
      if (!get_field(*f, "proof_b64", g, error) || !g->is_string() ||
          !base64_decode(g->as_string(), evidence.drat)) {
        return fail("bad drat.proof_b64");
      }
      if (!get_field(*f, "marks", g, error) || !g->is_array()) {
        return fail("bad drat.marks");
      }
      for (const Json& m : g->items()) {
        if (!m.is_object()) return fail("bad drat mark");
        ProofLog::UnsatMark mark;
        const Json* h = nullptr;
        if (!get_field(m, "formula_clauses", h, error) || !h->is_int()) {
          return fail("bad mark.formula_clauses");
        }
        mark.formula_clauses = static_cast<std::size_t>(h->as_int());
        if (!get_field(m, "proof_bytes", h, error) || !h->is_int()) {
          return fail("bad mark.proof_bytes");
        }
        mark.proof_bytes = static_cast<std::size_t>(h->as_int());
        if (!get_field(m, "assumptions", h, error) || !h->is_array()) {
          return fail("bad mark.assumptions");
        }
        for (const Json& a : h->items()) {
          if (!a.is_int() || a.as_int() == 0) return fail("bad assumption");
          const std::int64_t dimacs = a.as_int();
          const sat::Var var = static_cast<sat::Var>(
              (dimacs < 0 ? -dimacs : dimacs) - 1);
          mark.assumptions.emplace_back(var, dimacs < 0);
        }
        evidence.marks.push_back(std::move(mark));
      }
      record.drat = std::move(evidence);
    }

    if (!get_field(r, "invariant", f, error)) return false;
    if (!f->is_null()) {
      if (!f->is_array()) return fail("bad record invariant");
      pdr::Invariant invariant;
      for (const Json& clause : f->items()) {
        if (!clause.is_array()) return fail("bad invariant clause");
        std::vector<std::int32_t> lits;
        for (const Json& lit : clause.items()) {
          if (!lit.is_int() || lit.as_int() == 0) {
            return fail("bad invariant literal");
          }
          lits.push_back(static_cast<std::int32_t>(lit.as_int()));
        }
        invariant.clauses.push_back(std::move(lits));
      }
      record.invariant = std::move(invariant);
    }
    out.records.push_back(std::move(record));
  }

  if (!get_field(json, "report", field, error)) return false;
  {
    const Json& report = *field;
    const Json* f = nullptr;
    if (!get_field(report, "trojan_found", f, error) || !f->is_bool()) {
      return fail("bad report.trojan_found");
    }
    out.trojan_found = f->as_bool();
    if (!get_field(report, "trust_bound_frames", f, error) || !f->is_int()) {
      return fail("bad report.trust_bound_frames");
    }
    out.trust_bound_frames = static_cast<std::size_t>(f->as_int());
    if (!get_field(report, "signature", f, error) || !f->is_string()) {
      return fail("bad report.signature");
    }
    out.report_signature = f->as_string();
  }
  return true;
}

}  // namespace trojanscout::proof
