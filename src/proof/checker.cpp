#include "proof/checker.hpp"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "proof/drat.hpp"

namespace trojanscout::proof {

namespace {

using sat::Clause;
using sat::LBool;
using sat::Lit;
using sat::Var;

/// FNV-1a over the sorted literal indices: deletion records must match a
/// database clause by content, independent of literal order (the solver's
/// propagation reorders watched literals in place).
std::uint64_t clause_key(Clause sorted) {
  std::uint64_t h = 14695981039346656037ULL;
  for (const Lit lit : sorted) {
    h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(lit.index()));
    h *= 1099511628211ULL;
  }
  return h;
}

Clause sorted_copy(const Clause& clause) {
  Clause out = clause;
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

void DratChecker::reset() {
  stats_ = {};
  clauses_.clear();
  active_.clear();
  marked_.clear();
  unit_ids_.clear();
  watches_.clear();
  assigns_.clear();
  reason_.clear();
  seen_.clear();
  trail_.clear();
  qhead_ = 0;
}

void DratChecker::ensure_var(Var v) {
  if (v < 0) return;
  const std::size_t need = static_cast<std::size_t>(v) + 1;
  if (assigns_.size() >= need) return;
  assigns_.resize(need, LBool::kUndef);
  reason_.resize(need, kNoClause);
  seen_.resize(need, 0);
  watches_.resize(need * 2);
}

DratChecker::ClauseId DratChecker::store_clause(Clause clause) {
  const ClauseId id = static_cast<ClauseId>(clauses_.size());
  for (const Lit lit : clause) ensure_var(lit.var());
  clauses_.push_back(std::move(clause));
  active_.push_back(1);
  marked_.push_back(0);
  return id;
}

void DratChecker::attach(ClauseId id) {
  const Clause& c = clauses_[id];
  if (c.size() == 1) {
    unit_ids_.push_back(id);
  } else if (c.size() >= 2) {
    watches_[(~c[0]).index()].push_back({id, c[1]});
    watches_[(~c[1]).index()].push_back({id, c[0]});
  }
  // Empty clauses get no watches; check() handles them before propagation.
}

DratChecker::ClauseId DratChecker::enqueue(Lit p, ClauseId reason) {
  const LBool v = value(p);
  if (v == LBool::kTrue) return kNoClause;
  if (v == LBool::kFalse) return reason;
  assigns_[p.var()] = sat::lbool_from(!p.sign());
  reason_[p.var()] = reason;
  trail_.push_back(p);
  return kNoClause;
}

DratChecker::ClauseId DratChecker::propagate() {
  while (qhead_ < trail_.size()) {
    const Lit p = trail_[qhead_++];
    stats_.propagations++;
    auto& ws = watches_[p.index()];
    std::size_t i = 0;
    std::size_t j = 0;
    const std::size_t n = ws.size();
    while (i < n) {
      const Watcher w = ws[i++];
      // Inactive clauses keep their watcher entries so that reactivating a
      // deleted clause in the backward pass restores the two-watch
      // invariant without re-attaching.
      if (active_[w.id] == 0) {
        ws[j++] = w;
        continue;
      }
      if (value(w.blocker) == LBool::kTrue) {
        ws[j++] = w;
        continue;
      }
      Clause& lits = clauses_[w.id];
      const Lit false_lit = ~p;
      if (lits[0] == false_lit) std::swap(lits[0], lits[1]);
      const Lit first = lits[0];
      if (first != w.blocker && value(first) == LBool::kTrue) {
        ws[j++] = {w.id, first};
        continue;
      }
      bool moved = false;
      for (std::size_t k = 2; k < lits.size(); ++k) {
        if (value(lits[k]) != LBool::kFalse) {
          std::swap(lits[1], lits[k]);
          watches_[(~lits[1]).index()].push_back({w.id, first});
          moved = true;
          break;
        }
      }
      if (moved) continue;
      ws[j++] = {w.id, first};
      if (value(first) == LBool::kFalse) {
        while (i < n) ws[j++] = ws[i++];
        ws.resize(j);
        return w.id;
      }
      enqueue(first, w.id);
    }
    ws.resize(j);
  }
  return kNoClause;
}

void DratChecker::undo_trail() {
  for (const Lit p : trail_) {
    assigns_[p.var()] = LBool::kUndef;
    reason_[p.var()] = kNoClause;
    seen_[p.var()] = 0;
  }
  trail_.clear();
  qhead_ = 0;
}

void DratChecker::mark_cone(ClauseId conflict) {
  marked_[conflict] = 1;
  std::vector<Var> stack;
  for (const Lit lit : clauses_[conflict]) stack.push_back(lit.var());
  while (!stack.empty()) {
    const Var v = stack.back();
    stack.pop_back();
    if (seen_[v] != 0) continue;
    seen_[v] = 1;  // cleared by undo_trail (cone vars are all assigned)
    const ClauseId r = reason_[v];
    if (r == kNoClause) continue;
    marked_[r] = 1;
    for (const Lit lit : clauses_[r]) stack.push_back(lit.var());
  }
}

bool DratChecker::rup(const Clause& clause, bool mark) {
  // Negate the candidate clause: enqueue every literal's complement as an
  // assumption. A conflict among these alone means the clause is a
  // tautology — vacuously RUP, nothing to mark.
  for (const Lit lit : clause) {
    ensure_var(lit.var());
    if (value(~lit) == LBool::kFalse) {
      undo_trail();
      return true;
    }
    enqueue(~lit, kNoClause);
  }
  // Active unit clauses seed propagation.
  ClauseId conflict = kNoClause;
  for (const ClauseId id : unit_ids_) {
    if (active_[id] == 0) continue;
    conflict = enqueue(clauses_[id][0], id);
    if (conflict != kNoClause) break;
  }
  if (conflict == kNoClause) conflict = propagate();
  const bool ok = conflict != kNoClause;
  if (ok && mark) mark_cone(conflict);
  undo_trail();
  return ok;
}

bool DratChecker::check(const std::vector<Clause>& formula,
                        const std::uint8_t* proof, std::size_t proof_size,
                        std::string* error) {
  reset();
  auto fail = [error](const std::string& message) {
    if (error != nullptr) *error = message;
    return false;
  };

  stats_.formula_clauses = formula.size();
  bool empty_in_db = false;
  for (const Clause& c : formula) {
    attach(store_clause(c));
    if (c.empty()) empty_in_db = true;
  }

  std::vector<DratStep> steps;
  std::string parse_error;
  if (!parse_drat(proof, proof_size, steps, &parse_error)) {
    return fail(parse_error);
  }

  // Forward pass: resolve deletions by content against the live database,
  // record the (is_delete, id) timeline for the backward pass. Stops at the
  // first explicit empty-clause addition: its RUP check *is* the final
  // check, and steps past it cannot strengthen the proof.
  std::unordered_map<std::uint64_t, std::vector<ClauseId>> by_content;
  auto index_clause = [&](ClauseId id) {
    by_content[clause_key(sorted_copy(clauses_[id]))].push_back(id);
  };
  for (ClauseId id = 0; id < clauses_.size(); ++id) index_clause(id);

  struct StepRef {
    bool is_delete;
    ClauseId id;
  };
  std::vector<StepRef> refs;
  refs.reserve(steps.size());
  for (std::size_t s = 0; s < steps.size() && !empty_in_db; ++s) {
    DratStep& step = steps[s];
    if (step.is_delete) {
      stats_.proof_deletions++;
      const Clause sorted = sorted_copy(step.clause);
      auto it = by_content.find(clause_key(sorted));
      ClauseId target = kNoClause;
      if (it != by_content.end()) {
        // Newest matching active clause; stale ids are pruned as seen.
        auto& ids = it->second;
        while (!ids.empty()) {
          const ClauseId cand = ids.back();
          if (active_[cand] != 0 && sorted_copy(clauses_[cand]) == sorted) {
            target = cand;
            break;
          }
          if (active_[cand] == 0) {
            ids.pop_back();
            continue;
          }
          break;  // hash collision with a different live clause: scan below
        }
        if (target == kNoClause) {
          for (auto rit = ids.rbegin(); rit != ids.rend(); ++rit) {
            if (active_[*rit] != 0 && sorted_copy(clauses_[*rit]) == sorted) {
              target = *rit;
              break;
            }
          }
        }
      }
      if (target == kNoClause) {
        return fail("drat: step " + std::to_string(s) +
                    " deletes a clause not in the database");
      }
      active_[target] = 0;
      refs.push_back({true, target});
    } else {
      stats_.proof_additions++;
      if (step.clause.empty()) {
        empty_in_db = true;
        break;
      }
      const ClauseId id = store_clause(std::move(step.clause));
      attach(id);
      index_clause(id);
      refs.push_back({false, id});
    }
  }

  // Final check: the empty clause must be RUP against the surviving
  // database (equivalently: unit propagation alone yields a conflict).
  if (!rup(Clause{}, /*mark=*/true)) {
    return fail("drat: empty clause is not RUP at end of proof");
  }

  // Backward pass: unwind the timeline. Deletions reactivate; additions
  // deactivate and, when in the dependency core of a later check, must be
  // RUP at their own position. Non-core additions are skipped — the lazy
  // activation that makes backward checking cheap.
  for (auto it = refs.rbegin(); it != refs.rend(); ++it) {
    if (it->is_delete) {
      active_[it->id] = 1;
      continue;
    }
    active_[it->id] = 0;
    if (marked_[it->id] == 0) {
      stats_.skipped_additions++;
      continue;
    }
    stats_.checked_additions++;
    if (!rup(clauses_[it->id], /*mark=*/true)) {
      return fail("drat: core lemma " + std::to_string(it->id) +
                  " is not RUP at its position in the proof");
    }
  }
  return true;
}

}  // namespace trojanscout::proof
