// Minimal JSON value type for certificate serialization.
//
// Deliberately small: null / bool / int64 / double / string / array /
// object, with *insertion-ordered* object keys so that serializing a
// certificate is byte-deterministic (the acceptance bar for serial vs.
// parallel certify runs). Numbers are written losslessly for int64 and
// with %.17g for doubles. No external dependencies.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace trojanscout::proof {

class Json {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  Json() = default;
  Json(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)
  Json(bool b) : type_(Type::kBool), bool_(b) {}  // NOLINT
  Json(std::int64_t i) : type_(Type::kInt), int_(i) {}  // NOLINT
  Json(std::uint64_t u)  // NOLINT
      : type_(Type::kInt), int_(static_cast<std::int64_t>(u)) {}
  Json(int i) : type_(Type::kInt), int_(i) {}  // NOLINT
  Json(double d) : type_(Type::kDouble), double_(d) {}  // NOLINT
  Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}  // NOLINT
  Json(const char* s) : type_(Type::kString), string_(s) {}  // NOLINT

  static Json array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }
  static Json object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_null() const { return type_ == Type::kNull; }
  [[nodiscard]] bool is_object() const { return type_ == Type::kObject; }
  [[nodiscard]] bool is_array() const { return type_ == Type::kArray; }
  [[nodiscard]] bool is_string() const { return type_ == Type::kString; }
  [[nodiscard]] bool is_int() const { return type_ == Type::kInt; }
  [[nodiscard]] bool is_bool() const { return type_ == Type::kBool; }
  [[nodiscard]] bool is_number() const {
    return type_ == Type::kInt || type_ == Type::kDouble;
  }

  [[nodiscard]] bool as_bool() const { return bool_; }
  [[nodiscard]] std::int64_t as_int() const {
    return type_ == Type::kDouble ? static_cast<std::int64_t>(double_) : int_;
  }
  [[nodiscard]] double as_double() const {
    return type_ == Type::kInt ? static_cast<double>(int_) : double_;
  }
  [[nodiscard]] const std::string& as_string() const { return string_; }

  // -- array ------------------------------------------------------------
  void push_back(Json value) {
    type_ = Type::kArray;
    array_.push_back(std::move(value));
  }
  [[nodiscard]] const std::vector<Json>& items() const { return array_; }
  [[nodiscard]] std::size_t size() const {
    return type_ == Type::kObject ? object_.size() : array_.size();
  }

  // -- object (insertion-ordered) ---------------------------------------
  void set(std::string key, Json value) {
    type_ = Type::kObject;
    for (auto& entry : object_) {
      if (entry.first == key) {
        entry.second = std::move(value);
        return;
      }
    }
    object_.emplace_back(std::move(key), std::move(value));
  }
  /// Null reference when the key is absent.
  [[nodiscard]] const Json* find(const std::string& key) const {
    for (const auto& entry : object_) {
      if (entry.first == key) return &entry.second;
    }
    return nullptr;
  }
  [[nodiscard]] const std::vector<std::pair<std::string, Json>>& entries()
      const {
    return object_;
  }

  /// Compact, deterministic serialization (no whitespace).
  [[nodiscard]] std::string dump() const;
  /// Pretty serialization with 2-space indentation (for humans).
  [[nodiscard]] std::string dump_pretty() const;

  /// Parses a JSON document. Returns nullptr and sets `error` on failure.
  static bool parse(const std::string& text, Json& out, std::string* error);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> object_;
};

/// Standard base64 (RFC 4648, with padding) — used to embed binary DRAT
/// streams in certificate JSON.
std::string base64_encode(const std::uint8_t* data, std::size_t size);
inline std::string base64_encode(const std::vector<std::uint8_t>& data) {
  return base64_encode(data.data(), data.size());
}
bool base64_decode(const std::string& text, std::vector<std::uint8_t>& out);

}  // namespace trojanscout::proof
