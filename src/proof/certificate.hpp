// Self-contained, independently checkable audit certificates.
//
// `certify` runs Algorithm 1 exactly like the detector does (same
// obligations, same merge, same report signature — serial or across a
// thread pool) while capturing *evidence* for every per-obligation answer:
//
//   * SAT answers (property violated): the witness input sequence. Checked
//     by replaying it on the cycle-accurate simulator against an
//     independently re-instrumented monitor netlist (sim::replay_confirms).
//   * BMC UNSAT answers (frame proven clean): a binary-DRAT clause proof
//     with one UnsatMark per clean frame. Checked by the independent
//     proof::DratChecker against a CNF re-derived from the netlist — the
//     unrolling is deterministic, so the verifier reconstructs the exact
//     formula each frame's solve was asked about without trusting the
//     solver. Frame t's formula includes the ~bad_j units of earlier
//     frames; since mark j certifies each of those, the chain composes
//     into "bad unreachable through frame t".
//   * ATPG clean frames: no proof object exists (search exhaustion is not
//     a certificate); these are recorded honestly as unchecked.
//   * PDR unbounded proofs: the inductive invariant (a clause set over the
//     monitor cone's state variables). Checked by pdr::check_invariant,
//     which re-proves initiation, consecution, and property containment
//     with a fresh SAT solver against the re-instrumented monitor.
//
// Under `--engine portfolio` every record carries the backend that won its
// race (engine_used); evidence requirements follow that per-record engine,
// so one certificate can mix replayed witnesses, DRAT chains, and
// inductive invariants.
//
// The certificate bundles the design identity (structural hash of the
// netlist + spec), the detector configuration, all per-obligation records,
// and the DetectionReport signature, serialized as deterministic JSON:
// certifying the same design twice — at any jobs count — yields identical
// bytes. `check_certificate` re-validates everything offline.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/detector.hpp"
#include "core/verdict_store.hpp"
#include "designs/design.hpp"
#include "pdr/invariant.hpp"
#include "proof/drat.hpp"
#include "proof/json.hpp"

namespace trojanscout::proof {

/// 64-bit FNV-1a over the netlist structure (gates, ports, registers,
/// debug-name-independent) — the certificate's design identity.
std::uint64_t design_hash(const netlist::Netlist& nl);

/// 64-bit FNV-1a over the design name, valid-ways spec, and critical
/// register list — the certificate's property-contract identity.
std::uint64_t spec_hash(const designs::Design& design);

/// The per-frame CNF of a BMC run, re-derived without solving: replays the
/// solver + unroller construction (which never consults assignment state)
/// and snapshots, for each of `n_frames` solve points, the input-clause
/// count and the frame's bad-signal assumption literal.
struct BmcFormula {
  /// Every input clause in emission order (incl. the ~bad_t units appended
  /// after each clean frame).
  std::vector<sat::Clause> formula;
  struct FramePoint {
    std::size_t formula_clauses = 0;  // clauses visible at this frame's solve
    sat::Lit bad;                     // the solve's single assumption
  };
  std::vector<FramePoint> frames;
};
BmcFormula derive_bmc_formula(const netlist::Netlist& nl,
                              netlist::SignalId bad, std::size_t n_frames);

/// UNSAT evidence for one BMC obligation run: the full DRAT stream plus one
/// mark per clean frame (prefix lengths into formula and proof).
struct DratEvidence {
  std::vector<std::uint8_t> drat;
  std::vector<ProofLog::UnsatMark> marks;
};

/// One obligation's outcome + evidence. Deterministic fields only (no
/// wall-clock, no memory), so certificates are byte-stable across runs.
struct ObligationRecord {
  core::Obligation obligation;
  /// Backend that produced this verdict. Equal to the certificate-level
  /// engine for single-engine audits; the winning leg under portfolio.
  core::EngineKind engine_used = core::EngineKind::kBmc;
  bool violated = false;
  bool bound_reached = false;
  /// True when PDR closed the property at every depth; the invariant below
  /// is the evidence and is mandatory for such records.
  bool proven_unbounded = false;
  bool cancelled = false;
  std::size_t frames_completed = 0;
  std::string status;
  std::optional<sim::Witness> witness;     // violated runs
  std::optional<DratEvidence> drat;        // BMC runs (clean-frame proofs)
  std::optional<pdr::Invariant> invariant; // PDR unbounded proofs
};

struct Certificate {
  static constexpr const char* kFormat = "trojanscout-certificate";
  // v2: per-record engine_used / proven_unbounded / invariant evidence
  // (the portfolio + IC3 additions). v1 files fail the version check.
  static constexpr int kVersion = 2;

  std::string design_name;
  std::uint64_t design_hash = 0;
  std::uint64_t spec_hash = 0;

  // Detector configuration the audit ran with (everything needed to
  // re-enumerate obligations and re-merge the report).
  core::EngineKind engine = core::EngineKind::kBmc;
  std::size_t max_frames = 0;
  properties::CorruptionMonitorKind monitor_kind =
      properties::CorruptionMonitorKind::kExact;
  bool scan_pseudo_critical = true;
  bool check_bypass = true;
  double mirror_threshold = 0.8;
  std::size_t min_pseudo_violation_depth = 4;

  std::vector<ObligationRecord> records;

  // The claim: the DetectionReport signature obtained by merging the
  // records in enumeration order (identical to a plain detector run).
  bool trojan_found = false;
  std::size_t trust_bound_frames = 0;
  std::string report_signature;
};

struct CertifyOptions {
  core::DetectorOptions detector;
  /// Worker threads for the obligation fan-out; 1 = serial. The emitted
  /// certificate is byte-identical at every jobs count.
  std::size_t jobs = 1;
  /// Optional verdict store fed write-through as obligations complete.
  /// Certify never *reads* from it — a cached verdict carries no DRAT
  /// evidence, and certificates must be backed by a real engine run — but
  /// storing lets a later `audit --cache-dir` reuse the certified answers.
  core::VerdictStore* store = nullptr;
};

/// Runs the audit and gathers evidence. Throws on an internal invariant
/// break (e.g. a BMC run whose UNSAT marks disagree with frames_completed).
Certificate certify(const designs::Design& design,
                    const CertifyOptions& options);

struct CertificateCheckResult {
  bool ok = false;
  std::vector<std::string> errors;
  std::size_t witnesses_confirmed = 0;
  std::size_t drat_marks_checked = 0;
  /// PDR unbounded proofs whose invariant passed the independent
  /// initiation/consecution/property re-check.
  std::size_t invariants_checked = 0;
  /// Obligations whose clean answer has no checkable proof object (ATPG
  /// search exhaustion). Reported, not failed.
  std::size_t unchecked_obligations = 0;

  [[nodiscard]] std::string summary() const;
};

/// Re-validates a certificate against a design, sharing no state with the
/// run that produced it: recomputes both hashes, re-enumerates the
/// obligations, replays every witness on a re-instrumented monitor,
/// re-derives every BMC formula and DRAT-checks every clean-frame mark, and
/// re-merges the records into a report whose signature must match.
CertificateCheckResult check_certificate(const Certificate& cert,
                                         const designs::Design& design);

/// Deterministic JSON (de)serialization. `certificate_from_json` validates
/// structure, not evidence — run check_certificate for that.
Json certificate_to_json(const Certificate& cert);
bool certificate_from_json(const Json& json, Certificate& out,
                           std::string* error);

}  // namespace trojanscout::proof
