#include "proof/drat.hpp"

#include <string>

namespace trojanscout::proof {

namespace {

void append_varint(std::vector<std::uint8_t>& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(value & 0x7F) | 0x80);
    value >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(value));
}

/// Maps a literal to the format's unsigned code: (var+1)*2 + sign.
std::uint64_t lit_code(sat::Lit lit) {
  return (static_cast<std::uint64_t>(lit.var()) + 1) * 2 +
         (lit.sign() ? 1 : 0);
}

}  // namespace

void append_drat_record(std::vector<std::uint8_t>& out, std::uint8_t tag,
                        const sat::Clause& clause) {
  out.push_back(tag);
  for (const sat::Lit lit : clause) append_varint(out, lit_code(lit));
  out.push_back(0);
}

bool parse_drat(const std::uint8_t* data, std::size_t size,
                std::vector<DratStep>& out_steps, std::string* error) {
  auto fail = [error](const std::string& message) {
    if (error != nullptr) *error = message;
    return false;
  };
  std::size_t i = 0;
  while (i < size) {
    const std::uint8_t tag = data[i++];
    if (tag != kDratAdd && tag != kDratDelete) {
      return fail("drat: unknown record tag " + std::to_string(int(tag)) +
                  " at byte " + std::to_string(i - 1));
    }
    DratStep step;
    step.is_delete = tag == kDratDelete;
    for (;;) {
      std::uint64_t code = 0;
      int shift = 0;
      bool done = false;
      while (i < size) {
        const std::uint8_t byte = data[i++];
        if (shift >= 63) return fail("drat: varint overflow");
        code |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
        shift += 7;
        if ((byte & 0x80) == 0) {
          done = true;
          break;
        }
      }
      if (!done) return fail("drat: truncated varint");
      if (code == 0) break;  // record terminator
      if (code < 2) return fail("drat: invalid literal code");
      const sat::Var var = static_cast<sat::Var>(code / 2 - 1);
      step.clause.emplace_back(var, (code & 1) != 0);
    }
    out_steps.push_back(std::move(step));
  }
  return true;
}

void ProofLog::on_input(const sat::Clause& clause) {
  input_clauses_++;
  if (record_formula_) formula_.push_back(clause);
}

void ProofLog::on_learn(const sat::Clause& clause) {
  append_drat_record(drat_, kDratAdd, clause);
  learned_records_++;
}

void ProofLog::on_delete(const sat::Clause& clause) {
  append_drat_record(drat_, kDratDelete, clause);
  deleted_records_++;
}

void ProofLog::on_solve_unsat(const std::vector<sat::Lit>& assumptions) {
  marks_.push_back({input_clauses_, drat_.size(), assumptions});
}

ProofLogStats ProofLog::stats() const {
  ProofLogStats stats;
  stats.input_clauses = input_clauses_;
  stats.learned_records = learned_records_;
  stats.deleted_records = deleted_records_;
  stats.proof_bytes = drat_.size();
  return stats;
}

}  // namespace trojanscout::proof
