// Wire protocol of the audit service: newline-delimited JSON over a
// stream socket (Unix-domain or TCP — see service/transport.hpp).
//
// Requests — one JSON object per line, dispatched on "op":
//   {"op":"audit","id":"job-1","design":"ip.v","spec":"ip.spec",
//    "engine":"bmc","frames":128,"budget":60.0,
//    "no_scan":false,"no_bypass":false,
//    "subset":[0,3,7],"wire_verdicts":true}     (last two: fleet-internal)
//   {"op":"ping"}        liveness probe
//   {"op":"stats"}       cache + service counters
//   {"op":"metrics"}     Prometheus text exposition (see below)
//   {"op":"shutdown"}    finish in-flight jobs, then exit the accept loop
//
// Responses — streamed back on the same connection, one object per line,
// dispatched on "type":
//   {"type":"accepted","id":...,"design":...,"obligations":N}
//   {"type":"obligation","id":...,"index":i,"property":...,"status":...,
//    "violated":...,"bound_reached":...,"frames_completed":...,
//    "source":"cache"|"computed"|"shared"[,"verdict":{...}]}
//                                               (enumeration order)
//   {"type":"report","id":...,"trojan_found":...,"trust_bound_frames":...,
//    "summary":...,"signature":...,"cache_hits":N,"shared":N,"computed":N}
//   {"type":"retry-after","id":...,"retry_after_ms":N}   (fleet overload)
//   {"type":"pong"} / {"type":"stats",...} / {"type":"bye"}
//   {"type":"metrics","content_type":"text/plain; version=0.0.4",
//    "body":"<exposition>"}   (service/exposition.hpp renders the body;
//                              the fleet coordinator answers with worker
//                              snapshots merged into its own)
//   {"type":"error","id":...,"code":...,"message":...}
//
// "source" says where the verdict came from: the verdict cache (either
// tier), a fresh engine run, or an identical obligation already in flight
// (in-process dedupe, or an L2 claim another fleet worker resolved). The
// report's "signature" is DetectionReport::signature() verbatim,
// byte-identical to what a direct `trojanscout_cli audit` of the same
// design produces — also when the obligations were sharded across a fleet.
//
// Fleet extensions: "subset" restricts a job to the named indices of the
// canonical enumerate_obligations() order (how the coordinator shards one
// audit across workers), and "wire_verdicts" asks the worker to embed the
// full cache-codec verdict JSON in each obligation response so the
// coordinator can merge CheckResults without re-running anything.
// "retry-after" is the coordinator's admission-control answer when every
// worker queue is full: the client must back off and resubmit — overload
// is always an explicit response, never a silent drop.
//
// Trace stitching (fleet-internal): "trace_id" names the distributed
// trace a job belongs to and "parent_spans" (one uint64 per subset entry,
// same order) carries the coordinator-side span id each obligation should
// parent under. A worker running under a TraceRecorder then roots one
// span per obligation at the given parent, answers "accepted" with
// "trace_now_us" (its recorder clock, for the clock-offset handshake) and
// ships the job's span records back as "spans" rows on the report line —
// the coordinator remaps ids/tids and rebases timestamps into one
// Perfetto-loadable trace (`serve-fleet --trace-out`).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/detector.hpp"
#include "designs/design.hpp"

namespace trojanscout::service {

/// An audit job as it crosses the wire. Defaults mirror the audit
/// subcommand's flag defaults, so a job that only names design + spec
/// audits exactly like `trojanscout_cli audit --design ... --spec ...`.
struct AuditJob {
  std::string id;
  std::string design_path;
  std::string spec_path;
  core::EngineKind engine = core::EngineKind::kBmc;
  std::size_t frames = 128;
  double budget = 60.0;
  bool scan_pseudo_critical = true;
  bool check_bypass = true;
  /// Empty = the whole job. Otherwise the sorted obligation indices (into
  /// enumerate_obligations() order) this request covers — the fleet
  /// coordinator shards a job into per-worker subsets.
  std::vector<std::size_t> subset;
  /// Embed the full verdict payload (cache codec JSON) in each obligation
  /// response line, so the receiver can reconstruct CheckResults.
  bool wire_verdicts = false;
  /// Distributed-trace id this job belongs to (fleet-internal; empty = not
  /// part of a stitched trace). When set, a tracing worker ships its span
  /// records back on the report line.
  std::string trace_id;
  /// Coordinator-side parent span id per subset entry (same order as
  /// `subset`; must match its length). 0 = root.
  std::vector<std::uint64_t> parent_spans;

  /// The DetectorOptions an equivalent direct audit would use.
  [[nodiscard]] core::DetectorOptions detector_options() const;
};

/// Loads the job's design + spec files exactly like the audit subcommand
/// (shared by the worker daemon and the fleet coordinator, which must
/// enumerate the same obligations in the same order). Throws
/// std::runtime_error with a client-presentable message.
designs::Design load_job_design(const AuditJob& job);

struct Request {
  enum class Op { kAudit, kPing, kStats, kMetrics, kShutdown };
  Op op = Op::kPing;
  AuditJob job;  // kAudit only
};

/// Parses one request line. False (with `error`) on malformed input —
/// the daemon answers with an "error" response and keeps the connection.
bool parse_request(const std::string& line, Request& out, std::string* error);

/// Serializes an audit job to its request line (no trailing newline).
std::string audit_request_line(const AuditJob& job);
/// Serializes a control request ("ping" | "stats" | "shutdown").
std::string control_request_line(const std::string& op);

/// {"type":"error",...} with an optional machine-readable code.
std::string error_response_line(const std::string& id,
                                const std::string& message,
                                const std::string& code = "");
/// {"type":"retry-after",...} — the admission-control overload answer.
std::string retry_after_line(const std::string& id,
                             std::uint64_t retry_after_ms);

}  // namespace trojanscout::service
