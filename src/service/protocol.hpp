// Wire protocol of the audit daemon: newline-delimited JSON over a
// Unix-domain stream socket.
//
// Requests — one JSON object per line, dispatched on "op":
//   {"op":"audit","id":"job-1","design":"ip.v","spec":"ip.spec",
//    "engine":"bmc","frames":128,"budget":60.0,
//    "no_scan":false,"no_bypass":false}
//   {"op":"ping"}        liveness probe
//   {"op":"stats"}       cache + service counters
//   {"op":"shutdown"}    finish in-flight jobs, then exit the accept loop
//
// Responses — streamed back on the same connection, one object per line,
// dispatched on "type":
//   {"type":"accepted","id":...,"design":...,"obligations":N}
//   {"type":"obligation","id":...,"property":...,"status":...,
//    "violated":...,"bound_reached":...,"frames_completed":...,
//    "source":"cache"|"computed"|"shared"}      (enumeration order)
//   {"type":"report","id":...,"trojan_found":...,"trust_bound_frames":...,
//    "summary":...,"signature":...,"cache_hits":N,"shared":N,"computed":N}
//   {"type":"pong"} / {"type":"stats",...} / {"type":"bye"}
//   {"type":"error","id":...,"message":...}
//
// "source" says where the verdict came from: the persistent cache, a fresh
// engine run, or an identical obligation already in flight for another job
// (the daemon dedupes those — both jobs get the one result). The report's
// "signature" is DetectionReport::signature() verbatim, byte-identical to
// what a direct `trojanscout_cli audit` of the same design produces.
#pragma once

#include <cstdint>
#include <string>

#include "core/detector.hpp"

namespace trojanscout::service {

/// An audit job as it crosses the wire. Defaults mirror the audit
/// subcommand's flag defaults, so a job that only names design + spec
/// audits exactly like `trojanscout_cli audit --design ... --spec ...`.
struct AuditJob {
  std::string id;
  std::string design_path;
  std::string spec_path;
  core::EngineKind engine = core::EngineKind::kBmc;
  std::size_t frames = 128;
  double budget = 60.0;
  bool scan_pseudo_critical = true;
  bool check_bypass = true;

  /// The DetectorOptions an equivalent direct audit would use.
  [[nodiscard]] core::DetectorOptions detector_options() const;
};

struct Request {
  enum class Op { kAudit, kPing, kStats, kShutdown };
  Op op = Op::kPing;
  AuditJob job;  // kAudit only
};

/// Parses one request line. False (with `error`) on malformed input —
/// the daemon answers with an "error" response and keeps the connection.
bool parse_request(const std::string& line, Request& out, std::string* error);

/// Serializes an audit job to its request line (no trailing newline).
std::string audit_request_line(const AuditJob& job);
/// Serializes a control request ("ping" | "stats" | "shutdown").
std::string control_request_line(const std::string& op);

}  // namespace trojanscout::service
