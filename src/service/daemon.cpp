#include "service/daemon.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "cache/verdict_codec.hpp"
#include "designs/design.hpp"
#include "proof/json.hpp"
#include "specdsl/specdsl.hpp"
#include "util/logging.hpp"
#include "verilog/reader.hpp"

namespace trojanscout::service {

namespace {

using proof::Json;

/// Reads up to the next '\n' (consumed, not returned). False on EOF with
/// nothing buffered.
bool read_line(int fd, std::string& buffer, std::string& line) {
  for (;;) {
    const std::size_t eol = buffer.find('\n');
    if (eol != std::string::npos) {
      line = buffer.substr(0, eol);
      buffer.erase(0, eol + 1);
      return true;
    }
    char chunk[4096];
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      if (!buffer.empty()) {  // final unterminated line
        line = std::move(buffer);
        buffer.clear();
        return true;
      }
      return false;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
}

Json error_response(const std::string& id, const std::string& message) {
  Json j = Json::object();
  j.set("type", "error");
  j.set("id", id);
  j.set("message", message);
  return j;
}

const char* source_name(int source) {
  switch (source) {
    case 0: return "cache";
    case 1: return "computed";
    case 2: return "shared";
  }
  return "?";
}

}  // namespace

AuditDaemon::AuditDaemon(Options options) : options_(std::move(options)) {}

AuditDaemon::~AuditDaemon() { stop(); }

void AuditDaemon::start() {
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("cannot create socket");

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("socket path too long: " + options_.socket_path);
  }
  std::strncpy(addr.sun_path, options_.socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  ::unlink(options_.socket_path.c_str());
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(listen_fd_, 64) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("cannot bind " + options_.socket_path);
  }

  pool_ = std::make_unique<util::ThreadPool>(options_.jobs);
  running_.store(true, std::memory_order_release);
  stopping_.store(false, std::memory_order_release);
  accept_thread_ = std::thread([this] { accept_loop(); });
  TS_LOG_INFO("service: listening on %s (%zu engine workers)",
              options_.socket_path.c_str(), pool_->thread_count());
}

void AuditDaemon::wait() {
  std::unique_lock<std::mutex> lock(shutdown_mutex_);
  shutdown_cv_.wait(lock, [this] {
    return stopping_.load(std::memory_order_acquire);
  });
}

void AuditDaemon::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);
  shutdown_cv_.notify_all();
  if (accept_thread_.joinable()) accept_thread_.join();
  // Wake connection threads blocked between jobs in read(); a thread in
  // the middle of a job finishes it first (its sends just start failing).
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (const auto& conn : connections_) {
      std::lock_guard<std::mutex> conn_lock(conn->mutex);
      if (!conn->closed) ::shutdown(conn->fd, SHUT_RDWR);
    }
    threads.swap(connection_threads_);
    connections_.clear();
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  ::unlink(options_.socket_path.c_str());
  pool_.reset();
}

void AuditDaemon::accept_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0) continue;  // timeout or EINTR: re-check stopping
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    std::lock_guard<std::mutex> lock(connections_mutex_);
    connections_.push_back(conn);
    connection_threads_.emplace_back([this, conn] { serve_connection(conn); });
  }
}

bool AuditDaemon::send_line(int fd, const std::string& line) {
  std::string out = line;
  out += '\n';
  std::size_t sent = 0;
  while (sent < out.size()) {
    const ssize_t n =
        ::send(fd, out.data() + sent, out.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;  // client went away; keep computing, stop talking
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

void AuditDaemon::serve_connection(const std::shared_ptr<Connection>& conn) {
  const int fd = conn->fd;
  std::string buffer;
  std::string line;
  while (read_line(fd, buffer, line)) {
    if (line.empty()) continue;
    Request request;
    std::string error;
    if (!parse_request(line, request, &error)) {
      if (!send_line(fd, error_response("", error).dump())) break;
      continue;
    }
    if (request.op == Request::Op::kPing) {
      Json j = Json::object();
      j.set("type", "pong");
      if (!send_line(fd, j.dump())) break;
    } else if (request.op == Request::Op::kStats) {
      Json j = Json::object();
      j.set("type", "stats");
      j.set("jobs_completed", jobs_completed_.load(std::memory_order_relaxed));
      j.set("shared_obligations",
            shared_hits_.load(std::memory_order_relaxed));
      if (options_.cache != nullptr) {
        const cache::CacheStats stats = options_.cache->stats();
        j.set("cache_mode", cache::cache_mode_name(options_.cache->mode()));
        j.set("cache_hits", stats.hits);
        j.set("cache_misses", stats.misses);
        j.set("cache_stores", stats.stores);
        j.set("cache_evictions", stats.evictions);
        j.set("cache_corrupt_skipped", stats.corrupt_skipped);
        j.set("cache_entries",
              static_cast<std::uint64_t>(options_.cache->entry_count()));
        j.set("cache_bytes", options_.cache->total_bytes());
      } else {
        j.set("cache_mode", "off");
      }
      if (!send_line(fd, j.dump())) break;
    } else if (request.op == Request::Op::kShutdown) {
      Json j = Json::object();
      j.set("type", "bye");
      send_line(fd, j.dump());
      TS_LOG_INFO("service: shutdown requested");
      stopping_.store(true, std::memory_order_release);
      shutdown_cv_.notify_all();
      break;
    } else {
      handle_audit(fd, request.job);
    }
  }
  std::lock_guard<std::mutex> lock(conn->mutex);
  ::close(fd);
  conn->closed = true;
}

std::shared_ptr<AuditDaemon::Execution> AuditDaemon::claim(
    const std::string& key, bool& created) {
  std::lock_guard<std::mutex> lock(inflight_mutex_);
  auto it = inflight_.find(key);
  if (it != inflight_.end()) {
    created = false;
    return it->second;
  }
  auto exec = std::make_shared<Execution>();
  inflight_.emplace(key, exec);
  created = true;
  return exec;
}

void AuditDaemon::publish(const std::string& key,
                          const std::shared_ptr<Execution>& exec,
                          core::CheckResult result) {
  {
    std::lock_guard<std::mutex> lock(exec->mutex);
    exec->result = std::move(result);
    exec->done = true;
  }
  exec->cv.notify_all();
  std::lock_guard<std::mutex> lock(inflight_mutex_);
  inflight_.erase(key);
}

void AuditDaemon::handle_audit(int fd, const AuditJob& job) {
  // Job-lifetime state shared with pool tasks; tasks may briefly outlive
  // an aborted job (client hung up), so everything is shared_ptr-owned.
  auto design = std::make_shared<designs::Design>();
  const core::DetectorOptions detector_options = job.detector_options();
  try {
    design->name = job.design_path;
    std::ifstream in(job.design_path);
    if (!in) throw std::runtime_error("cannot open " + job.design_path);
    design->nl = verilog::read_verilog(in);
    design->nl.validate();
    design->spec = specdsl::load_spec_file(design->nl, job.spec_path);
    if (design->spec.registers.empty()) {
      throw std::runtime_error("spec file declares no registers");
    }
    for (const auto& reg_spec : design->spec.registers) {
      design->critical_registers.push_back(reg_spec.reg);
    }
  } catch (const std::exception& e) {
    send_line(fd, error_response(job.id, e.what()).dump());
    return;
  }

  const core::TrojanDetector merger(*design, detector_options);
  const std::vector<core::Obligation> obligations =
      merger.enumerate_obligations();
  auto worker =
      std::make_shared<core::TrojanDetector>(*design, detector_options);
  // Keep `design` alive as long as any task holds `worker` (the detector
  // stores a reference, not a copy).
  const cache::ObligationKeyer keyer(*design, detector_options,
                                     /*fail_fast=*/false);
  std::shared_ptr<cache::AuditVerdictStore> store;
  if (options_.cache != nullptr) {
    store = std::make_shared<cache::AuditVerdictStore>(
        *options_.cache, *design, detector_options, /*fail_fast=*/false);
  }

  {
    Json j = Json::object();
    j.set("type", "accepted");
    j.set("id", job.id);
    j.set("design", job.design_path);
    j.set("obligations", obligations.size());
    if (!send_line(fd, j.dump())) return;
  }

  // The engines copy the netlist per run; materialize the shared fanout
  // cache once before tasks race on it.
  (void)design->nl.fanouts();

  enum Source { kCache = 0, kComputed = 1, kShared = 2 };
  struct Slot {
    int source = kComputed;
    bool ready = false;
    core::CheckResult result;
    std::shared_ptr<Execution> exec;
  };
  std::vector<Slot> slots(obligations.size());

  // Claim before consulting the cache: only the claim owner looks up and
  // (on a miss) computes. Since tasks store to the cache *before* they
  // publish-and-release the claim, any later claimer's lookup hits — each
  // obligation runs an engine at most once across all concurrent jobs.
  for (std::size_t i = 0; i < obligations.size(); ++i) {
    Slot& slot = slots[i];
    const std::string key = keyer.key(obligations[i]);
    bool created = false;
    slot.exec = claim(key, created);
    if (!created) {
      slot.source = kShared;
      shared_hits_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (store != nullptr && store->lookup(obligations[i], slot.result)) {
      slot.source = kCache;
      slot.ready = true;
      publish(key, slot.exec, slot.result);  // feed concurrent sharers
      continue;
    }
    slot.source = kComputed;
    pool_->submit([this, worker, design, store, key,
                   obligation = obligations[i], exec = slot.exec] {
      core::CheckResult result = worker->run_obligation(obligation);
      if (store != nullptr) store->store(obligation, result);
      publish(key, exec, std::move(result));
      (void)design;  // owns the netlist `worker` references
    });
  }

  core::DetectionReport report;
  report.trust_bound_frames = detector_options.engine.max_frames;
  std::uint64_t counts[3] = {0, 0, 0};
  bool client_alive = true;
  for (std::size_t i = 0; i < obligations.size(); ++i) {
    Slot& slot = slots[i];
    if (!slot.ready) {
      std::unique_lock<std::mutex> lock(slot.exec->mutex);
      slot.exec->cv.wait(lock, [&] { return slot.exec->done; });
      slot.result = slot.exec->result;
      slot.ready = true;
    }
    counts[slot.source]++;
    merger.merge_obligation(report, obligations[i], slot.result);
    if (client_alive) {
      Json j = Json::object();
      j.set("type", "obligation");
      j.set("id", job.id);
      j.set("property", obligations[i].property_name());
      j.set("status", slot.result.status);
      j.set("violated", slot.result.violated);
      j.set("bound_reached", slot.result.bound_reached);
      j.set("frames_completed", slot.result.frames_completed);
      j.set("source", source_name(slot.source));
      client_alive = send_line(fd, j.dump());
    }
  }

  jobs_completed_.fetch_add(1, std::memory_order_relaxed);
  if (!client_alive) return;
  Json j = Json::object();
  j.set("type", "report");
  j.set("id", job.id);
  j.set("trojan_found", report.trojan_found);
  j.set("trust_bound_frames", report.trust_bound_frames);
  j.set("summary", report.summary());
  j.set("signature", report.signature());
  j.set("cache_hits", counts[kCache]);
  j.set("shared", counts[kShared]);
  j.set("computed", counts[kComputed]);
  send_line(fd, j.dump());
}

}  // namespace trojanscout::service
