#include "service/daemon.hpp"

#include <unistd.h>

#include <chrono>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "cache/verdict_codec.hpp"
#include "designs/design.hpp"
#include "proof/json.hpp"
#include "service/exposition.hpp"
#include "service/telemetry_wire.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/span.hpp"
#include "util/logging.hpp"

namespace trojanscout::service {

namespace {

using proof::Json;

const char* source_name(int source) {
  switch (source) {
    case 0: return "cache";
    case 1: return "computed";
    case 2: return "shared";
  }
  return "?";
}

// Process-wide refcounted lease on a global TraceRecorder, held for the
// duration of each traced job (one carrying a "trace_id"). The engines
// record through telemetry::Span's process-global recorder pointer, so a
// worker can only capture their spans by installing one — but a long-lived
// daemon must not accumulate events forever, so the recorder is live (and
// its buffer cleared) only while traced jobs are in flight. Concurrent
// traced jobs share the lease; their events are separated afterwards by
// per-job reachability filtering from each job's root span ids. If some
// other recorder is already installed globally (in-process tests, future
// `serve --trace-out`), the lease adopts it and leaves ownership alone.
std::mutex g_lease_mutex;
int g_lease_count = 0;
bool g_lease_external = false;
telemetry::TraceRecorder* g_lease_recorder = nullptr;  // kept alive forever:
// a Span captured the pointer at construction and may end after release

class TraceLease {
 public:
  TraceLease() {
    std::lock_guard<std::mutex> lock(g_lease_mutex);
    if (g_lease_count++ == 0) {
      g_lease_external = telemetry::TraceRecorder::global() != nullptr;
      if (!g_lease_external) {
        if (g_lease_recorder == nullptr) {
          g_lease_recorder = new telemetry::TraceRecorder();
        } else {
          g_lease_recorder->clear();
        }
        telemetry::TraceRecorder::set_global(g_lease_recorder);
      }
    }
    recorder_ = telemetry::TraceRecorder::global();
  }

  ~TraceLease() {
    std::lock_guard<std::mutex> lock(g_lease_mutex);
    if (--g_lease_count == 0 && !g_lease_external) {
      telemetry::TraceRecorder::set_global(nullptr);
      g_lease_recorder->clear();
    }
  }

  TraceLease(const TraceLease&) = delete;
  TraceLease& operator=(const TraceLease&) = delete;

  [[nodiscard]] telemetry::TraceRecorder* recorder() const {
    return recorder_;
  }

 private:
  telemetry::TraceRecorder* recorder_ = nullptr;
};

}  // namespace

AuditDaemon::AuditDaemon(Options options)
    : options_(std::move(options)),
      server_(
          LineServer::Options{options_.endpoint,
                              options_.read_timeout_seconds,
                              /*max_line_bytes=*/1 << 20,
                              /*backlog=*/64},
          [this](const std::string& line, const LineServer::Sender& send) {
            return handle_line(line, send);
          }),
      tier_(cache::TieredCache::Options{
          options_.cache, options_.l2, options_.claim_wait_seconds,
          options_.claim_stale_seconds, /*poll_interval_seconds=*/0.002}),
      series_(options_.series_capacity) {}

AuditDaemon::~AuditDaemon() { stop(); }

void AuditDaemon::start() {
  pool_ = std::make_unique<util::ThreadPool>(options_.jobs);
  try {
    server_.start();
  } catch (...) {
    pool_.reset();
    throw;
  }
  started_at_ = std::chrono::steady_clock::now();
  // A service's counters must be live regardless of the TROJANSCOUT_TELEMETRY
  // env var: the stats reply ships the full registry snapshot, and the fleet
  // coordinator merges it per worker.
  telemetry::Registry::global().set_enabled(true);
  if (options_.sample_interval_ms > 0) {
    sampler_.emplace(series_, telemetry::Registry::global(),
                     options_.sample_interval_ms);
    sampler_->start();
  }
  TS_LOG_INFO("service: listening on %s (%zu engine workers)",
              bound_endpoint().c_str(), pool_->thread_count());
}

void AuditDaemon::wait() { server_.wait(); }

void AuditDaemon::stop() {
  if (sampler_.has_value()) sampler_->stop();
  server_.stop();
  pool_.reset();
}

LineServer::Disposition AuditDaemon::handle_line(
    const std::string& line, const LineServer::Sender& send) {
  Request request;
  std::string error;
  if (!parse_request(line, request, &error)) {
    server_.note_bad_request();
    if (!send(error_response_line("", error, "bad_request"))) {
      return LineServer::Disposition::kClose;
    }
    return LineServer::Disposition::kKeep;
  }
  if (request.op == Request::Op::kPing) {
    Json j = Json::object();
    j.set("type", "pong");
    if (!send(j.dump())) return LineServer::Disposition::kClose;
  } else if (request.op == Request::Op::kStats) {
    Json j = Json::object();
    j.set("type", "stats");
    j.set("endpoint", bound_endpoint());
    j.set("pid", static_cast<std::int64_t>(::getpid()));
    const double uptime_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      started_at_)
            .count();
    j.set("uptime_s", uptime_s);
    // Monotonic milliseconds: what dashboards should subtract, immune to
    // wall-clock steps (the double uptime_s predates PR 9 and stays).
    j.set("uptime_ms", static_cast<std::uint64_t>(uptime_s * 1000.0));
    {
      Json sampler = Json::object();
      sampler.set("enabled", sampler_.has_value());
      sampler.set("interval_ms",
                  sampler_.has_value() ? sampler_->interval_ms() : 0.0);
      sampler.set("samples", series_.samples());
      sampler.set("last_age_ms",
                  sampler_.has_value()
                      ? static_cast<std::uint64_t>(
                            sampler_->last_sample_age_us() / 1000)
                      : 0);
      j.set("sampler", std::move(sampler));
    }
    j.set("jobs_completed", jobs_completed_.load(std::memory_order_relaxed));
    j.set("shared_obligations", shared_hits_.load(std::memory_order_relaxed));
    j.set("bad_requests", server_.bad_requests());
    if (options_.cache != nullptr) {
      const cache::CacheStats stats = options_.cache->stats();
      j.set("cache_mode", cache::cache_mode_name(options_.cache->mode()));
      j.set("cache_hits", stats.hits);
      j.set("cache_misses", stats.misses);
      j.set("cache_stores", stats.stores);
      j.set("cache_evictions", stats.evictions);
      j.set("cache_corrupt_skipped", stats.corrupt_skipped);
      j.set("cache_entries",
            static_cast<std::uint64_t>(options_.cache->entry_count()));
      j.set("cache_bytes", options_.cache->total_bytes());
    } else {
      j.set("cache_mode", "off");
    }
    if (options_.l2 != nullptr) {
      const cache::CacheStats stats = options_.l2->stats();
      j.set("l2_dir", options_.l2->dir());
      j.set("l2_hits", stats.hits);
      j.set("l2_misses", stats.misses);
      j.set("l2_stores", stats.stores);
      j.set("l2_entries",
            static_cast<std::uint64_t>(options_.l2->entry_count()));
    }
    // The full registry snapshot rides along so the fleet coordinator can
    // merge per-worker telemetry exactly (counters summed, histogram
    // buckets added) instead of hand-picking a few atomics.
    j.set("telemetry",
          snapshot_to_json(telemetry::Registry::global().snapshot()));
    // The windowed series rides along so pollers (`top`, check_metrics)
    // get rates and tail quantiles without differencing snapshots
    // themselves.
    j.set("series", series_to_json(series_));
    if (!send(j.dump())) return LineServer::Disposition::kClose;
  } else if (request.op == Request::Op::kMetrics) {
    Json j = Json::object();
    j.set("type", "metrics");
    j.set("content_type", "text/plain; version=0.0.4");
    j.set("body", metrics_body());
    if (!send(j.dump())) return LineServer::Disposition::kClose;
  } else if (request.op == Request::Op::kShutdown) {
    Json j = Json::object();
    j.set("type", "bye");
    send(j.dump());
    TS_LOG_INFO("service: shutdown requested");
    return LineServer::Disposition::kShutdown;
  } else {
    handle_audit(send, request.job);
  }
  return LineServer::Disposition::kKeep;
}

std::string AuditDaemon::metrics_body() {
  std::vector<ExtraCounter> extra = {
      {"service.jobs_completed",
       jobs_completed_.load(std::memory_order_relaxed)},
      {"service.shared_obligations",
       shared_hits_.load(std::memory_order_relaxed)},
      {"service.bad_requests", server_.bad_requests()},
  };
  std::size_t inflight = 0;
  {
    std::lock_guard<std::mutex> lock(inflight_mutex_);
    inflight = inflight_.size();
  }
  const double uptime_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started_at_)
          .count();
  std::vector<GaugeSample> gauges = {
      {"trojanscout_uptime_seconds", uptime_s, {}},
      {"trojanscout_up", 1.0, {}},
      {"trojanscout_engine_workers",
       static_cast<double>(pool_ != nullptr ? pool_->thread_count() : 0),
       {}},
      {"trojanscout_queue_depth",
       static_cast<double>(pool_ != nullptr ? pool_->in_flight() : 0),
       {}},
      {"trojanscout_inflight_obligations", static_cast<double>(inflight), {}},
  };
  if (sampler_.has_value()) {
    gauges.push_back({"trojanscout_sampler_last_sample_age_seconds",
                      static_cast<double>(sampler_->last_sample_age_us()) /
                          1e6,
                      {}});
  }
  if (options_.cache != nullptr) {
    gauges.push_back({"trojanscout_cache_entries",
                      static_cast<double>(options_.cache->entry_count()),
                      {}});
    gauges.push_back({"trojanscout_cache_bytes",
                      static_cast<double>(options_.cache->total_bytes()),
                      {}});
  }
  if (options_.l2 != nullptr) {
    gauges.push_back({"trojanscout_l2_entries",
                      static_cast<double>(options_.l2->entry_count()),
                      {}});
  }
  return to_prometheus_text(telemetry::Registry::global().snapshot(), extra,
                            gauges);
}

std::shared_ptr<AuditDaemon::Execution> AuditDaemon::claim(
    const std::string& key, bool& created) {
  std::lock_guard<std::mutex> lock(inflight_mutex_);
  auto it = inflight_.find(key);
  if (it != inflight_.end()) {
    created = false;
    return it->second;
  }
  auto exec = std::make_shared<Execution>();
  inflight_.emplace(key, exec);
  created = true;
  return exec;
}

void AuditDaemon::publish(const std::string& key,
                          const std::shared_ptr<Execution>& exec,
                          core::CheckResult result, int source) {
  {
    std::lock_guard<std::mutex> lock(exec->mutex);
    exec->result = std::move(result);
    exec->source = source;
    exec->done = true;
  }
  exec->cv.notify_all();
  std::lock_guard<std::mutex> lock(inflight_mutex_);
  inflight_.erase(key);
}

void AuditDaemon::handle_audit(const LineServer::Sender& send,
                               const AuditJob& job) {
  // Job-lifetime state shared with pool tasks; tasks may briefly outlive
  // an aborted job (client hung up), so everything is shared_ptr-owned.
  auto design = std::make_shared<designs::Design>();
  const core::DetectorOptions detector_options = job.detector_options();
  try {
    *design = load_job_design(job);
  } catch (const std::exception& e) {
    send(error_response_line(job.id, e.what()));
    return;
  }

  const core::TrojanDetector merger(*design, detector_options);
  const std::vector<core::Obligation> obligations =
      merger.enumerate_obligations();

  // The fleet coordinator shards a job by sending each worker the subset
  // of obligation indices whose keys hash to that worker's ring segment.
  std::vector<std::size_t> indices;
  if (job.subset.empty()) {
    indices.resize(obligations.size());
    for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  } else {
    for (const std::size_t index : job.subset) {
      if (index >= obligations.size()) {
        send(error_response_line(
            job.id, "subset index " + std::to_string(index) +
                        " out of range (job has " +
                        std::to_string(obligations.size()) + " obligations)"));
        return;
      }
      indices.push_back(index);
    }
  }

  auto worker =
      std::make_shared<core::TrojanDetector>(*design, detector_options);
  // Keep `design` alive as long as any task holds `worker` (the detector
  // stores a reference, not a copy).
  const cache::ObligationKeyer keyer(*design, detector_options,
                                     /*fail_fast=*/false);

  // A job carrying a trace id records its obligations under the leased
  // recorder and ships the span rows back on the report line; the merge
  // loop below only releases the lease after every span has closed.
  const bool tracing = !job.trace_id.empty();
  std::optional<TraceLease> lease;
  if (tracing) lease.emplace();
  telemetry::TraceRecorder* recorder = tracing ? lease->recorder() : nullptr;
  // Coordinator-side parent span per slot (parent_spans aligns with the
  // subset, which is exactly `indices` when present).
  const auto parent_of = [&job](std::size_t slot_index) -> std::uint64_t {
    return slot_index < job.parent_spans.size() ? job.parent_spans[slot_index]
                                                : 0;
  };

  {
    Json j = Json::object();
    j.set("type", "accepted");
    j.set("id", job.id);
    j.set("design", job.design_path);
    j.set("obligations", indices.size());
    if (recorder != nullptr) {
      // Our recorder clock "now", read between the coordinator's send and
      // receive — the clock-offset handshake it rebases our ts_us with.
      j.set("trace_now_us", recorder->now_us());
    }
    if (!send(j.dump())) return;
  }

  // The engines copy the netlist per run; materialize the shared fanout
  // cache once before tasks race on it.
  (void)design->nl.fanouts();

  enum Source { kCache = 0, kComputed = 1, kShared = 2 };
  struct Slot {
    int source = kComputed;
    bool ready = false;
    std::uint64_t root_id = 0;  // this job's root span for the obligation
    core::CheckResult result;
    std::shared_ptr<Execution> exec;
  };
  std::vector<Slot> slots(indices.size());

  // Claim before consulting the cache: only the claim owner looks up and
  // (on a miss) computes. Since tasks store to the cache *before* they
  // publish-and-release the claim, any later claimer's lookup hits — each
  // obligation runs an engine at most once across all concurrent jobs.
  // The same discipline repeats one level up: the pool task races for the
  // fleet-wide L2 claim before running an engine, so an obligation also
  // computes at most once across worker *processes* sharing the L2 dir.
  for (std::size_t slot_index = 0; slot_index < indices.size(); ++slot_index) {
    Slot& slot = slots[slot_index];
    const core::Obligation& obligation = obligations[indices[slot_index]];
    const std::string key = keyer.key(obligation);
    bool created = false;
    slot.exec = claim(key, created);
    if (!created) {
      slot.source = kShared;
      shared_hits_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    std::optional<std::string> payload = tier_.lookup(key);
    if (payload.has_value()) {
      core::CheckResult parsed;
      std::string parse_error;
      if (cache::verdict_from_json(*payload, parsed, nullptr, &parse_error)) {
        std::optional<telemetry::Span> span;
        if (tracing) {
          span.emplace("obligation:" + obligation.property_name(),
                       parent_of(slot_index));
          slot.root_id = span->id();
        }
        slot.source = kCache;
        slot.ready = true;
        slot.result = parsed;
        publish(key, slot.exec, std::move(parsed), kCache);
        continue;
      }
      TS_LOG_WARN("service: rejecting cache entry %s: %s", key.c_str(),
                  parse_error.c_str());
      tier_.invalidate(key);
    }
    slot.source = kComputed;
    pool_->submit([this, worker, design, key, obligation, exec = slot.exec,
                   tracing, parent = parent_of(slot_index)] {
      core::CheckResult result;
      int source = kComputed;
      {
        // The span closes before publish(): the job thread may snapshot
        // the recorder for the report as soon as every slot is done, and
        // the end event must already be recorded by then.
        std::optional<telemetry::Span> span;
        if (tracing) {
          span.emplace("obligation:" + obligation.property_name(), parent);
          if (span->id() != 0) {
            std::lock_guard<std::mutex> lock(exec->mutex);
            exec->span_id = span->id();
          }
        }
        // Fleet-wide claim race: exactly one worker process computes a
        // missing key; the rest adopt the published entry as "shared".
        std::string resolved;
        cache::TieredCache::Claim l2_claim = tier_.acquire(key, resolved);
        bool adopted = false;
        if (l2_claim == cache::TieredCache::Claim::kResolved) {
          core::CheckResult parsed;
          std::string parse_error;
          if (cache::verdict_from_json(resolved, parsed, nullptr,
                                       &parse_error)) {
            result = std::move(parsed);
            source = kShared;
            adopted = true;
          } else {
            // corrupt publication: fall back to computing
            tier_.invalidate(key);
          }
        }
        if (!adopted) {
          result = worker->run_obligation(obligation);
          if (!result.cancelled) {
            tier_.store(key, cache::verdict_to_json(obligation, result,
                                                    /*cert_ref=*/""));
          }
          if (l2_claim == cache::TieredCache::Claim::kOwner) {
            tier_.release(key);
          }
        }
      }
      publish(key, exec, std::move(result), source);
      (void)design;  // owns the netlist `worker` references
    });
  }

  core::DetectionReport report;
  report.trust_bound_frames = detector_options.engine.max_frames;
  std::uint64_t counts[3] = {0, 0, 0};
  bool client_alive = true;
  for (std::size_t slot_index = 0; slot_index < indices.size(); ++slot_index) {
    Slot& slot = slots[slot_index];
    const core::Obligation& obligation = obligations[indices[slot_index]];
    if (!slot.ready) {
      const bool in_process_share = slot.source == kShared;
      // An in-process sharer's obligation is recorded elsewhere (under the
      // creator job's root), so it roots a span of its own covering the
      // wait — its trace shows where the time went, the creator's shows
      // the engine work. Declared before the lock so the end event is
      // recorded (destructor order) after the wait completes but before
      // this job streams or snapshots anything.
      std::optional<telemetry::Span> wait_span;
      if (tracing && in_process_share) {
        wait_span.emplace("obligation:" + obligation.property_name(),
                          parent_of(slot_index));
        slot.root_id = wait_span->id();
      }
      std::unique_lock<std::mutex> lock(slot.exec->mutex);
      slot.exec->cv.wait(lock, [&] { return slot.exec->done; });
      slot.result = slot.exec->result;
      // A creator's slot adopts where its execution actually got the
      // verdict (engine, or another fleet worker via the L2 claim); an
      // in-process sharer stays "shared" regardless.
      if (!in_process_share) {
        slot.source = slot.exec->source;
        slot.root_id = slot.exec->span_id;
      }
      slot.ready = true;
    }
    counts[slot.source]++;
    merger.merge_obligation(report, obligation, slot.result);
    if (client_alive) {
      Json j = Json::object();
      j.set("type", "obligation");
      j.set("id", job.id);
      j.set("index", indices[slot_index]);
      j.set("property", obligation.property_name());
      j.set("status", slot.result.status);
      j.set("violated", slot.result.violated);
      j.set("bound_reached", slot.result.bound_reached);
      j.set("frames_completed", slot.result.frames_completed);
      j.set("source", source_name(slot.source));
      if (job.wire_verdicts) {
        // The cache codec is the wire codec: the coordinator reconstructs
        // the exact CheckResult (witness bits included) that a warm cache
        // hit would restore, so the merged fleet report is byte-identical.
        Json verdict;
        std::string parse_error;
        if (Json::parse(cache::verdict_to_json(obligation, slot.result, ""),
                        verdict, &parse_error)) {
          j.set("verdict", std::move(verdict));
        }
      }
      client_alive = send(j.dump());
    }
  }

  jobs_completed_.fetch_add(1, std::memory_order_relaxed);
  // Registry twins of the reply-level atomics: these are what the sampler
  // folds into windowed rates (`top`'s throughput sparkline).
  TS_COUNTER_ADD("service.jobs", 1);
  TS_COUNTER_ADD("service.obligations", indices.size());
  if (!client_alive) return;
  Json j = Json::object();
  j.set("type", "report");
  j.set("id", job.id);
  j.set("trojan_found", report.trojan_found);
  j.set("trust_bound_frames", report.trust_bound_frames);
  j.set("summary", report.summary());
  j.set("signature", report.signature());
  j.set("cache_hits", counts[kCache]);
  j.set("shared", counts[kShared]);
  j.set("computed", counts[kComputed]);
  if (recorder != nullptr) {
    // Ship this job's span records (and only this job's: reachability from
    // its root ids separates concurrent jobs sharing the recorder) for
    // coordinator-side stitching.
    std::vector<std::uint64_t> roots;
    roots.reserve(slots.size());
    for (const Slot& slot : slots) {
      if (slot.root_id != 0) roots.push_back(slot.root_id);
    }
    j.set("trace_id", job.trace_id);
    j.set("spans",
          trace_events_to_json(filter_reachable(recorder->events(), roots)));
  }
  send(j.dump());
}

}  // namespace trojanscout::service
