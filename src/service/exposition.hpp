// Prometheus text exposition (format 0.0.4) for the `metrics` protocol
// verb: renders a telemetry::Registry snapshot — plus service-level extra
// counters and gauges — as the plain-text family/sample format any
// scraper understands, and parses it back for validation.
//
// Mapping:
//   * counter `cache.hit`      → `trojanscout_cache_hit_total`
//   * histogram `bmc:solve`    → `trojanscout_bmc_solve_seconds` with
//     cumulative `_bucket{le="..."}` samples whose upper bounds are the
//     registry's log2-µs bucket edges (2^b µs, in seconds), `_sum`,
//     `_count`, and a closing `le="+Inf"` bucket equal to `_count`
//   * gauges (queue depth, in-flight, worker liveness, uptime) are
//     supplied by the caller, optionally labelled (e.g. per worker)
//
// Every family is preceded by its `# TYPE` line; families appear in
// sorted-name order so two identical snapshots render byte-identically.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/registry.hpp"

namespace trojanscout::service {

/// `raw` with every character outside [a-zA-Z0-9_] replaced by '_', and a
/// leading digit guarded — the metric-name sanitizer used by the mapping
/// above (prefix/suffix are added by the renderer).
std::string prometheus_name(const std::string& raw);

/// One gauge sample. Labels are (name, value) pairs rendered in order.
struct GaugeSample {
  std::string name;  // full family name, e.g. "trojanscout_queue_depth"
  double value = 0.0;
  std::vector<std::pair<std::string, std::string>> labels;
};

/// Extra cumulative counters that live outside the registry (daemon
/// atomics like jobs_completed). `name` is the raw metric name; it goes
/// through the same sanitize/prefix/suffix mapping as registry counters.
struct ExtraCounter {
  std::string name;
  std::uint64_t value = 0;
};

/// Renders one exposition document (ends with a trailing newline).
std::string to_prometheus_text(const telemetry::Registry::Snapshot& snapshot,
                               const std::vector<ExtraCounter>& extra_counters,
                               const std::vector<GaugeSample>& gauges);

/// Parsed-back exposition, keyed by full family name. Bucket lists keep
/// exposition order as (le_seconds, cumulative_count); the +Inf bucket is
/// carried with le = infinity.
struct ParsedExposition {
  struct Histogram {
    std::uint64_t count = 0;
    double sum_seconds = 0.0;
    std::vector<std::pair<double, std::uint64_t>> buckets;
  };
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;  // first sample of each gauge family
  std::map<std::string, Histogram> histograms;
};

/// Parses Prometheus text exposition. Enforces the invariants the
/// renderer guarantees (TYPE before samples, cumulative buckets, +Inf
/// bucket equal to _count); false (with `error`) on violation.
bool parse_prometheus_text(const std::string& text, ParsedExposition& out,
                           std::string* error);

}  // namespace trojanscout::service
