#include "service/client.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <stdexcept>
#include <thread>

namespace trojanscout::service {

using proof::Json;

Client::Client(const std::string& endpoint, const ConnectRetry& retry) {
  Endpoint parsed;
  std::string error;
  if (!parse_endpoint(endpoint, parsed, &error)) {
    throw std::runtime_error("bad endpoint '" + endpoint + "': " + error);
  }
  fd_ = connect_with_retry(parsed, retry);
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

void Client::send_line(const std::string& line) {
  std::string out = line;
  out += '\n';
  std::size_t sent = 0;
  while (sent < out.size()) {
    const ssize_t n =
        ::send(fd_, out.data() + sent, out.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("daemon connection lost while sending");
    }
    sent += static_cast<std::size_t>(n);
  }
}

bool Client::read_line(std::string& out) {
  for (;;) {
    const std::size_t eol = buffer_.find('\n');
    if (eol != std::string::npos) {
      out = buffer_.substr(0, eol);
      buffer_.erase(0, eol + 1);
      return true;
    }
    char chunk[4096];
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      if (!buffer_.empty()) {
        out = std::move(buffer_);
        buffer_.clear();
        return true;
      }
      return false;
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

bool Client::read_response(Json& out) {
  std::string line;
  if (!read_line(line)) return false;
  std::string error;
  return Json::parse(line, out, &error);
}

SubmitResult submit_audit(
    Client& client, const AuditJob& job,
    const std::function<void(const proof::Json&)>& on_response) {
  SubmitResult result;
  client.send_line(audit_request_line(job));
  Json response;
  while (client.read_response(response)) {
    if (on_response) on_response(response);
    const Json* type = response.find("type");
    if (type == nullptr || !type->is_string()) continue;
    if (type->as_string() == "error") {
      const Json* message = response.find("message");
      result.error = message != nullptr && message->is_string()
                         ? message->as_string()
                         : "daemon error";
      return result;
    }
    if (type->as_string() == "retry-after") {
      const Json* delay = response.find("retry_after_ms");
      result.retry_after_ms =
          delay != nullptr && delay->is_int() && delay->as_int() > 0
              ? static_cast<std::uint64_t>(delay->as_int())
              : 1;
      result.error = "fleet overloaded (retry-after)";
      return result;
    }
    if (type->as_string() == "accepted") {
      const Json* n = response.find("obligations");
      if (n != nullptr && n->is_int()) {
        result.obligations = static_cast<std::size_t>(n->as_int());
      }
    }
    if (type->as_string() == "report") {
      const auto get_u64 = [&response](const char* key) -> std::uint64_t {
        const Json* f = response.find(key);
        return f != nullptr && f->is_int()
                   ? static_cast<std::uint64_t>(f->as_int())
                   : 0;
      };
      const auto get_str = [&response](const char* key) -> std::string {
        const Json* f = response.find(key);
        return f != nullptr && f->is_string() ? f->as_string() : "";
      };
      const Json* found = response.find("trojan_found");
      result.trojan_found = found != nullptr && found->is_bool() &&
                            found->as_bool();
      result.signature = get_str("signature");
      result.summary = get_str("summary");
      result.cache_hits = get_u64("cache_hits");
      result.shared = get_u64("shared");
      result.computed = get_u64("computed");
      result.ok = true;
      return result;
    }
  }
  result.error = "daemon closed the connection before the report";
  return result;
}

SubmitResult submit_audit_with_retry(
    const std::string& endpoint, const AuditJob& job,
    const ConnectRetry& retry, int max_retries,
    const std::function<void(const proof::Json&)>& on_response,
    const std::function<void(std::uint64_t delay_ms)>& on_retry) {
  SubmitResult result;
  for (int attempt = 0;; ++attempt) {
    Client client(endpoint, retry);
    result = submit_audit(client, job, on_response);
    if (result.ok || result.retry_after_ms == 0 || attempt >= max_retries) {
      return result;
    }
    // Linear escalation of the server's hint: the fleet told us how long
    // its queues need; repeated refusals mean we are still too eager.
    const std::uint64_t delay_ms =
        result.retry_after_ms * static_cast<std::uint64_t>(attempt + 1);
    if (on_retry) on_retry(delay_ms);
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
  }
}

}  // namespace trojanscout::service
