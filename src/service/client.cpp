#include "service/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <stdexcept>

namespace trojanscout::service {

using proof::Json;

Client::Client(const std::string& socket_path) {
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) throw std::runtime_error("cannot create socket");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    ::close(fd_);
    throw std::runtime_error("socket path too long: " + socket_path);
  }
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd_);
    throw std::runtime_error("cannot connect to " + socket_path +
                             " (is the daemon running?)");
  }
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

void Client::send_line(const std::string& line) {
  std::string out = line;
  out += '\n';
  std::size_t sent = 0;
  while (sent < out.size()) {
    const ssize_t n =
        ::send(fd_, out.data() + sent, out.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("daemon connection lost while sending");
    }
    sent += static_cast<std::size_t>(n);
  }
}

bool Client::read_line(std::string& out) {
  for (;;) {
    const std::size_t eol = buffer_.find('\n');
    if (eol != std::string::npos) {
      out = buffer_.substr(0, eol);
      buffer_.erase(0, eol + 1);
      return true;
    }
    char chunk[4096];
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      if (!buffer_.empty()) {
        out = std::move(buffer_);
        buffer_.clear();
        return true;
      }
      return false;
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

bool Client::read_response(Json& out) {
  std::string line;
  if (!read_line(line)) return false;
  std::string error;
  return Json::parse(line, out, &error);
}

SubmitResult submit_audit(
    Client& client, const AuditJob& job,
    const std::function<void(const proof::Json&)>& on_response) {
  SubmitResult result;
  client.send_line(audit_request_line(job));
  Json response;
  while (client.read_response(response)) {
    if (on_response) on_response(response);
    const Json* type = response.find("type");
    if (type == nullptr || !type->is_string()) continue;
    if (type->as_string() == "error") {
      const Json* message = response.find("message");
      result.error = message != nullptr && message->is_string()
                         ? message->as_string()
                         : "daemon error";
      return result;
    }
    if (type->as_string() == "accepted") {
      const Json* n = response.find("obligations");
      if (n != nullptr && n->is_int()) {
        result.obligations = static_cast<std::size_t>(n->as_int());
      }
    }
    if (type->as_string() == "report") {
      const auto get_u64 = [&response](const char* key) -> std::uint64_t {
        const Json* f = response.find(key);
        return f != nullptr && f->is_int()
                   ? static_cast<std::uint64_t>(f->as_int())
                   : 0;
      };
      const auto get_str = [&response](const char* key) -> std::string {
        const Json* f = response.find(key);
        return f != nullptr && f->is_string() ? f->as_string() : "";
      };
      const Json* found = response.find("trojan_found");
      result.trojan_found = found != nullptr && found->is_bool() &&
                            found->as_bool();
      result.signature = get_str("signature");
      result.summary = get_str("summary");
      result.cache_hits = get_u64("cache_hits");
      result.shared = get_u64("shared");
      result.computed = get_u64("computed");
      result.ok = true;
      return result;
    }
  }
  result.error = "daemon closed the connection before the report";
  return result;
}

}  // namespace trojanscout::service
