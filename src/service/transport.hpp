// Transport abstraction for the audit service: one NDJSON protocol, two
// socket families.
//
// An Endpoint names where a daemon listens or a client connects:
//   "unix:/run/ts.sock"   AF_UNIX stream socket (also accepted bare:
//                         any string without a scheme prefix is a path)
//   "tcp:host:port"       AF_INET stream socket; port 0 asks the kernel
//                         for an ephemeral port, and Listener reports the
//                         actually-bound endpoint so tests and the fleet
//                         coordinator can attach without port races.
//
// The free functions below are the shared plumbing of every server and
// client in src/service and src/fleet: endpoint parsing, listen/accept,
// connect (with bounded exponential-backoff retry + jitter for clients
// racing a daemon that is still starting), receive timeouts, line framing,
// and UTF-8 validation for protocol robustness checks.
#pragma once

#include <cstdint>
#include <string>

namespace trojanscout::service {

struct Endpoint {
  enum class Kind { kUnix, kTcp };
  Kind kind = Kind::kUnix;
  std::string path;  // kUnix: filesystem path of the socket
  std::string host;  // kTcp
  std::uint16_t port = 0;

  /// Canonical text form ("unix:/path" or "tcp:host:port").
  [[nodiscard]] std::string to_string() const;
};

/// Parses an endpoint string. False (with `error`) on a malformed spec;
/// a string without a "unix:"/"tcp:" prefix parses as a Unix socket path.
bool parse_endpoint(const std::string& text, Endpoint& out,
                    std::string* error);

/// Listening socket over either family. For tcp:...:0 the kernel-assigned
/// port is visible through bound_endpoint() after listen() succeeds.
class Listener {
 public:
  Listener() = default;
  ~Listener();
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Binds + listens. Throws std::runtime_error on failure. For Unix
  /// endpoints a stale socket file is unlinked first.
  void listen(const Endpoint& endpoint, int backlog = 64);

  /// Accepts one connection; -1 on error (caller re-checks its stop flag).
  [[nodiscard]] int accept_fd() const;

  /// Closes the listening socket and (Unix) unlinks the socket file.
  void close();

  [[nodiscard]] int fd() const { return fd_; }
  [[nodiscard]] const Endpoint& bound_endpoint() const { return bound_; }

 private:
  int fd_ = -1;
  Endpoint bound_;
};

/// Connects to an endpoint. Returns the fd, or -1 with `error` filled.
int connect_endpoint(const Endpoint& endpoint, std::string* error);

/// Client-side connect with bounded retry: attempt, then back off
/// exponentially from `base_delay_ms` (doubling, capped at `max_delay_ms`)
/// with uniform jitter in [0.5, 1.5) of the delay, so a herd of clients
/// racing one daemon's startup does not reconnect in lockstep. Throws
/// std::runtime_error after `attempts` failures.
struct ConnectRetry {
  int attempts = 1;           // 1 = fail immediately (the old behavior)
  double base_delay_ms = 50;
  double max_delay_ms = 1000;
};
int connect_with_retry(const Endpoint& endpoint, const ConnectRetry& retry);

/// Sets SO_RCVTIMEO; seconds <= 0 clears the timeout.
void set_recv_timeout(int fd, double seconds);

/// Result of one framed read: a line, idle timeout (SO_RCVTIMEO expired
/// with nothing buffered), or EOF/error.
enum class ReadLineStatus { kLine, kTimeout, kEof };

/// Reads up to the next '\n' (consumed, not returned) using `buffer` as
/// carry-over between calls. A final unterminated line before EOF is
/// returned as a line.
ReadLineStatus read_frame(int fd, std::string& buffer, std::string& line);

/// Appends '\n' and sends the whole line; false when the peer went away.
bool send_frame(int fd, const std::string& line);

/// Strict UTF-8 well-formedness check (rejects overlongs, surrogates,
/// and code points beyond U+10FFFF) — malformed request lines are answered
/// with a structured error instead of reaching the JSON parser.
bool is_valid_utf8(const std::string& text);

}  // namespace trojanscout::service
