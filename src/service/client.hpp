// Minimal blocking client for the audit-tier NDJSON protocol (daemon or
// fleet coordinator, Unix or TCP), shared by the `submit` subcommand, the
// throughput bench, and the service/fleet tests.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "proof/json.hpp"
#include "service/protocol.hpp"
#include "service/transport.hpp"

namespace trojanscout::service {

class Client {
 public:
  /// Connects to an endpoint ("unix:/path", bare path, "tcp:host:port"),
  /// retrying per `retry` (default: one attempt). Throws
  /// std::runtime_error on a malformed endpoint or after the last failed
  /// attempt.
  explicit Client(const std::string& endpoint,
                  const ConnectRetry& retry = ConnectRetry{});
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Sends one request line (the newline is appended here).
  void send_line(const std::string& line);

  /// Reads the next response line into `out`; false on EOF.
  bool read_line(std::string& out);

  /// Reads and parses the next response; false on EOF or non-JSON noise.
  bool read_response(proof::Json& out);

 private:
  int fd_ = -1;
  std::string buffer_;
};

/// Outcome of one submitted audit job.
struct SubmitResult {
  bool ok = false;            // report received (vs error / lost daemon)
  bool trojan_found = false;
  std::string error;          // daemon-side message when !ok
  std::string signature;      // DetectionReport::signature() text
  std::string summary;
  std::uint64_t cache_hits = 0;
  std::uint64_t shared = 0;
  std::uint64_t computed = 0;
  std::size_t obligations = 0;
  /// Set (> 0) when the fleet refused the job with {"type":"retry-after"};
  /// ok stays false and `error` names the refusal.
  std::uint64_t retry_after_ms = 0;
};

/// Submits one audit job and consumes its response stream. `on_response`
/// (optional) sees every parsed response object as it arrives — the
/// submit subcommand prints progress from it.
SubmitResult submit_audit(Client& client, const AuditJob& job,
                          const std::function<void(const proof::Json&)>&
                              on_response = nullptr);

/// Overload-aware submit: honors retry-after refusals by sleeping the
/// server's hint (scaled by the refusal count) and reconnecting, up to
/// `max_retries` resubmissions. `on_retry` (optional) observes each
/// backoff. Connection establishment uses `retry` each time.
SubmitResult submit_audit_with_retry(
    const std::string& endpoint, const AuditJob& job,
    const ConnectRetry& retry, int max_retries,
    const std::function<void(const proof::Json&)>& on_response = nullptr,
    const std::function<void(std::uint64_t delay_ms)>& on_retry = nullptr);

}  // namespace trojanscout::service
