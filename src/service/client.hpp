// Minimal blocking client for the audit daemon's Unix-socket protocol,
// shared by the `submit` subcommand and the service tests.
#pragma once

#include <functional>
#include <string>

#include "proof/json.hpp"
#include "service/protocol.hpp"

namespace trojanscout::service {

class Client {
 public:
  /// Connects to a daemon's socket. Throws std::runtime_error on failure.
  explicit Client(const std::string& socket_path);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Sends one request line (the newline is appended here).
  void send_line(const std::string& line);

  /// Reads the next response line into `out`; false on EOF.
  bool read_line(std::string& out);

  /// Reads and parses the next response; false on EOF or non-JSON noise.
  bool read_response(proof::Json& out);

 private:
  int fd_ = -1;
  std::string buffer_;
};

/// Outcome of one submitted audit job.
struct SubmitResult {
  bool ok = false;            // report received (vs error / lost daemon)
  bool trojan_found = false;
  std::string error;          // daemon-side message when !ok
  std::string signature;      // DetectionReport::signature() text
  std::string summary;
  std::uint64_t cache_hits = 0;
  std::uint64_t shared = 0;
  std::uint64_t computed = 0;
  std::size_t obligations = 0;
};

/// Submits one audit job and consumes its response stream. `on_response`
/// (optional) sees every parsed response object as it arrives — the
/// submit subcommand prints progress from it.
SubmitResult submit_audit(Client& client, const AuditJob& job,
                          const std::function<void(const proof::Json&)>&
                              on_response = nullptr);

}  // namespace trojanscout::service
