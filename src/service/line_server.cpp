#include "service/line_server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <stdexcept>
#include <utility>

#include "proof/json.hpp"
#include "telemetry/registry.hpp"
#include "util/logging.hpp"

namespace trojanscout::service {

namespace {

std::string rejection_line(const char* code, const std::string& message) {
  proof::Json j = proof::Json::object();
  j.set("type", "error");
  j.set("code", code);
  j.set("message", message);
  return j.dump();
}

}  // namespace

LineServer::LineServer(Options options, Handler handler)
    : options_(std::move(options)), handler_(std::move(handler)) {}

LineServer::~LineServer() { stop(); }

void LineServer::start() {
  Endpoint endpoint;
  std::string error;
  if (!parse_endpoint(options_.endpoint, endpoint, &error)) {
    throw std::runtime_error(error);
  }
  listener_.listen(endpoint, options_.backlog);
  running_.store(true, std::memory_order_release);
  stopping_.store(false, std::memory_order_release);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void LineServer::wait() {
  std::unique_lock<std::mutex> lock(shutdown_mutex_);
  shutdown_cv_.wait(lock, [this] {
    return stopping_.load(std::memory_order_acquire);
  });
}

void LineServer::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);
  shutdown_cv_.notify_all();
  if (accept_thread_.joinable()) accept_thread_.join();
  // Wake connection threads blocked between requests in read(); a thread
  // in the middle of a request finishes it first (its sends just start
  // failing).
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (const auto& conn : connections_) {
      std::lock_guard<std::mutex> conn_lock(conn->mutex);
      if (!conn->closed) ::shutdown(conn->fd, SHUT_RDWR);
    }
    threads.swap(connection_threads_);
    connections_.clear();
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
  listener_.close();
}

void LineServer::accept_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd pfd{};
    pfd.fd = listener_.fd();
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0) continue;  // timeout or EINTR: re-check stopping
    const int fd = listener_.accept_fd();
    if (fd < 0) continue;
    if (options_.read_timeout_seconds > 0) {
      set_recv_timeout(fd, options_.read_timeout_seconds);
    }
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    std::lock_guard<std::mutex> lock(connections_mutex_);
    connections_.push_back(conn);
    connection_threads_.emplace_back([this, conn] { serve_connection(conn); });
  }
}

void LineServer::note_bad_request() {
  bad_requests_.fetch_add(1, std::memory_order_relaxed);
  TS_COUNTER_ADD("service.bad_request", 1);
}

bool LineServer::reject_line(int fd, const char* code,
                             const std::string& message) {
  note_bad_request();
  return send_frame(fd, rejection_line(code, message));
}

void LineServer::serve_connection(const std::shared_ptr<Connection>& conn) {
  const int fd = conn->fd;
  const Sender sender = [fd](const std::string& line) {
    return send_frame(fd, line);
  };
  std::string buffer;
  std::string line;
  bool discarding = false;  // inside an oversized line, dropping to '\n'
  bool open = true;
  while (open) {
    // Enforce the line cap on the carry-over buffer *before* blocking for
    // more input: a client streaming an unbounded line must be rejected
    // while it streams, not after it exhausts memory.
    const std::size_t eol = buffer.find('\n');
    if (eol == std::string::npos && buffer.size() > options_.max_line_bytes) {
      if (!discarding) {
        discarding = true;
        if (!reject_line(fd, "line_too_long",
                         "request line exceeds " +
                             std::to_string(options_.max_line_bytes) +
                             " bytes")) {
          break;
        }
      }
      buffer.clear();  // drop the oversized prefix, keep scanning for '\n'
    }
    switch (read_frame(fd, buffer, line)) {
      case ReadLineStatus::kEof:
        open = false;
        continue;
      case ReadLineStatus::kTimeout:
        send_frame(fd, rejection_line("idle_timeout",
                                      "connection idle past the read "
                                      "timeout; closing"));
        open = false;
        continue;
      case ReadLineStatus::kLine:
        break;
    }
    if (discarding) {  // this line is the tail of the oversized one
      discarding = false;
      continue;
    }
    if (line.size() > options_.max_line_bytes) {
      if (!reject_line(fd, "line_too_long",
                       "request line exceeds " +
                           std::to_string(options_.max_line_bytes) +
                           " bytes")) {
        break;
      }
      continue;
    }
    if (line.empty()) continue;
    if (!is_valid_utf8(line)) {
      if (!reject_line(fd, "bad_utf8",
                       "request line is not well-formed UTF-8")) {
        break;
      }
      continue;
    }
    const Disposition disposition = handler_(line, sender);
    if (disposition == Disposition::kClose) {
      open = false;
    } else if (disposition == Disposition::kShutdown) {
      stopping_.store(true, std::memory_order_release);
      shutdown_cv_.notify_all();
      open = false;
    }
  }
  std::lock_guard<std::mutex> lock(conn->mutex);
  ::close(fd);
  conn->closed = true;
}

}  // namespace trojanscout::service
