#include "service/protocol.hpp"

#include <fstream>
#include <optional>
#include <stdexcept>

#include "proof/json.hpp"
#include "specdsl/specdsl.hpp"
#include "verilog/reader.hpp"

namespace trojanscout::service {

using proof::Json;

designs::Design load_job_design(const AuditJob& job) {
  designs::Design design;
  design.name = job.design_path;
  std::ifstream in(job.design_path);
  if (!in) throw std::runtime_error("cannot open " + job.design_path);
  design.nl = verilog::read_verilog(in);
  design.nl.validate();
  design.spec = specdsl::load_spec_file(design.nl, job.spec_path);
  if (design.spec.registers.empty()) {
    throw std::runtime_error("spec file declares no registers");
  }
  for (const auto& reg_spec : design.spec.registers) {
    design.critical_registers.push_back(reg_spec.reg);
  }
  return design;
}

core::DetectorOptions AuditJob::detector_options() const {
  core::DetectorOptions options;
  options.engine.kind = engine;
  options.engine.max_frames = frames;
  options.engine.time_limit_seconds = budget;
  options.scan_pseudo_critical = scan_pseudo_critical;
  options.check_bypass = check_bypass;
  return options;
}

bool parse_request(const std::string& line, Request& out, std::string* error) {
  const auto fail = [error](const std::string& message) {
    if (error != nullptr) *error = message;
    return false;
  };
  Json j;
  std::string parse_error;
  if (!Json::parse(line, j, &parse_error)) {
    return fail("bad JSON: " + parse_error);
  }
  if (!j.is_object()) return fail("request is not an object");
  const Json* op = j.find("op");
  if (op == nullptr || !op->is_string()) return fail("missing op");

  Request request;
  if (op->as_string() == "ping") {
    request.op = Request::Op::kPing;
  } else if (op->as_string() == "stats") {
    request.op = Request::Op::kStats;
  } else if (op->as_string() == "metrics") {
    request.op = Request::Op::kMetrics;
  } else if (op->as_string() == "shutdown") {
    request.op = Request::Op::kShutdown;
  } else if (op->as_string() == "audit") {
    request.op = Request::Op::kAudit;
    AuditJob& job = request.job;
    const Json* f = j.find("id");
    if (f != nullptr && f->is_string()) job.id = f->as_string();
    f = j.find("design");
    if (f == nullptr || !f->is_string() || f->as_string().empty()) {
      return fail("audit needs a design path");
    }
    job.design_path = f->as_string();
    f = j.find("spec");
    if (f == nullptr || !f->is_string() || f->as_string().empty()) {
      return fail("audit needs a spec path");
    }
    job.spec_path = f->as_string();
    f = j.find("engine");
    if (f != nullptr) {
      if (!f->is_string()) return fail("bad engine");
      const std::optional<core::EngineKind> kind =
          core::engine_kind_from_string(f->as_string());
      if (!kind.has_value()) {
        return fail("unknown engine '" + f->as_string() + "'");
      }
      job.engine = *kind;
    }
    f = j.find("frames");
    if (f != nullptr) {
      if (!f->is_int() || f->as_int() <= 0) return fail("bad frames");
      job.frames = static_cast<std::size_t>(f->as_int());
    }
    f = j.find("budget");
    if (f != nullptr) {
      if (!f->is_number() || f->as_double() <= 0) return fail("bad budget");
      job.budget = f->as_double();
    }
    f = j.find("no_scan");
    if (f != nullptr) {
      if (!f->is_bool()) return fail("bad no_scan");
      job.scan_pseudo_critical = !f->as_bool();
    }
    f = j.find("no_bypass");
    if (f != nullptr) {
      if (!f->is_bool()) return fail("bad no_bypass");
      job.check_bypass = !f->as_bool();
    }
    f = j.find("subset");
    if (f != nullptr) {
      if (!f->is_array()) return fail("bad subset");
      for (const Json& idx : f->items()) {
        if (!idx.is_int() || idx.as_int() < 0) return fail("bad subset index");
        const auto value = static_cast<std::size_t>(idx.as_int());
        if (!job.subset.empty() && value <= job.subset.back()) {
          return fail("subset must be sorted and unique");
        }
        job.subset.push_back(value);
      }
    }
    f = j.find("wire_verdicts");
    if (f != nullptr) {
      if (!f->is_bool()) return fail("bad wire_verdicts");
      job.wire_verdicts = f->as_bool();
    }
    f = j.find("trace_id");
    if (f != nullptr) {
      if (!f->is_string()) return fail("bad trace_id");
      job.trace_id = f->as_string();
    }
    f = j.find("parent_spans");
    if (f != nullptr) {
      if (!f->is_array()) return fail("bad parent_spans");
      for (const Json& span : f->items()) {
        if (!span.is_int() || span.as_int() < 0) {
          return fail("bad parent_spans entry");
        }
        job.parent_spans.push_back(static_cast<std::uint64_t>(span.as_int()));
      }
      if (job.parent_spans.size() != job.subset.size()) {
        return fail("parent_spans must match subset length");
      }
    }
  } else {
    return fail("unknown op '" + op->as_string() + "'");
  }
  out = std::move(request);
  return true;
}

std::string audit_request_line(const AuditJob& job) {
  Json j = Json::object();
  j.set("op", "audit");
  j.set("id", job.id);
  j.set("design", job.design_path);
  j.set("spec", job.spec_path);
  j.set("engine", core::engine_flag_name(job.engine));
  j.set("frames", job.frames);
  j.set("budget", job.budget);
  j.set("no_scan", !job.scan_pseudo_critical);
  j.set("no_bypass", !job.check_bypass);
  if (!job.subset.empty()) {
    Json subset = Json::array();
    for (const std::size_t index : job.subset) {
      subset.push_back(static_cast<std::int64_t>(index));
    }
    j.set("subset", std::move(subset));
  }
  if (job.wire_verdicts) j.set("wire_verdicts", true);
  if (!job.trace_id.empty()) {
    j.set("trace_id", job.trace_id);
    Json parents = Json::array();
    for (const std::uint64_t span : job.parent_spans) {
      parents.push_back(static_cast<std::int64_t>(span));
    }
    j.set("parent_spans", std::move(parents));
  }
  return j.dump();
}

std::string control_request_line(const std::string& op) {
  Json j = Json::object();
  j.set("op", op);
  return j.dump();
}

std::string error_response_line(const std::string& id,
                                const std::string& message,
                                const std::string& code) {
  Json j = Json::object();
  j.set("type", "error");
  j.set("id", id);
  if (!code.empty()) j.set("code", code);
  j.set("message", message);
  return j.dump();
}

std::string retry_after_line(const std::string& id,
                             std::uint64_t retry_after_ms) {
  Json j = Json::object();
  j.set("type", "retry-after");
  j.set("id", id);
  j.set("retry_after_ms", retry_after_ms);
  return j.dump();
}

}  // namespace trojanscout::service
