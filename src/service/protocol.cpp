#include "service/protocol.hpp"

#include "proof/json.hpp"

namespace trojanscout::service {

using proof::Json;

core::DetectorOptions AuditJob::detector_options() const {
  core::DetectorOptions options;
  options.engine.kind = engine;
  options.engine.max_frames = frames;
  options.engine.time_limit_seconds = budget;
  options.scan_pseudo_critical = scan_pseudo_critical;
  options.check_bypass = check_bypass;
  return options;
}

bool parse_request(const std::string& line, Request& out, std::string* error) {
  const auto fail = [error](const std::string& message) {
    if (error != nullptr) *error = message;
    return false;
  };
  Json j;
  std::string parse_error;
  if (!Json::parse(line, j, &parse_error)) {
    return fail("bad JSON: " + parse_error);
  }
  if (!j.is_object()) return fail("request is not an object");
  const Json* op = j.find("op");
  if (op == nullptr || !op->is_string()) return fail("missing op");

  Request request;
  if (op->as_string() == "ping") {
    request.op = Request::Op::kPing;
  } else if (op->as_string() == "stats") {
    request.op = Request::Op::kStats;
  } else if (op->as_string() == "shutdown") {
    request.op = Request::Op::kShutdown;
  } else if (op->as_string() == "audit") {
    request.op = Request::Op::kAudit;
    AuditJob& job = request.job;
    const Json* f = j.find("id");
    if (f != nullptr && f->is_string()) job.id = f->as_string();
    f = j.find("design");
    if (f == nullptr || !f->is_string() || f->as_string().empty()) {
      return fail("audit needs a design path");
    }
    job.design_path = f->as_string();
    f = j.find("spec");
    if (f == nullptr || !f->is_string() || f->as_string().empty()) {
      return fail("audit needs a spec path");
    }
    job.spec_path = f->as_string();
    f = j.find("engine");
    if (f != nullptr) {
      if (!f->is_string()) return fail("bad engine");
      if (f->as_string() == "bmc") job.engine = core::EngineKind::kBmc;
      else if (f->as_string() == "atpg") job.engine = core::EngineKind::kAtpg;
      else return fail("unknown engine '" + f->as_string() + "'");
    }
    f = j.find("frames");
    if (f != nullptr) {
      if (!f->is_int() || f->as_int() <= 0) return fail("bad frames");
      job.frames = static_cast<std::size_t>(f->as_int());
    }
    f = j.find("budget");
    if (f != nullptr) {
      if (!f->is_number() || f->as_double() <= 0) return fail("bad budget");
      job.budget = f->as_double();
    }
    f = j.find("no_scan");
    if (f != nullptr) {
      if (!f->is_bool()) return fail("bad no_scan");
      job.scan_pseudo_critical = !f->as_bool();
    }
    f = j.find("no_bypass");
    if (f != nullptr) {
      if (!f->is_bool()) return fail("bad no_bypass");
      job.check_bypass = !f->as_bool();
    }
  } else {
    return fail("unknown op '" + op->as_string() + "'");
  }
  out = std::move(request);
  return true;
}

std::string audit_request_line(const AuditJob& job) {
  Json j = Json::object();
  j.set("op", "audit");
  j.set("id", job.id);
  j.set("design", job.design_path);
  j.set("spec", job.spec_path);
  j.set("engine", job.engine == core::EngineKind::kAtpg ? "atpg" : "bmc");
  j.set("frames", job.frames);
  j.set("budget", job.budget);
  j.set("no_scan", !job.scan_pseudo_critical);
  j.set("no_bypass", !job.check_bypass);
  return j.dump();
}

std::string control_request_line(const std::string& op) {
  Json j = Json::object();
  j.set("op", op);
  return j.dump();
}

}  // namespace trojanscout::service
