#include "service/exposition.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <sstream>

namespace trojanscout::service {

namespace {

constexpr const char* kPrefix = "trojanscout_";

std::string format_double(double value) {
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  return buf;
}

std::string escape_label(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

void append_labels(
    std::string& out,
    const std::vector<std::pair<std::string, std::string>>& labels) {
  if (labels.empty()) return;
  out += '{';
  bool first = true;
  for (const auto& [name, value] : labels) {
    if (!first) out += ',';
    first = false;
    out += name;
    out += "=\"";
    out += escape_label(value);
    out += '"';
  }
  out += '}';
}

/// Upper bound of registry bucket b in seconds (bucket b spans
/// [2^(b-1), 2^b) µs; bucket 0 is < 1 µs).
double bucket_le_seconds(std::size_t b) {
  return std::ldexp(1.0, static_cast<int>(b)) / 1e6;
}

}  // namespace

std::string prometheus_name(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    out += std::isalnum(static_cast<unsigned char>(c)) || c == '_' ? c : '_';
  }
  if (!out.empty() && std::isdigit(static_cast<unsigned char>(out[0]))) {
    out.insert(out.begin(), '_');
  }
  return out;
}

std::string to_prometheus_text(const telemetry::Registry::Snapshot& snapshot,
                               const std::vector<ExtraCounter>& extra_counters,
                               const std::vector<GaugeSample>& gauges) {
  // Families render in sorted-name order: merge the registry counters
  // (already sorted) with the extra ones through one sorted map.
  std::map<std::string, std::uint64_t> counters;
  for (const auto& c : snapshot.counters) {
    counters[kPrefix + prometheus_name(c.name) + "_total"] += c.value;
  }
  for (const auto& c : extra_counters) {
    counters[kPrefix + prometheus_name(c.name) + "_total"] += c.value;
  }

  std::string out;
  out.reserve(4096);
  for (const auto& [family, value] : counters) {
    out += "# TYPE " + family + " counter\n";
    out += family + " " + std::to_string(value) + "\n";
  }
  for (const auto& g : gauges) {
    // Gauge families may repeat (one sample per worker label set); emit
    // the TYPE line only at the first sample of a family.
    if (out.find("# TYPE " + g.name + " gauge\n") == std::string::npos) {
      out += "# TYPE " + g.name + " gauge\n";
    }
    out += g.name;
    append_labels(out, g.labels);
    out += " " + format_double(g.value) + "\n";
  }
  for (const auto& h : snapshot.histograms) {
    const std::string family = kPrefix + prometheus_name(h.name) + "_seconds";
    out += "# TYPE " + family + " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      cumulative += h.buckets[b];
      out += family + "_bucket{le=\"" + format_double(bucket_le_seconds(b)) +
             "\"} " + std::to_string(cumulative) + "\n";
    }
    out += family + "_bucket{le=\"+Inf\"} " + std::to_string(h.count) + "\n";
    out += family + "_sum " + format_double(h.sum_seconds) + "\n";
    out += family + "_count " + std::to_string(h.count) + "\n";
  }
  return out;
}

namespace {

struct Sample {
  std::string family;  // name with histogram suffix stripped
  std::string name;    // full sample name as written
  double le = std::numeric_limits<double>::quiet_NaN();  // bucket bound
  bool has_le = false;
  double value = 0.0;
};

bool parse_sample_line(const std::string& line, Sample& out,
                       std::string* error) {
  const auto fail = [&](const std::string& message) {
    if (error != nullptr) *error = "exposition: " + message + ": " + line;
    return false;
  };
  std::size_t name_end = line.find_first_of("{ ");
  if (name_end == std::string::npos || name_end == 0) {
    return fail("malformed sample");
  }
  out.name = line.substr(0, name_end);
  std::size_t value_start = name_end;
  if (line[name_end] == '{') {
    const std::size_t close = line.find('}', name_end);
    if (close == std::string::npos) return fail("unterminated label set");
    const std::string labels = line.substr(name_end + 1, close - name_end - 1);
    // Only `le` matters for validation; other labels pass through.
    const std::size_t le_pos = labels.find("le=\"");
    if (le_pos != std::string::npos) {
      const std::size_t le_end = labels.find('"', le_pos + 4);
      if (le_end == std::string::npos) return fail("unterminated le label");
      const std::string le_text = labels.substr(le_pos + 4, le_end - le_pos - 4);
      out.has_le = true;
      out.le = le_text == "+Inf"
                   ? std::numeric_limits<double>::infinity()
                   : std::strtod(le_text.c_str(), nullptr);
    }
    value_start = close + 1;
  }
  while (value_start < line.size() && line[value_start] == ' ') value_start++;
  if (value_start >= line.size()) return fail("missing value");
  char* end = nullptr;
  out.value = std::strtod(line.c_str() + value_start, &end);
  if (end == line.c_str() + value_start) return fail("bad value");
  return true;
}

}  // namespace

bool parse_prometheus_text(const std::string& text, ParsedExposition& out,
                           std::string* error) {
  const auto fail = [&](const std::string& message) {
    if (error != nullptr) *error = "exposition: " + message;
    return false;
  };
  out = ParsedExposition();
  std::map<std::string, std::string> types;  // family -> counter|gauge|histogram
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream header(line);
      std::string hash, kind, family, type;
      header >> hash >> kind;
      if (kind == "TYPE") {
        header >> family >> type;
        if (family.empty() || type.empty()) return fail("malformed TYPE line");
        if (types.count(family) != 0) {
          return fail("duplicate TYPE for " + family);
        }
        types[family] = type;
      }
      continue;  // HELP and comments pass through
    }
    Sample sample;
    if (!parse_sample_line(line, sample, error)) return false;

    // Resolve the family: histogram samples use suffixed names.
    std::string family = sample.name;
    std::string suffix;
    for (const char* candidate : {"_bucket", "_sum", "_count"}) {
      const std::string c = candidate;
      if (family.size() > c.size() &&
          family.compare(family.size() - c.size(), c.size(), c) == 0) {
        const std::string base = family.substr(0, family.size() - c.size());
        if (types.count(base) != 0 && types[base] == "histogram") {
          family = base;
          suffix = c;
          break;
        }
      }
    }
    const auto type_it = types.find(family);
    if (type_it == types.end()) {
      return fail("sample before its # TYPE line: " + sample.name);
    }
    const std::string& type = type_it->second;
    if (type == "counter") {
      if (sample.value < 0) return fail("negative counter " + sample.name);
      out.counters[family] = static_cast<std::uint64_t>(sample.value);
    } else if (type == "gauge") {
      if (out.gauges.count(family) == 0) out.gauges[family] = sample.value;
    } else if (type == "histogram") {
      ParsedExposition::Histogram& hist = out.histograms[family];
      if (suffix == "_bucket") {
        if (!sample.has_le) return fail("bucket without le: " + sample.name);
        if (sample.value < 0) return fail("negative bucket " + sample.name);
        hist.buckets.emplace_back(sample.le,
                                  static_cast<std::uint64_t>(sample.value));
      } else if (suffix == "_sum") {
        hist.sum_seconds = sample.value;
      } else if (suffix == "_count") {
        hist.count = static_cast<std::uint64_t>(sample.value);
      } else {
        return fail("histogram family with bare sample: " + sample.name);
      }
    } else {
      return fail("unsupported type '" + type + "' for " + family);
    }
  }

  // Histogram invariants: le strictly increasing, counts cumulative
  // (monotone non-decreasing), closed by a +Inf bucket equal to _count.
  for (const auto& [family, hist] : out.histograms) {
    if (hist.buckets.empty()) return fail(family + " has no buckets");
    double prev_le = -std::numeric_limits<double>::infinity();
    std::uint64_t prev_count = 0;
    for (const auto& [le, cumulative] : hist.buckets) {
      if (!(le > prev_le)) return fail(family + " le bounds not increasing");
      if (cumulative < prev_count) {
        return fail(family + " buckets not cumulative");
      }
      prev_le = le;
      prev_count = cumulative;
    }
    if (!std::isinf(hist.buckets.back().first)) {
      return fail(family + " missing +Inf bucket");
    }
    if (hist.buckets.back().second != hist.count) {
      return fail(family + " +Inf bucket disagrees with _count");
    }
  }
  return true;
}

}  // namespace trojanscout::service
