#include "service/telemetry_wire.hpp"

#include <algorithm>
#include <unordered_set>

namespace trojanscout::service {

namespace {

bool shape_error(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

}  // namespace

proof::Json snapshot_to_json(const telemetry::Registry::Snapshot& snapshot) {
  proof::Json counters = proof::Json::object();
  for (const auto& c : snapshot.counters) {
    counters.set(c.name, proof::Json(c.value));
  }
  proof::Json histograms = proof::Json::object();
  for (const auto& h : snapshot.histograms) {
    proof::Json entry = proof::Json::object();
    entry.set("count", proof::Json(h.count));
    entry.set("sum_s", proof::Json(h.sum_seconds));
    entry.set("min_s", proof::Json(h.min_seconds));
    entry.set("max_s", proof::Json(h.max_seconds));
    proof::Json buckets = proof::Json::array();
    for (std::uint64_t b : h.buckets) buckets.push_back(proof::Json(b));
    entry.set("buckets", std::move(buckets));
    histograms.set(h.name, std::move(entry));
  }
  proof::Json out = proof::Json::object();
  out.set("counters", std::move(counters));
  out.set("histograms", std::move(histograms));
  return out;
}

bool snapshot_from_json(const proof::Json& json,
                        telemetry::Registry::Snapshot& out,
                        std::string* error) {
  out.counters.clear();
  out.histograms.clear();
  if (!json.is_object()) return shape_error(error, "snapshot: not an object");
  const proof::Json* counters = json.find("counters");
  const proof::Json* histograms = json.find("histograms");
  if (counters == nullptr || !counters->is_object()) {
    return shape_error(error, "snapshot: missing counters object");
  }
  if (histograms == nullptr || !histograms->is_object()) {
    return shape_error(error, "snapshot: missing histograms object");
  }
  for (const auto& [name, value] : counters->entries()) {
    if (!value.is_int()) {
      return shape_error(error, "snapshot: counter " + name + " not an int");
    }
    out.counters.push_back(
        {name, static_cast<std::uint64_t>(value.as_int())});
  }
  for (const auto& [name, value] : histograms->entries()) {
    if (!value.is_object()) {
      return shape_error(error, "snapshot: histogram " + name + " malformed");
    }
    const proof::Json* count = value.find("count");
    const proof::Json* sum = value.find("sum_s");
    const proof::Json* min = value.find("min_s");
    const proof::Json* max = value.find("max_s");
    const proof::Json* buckets = value.find("buckets");
    if (count == nullptr || !count->is_int() || sum == nullptr ||
        !sum->is_number() || min == nullptr || !min->is_number() ||
        max == nullptr || !max->is_number() || buckets == nullptr ||
        !buckets->is_array() ||
        buckets->items().size() != telemetry::Registry::kHistogramBuckets) {
      return shape_error(error, "snapshot: histogram " + name + " malformed");
    }
    telemetry::Registry::HistogramValue h;
    h.name = name;
    h.count = static_cast<std::uint64_t>(count->as_int());
    h.sum_seconds = sum->as_double();
    h.min_seconds = min->as_double();
    h.max_seconds = max->as_double();
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      const proof::Json& b = buckets->items()[i];
      if (!b.is_int()) {
        return shape_error(error,
                           "snapshot: histogram " + name + " bucket not int");
      }
      h.buckets[i] = static_cast<std::uint64_t>(b.as_int());
    }
    out.histograms.push_back(std::move(h));
  }
  auto by_name = [](const auto& a, const auto& b) { return a.name < b.name; };
  std::sort(out.counters.begin(), out.counters.end(), by_name);
  std::sort(out.histograms.begin(), out.histograms.end(), by_name);
  return true;
}

void merge_snapshot(telemetry::Registry::Snapshot& into,
                    const telemetry::Registry::Snapshot& from) {
  for (const auto& c : from.counters) {
    auto it = std::lower_bound(
        into.counters.begin(), into.counters.end(), c,
        [](const auto& a, const auto& b) { return a.name < b.name; });
    if (it != into.counters.end() && it->name == c.name) {
      it->value += c.value;
    } else {
      into.counters.insert(it, c);
    }
  }
  for (const auto& h : from.histograms) {
    auto it = std::lower_bound(
        into.histograms.begin(), into.histograms.end(), h,
        [](const auto& a, const auto& b) { return a.name < b.name; });
    if (it == into.histograms.end() || it->name != h.name) {
      into.histograms.insert(it, h);
      continue;
    }
    if (h.count == 0) continue;
    if (it->count == 0) {
      it->min_seconds = h.min_seconds;
      it->max_seconds = h.max_seconds;
    } else {
      it->min_seconds = std::min(it->min_seconds, h.min_seconds);
      it->max_seconds = std::max(it->max_seconds, h.max_seconds);
    }
    it->count += h.count;
    it->sum_seconds += h.sum_seconds;
    for (std::size_t i = 0; i < it->buckets.size(); ++i) {
      it->buckets[i] += h.buckets[i];
    }
  }
}

proof::Json series_to_json(const telemetry::TimeSeries& series) {
  proof::Json out = proof::Json::array();
  const auto windows = series.windows();
  if (windows == nullptr) return out;
  for (const auto& w : *windows) {
    proof::Json counters = proof::Json::object();
    for (const auto& c : w.counters) {
      proof::Json entry = proof::Json::object();
      entry.set("delta", proof::Json(c.delta));
      entry.set("rate_per_s", proof::Json(c.rate_per_s));
      counters.set(c.name, std::move(entry));
    }
    proof::Json histograms = proof::Json::object();
    for (const auto& h : w.histograms) {
      proof::Json entry = proof::Json::object();
      entry.set("count", proof::Json(h.count));
      entry.set("sum_s", proof::Json(h.sum_seconds));
      entry.set("p50_s", proof::Json(h.p50_seconds));
      entry.set("p90_s", proof::Json(h.p90_seconds));
      entry.set("p99_s", proof::Json(h.p99_seconds));
      histograms.set(h.name, std::move(entry));
    }
    proof::Json row = proof::Json::object();
    row.set("seq", proof::Json(w.seq));
    row.set("t_ms", proof::Json(w.t_ms));
    row.set("span_s", proof::Json(w.span_seconds));
    row.set("counters", std::move(counters));
    row.set("histograms", std::move(histograms));
    out.push_back(std::move(row));
  }
  return out;
}

proof::Json trace_events_to_json(
    const std::vector<telemetry::TraceEvent>& events) {
  proof::Json out = proof::Json::array();
  for (const telemetry::TraceEvent& e : events) {
    proof::Json row = proof::Json::array();
    row.push_back(proof::Json(e.begin ? 1 : 0));
    row.push_back(proof::Json(e.name));
    row.push_back(proof::Json(e.span_id));
    row.push_back(proof::Json(e.begin ? e.parent_id : 0u));
    row.push_back(proof::Json(e.tid));
    row.push_back(proof::Json(e.ts_us));
    out.push_back(std::move(row));
  }
  return out;
}

bool trace_events_from_json(const proof::Json& json,
                            std::vector<telemetry::TraceEvent>& out,
                            std::string* error) {
  out.clear();
  if (!json.is_array()) return shape_error(error, "spans: not an array");
  out.reserve(json.items().size());
  for (const proof::Json& row : json.items()) {
    if (!row.is_array() || row.items().size() != 6) {
      return shape_error(error, "spans: row is not a 6-tuple");
    }
    const auto& cols = row.items();
    if (!cols[0].is_int() || !cols[1].is_string() || !cols[2].is_int() ||
        !cols[3].is_int() || !cols[4].is_int() || !cols[5].is_int()) {
      return shape_error(error, "spans: row has wrong column types");
    }
    telemetry::TraceEvent e;
    e.begin = cols[0].as_int() != 0;
    e.name = cols[1].as_string();
    e.span_id = static_cast<std::uint64_t>(cols[2].as_int());
    e.parent_id = static_cast<std::uint64_t>(cols[3].as_int());
    e.tid = static_cast<int>(cols[4].as_int());
    e.ts_us = static_cast<std::uint64_t>(cols[5].as_int());
    out.push_back(std::move(e));
  }
  return true;
}

std::vector<telemetry::TraceEvent> filter_reachable(
    const std::vector<telemetry::TraceEvent>& events,
    const std::vector<std::uint64_t>& roots) {
  std::unordered_set<std::uint64_t> keep(roots.begin(), roots.end());
  keep.erase(0u);
  std::vector<telemetry::TraceEvent> out;
  for (const telemetry::TraceEvent& e : events) {
    if (e.begin) {
      if (keep.count(e.span_id) != 0 ||
          (e.parent_id != 0 && keep.count(e.parent_id) != 0)) {
        keep.insert(e.span_id);
        out.push_back(e);
      }
    } else if (keep.count(e.span_id) != 0) {
      out.push_back(e);
    }
  }
  return out;
}

}  // namespace trojanscout::service
