// Generic NDJSON line server over the service transport.
//
// Owns everything protocol-independent about serving newline-delimited
// requests: the listening socket (Unix or TCP, via service::Endpoint), the
// accept thread, one thread per connection, per-connection receive
// timeouts, and the robustness layer that keeps a hostile or buggy client
// from wedging a connection:
//
//   * request lines longer than max_line_bytes are answered with a
//     structured {"type":"error","code":"line_too_long"} response, the
//     oversized input is discarded up to the next newline, and the
//     connection stays usable;
//   * lines that are not well-formed UTF-8 are answered with
//     code "bad_utf8" the same way (they would otherwise reach the JSON
//     parser as garbage);
//   * an idle connection that exceeds the receive timeout is told
//     ("idle_timeout") and closed cleanly — never abandoned mid-write.
//
// Every rejected line bumps the `service.bad_request` telemetry counter.
// The AuditDaemon and the fleet coordinator are both handlers plugged into
// this class; they only see complete, size-capped, UTF-8-clean lines.
//
// Threading model (inherited by every server built on this): one accept
// thread, one thread per connection; stop() shuts every connection socket
// down (waking blocked reads) and joins all threads. A handler runs on the
// connection's thread; its responses go out through the Sender it is given.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/transport.hpp"

namespace trojanscout::service {

class LineServer {
 public:
  struct Options {
    /// Endpoint string ("unix:/path", bare path, or "tcp:host:port").
    std::string endpoint;
    /// Per-connection receive timeout; 0 disables (connections may idle
    /// forever, the pre-fleet behavior).
    double read_timeout_seconds = 0;
    /// Longest request line accepted before the connection is switched to
    /// discard-until-newline and answered with a structured error.
    std::size_t max_line_bytes = 1 << 20;
    int backlog = 64;
  };

  /// Sends one response line on the handler's connection; false when the
  /// client went away (the handler should stop streaming).
  using Sender = std::function<bool(const std::string&)>;

  /// What to do with the connection after handling a line.
  enum class Disposition { kKeep, kClose, kShutdown };

  /// Called once per complete, validated request line.
  using Handler =
      std::function<Disposition(const std::string& line, const Sender& send)>;

  LineServer(Options options, Handler handler);
  ~LineServer();

  LineServer(const LineServer&) = delete;
  LineServer& operator=(const LineServer&) = delete;

  /// Binds and spawns the accept thread. Throws std::runtime_error when
  /// the endpoint is malformed or cannot be bound.
  void start();

  /// Blocks until a handler returns kShutdown or stop() is called.
  void wait();

  /// Stops accepting, wakes and joins every connection thread (a thread
  /// mid-request finishes it first), closes the listener. Idempotent.
  void stop();

  [[nodiscard]] bool running() const {
    return running_.load(std::memory_order_acquire);
  }
  /// Resolved endpoint after start() — for tcp:...:0 this carries the
  /// kernel-assigned port.
  [[nodiscard]] const Endpoint& bound_endpoint() const {
    return listener_.bound_endpoint();
  }
  [[nodiscard]] std::uint64_t bad_requests() const {
    return bad_requests_.load(std::memory_order_relaxed);
  }

  /// The single source of truth for bad-request accounting: bumps both the
  /// bad_requests() atomic (the `stats` reply) and the
  /// `service.bad_request` telemetry counter. reject_line() routes through
  /// here; handlers call it for protocol-level rejections (unparseable
  /// JSON, malformed jobs) so the two tallies can never diverge.
  void note_bad_request();

 private:
  /// stop() shuts the socket down (waking a blocked read) while the owning
  /// thread is the only one that closes it; the mutex keeps shutdown from
  /// racing a close-and-fd-reuse.
  struct Connection {
    std::mutex mutex;
    int fd = -1;
    bool closed = false;
  };

  void accept_loop();
  void serve_connection(const std::shared_ptr<Connection>& conn);
  bool reject_line(int fd, const char* code, const std::string& message);

  Options options_;
  Handler handler_;
  Listener listener_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> bad_requests_{0};

  std::thread accept_thread_;
  std::mutex connections_mutex_;
  std::vector<std::thread> connection_threads_;
  std::vector<std::shared_ptr<Connection>> connections_;

  std::mutex shutdown_mutex_;
  std::condition_variable shutdown_cv_;
};

}  // namespace trojanscout::service
