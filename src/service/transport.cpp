#include "service/transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <random>
#include <stdexcept>
#include <thread>

namespace trojanscout::service {

namespace {

bool parse_port(const std::string& text, std::uint16_t& out) {
  if (text.empty() || text.size() > 5) return false;
  unsigned long value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<unsigned long>(c - '0');
  }
  if (value > 65535) return false;
  out = static_cast<std::uint16_t>(value);
  return true;
}

int open_unix(const std::string& path, sockaddr_un& addr, std::string* error) {
  if (path.size() >= sizeof(addr.sun_path)) {
    if (error != nullptr) *error = "socket path too long: " + path;
    return -1;
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) *error = "cannot create socket";
    return -1;
  }
  addr = {};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  return fd;
}

int open_tcp(const Endpoint& endpoint, sockaddr_in& addr, std::string* error) {
  addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(endpoint.port);
  if (::inet_pton(AF_INET, endpoint.host.c_str(), &addr.sin_addr) != 1) {
    if (error != nullptr) *error = "bad IPv4 address '" + endpoint.host + "'";
    return -1;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) *error = "cannot create socket";
    return -1;
  }
  return fd;
}

}  // namespace

std::string Endpoint::to_string() const {
  if (kind == Kind::kUnix) return "unix:" + path;
  return "tcp:" + host + ":" + std::to_string(port);
}

bool parse_endpoint(const std::string& text, Endpoint& out,
                    std::string* error) {
  const auto fail = [error](const std::string& message) {
    if (error != nullptr) *error = message;
    return false;
  };
  if (text.empty()) return fail("empty endpoint");
  Endpoint endpoint;
  if (text.rfind("tcp:", 0) == 0) {
    const std::string rest = text.substr(4);
    const std::size_t colon = rest.rfind(':');
    if (colon == std::string::npos || colon == 0) {
      return fail("tcp endpoint must be tcp:host:port (got '" + text + "')");
    }
    endpoint.kind = Endpoint::Kind::kTcp;
    endpoint.host = rest.substr(0, colon);
    if (!parse_port(rest.substr(colon + 1), endpoint.port)) {
      return fail("bad port in '" + text + "'");
    }
  } else {
    endpoint.kind = Endpoint::Kind::kUnix;
    endpoint.path = text.rfind("unix:", 0) == 0 ? text.substr(5) : text;
    if (endpoint.path.empty()) return fail("empty unix socket path");
  }
  out = std::move(endpoint);
  return true;
}

Listener::~Listener() { close(); }

void Listener::listen(const Endpoint& endpoint, int backlog) {
  std::string error;
  if (endpoint.kind == Endpoint::Kind::kUnix) {
    sockaddr_un addr{};
    fd_ = open_unix(endpoint.path, addr, &error);
    if (fd_ < 0) throw std::runtime_error(error);
    ::unlink(endpoint.path.c_str());
    if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
        ::listen(fd_, backlog) != 0) {
      close();
      throw std::runtime_error("cannot bind " + endpoint.to_string());
    }
    bound_ = endpoint;
    return;
  }
  sockaddr_in addr{};
  fd_ = open_tcp(endpoint, addr, &error);
  if (fd_ < 0) throw std::runtime_error(error);
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd_, backlog) != 0) {
    close();
    throw std::runtime_error("cannot bind " + endpoint.to_string());
  }
  bound_ = endpoint;
  // Port 0 asked the kernel to pick; report what it chose.
  sockaddr_in actual{};
  socklen_t len = sizeof(actual);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&actual), &len) == 0) {
    bound_.port = ntohs(actual.sin_port);
  }
}

int Listener::accept_fd() const {
  return ::accept(fd_, nullptr, nullptr);
}

void Listener::close() {
  if (fd_ < 0) return;
  ::close(fd_);
  fd_ = -1;
  if (bound_.kind == Endpoint::Kind::kUnix && !bound_.path.empty()) {
    ::unlink(bound_.path.c_str());
  }
}

int connect_endpoint(const Endpoint& endpoint, std::string* error) {
  int fd = -1;
  if (endpoint.kind == Endpoint::Kind::kUnix) {
    sockaddr_un addr{};
    fd = open_unix(endpoint.path, addr, error);
    if (fd < 0) return -1;
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd);
      if (error != nullptr) {
        *error = "cannot connect to " + endpoint.to_string() +
                 " (is the daemon running?)";
      }
      return -1;
    }
    return fd;
  }
  sockaddr_in addr{};
  fd = open_tcp(endpoint, addr, error);
  if (fd < 0) return -1;
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    if (error != nullptr) {
      *error = "cannot connect to " + endpoint.to_string() +
               " (is the daemon running?)";
    }
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

int connect_with_retry(const Endpoint& endpoint, const ConnectRetry& retry) {
  // Seeded per call from the clock + address: connection jitter wants
  // decorrelation across processes, not reproducibility.
  std::mt19937 rng(static_cast<std::uint32_t>(
      std::chrono::steady_clock::now().time_since_epoch().count() ^
      reinterpret_cast<std::uintptr_t>(&endpoint)));
  std::uniform_real_distribution<double> jitter(0.5, 1.5);
  std::string error = "no connection attempts made";
  double delay_ms = retry.base_delay_ms;
  const int attempts = retry.attempts < 1 ? 1 : retry.attempts;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          delay_ms * jitter(rng)));
      delay_ms = std::min(delay_ms * 2, retry.max_delay_ms);
    }
    const int fd = connect_endpoint(endpoint, &error);
    if (fd >= 0) return fd;
  }
  throw std::runtime_error(error + " after " + std::to_string(attempts) +
                           " attempt(s)");
}

void set_recv_timeout(int fd, double seconds) {
  timeval tv{};
  if (seconds > 0) {
    tv.tv_sec = static_cast<time_t>(seconds);
    tv.tv_usec = static_cast<suseconds_t>((seconds - tv.tv_sec) * 1e6);
  }
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

ReadLineStatus read_frame(int fd, std::string& buffer, std::string& line) {
  for (;;) {
    const std::size_t eol = buffer.find('\n');
    if (eol != std::string::npos) {
      line = buffer.substr(0, eol);
      buffer.erase(0, eol + 1);
      return ReadLineStatus::kLine;
    }
    char chunk[4096];
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        return ReadLineStatus::kTimeout;
      }
      if (!buffer.empty()) {  // final unterminated line
        line = std::move(buffer);
        buffer.clear();
        return ReadLineStatus::kLine;
      }
      return ReadLineStatus::kEof;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
}

bool send_frame(int fd, const std::string& line) {
  std::string out = line;
  out += '\n';
  std::size_t sent = 0;
  while (sent < out.size()) {
    const ssize_t n =
        ::send(fd, out.data() + sent, out.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;  // peer went away; keep computing, stop talking
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool is_valid_utf8(const std::string& text) {
  const auto* p = reinterpret_cast<const unsigned char*>(text.data());
  const auto* end = p + text.size();
  while (p < end) {
    const unsigned char c = *p;
    if (c < 0x80) {
      ++p;
      continue;
    }
    std::size_t len = 0;
    std::uint32_t code = 0;
    if ((c & 0xE0) == 0xC0) {
      len = 2;
      code = c & 0x1F;
    } else if ((c & 0xF0) == 0xE0) {
      len = 3;
      code = c & 0x0F;
    } else if ((c & 0xF8) == 0xF0) {
      len = 4;
      code = c & 0x07;
    } else {
      return false;  // stray continuation byte or 0xFE/0xFF
    }
    if (static_cast<std::size_t>(end - p) < len) return false;
    for (std::size_t i = 1; i < len; ++i) {
      if ((p[i] & 0xC0) != 0x80) return false;
      code = (code << 6) | (p[i] & 0x3F);
    }
    if (len == 2 && code < 0x80) return false;        // overlong
    if (len == 3 && code < 0x800) return false;       // overlong
    if (len == 4 && code < 0x10000) return false;     // overlong
    if (code >= 0xD800 && code <= 0xDFFF) return false;  // surrogate
    if (code > 0x10FFFF) return false;
    p += len;
  }
  return true;
}

}  // namespace trojanscout::service
