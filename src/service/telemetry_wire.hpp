// Wire codecs that carry telemetry across the NDJSON protocol boundary.
//
// The fleet tier re-hid what PRs 3–4 made visible: worker counters,
// histograms, and spans used to die inside the worker process. These
// codecs move them — a Registry snapshot rides in the daemon `stats`
// reply (and the coordinator merges one per worker, exactly), and the
// span records of a job's obligations ride in the final `report` line so
// the coordinator can stitch one cross-process Chrome trace.
//
// They live in src/service (not src/telemetry) deliberately: ts_proof
// links ts_telemetry for its certificate spans, so the telemetry library
// can never depend on proof::Json — the service layer is the lowest one
// that sees both.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "proof/json.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/span.hpp"
#include "telemetry/timeseries.hpp"

namespace trojanscout::service {

/// Snapshot → {"counters": {name: value, …}, "histograms": {name:
/// {count, sum_s, min_s, max_s, buckets: […40…]}, …}}. Keys keep the
/// snapshot's sorted order, so the document is deterministic.
proof::Json snapshot_to_json(const telemetry::Registry::Snapshot& snapshot);

/// Inverse of snapshot_to_json. False (with `error`) on shape mismatch;
/// `out` is left sorted by name either way.
bool snapshot_from_json(const proof::Json& json,
                        telemetry::Registry::Snapshot& out,
                        std::string* error);

/// Exact merge of `from` into `into`: counters summed by name, histogram
/// buckets added bucket-wise, counts/sums summed, min-of-mins (over
/// populated histograms) and max-of-maxes. Result stays sorted by name —
/// merging N worker snapshots equals one snapshot of all their work.
void merge_snapshot(telemetry::Registry::Snapshot& into,
                    const telemetry::Registry::Snapshot& from);

/// Sampled windows → array of {"seq","t_ms","span_s","counters":{name:
/// {"delta","rate_per_s"},…},"histograms":{name:{"count","sum_s","p50_s",
/// "p90_s","p99_s"},…}}, oldest first. This is the "series" block the
/// stats reply carries and `top` turns into sparklines; rendering walks
/// one published immutable vector, so it never blocks the sampler.
proof::Json series_to_json(const telemetry::TimeSeries& series);

/// Span records → compact array of [ph, name, span_id, parent_id, tid,
/// ts_us] rows (ph 1 = begin, 0 = end; end rows carry parent_id 0).
proof::Json trace_events_to_json(
    const std::vector<telemetry::TraceEvent>& events);

/// Inverse of trace_events_to_json. False (with `error`) on shape
/// mismatch.
bool trace_events_from_json(const proof::Json& json,
                            std::vector<telemetry::TraceEvent>& out,
                            std::string* error);

/// Events reachable from `roots` (the per-obligation root span ids of one
/// job): a begin whose span or parent is already reachable joins the set;
/// an end is kept only for a reachable span. A single forward pass
/// suffices because the recorder's mutex orders every parent's begin
/// before its children's. Filters out other jobs sharing the recorder and
/// unmatched ends left behind by TraceRecorder::clear().
std::vector<telemetry::TraceEvent> filter_reachable(
    const std::vector<telemetry::TraceEvent>& events,
    const std::vector<std::uint64_t>& roots);

}  // namespace trojanscout::service
