// Single-machine audit daemon: `trojanscout_cli serve`.
//
// Accepts connections on a Unix-domain socket and executes audit jobs on
// one shared work-stealing thread pool, so a batch submitted over many
// connections saturates the machine exactly like one big parallel audit.
// Three layers keep repeated work off the engines:
//
//   1. the persistent verdict cache (optional, shared with the CLI's
//      --cache-dir) answers obligations solved in any previous run;
//   2. an in-flight table dedupes identical obligations across concurrent
//      jobs — the second job waits for the first's engine run instead of
//      re-solving (both report the verdict, tagged "shared");
//   3. everything else is computed once and fed back to the cache.
//
// Per job the daemon enumerates Algorithm 1's obligations with the same
// TrojanDetector a direct audit uses and merges results in enumeration
// order, so the streamed final report carries a DetectionReport signature
// byte-identical to `trojanscout_cli audit` with the same flags.
//
// Threading model: one accept thread, one thread per connection (jobs on a
// connection run sequentially; concurrency comes from multiple
// connections), engine runs on the shared pool. Connection threads wait on
// executions but never run on the pool, so a jobs=1 pool cannot deadlock.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cache/verdict_cache.hpp"
#include "core/detector.hpp"
#include "service/protocol.hpp"
#include "util/thread_pool.hpp"

namespace trojanscout::service {

class AuditDaemon {
 public:
  struct Options {
    std::string socket_path;
    /// Engine worker threads in the shared pool; 0 = hardware threads.
    std::size_t jobs = 0;
    /// Optional persistent verdict cache; null = in-flight dedupe only.
    cache::VerdictCache* cache = nullptr;
  };

  explicit AuditDaemon(Options options);
  ~AuditDaemon();

  AuditDaemon(const AuditDaemon&) = delete;
  AuditDaemon& operator=(const AuditDaemon&) = delete;

  /// Binds the socket and spawns the accept thread. Throws
  /// std::runtime_error when the socket cannot be bound.
  void start();

  /// Blocks until a client sends {"op":"shutdown"} (or stop() is called
  /// from another thread).
  void wait();

  /// Stops accepting, joins every connection thread (in-flight jobs finish
  /// first), and removes the socket file. Idempotent.
  void stop();

  [[nodiscard]] bool running() const {
    return running_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::uint64_t jobs_completed() const {
    return jobs_completed_.load(std::memory_order_relaxed);
  }

 private:
  /// One obligation's engine run, shared between every job that needs it.
  struct Execution {
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
    core::CheckResult result;
  };

  /// Per-connection socket state: stop() shuts the socket down (waking a
  /// blocked read) while the owning thread is the only one that closes it;
  /// the mutex keeps shutdown from racing a close-and-fd-reuse.
  struct Connection {
    std::mutex mutex;
    int fd = -1;
    bool closed = false;
  };

  void accept_loop();
  void serve_connection(const std::shared_ptr<Connection>& conn);
  void handle_audit(int fd, const AuditJob& job);
  bool send_line(int fd, const std::string& line);

  /// Returns the execution registered under `key`, creating it (and
  /// setting `created`) when this caller is the one that must compute it.
  std::shared_ptr<Execution> claim(const std::string& key, bool& created);
  void publish(const std::string& key, const std::shared_ptr<Execution>& exec,
               core::CheckResult result);

  Options options_;
  int listen_fd_ = -1;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> jobs_completed_{0};
  std::atomic<std::uint64_t> shared_hits_{0};

  std::unique_ptr<util::ThreadPool> pool_;
  std::thread accept_thread_;
  std::mutex connections_mutex_;
  std::vector<std::thread> connection_threads_;
  std::vector<std::shared_ptr<Connection>> connections_;

  std::mutex inflight_mutex_;
  std::map<std::string, std::shared_ptr<Execution>> inflight_;

  std::mutex shutdown_mutex_;
  std::condition_variable shutdown_cv_;
};

}  // namespace trojanscout::service
