// Audit daemon: `trojanscout_cli serve` — one worker of the audit tier.
//
// Accepts connections on a Unix-domain or TCP socket (service::LineServer
// owns the transport, framing, and request-robustness layer) and executes
// audit jobs on one shared work-stealing thread pool, so a batch submitted
// over many connections saturates the machine exactly like one big
// parallel audit. Four layers keep repeated work off the engines:
//
//   1. the worker-private L1 verdict cache (optional, shared with the
//      CLI's --cache-dir) answers obligations solved in any previous run;
//   2. the fleet-shared L2 cache (optional, --l2-dir) answers obligations
//      solved by *any* worker of the fleet, promoting hits into L1;
//   3. an in-flight table dedupes identical obligations across concurrent
//      jobs in this process, and the L2 claim protocol
//      (cache::TieredCache) extends that across worker processes — the
//      second claimer waits for the first's engine run instead of
//      re-solving (reported as "shared");
//   4. everything else is computed once and fed back through both tiers.
//
// Per job the daemon enumerates Algorithm 1's obligations with the same
// TrojanDetector a direct audit uses and merges results in enumeration
// order, so the streamed final report carries a DetectionReport signature
// byte-identical to `trojanscout_cli audit` with the same flags. A job
// carrying a "subset" (the fleet coordinator's shard) executes only those
// indices and can return full wire verdicts for coordinator-side merging.
//
// Threading model: LineServer runs one accept thread and one thread per
// connection (jobs on a connection run sequentially; concurrency comes
// from multiple connections), engine runs on the shared pool. Connection
// threads wait on executions but never run on the pool, so a jobs=1 pool
// cannot deadlock.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "cache/tiered.hpp"
#include "cache/verdict_cache.hpp"
#include "core/detector.hpp"
#include "service/line_server.hpp"
#include "service/protocol.hpp"
#include "telemetry/timeseries.hpp"
#include "util/thread_pool.hpp"

namespace trojanscout::service {

class AuditDaemon {
 public:
  struct Options {
    /// Endpoint string: "unix:/path", a bare socket path, or
    /// "tcp:host:port" (port 0 = ephemeral; see bound_endpoint()).
    std::string endpoint;
    /// Engine worker threads in the shared pool; 0 = hardware threads.
    std::size_t jobs = 0;
    /// Optional worker-private L1 verdict cache.
    cache::VerdictCache* cache = nullptr;
    /// Optional fleet-shared L2 verdict cache (claim-first dedupe).
    cache::VerdictCache* l2 = nullptr;
    /// Per-connection receive timeout; 0 disables.
    double read_timeout_seconds = 0;
    /// Claim-protocol tunables (see cache::TieredCache::Options).
    double claim_wait_seconds = 300.0;
    double claim_stale_seconds = 300.0;
    /// Continuous-monitoring sampler cadence; <= 0 disables the sampler
    /// (stats/metrics still answer, but without windowed series).
    double sample_interval_ms = 1000.0;
    /// Ring capacity of the sampled time series (windows kept).
    std::size_t series_capacity = 120;
  };

  explicit AuditDaemon(Options options);
  ~AuditDaemon();

  AuditDaemon(const AuditDaemon&) = delete;
  AuditDaemon& operator=(const AuditDaemon&) = delete;

  /// Binds the socket and spawns the accept thread. Throws
  /// std::runtime_error when the endpoint cannot be bound.
  void start();

  /// Blocks until a client sends {"op":"shutdown"} (or stop() is called
  /// from another thread).
  void wait();

  /// Stops accepting, joins every connection thread (in-flight jobs finish
  /// first), and removes a Unix socket file. Idempotent.
  void stop();

  [[nodiscard]] bool running() const { return server_.running(); }
  [[nodiscard]] std::uint64_t jobs_completed() const {
    return jobs_completed_.load(std::memory_order_relaxed);
  }
  /// Resolved listen endpoint (carries the kernel-assigned port for
  /// tcp:...:0). Valid after start().
  [[nodiscard]] std::string bound_endpoint() const {
    return server_.bound_endpoint().to_string();
  }

 private:
  /// One obligation's engine run, shared between every job that needs it.
  struct Execution {
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
    int source = 1;  // Source enum value of where the result came from
    /// Root span id of the obligation's work when tracing (0 otherwise);
    /// written by the computing task under `mutex`, read by its creator
    /// job for per-job reachability filtering.
    std::uint64_t span_id = 0;
    core::CheckResult result;
  };

  LineServer::Disposition handle_line(const std::string& line,
                                      const LineServer::Sender& send);
  void handle_audit(const LineServer::Sender& send, const AuditJob& job);
  /// Prometheus text exposition of this worker's state — the registry
  /// snapshot plus service-level counters and gauges (queue depth,
  /// in-flight obligations, worker liveness, cache size).
  [[nodiscard]] std::string metrics_body();

  /// Returns the execution registered under `key`, creating it (and
  /// setting `created`) when this caller is the one that must compute it.
  std::shared_ptr<Execution> claim(const std::string& key, bool& created);
  void publish(const std::string& key, const std::shared_ptr<Execution>& exec,
               core::CheckResult result, int source);

  Options options_;
  LineServer server_;
  cache::TieredCache tier_;
  std::atomic<std::uint64_t> jobs_completed_{0};
  std::atomic<std::uint64_t> shared_hits_{0};
  std::chrono::steady_clock::time_point started_at_{};

  telemetry::TimeSeries series_;
  std::optional<telemetry::Sampler> sampler_;

  std::unique_ptr<util::ThreadPool> pool_;

  std::mutex inflight_mutex_;
  std::map<std::string, std::shared_ptr<Execution>> inflight_;
};

}  // namespace trojanscout::service
