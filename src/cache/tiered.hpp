// Two-tier verdict cache for the audit fleet.
//
// L1 is a worker-private VerdictCache (fast, hot, per-process LRU); L2 is
// a VerdictCache on a directory shared by every worker of a fleet. Lookups
// go L1 → L2, and an L2 hit is promoted into L1 so the shard that owns a
// key answers from private storage next time. Stores write through both
// tiers. Either tier may be absent: with only L1 this degenerates to the
// single-daemon cache, with only L2 every worker reads the shared store
// directly.
//
// The claim protocol generalizes the daemon's in-process claim-first
// dedupe across worker *processes*: before computing a missing key, a
// worker atomically creates `<entry>.claim` in the L2 directory
// (open O_CREAT|O_EXCL — the filesystem arbitrates the race). Exactly one
// worker wins and computes; the others poll for the published entry and
// adopt it, so each obligation runs an engine at most once fleet-wide.
// Two failure modes are handled explicitly:
//   * the owner dies without publishing — claims older than
//     claim_stale_seconds are stolen (unlinked and re-raced);
//   * the owner is merely slow — waiters give up after claim_wait_seconds
//     and compute their own copy (duplicated work, never a wrong answer).
//
// Observability: every path bumps a `cache.*` telemetry counter
// (l1_hit, l2_hit, l2_promote, l2_claim_owner, l2_claim_resolved,
// l2_claim_stale, l2_claim_timeout), which is how the fleet tests assert
// the exactly-once property.
#pragma once

#include <optional>
#include <string>

#include "cache/verdict_cache.hpp"

namespace trojanscout::cache {

class TieredCache {
 public:
  struct Options {
    VerdictCache* l1 = nullptr;  ///< worker-private tier (not owned)
    VerdictCache* l2 = nullptr;  ///< fleet-shared tier (not owned)
    /// How long a waiter polls for another worker's claimed computation
    /// before giving up and computing its own copy.
    double claim_wait_seconds = 300.0;
    /// Claims older than this belong to a dead owner and are stolen.
    double claim_stale_seconds = 300.0;
    double poll_interval_seconds = 0.002;
  };

  explicit TieredCache(Options options) : options_(options) {}

  [[nodiscard]] bool has_l2() const { return options_.l2 != nullptr; }
  [[nodiscard]] VerdictCache* l1() const { return options_.l1; }
  [[nodiscard]] VerdictCache* l2() const { return options_.l2; }

  /// L1 → L2 lookup; an L2 hit is stored into L1 (promotion).
  std::optional<std::string> lookup(const std::string& key);

  /// Outcome of the fleet-wide claim race for a missing key.
  enum class Claim {
    kOwner,     ///< caller must compute, then store() and release()
    kResolved,  ///< another worker published while we waited; payload set
    kNone,      ///< no L2 tier — caller computes (store() still fills L1)
  };

  /// Claim-first compute gate. Only call after lookup() missed. On
  /// kResolved, `payload` carries the entry another worker published.
  Claim acquire(const std::string& key, std::string& payload);

  /// Write-through store into both tiers.
  void store(const std::string& key, const std::string& payload);

  /// Drops the claim file; owner-only, after store(). Safe to call when
  /// no L2 is configured.
  void release(const std::string& key);

  /// Schema-level corruption reported by the codec: drop from both tiers.
  void invalidate(const std::string& key);

 private:
  [[nodiscard]] std::string claim_path(const std::string& key) const;
  /// True when this process created the claim file.
  bool try_claim(const std::string& key);
  /// Age of an existing claim file in seconds; nullopt when absent.
  [[nodiscard]] std::optional<double> claim_age_seconds(
      const std::string& key) const;

  Options options_;
};

}  // namespace trojanscout::cache
