#include "cache/verdict_cache.hpp"

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "telemetry/events.hpp"
#include "util/logging.hpp"

namespace fs = std::filesystem;

namespace trojanscout::cache {

namespace {

constexpr const char* kEntryMagic = "trojanscout-verdict-cache";
constexpr const char* kIndexMagic = "trojanscout-cache-index";
constexpr int kFormatVersion = 1;
constexpr const char* kIndexName = "index.txt";
constexpr const char* kEntrySuffix = ".vjson";

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 14695981039346656037ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

std::string hex16(std::uint64_t value) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(value));
  return buf;
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream os;
  os << in.rdbuf();
  out = os.str();
  return true;
}

/// Write-then-rename so a concurrent reader sees the old bytes or the new
/// bytes, never a prefix. The temp name carries the pid so two processes
/// writing the same entry cannot collide on the temp file either.
bool atomic_write(const std::string& path, const std::string& content) {
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os) return false;
    os << content;
    os.flush();
    if (!os) {
      std::error_code ec;
      fs::remove(tmp, ec);
      return false;
    }
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    return false;
  }
  return true;
}

/// Splits the entry file into header + payload and verifies the checksum.
bool verify_entry(const std::string& file_text, std::string& payload) {
  const std::size_t eol = file_text.find('\n');
  if (eol == std::string::npos) return false;
  std::istringstream header(file_text.substr(0, eol));
  std::string magic;
  std::string version;
  std::string checksum_hex;
  std::uint64_t size = 0;
  if (!(header >> magic >> version >> checksum_hex >> size)) return false;
  if (magic != kEntryMagic || version != "v" + std::to_string(kFormatVersion)) {
    return false;
  }
  payload = file_text.substr(eol + 1);
  if (payload.size() != size) return false;  // truncated (or padded)
  return hex16(fnv1a(payload)) == checksum_hex;
}

std::string frame_entry(const std::string& payload) {
  std::string out = kEntryMagic;
  out += " v" + std::to_string(kFormatVersion) + " " +
         hex16(fnv1a(payload)) + " " + std::to_string(payload.size()) + "\n";
  out += payload;
  return out;
}

}  // namespace

const char* cache_mode_name(CacheMode mode) {
  switch (mode) {
    case CacheMode::kOff: return "off";
    case CacheMode::kReadOnly: return "ro";
    case CacheMode::kReadWrite: return "rw";
  }
  return "?";
}

bool cache_mode_from_name(const std::string& name, CacheMode& out) {
  if (name == "off") out = CacheMode::kOff;
  else if (name == "ro") out = CacheMode::kReadOnly;
  else if (name == "rw") out = CacheMode::kReadWrite;
  else return false;
  return true;
}

std::string VerdictCache::entry_filename(const std::string& key) {
  return key + kEntrySuffix;
}

std::string VerdictCache::entry_path(const std::string& key) const {
  return (fs::path(options_.dir) / entry_filename(key)).string();
}

VerdictCache::VerdictCache(Options options) : options_(std::move(options)) {
  if (options_.mode == CacheMode::kOff) return;
  std::error_code ec;
  fs::create_directories(options_.dir, ec);
  if (!fs::is_directory(options_.dir)) {
    if (options_.mode == CacheMode::kReadWrite) {
      throw std::runtime_error("cannot create cache directory " +
                               options_.dir);
    }
    return;  // read-only over a missing directory: everything misses
  }
  std::lock_guard<std::mutex> lock(mutex_);
  load_index_locked();
}

void VerdictCache::load_index_locked() {
  const std::string path = (fs::path(options_.dir) / kIndexName).string();
  std::string text;
  if (!read_file(path, text)) {
    rebuild_index_locked();
    return;
  }
  std::istringstream in(text);
  std::string magic;
  std::string version;
  std::uint64_t clock = 0;
  if (!(in >> magic >> version >> clock) || magic != kIndexMagic ||
      version != "v" + std::to_string(kFormatVersion)) {
    rebuild_index_locked();
    return;
  }
  std::map<std::string, Entry> entries;
  std::uint64_t total = 0;
  std::string key;
  Entry entry;
  while (in >> key >> entry.last_used >> entry.bytes) {
    entries.emplace(key, entry);
    total += entry.bytes;
  }
  if (!in.eof()) {  // trailing garbage: distrust the whole index
    rebuild_index_locked();
    return;
  }
  entries_ = std::move(entries);
  clock_ = clock;
  total_bytes_ = total;
}

void VerdictCache::rebuild_index_locked() {
  entries_.clear();
  clock_ = 0;
  total_bytes_ = 0;
  std::error_code ec;
  for (const auto& de : fs::directory_iterator(options_.dir, ec)) {
    const std::string name = de.path().filename().string();
    if (name.size() <= std::string(kEntrySuffix).size() ||
        name.substr(name.size() - std::string(kEntrySuffix).size()) !=
            kEntrySuffix) {
      continue;
    }
    const std::string key =
        name.substr(0, name.size() - std::string(kEntrySuffix).size());
    std::string text;
    std::string payload;
    if (!read_file(de.path().string(), text) || !verify_entry(text, payload)) {
      stats_.corrupt_skipped++;
      telemetry::emit_event("cache_corrupt_skip",
                            {{"key", key}, {"dir", options_.dir}});
      if (options_.mode == CacheMode::kReadWrite) {
        fs::remove(de.path(), ec);
      }
      TS_LOG_WARN("cache: dropping corrupt entry %s during index rebuild",
                  name.c_str());
      continue;
    }
    Entry entry;
    entry.bytes = payload.size();
    entry.last_used = 0;
    total_bytes_ += entry.bytes;
    entries_.emplace(key, entry);
  }
  if (options_.mode == CacheMode::kReadWrite) persist_index_locked();
}

void VerdictCache::persist_index_locked() {
  std::ostringstream os;
  os << kIndexMagic << " v" << kFormatVersion << " " << clock_ << "\n";
  for (const auto& [key, entry] : entries_) {
    os << key << " " << entry.last_used << " " << entry.bytes << "\n";
  }
  const std::string path = (fs::path(options_.dir) / kIndexName).string();
  if (!atomic_write(path, os.str())) {
    TS_LOG_WARN("cache: cannot persist index to %s", path.c_str());
  }
}

void VerdictCache::drop_entry_locked(const std::string& key,
                                     bool count_corrupt) {
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    total_bytes_ -= it->second.bytes;
    entries_.erase(it);
  }
  if (count_corrupt) {
    stats_.corrupt_skipped++;
    telemetry::emit_event("cache_corrupt_skip",
                          {{"key", key}, {"dir", options_.dir}});
  }
  if (options_.mode == CacheMode::kReadWrite) {
    std::error_code ec;
    fs::remove(entry_path(key), ec);
    persist_index_locked();
  }
}

std::optional<std::string> VerdictCache::lookup(const std::string& key) {
  if (options_.mode == CacheMode::kOff) {
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.misses++;
    return std::nullopt;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  std::string text;
  if (!read_file(entry_path(key), text)) {
    // Another process may have evicted it since the index was loaded.
    if (entries_.count(key) != 0) drop_entry_locked(key, /*corrupt=*/false);
    stats_.misses++;
    return std::nullopt;
  }
  std::string payload;
  if (!verify_entry(text, payload)) {
    TS_LOG_WARN("cache: entry %s failed integrity check; treating as miss",
                key.c_str());
    drop_entry_locked(key, /*corrupt=*/true);
    stats_.misses++;
    return std::nullopt;
  }
  stats_.hits++;
  if (options_.mode == CacheMode::kReadWrite) {
    auto it = entries_.find(key);
    if (it == entries_.end()) {  // adopted from a concurrent writer
      Entry entry;
      entry.bytes = payload.size();
      it = entries_.emplace(key, entry).first;
      total_bytes_ += entry.bytes;
    }
    it->second.last_used = ++clock_;
    persist_index_locked();
  }
  return payload;
}

void VerdictCache::store(const std::string& key, const std::string& payload) {
  if (options_.mode != CacheMode::kReadWrite) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (!atomic_write(entry_path(key), frame_entry(payload))) {
    TS_LOG_WARN("cache: cannot write entry %s", key.c_str());
    return;
  }
  auto it = entries_.find(key);
  if (it != entries_.end()) total_bytes_ -= it->second.bytes;
  Entry entry;
  entry.bytes = payload.size();
  entry.last_used = ++clock_;
  entries_[key] = entry;
  total_bytes_ += entry.bytes;
  stats_.stores++;
  evict_over_cap_locked(key);
  persist_index_locked();
}

void VerdictCache::evict_over_cap_locked(const std::string& keep_key) {
  if (options_.max_bytes == 0) return;
  while (total_bytes_ > options_.max_bytes && entries_.size() > 1) {
    // Least-recently-used victim; ties (rebuilt indexes reset every clock
    // to 0) break on key order so eviction stays deterministic.
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->first == keep_key) continue;
      if (victim == entries_.end() ||
          it->second.last_used < victim->second.last_used) {
        victim = it;
      }
    }
    if (victim == entries_.end()) return;
    std::error_code ec;
    fs::remove(entry_path(victim->first), ec);
    total_bytes_ -= victim->second.bytes;
    entries_.erase(victim);
    stats_.evictions++;
  }
}

void VerdictCache::invalidate(const std::string& key) {
  if (options_.mode == CacheMode::kOff) return;
  std::lock_guard<std::mutex> lock(mutex_);
  drop_entry_locked(key, /*corrupt=*/true);
}

CacheStats VerdictCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t VerdictCache::entry_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::uint64_t VerdictCache::total_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_bytes_;
}

}  // namespace trojanscout::cache
