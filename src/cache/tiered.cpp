#include "cache/tiered.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <ctime>
#include <thread>

#include "telemetry/events.hpp"
#include "telemetry/registry.hpp"
#include "util/logging.hpp"

namespace trojanscout::cache {

namespace {

double now_seconds() {
  timespec ts{};
  ::clock_gettime(CLOCK_REALTIME, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

}  // namespace

std::optional<std::string> TieredCache::lookup(const std::string& key) {
  if (options_.l1 != nullptr) {
    std::optional<std::string> payload = options_.l1->lookup(key);
    if (payload.has_value()) {
      TS_COUNTER_ADD("cache.l1_hit", 1);
      return payload;
    }
  }
  if (options_.l2 != nullptr) {
    std::optional<std::string> payload = options_.l2->lookup(key);
    if (payload.has_value()) {
      TS_COUNTER_ADD("cache.l2_hit", 1);
      if (options_.l1 != nullptr) {
        options_.l1->store(key, *payload);
        TS_COUNTER_ADD("cache.l2_promote", 1);
      }
      return payload;
    }
  }
  return std::nullopt;
}

std::string TieredCache::claim_path(const std::string& key) const {
  return options_.l2->dir() + "/" + VerdictCache::entry_filename(key) +
         ".claim";
}

bool TieredCache::try_claim(const std::string& key) {
  const std::string path = claim_path(key);
  const int fd = ::open(path.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
  if (fd < 0) return false;
  // The pid is diagnostic only; staleness is judged by file age.
  char text[32];
  const int n = std::snprintf(text, sizeof(text), "%ld\n",
                              static_cast<long>(::getpid()));
  if (n > 0) {
    const ssize_t written = ::write(fd, text, static_cast<std::size_t>(n));
    (void)written;
  }
  ::close(fd);
  return true;
}

std::optional<double> TieredCache::claim_age_seconds(
    const std::string& key) const {
  struct stat st {};
  if (::stat(claim_path(key).c_str(), &st) != 0) return std::nullopt;
  const double mtime = static_cast<double>(st.st_mtim.tv_sec) +
                       static_cast<double>(st.st_mtim.tv_nsec) * 1e-9;
  return now_seconds() - mtime;
}

TieredCache::Claim TieredCache::acquire(const std::string& key,
                                        std::string& payload) {
  if (options_.l2 == nullptr ||
      options_.l2->mode() != CacheMode::kReadWrite) {
    return Claim::kNone;
  }
  const double deadline = now_seconds() + options_.claim_wait_seconds;
  for (;;) {
    if (try_claim(key)) {
      // Double-check after winning: between our caller's lookup miss and
      // this claim, the previous owner may have stored its verdict and
      // released — store happens strictly before release, so a vacated
      // claim guarantees the entry is visible now. Without this re-read,
      // every late claimer would silently duplicate the compute.
      std::optional<std::string> entry = options_.l2->lookup(key);
      if (entry.has_value()) {
        release(key);
        payload = std::move(*entry);
        TS_COUNTER_ADD("cache.l2_claim_resolved", 1);
        if (options_.l1 != nullptr) options_.l1->store(key, payload);
        return Claim::kResolved;
      }
      TS_COUNTER_ADD("cache.l2_claim_owner", 1);
      return Claim::kOwner;
    }
    // Someone else holds the claim: poll for their published entry.
    std::optional<std::string> entry = options_.l2->lookup(key);
    if (entry.has_value()) {
      payload = std::move(*entry);
      TS_COUNTER_ADD("cache.l2_claim_resolved", 1);
      if (options_.l1 != nullptr) options_.l1->store(key, payload);
      return Claim::kResolved;
    }
    const std::optional<double> age = claim_age_seconds(key);
    if (!age.has_value()) continue;  // claim vanished: re-race immediately
    if (*age > options_.claim_stale_seconds) {
      // The owner died without publishing. Steal the claim; the unlink +
      // O_EXCL re-create race is arbitrated by the filesystem again.
      TS_LOG_WARN("cache: stealing stale L2 claim for %s (%.1fs old)",
                  key.c_str(), *age);
      TS_COUNTER_ADD("cache.l2_claim_stale", 1);
      telemetry::emit_event("claim_steal", {{"key", key}, {"age_s", *age}});
      ::unlink(claim_path(key).c_str());
      continue;
    }
    if (now_seconds() > deadline) {
      // Owner alive but slower than we are willing to wait: duplicate the
      // work rather than stall the job forever.
      TS_COUNTER_ADD("cache.l2_claim_timeout", 1);
      return Claim::kOwner;
    }
    std::this_thread::sleep_for(
        std::chrono::duration<double>(options_.poll_interval_seconds));
  }
}

void TieredCache::store(const std::string& key, const std::string& payload) {
  if (options_.l1 != nullptr) options_.l1->store(key, payload);
  if (options_.l2 != nullptr) {
    options_.l2->store(key, payload);
    TS_COUNTER_ADD("cache.l2_store", 1);
  }
}

void TieredCache::release(const std::string& key) {
  if (options_.l2 == nullptr) return;
  ::unlink(claim_path(key).c_str());
}

void TieredCache::invalidate(const std::string& key) {
  if (options_.l1 != nullptr) options_.l1->invalidate(key);
  if (options_.l2 != nullptr) options_.l2->invalidate(key);
}

}  // namespace trojanscout::cache
