#include "cache/verdict_codec.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <utility>

#include "proof/certificate.hpp"
#include "proof/json.hpp"
#include "telemetry/registry.hpp"
#include "util/logging.hpp"

namespace trojanscout::cache {

namespace {

constexpr const char* kFormat = "trojanscout-verdict";
// v2: engine identity + PDR knobs join the key context; payloads carry
// proven_unbounded, the (possibly null) inductive invariant, engine_used,
// and the pdr_* counter block. v1 entries fail the version check and are
// recomputed — a one-time cold start, never a wrong verdict.
constexpr int kVersion = 2;

std::uint64_t fnv1a(const std::string& s, std::uint64_t basis) {
  std::uint64_t h = basis;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

std::string hex16(std::uint64_t value) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(value));
  return buf;
}

void mix(std::string& out, const char* name, const std::string& value) {
  out += name;
  out += '=';
  out += value;
  out += ';';
}

void mix_u64(std::string& out, const char* name, std::uint64_t value) {
  mix(out, name, std::to_string(value));
}

void mix_double(std::string& out, const char* name, double value) {
  // Bit pattern, not decimal text: two configs hash equal iff the engine
  // sees the exact same double.
  std::uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  mix_u64(out, name, bits);
}

}  // namespace

ObligationKeyer::ObligationKeyer(const designs::Design& design,
                                 const core::DetectorOptions& options,
                                 bool fail_fast) {
  std::string& c = context_;
  mix(c, "codec", "v" + std::to_string(kVersion));
  mix(c, "design", hex16(proof::design_hash(design.nl)));
  mix(c, "spec", hex16(proof::spec_hash(design)));
  mix(c, "monitor",
      options.monitor_kind == properties::CorruptionMonitorKind::kExact
          ? "exact"
          : "hold-only");
  mix(c, "engine", core::engine_name(options.engine.kind));
  mix_u64(c, "frames", options.engine.max_frames);
  mix_double(c, "budget", options.engine.time_limit_seconds);
  const sat::SolverOptions& s = options.engine.solver;
  mix_u64(c, "sat.learning", s.enable_learning ? 1 : 0);
  mix_u64(c, "sat.vsids", s.enable_vsids ? 1 : 0);
  mix_u64(c, "sat.phase", s.enable_phase_saving ? 1 : 0);
  mix_u64(c, "sat.minimize", s.enable_clause_minimization ? 1 : 0);
  mix_double(c, "sat.var_decay", s.var_decay);
  mix_double(c, "sat.clause_decay", s.clause_decay);
  mix_u64(c, "sat.restart_base", static_cast<std::uint64_t>(s.restart_base));
  mix_u64(c, "sat.learned_cap", s.learned_capacity_start);
  mix_u64(c, "atpg.backtracks", options.engine.atpg_backtrack_limit);
  mix_u64(c, "atpg.scoap", options.engine.atpg_use_scoap ? 1 : 0);
  mix_u64(c, "atpg.random", options.engine.atpg_random_sequences);
  std::string stimulus;
  for (const auto& sequence : options.engine.atpg_stimulus) {
    for (const auto& frame : sequence) stimulus += frame.to_hex_string() + ",";
    stimulus += "|";
  }
  mix(c, "atpg.stimulus", hex16(fnv1a(stimulus, 14695981039346656037ULL)));
  mix_u64(c, "pdr.generalize", options.engine.pdr_generalize ? 1 : 0);
  mix_u64(c, "fail_fast", fail_fast ? 1 : 0);
}

std::string ObligationKeyer::key(const core::Obligation& obligation) const {
  std::string text = context_;
  mix(text, "obligation", obligation.property_name());
  return hex16(fnv1a(text, 14695981039346656037ULL)) +
         hex16(fnv1a(text, 1099511628211ULL));
}

std::string verdict_to_json(const core::Obligation& obligation,
                            const core::CheckResult& result,
                            const std::string& cert_ref) {
  using proof::Json;
  Json j = Json::object();
  j.set("format", kFormat);
  j.set("version", kVersion);
  j.set("property", obligation.property_name());
  j.set("violated", result.violated);
  j.set("bound_reached", result.bound_reached);
  j.set("proven_unbounded", result.proven_unbounded);
  j.set("frames_completed", result.frames_completed);
  j.set("status", result.status);
  j.set("engine_used", core::engine_flag_name(result.engine_used));
  if (result.invariant.has_value()) {
    Json clauses = Json::array();
    for (const auto& clause : result.invariant->clauses) {
      Json lits = Json::array();
      for (const std::int32_t lit : clause) {
        lits.push_back(static_cast<std::int64_t>(lit));
      }
      clauses.push_back(std::move(lits));
    }
    j.set("invariant", std::move(clauses));
  } else {
    j.set("invariant", nullptr);
  }
  // The per-leg portfolio vector is a timing carve-out (like flight
  // recordings): wall-clock ordering decides which losers got cancelled, so
  // it is deliberately not persisted — a warm hit reports only the winning
  // verdict, which IS deterministic.
  if (result.witness.has_value()) {
    Json witness = Json::object();
    witness.set("violation_frame", result.witness->violation_frame);
    Json frames = Json::array();
    for (const auto& frame : result.witness->frames) {
      frames.push_back(frame.bits.to_binary_string());
    }
    witness.set("frames", std::move(frames));
    j.set("witness", std::move(witness));
  } else {
    j.set("witness", nullptr);
  }
  const core::EngineCounters& c = result.counters;
  Json counters = Json::object();
  counters.set("sat_decisions", c.sat.decisions);
  counters.set("sat_propagations", c.sat.propagations);
  counters.set("sat_conflicts", c.sat.conflicts);
  counters.set("sat_restarts", c.sat.restarts);
  counters.set("sat_learned_clauses", c.sat.learned_clauses);
  counters.set("sat_learned_literals", c.sat.learned_literals);
  counters.set("sat_deleted_clauses", c.sat.deleted_clauses);
  counters.set("sat_minimized_literals", c.sat.minimized_literals);
  counters.set("cnf_vars", c.cnf_vars);
  Json frame_clauses = Json::array();
  for (const std::uint32_t n : c.frame_clauses) {
    frame_clauses.push_back(static_cast<std::int64_t>(n));
  }
  counters.set("frame_clauses", std::move(frame_clauses));
  counters.set("atpg_decisions", c.atpg_decisions);
  counters.set("atpg_backtracks", c.atpg_backtracks);
  counters.set("atpg_implications", c.atpg_implications);
  counters.set("atpg_frames_proven_clean", c.atpg_frames_proven_clean);
  counters.set("atpg_frames_aborted", c.atpg_frames_aborted);
  counters.set("pdr_frames", c.pdr_frames);
  counters.set("pdr_pushed_clauses", c.pdr_pushed_clauses);
  counters.set("pdr_ctis", c.pdr_ctis);
  counters.set("pdr_obligations", c.pdr_obligations);
  j.set("counters", std::move(counters));
  // Diagnostics only: what the original solve cost. Never restored.
  j.set("solved_seconds", result.seconds);
  j.set("cert_ref", cert_ref);
  return j.dump();
}

bool verdict_from_json(const std::string& text, core::CheckResult& out,
                       std::string* cert_ref, std::string* error) {
  using proof::Json;
  const auto fail = [error](const std::string& message) {
    if (error != nullptr) *error = message;
    return false;
  };
  Json j;
  std::string parse_error;
  if (!Json::parse(text, j, &parse_error)) {
    return fail("bad JSON: " + parse_error);
  }
  if (!j.is_object()) return fail("not an object");
  const Json* f = j.find("format");
  if (f == nullptr || !f->is_string() || f->as_string() != kFormat) {
    return fail("bad format tag");
  }
  f = j.find("version");
  if (f == nullptr || !f->is_int() || f->as_int() != kVersion) {
    return fail("unsupported version");
  }

  core::CheckResult result;
  const auto get_bool = [&](const char* key, bool& value) {
    const Json* g = j.find(key);
    if (g == nullptr || !g->is_bool()) return false;
    value = g->as_bool();
    return true;
  };
  if (!get_bool("violated", result.violated)) return fail("bad violated");
  if (!get_bool("bound_reached", result.bound_reached)) {
    return fail("bad bound_reached");
  }
  if (!get_bool("proven_unbounded", result.proven_unbounded)) {
    return fail("bad proven_unbounded");
  }
  if (result.proven_unbounded && (result.violated || !result.bound_reached)) {
    return fail("proven_unbounded inconsistent with verdict flags");
  }
  f = j.find("frames_completed");
  if (f == nullptr || !f->is_int() || f->as_int() < 0) {
    return fail("bad frames_completed");
  }
  result.frames_completed = static_cast<std::size_t>(f->as_int());
  f = j.find("status");
  if (f == nullptr || !f->is_string()) return fail("bad status");
  result.status = f->as_string();
  f = j.find("engine_used");
  if (f == nullptr || !f->is_string()) return fail("bad engine_used");
  {
    const std::optional<core::EngineKind> kind =
        core::engine_kind_from_string(f->as_string());
    if (!kind.has_value()) return fail("bad engine_used");
    result.engine_used = *kind;
  }
  f = j.find("invariant");
  if (f == nullptr) return fail("missing invariant");
  if (!f->is_null()) {
    if (!f->is_array()) return fail("bad invariant");
    pdr::Invariant invariant;
    for (const Json& clause : f->items()) {
      if (!clause.is_array()) return fail("bad invariant clause");
      std::vector<std::int32_t> lits;
      for (const Json& lit : clause.items()) {
        if (!lit.is_int() || lit.as_int() == 0) return fail("bad invariant literal");
        lits.push_back(static_cast<std::int32_t>(lit.as_int()));
      }
      invariant.clauses.push_back(std::move(lits));
    }
    result.invariant = std::move(invariant);
  }
  if (result.invariant.has_value() && !result.proven_unbounded) {
    return fail("invariant without unbounded proof");
  }

  f = j.find("witness");
  if (f == nullptr) return fail("missing witness");
  if (!f->is_null()) {
    if (!f->is_object()) return fail("bad witness");
    sim::Witness witness;
    const Json* g = f->find("violation_frame");
    if (g == nullptr || !g->is_int() || g->as_int() < 0) {
      return fail("bad witness.violation_frame");
    }
    witness.violation_frame = static_cast<std::size_t>(g->as_int());
    g = f->find("frames");
    if (g == nullptr || !g->is_array()) return fail("bad witness.frames");
    for (const Json& frame : g->items()) {
      if (!frame.is_string()) return fail("bad witness frame");
      try {
        witness.frames.push_back(
            {util::BitVec::from_binary_string(frame.as_string())});
      } catch (const std::exception&) {
        return fail("bad witness frame bits");
      }
    }
    result.witness = std::move(witness);
  }
  if (result.violated != result.witness.has_value()) {
    return fail("witness/violated mismatch");
  }

  f = j.find("counters");
  if (f == nullptr || !f->is_object()) return fail("bad counters");
  const auto get_u64 = [&](const char* key, std::uint64_t& value) {
    const Json* g = f->find(key);
    if (g == nullptr || !g->is_int() || g->as_int() < 0) return false;
    value = static_cast<std::uint64_t>(g->as_int());
    return true;
  };
  core::EngineCounters& c = result.counters;
  std::uint64_t u = 0;
  if (!get_u64("sat_decisions", c.sat.decisions)) return fail("bad counters");
  if (!get_u64("sat_propagations", c.sat.propagations)) {
    return fail("bad counters");
  }
  if (!get_u64("sat_conflicts", c.sat.conflicts)) return fail("bad counters");
  if (!get_u64("sat_restarts", c.sat.restarts)) return fail("bad counters");
  if (!get_u64("sat_learned_clauses", c.sat.learned_clauses)) {
    return fail("bad counters");
  }
  if (!get_u64("sat_learned_literals", c.sat.learned_literals)) {
    return fail("bad counters");
  }
  if (!get_u64("sat_deleted_clauses", c.sat.deleted_clauses)) {
    return fail("bad counters");
  }
  if (!get_u64("sat_minimized_literals", c.sat.minimized_literals)) {
    return fail("bad counters");
  }
  if (!get_u64("cnf_vars", u)) return fail("bad counters");
  c.cnf_vars = static_cast<std::size_t>(u);
  const Json* g = f->find("frame_clauses");
  if (g == nullptr || !g->is_array()) return fail("bad frame_clauses");
  for (const Json& n : g->items()) {
    if (!n.is_int() || n.as_int() < 0) return fail("bad frame_clauses");
    c.frame_clauses.push_back(static_cast<std::uint32_t>(n.as_int()));
  }
  if (!get_u64("atpg_decisions", c.atpg_decisions)) return fail("bad counters");
  if (!get_u64("atpg_backtracks", c.atpg_backtracks)) {
    return fail("bad counters");
  }
  if (!get_u64("atpg_implications", c.atpg_implications)) {
    return fail("bad counters");
  }
  if (!get_u64("atpg_frames_proven_clean", u)) return fail("bad counters");
  c.atpg_frames_proven_clean = static_cast<std::size_t>(u);
  if (!get_u64("atpg_frames_aborted", u)) return fail("bad counters");
  c.atpg_frames_aborted = static_cast<std::size_t>(u);
  if (!get_u64("pdr_frames", c.pdr_frames)) return fail("bad counters");
  if (!get_u64("pdr_pushed_clauses", c.pdr_pushed_clauses)) {
    return fail("bad counters");
  }
  if (!get_u64("pdr_ctis", c.pdr_ctis)) return fail("bad counters");
  if (!get_u64("pdr_obligations", c.pdr_obligations)) {
    return fail("bad counters");
  }

  const Json* ref = j.find("cert_ref");
  if (ref == nullptr || !ref->is_string()) return fail("bad cert_ref");
  if (cert_ref != nullptr) *cert_ref = ref->as_string();

  result.seconds = 0.0;
  result.memory_bytes = 0;
  result.cancelled = false;
  out = std::move(result);
  return true;
}

AuditVerdictStore::AuditVerdictStore(VerdictCache& cache,
                                     const designs::Design& design,
                                     const core::DetectorOptions& options,
                                     bool fail_fast)
    : cache_(cache), keyer_(design, options, fail_fast) {}

void AuditVerdictStore::set_cert_ref(std::string ref) {
  std::lock_guard<std::mutex> lock(cert_ref_mutex_);
  cert_ref_ = std::move(ref);
}

bool AuditVerdictStore::lookup(const core::Obligation& obligation,
                               core::CheckResult& out) {
  const std::string key = keyer_.key(obligation);
  const std::optional<std::string> payload = cache_.lookup(key);
  if (!payload.has_value()) {
    TS_COUNTER_ADD("cache.miss", 1);
    return false;
  }
  std::string parse_error;
  if (!verdict_from_json(*payload, out, nullptr, &parse_error)) {
    TS_LOG_WARN("cache: rejecting entry %s for %s: %s", key.c_str(),
                obligation.property_name().c_str(), parse_error.c_str());
    cache_.invalidate(key);
    TS_COUNTER_ADD("cache.miss", 1);
    return false;
  }
  TS_COUNTER_ADD("cache.hit", 1);
  return true;
}

void AuditVerdictStore::store(const core::Obligation& obligation,
                              const core::CheckResult& result) {
  if (result.cancelled) return;  // a cancelled run is not a verdict
  std::string ref;
  {
    std::lock_guard<std::mutex> lock(cert_ref_mutex_);
    ref = cert_ref_;
  }
  cache_.store(keyer_.key(obligation), verdict_to_json(obligation, result, ref));
}

void append_cache_record(telemetry::RunReport& report,
                         const VerdictCache& cache) {
  const CacheStats stats = cache.stats();
  auto& rec = report.add("cache");
  rec.set("dir", cache.dir())
      .set("mode", cache_mode_name(cache.mode()))
      .set("hits", stats.hits)
      .set("misses", stats.misses)
      .set("stores", stats.stores)
      .set("evictions", stats.evictions)
      .set("corrupt_skipped", stats.corrupt_skipped)
      .set("entries", static_cast<std::uint64_t>(cache.entry_count()))
      .set("bytes", cache.total_bytes());
}

}  // namespace trojanscout::cache
