// Binds the payload-agnostic VerdictCache to Algorithm 1's obligations.
//
// Key derivation: an obligation's CheckResult is a pure function of
//   (netlist structure, valid-ways spec, obligation, monitor kind,
//    engine configuration),
// so the cache key is a 128-bit hex digest over exactly that tuple —
// proof::design_hash + proof::spec_hash anchor the netlist and property
// encoding, and every engine knob that can change a verdict (backend,
// bound, budget, solver/ATPG configuration, fail-fast) is mixed in. Two
// audits agree on a key if and only if they would ask the engine the same
// question.
//
// Payload: a versioned JSON record carrying the full deterministic part of
// the CheckResult — verdict flags, status, frames, witness input bits, the
// EngineCounters block (so a warm RunReport is byte-identical to the cold
// one when timing is stripped), and an optional reference to the proof
// certificate produced alongside the verdict. Wall-clock and memory fields
// are recorded for diagnostics but deliberately NOT restored: a cache hit
// reports zero seconds, and both fields are timing-flagged everywhere they
// surface.
#pragma once

#include <string>

#include "cache/verdict_cache.hpp"
#include "core/detector.hpp"
#include "core/verdict_store.hpp"
#include "designs/design.hpp"
#include "telemetry/run_report.hpp"

namespace trojanscout::cache {

/// Precomputes the per-audit half of the key (design + spec + config) once;
/// key() then mixes the per-obligation fields. Thread-safe after
/// construction.
class ObligationKeyer {
 public:
  ObligationKeyer(const designs::Design& design,
                  const core::DetectorOptions& options, bool fail_fast);

  /// 32 lowercase hex chars, stable across processes and platforms.
  [[nodiscard]] std::string key(const core::Obligation& obligation) const;

 private:
  std::string context_;
};

/// Serializes a completed (non-cancelled) verdict. `cert_ref` (may be
/// empty) names the certificate file whose evidence covers this verdict.
std::string verdict_to_json(const core::Obligation& obligation,
                            const core::CheckResult& result,
                            const std::string& cert_ref);

/// Strict parse of a cache payload; any missing/ill-typed field fails (the
/// caller treats that as a corrupt entry). On success `out.seconds` and
/// `out.memory_bytes` are zero — hits cost nothing.
bool verdict_from_json(const std::string& text, core::CheckResult& out,
                       std::string* cert_ref, std::string* error);

/// core::VerdictStore over a VerdictCache: lookup parses + validates the
/// payload (invalidating schema-corrupt entries), store skips cancelled
/// results and stamps the configured cert_ref.
class AuditVerdictStore final : public core::VerdictStore {
 public:
  AuditVerdictStore(VerdictCache& cache, const designs::Design& design,
                    const core::DetectorOptions& options, bool fail_fast);

  /// Reference recorded into entries stored from now on (the certify path
  /// points it at the emitted certificate file).
  void set_cert_ref(std::string ref);

  bool lookup(const core::Obligation& obligation,
              core::CheckResult& out) override;
  void store(const core::Obligation& obligation,
             const core::CheckResult& result) override;

 private:
  VerdictCache& cache_;
  ObligationKeyer keyer_;
  std::mutex cert_ref_mutex_;
  std::string cert_ref_;
};

/// Appends one {"type":"cache"} record with the cache's configuration,
/// event counts, and current size — all deterministic for a given starting
/// cache state, so timing-stripped reports stay byte-comparable.
void append_cache_record(telemetry::RunReport& report,
                         const VerdictCache& cache);

}  // namespace trojanscout::cache
