// Persistent, content-addressed verdict store.
//
// A cache directory holds one file per entry, named by the entry's
// canonical key (a hex digest computed by the codec layer from the netlist
// signature, the property encoding, and the engine configuration — see
// cache/verdict_codec.hpp). The store itself is payload-agnostic: it deals
// in opaque text blobs and owns durability, integrity, and eviction:
//
//   * writes are atomic (write to a temp file in the same directory, then
//     rename), so a crashed or concurrent writer can never leave a
//     half-written entry visible under its final name;
//   * every entry carries a header line with a checksum of the payload;
//     a truncated or bit-flipped file fails verification on load and is
//     skipped (counted + unlinked), never fatal to the audit;
//   * an LRU byte-size cap: each hit/store bumps the entry's use clock in
//     a sidecar index (`index.json`, also written atomically), and stores
//     evict least-recently-used entries until the directory fits the cap.
//     A missing or corrupt index is rebuilt by scanning the directory.
//
// Modes: kOff (every lookup misses, nothing is written), kReadOnly (hits
// are served but no store/evict/bump touches the directory), kReadWrite.
// All methods are thread-safe; cross-process sharing is safe for entry
// files (atomic rename) while the LRU index is best-effort under races.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>

namespace trojanscout::cache {

enum class CacheMode { kOff, kReadOnly, kReadWrite };

const char* cache_mode_name(CacheMode mode);
/// Accepts "off" | "ro" | "rw" (the --cache flag values).
bool cache_mode_from_name(const std::string& name, CacheMode& out);

/// Monotonic event counts since this VerdictCache was opened.
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t stores = 0;
  std::uint64_t evictions = 0;
  /// Entries rejected on load: checksum/header failure here, or a payload
  /// the codec refused (reported via invalidate()).
  std::uint64_t corrupt_skipped = 0;
};

class VerdictCache {
 public:
  struct Options {
    std::string dir;
    CacheMode mode = CacheMode::kReadWrite;
    /// LRU cap on the summed payload bytes of live entries (0 = unlimited).
    std::uint64_t max_bytes = 256ull << 20;
  };

  /// Creates the directory (if rw) and loads or rebuilds the LRU index.
  /// Throws std::runtime_error only when a read-write cache directory
  /// cannot be created at all.
  explicit VerdictCache(Options options);

  /// Returns the payload stored under `key`, or nullopt on miss. A file
  /// that exists but fails integrity verification counts as
  /// corrupt_skipped, is unlinked (rw mode), and reads as a miss.
  std::optional<std::string> lookup(const std::string& key);

  /// Persists `payload` under `key` (read-write mode only; silently a
  /// no-op otherwise), then evicts LRU entries beyond max_bytes.
  void store(const std::string& key, const std::string& payload);

  /// Drops an entry whose payload the codec layer rejected after the
  /// checksum passed (schema-level corruption). Counts corrupt_skipped.
  void invalidate(const std::string& key);

  [[nodiscard]] CacheStats stats() const;
  [[nodiscard]] std::size_t entry_count() const;
  [[nodiscard]] std::uint64_t total_bytes() const;
  [[nodiscard]] const std::string& dir() const { return options_.dir; }
  [[nodiscard]] CacheMode mode() const { return options_.mode; }

  /// Filename (not path) an entry lives under — exposed so robustness
  /// tests can corrupt entries without re-deriving the naming scheme.
  static std::string entry_filename(const std::string& key);

 private:
  struct Entry {
    std::uint64_t bytes = 0;      // payload bytes (excl. header)
    std::uint64_t last_used = 0;  // LRU clock value of the latest touch
  };

  [[nodiscard]] std::string entry_path(const std::string& key) const;
  void load_index_locked();
  void rebuild_index_locked();
  void persist_index_locked();
  void evict_over_cap_locked(const std::string& keep_key);
  void drop_entry_locked(const std::string& key, bool count_corrupt);

  Options options_;
  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;
  std::uint64_t clock_ = 0;
  std::uint64_t total_bytes_ = 0;
  CacheStats stats_;
};

}  // namespace trojanscout::cache
