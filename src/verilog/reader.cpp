#include "verilog/reader.hpp"

#include <istream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <vector>

namespace trojanscout::verilog {

using netlist::Netlist;
using netlist::SignalId;
using netlist::Word;

namespace {

struct ParseError : std::runtime_error {
  explicit ParseError(int line, const std::string& message)
      : std::runtime_error("verilog reader: line " + std::to_string(line) +
                           ": " + message) {}
};

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  const auto end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string token;
  std::istringstream in(s);
  while (std::getline(in, token, sep)) out.push_back(trim(token));
  return out;
}

bool starts_with(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

}  // namespace

Netlist read_verilog(std::istream& in) {
  std::vector<std::pair<int, std::string>> lines;
  {
    std::string raw;
    int number = 0;
    while (std::getline(in, raw)) {
      ++number;
      const std::string line = trim(raw);
      if (!line.empty()) lines.emplace_back(number, line);
    }
  }

  Netlist nl;
  std::unordered_map<std::string, SignalId> nets;
  std::unordered_map<std::string, bool> reg_init;
  std::vector<std::string> reg_names;        // declaration order
  std::vector<std::string> input_port_names;  // declaration order

  struct PortDecl {
    std::string name;
    std::size_t width;
    bool is_input;
  };
  std::unordered_map<std::string, PortDecl> ports;

  // ---- pass 1: declarations and initial values -----------------------------
  for (const auto& [number, line] : lines) {
    if (starts_with(line, "input ") || starts_with(line, "output ")) {
      const bool is_input = starts_with(line, "input ");
      std::string rest = trim(line.substr(is_input ? 6 : 7));
      if (rest == "clk;") continue;
      std::size_t width = 1;
      if (starts_with(rest, "[")) {
        const auto close = rest.find(']');
        if (close == std::string::npos) throw ParseError(number, "bad range");
        const std::string range = rest.substr(1, close - 1);
        const auto colon = range.find(':');
        try {
          width =
              static_cast<std::size_t>(std::stoul(range.substr(0, colon))) + 1;
        } catch (const std::exception&) {
          throw ParseError(number, "bad range bound '" + range + "'");
        }
        rest = trim(rest.substr(close + 1));
      }
      if (rest.empty() || rest.back() != ';') {
        throw ParseError(number, "missing ';' in port declaration");
      }
      const std::string name = trim(rest.substr(0, rest.size() - 1));
      ports[name] = PortDecl{name, width, is_input};
      if (is_input) input_port_names.push_back(name);
    } else if (starts_with(line, "reg ")) {
      std::string name = trim(line.substr(4));
      if (name.empty() || name.back() != ';') {
        throw ParseError(number, "missing ';' in reg declaration");
      }
      name = trim(name.substr(0, name.size() - 1));
      reg_names.push_back(name);
    } else if (line.find("= 1'b") != std::string::npos &&
               line.find("assign") == std::string::npos &&
               line.find("<=") == std::string::npos) {
      // initial-block entry: "qN = 1'b0;"
      const auto eq = line.find('=');
      const std::string name = trim(line.substr(0, eq));
      const char v = line[line.find("1'b") + 3];
      reg_init[name] = v == '1';
    }
  }

  // Inputs first (ports define the PI order), then DFF shells.
  for (const auto& name : input_port_names) {
    const Word bits = nl.add_input_port(name, ports.at(name).width);
    for (std::size_t i = 0; i < bits.size(); ++i) {
      // Port bit extraction assigns ("assign nX = name[i];") alias these.
      nets[name + "[" + std::to_string(i) + "]"] = bits[i];
    }
  }
  for (const auto& name : reg_names) {
    const auto it = reg_init.find(name);
    nets[name] = nl.add_dff(it != reg_init.end() && it->second);
    nl.set_name(nets[name], name);
  }

  // ---- pass 2: structure -----------------------------------------------------
  auto resolve = [&](int number, const std::string& token) -> SignalId {
    const std::string t = trim(token);
    if (t == "1'b0") return nl.const0();
    if (t == "1'b1") return nl.const1();
    const auto it = nets.find(t);
    if (it == nets.end()) throw ParseError(number, "unknown net '" + t + "'");
    return it->second;
  };

  for (const auto& [number, line] : lines) {
    if (starts_with(line, "// @register ")) {
      const auto tokens = split(line.substr(13), ' ');
      // tokens separated by spaces: first is the name, rest are DFD nets;
      // split(' ') may produce empties, filter them.
      std::vector<std::string> parts;
      std::istringstream ts(line.substr(13));
      std::string tk;
      while (ts >> tk) parts.push_back(tk);
      if (parts.empty()) throw ParseError(number, "empty @register");
      Word dffs;
      for (std::size_t i = 1; i < parts.size(); ++i) {
        dffs.push_back(resolve(number, parts[i]));
      }
      nl.add_register(parts[0], dffs);
      (void)tokens;
      continue;
    }
    if (starts_with(line, "assign ")) {
      const auto eq = line.find('=');
      if (eq == std::string::npos || line.back() != ';') {
        throw ParseError(number, "malformed assign");
      }
      const std::string lhs = trim(line.substr(7, eq - 7));
      std::string rhs = trim(line.substr(eq + 1));
      rhs = trim(rhs.substr(0, rhs.size() - 1));  // strip ';'

      // Output port concatenation: assign port = {a, b, ...};
      if (!rhs.empty() && rhs.front() == '{') {
        if (rhs.back() != '}') throw ParseError(number, "malformed concat");
        const auto items = split(rhs.substr(1, rhs.size() - 2), ',');
        Word bits;
        for (auto it = items.rbegin(); it != items.rend(); ++it) {
          bits.push_back(resolve(number, *it));  // MSB first in text
        }
        nl.add_output_port(lhs, bits);
        continue;
      }

      SignalId value = netlist::kNullSignal;
      // Mux: s ? t : f
      const auto qm = rhs.find('?');
      if (qm != std::string::npos) {
        const auto colon = rhs.find(':', qm);
        if (colon == std::string::npos) throw ParseError(number, "bad mux");
        value = nl.b_mux(resolve(number, rhs.substr(0, qm)),
                         resolve(number, rhs.substr(qm + 1, colon - qm - 1)),
                         resolve(number, rhs.substr(colon + 1)));
      } else if (starts_with(rhs, "~(")) {
        if (rhs.back() != ')') throw ParseError(number, "bad negated group");
        const std::string inner = rhs.substr(2, rhs.size() - 3);
        for (const char op : {'&', '|', '^'}) {
          const auto pos = inner.find(op);
          if (pos == std::string::npos) continue;
          const SignalId a = resolve(number, inner.substr(0, pos));
          const SignalId b = resolve(number, inner.substr(pos + 1));
          value = op == '&' ? nl.b_nand(a, b)
                            : op == '|' ? nl.b_nor(a, b) : nl.b_xnor(a, b);
          break;
        }
        if (value == netlist::kNullSignal) {
          throw ParseError(number, "bad negated expression");
        }
      } else if (starts_with(rhs, "~")) {
        value = nl.b_not(resolve(number, rhs.substr(1)));
      } else {
        bool matched = false;
        for (const char op : {'&', '|', '^'}) {
          const auto pos = rhs.find(op);
          if (pos == std::string::npos) continue;
          const SignalId a = resolve(number, rhs.substr(0, pos));
          const SignalId b = resolve(number, rhs.substr(pos + 1));
          value = op == '&' ? nl.b_and(a, b)
                            : op == '|' ? nl.b_or(a, b) : nl.b_xor(a, b);
          matched = true;
          break;
        }
        if (!matched) {
          // Plain alias: assign nX = name[i]; / assign nX = nY;
          value = resolve(number, rhs);
        }
      }
      nets[lhs] = value;
      continue;
    }
    // DFF update: "qN <= net;"
    const auto arrow = line.find("<=");
    if (arrow != std::string::npos && line.back() == ';') {
      const std::string lhs = trim(line.substr(0, arrow));
      const std::string rhs =
          trim(line.substr(arrow + 2, line.size() - arrow - 3));
      const auto it = nets.find(lhs);
      if (it == nets.end()) throw ParseError(number, "unknown reg " + lhs);
      nl.connect_dff_input(it->second, resolve(number, rhs));
      continue;
    }
    // Everything else (module header, begin/end, comments) is ignored.
  }
  return nl;
}

Netlist read_verilog_string(const std::string& text) {
  std::istringstream in(text);
  return read_verilog(in);
}

}  // namespace trojanscout::verilog
