// Structural Verilog writer for the netlist IR.
//
// Emits a synthesizable single-clock structural subset: continuous assigns
// for combinational gates, one always-block per DFF, an initial block for
// reset values, and `// @register` metadata comments so named registers
// survive a round trip through the reader. The paper's flow embeds property
// monitors into the Verilog handed to SMV/TetraMAX; this writer is how a
// trojanscout netlist (design + monitor) would be exported to such tools.
#pragma once

#include <iosfwd>
#include <string>

#include "netlist/netlist.hpp"

namespace trojanscout::verilog {

void write_verilog(std::ostream& os, const netlist::Netlist& nl,
                   const std::string& module_name);

std::string to_verilog_string(const netlist::Netlist& nl,
                              const std::string& module_name);

}  // namespace trojanscout::verilog
