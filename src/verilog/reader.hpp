// Reader for the structural Verilog subset emitted by writer.hpp.
//
// Supports exactly the constructs the writer produces (3PIP gate-level
// deliveries in this style are common): multi-bit input/output ports,
// wire/reg declarations, two-operand continuous assigns with optional
// negation, mux assigns, non-blocking DFF updates in one always block,
// initial-block reset values, and `// @register` metadata comments.
// Throws std::runtime_error with a line number on anything else.
#pragma once

#include <iosfwd>
#include <string>

#include "netlist/netlist.hpp"

namespace trojanscout::verilog {

netlist::Netlist read_verilog(std::istream& in);
netlist::Netlist read_verilog_string(const std::string& text);

}  // namespace trojanscout::verilog
