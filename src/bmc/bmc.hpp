// Bounded model checking engine (the paper's SMV role, Section 3.1).
//
// Given a netlist with a *bad signal* (a monitor output that is 1 exactly
// when the no-data-corruption property is violated at that cycle), the
// engine unrolls the design frame by frame, asking the SAT solver at each
// frame whether the bad signal can be 1. A SAT answer yields the witness
// (the Trojan trigger sequence); exhausting the bound or the resource budget
// yields "trustworthy for T clock cycles" semantics.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "sat/solver.hpp"
#include "sim/witness.hpp"
#include "telemetry/flight.hpp"

namespace trojanscout::bmc {

struct BmcOptions {
  /// Maximum number of frames to unroll (the paper's T bound).
  std::size_t max_frames = 1024;
  /// Wall-clock budget in seconds (the paper runs tools for 100 s).
  double time_limit_seconds = 100.0;
  /// Clause-database cap: the run stops with kResourceOut before the CNF
  /// copies exhaust the machine (the paper had 128 GB; containers do not).
  std::uint64_t memory_limit_bytes = 2ull << 30;
  /// SAT solver configuration (exposed for the ablation benches).
  sat::SolverOptions solver;
  /// Cooperative cancellation flag polled between frames and inside the
  /// SAT search; a set flag ends the run with kResourceOut + cancelled.
  const std::atomic<bool>* cancel = nullptr;
  /// Clause-proof stream (see proof/drat.hpp). When non-null, attached to
  /// the solver before any clause is added: the listener sees the full
  /// input-clause sequence, every learned/deleted clause as binary DRAT,
  /// and one UNSAT mark per clean frame. Null (the default) costs nothing.
  sat::ProofListener* proof = nullptr;
  /// Live-progress cells for the --progress heartbeat / stall watchdog.
  /// When non-null, forwarded into every solve's Budget and the frame
  /// counter is stored after each frame. Null costs nothing.
  telemetry::ObligationProgress* progress = nullptr;
};

enum class BmcStatus {
  /// Property violated: a counterexample (Trojan trigger) was found.
  kViolated,
  /// Unrolled max_frames with no violation: trustworthy for that many cycles.
  kBoundReached,
  /// Budget exhausted: trustworthy for frames_completed cycles only.
  kResourceOut,
};

struct BmcResult {
  BmcStatus status = BmcStatus::kResourceOut;
  std::optional<sim::Witness> witness;
  /// Number of frames fully checked (UNSAT) before stopping / violating.
  std::size_t frames_completed = 0;
  double seconds = 0.0;
  /// RSS growth attributable to this run, in bytes.
  std::uint64_t memory_bytes = 0;
  sat::SolverStats sat_stats;
  /// CNF variables allocated by the unroller across all frames.
  std::size_t vars = 0;
  /// Clause-database size sampled after each frame's solve — the growth
  /// curve behind the paper's "BMC makes multiple copies of the design".
  std::vector<std::uint32_t> frame_clauses;
  /// Flight recorder: per-frame solver-stat deltas + frame wall time
  /// (observational; see telemetry/flight.hpp for the timing carve-out).
  std::vector<telemetry::FlightWindow> flight;
  /// True when the run stopped because BmcOptions::cancel was set.
  bool cancelled = false;

  [[nodiscard]] bool violated() const { return status == BmcStatus::kViolated; }
  [[nodiscard]] std::string status_name() const;
};

/// Runs BMC on `nl` for the given bad signal.
BmcResult check_bad_signal(const netlist::Netlist& nl,
                           netlist::SignalId bad_signal,
                           const BmcOptions& options);

// ---- unbounded proofs via k-induction ------------------------------------
//
// BMC alone certifies "trustworthy for T clock cycles" and the paper's
// protocol resets the design past that bound (Section 3.2). When the
// no-corruption property is *inductive*, the reset is unnecessary: if no
// state (reachable or not) can violate the property after k clean steps,
// the property holds forever. Plain k-induction (no uniqueness
// constraints); fails safe to kUnknown on non-inductive properties.

enum class InductionStatus {
  kProven,        // property holds for all time
  kBaseViolated,  // ordinary counterexample found (witness available)
  kUnknown,       // not k-inductive within max_k / budget
};

struct InductionResult {
  InductionStatus status = InductionStatus::kUnknown;
  /// The k at which the step case closed (kProven only).
  std::size_t k_used = 0;
  std::optional<sim::Witness> witness;  // kBaseViolated only
  double seconds = 0.0;
};

struct InductionOptions {
  std::size_t max_k = 8;
  double time_limit_seconds = 60.0;
  sat::SolverOptions solver;
};

InductionResult prove_by_induction(const netlist::Netlist& nl,
                                   netlist::SignalId bad_signal,
                                   const InductionOptions& options = {});

}  // namespace trojanscout::bmc
