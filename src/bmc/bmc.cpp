#include "bmc/bmc.hpp"

#include <algorithm>

#include "cnf/unroller.hpp"
#include "telemetry/progress.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/span.hpp"
#include "util/logging.hpp"
#include "util/resource.hpp"
#include "util/stopwatch.hpp"

namespace trojanscout::bmc {

std::string BmcResult::status_name() const {
  switch (status) {
    case BmcStatus::kViolated:
      return "violated";
    case BmcStatus::kBoundReached:
      return "bound-reached";
    case BmcStatus::kResourceOut:
      return "resource-out";
  }
  return "?";
}

BmcResult check_bad_signal(const netlist::Netlist& nl,
                           netlist::SignalId bad_signal,
                           const BmcOptions& options) {
  util::Stopwatch timer;
  const std::uint64_t rss_before = util::current_rss_bytes();

  sat::Solver solver(options.solver);
  // Attach before the Unroller exists: its constructor already emits the
  // constant-true clause, which must be part of the recorded formula.
  if (options.proof != nullptr) solver.set_proof_listener(options.proof);
  cnf::Unroller unroller(nl, solver, {bad_signal});

  BmcResult result;
  for (std::size_t t = 0; t < options.max_frames; ++t) {
    if (options.cancel != nullptr &&
        options.cancel->load(std::memory_order_acquire)) {
      result.status = BmcStatus::kResourceOut;
      result.cancelled = true;
      break;
    }
    const double remaining =
        options.time_limit_seconds - timer.elapsed_seconds();
    if (remaining <= 0 ||
        solver.clause_bytes() > options.memory_limit_bytes) {
      result.status = BmcStatus::kResourceOut;
      break;
    }

    // One span per frame; the unroll and solve children nest inside it.
    telemetry::Span frame_span("bmc:frame");
    const sat::SolverStats stats_before = solver.stats();
    const double frame_started = timer.elapsed_seconds();
    unroller.add_frame();
    const sat::Lit bad = unroller.lit_of(bad_signal, t);
    if (options.progress != nullptr) {
      options.progress->frames.store(t + 1, std::memory_order_relaxed);
    }

    sat::Budget budget;
    budget.time_limit_seconds = remaining;
    budget.cancel = options.cancel;
    budget.progress = options.progress;
    const sat::SolveResult sat_result = solver.solve({bad}, budget);
    result.frame_clauses.push_back(
        static_cast<std::uint32_t>(solver.num_clauses()));
    {
      const sat::SolverStats stats_after = solver.stats();
      telemetry::FlightWindow w;
      w.frame = t;
      w.decisions = stats_after.decisions - stats_before.decisions;
      w.propagations = stats_after.propagations - stats_before.propagations;
      w.conflicts = stats_after.conflicts - stats_before.conflicts;
      w.restarts = stats_after.restarts - stats_before.restarts;
      w.wall_us = static_cast<std::uint64_t>(
          (timer.elapsed_seconds() - frame_started) * 1e6);
      result.flight.push_back(w);
    }
    TS_COUNTER_ADD("bmc.frames", 1);

    if (sat_result == sat::SolveResult::kSat) {
      result.status = BmcStatus::kViolated;
      result.witness = unroller.extract_witness(t);
      result.frames_completed = t;
      break;
    }
    if (sat_result == sat::SolveResult::kUnknown) {
      result.status = BmcStatus::kResourceOut;
      result.cancelled = sat::budget_cancelled(budget);
      break;
    }
    // Proven unreachable at this frame: pin it down as a unit fact, which
    // strengthens propagation in later frames.
    solver.add_clause(~bad);
    result.frames_completed = t + 1;
    if (result.frames_completed == options.max_frames) {
      result.status = BmcStatus::kBoundReached;
    }
    TS_LOG_DEBUG("bmc: frame %zu clean (%.2fs elapsed)", t,
                 timer.elapsed_seconds());
  }

  result.seconds = timer.elapsed_seconds();
  // Engine working set: the clause database + watcher lists dominate BMC
  // memory and grow with the unroll depth (the paper's "BMC makes multiple
  // copies of the design"). RSS deltas are unreliable within one process
  // (allocator reuse), so the accounted size is reported, floored by the
  // observed RSS growth.
  const std::uint64_t rss_after = util::current_rss_bytes();
  const std::uint64_t rss_delta =
      rss_after > rss_before ? rss_after - rss_before : 0;
  result.memory_bytes = std::max(rss_delta, solver.clause_bytes());
  result.sat_stats = solver.stats();
  result.vars = unroller.vars_allocated();
  return result;
}


InductionResult prove_by_induction(const netlist::Netlist& nl,
                                   netlist::SignalId bad_signal,
                                   const InductionOptions& options) {
  util::Stopwatch timer;
  InductionResult result;

  // Base-case machinery: ordinary initialized unrolling, extended lazily.
  sat::Solver base_solver(options.solver);
  cnf::Unroller base(nl, base_solver, {bad_signal});

  for (std::size_t k = 1; k <= options.max_k; ++k) {
    const double remaining =
        options.time_limit_seconds - timer.elapsed_seconds();
    if (remaining <= 0) break;

    // Base: bad unreachable in frames [0, k).
    while (base.frame_count() < k) {
      const std::size_t t = base.add_frame();
      sat::Budget budget;
      budget.time_limit_seconds =
          options.time_limit_seconds - timer.elapsed_seconds();
      const auto r = base_solver.solve({base.lit_of(bad_signal, t)}, budget);
      if (r == sat::SolveResult::kSat) {
        result.status = InductionStatus::kBaseViolated;
        result.witness = base.extract_witness(t);
        result.seconds = timer.elapsed_seconds();
        return result;
      }
      if (r == sat::SolveResult::kUnknown) {
        result.seconds = timer.elapsed_seconds();
        return result;
      }
      base_solver.add_clause(~base.lit_of(bad_signal, t));
    }

    // Step: from any state, k clean steps imply a clean (k+1)-th.
    sat::Solver step_solver(options.solver);
    cnf::Unroller step(nl, step_solver, {bad_signal},
                       /*free_initial_state=*/true);
    for (std::size_t t = 0; t <= k; ++t) step.add_frame();
    for (std::size_t t = 0; t < k; ++t) {
      step_solver.add_clause(~step.lit_of(bad_signal, t));
    }
    sat::Budget budget;
    budget.time_limit_seconds =
        options.time_limit_seconds - timer.elapsed_seconds();
    const auto r = step_solver.solve({step.lit_of(bad_signal, k)}, budget);
    if (r == sat::SolveResult::kUnsat) {
      result.status = InductionStatus::kProven;
      result.k_used = k;
      result.seconds = timer.elapsed_seconds();
      return result;
    }
    if (r == sat::SolveResult::kUnknown) break;
    // SAT: not k-inductive; try a larger k.
    TS_LOG_DEBUG("induction: step case open at k=%zu", k);
  }
  result.seconds = timer.elapsed_seconds();
  return result;
}

}  // namespace trojanscout::bmc
