#include "properties/monitors.hpp"

#include <stdexcept>

#include "netlist/wordops.hpp"

namespace trojanscout::properties {

using netlist::Netlist;
using netlist::SignalId;
using netlist::Word;

const RegisterSpec& DesignSpec::at(const std::string& reg) const {
  const RegisterSpec* spec = find(reg);
  if (spec == nullptr) {
    throw std::out_of_range("no RegisterSpec for register " + reg);
  }
  return *spec;
}

namespace {

/// Current value (DFF outputs) and next value (DFF data inputs) of a
/// register. The data inputs are the combinational view of "R at t+1", so
/// the monitor stays purely combinational over cycle t.
struct RegisterView {
  Word current;
  Word next;
};

RegisterView view_of(const Netlist& nl, const std::string& reg) {
  const auto& r = nl.find_register(reg);
  RegisterView view;
  view.current = r.dffs;
  view.next.reserve(r.dffs.size());
  for (const SignalId dff : r.dffs) {
    const SignalId d = nl.gate(dff).fanin[0];
    if (d == netlist::kNullSignal) {
      throw std::runtime_error("monitor: register " + reg +
                               " has unconnected DFF input");
    }
    view.next.push_back(d);
  }
  return view;
}

/// A register's previous-cycle value, provided by shadow DFFs initialized to
/// the register's reset value (so the relation also holds at cycle 0).
Word previous_of(Netlist& nl, const std::string& reg) {
  const auto& r = nl.find_register(reg);
  Word shadow(r.dffs.size());
  for (std::size_t i = 0; i < r.dffs.size(); ++i) {
    shadow[i] = nl.add_dff(nl.gate(r.dffs[i]).init);
    nl.connect_dff_input(shadow[i], r.dffs[i]);
    nl.set_name(shadow[i], "monitor_prev_" + reg + "[" + std::to_string(i) + "]");
  }
  return shadow;
}

}  // namespace

namespace {
/// RAII: the monitor elaborates as its own gates (like an SVA assertion)
/// rather than folding into the design's logic via structural hashing.
class StrashOff {
 public:
  explicit StrashOff(Netlist& nl) : nl_(nl), saved_(nl.strash_enabled()) {
    nl_.set_strash_enabled(false);
  }
  ~StrashOff() { nl_.set_strash_enabled(saved_); }

 private:
  Netlist& nl_;
  bool saved_;
};
}  // namespace

SignalId build_corruption_monitor(Netlist& nl, const RegisterSpec& spec,
                                  CorruptionMonitorKind kind) {
  const RegisterView view = view_of(nl, spec.reg);
  const StrashOff strash_guard(nl);

  if (kind == CorruptionMonitorKind::kHoldOnly) {
    // Eq. (2): AND_x ( S not in V  =>  R_{x,t-1} = R_{x,t} ).
    // bad = no-valid-way-fired AND some bit changes.
    SignalId any_way = nl.const0();
    for (const auto& way : spec.ways) {
      any_way = nl.b_or(any_way, way.condition);
    }
    const SignalId changed =
        nl.b_not(netlist::w_eq(nl, view.next, view.current));
    const SignalId bad = nl.b_and(nl.b_not(any_way), changed);
    nl.set_name(bad, "monitor_corruption_hold_" + spec.reg);
    return bad;
  }

  // kExact: golden next-state from the priority-resolved valid ways.
  std::vector<netlist::CaseEntry> entries;
  entries.reserve(spec.ways.size());
  for (const auto& way : spec.ways) {
    if (way.next_value.size() != view.current.size()) {
      throw std::invalid_argument("monitor: valid-way width mismatch on " +
                                  spec.reg + " (" + way.description + ")");
    }
    entries.push_back(netlist::CaseEntry{way.condition, way.next_value});
  }
  const Word expected = netlist::w_case(nl, entries, view.current);
  const SignalId bad = nl.b_not(netlist::w_eq(nl, view.next, expected));
  nl.set_name(bad, "monitor_corruption_exact_" + spec.reg);
  return bad;
}

SignalId build_pseudo_critical_monitor(Netlist& nl,
                                       const std::string& critical_reg,
                                       const std::string& candidate_reg,
                                       PseudoPolarity polarity,
                                       bool candidate_leads) {
  const auto& critical = nl.find_register(critical_reg).dffs;
  const auto& candidate = nl.find_register(candidate_reg).dffs;
  if (critical.size() != candidate.size()) {
    throw std::invalid_argument(
        "pseudo-critical monitor: width mismatch between " + critical_reg +
        " and " + candidate_reg);
  }
  // Aligned comparison: P_t vs R_{t-1}  (or P_{t-1} vs R_t if P leads).
  const Word lagged =
      candidate_leads ? previous_of(nl, candidate_reg) : previous_of(nl, critical_reg);
  const Word current = candidate_leads ? critical : candidate;

  Word expected = lagged;
  if (polarity == PseudoPolarity::kComplement) {
    expected = netlist::w_not(nl, expected);
  }
  const SignalId bad = nl.b_not(netlist::w_eq(nl, current, expected));
  nl.set_name(bad, "monitor_pseudo_" + critical_reg + "_" + candidate_reg);
  return bad;
}

SignalId build_pseudo_critical_bit_monitor(Netlist& nl,
                                           const std::string& critical_reg,
                                           const std::string& candidate_reg,
                                           std::size_t bit,
                                           PseudoPolarity polarity,
                                           bool candidate_leads) {
  const auto& critical = nl.find_register(critical_reg).dffs;
  const auto& candidate = nl.find_register(candidate_reg).dffs;
  if (bit >= critical.size() || bit >= candidate.size()) {
    throw std::out_of_range("pseudo-critical bit monitor: bit out of range");
  }
  const std::string lag_reg = candidate_leads ? candidate_reg : critical_reg;
  const SignalId lag_src = candidate_leads ? candidate[bit] : critical[bit];
  const SignalId lagged = nl.add_dff(nl.gate(lag_src).init);
  nl.connect_dff_input(lagged, lag_src);
  nl.set_name(lagged, "monitor_prevbit_" + lag_reg);

  const SignalId current = candidate_leads ? critical[bit] : candidate[bit];
  const SignalId expected =
      polarity == PseudoPolarity::kComplement ? nl.b_not(lagged) : lagged;
  const SignalId bad = nl.b_xor(current, expected);
  nl.set_name(bad, "monitor_pseudo_bit_" + std::to_string(bit));
  return bad;
}

}  // namespace trojanscout::properties
