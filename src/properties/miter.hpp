// Eq. (4) bypass-register detection via a fork miter (Section 4.2).
//
// The paper's property: a Trojan has bypassed critical register R if there
// is a reachable state (after input sequence S) in which R's value no longer
// influences any output — the fanout mux selects the bypass register instead.
//
// Eq. (4) quantifies ∃S ∀p≠q, which is not directly SAT-encodable; we encode
// the strongest single difference (all bits complemented) and let the
// defender-supplied *obligations* make the check sound in both directions:
//
//   * Two copies of the design share all primary inputs plus one extra
//     input, fork_now. Until the fork both copies evolve identically
//     (structural hashing collapses the shared logic). From the fork cycle
//     onward, copy B reads ~R wherever it would read R (p = R, q = ~R,
//     all bits differing).
//   * An obligation (condition, observed_value, latency) states: when
//     `condition` holds and the golden `observed_value` differs between the
//     copies, R's value must reach an output within `latency` cycles.
//   * bad fires when: the fork happened, an obligation fired right at the
//     fork (within kObligationWindow cycles) with differing observed
//     values, and the outputs of the two copies remained equal throughout
//     the latency window. That is exactly the bypass behaviour: the design
//     consumed a corrupted surrogate and ignored R.
//
// On a clean design the obligation forces the forced difference through to
// an output inside the window, so no counterexample exists.
#pragma once

#include "netlist/netlist.hpp"
#include "properties/spec.hpp"

namespace trojanscout::properties {

struct BypassMiter {
  netlist::Netlist nl;
  /// 1 in a cycle where bypass behaviour is witnessed.
  netlist::SignalId bad = netlist::kNullSignal;
  /// Name of the fork input port inside the miter ("fork_now").
  static constexpr const char* kForkPort = "fork_now";
};

/// Cycles after the fork within which the obligation must fire.
inline constexpr std::size_t kObligationWindow = 2;

/// Builds the bypass miter for `spec.reg` of `design`. The spec must carry
/// at least one obligation. Throws std::invalid_argument otherwise.
BypassMiter build_bypass_miter(const netlist::Netlist& design,
                               const RegisterSpec& spec);

}  // namespace trojanscout::properties
