#include "properties/miter.hpp"

#include <algorithm>
#include <stdexcept>

#include "netlist/clone.hpp"
#include "netlist/wordops.hpp"

namespace trojanscout::properties {

using netlist::CloneOptions;
using netlist::Netlist;
using netlist::SignalId;
using netlist::SignalMap;
using netlist::Word;

BypassMiter build_bypass_miter(const Netlist& design,
                               const RegisterSpec& spec) {
  if (spec.obligations.empty()) {
    throw std::invalid_argument("build_bypass_miter: register " + spec.reg +
                                " has no observability obligations");
  }

  BypassMiter miter;
  Netlist& nl = miter.nl;

  // Copy A: the reference run, fresh (shared) inputs.
  CloneOptions opt_a;
  opt_a.prefix = "a_";
  const SignalMap map_a = clone_netlist(design, nl, opt_a);

  // Fork control: `active` covers the fork cycle itself and everything after.
  const SignalId fork_now = nl.add_input_port(BypassMiter::kForkPort, 1)[0];
  const SignalId forked = nl.add_dff(false);
  const SignalId active = nl.b_or(fork_now, forked);
  nl.connect_dff_input(forked, active);
  nl.set_name(forked, "miter_forked");

  // Copy B reads ~R (from copy A) instead of R once the fork is active.
  const auto& reg_src = design.find_register(spec.reg);
  CloneOptions opt_b;
  opt_b.prefix = "b_";
  opt_b.shared_inputs = &map_a;
  for (const SignalId dff : reg_src.dffs) {
    opt_b.read_overrides[dff] =
        nl.b_mux(active, nl.b_not(map_a[dff]), map_a[dff]);
  }
  const SignalMap map_b = clone_netlist(design, nl, opt_b);

  // Age counter since the fork (saturating).
  const std::size_t max_latency =
      std::max_element(spec.obligations.begin(), spec.obligations.end(),
                       [](const Obligation& x, const Obligation& y) {
                         return x.latency < y.latency;
                       })
          ->latency;
  const std::size_t window_end = kObligationWindow + max_latency + 2;
  std::size_t age_bits = 1;
  while ((1ull << age_bits) <= window_end) ++age_bits;
  const Word age = netlist::w_make_register(nl, "miter_age", age_bits, 0);
  const SignalId age_max = netlist::w_eq_const(nl, age, (1ull << age_bits) - 1);
  const Word age_next = netlist::w_mux(
      nl, nl.b_and(active, nl.b_not(age_max)), netlist::w_inc(nl, age), age);
  netlist::w_connect(nl, age, age_next);
  // Note: age counts cycles *after* the fork cycle (DFF updates lag by one),
  // so "age <= kObligationWindow" spans the fork cycle plus the window.

  // Copy-B view of a src-domain word: reads go through the overrides, so a
  // word that *is* the critical register sees the forced complement.
  auto map_b_view = [&](const Word& word) {
    Word out(word.size());
    for (std::size_t i = 0; i < word.size(); ++i) {
      const auto it = opt_b.read_overrides.find(word[i]);
      out[i] = it != opt_b.read_overrides.end() ? it->second : map_b[word[i]];
    }
    return out;
  };

  // Obligation fired near the fork with a genuinely differing golden value.
  SignalId obligation_now = nl.const0();
  for (const auto& obligation : spec.obligations) {
    if (obligation.condition == netlist::kNullSignal) {
      throw std::invalid_argument("bypass obligation without condition: " +
                                  obligation.description);
    }
    const SignalId cond_a = map_a[obligation.condition];
    SignalId observed_differs = nl.const1();
    if (!obligation.observed_value.empty()) {
      const Word obs_a = netlist::map_word(map_a, obligation.observed_value);
      const Word obs_b = map_b_view(obligation.observed_value);
      observed_differs = nl.b_not(netlist::w_eq(nl, obs_a, obs_b));
    }
    obligation_now = nl.b_or(obligation_now, nl.b_and(cond_a, observed_differs));
  }
  const SignalId in_window =
      netlist::w_ult(nl, age, netlist::w_const(nl, kObligationWindow + 1,
                                               age.size()));
  const SignalId obligation_early =
      nl.b_and(nl.b_and(active, obligation_now), in_window);
  const SignalId obligation_seen = nl.add_dff(false);
  const SignalId obligation_seen_now =
      nl.b_or(obligation_seen, obligation_early);
  nl.connect_dff_input(obligation_seen, obligation_seen_now);
  nl.set_name(obligation_seen, "miter_obligation_seen");

  // Sticky "outputs differed at some active cycle".
  SignalId outputs_equal = nl.const1();
  for (const auto& port : design.output_ports()) {
    const Word out_a = netlist::map_word(map_a, port.bits);
    const Word out_b = map_b_view(port.bits);
    outputs_equal = nl.b_and(outputs_equal, netlist::w_eq(nl, out_a, out_b));
  }
  const SignalId differed = nl.add_dff(false);
  const SignalId differed_now =
      nl.b_or(differed, nl.b_and(active, nl.b_not(outputs_equal)));
  nl.connect_dff_input(differed, differed_now);
  nl.set_name(differed, "miter_differed");

  // A reset pulse inside the observation window legitimately masks the
  // forced difference (the core restarts and the obligation's latency point
  // falls outside the window), so such traces abort the check rather than
  // witness a bypass. A genuine bypass still has a reset-free witness, which
  // the solver is free to pick.
  SignalId aborted_now = nl.const0();
  for (const auto& port : design.input_ports()) {
    if (port.name != "reset" || port.bits.size() != 1) continue;
    const SignalId reset_a = map_a[port.bits[0]];
    const SignalId aborted = nl.add_dff(false);
    aborted_now = nl.b_or(aborted, nl.b_and(active, reset_a));
    nl.connect_dff_input(aborted, aborted_now);
    nl.set_name(aborted, "miter_aborted");
    break;
  }

  // bad: window elapsed, obligation was seen, outputs never diverged, and
  // no mid-window reset invalidated the observation.
  const SignalId window_elapsed = netlist::w_eq_const(nl, age, window_end);
  miter.bad = nl.b_and(
      nl.b_and(window_elapsed, obligation_seen_now),
      nl.b_and(nl.b_not(differed_now), nl.b_not(aborted_now)));
  nl.set_name(miter.bad, "monitor_bypass_" + spec.reg);
  nl.add_output_port("miter_bad", Word{miter.bad});
  return miter;
}

}  // namespace trojanscout::properties
