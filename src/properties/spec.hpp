// "Valid ways" specification: the defender-side contract for each critical
// register (paper Section 2.1 / Table 2).
//
// A ValidWay is a (condition -> next value) pair: when `condition` holds in
// a cycle, the register is expected to take `next_value` at the next clock
// edge. Entries are priority-ordered (earlier entries win), mirroring how
// datasheets describe update rules ("Reset=1 -> 0x00" dominates everything).
// If no entry fires, the register must hold its value.
//
// Obligations extend the spec for the bypass check (Eq. 4): each names a
// condition under which the register's value must influence the design's
// outputs within `latency` cycles (e.g. "Return=1" forces the stack pointer
// to be observed on the program counter).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace trojanscout::properties {

struct ValidWay {
  /// Human-readable condition, e.g. "Call=1 & Stall=0" (Table 2 column 3).
  std::string description;
  /// Pipeline cycle in which the way applies, e.g. "Any", "4" (column 2).
  std::string cycle_label;
  /// Human-readable value, e.g. "Increment by 1" (column 4).
  std::string value_description;
  /// Condition signal in the design netlist (already includes any
  /// cycle-phase gating).
  netlist::SignalId condition = netlist::kNullSignal;
  /// Expected next value of the register when the condition holds.
  netlist::Word next_value;
};

struct Obligation {
  std::string description;
  /// Condition under which the register must be observable.
  netlist::SignalId condition = netlist::kNullSignal;
  /// The golden value the design consumes from the register under this
  /// condition (e.g. stack_array[stack pointer] for a Return). The bypass
  /// miter requires this value to *differ* between the two copies for the
  /// obligation to count, which is what rules out vacuous observations
  /// (identical stack contents) and hence false positives on clean designs.
  netlist::Word observed_value;
  /// Cycles until the register's value must have reached an output.
  std::size_t latency = 1;
};

struct RegisterSpec {
  /// Name of a register declared in the netlist.
  std::string reg;
  std::vector<ValidWay> ways;
  std::vector<Obligation> obligations;
};

struct DesignSpec {
  std::vector<RegisterSpec> registers;

  [[nodiscard]] const RegisterSpec* find(const std::string& reg) const {
    for (const auto& spec : registers) {
      if (spec.reg == reg) return &spec;
    }
    return nullptr;
  }

  [[nodiscard]] const RegisterSpec& at(const std::string& reg) const;
};

}  // namespace trojanscout::properties
