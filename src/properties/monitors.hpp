// Monitor-circuit builders for the paper's three properties.
//
// Each builder appends combinational/sequential logic to the design netlist
// and returns a single *bad signal* that is 1 exactly in a cycle where the
// property is violated. Both back ends (BMC and ATPG) consume bad signals;
// this mirrors the paper's Section 3.2 ("the property is modeled as a
// monitor circuit, which is appended with the target circuit" [26]) — the
// monitor is for validation only and is never part of the shipped silicon.
#pragma once

#include <string>

#include "netlist/netlist.hpp"
#include "properties/spec.hpp"

namespace trojanscout::properties {

/// Flavor of the Eq. (2) no-data-corruption monitor.
enum class CorruptionMonitorKind {
  /// Literal Eq. (2): if no valid way fires, every bit of R must hold.
  /// Detects out-of-spec updates but not value corruption during a valid
  /// update (e.g. MC8051-T700's "modifies the data to 0x00").
  kHoldOnly,
  /// Golden-update check: R's next value must equal the value dictated by
  /// the priority-resolved valid ways (or hold if none fires). This is the
  /// reading under which all of Table 1's Trojans are detectable and is the
  /// default used by the detector.
  kExact,
};

/// Builds the Eq. (2) monitor for `spec.reg`; returns the bad signal.
/// bad_t = 1 iff the register's *next* value (its DFF data inputs at cycle
/// t) deviates from the specification at cycle t.
netlist::SignalId build_corruption_monitor(netlist::Netlist& nl,
                                           const RegisterSpec& spec,
                                           CorruptionMonitorKind kind);

/// Polarity hypothesis for the Eq. (3) pseudo-critical relation.
enum class PseudoPolarity { kIdentity, kComplement };

/// Builds the Eq. (3) monitor checking candidate register P against critical
/// register R: bad_t = 1 iff some bit x violates P_{x,t} == R_{x,t-1} (or the
/// complement polarity). If `candidate_leads` is true the time-shifted form
/// P_{x,t-1} vs R_{x,t} is checked instead (pseudo-critical register placed
/// *before* the critical register, Section 4.1).
///
/// Absence of a counterexample within the bound certifies P as
/// pseudo-critical for that bound; P is then itself checked with Eq. (2).
netlist::SignalId build_pseudo_critical_monitor(netlist::Netlist& nl,
                                                const std::string& critical_reg,
                                                const std::string& candidate_reg,
                                                PseudoPolarity polarity,
                                                bool candidate_leads);

/// Per-bit variant of the Eq. (3) monitor (used when a vendor mixes
/// polarities across bits): checks a single bit index.
netlist::SignalId build_pseudo_critical_bit_monitor(
    netlist::Netlist& nl, const std::string& critical_reg,
    const std::string& candidate_reg, std::size_t bit,
    PseudoPolarity polarity, bool candidate_leads);

}  // namespace trojanscout::properties
