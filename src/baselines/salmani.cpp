#include "baselines/salmani.hpp"

#include <algorithm>

#include "netlist/scoap.hpp"

namespace trojanscout::baselines {

using netlist::Netlist;
using netlist::Op;
using netlist::SignalId;

SalmaniReport run_salmani(const Netlist& nl, const SalmaniOptions& options) {
  SalmaniReport report;
  const netlist::Scoap scoap = netlist::compute_scoap(nl);
  for (SignalId id = 0; id < nl.size(); ++id) {
    const Op op = nl.gate(id).op;
    if (netlist::op_arity(op) == 0 || op == Op::kDff) continue;
    report.signals_analyzed++;
    // A Trojan trigger polarity is the hard-to-reach one: flag when either
    // polarity needs a long forced chain.
    const std::uint32_t hardest = std::max(scoap.cc0[id], scoap.cc1[id]);
    if (hardest > options.threshold) {
      report.suspects.push_back(SalmaniSuspect{id, scoap.cc0[id],
                                               scoap.cc1[id]});
    }
  }
  return report;
}

}  // namespace trojanscout::baselines
