#include "baselines/workloads.hpp"

#include <stdexcept>

#include "designs/aes_ref.hpp"
#include "util/rng.hpp"

namespace trojanscout::baselines {

using netlist::Netlist;

namespace {

/// Helper that fills named ports within a frame.
class FrameBuilder {
 public:
  explicit FrameBuilder(const Netlist& nl)
      : nl_(nl), frame_(nl.num_inputs()) {}

  void set(const std::string& port, std::uint64_t value) {
    const auto& p = nl_.input_port(port);
    for (std::size_t i = 0; i < p.bits.size(); ++i) {
      frame_.set(nl_.input_index(p.bits[i]), i < 64 && ((value >> i) & 1u));
    }
  }

  void set_block(const std::string& port,
                 const designs::AesBlock& block) {
    const auto& p = nl_.input_port(port);
    for (std::size_t b = 0; b < 16; ++b) {
      for (std::size_t i = 0; i < 8; ++i) {
        frame_.set(nl_.input_index(p.bits[8 * (15 - b) + i]),
                   ((block[b] >> i) & 1u) != 0);
      }
    }
  }

  [[nodiscard]] const util::BitVec& frame() const { return frame_; }

 private:
  const Netlist& nl_;
  util::BitVec frame_;
};

std::vector<util::BitVec> mc8051_workload(const Netlist& nl,
                                          std::size_t cycles,
                                          util::Xoshiro256& rng) {
  // Opcode mix: data movement dominates, as in real firmware (and as the
  // Trust-Hub T400 authors count on: the trigger sequence is made of the
  // four most common instructions).
  static const std::uint8_t kMix[] = {0x74, 0x74, 0x74, 0xE3, 0xE3, 0xE0,
                                      0xE0, 0xF3, 0xF3, 0x24, 0x12, 0x22,
                                      0x75, 0xA8, 0x79, 0x00};
  std::vector<util::BitVec> frames;
  frames.reserve(cycles);
  std::uint8_t opcode = 0;
  for (std::size_t t = 0; t < cycles; ++t) {
    FrameBuilder fb(nl);
    if (t % 2 == 0) {  // fetch cycle: present a fresh opcode
      opcode = kMix[rng.next_below(sizeof(kMix))];
    }
    fb.set("code_op", opcode);
    fb.set("code_operand", rng.next_below(256));
    fb.set("uart_rx", rng.next_below(256));
    fb.set("xram_in", rng.next_below(256));
    fb.set("int_req", rng.next_below(16) == 0 ? 1 : 0);
    fb.set("reset", 0);
    frames.push_back(fb.frame());
  }
  return frames;
}

std::vector<util::BitVec> risc_workload(const Netlist& nl, std::size_t cycles,
                                        util::Xoshiro256& rng) {
  std::vector<util::BitVec> frames;
  frames.reserve(cycles);
  std::uint16_t instr = 0;
  for (std::size_t t = 0; t < cycles; ++t) {
    if (t % 4 == 0) {
      // New instruction each machine cycle (4 clocks).
      switch (rng.next_below(8)) {
        case 0: instr = static_cast<std::uint16_t>(0x3000 | rng.next_below(0x100)); break;  // MOVLW
        case 1: instr = static_cast<std::uint16_t>(0x1E00 | rng.next_below(0x100)); break;  // ADDLW
        case 2: instr = static_cast<std::uint16_t>(0x2000 | rng.next_below(0x800)); break;  // CALL
        case 3: instr = static_cast<std::uint16_t>(0x2800 | rng.next_below(0x800)); break;  // GOTO
        case 4: instr = 0x008; break;                                                        // RETURN
        case 5: instr = static_cast<std::uint16_t>(0x0100 | rng.next_below(0x10)); break;   // MOVWF
        case 6: instr = static_cast<std::uint16_t>(0x0800 | rng.next_below(0x10)); break;   // MOVF
        default: instr = rng.next_below(4) == 0 ? 0x040 : 0x000; break;  // EERD / NOP
      }
    }
    FrameBuilder fb(nl);
    fb.set("prog_data", instr);
    fb.set("ext_interrupt", rng.next_below(64) == 0 ? 1 : 0);
    fb.set("eeprom_in", rng.next_below(256));
    fb.set("write_complete", rng.next_below(32) == 0 ? 1 : 0);
    fb.set("reset", 0);
    frames.push_back(fb.frame());
  }
  return frames;
}

std::vector<util::BitVec> aes_workload(const Netlist& nl, std::size_t cycles,
                                       util::Xoshiro256& rng) {
  using designs::AesBlock;
  // A regression-style plaintext schedule: random blocks interleaved with
  // bursts of standard known-answer vectors played back to back.
  const AesBlock kStandardVectors[] = {
      designs::aes_block_from_hex("3243f6a8885a308d313198a2e0370734"),
      designs::aes_block_from_hex("00112233445566778899aabbccddeeff"),
      designs::aes_block_from_hex("00000000000000000000000000000001"),
      designs::aes_block_from_hex("00000000000000000000000000000001"),
      designs::aes_block_from_hex("6bc1bee22e409f96e93d7e117393172a"),
  };
  std::vector<util::BitVec> frames;
  frames.reserve(cycles);

  std::size_t t = 0;
  auto push_idle = [&](std::size_t n) {
    for (std::size_t i = 0; i < n && t < cycles; ++i, ++t) {
      FrameBuilder fb(nl);
      fb.set("reset", 0);
      frames.push_back(fb.frame());
    }
  };
  auto push_encrypt = [&](const AesBlock& pt) {
    if (t >= cycles) return;
    FrameBuilder fb(nl);
    fb.set("reset", 0);
    fb.set("start", 1);
    fb.set_block("plaintext", pt);
    frames.push_back(fb.frame());
    ++t;
    push_idle(17);  // busy (10 rounds) + scan headroom
  };

  auto push_key_load = [&] {
    if (t >= cycles) return;
    FrameBuilder fb(nl);
    fb.set("reset", 0);
    fb.set("load_key", 1);
    AesBlock key{};
    for (auto& b : key) b = static_cast<std::uint8_t>(rng.next_below(256));
    fb.set_block("key_in", key);
    frames.push_back(fb.frame());
    ++t;
  };

  push_key_load();
  while (t < cycles) {
    if (rng.next_below(8) == 0) push_key_load();  // key rotation
    if (rng.next_below(4) == 0) {
      // Known-answer burst, in suite order.
      for (const auto& v : kStandardVectors) push_encrypt(v);
    } else {
      AesBlock pt{};
      for (auto& b : pt) b = static_cast<std::uint8_t>(rng.next_below(256));
      push_encrypt(pt);
    }
  }
  return frames;
}

std::vector<util::BitVec> router_workload(const Netlist& nl,
                                          std::size_t cycles,
                                          util::Xoshiro256& rng) {
  // Packet traffic: header flit, then 1-6 body flits, occasional idle gaps.
  std::vector<util::BitVec> frames;
  frames.reserve(cycles);
  std::size_t body_left = 0;
  for (std::size_t t = 0; t < cycles; ++t) {
    FrameBuilder fb(nl);
    fb.set("reset", 0);
    if (rng.next_below(8) == 0) {
      frames.push_back(fb.frame());  // idle cycle
      continue;
    }
    fb.set("flit_valid", 1);
    if (body_left == 0) {
      const std::uint64_t dest = rng.next_below(4);
      fb.set("flit_in", (dest << 14) | (1u << 13) | rng.next_below(0x2000));
      body_left = 1 + rng.next_below(6);
    } else {
      fb.set("flit_in", rng.next_below(0x2000));
      --body_left;
    }
    frames.push_back(fb.frame());
  }
  return frames;
}

}  // namespace

std::vector<util::BitVec> generate_workload(const Netlist& nl,
                                            const std::string& family,
                                            std::size_t cycles,
                                            std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  if (family == "mc8051") return mc8051_workload(nl, cycles, rng);
  if (family == "risc") return risc_workload(nl, cycles, rng);
  if (family == "aes") return aes_workload(nl, cycles, rng);
  if (family == "router") return router_workload(nl, cycles, rng);
  throw std::invalid_argument("generate_workload: unknown family " + family);
}

}  // namespace trojanscout::baselines
