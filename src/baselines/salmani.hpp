// Salmani/Tehranipoor-style testability analysis (the paper's related work
// [7]): signals that are extremely hard to control are candidate Trojan
// trigger nets — dormant logic tends to sit behind rare conditions.
//
// Implementation: SCOAP controllability (netlist/scoap.hpp); a signal is
// flagged when max(CC0, CC1) exceeds a threshold — some polarity is
// reachable only through a long forced chain (the activation polarity of a
// stealthy trigger).
//
// Like FANCI and VeriTrust, this analysis is blinded by DeTrust hardening:
// every hardened Trojan wire is controllable through short registered
// stages, while the naive wide comparators light up immediately. Included
// for completeness of the paper's related-work comparison.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"

namespace trojanscout::baselines {

struct SalmaniOptions {
  /// Flag signals with max(CC0, CC1) above this (one polarity reachable
  /// only through a long forced chain).
  std::uint32_t threshold = 64;
};

struct SalmaniSuspect {
  netlist::SignalId signal = netlist::kNullSignal;
  std::uint32_t cc0 = 0;
  std::uint32_t cc1 = 0;
};

struct SalmaniReport {
  std::vector<SalmaniSuspect> suspects;
  std::size_t signals_analyzed = 0;
};

SalmaniReport run_salmani(const netlist::Netlist& nl,
                          const SalmaniOptions& options = {});

}  // namespace trojanscout::baselines
