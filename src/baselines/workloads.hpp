// Functional workload generators for the simulation-driven baseline
// (VeriTrust) and for coverage-style experiments.
//
// Each generator produces per-cycle input frames that look like what a
// verification suite would drive:
//  * mc8051 — instruction mixes biased toward the common data-movement
//    opcodes (MOV/MOVX/ADD/CALL/RET), random operands, random UART/XRAM
//    bytes, occasional interrupts;
//  * risc — instruction streams over the implemented ISA with realistic
//    opcode frequencies, occasional interrupts and EEPROM traffic;
//  * aes — key loads and encryptions of random blocks interleaved with the
//    standard FIPS-197 test vectors run back-to-back, the way a regression
//    suite replays known-answer tests. (The Trust-Hub AES triggers are
//    deliberately chosen to look like such vectors — this is what makes the
//    DeTrust-hardened Trojans blend into functional stimuli.)
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"
#include "util/bitvec.hpp"

namespace trojanscout::baselines {

/// One input frame per cycle, in Netlist::inputs() order.
std::vector<util::BitVec> generate_workload(const netlist::Netlist& nl,
                                            const std::string& family,
                                            std::size_t cycles,
                                            std::uint64_t seed);

}  // namespace trojanscout::baselines
