// VeriTrust baseline (Zhang, Yuan, Wei, Sun, Xu, DAC 2013): flags gates
// with inputs that are never *sensitized* under functional verification
// stimuli — inputs whose observed activity is consistent with the gate
// ignoring them, the signature of logic "not driven by functional inputs".
//
// Implementation: the design is simulated under a family-specific
// functional workload (workloads.hpp), recording per-wire activity. A gate
// is reported as suspicious when one of its inputs is *dormant*
// (observationally constant across the workload) and that input's driver is
// itself fed by dormant logic — a chain of logic not exercised by any
// functional input, which is VeriTrust's discriminator. A single dormant
// boundary wire is tolerated (rare-but-functional events produce those),
// matching the granularity at which the published analysis operates.
//
// DeTrust defeats this analysis by making every Trojan gate's inputs
// functional data whose near-trigger combinations occur under verification
// stimuli (sequence prefixes, known-answer vectors); our DeTrust-hardened
// benchmarks reproduce the published "No" row, while the naive Trojan
// variants (secret one-shot comparators) are flagged — see the
// baseline-validation bench.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"
#include "util/bitvec.hpp"

namespace trojanscout::baselines {

struct VeriTrustOptions {
  /// Minimum number of observed evaluation cycles before a verdict.
  std::size_t min_observations = 64;
};

struct VeriTrustSuspect {
  netlist::SignalId signal = netlist::kNullSignal;
  /// Which fanin index was never sensitized.
  int dormant_input = 0;
};

struct VeriTrustReport {
  std::vector<VeriTrustSuspect> suspects;
  std::size_t gates_analyzed = 0;

  [[nodiscard]] bool flags(netlist::SignalId signal) const {
    for (const auto& s : suspects) {
      if (s.signal == signal) return true;
    }
    return false;
  }
};

/// Simulates `frames` on the design and reports unsensitized gates.
VeriTrustReport run_veritrust(const netlist::Netlist& nl,
                              const std::vector<util::BitVec>& frames,
                              const VeriTrustOptions& options = {});

}  // namespace trojanscout::baselines
