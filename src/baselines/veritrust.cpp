#include "baselines/veritrust.hpp"

#include "sim/simulator.hpp"

namespace trojanscout::baselines {

using netlist::Gate;
using netlist::Netlist;
using netlist::Op;
using netlist::SignalId;

// Criterion (see header): a gate is suspicious when one of its inputs is
// *dormant* (observationally constant under the functional workload) and
// that input's driver is itself fed by dormant logic. A single dormant
// boundary wire is tolerated — rare functional events produce those — but a
// chain of dormant logic is the signature of gates "not driven by
// functional inputs" (VeriTrust's discriminator). DeTrust's hardening
// guarantees every Trojan gate's fanins are functional data that toggles
// under verification stimuli, which is exactly what defeats this check.
VeriTrustReport run_veritrust(const Netlist& nl,
                              const std::vector<util::BitVec>& frames,
                              const VeriTrustOptions& options) {
  VeriTrustReport report;
  sim::Simulator simulator(nl);

  std::vector<std::uint8_t> seen0(nl.size(), 0);
  std::vector<std::uint8_t> seen1(nl.size(), 0);
  for (const auto& frame : frames) {
    simulator.set_inputs(frame);
    simulator.eval();
    for (SignalId id = 0; id < nl.size(); ++id) {
      if (simulator.value(id)) {
        seen1[id] = 1;
      } else {
        seen0[id] = 1;
      }
    }
    simulator.step();
  }
  if (frames.size() < options.min_observations) return report;

  auto constant = [&](SignalId id) {
    return !(seen0[id] != 0 && seen1[id] != 0);
  };
  // VeriTrust analyzes combinational functions with flip-flop outputs and
  // primary inputs as free boundary variables: a quiet register or a quiet
  // input is functional by definition (mode bits, configuration registers).
  // Dormancy therefore only "chains" through *internal combinational*
  // wires.
  auto is_boundary = [&](SignalId id) {
    const Op op = nl.gate(id).op;
    return op == Op::kDff || op == Op::kInput || op == Op::kConst0 ||
           op == Op::kConst1;
  };
  auto has_constant_fanin = [&](SignalId id) {
    const Gate& g = nl.gate(id);
    const int arity = netlist::op_arity(g.op);
    if (arity == 0) return false;
    for (int k = 0; k < arity; ++k) {
      if (is_boundary(g.fanin[k])) continue;
      if (constant(g.fanin[k])) return true;
    }
    return false;
  };

  for (SignalId id = 0; id < nl.size(); ++id) {
    const Gate& g = nl.gate(id);
    const int arity = netlist::op_arity(g.op);
    if (arity < 2 || g.op == Op::kDff) continue;
    report.gates_analyzed++;
    for (int k = 0; k < arity; ++k) {
      const SignalId f = g.fanin[k];
      if (is_boundary(f)) continue;
      if (constant(f) && has_constant_fanin(f)) {
        report.suspects.push_back(VeriTrustSuspect{id, k});
        break;
      }
    }
  }
  return report;
}

}  // namespace trojanscout::baselines
