#include "baselines/fanci.hpp"

#include <algorithm>
#include <bit>
#include <unordered_map>

#include "util/rng.hpp"

namespace trojanscout::baselines {

using netlist::Gate;
using netlist::Netlist;
using netlist::Op;
using netlist::SignalId;

namespace {

/// Truncated fan-in cone: `boundary` are treated as free inputs, `body` is
/// the internal gate list in topological (creation) order.
struct Cone {
  std::vector<SignalId> boundary;
  std::vector<SignalId> body;  // ascending ids => valid evaluation order
};

Cone carve_cone(const Netlist& nl, SignalId root, std::size_t max_inputs) {
  Cone cone;
  std::vector<SignalId> frontier = {root};
  std::vector<bool> seen(nl.size(), false);
  seen[root] = true;
  std::vector<SignalId> body;

  while (!frontier.empty()) {
    const SignalId id = frontier.back();
    frontier.pop_back();
    const Gate& g = nl.gate(id);
    const bool is_source = g.op == Op::kDff || g.op == Op::kInput ||
                           netlist::op_arity(g.op) == 0;
    // Stop expanding when the boundary budget is exhausted.
    if (is_source ||
        cone.boundary.size() + frontier.size() >= max_inputs) {
      if (id != root) {
        cone.boundary.push_back(id);
      } else if (is_source) {
        cone.boundary.push_back(id);
      } else {
        // Root must be evaluated; expand it regardless.
        body.push_back(id);
        for (int k = 0; k < netlist::op_arity(g.op); ++k) {
          const SignalId f = g.fanin[k];
          if (!seen[f]) {
            seen[f] = true;
            cone.boundary.push_back(f);
          }
        }
      }
      continue;
    }
    body.push_back(id);
    for (int k = 0; k < netlist::op_arity(g.op); ++k) {
      const SignalId f = g.fanin[k];
      if (!seen[f]) {
        seen[f] = true;
        frontier.push_back(f);
      }
    }
  }
  std::sort(body.begin(), body.end());
  cone.body = std::move(body);
  return cone;
}

/// 64-way bit-parallel evaluation of the cone body given boundary words.
std::uint64_t eval_cone(const Netlist& nl, const Cone& cone,
                        std::unordered_map<SignalId, std::uint64_t>& values,
                        SignalId root) {
  for (const SignalId id : cone.body) {
    const Gate& g = nl.gate(id);
    auto in = [&](int k) { return values.at(g.fanin[k]); };
    std::uint64_t v = 0;
    switch (g.op) {
      case Op::kConst0: v = 0; break;
      case Op::kConst1: v = ~0ull; break;
      case Op::kBuf: v = in(0); break;
      case Op::kNot: v = ~in(0); break;
      case Op::kAnd: v = in(0) & in(1); break;
      case Op::kOr: v = in(0) | in(1); break;
      case Op::kXor: v = in(0) ^ in(1); break;
      case Op::kXnor: v = ~(in(0) ^ in(1)); break;
      case Op::kNand: v = ~(in(0) & in(1)); break;
      case Op::kNor: v = ~(in(0) | in(1)); break;
      case Op::kMux: v = (in(0) & in(1)) | (~in(0) & in(2)); break;
      case Op::kInput:
      case Op::kDff:
        v = values.at(id);
        break;
    }
    values[id] = v;
  }
  return values.at(root);
}

}  // namespace

FanciReport run_fanci(const Netlist& nl, const FanciOptions& options) {
  FanciReport report;
  util::Xoshiro256 rng(options.seed);
  const std::size_t passes = (options.samples + 63) / 64;

  for (SignalId root = 0; root < nl.size(); ++root) {
    const Gate& g = nl.gate(root);
    if (netlist::op_arity(g.op) == 0 || g.op == Op::kDff) continue;
    report.wires_analyzed++;

    const Cone cone = carve_cone(nl, root, options.max_cone_inputs);
    if (cone.boundary.empty()) continue;  // constant wire

    std::vector<std::uint64_t> flip_counts(cone.boundary.size(), 0);
    std::unordered_map<SignalId, std::uint64_t> values;
    values.reserve(cone.body.size() + cone.boundary.size());

    for (std::size_t pass = 0; pass < passes; ++pass) {
      for (const SignalId b : cone.boundary) values[b] = rng.next();
      // Constants must keep their semantics even when they sit on the
      // boundary (possible for the root's direct constant fanins).
      values[nl.const0()] = 0;
      values[nl.const1()] = ~0ull;
      const std::uint64_t base = eval_cone(nl, cone, values, root);
      for (std::size_t i = 0; i < cone.boundary.size(); ++i) {
        const SignalId b = cone.boundary[i];
        if (b == nl.const0() || b == nl.const1()) continue;
        const std::uint64_t saved = values[b];
        values[b] = ~saved;
        const std::uint64_t flipped = eval_cone(nl, cone, values, root);
        values[b] = saved;
        flip_counts[i] += static_cast<std::uint64_t>(
            std::popcount(base ^ flipped));
      }
    }

    std::vector<double> cvs;
    cvs.reserve(cone.boundary.size());
    const double denom = static_cast<double>(passes * 64);
    for (std::size_t i = 0; i < cone.boundary.size(); ++i) {
      if (cone.boundary[i] == nl.const0() || cone.boundary[i] == nl.const1()) {
        continue;
      }
      cvs.push_back(static_cast<double>(flip_counts[i]) / denom);
    }
    if (cvs.empty()) continue;
    std::sort(cvs.begin(), cvs.end());
    double mean = 0;
    for (const double cv : cvs) mean += cv;
    mean /= static_cast<double>(cvs.size());
    const double median = cvs[cvs.size() / 2];

    // Flag on the mean only: with sampled truth tables the median of a
    // healthy-but-rare wire is often exactly zero (sampling noise), which
    // would flood the report. A wide stealthy comparator drags the *mean*
    // to zero as well, which is the published signature.
    if (mean < options.threshold) {
      report.suspects.push_back(FanciSuspect{root, mean, median});
    }
  }
  return report;
}

}  // namespace trojanscout::baselines
