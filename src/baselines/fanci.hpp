// FANCI baseline (Waksman, Suozzo, Sethumadhavan, CCS 2013): flags wires
// with "stealthy" truth tables — inputs whose control values (probability
// that flipping the input flips the wire) are vanishingly small.
//
// Implementation: for every combinational wire, a bounded fan-in cone is
// carved out (expansion stops once the boundary would exceed
// max_cone_inputs, exactly the truncation DeTrust exploits: registered
// state counts as free boundary inputs). Control values are estimated by
// 64-way bit-parallel sampling of the boundary; the wire is flagged when
// the mean or median control value falls below the threshold.
//
// On the paper's workloads this reproduces Table 1's FANCI column: the
// DeTrust-hardened Trojans keep every Trojan wire's control values at or
// above ~2^-11 (no comparison wider than a byte, matches registered per
// stage), while a naive Trojan with a wide combinational trigger comparator
// is flagged immediately (see the baseline-validation bench).
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"

namespace trojanscout::baselines {

struct FanciOptions {
  std::size_t max_cone_inputs = 16;
  std::size_t samples = 8192;           // rounded up to a multiple of 64
  double threshold = 1.0 / (1 << 14);   // flag below ~6.1e-5
  std::uint64_t seed = 0x5eed;
};

struct FanciSuspect {
  netlist::SignalId signal = netlist::kNullSignal;
  double mean_cv = 0.0;
  double median_cv = 0.0;
};

struct FanciReport {
  std::vector<FanciSuspect> suspects;
  std::size_t wires_analyzed = 0;

  [[nodiscard]] bool flags(netlist::SignalId signal) const {
    for (const auto& s : suspects) {
      if (s.signal == signal) return true;
    }
    return false;
  }
};

FanciReport run_fanci(const netlist::Netlist& nl,
                      const FanciOptions& options = {});

}  // namespace trojanscout::baselines
