#include "portfolio/portfolio.hpp"

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <utility>

#include "pdr/pdr.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/span.hpp"
#include "util/stopwatch.hpp"

namespace trojanscout::portfolio {

using core::CheckResult;
using core::EngineKind;
using core::EngineOptions;

CheckResult run_single(const netlist::Netlist& nl, netlist::SignalId bad,
                       const EngineOptions& options, EngineKind backend) {
  CheckResult result;
  result.engine_used = backend;
  switch (backend) {
    case EngineKind::kBmc: {
      telemetry::Span span("engine:bmc");
      bmc::BmcOptions bo;
      bo.max_frames = options.max_frames;
      bo.time_limit_seconds = options.time_limit_seconds;
      bo.solver = options.solver;
      bo.cancel = options.cancel;
      bo.proof = options.proof;
      bo.progress = options.progress;
      bmc::BmcResult r = bmc::check_bad_signal(nl, bad, bo);
      result.violated = r.violated();
      result.bound_reached = r.status == bmc::BmcStatus::kBoundReached;
      result.witness = std::move(r.witness);
      result.frames_completed = r.frames_completed;
      result.seconds = r.seconds;
      result.memory_bytes = r.memory_bytes;
      result.cancelled = r.cancelled;
      result.status = r.cancelled ? "cancelled" : r.status_name();
      result.counters.sat = r.sat_stats;
      result.counters.cnf_vars = r.vars;
      result.counters.frame_clauses = std::move(r.frame_clauses);
      result.counters.flight = std::move(r.flight);
      break;
    }
    case EngineKind::kAtpg: {
      telemetry::Span span("engine:atpg");
      atpg::AtpgOptions ao;
      ao.max_frames = options.max_frames;
      ao.time_limit_seconds = options.time_limit_seconds;
      ao.backtrack_limit_per_frame = options.atpg_backtrack_limit;
      ao.use_scoap_guidance = options.atpg_use_scoap;
      ao.stimulus_sequences = options.atpg_stimulus;
      ao.random_sequences = options.atpg_random_sequences;
      ao.cancel = options.cancel;
      ao.progress = options.progress;
      atpg::AtpgResult r = atpg::check_bad_signal(nl, bad, ao);
      result.violated = r.violated();
      result.bound_reached = r.status == atpg::AtpgStatus::kBoundReached;
      result.witness = std::move(r.witness);
      result.frames_completed = r.frames_completed;
      result.seconds = r.seconds;
      result.memory_bytes = r.memory_bytes;
      result.cancelled = r.cancelled;
      result.status = r.cancelled ? "cancelled" : r.status_name();
      result.counters.atpg_decisions = r.decisions;
      result.counters.atpg_backtracks = r.backtracks;
      result.counters.atpg_implications = r.implications;
      result.counters.atpg_frames_proven_clean = r.frames_proven_clean;
      result.counters.atpg_frames_aborted = r.frames_aborted;
      result.counters.flight = std::move(r.flight);
      break;
    }
    case EngineKind::kPdr: {
      telemetry::Span span("engine:pdr");
      pdr::PdrOptions po;
      po.max_frames = options.max_frames;
      po.time_limit_seconds = options.time_limit_seconds;
      po.solver = options.solver;
      po.generalize = options.pdr_generalize;
      po.cancel = options.cancel;
      po.progress = options.progress;
      pdr::PdrResult r = pdr::check_bad_signal(nl, bad, po);
      result.violated = r.violated();
      result.proven_unbounded = r.status == pdr::PdrStatus::kProven;
      result.bound_reached =
          result.proven_unbounded || r.status == pdr::PdrStatus::kBoundReached;
      result.witness = std::move(r.witness);
      result.invariant = std::move(r.invariant);
      result.frames_completed = r.frames_completed;
      result.seconds = r.seconds;
      result.memory_bytes = r.memory_bytes;
      result.cancelled = r.cancelled;
      result.status = r.cancelled ? "cancelled" : r.status_name();
      result.counters.sat = r.sat_stats;
      result.counters.cnf_vars = r.vars;
      result.counters.pdr_frames = r.counters.frames;
      result.counters.pdr_pushed_clauses = r.counters.pushed_clauses;
      result.counters.pdr_ctis = r.counters.ctis;
      result.counters.pdr_obligations = r.counters.obligations;
      result.counters.flight = std::move(r.flight);
      break;
    }
    case EngineKind::kPortfolio:
      // The caller dispatches kPortfolio to race(); reaching here is a bug,
      // but fail soft with a resource-out result rather than aborting.
      result.status = "resource-out";
      break;
  }
  return result;
}

namespace {

/// Verdict strength for the deterministic selection: a violation beats an
/// unbounded proof beats a full-bound clean beats everything else, and a
/// cancelled leg never outranks real work of the same strength.
int verdict_score(const CheckResult& r) {
  int strength = 0;
  if (r.violated) {
    strength = 3;
  } else if (r.proven_unbounded) {
    strength = 2;
  } else if (r.bound_reached) {
    strength = 1;
  }
  return strength * 2 + (r.cancelled ? 0 : 1);
}

}  // namespace

CheckResult race(const netlist::Netlist& nl, netlist::SignalId bad,
                 const EngineOptions& options) {
  telemetry::Span span("engine:portfolio");
  util::Stopwatch race_timer;
  // Materialize the netlist's lazy caches before sharing it across the
  // legs (copies do not carry the fanout cache; building it up front keeps
  // the const netlist genuinely read-only during the race).
  nl.fanouts();
  nl.topo_order();

  constexpr std::array<EngineKind, 3> kLegs = {
      EngineKind::kBmc, EngineKind::kAtpg, EngineKind::kPdr};

  struct Leg {
    std::atomic<bool> cancel{false};
    CheckResult result;
  };
  std::array<Leg, 3> legs;
  std::mutex mutex;
  std::condition_variable cv;
  std::size_t finished = 0;

  // Knowledge-based cancellation (called with the race lock held): stop an
  // opponent only when its best possible remaining outcome cannot change
  // the deterministic selection. See portfolio.hpp for the argument.
  const auto apply_knowledge = [&](std::size_t i) {
    const CheckResult& r = legs[i].result;
    if (r.cancelled) return;
    if (r.proven_unbounded) {
      for (std::size_t j = 0; j < legs.size(); ++j) {
        if (j != i) legs[j].cancel.store(true, std::memory_order_release);
      }
      return;
    }
    if (r.violated) {
      for (std::size_t j = i + 1; j < legs.size(); ++j) {
        legs[j].cancel.store(true, std::memory_order_release);
      }
      return;
    }
    if (r.bound_reached) {
      for (std::size_t j = i + 1; j < legs.size(); ++j) {
        if (kLegs[j] != EngineKind::kPdr) {
          legs[j].cancel.store(true, std::memory_order_release);
        }
      }
    }
  };

  const auto worker = [&](std::size_t i) {
    EngineOptions leg_options = options;
    leg_options.kind = kLegs[i];
    leg_options.cancel = &legs[i].cancel;
    // Clause proofs are only meaningful on the BMC leg, and only when it
    // wins (a cancelled leg leaves a truncated stream the caller ignores).
    leg_options.proof =
        kLegs[i] == EngineKind::kBmc ? options.proof : nullptr;
    CheckResult r = run_single(nl, bad, leg_options, kLegs[i]);
    {
      std::lock_guard<std::mutex> lock(mutex);
      legs[i].result = std::move(r);
      ++finished;
      apply_knowledge(i);
    }
    cv.notify_all();
  };

  // A caller cancel raised before the race starts must not let a fast leg
  // sneak a verdict in during the coordinator's first poll interval.
  if (options.cancel != nullptr &&
      options.cancel->load(std::memory_order_acquire)) {
    for (Leg& leg : legs) leg.cancel.store(true, std::memory_order_release);
  }

  std::array<std::thread, 3> threads = {
      std::thread(worker, 0), std::thread(worker, 1), std::thread(worker, 2)};
  {
    std::unique_lock<std::mutex> lock(mutex);
    while (finished < legs.size()) {
      cv.wait_for(lock, std::chrono::milliseconds(5));
      // Propagate the caller's fail-fast cancellation into every leg.
      if (options.cancel != nullptr &&
          options.cancel->load(std::memory_order_acquire)) {
        for (Leg& leg : legs) {
          leg.cancel.store(true, std::memory_order_release);
        }
      }
    }
  }
  for (std::thread& t : threads) t.join();

  std::size_t winner = 0;
  int best = -1;
  for (std::size_t i = 0; i < legs.size(); ++i) {
    const int score = verdict_score(legs[i].result);
    if (score > best) {  // strict: ties keep the lower (higher-priority) leg
      best = score;
      winner = i;
    }
  }

  const double race_seconds = race_timer.elapsed_seconds();
  auto& registry = telemetry::Registry::global();
  if (registry.enabled()) {
    registry.add(registry.counter(
        std::string("portfolio.win.") + core::engine_flag_name(kLegs[winner])));
    for (std::size_t i = 0; i < legs.size(); ++i) {
      if (legs[i].result.cancelled) {
        registry.add(registry.counter(std::string("portfolio.cancelled.") +
                                      core::engine_flag_name(kLegs[i])));
      }
    }
    registry.record_seconds(registry.histogram("portfolio.race_seconds"),
                            race_seconds);
  }

  CheckResult result = std::move(legs[winner].result);
  result.engine_used = kLegs[winner];
  result.portfolio.reserve(legs.size());
  for (std::size_t i = 0; i < legs.size(); ++i) {
    core::PortfolioOutcome outcome;
    outcome.engine = kLegs[i];
    outcome.won = i == winner;
    if (i == winner) {
      outcome.status = result.status;
      outcome.violated = result.violated;
      outcome.proven_unbounded = result.proven_unbounded;
      outcome.cancelled = result.cancelled;
      outcome.seconds = result.seconds;
    } else {
      outcome.status = legs[i].result.status;
      outcome.violated = legs[i].result.violated;
      outcome.proven_unbounded = legs[i].result.proven_unbounded;
      outcome.cancelled = legs[i].result.cancelled;
      outcome.seconds = legs[i].result.seconds;
    }
    result.portfolio.push_back(std::move(outcome));
  }
  return result;
}

}  // namespace trojanscout::portfolio
