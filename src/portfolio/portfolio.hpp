// Engine portfolio: run one back end, or race BMC, ATPG, and PDR
// concurrently on a single obligation.
//
// The race is first-conclusive-verdict-wins with *deterministic* selection:
// results are ranked by verdict strength (violated > proven-unbounded >
// bound-reached > anything else) and ties broken by a fixed engine
// priority (BMC, then ATPG, then PDR) — never by arrival order. An engine
// that finishes only cancels opponents whose best possible outcome could
// no longer change that selection:
//
//   proven-unbounded  cancels everyone — a sound engine cannot find a
//                     violation in a design another sound engine proved
//                     clean at all depths;
//   violated          cancels lower-priority engines only — a
//                     higher-priority engine may still produce the witness
//                     the selection would prefer, and on a violated design
//                     it terminates at its first witness anyway;
//   full-bound clean  cancels lower-priority *bounded* engines (they share
//                     the same bound, so at best they tie and lose the
//                     priority break) but leaves PDR running — it can still
//                     upgrade the verdict to an unbounded proof.
//
// The winner's CheckResult is reported verbatim (its cancel flag never
// fired, so it is byte-identical to a standalone run of that engine),
// which keeps report signatures stable at any --jobs and cache
// temperature. Loser fates ride the timing-carve-out PortfolioOutcome
// vector into telemetry only.
#pragma once

#include "core/engine.hpp"
#include "netlist/netlist.hpp"

namespace trojanscout::portfolio {

/// Runs exactly one back end (`backend` must not be kPortfolio) and maps
/// its result onto the engine-agnostic CheckResult. `options.kind` is
/// ignored in favor of `backend`.
core::CheckResult run_single(const netlist::Netlist& nl,
                             netlist::SignalId bad,
                             const core::EngineOptions& options,
                             core::EngineKind backend);

/// Races BMC, ATPG, and PDR on one obligation (see file comment for the
/// selection and cancellation contract).
core::CheckResult race(const netlist::Netlist& nl, netlist::SignalId bad,
                       const core::EngineOptions& options);

}  // namespace trojanscout::portfolio
