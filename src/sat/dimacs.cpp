#include "sat/dimacs.hpp"

#include <cstdlib>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace trojanscout::sat {

CnfFormula parse_dimacs(std::istream& in) {
  CnfFormula formula;
  std::string token;
  bool header_seen = false;
  Clause current;
  while (in >> token) {
    if (token == "c") {
      std::string line;
      std::getline(in, line);
      continue;
    }
    if (token == "p") {
      std::string fmt;
      long long nv = 0;
      long long nc = 0;
      if (!(in >> fmt >> nv >> nc) || fmt != "cnf") {
        throw std::runtime_error("parse_dimacs: malformed problem line");
      }
      formula.num_vars = static_cast<int>(nv);
      header_seen = true;
      continue;
    }
    char* end = nullptr;
    const long long value = std::strtoll(token.c_str(), &end, 10);
    if (end == token.c_str() || *end != '\0') {
      throw std::runtime_error("parse_dimacs: unexpected token '" + token +
                               "'");
    }
    if (value == 0) {
      formula.clauses.push_back(current);
      current.clear();
    } else {
      const Var v = static_cast<Var>(std::llabs(value) - 1);
      if (v + 1 > formula.num_vars) formula.num_vars = v + 1;
      current.emplace_back(v, value < 0);
    }
  }
  if (!current.empty()) {
    throw std::runtime_error("parse_dimacs: clause missing terminating 0");
  }
  if (!header_seen && formula.clauses.empty()) {
    throw std::runtime_error("parse_dimacs: empty input");
  }
  return formula;
}

CnfFormula parse_dimacs_string(const std::string& text) {
  std::istringstream in(text);
  return parse_dimacs(in);
}

void write_dimacs(std::ostream& os, const CnfFormula& formula) {
  os << "p cnf " << formula.num_vars << ' ' << formula.clauses.size() << '\n';
  for (const auto& clause : formula.clauses) {
    for (const Lit lit : clause) {
      os << lit.to_dimacs() << ' ';
    }
    os << "0\n";
  }
}

}  // namespace trojanscout::sat
