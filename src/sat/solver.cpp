#include "sat/solver.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "telemetry/progress.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/span.hpp"
#include "util/stopwatch.hpp"

namespace trojanscout::sat {

namespace {

/// Publishes the solver's cumulative totals into the live-progress cells.
/// One solver serves one obligation, so absolute stats are exactly the
/// obligation's SAT-side progress.
void publish_progress(telemetry::ObligationProgress* progress,
                      const SolverStats& stats) {
  if (progress == nullptr) return;
  progress->conflicts.store(stats.conflicts, std::memory_order_relaxed);
  progress->propagations.store(stats.propagations, std::memory_order_relaxed);
  progress->learned_clauses.store(stats.learned_clauses,
                                  std::memory_order_relaxed);
}

}  // namespace

Solver::Solver(SolverOptions options) : options_(options) {}

Var Solver::new_var() {
  const Var v = static_cast<Var>(assigns_.size());
  assigns_.push_back(LBool::kUndef);
  polarity_.push_back(0);
  level_.push_back(0);
  reason_.push_back(kNullCRef);
  activity_.push_back(0.0);
  heap_pos_.push_back(-1);
  seen_.push_back(0);
  watches_.emplace_back();
  watches_.emplace_back();
  heap_insert(v);
  return v;
}

bool Solver::add_clause(Clause lits) {
  // The proof log records the clause exactly as given (pre-simplification):
  // that is the formula the caller believes it asked about, and the clause
  // the independent checker will re-derive from the same encoder.
  if (proof_ != nullptr) proof_->on_input(lits);
  if (unsat_) return false;
  assert(decision_level() == 0);

  // Simplify: sort, drop duplicates, detect tautologies, strip level-0
  // falsified literals, and return early on level-0 satisfied literals.
  std::sort(lits.begin(), lits.end());
  Clause out;
  Lit prev = undef_lit();
  for (const Lit p : lits) {
    if (p.var() >= num_vars()) {
      throw std::out_of_range("add_clause: literal references unknown var");
    }
    if (value(p) == LBool::kTrue || p == ~prev) return true;  // satisfied / taut
    if (value(p) != LBool::kFalse && p != prev) {
      out.push_back(p);
      prev = p;
    }
  }

  // A stripped literal was falsified by level-0 propagation, which the
  // checker reproduces, so the simplified clause is RUP with respect to the
  // clauses logged so far: record it as a derivation when it differs.
  if (proof_ != nullptr && out.size() != lits.size() && !out.empty()) {
    proof_->on_learn(out);
  }

  if (out.empty()) {
    unsat_ = true;
    return false;
  }
  if (out.size() == 1) {
    unchecked_enqueue(out[0], kNullCRef);
    if (propagate() != kNullCRef) {
      unsat_ = true;
      return false;
    }
    return true;
  }

  InternalClause clause;
  clause.lits = std::move(out);
  clause.learnt = false;
  attach_clause(std::move(clause));
  return true;
}

Solver::CRef Solver::attach_clause(InternalClause&& clause) {
  const CRef cref = static_cast<CRef>(clauses_.size());
  clauses_.push_back(std::move(clause));
  const auto& lits = clauses_[cref].lits;
  assert(lits.size() >= 2);
  watches_[(~lits[0]).index()].push_back(Watcher{cref, lits[1]});
  watches_[(~lits[1]).index()].push_back(Watcher{cref, lits[0]});
  return cref;
}

void Solver::detach_clause(CRef cref) {
  // Lazy detach: mark deleted; propagate() drops stale watchers as it walks.
  if (proof_ != nullptr) proof_->on_delete(clauses_[cref].lits);
  clauses_[cref].deleted = true;
  stats_.deleted_clauses++;
}

void Solver::unchecked_enqueue(Lit p, CRef from) {
  assert(value(p) == LBool::kUndef);
  assigns_[p.var()] = lbool_from(!p.sign());
  level_[p.var()] = decision_level();
  reason_[p.var()] = from;
  trail_.push_back(p);
}

Solver::CRef Solver::propagate() {
  CRef conflict = kNullCRef;
  while (qhead_ < trail_.size()) {
    const Lit p = trail_[qhead_++];
    stats_.propagations++;
    auto& ws = watches_[p.index()];
    std::size_t i = 0;
    std::size_t j = 0;
    const std::size_t n = ws.size();
    while (i < n) {
      const Watcher w = ws[i++];
      if (clauses_[w.cref].deleted) continue;  // drop stale watcher
      if (value(w.blocker) == LBool::kTrue) {
        ws[j++] = w;
        continue;
      }
      InternalClause& c = clauses_[w.cref];
      auto& lits = c.lits;
      const Lit false_lit = ~p;
      if (lits[0] == false_lit) std::swap(lits[0], lits[1]);
      assert(lits[1] == false_lit);

      const Lit first = lits[0];
      if (first != w.blocker && value(first) == LBool::kTrue) {
        ws[j++] = Watcher{w.cref, first};
        continue;
      }

      bool found_watch = false;
      for (std::size_t k = 2; k < lits.size(); ++k) {
        if (value(lits[k]) != LBool::kFalse) {
          std::swap(lits[1], lits[k]);
          watches_[(~lits[1]).index()].push_back(Watcher{w.cref, first});
          found_watch = true;
          break;
        }
      }
      if (found_watch) continue;

      // Clause is unit or conflicting; keep the watcher.
      ws[j++] = Watcher{w.cref, first};
      if (value(first) == LBool::kFalse) {
        conflict = w.cref;
        qhead_ = trail_.size();
        while (i < n) {
          const Watcher rest = ws[i++];
          if (!clauses_[rest.cref].deleted) ws[j++] = rest;
        }
        break;
      }
      unchecked_enqueue(first, w.cref);
    }
    ws.resize(j);
    if (conflict != kNullCRef) break;
  }
  return conflict;
}

void Solver::cancel_until(int target_level) {
  if (decision_level() <= target_level) return;
  const std::size_t bound = static_cast<std::size_t>(trail_lim_[target_level]);
  for (std::size_t k = trail_.size(); k-- > bound;) {
    const Var v = trail_[k].var();
    if (options_.enable_phase_saving) {
      polarity_[v] = assigns_[v] == LBool::kTrue ? 1 : 0;
    }
    assigns_[v] = LBool::kUndef;
    reason_[v] = kNullCRef;
    if (heap_pos_[v] < 0) heap_insert(v);
  }
  trail_.resize(bound);
  trail_lim_.resize(target_level);
  qhead_ = trail_.size();
}

void Solver::analyze(CRef conflict, Clause& out_learnt, int& out_btlevel) {
  out_learnt.clear();
  out_learnt.push_back(undef_lit());  // slot for the asserting literal

  int path_count = 0;
  Lit p = undef_lit();
  std::size_t index = trail_.size();
  CRef reason_cref = conflict;

  do {
    assert(reason_cref != kNullCRef);
    InternalClause& c = clauses_[reason_cref];
    if (c.learnt) claus_bump_activity(c);

    const std::size_t start = (p == undef_lit()) ? 0 : 1;
    for (std::size_t k = start; k < c.lits.size(); ++k) {
      const Lit q = c.lits[k];
      if (seen_[q.var()] == 0 && level_[q.var()] > 0) {
        seen_[q.var()] = 1;
        var_bump_activity(q.var());
        if (level_[q.var()] >= decision_level()) {
          path_count++;
        } else {
          out_learnt.push_back(q);
        }
      }
    }

    // Select next literal on the current decision level to resolve on.
    while (seen_[trail_[index - 1].var()] == 0) --index;
    --index;
    p = trail_[index];
    seen_[p.var()] = 0;
    path_count--;
    reason_cref = reason_[p.var()];
    // Only the first UIP (often the decision) may lack a reason, and the loop
    // terminates exactly there because path_count reaches zero.
    assert(path_count == 0 || reason_cref != kNullCRef);
  } while (path_count > 0);
  out_learnt[0] = ~p;

  // Minimization: a literal whose reason clause is entirely covered by the
  // learnt clause (or level-0 facts) is implied by the others and can be
  // dropped (local minimization a la MiniSat).
  if (options_.enable_clause_minimization && out_learnt.size() > 2) {
    // Snapshot before compaction: seen_ must be cleared for *every* original
    // literal, including ones the compaction overwrites.
    minimize_scratch_ = out_learnt;
    for (const Lit q : minimize_scratch_) seen_[q.var()] = 1;
    std::size_t kept = 1;
    for (std::size_t i = 1; i < out_learnt.size(); ++i) {
      if (!literal_is_redundant(out_learnt[i])) {
        out_learnt[kept++] = out_learnt[i];
      } else {
        stats_.minimized_literals++;
      }
    }
    out_learnt.resize(kept);
    for (const Lit q : minimize_scratch_) seen_[q.var()] = 0;
  }

  // Compute backjump level = max level among lits[1..]; move it to slot 1.
  out_btlevel = 0;
  if (out_learnt.size() > 1) {
    std::size_t max_i = 1;
    for (std::size_t i = 2; i < out_learnt.size(); ++i) {
      if (level_[out_learnt[i].var()] > level_[out_learnt[max_i].var()]) {
        max_i = i;
      }
    }
    std::swap(out_learnt[1], out_learnt[max_i]);
    out_btlevel = level_[out_learnt[1].var()];
  }

  for (const Lit q : out_learnt) seen_[q.var()] = 0;
}

bool Solver::literal_is_redundant(Lit p) {
  const CRef reason_cref = reason_[p.var()];
  if (reason_cref == kNullCRef) return false;  // decision: required
  const InternalClause& c = clauses_[reason_cref];
  for (std::size_t k = 1; k < c.lits.size(); ++k) {
    const Lit q = c.lits[k];
    if (level_[q.var()] == 0) continue;      // implied fact
    if (seen_[q.var()] != 0) continue;        // already in the clause
    return false;
  }
  return true;
}

void Solver::reduce_db() {
  // Sort learnt refs by activity ascending and delete the weaker half,
  // keeping binary clauses and clauses locked as reasons.
  std::sort(learnt_refs_.begin(), learnt_refs_.end(),
            [this](CRef a, CRef b) {
              return clauses_[a].activity < clauses_[b].activity;
            });
  const std::size_t target = learnt_refs_.size() / 2;
  std::size_t removed = 0;
  std::vector<CRef> kept;
  kept.reserve(learnt_refs_.size());
  for (const CRef cref : learnt_refs_) {
    InternalClause& c = clauses_[cref];
    const bool locked =
        value(c.lits[0]) == LBool::kTrue && reason_[c.lits[0].var()] == cref;
    if (removed < target && !locked && c.lits.size() > 2 && !c.deleted) {
      detach_clause(cref);
      c.lits.clear();
      c.lits.shrink_to_fit();
      removed++;
    } else if (!c.deleted) {
      kept.push_back(cref);
    }
  }
  learnt_refs_ = std::move(kept);
}

Lit Solver::pick_branch_lit() {
  if (!options_.enable_vsids) {
    for (Var v = 0; v < num_vars(); ++v) {
      if (assigns_[v] == LBool::kUndef) {
        return Lit(v, polarity_[v] == 0);
      }
    }
    return undef_lit();
  }
  while (!heap_empty()) {
    const Var v = heap_pop();
    if (assigns_[v] == LBool::kUndef) {
      return Lit(v, polarity_[v] == 0);
    }
  }
  return undef_lit();
}

SolveResult Solver::solve(const std::vector<Lit>& assumptions,
                          const Budget& budget) {
  // Telemetry wrapper: solve_inner has many return paths, so the counter
  // deltas are taken once here around the whole call.
  const std::uint64_t conflicts_before = stats_.conflicts;
  const std::uint64_t decisions_before = stats_.decisions;
  const std::uint64_t propagations_before = stats_.propagations;
  telemetry::Span span("sat:solve");
  const SolveResult result = solve_inner(assumptions, budget);
  TS_COUNTER_ADD("sat.solves", 1);
  TS_COUNTER_ADD("sat.conflicts", stats_.conflicts - conflicts_before);
  TS_COUNTER_ADD("sat.decisions", stats_.decisions - decisions_before);
  TS_COUNTER_ADD("sat.propagations",
                 stats_.propagations - propagations_before);
  // Final publication so the cells agree with stats() once solve() returns
  // (the tests assert this consistency after the workers join).
  publish_progress(budget.progress, stats_);
  return result;
}

SolveResult Solver::solve_inner(const std::vector<Lit>& assumptions,
                                const Budget& budget) {
  // Every kUnsat return funnels through this so the proof log carries one
  // UNSAT mark per solve — the per-frame certificate boundary for BMC.
  const auto conclude_unsat = [&]() {
    if (proof_ != nullptr) proof_->on_solve_unsat(assumptions);
    return SolveResult::kUnsat;
  };
  if (unsat_) return conclude_unsat();
  cancel_until(0);
  if (propagate() != kNullCRef) {
    unsat_ = true;
    return conclude_unsat();
  }

  util::Stopwatch timer;
  std::size_t learned_capacity =
      options_.enable_learning ? options_.learned_capacity_start : 64;
  std::uint64_t restart_conflicts =
      luby(stats_.restarts + 1) * static_cast<std::uint64_t>(options_.restart_base);
  std::uint64_t conflicts_this_restart = 0;
  const std::uint64_t conflict_start = stats_.conflicts;
  const std::uint64_t propagation_start = stats_.propagations;

  Clause learnt;
  for (;;) {
    const CRef conflict = propagate();
    if (conflict != kNullCRef) {
      stats_.conflicts++;
      conflicts_this_restart++;
      if (decision_level() == 0) {
        cancel_until(0);
        return conclude_unsat();
      }
      int btlevel = 0;
      analyze(conflict, learnt, btlevel);
      cancel_until(btlevel);
      if (proof_ != nullptr) proof_->on_learn(learnt);
      if (learnt.size() == 1) {
        if (value(learnt[0]) == LBool::kFalse) {
          cancel_until(0);
          return conclude_unsat();
        }
        if (value(learnt[0]) == LBool::kUndef) {
          unchecked_enqueue(learnt[0], kNullCRef);
        }
      } else {
        // The clause is attached even with learning disabled: it is needed as
        // the reason for the asserting literal. The "no learning" ablation is
        // realized by an aggressive retention capacity (see below).
        InternalClause c;
        c.lits = learnt;
        c.learnt = true;
        c.activity = clause_inc_;
        const CRef cref = attach_clause(std::move(c));
        learnt_refs_.push_back(cref);
        stats_.learned_clauses++;
        stats_.learned_literals += learnt.size();
        unchecked_enqueue(learnt[0], cref);
      }
      var_decay_activity();
      clause_inc_ /= options_.clause_decay;

      if ((stats_.conflicts & 0x3F) == 0) {
        publish_progress(budget.progress, stats_);
      }
      if (budget_cancelled(budget)) {
        cancel_until(0);
        return SolveResult::kUnknown;
      }
      if ((stats_.conflicts & 0xFF) == 0 &&
          timer.elapsed_seconds() > budget.time_limit_seconds) {
        cancel_until(0);
        return SolveResult::kUnknown;
      }
      if (stats_.conflicts - conflict_start >= budget.conflict_limit ||
          stats_.propagations - propagation_start >= budget.propagation_limit) {
        cancel_until(0);
        return SolveResult::kUnknown;
      }
      continue;
    }

    // No conflict: restart, reduce, or decide.
    if (conflicts_this_restart >= restart_conflicts) {
      stats_.restarts++;
      conflicts_this_restart = 0;
      restart_conflicts = luby(stats_.restarts + 1) *
                          static_cast<std::uint64_t>(options_.restart_base);
      cancel_until(0);
      continue;
    }
    if (learnt_refs_.size() >= learned_capacity) {
      reduce_db();
      if (options_.enable_learning) {
        learned_capacity = learned_capacity + learned_capacity / 2;
      }
    }

    Lit next = undef_lit();
    while (static_cast<std::size_t>(decision_level()) < assumptions.size()) {
      const Lit p = assumptions[decision_level()];
      if (value(p) == LBool::kTrue) {
        trail_lim_.push_back(static_cast<int>(trail_.size()));  // dummy level
      } else if (value(p) == LBool::kFalse) {
        cancel_until(0);
        return conclude_unsat();
      } else {
        next = p;
        break;
      }
    }
    if (next == undef_lit()) {
      next = pick_branch_lit();
      if (next == undef_lit()) {
        // All variables assigned: SAT. Save the model.
        model_.assign(num_vars(), false);
        for (Var v = 0; v < num_vars(); ++v) {
          model_[v] = assigns_[v] == LBool::kTrue;
        }
        cancel_until(0);
        return SolveResult::kSat;
      }
      stats_.decisions++;
    }
    trail_lim_.push_back(static_cast<int>(trail_.size()));
    unchecked_enqueue(next, kNullCRef);
  }
}

bool Solver::model_value(Var v) const {
  return static_cast<std::size_t>(v) < model_.size() && model_[v];
}

std::size_t Solver::clause_bytes() const {
  std::size_t bytes = clauses_.capacity() * sizeof(InternalClause);
  for (const auto& c : clauses_) bytes += c.lits.capacity() * sizeof(Lit);
  for (const auto& w : watches_) bytes += w.capacity() * sizeof(Watcher);
  return bytes;
}

void Solver::var_bump_activity(Var v) {
  activity_[v] += var_inc_;
  if (activity_[v] > 1e100) {
    for (auto& a : activity_) a *= 1e-100;
    var_inc_ *= 1e-100;
  }
  if (heap_pos_[v] >= 0) heap_update(v);
}

void Solver::var_decay_activity() { var_inc_ /= options_.var_decay; }

void Solver::claus_bump_activity(InternalClause& c) {
  c.activity += clause_inc_;
  if (c.activity > 1e20) {
    for (const CRef cref : learnt_refs_) clauses_[cref].activity *= 1e-20;
    clause_inc_ *= 1e-20;
  }
}

// ---- activity heap (binary max-heap) ---------------------------------------

void Solver::heap_insert(Var v) {
  heap_pos_[v] = static_cast<int>(heap_.size());
  heap_.push_back(v);
  heap_sift_up(heap_pos_[v]);
}

void Solver::heap_update(Var v) { heap_sift_up(heap_pos_[v]); }

Var Solver::heap_pop() {
  const Var top = heap_[0];
  heap_pos_[top] = -1;
  heap_[0] = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heap_pos_[heap_[0]] = 0;
    heap_sift_down(0);
  }
  return top;
}

void Solver::heap_sift_up(int i) {
  const Var v = heap_[i];
  while (i > 0) {
    const int parent = (i - 1) / 2;
    if (activity_[heap_[parent]] >= activity_[v]) break;
    heap_[i] = heap_[parent];
    heap_pos_[heap_[i]] = i;
    i = parent;
  }
  heap_[i] = v;
  heap_pos_[v] = i;
}

void Solver::heap_sift_down(int i) {
  const Var v = heap_[i];
  const int n = static_cast<int>(heap_.size());
  for (;;) {
    int child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n &&
        activity_[heap_[child + 1]] > activity_[heap_[child]]) {
      ++child;
    }
    if (activity_[heap_[child]] <= activity_[v]) break;
    heap_[i] = heap_[child];
    heap_pos_[heap_[i]] = i;
    i = child;
  }
  heap_[i] = v;
  heap_pos_[v] = i;
}

std::uint64_t Solver::luby(std::uint64_t i) {
  // Find the finite subsequence that contains index i and its position.
  std::uint64_t size = 1;
  std::uint64_t seq = 0;
  while (size < i + 1) {
    seq++;
    size = 2 * size + 1;
  }
  while (size - 1 != i) {
    size = (size - 1) / 2;
    seq--;
    i = i % size;
  }
  return 1ull << seq;
}

}  // namespace trojanscout::sat
