// DIMACS CNF reader/writer, used by the test suite (cross-checking the CDCL
// solver against brute force on random instances) and handy for exporting
// BMC queries to external solvers for debugging.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sat/types.hpp"

namespace trojanscout::sat {

struct CnfFormula {
  int num_vars = 0;
  std::vector<Clause> clauses;
};

/// Parses DIMACS text. Throws std::runtime_error on malformed input.
CnfFormula parse_dimacs(std::istream& in);
CnfFormula parse_dimacs_string(const std::string& text);

/// Writes DIMACS text.
void write_dimacs(std::ostream& os, const CnfFormula& formula);

}  // namespace trojanscout::sat
