// Conflict-driven clause-learning (CDCL) SAT solver, written from scratch.
//
// This is the engine behind the BMC back end (the paper's Cadence SMV role).
// Features: two-watched-literal propagation, first-UIP clause learning with
// non-chronological backjumping, VSIDS decision heuristic with phase saving,
// Luby-sequence restarts, learned-clause database reduction, and incremental
// solving under assumptions (used for the per-frame "bad state reachable?"
// queries of the unroller).
//
// The solver optionally supports *feature ablation* (disable learning /
// disable VSIDS) so the bench suite can quantify what each heuristic buys on
// the paper's workloads.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <vector>

#include "sat/types.hpp"

namespace trojanscout::telemetry {
struct ObligationProgress;
}  // namespace trojanscout::telemetry

namespace trojanscout::sat {

/// Resource budget for a solve() call. Exceeding any limit yields kUnknown.
struct Budget {
  double time_limit_seconds = std::numeric_limits<double>::infinity();
  std::uint64_t conflict_limit = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t propagation_limit = std::numeric_limits<std::uint64_t>::max();
  /// Cooperative cancellation: when non-null and set, solve() returns
  /// kUnknown at the next conflict boundary (the parallel scheduler's
  /// fail-fast path sets it when another worker finds a witness).
  const std::atomic<bool>* cancel = nullptr;
  /// Live-progress publication cells (telemetry::ObligationProgress). When
  /// non-null the solver stores its cumulative conflict / propagation /
  /// learned-clause totals there at coarse conflict intervals and once per
  /// solve() return, with relaxed stores — the --progress heartbeat and the
  /// stall watchdog read them from another thread.
  telemetry::ObligationProgress* progress = nullptr;
};

/// True when the budget's cancellation flag is set.
inline bool budget_cancelled(const Budget& budget) {
  return budget.cancel != nullptr &&
         budget.cancel->load(std::memory_order_acquire);
}

struct SolverStats {
  std::uint64_t decisions = 0;
  std::uint64_t propagations = 0;
  std::uint64_t conflicts = 0;
  std::uint64_t restarts = 0;
  std::uint64_t learned_clauses = 0;
  std::uint64_t learned_literals = 0;
  std::uint64_t deleted_clauses = 0;
  std::uint64_t minimized_literals = 0;
};

struct SolverOptions {
  bool enable_learning = true;   // ablation hook
  bool enable_vsids = true;      // ablation hook; falls back to lowest index
  bool enable_phase_saving = true;
  /// Learned-clause minimization: drop literals implied by the rest of the
  /// clause (local / self-subsuming check over direct reasons).
  bool enable_clause_minimization = true;
  double var_decay = 0.95;
  double clause_decay = 0.999;
  int restart_base = 100;        // Luby unit, in conflicts
  std::size_t learned_capacity_start = 20000;
};

enum class SolveResult { kSat, kUnsat, kUnknown };

class Solver {
 public:
  explicit Solver(SolverOptions options = {});

  /// Allocates a fresh variable and returns it.
  Var new_var();

  [[nodiscard]] int num_vars() const { return static_cast<int>(assigns_.size()); }

  /// Adds a clause. Returns false if the formula became trivially UNSAT
  /// (empty clause after simplification against top-level assignments).
  bool add_clause(Clause lits);

  /// Convenience overloads.
  bool add_clause(Lit a) { return add_clause(Clause{a}); }
  bool add_clause(Lit a, Lit b) { return add_clause(Clause{a, b}); }
  bool add_clause(Lit a, Lit b, Lit c) { return add_clause(Clause{a, b, c}); }

  /// Solves under the given assumptions within the budget.
  SolveResult solve(const std::vector<Lit>& assumptions = {},
                    const Budget& budget = {});

  /// After kSat: value of a variable in the model.
  [[nodiscard]] bool model_value(Var v) const;
  [[nodiscard]] bool model_value(Lit p) const {
    return model_value(p.var()) != p.sign();
  }

  [[nodiscard]] const SolverStats& stats() const { return stats_; }
  [[nodiscard]] bool is_trivially_unsat() const { return unsat_; }

  /// Streams every input clause, learned clause, deletion, and UNSAT
  /// conclusion to `listener` (see sat::ProofListener for the contract).
  /// Off by default; when null the hooks cost one pointer test per learned
  /// clause. Attach before the first add_clause call or the proof will be
  /// missing input clauses.
  void set_proof_listener(ProofListener* listener) { proof_ = listener; }
  [[nodiscard]] ProofListener* proof_listener() const { return proof_; }

  /// Approximate heap footprint of the clause database in bytes; the BMC
  /// memory column uses RSS, this is for diagnostics.
  [[nodiscard]] std::size_t clause_bytes() const;

  /// Total clauses in the database (problem + learned, including deleted
  /// slots awaiting compaction). The BMC per-frame telemetry samples this
  /// after each frame's solve.
  [[nodiscard]] std::size_t num_clauses() const { return clauses_.size(); }

 private:
  SolveResult solve_inner(const std::vector<Lit>& assumptions,
                          const Budget& budget);

  using CRef = std::uint32_t;
  static constexpr CRef kNullCRef = 0xFFFFFFFFu;

  struct InternalClause {
    std::vector<Lit> lits;
    double activity = 0.0;
    bool learnt = false;
    bool deleted = false;
  };

  struct Watcher {
    CRef cref;
    Lit blocker;
  };

  // -- assignment / trail ---------------------------------------------------
  [[nodiscard]] LBool value(Var v) const { return assigns_[v]; }
  [[nodiscard]] LBool value(Lit p) const { return assigns_[p.var()] ^ p.sign(); }
  void unchecked_enqueue(Lit p, CRef from);
  CRef propagate();
  void cancel_until(int level);
  [[nodiscard]] int decision_level() const {
    return static_cast<int>(trail_lim_.size());
  }

  // -- learning -------------------------------------------------------------
  void analyze(CRef conflict, Clause& out_learnt, int& out_btlevel);
  bool literal_is_redundant(Lit p);
  CRef attach_clause(InternalClause&& clause);
  void detach_clause(CRef cref);
  void reduce_db();

  // -- heuristics -----------------------------------------------------------
  Lit pick_branch_lit();
  void var_bump_activity(Var v);
  void var_decay_activity();
  void claus_bump_activity(InternalClause& c);
  void heap_insert(Var v);
  void heap_update(Var v);
  Var heap_pop();
  [[nodiscard]] bool heap_empty() const { return heap_.empty(); }
  void heap_sift_up(int i);
  void heap_sift_down(int i);
  static std::uint64_t luby(std::uint64_t i);

  SolverOptions options_;
  SolverStats stats_;
  ProofListener* proof_ = nullptr;
  bool unsat_ = false;

  std::vector<InternalClause> clauses_;
  std::vector<CRef> learnt_refs_;
  std::vector<std::vector<Watcher>> watches_;  // indexed by literal index

  std::vector<LBool> assigns_;
  std::vector<std::uint8_t> polarity_;  // saved phase (1 = last was true)
  std::vector<int> level_;
  std::vector<CRef> reason_;
  std::vector<Lit> trail_;
  std::vector<int> trail_lim_;
  std::size_t qhead_ = 0;

  std::vector<double> activity_;
  double var_inc_ = 1.0;
  double clause_inc_ = 1.0;
  std::vector<int> heap_pos_;  // -1 if not in heap
  std::vector<Var> heap_;

  std::vector<std::uint8_t> seen_;  // analyze() scratch
  std::vector<Lit> minimize_scratch_;
  std::vector<bool> model_;
};

}  // namespace trojanscout::sat
