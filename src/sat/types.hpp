// Basic SAT types: variables, literals, and three-valued assignment values.
// Encoding follows the MiniSat convention: literal = 2*var + sign.
#pragma once

#include <cstdint>
#include <vector>

namespace trojanscout::sat {

using Var = std::int32_t;
inline constexpr Var kUndefVar = -1;

class Lit {
 public:
  Lit() = default;
  Lit(Var v, bool negated) : x_(v + v + static_cast<int>(negated)) {}

  [[nodiscard]] Var var() const { return x_ >> 1; }
  [[nodiscard]] bool sign() const { return (x_ & 1) != 0; }  // true = negated
  [[nodiscard]] int index() const { return x_; }

  Lit operator~() const {
    Lit p;
    p.x_ = x_ ^ 1;
    return p;
  }

  bool operator==(const Lit&) const = default;
  bool operator<(const Lit& other) const { return x_ < other.x_; }

  static Lit from_index(int index) {
    Lit p;
    p.x_ = index;
    return p;
  }

  /// DIMACS-style integer: +v for positive, -v for negated, 1-based.
  [[nodiscard]] int to_dimacs() const {
    return sign() ? -(var() + 1) : (var() + 1);
  }

 private:
  std::int32_t x_ = -2;
};

inline constexpr int kUndefLitIndex = -2;
inline Lit undef_lit() { return Lit::from_index(kUndefLitIndex); }

/// Three-valued assignment.
enum class LBool : std::uint8_t { kFalse = 0, kTrue = 1, kUndef = 2 };

inline LBool lbool_from(bool b) { return b ? LBool::kTrue : LBool::kFalse; }

inline LBool operator^(LBool v, bool flip) {
  if (v == LBool::kUndef) return v;
  return lbool_from((v == LBool::kTrue) != flip);
}

using Clause = std::vector<Lit>;

/// Observer for clause-proof logging (binary DRAT, see src/proof).
///
/// The solver invokes it at the clause-addition, learning, deletion, and
/// UNSAT-conclusion sites. It lives in this header (not solver.hpp) so that
/// the independent proof checker shares only basic types with the solver:
/// the checker never includes solver code, which is what makes its verdicts
/// independent evidence rather than the solver grading its own homework.
///
/// Contract the solver upholds: every clause passed to on_learn is RUP
/// (reverse-unit-propagation derivable) with respect to the clauses
/// recorded before it (inputs + learns - deletes); after on_solve_unsat,
/// unit propagation over the recorded clauses plus the assumptions as unit
/// clauses derives the empty clause.
class ProofListener {
 public:
  virtual ~ProofListener() = default;
  /// An original problem clause, exactly as handed to Solver::add_clause
  /// (before simplification). These form the formula, not the proof.
  virtual void on_input(const Clause& clause) = 0;
  /// A derived clause: learned clauses and simplified forms of inputs.
  virtual void on_learn(const Clause& clause) = 0;
  /// A derived clause dropped from the clause database.
  virtual void on_delete(const Clause& clause) = 0;
  /// solve() concluded UNSAT under `assumptions` (empty for a plain solve).
  virtual void on_solve_unsat(const std::vector<Lit>& assumptions) = 0;
};

}  // namespace trojanscout::sat
