// Fleet coordinator: `trojanscout_cli serve-fleet` — the front door of a
// horizontally scaled audit tier.
//
// Speaks the exact same NDJSON protocol as a single AuditDaemon (clients
// cannot tell them apart), but executes nothing itself: per audit job it
// enumerates Algorithm 1's obligations, keys each one with the same
// 128-bit ObligationKeyer digest the verdict cache uses, and shards the
// indices across worker daemons by consistent hash of that digest
// (fleet::ShardRing). Keying the ring on the cache key means a given
// obligation always lands on the same worker, so that worker's private L1
// cache accumulates exactly the verdicts it will be asked for again.
//
// Workers receive ordinary audit requests carrying a "subset" of indices
// and "wire_verdicts":true; they stream back full verdict payloads (the
// cache codec is the wire codec), which the coordinator parses and merges
// in enumeration order — the merged DetectionReport signature is
// byte-identical to a direct single-process audit.
//
// Failure handling:
//   * admission control — a job whose shard would exceed a worker's
//     queue_capacity outstanding obligations is refused up front with a
//     structured {"type":"retry-after"} response (never a silent drop);
//     clients back off and resubmit;
//   * worker death — a connect failure, mid-stream EOF, or read timeout
//     marks the worker dead, drops it from the ring, and re-shards that
//     worker's unfinished obligations across the survivors; the job
//     completes as long as one worker lives;
//   * health checks — a background thread pings every worker and both
//     evicts dead ones early and re-adds revived ones to the ring.
//
// Observability plane (PR 8):
//   * trace stitching — with `trace_out` set, every job gets a trace id
//     and a coordinator-side span per obligation; workers root their
//     engine spans under those ids and ship the span rows back on the
//     report line. The coordinator rebases worker timestamps through a
//     per-dispatch clock-offset handshake (midpoint of send/accept
//     against the worker's reported recorder clock), renumbers worker
//     span ids and thread ids into its own namespace, and keeps one
//     Perfetto-loadable Chrome trace of the whole run (rewritten to
//     `trace_out` after every job and at stop()). The recorder
//     accumulates for the coordinator's lifetime — the tap is meant for
//     bounded runs (CI smokes, incident captures), not always-on duty.
//   * merged telemetry — `stats` fans out to live workers and returns the
//     exact merge of their Registry snapshots (counters summed, log2-µs
//     histogram buckets added) plus a per-worker breakdown and the
//     coordinator's own snapshot.
//   * tail attribution — per dispatch, the worker's span rows are folded
//     through telemetry::build_profile; the slowest obligations (phase
//     attributed) surface in the job's report line and a run-lifetime
//     top-N table in the stats reply.
//   * structured events — worker up/down/evicted/rejoined, re-shard
//     batches, and retry-after refusals go to the process-global
//     telemetry::EventLog when one is installed (`--events-out`).
//
// Continuous monitoring (PR 9):
//   * a background telemetry::Sampler folds Registry snapshots into a
//     bounded time-series ring (per-window counter rates and histogram
//     tail quantiles); the stats reply ships the windows and `top`
//     renders them live;
//   * the `metrics` verb answers Prometheus text exposition of the whole
//     fleet — every responding worker's snapshot exactly merged into the
//     coordinator's own, plus labelled per-worker liveness gauges;
//   * latency objectives (`--slo-ms`, `--slo-obligation-ms`) count
//     total/breach pairs (burn rate falls out of the windowed series)
//     and emit {"type":"slo_breach"} records to the event log.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/detector.hpp"
#include "fleet/shard.hpp"
#include "service/line_server.hpp"
#include "service/protocol.hpp"
#include "service/transport.hpp"
#include "telemetry/span.hpp"
#include "telemetry/timeseries.hpp"

namespace trojanscout::proof {
class Json;
}

namespace trojanscout::fleet {

class FleetCoordinator {
 public:
  struct Options {
    /// Client-facing endpoint ("unix:/path", bare path, "tcp:host:port").
    std::string endpoint;
    /// Worker daemon endpoints (each a `trojanscout_cli serve` instance).
    std::vector<std::string> workers;
    /// Per-worker admission bound: a job is refused with retry-after when
    /// its shard would push a worker past this many outstanding
    /// obligations.
    std::size_t queue_capacity = 64;
    /// Client-facing idle timeout; 0 disables.
    double read_timeout_seconds = 0;
    /// Per-obligation-stream read timeout against a worker; expiry counts
    /// as worker death (0 disables — not recommended).
    double worker_timeout_seconds = 600;
    /// Connect policy against workers (retries cover worker restarts).
    service::ConnectRetry worker_connect{3, 50, 500};
    /// Background ping interval; 0 disables health checking (dispatch
    /// failures still mark workers dead).
    double health_interval_seconds = 2.0;
    /// Hint returned with retry-after responses.
    std::uint64_t retry_after_ms = 200;
    /// Path for the stitched cross-process Chrome trace; empty disables
    /// tracing (jobs are dispatched without trace ids).
    std::string trace_out;
    /// Continuous-monitoring sampler cadence; <= 0 disables the sampler
    /// (stats/metrics still answer, but without windowed series).
    double sample_interval_ms = 1000.0;
    /// Ring capacity of the sampled time series (windows kept).
    std::size_t series_capacity = 120;
    /// Per-job latency objective in milliseconds; a job whose wall time
    /// (request line to report line) exceeds it counts an slo breach and
    /// emits an {"type":"slo_breach"} event record. 0 disables.
    double slo_job_ms = 0;
    /// Per-obligation latency objective: dispatch send to the worker's
    /// obligation line back. 0 disables.
    double slo_obligation_ms = 0;
  };

  explicit FleetCoordinator(Options options);
  ~FleetCoordinator();

  FleetCoordinator(const FleetCoordinator&) = delete;
  FleetCoordinator& operator=(const FleetCoordinator&) = delete;

  /// Binds the endpoint and starts the health thread. Throws
  /// std::runtime_error on a malformed worker endpoint or bind failure.
  void start();

  /// Blocks until a client sends {"op":"shutdown"} or stop() is called.
  void wait();

  /// Stops serving and joins the health thread. Workers are NOT shut
  /// down — their lifetime belongs to whoever spawned them. Idempotent.
  void stop();

  [[nodiscard]] bool running() const { return server_.running(); }
  [[nodiscard]] std::string bound_endpoint() const {
    return server_.bound_endpoint().to_string();
  }
  [[nodiscard]] std::uint64_t jobs_completed() const {
    return jobs_completed_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t retry_after_sent() const {
    return retry_after_sent_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t reshards() const {
    return reshards_.load(std::memory_order_relaxed);
  }

 private:
  struct Worker {
    std::string name;  // canonical endpoint string == ring node id
    service::Endpoint endpoint;
    bool alive = true;            // guarded by ring_mutex_
    std::size_t outstanding = 0;  // guarded by ring_mutex_
  };

  /// One obligation's parsed wire verdict.
  struct ObSlot {
    bool ready = false;
    std::string source = "computed";
    core::CheckResult result;
  };

  enum class GroupStatus {
    kOk,     ///< every obligation of the group streamed back
    kDead,   ///< worker unreachable / died mid-stream → re-shard the rest
    kError,  ///< worker returned a structured error → abort the job
  };

  /// One obligation's phase-attributed cost, folded from a worker's span
  /// rows — a row of the slowest-obligations tables (report + stats).
  struct TailEntry {
    std::string property;
    std::string worker;
    std::uint64_t total_us = 0;
    std::vector<std::pair<std::string, std::uint64_t>> phases;  // name, us
  };

  /// Per-job trace state shared between the job thread and its dispatch
  /// threads (only allocated when tracing is on).
  struct JobTrace {
    std::string trace_id;
    /// Coordinator-side wrapper span per obligation index; workers parent
    /// their subset under these ids.
    std::vector<std::uint64_t> wrapper_ids;
    std::mutex mutex;  // guards `slowest`
    std::vector<TailEntry> slowest;
  };

  service::LineServer::Disposition handle_line(
      const std::string& line, const service::LineServer::Sender& send);
  void handle_audit(const service::LineServer::Sender& send,
                    const service::AuditJob& job);
  /// Prometheus text exposition of the whole fleet: the coordinator's own
  /// registry snapshot exactly merged with every responding worker's
  /// (stats fan-out), plus fleet counters and labelled per-worker gauges.
  [[nodiscard]] std::string metrics_body();

  /// Sends `group` (original enumeration indices) to `worker` as a subset
  /// audit and fills `slots` from the streamed wire verdicts. With `trace`
  /// non-null, also runs the clock handshake, stitches the worker's span
  /// rows into recorder_, and feeds tail attribution.
  GroupStatus dispatch_group(const Worker& worker,
                             const service::AuditJob& base,
                             const std::vector<std::size_t>& group,
                             std::vector<ObSlot>& slots, JobTrace* trace,
                             std::string& error);

  /// Renumbers one worker's span rows (ids, tids, timestamps) into the
  /// coordinator's namespace and appends them to recorder_.
  void stitch_worker_events(
      const std::vector<telemetry::TraceEvent>& worker_events,
      std::int64_t clock_offset_us, const JobTrace& trace);

  /// Folds worker-local span rows into per-obligation cost entries for the
  /// job's report and the run-lifetime top-N (tail_).
  void note_tail(const std::string& worker_name,
                 const std::vector<telemetry::TraceEvent>& worker_events,
                 JobTrace& trace);

  /// Top `limit` entries as the "slowest" JSON array (property, worker,
  /// total_us, per-phase exclusive µs).
  static proof::Json tail_to_json(const std::vector<TailEntry>& entries,
                                  std::size_t limit);

  void mark_dead(const std::string& name, const std::string& reason);
  bool ping_worker(const service::Endpoint& endpoint) const;
  void health_loop();

  Options options_;
  service::LineServer server_;
  std::vector<std::unique_ptr<Worker>> workers_;

  std::mutex ring_mutex_;  // guards ring_ + Worker::alive/outstanding
  ShardRing ring_;

  std::atomic<std::uint64_t> jobs_completed_{0};
  std::atomic<std::uint64_t> retry_after_sent_{0};
  std::atomic<std::uint64_t> reshards_{0};
  std::atomic<std::uint64_t> slo_job_breaches_{0};
  std::atomic<std::uint64_t> slo_obligation_breaches_{0};
  std::chrono::steady_clock::time_point started_at_{};

  telemetry::TimeSeries series_;
  std::optional<telemetry::Sampler> sampler_;

  /// Stitched-trace recorder (only with Options::trace_out). Coordinator
  /// spans are recorded through explicit begin/end calls — the recorder is
  /// never installed globally, so in-process workers (tests) can lease
  /// their own without interference.
  std::unique_ptr<telemetry::TraceRecorder> recorder_;
  std::atomic<std::uint64_t> trace_seq_{0};
  /// Namespaced tids for stitched worker threads, far above the
  /// coordinator's own dense tids.
  std::atomic<int> stitch_tids_{1000};
  std::mutex tail_mutex_;
  std::vector<TailEntry> tail_;  // run-lifetime slowest, sorted desc

  std::thread health_thread_;
  bool health_stop_ = false;  // guarded by health_mutex_
  std::mutex health_mutex_;
  std::condition_variable health_cv_;
};

}  // namespace trojanscout::fleet
