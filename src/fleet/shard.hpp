// Consistent-hash ring for sharding obligations across fleet workers.
//
// Nodes (worker endpoint names) are placed on a 64-bit ring at `vnodes`
// pseudo-random points each (FNV-1a over "name#i"); a key (the 128-bit
// ObligationKeyer digest) maps to the first node point at or after its own
// hash, wrapping at the top. Virtual nodes keep the load split close to
// uniform for small fleets, and consistent hashing keeps it *stable*:
// removing a dead worker re-homes only the keys that lived on its points,
// so the surviving workers keep their L1 cache locality across a re-shard.
//
// The ring itself is unsynchronized; FleetCoordinator guards it with its
// own mutex (reads and membership changes both happen under that lock).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace trojanscout::fleet {

class ShardRing {
 public:
  explicit ShardRing(std::size_t vnodes = 64) : vnodes_(vnodes) {}

  /// Adds `node` at vnodes points. Adding a present node is a no-op.
  void add(const std::string& node);

  /// Removes every point of `node`. Removing an absent node is a no-op.
  void remove(const std::string& node);

  [[nodiscard]] bool contains(const std::string& node) const;
  [[nodiscard]] bool empty() const { return points_.empty(); }
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] const std::vector<std::string>& nodes() const {
    return nodes_;
  }

  /// Owner of `key`. Must not be called on an empty ring.
  [[nodiscard]] const std::string& node_for(const std::string& key) const;

  /// The hash both sides of the ring use (exposed for tests).
  static std::uint64_t hash(const std::string& text);

 private:
  struct Point {
    std::uint64_t position;
    std::size_t node_index;  // into nodes_
  };

  void rebuild();

  std::size_t vnodes_;
  std::vector<std::string> nodes_;   // insertion-ordered member list
  std::vector<Point> points_;        // sorted by position
};

}  // namespace trojanscout::fleet
