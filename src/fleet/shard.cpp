#include "fleet/shard.hpp"

#include <algorithm>
#include <stdexcept>

namespace trojanscout::fleet {

std::uint64_t ShardRing::hash(const std::string& text) {
  // FNV-1a, 64-bit.
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : text) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

void ShardRing::add(const std::string& node) {
  if (contains(node)) return;
  nodes_.push_back(node);
  rebuild();
}

void ShardRing::remove(const std::string& node) {
  const auto it = std::find(nodes_.begin(), nodes_.end(), node);
  if (it == nodes_.end()) return;
  nodes_.erase(it);
  rebuild();
}

bool ShardRing::contains(const std::string& node) const {
  return std::find(nodes_.begin(), nodes_.end(), node) != nodes_.end();
}

void ShardRing::rebuild() {
  points_.clear();
  points_.reserve(nodes_.size() * vnodes_);
  for (std::size_t node_index = 0; node_index < nodes_.size(); ++node_index) {
    for (std::size_t v = 0; v < vnodes_; ++v) {
      points_.push_back(
          Point{hash(nodes_[node_index] + "#" + std::to_string(v)),
                node_index});
    }
  }
  std::sort(points_.begin(), points_.end(),
            [](const Point& a, const Point& b) {
              return a.position < b.position;
            });
}

const std::string& ShardRing::node_for(const std::string& key) const {
  if (points_.empty()) {
    throw std::logic_error("ShardRing::node_for on an empty ring");
  }
  const std::uint64_t position = hash(key);
  auto it = std::lower_bound(points_.begin(), points_.end(), position,
                             [](const Point& p, std::uint64_t pos) {
                               return p.position < pos;
                             });
  if (it == points_.end()) it = points_.begin();  // wrap
  return nodes_[it->node_index];
}

}  // namespace trojanscout::fleet
