#include "fleet/coordinator.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <map>
#include <optional>
#include <stdexcept>
#include <utility>

#include "cache/verdict_codec.hpp"
#include "designs/design.hpp"
#include "proof/json.hpp"
#include "telemetry/registry.hpp"
#include "util/logging.hpp"

namespace trojanscout::fleet {

namespace {

using proof::Json;
using service::AuditJob;
using service::LineServer;

int source_rank(const std::string& source) {
  if (source == "cache") return 0;
  if (source == "shared") return 2;
  return 1;  // computed
}

}  // namespace

FleetCoordinator::FleetCoordinator(Options options)
    : options_(std::move(options)),
      server_(
          LineServer::Options{options_.endpoint,
                              options_.read_timeout_seconds,
                              /*max_line_bytes=*/1 << 20,
                              /*backlog=*/64},
          [this](const std::string& line, const LineServer::Sender& send) {
            return handle_line(line, send);
          }) {}

FleetCoordinator::~FleetCoordinator() { stop(); }

void FleetCoordinator::start() {
  if (options_.workers.empty()) {
    throw std::runtime_error("fleet: no worker endpoints configured");
  }
  workers_.clear();
  for (const std::string& text : options_.workers) {
    service::Endpoint endpoint;
    std::string error;
    if (!service::parse_endpoint(text, endpoint, &error)) {
      throw std::runtime_error("fleet: bad worker endpoint '" + text +
                               "': " + error);
    }
    auto worker = std::make_unique<Worker>();
    worker->name = endpoint.to_string();
    worker->endpoint = endpoint;
    if (ring_.contains(worker->name)) {
      throw std::runtime_error("fleet: duplicate worker endpoint " +
                               worker->name);
    }
    ring_.add(worker->name);
    workers_.push_back(std::move(worker));
  }
  server_.start();
  if (options_.health_interval_seconds > 0) {
    health_thread_ = std::thread([this] { health_loop(); });
  }
  TS_LOG_INFO("fleet: coordinating %zu workers on %s", workers_.size(),
              bound_endpoint().c_str());
}

void FleetCoordinator::wait() { server_.wait(); }

void FleetCoordinator::stop() {
  server_.stop();
  {
    std::lock_guard<std::mutex> lock(health_mutex_);
    health_stop_ = true;
  }
  health_cv_.notify_all();
  if (health_thread_.joinable()) health_thread_.join();
}

LineServer::Disposition FleetCoordinator::handle_line(
    const std::string& line, const LineServer::Sender& send) {
  service::Request request;
  std::string error;
  if (!service::parse_request(line, request, &error)) {
    TS_COUNTER_ADD("service.bad_request", 1);
    if (!send(service::error_response_line("", error, "bad_request"))) {
      return LineServer::Disposition::kClose;
    }
    return LineServer::Disposition::kKeep;
  }
  if (request.op == service::Request::Op::kPing) {
    Json j = Json::object();
    j.set("type", "pong");
    if (!send(j.dump())) return LineServer::Disposition::kClose;
  } else if (request.op == service::Request::Op::kStats) {
    Json j = Json::object();
    j.set("type", "stats");
    j.set("endpoint", bound_endpoint());
    j.set("role", "coordinator");
    j.set("jobs_completed", jobs_completed_.load(std::memory_order_relaxed));
    j.set("retry_after_sent",
          retry_after_sent_.load(std::memory_order_relaxed));
    j.set("reshards", reshards_.load(std::memory_order_relaxed));
    j.set("bad_requests", server_.bad_requests());
    Json workers = Json::array();
    {
      std::lock_guard<std::mutex> lock(ring_mutex_);
      for (const auto& worker : workers_) {
        Json w = Json::object();
        w.set("endpoint", worker->name);
        w.set("alive", worker->alive);
        w.set("outstanding", worker->outstanding);
        workers.push_back(std::move(w));
      }
    }
    j.set("workers", std::move(workers));
    if (!send(j.dump())) return LineServer::Disposition::kClose;
  } else if (request.op == service::Request::Op::kShutdown) {
    Json j = Json::object();
    j.set("type", "bye");
    send(j.dump());
    TS_LOG_INFO("fleet: shutdown requested");
    return LineServer::Disposition::kShutdown;
  } else {
    handle_audit(send, request.job);
  }
  return LineServer::Disposition::kKeep;
}

void FleetCoordinator::handle_audit(const LineServer::Sender& send,
                                    const AuditJob& job) {
  designs::Design design;
  const core::DetectorOptions detector_options = job.detector_options();
  try {
    design = service::load_job_design(job);
  } catch (const std::exception& e) {
    send(service::error_response_line(job.id, e.what()));
    return;
  }

  const core::TrojanDetector merger(design, detector_options);
  const std::vector<core::Obligation> obligations =
      merger.enumerate_obligations();
  const cache::ObligationKeyer keyer(design, detector_options,
                                     /*fail_fast=*/false);
  std::vector<std::string> keys;
  keys.reserve(obligations.size());
  for (const core::Obligation& obligation : obligations) {
    keys.push_back(keyer.key(obligation));
  }

  std::vector<std::size_t> requested;
  if (job.subset.empty()) {
    requested.resize(obligations.size());
    for (std::size_t i = 0; i < requested.size(); ++i) requested[i] = i;
  } else {
    for (const std::size_t index : job.subset) {
      if (index >= obligations.size()) {
        send(service::error_response_line(
            job.id, "subset index " + std::to_string(index) +
                        " out of range (job has " +
                        std::to_string(obligations.size()) + " obligations)"));
        return;
      }
      requested.push_back(index);
    }
  }

  std::vector<ObSlot> slots(obligations.size());
  std::vector<std::size_t> pending = requested;
  bool accepted_sent = false;
  while (!pending.empty()) {
    // Shard the pending indices over the live ring. Membership and
    // outstanding counts are read under the ring lock; dispatch itself
    // runs unlocked.
    std::map<Worker*, std::vector<std::size_t>> groups;
    {
      std::lock_guard<std::mutex> lock(ring_mutex_);
      if (ring_.empty()) {
        send(service::error_response_line(
            job.id, "no live workers in the fleet", "no_workers"));
        return;
      }
      std::map<std::string, Worker*> by_name;
      for (const auto& worker : workers_) by_name[worker->name] = worker.get();
      for (const std::size_t index : pending) {
        groups[by_name.at(ring_.node_for(keys[index]))].push_back(index);
      }
      if (!accepted_sent) {
        // Admission control: refuse (never queue silently, never drop) a
        // job that would overrun any worker's obligation queue.
        for (const auto& [worker, group] : groups) {
          if (worker->outstanding + group.size() > options_.queue_capacity) {
            retry_after_sent_.fetch_add(1, std::memory_order_relaxed);
            TS_COUNTER_ADD("fleet.retry_after", 1);
            TS_LOG_WARN(
                "fleet: refusing job %s: worker %s at %zu/%zu outstanding "
                "(+%zu requested)",
                job.id.c_str(), worker->name.c_str(), worker->outstanding,
                options_.queue_capacity, group.size());
            send(service::retry_after_line(job.id, options_.retry_after_ms));
            return;
          }
        }
      }
      for (const auto& [worker, group] : groups) {
        worker->outstanding += group.size();
      }
    }
    if (!accepted_sent) {
      Json j = Json::object();
      j.set("type", "accepted");
      j.set("id", job.id);
      j.set("design", job.design_path);
      j.set("obligations", requested.size());
      if (!send(j.dump())) {
        std::lock_guard<std::mutex> lock(ring_mutex_);
        for (const auto& [worker, group] : groups) {
          worker->outstanding -= group.size();
        }
        return;
      }
      accepted_sent = true;
    }

    struct GroupOutcome {
      Worker* worker;
      std::vector<std::size_t> indices;
      GroupStatus status = GroupStatus::kDead;
      std::string error;
    };
    std::vector<GroupOutcome> outcomes;
    outcomes.reserve(groups.size());
    for (auto& [worker, group] : groups) {
      GroupOutcome outcome;
      outcome.worker = worker;
      outcome.indices = group;
      outcomes.push_back(std::move(outcome));
    }
    std::vector<std::thread> threads;
    threads.reserve(outcomes.size());
    for (GroupOutcome& outcome : outcomes) {
      threads.emplace_back([this, &outcome, &job, &slots] {
        outcome.status = dispatch_group(*outcome.worker, job, outcome.indices,
                                        slots, outcome.error);
        std::lock_guard<std::mutex> lock(ring_mutex_);
        outcome.worker->outstanding -= outcome.indices.size();
      });
    }
    for (std::thread& thread : threads) thread.join();

    pending.clear();
    for (const GroupOutcome& outcome : outcomes) {
      if (outcome.status == GroupStatus::kOk) continue;
      if (outcome.status == GroupStatus::kError) {
        // A structured worker error (bad design path, out-of-range subset)
        // would fail identically on every worker — abort, don't re-shard.
        send(service::error_response_line(job.id, outcome.error));
        return;
      }
      mark_dead(outcome.worker->name);
      for (const std::size_t index : outcome.indices) {
        if (!slots[index].ready) pending.push_back(index);
      }
    }
    if (!pending.empty()) {
      std::sort(pending.begin(), pending.end());
      reshards_.fetch_add(1, std::memory_order_relaxed);
      TS_COUNTER_ADD("fleet.reshard", 1);
      TS_LOG_WARN("fleet: re-sharding %zu obligations of job %s",
                  pending.size(), job.id.c_str());
    }
  }

  // Merge in enumeration order — the invariant DetectionReport::signature
  // depends on — and stream per-obligation lines like a single daemon.
  core::DetectionReport report;
  report.trust_bound_frames = detector_options.engine.max_frames;
  std::uint64_t counts[3] = {0, 0, 0};
  bool client_alive = accepted_sent;
  for (const std::size_t index : requested) {
    const ObSlot& slot = slots[index];
    const core::Obligation& obligation = obligations[index];
    counts[source_rank(slot.source)]++;
    merger.merge_obligation(report, obligation, slot.result);
    if (client_alive) {
      Json j = Json::object();
      j.set("type", "obligation");
      j.set("id", job.id);
      j.set("index", index);
      j.set("property", obligation.property_name());
      j.set("status", slot.result.status);
      j.set("violated", slot.result.violated);
      j.set("bound_reached", slot.result.bound_reached);
      j.set("frames_completed", slot.result.frames_completed);
      j.set("source", slot.source);
      client_alive = send(j.dump());
    }
  }

  jobs_completed_.fetch_add(1, std::memory_order_relaxed);
  if (!client_alive) return;
  Json j = Json::object();
  j.set("type", "report");
  j.set("id", job.id);
  j.set("trojan_found", report.trojan_found);
  j.set("trust_bound_frames", report.trust_bound_frames);
  j.set("summary", report.summary());
  j.set("signature", report.signature());
  j.set("cache_hits", counts[0]);
  j.set("shared", counts[2]);
  j.set("computed", counts[1]);
  send(j.dump());
}

FleetCoordinator::GroupStatus FleetCoordinator::dispatch_group(
    const Worker& worker, const AuditJob& base,
    const std::vector<std::size_t>& group, std::vector<ObSlot>& slots,
    std::string& error) {
  int fd = -1;
  try {
    fd = service::connect_with_retry(worker.endpoint,
                                     options_.worker_connect);
  } catch (const std::exception& e) {
    error = e.what();
    return GroupStatus::kDead;
  }
  service::set_recv_timeout(fd, options_.worker_timeout_seconds);

  AuditJob shard = base;
  shard.subset = group;
  shard.wire_verdicts = true;
  if (!service::send_frame(fd, service::audit_request_line(shard))) {
    ::close(fd);
    error = "send failed";
    return GroupStatus::kDead;
  }

  std::string buffer;
  std::string line;
  bool got_report = false;
  while (!got_report) {
    const service::ReadLineStatus status =
        service::read_frame(fd, buffer, line);
    if (status != service::ReadLineStatus::kLine) {
      ::close(fd);
      error = status == service::ReadLineStatus::kTimeout
                  ? "worker read timeout"
                  : "worker closed the connection";
      return GroupStatus::kDead;
    }
    Json j;
    std::string parse_error;
    if (!Json::parse(line, j, &parse_error) || !j.is_object()) {
      ::close(fd);
      error = "unparseable worker response: " + parse_error;
      return GroupStatus::kDead;
    }
    const Json* type = j.find("type");
    const std::string kind =
        type != nullptr && type->is_string() ? type->as_string() : "";
    if (kind == "accepted") continue;
    if (kind == "error") {
      const Json* message = j.find("message");
      error = message != nullptr && message->is_string()
                  ? message->as_string()
                  : "worker error";
      ::close(fd);
      return GroupStatus::kError;
    }
    if (kind == "obligation") {
      const Json* index_field = j.find("index");
      const Json* verdict = j.find("verdict");
      if (index_field == nullptr || !index_field->is_int() ||
          index_field->as_int() < 0 ||
          static_cast<std::size_t>(index_field->as_int()) >= slots.size() ||
          verdict == nullptr || !verdict->is_object()) {
        ::close(fd);
        error = "malformed obligation line from worker";
        return GroupStatus::kDead;
      }
      ObSlot& slot = slots[static_cast<std::size_t>(index_field->as_int())];
      std::string codec_error;
      if (!cache::verdict_from_json(verdict->dump(), slot.result, nullptr,
                                    &codec_error)) {
        ::close(fd);
        error = "bad wire verdict: " + codec_error;
        return GroupStatus::kDead;
      }
      const Json* source = j.find("source");
      slot.source = source != nullptr && source->is_string()
                        ? source->as_string()
                        : "computed";
      slot.ready = true;
      continue;
    }
    if (kind == "report") got_report = true;
  }
  ::close(fd);
  for (const std::size_t index : group) {
    if (!slots[index].ready) {
      error = "worker report omitted obligations";
      return GroupStatus::kDead;
    }
  }
  return GroupStatus::kOk;
}

void FleetCoordinator::mark_dead(const std::string& name) {
  std::lock_guard<std::mutex> lock(ring_mutex_);
  for (const auto& worker : workers_) {
    if (worker->name != name) continue;
    if (!worker->alive) return;
    worker->alive = false;
    ring_.remove(name);
    TS_COUNTER_ADD("fleet.worker_dead", 1);
    TS_LOG_WARN("fleet: worker %s marked dead (%zu remain)", name.c_str(),
                ring_.node_count());
    return;
  }
}

bool FleetCoordinator::ping_worker(const service::Endpoint& endpoint) const {
  std::string error;
  const int fd = service::connect_endpoint(endpoint, &error);
  if (fd < 0) return false;
  service::set_recv_timeout(fd, 1.0);
  bool ok = false;
  if (service::send_frame(fd, service::control_request_line("ping"))) {
    std::string buffer;
    std::string line;
    if (service::read_frame(fd, buffer, line) ==
        service::ReadLineStatus::kLine) {
      Json j;
      std::string parse_error;
      if (Json::parse(line, j, &parse_error) && j.is_object()) {
        const Json* type = j.find("type");
        ok = type != nullptr && type->is_string() &&
             type->as_string() == "pong";
      }
    }
  }
  ::close(fd);
  return ok;
}

void FleetCoordinator::health_loop() {
  const auto interval = std::chrono::duration<double>(
      options_.health_interval_seconds);
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(health_mutex_);
      health_cv_.wait_for(lock, interval, [this] { return health_stop_; });
      if (health_stop_) return;
    }
    for (const auto& worker : workers_) {
      const bool ok = ping_worker(worker->endpoint);
      if (!ok) {
        mark_dead(worker->name);
        continue;
      }
      std::lock_guard<std::mutex> lock(ring_mutex_);
      if (!worker->alive) {
        worker->alive = true;
        ring_.add(worker->name);
        TS_COUNTER_ADD("fleet.worker_revived", 1);
        TS_LOG_INFO("fleet: worker %s revived (%zu live)",
                    worker->name.c_str(), ring_.node_count());
      }
    }
  }
}

}  // namespace trojanscout::fleet
