#include "fleet/coordinator.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <map>
#include <optional>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "cache/verdict_codec.hpp"
#include "designs/design.hpp"
#include "proof/json.hpp"
#include "service/exposition.hpp"
#include "service/telemetry_wire.hpp"
#include "telemetry/events.hpp"
#include "telemetry/profile.hpp"
#include "telemetry/registry.hpp"
#include "util/logging.hpp"

namespace trojanscout::fleet {

namespace {

using proof::Json;
using service::AuditJob;
using service::LineServer;

int source_rank(const std::string& source) {
  if (source == "cache") return 0;
  if (source == "shared") return 2;
  return 1;  // computed
}

/// One-shot stats probe against a worker (no connect retries — a worker
/// that cannot answer promptly is simply reported without telemetry).
std::optional<Json> fetch_worker_stats(const service::Endpoint& endpoint) {
  std::string connect_error;
  const int fd = service::connect_endpoint(endpoint, &connect_error);
  if (fd < 0) return std::nullopt;
  service::set_recv_timeout(fd, 5.0);
  std::optional<Json> result;
  if (service::send_frame(fd, service::control_request_line("stats"))) {
    std::string buffer;
    std::string line;
    if (service::read_frame(fd, buffer, line) ==
        service::ReadLineStatus::kLine) {
      Json j;
      std::string parse_error;
      if (Json::parse(line, j, &parse_error) && j.is_object()) {
        const Json* type = j.find("type");
        if (type != nullptr && type->is_string() &&
            type->as_string() == "stats") {
          result = std::move(j);
        }
      }
    }
  }
  ::close(fd);
  return result;
}

}  // namespace

FleetCoordinator::FleetCoordinator(Options options)
    : options_(std::move(options)),
      server_(
          LineServer::Options{options_.endpoint,
                              options_.read_timeout_seconds,
                              /*max_line_bytes=*/1 << 20,
                              /*backlog=*/64},
          [this](const std::string& line, const LineServer::Sender& send) {
            return handle_line(line, send);
          }),
      series_(options_.series_capacity) {}

FleetCoordinator::~FleetCoordinator() { stop(); }

void FleetCoordinator::start() {
  if (options_.workers.empty()) {
    throw std::runtime_error("fleet: no worker endpoints configured");
  }
  if (!options_.trace_out.empty()) {
    recorder_ = std::make_unique<telemetry::TraceRecorder>();
  }
  workers_.clear();
  for (const std::string& text : options_.workers) {
    service::Endpoint endpoint;
    std::string error;
    if (!service::parse_endpoint(text, endpoint, &error)) {
      throw std::runtime_error("fleet: bad worker endpoint '" + text +
                               "': " + error);
    }
    auto worker = std::make_unique<Worker>();
    worker->name = endpoint.to_string();
    worker->endpoint = endpoint;
    if (ring_.contains(worker->name)) {
      throw std::runtime_error("fleet: duplicate worker endpoint " +
                               worker->name);
    }
    ring_.add(worker->name);
    workers_.push_back(std::move(worker));
  }
  server_.start();
  started_at_ = std::chrono::steady_clock::now();
  // The stats reply merges per-worker registry snapshots next to the
  // coordinator's own — which therefore must be live.
  telemetry::Registry::global().set_enabled(true);
  if (options_.sample_interval_ms > 0) {
    sampler_.emplace(series_, telemetry::Registry::global(),
                     options_.sample_interval_ms);
    sampler_->start();
  }
  for (const auto& worker : workers_) {
    telemetry::emit_event("worker_up", {{"endpoint", worker->name}});
  }
  if (options_.health_interval_seconds > 0) {
    health_thread_ = std::thread([this] { health_loop(); });
  }
  TS_LOG_INFO("fleet: coordinating %zu workers on %s", workers_.size(),
              bound_endpoint().c_str());
}

void FleetCoordinator::wait() { server_.wait(); }

void FleetCoordinator::stop() {
  if (sampler_.has_value()) sampler_->stop();
  server_.stop();
  {
    std::lock_guard<std::mutex> lock(health_mutex_);
    health_stop_ = true;
  }
  health_cv_.notify_all();
  if (health_thread_.joinable()) health_thread_.join();
  if (recorder_ != nullptr && !recorder_->write_file(options_.trace_out)) {
    TS_LOG_WARN("fleet: cannot write trace to %s",
                options_.trace_out.c_str());
  }
}

LineServer::Disposition FleetCoordinator::handle_line(
    const std::string& line, const LineServer::Sender& send) {
  service::Request request;
  std::string error;
  if (!service::parse_request(line, request, &error)) {
    server_.note_bad_request();
    if (!send(service::error_response_line("", error, "bad_request"))) {
      return LineServer::Disposition::kClose;
    }
    return LineServer::Disposition::kKeep;
  }
  if (request.op == service::Request::Op::kPing) {
    Json j = Json::object();
    j.set("type", "pong");
    if (!send(j.dump())) return LineServer::Disposition::kClose;
  } else if (request.op == service::Request::Op::kStats) {
    // Snapshot the worker table under the lock; the stats fan-out (network
    // I/O against every live worker) runs unlocked.
    struct WorkerView {
      std::string name;
      service::Endpoint endpoint;
      bool alive = false;
      std::size_t outstanding = 0;
    };
    std::vector<WorkerView> views;
    {
      std::lock_guard<std::mutex> lock(ring_mutex_);
      views.reserve(workers_.size());
      for (const auto& worker : workers_) {
        views.push_back({worker->name, worker->endpoint, worker->alive,
                         worker->outstanding});
      }
    }
    telemetry::Registry::Snapshot merged;
    Json workers = Json::array();
    for (const WorkerView& view : views) {
      Json w = Json::object();
      w.set("endpoint", view.name);
      w.set("alive", view.alive);
      w.set("outstanding", view.outstanding);
      std::optional<Json> stats =
          view.alive ? fetch_worker_stats(view.endpoint) : std::nullopt;
      // A worker can be ring-alive yet die between the snapshot above and
      // the probe: "responding" records whether *this* fan-out heard back,
      // so partial replies still sum correctly and the absent worker is
      // marked instead of silently merged as zero.
      w.set("responding", stats.has_value());
      if (stats.has_value()) {
        for (const char* field :
             {"pid", "uptime_s", "jobs_completed", "bad_requests"}) {
          const Json* f = stats->find(field);
          if (f != nullptr) w.set(field, *f);
        }
        const Json* snapshot_json = stats->find("telemetry");
        telemetry::Registry::Snapshot snapshot;
        if (snapshot_json != nullptr &&
            service::snapshot_from_json(*snapshot_json, snapshot, nullptr)) {
          // The merge is exact: counters summed by name, histogram buckets
          // added bucket-wise — "telemetry" below equals one snapshot of
          // all the workers' combined work.
          service::merge_snapshot(merged, snapshot);
          w.set("telemetry", *snapshot_json);
        }
      }
      workers.push_back(std::move(w));
    }
    Json j = Json::object();
    j.set("type", "stats");
    j.set("endpoint", bound_endpoint());
    j.set("role", "coordinator");
    j.set("pid", static_cast<std::int64_t>(::getpid()));
    const double uptime_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      started_at_)
            .count();
    j.set("uptime_s", uptime_s);
    j.set("uptime_ms", static_cast<std::uint64_t>(uptime_s * 1000.0));
    {
      Json sampler = Json::object();
      sampler.set("enabled", sampler_.has_value());
      sampler.set("interval_ms",
                  sampler_.has_value() ? sampler_->interval_ms() : 0.0);
      sampler.set("samples", series_.samples());
      sampler.set("last_age_ms",
                  sampler_.has_value()
                      ? static_cast<std::uint64_t>(
                            sampler_->last_sample_age_us() / 1000)
                      : 0);
      j.set("sampler", std::move(sampler));
    }
    j.set("jobs_completed", jobs_completed_.load(std::memory_order_relaxed));
    j.set("retry_after_sent",
          retry_after_sent_.load(std::memory_order_relaxed));
    j.set("reshards", reshards_.load(std::memory_order_relaxed));
    j.set("bad_requests", server_.bad_requests());
    {
      Json slo = Json::object();
      slo.set("job_ms", options_.slo_job_ms);
      slo.set("obligation_ms", options_.slo_obligation_ms);
      slo.set("job_breaches",
              slo_job_breaches_.load(std::memory_order_relaxed));
      slo.set("obligation_breaches",
              slo_obligation_breaches_.load(std::memory_order_relaxed));
      j.set("slo", std::move(slo));
    }
    j.set("workers", std::move(workers));
    j.set("telemetry", service::snapshot_to_json(merged));
    j.set("coordinator_telemetry",
          service::snapshot_to_json(telemetry::Registry::global().snapshot()));
    {
      std::lock_guard<std::mutex> lock(tail_mutex_);
      j.set("slowest", tail_to_json(tail_, 10));
    }
    j.set("series", service::series_to_json(series_));
    if (!send(j.dump())) return LineServer::Disposition::kClose;
  } else if (request.op == service::Request::Op::kMetrics) {
    Json j = Json::object();
    j.set("type", "metrics");
    j.set("content_type", "text/plain; version=0.0.4");
    j.set("body", metrics_body());
    if (!send(j.dump())) return LineServer::Disposition::kClose;
  } else if (request.op == service::Request::Op::kShutdown) {
    Json j = Json::object();
    j.set("type", "bye");
    send(j.dump());
    TS_LOG_INFO("fleet: shutdown requested");
    return LineServer::Disposition::kShutdown;
  } else {
    handle_audit(send, request.job);
  }
  return LineServer::Disposition::kKeep;
}

std::string FleetCoordinator::metrics_body() {
  struct WorkerView {
    std::string name;
    service::Endpoint endpoint;
    bool alive = false;
    std::size_t outstanding = 0;
  };
  std::vector<WorkerView> views;
  {
    std::lock_guard<std::mutex> lock(ring_mutex_);
    views.reserve(workers_.size());
    for (const auto& worker : workers_) {
      views.push_back({worker->name, worker->endpoint, worker->alive,
                       worker->outstanding});
    }
  }
  // Start from the coordinator's own snapshot and merge every responding
  // worker's in (exact: counters summed, histogram buckets added), so the
  // rendered families describe the fleet's combined work.
  telemetry::Registry::Snapshot merged =
      telemetry::Registry::global().snapshot();
  std::size_t live = 0;
  std::size_t responding = 0;
  std::size_t queue_depth = 0;
  std::vector<service::GaugeSample> gauges;
  for (const WorkerView& view : views) {
    if (view.alive) live++;
    queue_depth += view.outstanding;
    std::optional<Json> stats =
        view.alive ? fetch_worker_stats(view.endpoint) : std::nullopt;
    if (stats.has_value()) {
      responding++;
      const Json* snapshot_json = stats->find("telemetry");
      telemetry::Registry::Snapshot snapshot;
      if (snapshot_json != nullptr &&
          service::snapshot_from_json(*snapshot_json, snapshot, nullptr)) {
        service::merge_snapshot(merged, snapshot);
      }
    }
    const std::vector<std::pair<std::string, std::string>> label = {
        {"worker", view.name}};
    gauges.push_back(
        {"trojanscout_worker_up", view.alive ? 1.0 : 0.0, label});
    gauges.push_back({"trojanscout_worker_responding",
                      stats.has_value() ? 1.0 : 0.0, label});
    gauges.push_back({"trojanscout_worker_outstanding",
                      static_cast<double>(view.outstanding), label});
  }
  const double uptime_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started_at_)
          .count();
  gauges.push_back({"trojanscout_up", 1.0, {}});
  gauges.push_back({"trojanscout_uptime_seconds", uptime_s, {}});
  gauges.push_back(
      {"trojanscout_queue_depth", static_cast<double>(queue_depth), {}});
  gauges.push_back(
      {"trojanscout_workers_total", static_cast<double>(views.size()), {}});
  gauges.push_back(
      {"trojanscout_workers_live", static_cast<double>(live), {}});
  gauges.push_back({"trojanscout_workers_responding",
                    static_cast<double>(responding),
                    {}});
  if (sampler_.has_value()) {
    gauges.push_back({"trojanscout_sampler_last_sample_age_seconds",
                      static_cast<double>(sampler_->last_sample_age_us()) /
                          1e6,
                      {}});
  }
  const std::vector<service::ExtraCounter> extra = {
      {"fleet.jobs_completed",
       jobs_completed_.load(std::memory_order_relaxed)},
      {"fleet.retry_after_sent",
       retry_after_sent_.load(std::memory_order_relaxed)},
      {"fleet.reshards_done", reshards_.load(std::memory_order_relaxed)},
      {"fleet.bad_requests", server_.bad_requests()},
      {"fleet.slo_job_breaches",
       slo_job_breaches_.load(std::memory_order_relaxed)},
      {"fleet.slo_obligation_breaches",
       slo_obligation_breaches_.load(std::memory_order_relaxed)},
  };
  return service::to_prometheus_text(merged, extra, gauges);
}

void FleetCoordinator::handle_audit(const LineServer::Sender& send,
                                    const AuditJob& job) {
  const auto job_started = std::chrono::steady_clock::now();
  designs::Design design;
  const core::DetectorOptions detector_options = job.detector_options();
  try {
    design = service::load_job_design(job);
  } catch (const std::exception& e) {
    send(service::error_response_line(job.id, e.what()));
    return;
  }

  const core::TrojanDetector merger(design, detector_options);
  const std::vector<core::Obligation> obligations =
      merger.enumerate_obligations();
  const cache::ObligationKeyer keyer(design, detector_options,
                                     /*fail_fast=*/false);
  std::vector<std::string> keys;
  keys.reserve(obligations.size());
  for (const core::Obligation& obligation : obligations) {
    keys.push_back(keyer.key(obligation));
  }

  std::vector<std::size_t> requested;
  if (job.subset.empty()) {
    requested.resize(obligations.size());
    for (std::size_t i = 0; i < requested.size(); ++i) requested[i] = i;
  } else {
    for (const std::size_t index : job.subset) {
      if (index >= obligations.size()) {
        send(service::error_response_line(
            job.id, "subset index " + std::to_string(index) +
                        " out of range (job has " +
                        std::to_string(obligations.size()) + " obligations)"));
        return;
      }
      requested.push_back(index);
    }
  }

  // Trace plumbing: one job span plus one wrapper span per requested
  // obligation, all on this thread. Workers parent their engine spans
  // under the wrapper ids; the guard below closes the wrappers in reverse
  // begin order (Chrome duration events are a per-tid stack) on every exit
  // path, then rewrites the trace file so it is valid after each job.
  std::unique_ptr<JobTrace> trace;
  std::uint64_t job_span_id = 0;
  std::string job_span_name;
  const int job_tid =
      recorder_ != nullptr ? telemetry::TraceRecorder::thread_tid() : 0;
  if (recorder_ != nullptr) {
    trace = std::make_unique<JobTrace>();
    trace->trace_id =
        "fleet-" + std::to_string(
                       trace_seq_.fetch_add(1, std::memory_order_relaxed) + 1);
    job_span_name = "fleet:job:" + trace->trace_id;
    job_span_id = recorder_->next_id();
    recorder_->begin_event(job_span_name, job_span_id, 0, job_tid,
                           recorder_->now_us());
    trace->wrapper_ids.assign(obligations.size(), 0);
    for (const std::size_t index : requested) {
      const std::uint64_t wrapper = recorder_->next_id();
      trace->wrapper_ids[index] = wrapper;
      recorder_->begin_event(
          "fleet:shard:" + obligations[index].property_name(), wrapper,
          job_span_id, job_tid, recorder_->now_us());
    }
  }
  struct TraceCloser {
    FleetCoordinator* self;
    std::uint64_t* job_span_id;
    const std::string* job_span_name;
    int tid;
    const JobTrace* trace;
    const std::vector<std::size_t>* requested;
    const std::vector<core::Obligation>* obligations;
    ~TraceCloser() {
      if (trace == nullptr || *job_span_id == 0) return;
      telemetry::TraceRecorder& rec = *self->recorder_;
      for (auto it = requested->rbegin(); it != requested->rend(); ++it) {
        rec.end_event("fleet:shard:" + (*obligations)[*it].property_name(),
                      trace->wrapper_ids[*it], tid, rec.now_us());
      }
      rec.end_event(*job_span_name, *job_span_id, tid, rec.now_us());
      *job_span_id = 0;
      if (!rec.write_file(self->options_.trace_out)) {
        TS_LOG_WARN("fleet: cannot write trace to %s",
                    self->options_.trace_out.c_str());
      }
    }
  } trace_closer{this,       &job_span_id, &job_span_name, job_tid,
                 trace.get(), &requested,   &obligations};

  std::vector<ObSlot> slots(obligations.size());
  std::vector<std::size_t> pending = requested;
  bool accepted_sent = false;
  while (!pending.empty()) {
    // Shard the pending indices over the live ring. Membership and
    // outstanding counts are read under the ring lock; dispatch itself
    // runs unlocked.
    std::map<Worker*, std::vector<std::size_t>> groups;
    {
      std::lock_guard<std::mutex> lock(ring_mutex_);
      if (ring_.empty()) {
        send(service::error_response_line(
            job.id, "no live workers in the fleet", "no_workers"));
        return;
      }
      std::map<std::string, Worker*> by_name;
      for (const auto& worker : workers_) by_name[worker->name] = worker.get();
      for (const std::size_t index : pending) {
        groups[by_name.at(ring_.node_for(keys[index]))].push_back(index);
      }
      if (!accepted_sent) {
        // Admission control: refuse (never queue silently, never drop) a
        // job that would overrun any worker's obligation queue.
        for (const auto& [worker, group] : groups) {
          if (worker->outstanding + group.size() > options_.queue_capacity) {
            retry_after_sent_.fetch_add(1, std::memory_order_relaxed);
            TS_COUNTER_ADD("fleet.retry_after", 1);
            telemetry::emit_event(
                "retry_after",
                {{"job", job.id},
                 {"worker", worker->name},
                 {"outstanding", worker->outstanding},
                 {"requested", group.size()},
                 {"retry_after_ms", options_.retry_after_ms}});
            TS_LOG_WARN(
                "fleet: refusing job %s: worker %s at %zu/%zu outstanding "
                "(+%zu requested)",
                job.id.c_str(), worker->name.c_str(), worker->outstanding,
                options_.queue_capacity, group.size());
            send(service::retry_after_line(job.id, options_.retry_after_ms));
            return;
          }
        }
      }
      for (const auto& [worker, group] : groups) {
        worker->outstanding += group.size();
      }
    }
    if (!accepted_sent) {
      Json j = Json::object();
      j.set("type", "accepted");
      j.set("id", job.id);
      j.set("design", job.design_path);
      j.set("obligations", requested.size());
      if (!send(j.dump())) {
        std::lock_guard<std::mutex> lock(ring_mutex_);
        for (const auto& [worker, group] : groups) {
          worker->outstanding -= group.size();
        }
        return;
      }
      accepted_sent = true;
    }

    struct GroupOutcome {
      Worker* worker;
      std::vector<std::size_t> indices;
      GroupStatus status = GroupStatus::kDead;
      std::string error;
    };
    std::vector<GroupOutcome> outcomes;
    outcomes.reserve(groups.size());
    for (auto& [worker, group] : groups) {
      GroupOutcome outcome;
      outcome.worker = worker;
      outcome.indices = group;
      outcomes.push_back(std::move(outcome));
    }
    std::vector<std::thread> threads;
    threads.reserve(outcomes.size());
    for (GroupOutcome& outcome : outcomes) {
      threads.emplace_back([this, &outcome, &job, &slots, &trace] {
        outcome.status = dispatch_group(*outcome.worker, job, outcome.indices,
                                        slots, trace.get(), outcome.error);
        std::lock_guard<std::mutex> lock(ring_mutex_);
        outcome.worker->outstanding -= outcome.indices.size();
      });
    }
    for (std::thread& thread : threads) thread.join();

    pending.clear();
    for (const GroupOutcome& outcome : outcomes) {
      if (outcome.status == GroupStatus::kOk) continue;
      if (outcome.status == GroupStatus::kError) {
        // A structured worker error (bad design path, out-of-range subset)
        // would fail identically on every worker — abort, don't re-shard.
        send(service::error_response_line(job.id, outcome.error));
        return;
      }
      mark_dead(outcome.worker->name, outcome.error);
      for (const std::size_t index : outcome.indices) {
        if (!slots[index].ready) pending.push_back(index);
      }
    }
    if (!pending.empty()) {
      std::sort(pending.begin(), pending.end());
      reshards_.fetch_add(1, std::memory_order_relaxed);
      TS_COUNTER_ADD("fleet.reshard", 1);
      telemetry::emit_event("reshard", {{"job", job.id},
                                        {"obligations", pending.size()}});
      TS_LOG_WARN("fleet: re-sharding %zu obligations of job %s",
                  pending.size(), job.id.c_str());
    }
  }

  // Merge in enumeration order — the invariant DetectionReport::signature
  // depends on — and stream per-obligation lines like a single daemon.
  core::DetectionReport report;
  report.trust_bound_frames = detector_options.engine.max_frames;
  std::uint64_t counts[3] = {0, 0, 0};
  bool client_alive = accepted_sent;
  for (const std::size_t index : requested) {
    const ObSlot& slot = slots[index];
    const core::Obligation& obligation = obligations[index];
    counts[source_rank(slot.source)]++;
    merger.merge_obligation(report, obligation, slot.result);
    if (client_alive) {
      Json j = Json::object();
      j.set("type", "obligation");
      j.set("id", job.id);
      j.set("index", index);
      j.set("property", obligation.property_name());
      j.set("status", slot.result.status);
      j.set("violated", slot.result.violated);
      j.set("bound_reached", slot.result.bound_reached);
      j.set("frames_completed", slot.result.frames_completed);
      j.set("source", slot.source);
      client_alive = send(j.dump());
    }
  }

  jobs_completed_.fetch_add(1, std::memory_order_relaxed);
  // Registry twins for the windowed series (`top`'s throughput view).
  TS_COUNTER_ADD("fleet.jobs", 1);
  TS_COUNTER_ADD("fleet.obligations", requested.size());
  // SLO accounting: total/breach counter pairs make the burn rate a
  // per-window division in the sampled series; every breach is also a
  // structured event for offline correlation.
  const double job_elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - job_started)
          .count();
  if (options_.slo_job_ms > 0) {
    TS_COUNTER_ADD("slo.job_total", 1);
    if (job_elapsed_ms > options_.slo_job_ms) {
      slo_job_breaches_.fetch_add(1, std::memory_order_relaxed);
      TS_COUNTER_ADD("slo.job_breach", 1);
      telemetry::emit_event("slo_breach",
                            {{"job", job.id},
                             {"scope", "job"},
                             {"elapsed_ms", job_elapsed_ms},
                             {"slo_ms", options_.slo_job_ms}});
      TS_LOG_WARN("fleet: job %s breached its %gms SLO (%.1fms)",
                  job.id.c_str(), options_.slo_job_ms, job_elapsed_ms);
    }
  }
  if (!client_alive) return;
  Json j = Json::object();
  j.set("type", "report");
  j.set("id", job.id);
  j.set("trojan_found", report.trojan_found);
  j.set("trust_bound_frames", report.trust_bound_frames);
  j.set("summary", report.summary());
  j.set("signature", report.signature());
  j.set("cache_hits", counts[0]);
  j.set("shared", counts[2]);
  j.set("computed", counts[1]);
  if (trace != nullptr) {
    j.set("trace_id", trace->trace_id);
    std::lock_guard<std::mutex> lock(trace->mutex);
    // Tail attribution for the submitter: where this job's time went,
    // phase-attributed from the workers' own span records.
    j.set("slowest", tail_to_json(trace->slowest, 5));
  }
  send(j.dump());
}

FleetCoordinator::GroupStatus FleetCoordinator::dispatch_group(
    const Worker& worker, const AuditJob& base,
    const std::vector<std::size_t>& group, std::vector<ObSlot>& slots,
    JobTrace* trace, std::string& error) {
  int fd = -1;
  try {
    fd = service::connect_with_retry(worker.endpoint,
                                     options_.worker_connect);
  } catch (const std::exception& e) {
    error = e.what();
    return GroupStatus::kDead;
  }
  service::set_recv_timeout(fd, options_.worker_timeout_seconds);

  AuditJob shard = base;
  shard.subset = group;
  shard.wire_verdicts = true;
  if (trace != nullptr) {
    shard.trace_id = trace->trace_id;
    shard.parent_spans.reserve(group.size());
    for (const std::size_t index : group) {
      shard.parent_spans.push_back(trace->wrapper_ids[index]);
    }
  }
  // Per-obligation SLO latencies are measured from here: dispatch send to
  // each obligation line back — the whole path the submitter waits on
  // (worker queueing included), not just the engine run.
  const auto dispatch_started = std::chrono::steady_clock::now();
  // Clock handshake, leg 1: our recorder clock just before the request
  // goes out.
  const std::uint64_t t_send = recorder_ != nullptr ? recorder_->now_us() : 0;
  std::int64_t clock_offset_us = 0;
  bool have_offset = false;
  if (!service::send_frame(fd, service::audit_request_line(shard))) {
    ::close(fd);
    error = "send failed";
    return GroupStatus::kDead;
  }

  std::string buffer;
  std::string line;
  bool got_report = false;
  while (!got_report) {
    const service::ReadLineStatus status =
        service::read_frame(fd, buffer, line);
    if (status != service::ReadLineStatus::kLine) {
      ::close(fd);
      error = status == service::ReadLineStatus::kTimeout
                  ? "worker read timeout"
                  : "worker closed the connection";
      return GroupStatus::kDead;
    }
    Json j;
    std::string parse_error;
    if (!Json::parse(line, j, &parse_error) || !j.is_object()) {
      ::close(fd);
      error = "unparseable worker response: " + parse_error;
      return GroupStatus::kDead;
    }
    const Json* type = j.find("type");
    const std::string kind =
        type != nullptr && type->is_string() ? type->as_string() : "";
    if (kind == "accepted") {
      if (trace != nullptr && recorder_ != nullptr) {
        // Clock handshake, leg 2: the worker read its recorder clock
        // between our send and this receive. Estimating that read at the
        // round-trip midpoint gives the offset rebasing every worker
        // timestamp onto our clock (error bounded by half the RTT plus
        // half the worker's request-parse time — constant per dispatch,
        // so per-thread monotonicity survives).
        const Json* now_field = j.find("trace_now_us");
        if (now_field != nullptr && now_field->is_int()) {
          const std::uint64_t t_recv = recorder_->now_us();
          clock_offset_us =
              static_cast<std::int64_t>((t_send + t_recv) / 2) -
              now_field->as_int();
          have_offset = true;
        }
      }
      continue;
    }
    if (kind == "error") {
      const Json* message = j.find("message");
      error = message != nullptr && message->is_string()
                  ? message->as_string()
                  : "worker error";
      ::close(fd);
      return GroupStatus::kError;
    }
    if (kind == "obligation") {
      const Json* index_field = j.find("index");
      const Json* verdict = j.find("verdict");
      if (index_field == nullptr || !index_field->is_int() ||
          index_field->as_int() < 0 ||
          static_cast<std::size_t>(index_field->as_int()) >= slots.size() ||
          verdict == nullptr || !verdict->is_object()) {
        ::close(fd);
        error = "malformed obligation line from worker";
        return GroupStatus::kDead;
      }
      ObSlot& slot = slots[static_cast<std::size_t>(index_field->as_int())];
      std::string codec_error;
      if (!cache::verdict_from_json(verdict->dump(), slot.result, nullptr,
                                    &codec_error)) {
        ::close(fd);
        error = "bad wire verdict: " + codec_error;
        return GroupStatus::kDead;
      }
      const Json* source = j.find("source");
      slot.source = source != nullptr && source->is_string()
                        ? source->as_string()
                        : "computed";
      slot.ready = true;
      if (options_.slo_obligation_ms > 0) {
        const double elapsed_ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - dispatch_started)
                .count();
        TS_COUNTER_ADD("slo.obligation_total", 1);
        if (elapsed_ms > options_.slo_obligation_ms) {
          slo_obligation_breaches_.fetch_add(1, std::memory_order_relaxed);
          TS_COUNTER_ADD("slo.obligation_breach", 1);
          const Json* property = j.find("property");
          telemetry::emit_event(
              "slo_breach",
              {{"job", base.id},
               {"scope", "obligation"},
               {"property", property != nullptr && property->is_string()
                                ? property->as_string()
                                : ""},
               {"worker", worker.name},
               {"elapsed_ms", elapsed_ms},
               {"slo_ms", options_.slo_obligation_ms}});
        }
      }
      continue;
    }
    if (kind == "report") {
      got_report = true;
      if (trace != nullptr && have_offset) {
        const Json* spans = j.find("spans");
        std::vector<telemetry::TraceEvent> worker_events;
        std::string codec_error;
        if (spans != nullptr &&
            service::trace_events_from_json(*spans, worker_events,
                                            &codec_error)) {
          // Fold tail attribution from the worker-local records (their
          // clock, their ids — build_profile only needs self-consistency),
          // then renumber and rebase them into our recorder.
          note_tail(worker.name, worker_events, *trace);
          stitch_worker_events(worker_events, clock_offset_us, *trace);
        } else if (spans != nullptr) {
          TS_LOG_WARN("fleet: dropping spans from %s: %s",
                      worker.name.c_str(), codec_error.c_str());
        }
      }
    }
  }
  ::close(fd);
  for (const std::size_t index : group) {
    if (!slots[index].ready) {
      error = "worker report omitted obligations";
      return GroupStatus::kDead;
    }
  }
  return GroupStatus::kOk;
}

void FleetCoordinator::stitch_worker_events(
    const std::vector<telemetry::TraceEvent>& worker_events,
    std::int64_t clock_offset_us, const JobTrace& trace) {
  if (recorder_ == nullptr) return;
  std::unordered_set<std::uint64_t> wrapper_ids(trace.wrapper_ids.begin(),
                                                trace.wrapper_ids.end());
  wrapper_ids.erase(0u);
  // Worker span ids and tids are renumbered into our namespace: ids from
  // the shared process-global counter (collision-free with our own and
  // with other dispatches), tids from a dedicated range far above the
  // coordinator's dense thread ids. Rebasing by a per-dispatch constant
  // (clamped at 0) preserves each worker thread's timestamp order, so the
  // stitched file still passes per-tid monotonicity.
  std::unordered_map<std::uint64_t, std::uint64_t> id_map;
  std::unordered_map<int, int> tid_map;
  for (const telemetry::TraceEvent& e : worker_events) {
    const std::int64_t rebased =
        clock_offset_us + static_cast<std::int64_t>(e.ts_us);
    const std::uint64_t ts =
        rebased > 0 ? static_cast<std::uint64_t>(rebased) : 0;
    auto tid_it = tid_map.find(e.tid);
    if (tid_it == tid_map.end()) {
      tid_it = tid_map
                   .emplace(e.tid, stitch_tids_.fetch_add(
                                       1, std::memory_order_relaxed))
                   .first;
    }
    if (e.begin) {
      const std::uint64_t id = recorder_->next_id();
      id_map[e.span_id] = id;
      std::uint64_t parent = 0;
      const auto parent_it = id_map.find(e.parent_id);
      if (parent_it != id_map.end()) {
        parent = parent_it->second;  // worker-local parent: follow the map
      } else if (wrapper_ids.count(e.parent_id) != 0) {
        parent = e.parent_id;  // one of the wrapper ids we sent: keep it
      }
      recorder_->begin_event(e.name, id, parent, tid_it->second, ts);
    } else {
      const auto span_it = id_map.find(e.span_id);
      if (span_it == id_map.end()) continue;  // orphan end: begin not shipped
      recorder_->end_event(e.name, span_it->second, tid_it->second, ts);
    }
  }
}

void FleetCoordinator::note_tail(
    const std::string& worker_name,
    const std::vector<telemetry::TraceEvent>& worker_events, JobTrace& trace) {
  constexpr std::size_t kTailKeep = 32;
  const telemetry::Profile profile = telemetry::build_profile(worker_events);
  std::vector<TailEntry> entries;
  entries.reserve(profile.obligations.size());
  for (const telemetry::ObligationProfile& ob : profile.obligations) {
    if (ob.name == "(unattributed)") continue;
    TailEntry entry;
    entry.property = ob.name;
    entry.worker = worker_name;
    entry.total_us = ob.total_us;
    for (const telemetry::PhaseStats& phase : ob.phases) {
      if (phase.exclusive_us == 0) continue;
      entry.phases.emplace_back(phase.name, phase.exclusive_us);
    }
    entries.push_back(std::move(entry));
  }
  {
    std::lock_guard<std::mutex> lock(trace.mutex);
    trace.slowest.insert(trace.slowest.end(), entries.begin(), entries.end());
  }
  std::lock_guard<std::mutex> lock(tail_mutex_);
  tail_.insert(tail_.end(), entries.begin(), entries.end());
  std::stable_sort(tail_.begin(), tail_.end(),
                   [](const TailEntry& a, const TailEntry& b) {
                     return a.total_us > b.total_us;
                   });
  if (tail_.size() > kTailKeep) tail_.resize(kTailKeep);
}

proof::Json FleetCoordinator::tail_to_json(
    const std::vector<TailEntry>& entries, std::size_t limit) {
  std::vector<const TailEntry*> sorted;
  sorted.reserve(entries.size());
  for (const TailEntry& entry : entries) sorted.push_back(&entry);
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const TailEntry* a, const TailEntry* b) {
                     return a->total_us > b->total_us;
                   });
  if (sorted.size() > limit) sorted.resize(limit);
  Json out = Json::array();
  for (const TailEntry* entry : sorted) {
    Json row = Json::object();
    row.set("property", entry->property);
    row.set("worker", entry->worker);
    row.set("total_us", entry->total_us);
    Json phases = Json::object();
    for (const auto& [name, us] : entry->phases) phases.set(name, us);
    row.set("phases", std::move(phases));
    out.push_back(std::move(row));
  }
  return out;
}

void FleetCoordinator::mark_dead(const std::string& name,
                                 const std::string& reason) {
  std::lock_guard<std::mutex> lock(ring_mutex_);
  for (const auto& worker : workers_) {
    if (worker->name != name) continue;
    if (!worker->alive) return;
    worker->alive = false;
    ring_.remove(name);
    TS_COUNTER_ADD("fleet.worker_dead", 1);
    telemetry::emit_event("worker_down",
                          {{"endpoint", name}, {"reason", reason}});
    telemetry::emit_event(
        "worker_evicted",
        {{"endpoint", name}, {"live", ring_.node_count()}});
    TS_LOG_WARN("fleet: worker %s marked dead (%zu remain)", name.c_str(),
                ring_.node_count());
    return;
  }
}

bool FleetCoordinator::ping_worker(const service::Endpoint& endpoint) const {
  std::string error;
  const int fd = service::connect_endpoint(endpoint, &error);
  if (fd < 0) return false;
  service::set_recv_timeout(fd, 1.0);
  bool ok = false;
  if (service::send_frame(fd, service::control_request_line("ping"))) {
    std::string buffer;
    std::string line;
    if (service::read_frame(fd, buffer, line) ==
        service::ReadLineStatus::kLine) {
      Json j;
      std::string parse_error;
      if (Json::parse(line, j, &parse_error) && j.is_object()) {
        const Json* type = j.find("type");
        ok = type != nullptr && type->is_string() &&
             type->as_string() == "pong";
      }
    }
  }
  ::close(fd);
  return ok;
}

void FleetCoordinator::health_loop() {
  const auto interval = std::chrono::duration<double>(
      options_.health_interval_seconds);
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(health_mutex_);
      health_cv_.wait_for(lock, interval, [this] { return health_stop_; });
      if (health_stop_) return;
    }
    for (const auto& worker : workers_) {
      const bool ok = ping_worker(worker->endpoint);
      if (!ok) {
        mark_dead(worker->name, "health ping failed");
        continue;
      }
      std::lock_guard<std::mutex> lock(ring_mutex_);
      if (!worker->alive) {
        worker->alive = true;
        ring_.add(worker->name);
        TS_COUNTER_ADD("fleet.worker_revived", 1);
        telemetry::emit_event(
            "worker_rejoined",
            {{"endpoint", worker->name}, {"live", ring_.node_count()}});
        TS_LOG_INFO("fleet: worker %s revived (%zu live)",
                    worker->name.c_str(), ring_.node_count());
      }
    }
  }
}

}  // namespace trojanscout::fleet
