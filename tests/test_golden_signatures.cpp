// Golden-signature regression test: pins the FNV-1a hash of
// DetectionReport::signature() for every catalog design under a fixed
// detector configuration. The signature is the canonical text of every
// deterministic field of the audit (run order, statuses, witness bits,
// findings, trust bound), so any behavioural drift in the monitors, the
// engines, the solver, or the merge logic shows up here as a hash change.
//
// If a pin fails after an *intentional* behaviour change, rerun with
// --gtest_also_run_disabled_tests --gtest_filter='*PrintCurrent*' to
// harvest the new values, and update the table with the change that
// justified it.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>

#include "core/detector.hpp"
#include "designs/catalog.hpp"

namespace trojanscout::core {
namespace {

DetectorOptions pinned_configuration(std::size_t frames) {
  DetectorOptions options;
  options.engine.kind = EngineKind::kBmc;
  options.engine.max_frames = frames;
  options.engine.time_limit_seconds = 120.0;
  options.scan_pseudo_critical = true;
  options.check_bypass = true;
  return options;
}

std::uint64_t fnv1a(const std::string& text) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : text) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

struct GoldenEntry {
  const char* name;        // catalog name, or "clean:<family>"
  std::uint64_t signature_hash;
};

// Harvested from the pinned configuration (frames: aes=4, others=8;
// risc_trigger_count=4). Do not update without understanding *why* the
// audit behaviour changed.
//
// The three RISC Trojans share clean:risc's hash on purpose: their
// 4-instruction trigger needs ~40 frames to complete (see
// test_witness_replay's RISC-T100 BMC/40 case), so at the pinned 8-frame
// bound the payload never fires and the audit transcript is identical to
// the clean core's — which is exactly the bounded-trust story the paper
// tells, and worth pinning.
constexpr GoldenEntry kGolden[] = {
    {"MC8051-T400", 0x32b36df706499599ull},
    {"MC8051-T700", 0x5063322226d26250ull},
    {"MC8051-T800", 0xe297e258d552b376ull},
    {"RISC-T100", 0x8f86abcbf90b85d8ull},
    {"RISC-T300", 0x8f86abcbf90b85d8ull},
    {"RISC-T400", 0x8f86abcbf90b85d8ull},
    {"AES-T700", 0x9f74caee7bab5523ull},
    {"AES-T800", 0x75e356d64727d2ceull},
    {"AES-T1200", 0xcd79d5461f21c3e0ull},
    {"clean:mc8051", 0xf701dc0707343562ull},
    {"clean:risc", 0x8f86abcbf90b85d8ull},
    {"clean:aes", 0xd35f792f2ad2792full},
    {"clean:router", 0x49a46b5b5f08e6d4ull},
};

std::size_t frames_for(const std::string& family) {
  return family == "aes" ? 4 : 8;
}

std::string run_signature(const designs::Design& design, std::size_t frames) {
  TrojanDetector detector(design, pinned_configuration(frames));
  return detector.run().signature();
}

const GoldenEntry* find_entry(const std::string& name) {
  for (const auto& entry : kGolden) {
    if (name == entry.name) return &entry;
  }
  return nullptr;
}

TEST(GoldenSignatures, EveryCatalogTrojanMatchesItsPin) {
  designs::CatalogOptions catalog_options;
  catalog_options.risc_trigger_count = 4;
  std::size_t covered = 0;
  for (const auto& info : designs::trojan_benchmarks(catalog_options)) {
    SCOPED_TRACE(info.name);
    const GoldenEntry* entry = find_entry(info.name);
    ASSERT_NE(entry, nullptr)
        << info.name << " was added to the catalog but has no golden pin";
    const designs::Design design = info.build(/*payload_enabled=*/true);
    const std::uint64_t actual =
        fnv1a(run_signature(design, frames_for(info.family)));
    EXPECT_EQ(actual, entry->signature_hash)
        << info.name << ": signature hash is 0x" << std::hex << actual;
    ++covered;
  }
  EXPECT_EQ(covered, 9u) << "catalog size changed; extend the golden table";
}

TEST(GoldenSignatures, EveryCleanFamilyMatchesItsPin) {
  for (const char* family : {"mc8051", "risc", "aes", "router"}) {
    SCOPED_TRACE(family);
    const GoldenEntry* entry = find_entry(std::string("clean:") + family);
    ASSERT_NE(entry, nullptr);
    const designs::Design design = designs::build_clean(family);
    const std::uint64_t actual =
        fnv1a(run_signature(design, frames_for(family)));
    EXPECT_EQ(actual, entry->signature_hash)
        << family << ": signature hash is 0x" << std::hex << actual;
  }
}

// Harvest helper: prints the full golden table for the current build.
TEST(GoldenSignatures, DISABLED_PrintCurrentTable) {
  designs::CatalogOptions catalog_options;
  catalog_options.risc_trigger_count = 4;
  for (const auto& info : designs::trojan_benchmarks(catalog_options)) {
    const designs::Design design = info.build(true);
    std::printf("    {\"%s\", 0x%016llxull},\n", info.name.c_str(),
                static_cast<unsigned long long>(
                    fnv1a(run_signature(design, frames_for(info.family)))));
  }
  for (const char* family : {"mc8051", "risc", "aes", "router"}) {
    const designs::Design design = designs::build_clean(family);
    std::printf("    {\"clean:%s\", 0x%016llxull},\n", family,
                static_cast<unsigned long long>(
                    fnv1a(run_signature(design, frames_for(family)))));
  }
}

}  // namespace
}  // namespace trojanscout::core
