// CDCL solver tests: hand-crafted formulas, incremental assumptions, and a
// parameterized randomized cross-check against brute-force enumeration.
#include <gtest/gtest.h>

#include <sstream>

#include "sat/dimacs.hpp"
#include "sat/solver.hpp"
#include "util/rng.hpp"

namespace trojanscout::sat {
namespace {

TEST(SatSolver, EmptyFormulaIsSat) {
  Solver solver;
  EXPECT_EQ(solver.solve(), SolveResult::kSat);
}

TEST(SatSolver, UnitClauseForcesModel) {
  Solver solver;
  const Var v = solver.new_var();
  ASSERT_TRUE(solver.add_clause(Lit(v, false)));
  ASSERT_EQ(solver.solve(), SolveResult::kSat);
  EXPECT_TRUE(solver.model_value(v));
}

TEST(SatSolver, ContradictoryUnitsAreUnsat) {
  Solver solver;
  const Var v = solver.new_var();
  solver.add_clause(Lit(v, false));
  EXPECT_FALSE(solver.add_clause(Lit(v, true)));
  EXPECT_EQ(solver.solve(), SolveResult::kUnsat);
}

TEST(SatSolver, SimpleImplicationChain) {
  // (a) & (~a | b) & (~b | c)  =>  model with a=b=c=1.
  Solver solver;
  const Var a = solver.new_var();
  const Var b = solver.new_var();
  const Var c = solver.new_var();
  solver.add_clause(Lit(a, false));
  solver.add_clause(Lit(a, true), Lit(b, false));
  solver.add_clause(Lit(b, true), Lit(c, false));
  ASSERT_EQ(solver.solve(), SolveResult::kSat);
  EXPECT_TRUE(solver.model_value(a));
  EXPECT_TRUE(solver.model_value(b));
  EXPECT_TRUE(solver.model_value(c));
}

TEST(SatSolver, PigeonHole3Into2IsUnsat) {
  // 3 pigeons, 2 holes: x[p][h] says pigeon p in hole h.
  Solver solver;
  Var x[3][2];
  for (auto& row : x) {
    for (auto& v : row) v = solver.new_var();
  }
  for (int p = 0; p < 3; ++p) {
    solver.add_clause(Lit(x[p][0], false), Lit(x[p][1], false));
  }
  for (int h = 0; h < 2; ++h) {
    for (int p1 = 0; p1 < 3; ++p1) {
      for (int p2 = p1 + 1; p2 < 3; ++p2) {
        solver.add_clause(Lit(x[p1][h], true), Lit(x[p2][h], true));
      }
    }
  }
  EXPECT_EQ(solver.solve(), SolveResult::kUnsat);
}

TEST(SatSolver, AssumptionsRestrictModels) {
  Solver solver;
  const Var a = solver.new_var();
  const Var b = solver.new_var();
  solver.add_clause(Lit(a, false), Lit(b, false));  // a | b
  ASSERT_EQ(solver.solve({Lit(a, true)}), SolveResult::kSat);
  EXPECT_FALSE(solver.model_value(a));
  EXPECT_TRUE(solver.model_value(b));
  // Solver remains reusable with contradictory assumptions.
  solver.add_clause(Lit(b, true));  // now b must be false => a must be true
  EXPECT_EQ(solver.solve({Lit(a, true)}), SolveResult::kUnsat);
  ASSERT_EQ(solver.solve(), SolveResult::kSat);
  EXPECT_TRUE(solver.model_value(a));
}

TEST(SatSolver, ConflictLimitYieldsUnknown) {
  // A hard instance (pigeonhole 6 into 5) with a 1-conflict budget.
  Solver solver;
  constexpr int kPigeons = 6;
  constexpr int kHoles = 5;
  std::vector<std::vector<Var>> x(kPigeons, std::vector<Var>(kHoles));
  for (auto& row : x) {
    for (auto& v : row) v = solver.new_var();
  }
  for (int p = 0; p < kPigeons; ++p) {
    Clause c;
    for (int h = 0; h < kHoles; ++h) c.emplace_back(x[p][h], false);
    solver.add_clause(c);
  }
  for (int h = 0; h < kHoles; ++h) {
    for (int p1 = 0; p1 < kPigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < kPigeons; ++p2) {
        solver.add_clause(Lit(x[p1][h], true), Lit(x[p2][h], true));
      }
    }
  }
  Budget budget;
  budget.conflict_limit = 1;
  EXPECT_EQ(solver.solve({}, budget), SolveResult::kUnknown);
  // And solvable to completion afterwards.
  EXPECT_EQ(solver.solve(), SolveResult::kUnsat);
}

// ---- randomized cross-check -------------------------------------------------

bool brute_force_sat(int num_vars, const std::vector<Clause>& clauses) {
  for (unsigned assignment = 0; assignment < (1u << num_vars); ++assignment) {
    bool all = true;
    for (const auto& clause : clauses) {
      bool any = false;
      for (const Lit lit : clause) {
        const bool value = ((assignment >> lit.var()) & 1u) != 0;
        if (value != lit.sign()) {
          any = true;
          break;
        }
      }
      if (!any) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }
  return false;
}

struct RandomCnfParams {
  int num_vars;
  int num_clauses;
  int clause_width;
  std::uint64_t seed;
};

class SatRandomCross : public ::testing::TestWithParam<RandomCnfParams> {};

TEST_P(SatRandomCross, MatchesBruteForce) {
  const auto params = GetParam();
  util::Xoshiro256 rng(params.seed);
  for (int round = 0; round < 30; ++round) {
    Solver solver;
    std::vector<Clause> clauses;
    for (int v = 0; v < params.num_vars; ++v) solver.new_var();
    for (int c = 0; c < params.num_clauses; ++c) {
      Clause clause;
      for (int k = 0; k < params.clause_width; ++k) {
        const Var v =
            static_cast<Var>(rng.next_below(params.num_vars));
        clause.emplace_back(v, rng.next_bool());
      }
      clauses.push_back(clause);
      solver.add_clause(clause);
    }
    const bool expected = brute_force_sat(params.num_vars, clauses);
    const SolveResult got = solver.solve();
    ASSERT_EQ(got, expected ? SolveResult::kSat : SolveResult::kUnsat)
        << "round " << round;
    if (got == SolveResult::kSat) {
      // The returned model must actually satisfy every clause.
      for (const auto& clause : clauses) {
        bool any = false;
        for (const Lit lit : clause) any = any || solver.model_value(lit);
        ASSERT_TRUE(any);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Mixes, SatRandomCross,
    ::testing::Values(RandomCnfParams{5, 15, 2, 11},
                      RandomCnfParams{8, 34, 3, 22},
                      RandomCnfParams{10, 43, 3, 33},
                      RandomCnfParams{12, 52, 3, 44},
                      RandomCnfParams{9, 25, 4, 55},
                      RandomCnfParams{14, 60, 3, 66},
                      RandomCnfParams{6, 40, 2, 77},
                      RandomCnfParams{16, 69, 3, 88}));

// Ablation configurations must stay correct (only speed may change).
class SatAblationCross : public ::testing::TestWithParam<int> {};

TEST_P(SatAblationCross, AblatedSolversAgreeWithBruteForce) {
  SolverOptions options;
  if (GetParam() == 0) options.enable_learning = false;
  if (GetParam() == 1) options.enable_vsids = false;
  if (GetParam() == 2) options.enable_phase_saving = false;
  util::Xoshiro256 rng(1234 + static_cast<std::uint64_t>(GetParam()));
  for (int round = 0; round < 25; ++round) {
    Solver solver(options);
    std::vector<Clause> clauses;
    for (int v = 0; v < 10; ++v) solver.new_var();
    for (int c = 0; c < 45; ++c) {
      Clause clause;
      for (int k = 0; k < 3; ++k) {
        clause.emplace_back(static_cast<Var>(rng.next_below(10)),
                            rng.next_bool());
      }
      clauses.push_back(clause);
      solver.add_clause(clause);
    }
    const bool expected = brute_force_sat(10, clauses);
    ASSERT_EQ(solver.solve(),
              expected ? SolveResult::kSat : SolveResult::kUnsat);
  }
}

INSTANTIATE_TEST_SUITE_P(Features, SatAblationCross, ::testing::Values(0, 1, 2));

TEST(Dimacs, RoundTrip) {
  CnfFormula formula;
  formula.num_vars = 3;
  formula.clauses = {{Lit(0, false), Lit(1, true)}, {Lit(2, false)}};
  std::ostringstream os;
  write_dimacs(os, formula);
  const CnfFormula parsed = parse_dimacs_string(os.str());
  EXPECT_EQ(parsed.num_vars, 3);
  ASSERT_EQ(parsed.clauses.size(), 2u);
  EXPECT_EQ(parsed.clauses[0], formula.clauses[0]);
  EXPECT_EQ(parsed.clauses[1], formula.clauses[1]);
}

TEST(Dimacs, RandomizedRoundTripPreservesEveryClause) {
  util::Xoshiro256 rng(20150607);
  for (int round = 0; round < 25; ++round) {
    CnfFormula formula;
    formula.num_vars = 1 + static_cast<int>(rng.next_below(40));
    const std::size_t n_clauses = rng.next_below(30);
    for (std::size_t c = 0; c < n_clauses; ++c) {
      Clause clause;
      const std::size_t len = 1 + rng.next_below(5);
      for (std::size_t k = 0; k < len; ++k) {
        clause.emplace_back(
            static_cast<Var>(rng.next_below(
                static_cast<std::uint64_t>(formula.num_vars))),
            rng.next_bool());
      }
      formula.clauses.push_back(std::move(clause));
    }
    std::ostringstream os;
    write_dimacs(os, formula);
    const CnfFormula parsed = parse_dimacs_string(os.str());
    EXPECT_EQ(parsed.num_vars, formula.num_vars) << "round " << round;
    ASSERT_EQ(parsed.clauses.size(), formula.clauses.size())
        << "round " << round;
    for (std::size_t c = 0; c < parsed.clauses.size(); ++c) {
      EXPECT_EQ(parsed.clauses[c], formula.clauses[c])
          << "round " << round << " clause " << c;
    }
  }
}

TEST(Dimacs, RejectsMalformedInput) {
  EXPECT_THROW(parse_dimacs_string("p cnf x y\n"), std::runtime_error);
  EXPECT_THROW(parse_dimacs_string("p cnf 2 1\n1 2\n"), std::runtime_error);
  EXPECT_THROW(parse_dimacs_string(""), std::runtime_error);
}

}  // namespace
}  // namespace trojanscout::sat
