// Router family (extension): behaviour, Trojan semantics, detection by both
// engines, Section 4 attacks, and baseline blindness.
#include <gtest/gtest.h>

#include "baselines/fanci.hpp"
#include "baselines/veritrust.hpp"
#include "baselines/workloads.hpp"
#include "core/detector.hpp"
#include "designs/attacks.hpp"
#include "designs/router.hpp"
#include "sim/simulator.hpp"

namespace trojanscout::designs {
namespace {

class RouterDriver {
 public:
  explicit RouterDriver(const Design& design) : simulator_(design.nl) {
    simulator_.set_input_port("reset", 1);
    simulator_.step();
    simulator_.set_input_port("reset", 0);
  }
  void idle() {
    simulator_.set_input_port("flit_valid", 0);
    simulator_.step();
  }
  void header(unsigned dest, unsigned payload = 0) {
    simulator_.set_input_port("flit_valid", 1);
    simulator_.set_input_port(
        "flit_in", (static_cast<std::uint64_t>(dest) << 14) | (1u << 13) |
                       (payload & 0x1FFF));
    simulator_.step();
  }
  void body(unsigned payload) {
    simulator_.set_input_port("flit_valid", 1);
    simulator_.set_input_port("flit_in", payload & 0x1FFF);
    simulator_.step();
  }
  std::uint64_t out_valid() { return simulator_.read_output("out_valid"); }
  std::uint64_t out_data() { return simulator_.read_output("out_data"); }
  std::uint64_t dest() { return simulator_.read_register("dest_reg"); }

 private:
  sim::Simulator simulator_;
};

TEST(Router, RoutesBodyFlitsToTheLatchedDestination) {
  const Design d = build_router({});
  RouterDriver r(d);
  r.header(2);
  r.body(0x123);
  EXPECT_EQ(r.dest(), 2u);
  EXPECT_EQ(r.out_data(), 0x123u);
  EXPECT_EQ(r.out_valid(), 1u << 2);
  r.header(0);
  r.body(0x456);
  EXPECT_EQ(r.out_valid(), 1u << 0);
  EXPECT_EQ(r.out_data(), 0x456u);
}

TEST(Router, IdleCyclesDropTheValidLines) {
  const Design d = build_router({});
  RouterDriver r(d);
  r.header(1);
  r.body(0x7F);
  EXPECT_NE(r.out_valid(), 0u);
  r.idle();
  EXPECT_EQ(r.out_valid(), 0u);
}

TEST(Router, MisrouteTrojanDivertsAfterTheMagicTriple) {
  RouterOptions options;
  options.trojan = RouterTrojan::kMisroute;
  const Design d = build_router(options);
  RouterDriver r(d);
  r.header(1);
  r.body(0x003A);  // stage 1
  r.body(0x015B);  // stage 2 (only the low byte matters)
  EXPECT_EQ(r.dest(), 1u) << "not yet triggered";
  r.body(0x007C);  // fires (registered)
  r.body(0x0001);
  EXPECT_EQ(r.dest(), 3u) << "diverted to the attacker port";
  r.header(0);  // even a new header cannot reclaim the destination
  r.body(0x0002);
  EXPECT_EQ(r.dest(), 3u);
  EXPECT_EQ(r.out_valid(), 1u << 3);
}

TEST(Router, NearMissSequencesDoNotTrigger) {
  RouterOptions options;
  options.trojan = RouterTrojan::kMisroute;
  const Design d = build_router(options);
  RouterDriver r(d);
  r.header(2);
  r.body(0x003A);
  r.body(0x005A);  // wrong second byte
  r.body(0x005B);  // not preceded by the first magic
  r.body(0x007C);  // third magic without the prefix
  r.body(0x0003);
  EXPECT_EQ(r.dest(), 2u);
}

struct RouterEngineCase {
  core::EngineKind engine;
};

class RouterDetection
    : public ::testing::TestWithParam<RouterEngineCase> {};

TEST_P(RouterDetection, BothEnginesRecoverTheMagicPair) {
  RouterOptions options;
  options.trojan = RouterTrojan::kMisroute;
  const Design design = build_router(options);
  core::DetectorOptions detector_options;
  detector_options.engine.kind = GetParam().engine;
  detector_options.engine.max_frames = 16;
  if (GetParam().engine == core::EngineKind::kAtpg) {
    for (std::uint64_t seed = 0; seed < 8; ++seed) {
      detector_options.engine.atpg_stimulus.push_back(
          baselines::generate_workload(design.nl, "router", 16, seed));
    }
  }
  core::TrojanDetector detector(design, detector_options);
  const core::CheckResult result = detector.check_corruption("dest_reg");
  ASSERT_TRUE(result.violated) << result.status;
  // The witness must contain the consecutive magic body payloads.
  const auto& witness = *result.witness;
  bool found_triple = false;
  for (std::size_t t = 0; t + 2 < witness.frames.size(); ++t) {
    const auto b0 = witness.port_value(design.nl, "flit_in", t) & 0xFF;
    const auto b1 = witness.port_value(design.nl, "flit_in", t + 1) & 0xFF;
    const auto b2 = witness.port_value(design.nl, "flit_in", t + 2) & 0xFF;
    if (b0 == 0x3A && b1 == 0x5B && b2 == 0x7C) found_triple = true;
  }
  EXPECT_TRUE(found_triple);
}

INSTANTIATE_TEST_SUITE_P(Engines, RouterDetection,
                         ::testing::Values(RouterEngineCase{core::EngineKind::kBmc},
                                           RouterEngineCase{core::EngineKind::kAtpg}));

TEST(Router, CleanRouterCertifiesAndProvesInductively) {
  const Design design = build_router({});
  core::DetectorOptions options;
  options.engine.max_frames = 16;
  core::TrojanDetector detector(design, options);
  EXPECT_FALSE(detector.check_corruption("dest_reg").violated);
}

TEST(Router, BypassAttackCaughtByEq4AndCleanPasses) {
  RouterOptions options;
  options.trojan = RouterTrojan::kMisroute;
  options.payload_enabled = false;
  Design attacked = build_router(options);
  plant_bypass(attacked, "dest_reg");
  core::DetectorOptions detector_options;
  detector_options.engine.max_frames = 24;
  core::TrojanDetector detector(attacked, detector_options);
  EXPECT_TRUE(detector.check_bypass("dest_reg").violated);

  const Design clean = build_router({});
  core::TrojanDetector clean_detector(clean, detector_options);
  const auto clean_result = clean_detector.check_bypass("dest_reg");
  EXPECT_FALSE(clean_result.violated);
}

TEST(Router, BaselinesMissTheHardenedMisroute) {
  RouterOptions options;
  options.trojan = RouterTrojan::kMisroute;
  const Design design = build_router(options);
  const auto fanci = baselines::run_fanci(design.nl);
  for (const auto& suspect : fanci.suspects) {
    EXPECT_FALSE(design.is_trojan_gate(suspect.signal));
  }
  const auto workload =
      baselines::generate_workload(design.nl, "router", 20000, 42);
  const auto veritrust = baselines::run_veritrust(design.nl, workload);
  for (const auto& suspect : veritrust.suspects) {
    EXPECT_FALSE(design.is_trojan_gate(suspect.signal));
  }
}

}  // namespace
}  // namespace trojanscout::designs
