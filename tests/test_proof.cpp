// Proof subsystem unit tests: binary-DRAT encode/decode round trips, the
// solver's ProofListener emission contract (every UNSAT answer comes with a
// checker-accepted clause proof), and the DratChecker's rejection of
// hand-mutated proofs — a dropped core lemma, a forged deletion, and an
// empty proof for a formula unit propagation alone cannot refute.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "proof/checker.hpp"
#include "proof/drat.hpp"
#include "sat/solver.hpp"
#include "util/rng.hpp"

namespace trojanscout::proof {
namespace {

using sat::Clause;
using sat::Lit;
using sat::SolveResult;
using sat::Solver;
using sat::Var;

Lit pos(Var v) { return Lit(v, false); }
Lit neg(Var v) { return Lit(v, true); }

// ---- binary DRAT encoding -------------------------------------------------

TEST(Drat, RecordRoundTripIncludingMultiByteVarints) {
  util::Xoshiro256 rng(42);
  std::vector<DratStep> expected;
  std::vector<std::uint8_t> stream;
  for (int i = 0; i < 200; ++i) {
    DratStep step;
    step.is_delete = rng.next_bool();
    const std::size_t len = rng.next_below(6);
    for (std::size_t k = 0; k < len; ++k) {
      // Vars up to ~2^20 force 2- and 3-byte varints for the literal codes.
      step.clause.emplace_back(static_cast<Var>(rng.next_below(1u << 20)),
                               rng.next_bool());
    }
    append_drat_record(stream, step.is_delete ? kDratDelete : kDratAdd,
                       step.clause);
    expected.push_back(std::move(step));
  }
  std::vector<DratStep> parsed;
  std::string error;
  ASSERT_TRUE(parse_drat(stream.data(), stream.size(), parsed, &error))
      << error;
  ASSERT_EQ(parsed.size(), expected.size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_EQ(parsed[i].is_delete, expected[i].is_delete) << "record " << i;
    EXPECT_EQ(parsed[i].clause, expected[i].clause) << "record " << i;
  }
}

TEST(Drat, ParserRejectsMalformedStreams) {
  std::vector<DratStep> steps;
  std::string error;

  const std::uint8_t unknown_tag[] = {0x62, 0x00};
  EXPECT_FALSE(parse_drat(unknown_tag, sizeof(unknown_tag), steps, &error));
  EXPECT_NE(error.find("unknown record tag"), std::string::npos);

  const std::uint8_t truncated_record[] = {kDratAdd, 0x04};
  EXPECT_FALSE(
      parse_drat(truncated_record, sizeof(truncated_record), steps, &error));

  const std::uint8_t truncated_varint[] = {kDratAdd, 0x84};
  EXPECT_FALSE(
      parse_drat(truncated_varint, sizeof(truncated_varint), steps, &error));

  // Literal code 1 maps to no variable.
  const std::uint8_t bad_code[] = {kDratAdd, 0x01, 0x00};
  EXPECT_FALSE(parse_drat(bad_code, sizeof(bad_code), steps, &error));
}

// ---- checker on handcrafted proofs ----------------------------------------

// (a|b)(a|~b)(~a|b)(~a|~b): UNSAT, but unit propagation alone derives
// nothing — the proof must supply the intermediate lemma.
std::vector<Clause> contradiction_square() {
  return {{pos(0), pos(1)},
          {pos(0), neg(1)},
          {neg(0), pos(1)},
          {neg(0), neg(1)}};
}

std::vector<std::uint8_t> make_proof(
    const std::vector<std::pair<std::uint8_t, Clause>>& records) {
  std::vector<std::uint8_t> out;
  for (const auto& [tag, clause] : records) append_drat_record(out, tag, clause);
  return out;
}

TEST(DratChecker, AcceptsAValidLemmaChain) {
  const auto proof =
      make_proof({{kDratAdd, {pos(0)}}, {kDratAdd, {}}});
  DratChecker checker;
  std::string error;
  EXPECT_TRUE(checker.check(contradiction_square(), proof, &error)) << error;
  EXPECT_EQ(checker.stats().proof_additions, 2u);
  EXPECT_EQ(checker.stats().checked_additions +
                checker.stats().skipped_additions,
            1u);  // the explicit empty clause ends the stream
}

TEST(DratChecker, RejectsWhenTheCoreLemmaIsDropped) {
  // Same formula, same final empty clause — but the lemma (a) that made it
  // RUP has been removed from the stream.
  const auto proof = make_proof({{kDratAdd, {}}});
  DratChecker checker;
  std::string error;
  EXPECT_FALSE(checker.check(contradiction_square(), proof, &error));
  EXPECT_NE(error.find("not RUP"), std::string::npos) << error;
}

TEST(DratChecker, RejectsAnEmptyProofForANonPropagatingFormula) {
  DratChecker checker;
  std::string error;
  EXPECT_FALSE(checker.check(contradiction_square(), nullptr, 0, &error));
  EXPECT_NE(error.find("not RUP"), std::string::npos) << error;
}

TEST(DratChecker, RejectsAForgedDeletionOfAnAbsentClause) {
  // Deleting a clause that was never in the database is a forgery, not a
  // no-op: accepting it would let a prover silently diverge from the
  // formula the certificate claims to be about.
  const auto proof = make_proof({{kDratDelete, {pos(0), pos(2)}},
                                 {kDratAdd, {pos(0)}},
                                 {kDratAdd, {}}});
  DratChecker checker;
  std::string error;
  EXPECT_FALSE(checker.check(contradiction_square(), proof, &error));
  EXPECT_NE(error.find("deletes a clause not in the database"),
            std::string::npos)
      << error;
}

TEST(DratChecker, RejectsWhenADeletionInvalidatesALaterLemma) {
  // Deleting (a|b) first makes the lemma (a) non-RUP at its position.
  const auto proof = make_proof({{kDratDelete, {pos(0), pos(1)}},
                                 {kDratAdd, {pos(0)}},
                                 {kDratAdd, {}}});
  DratChecker checker;
  std::string error;
  EXPECT_FALSE(checker.check(contradiction_square(), proof, &error));
  EXPECT_NE(error.find("not RUP"), std::string::npos) << error;
}

TEST(DratChecker, DeletionMatchesByContentNotLiteralOrder) {
  // The solver's propagation reorders watched literals in place, so its
  // deletion records may list a clause in a different order than it was
  // added. Deleting the (by now useless) input (a|b) as (b|a) must resolve.
  const auto proof = make_proof({{kDratAdd, {pos(0)}},
                                 {kDratDelete, {pos(1), pos(0)}},
                                 {kDratAdd, {}}});
  DratChecker checker;
  std::string error;
  EXPECT_TRUE(checker.check(contradiction_square(), proof, &error)) << error;
  EXPECT_EQ(checker.stats().proof_deletions, 1u);
}

TEST(DratChecker, AcceptsAPurelyPropagatingFormulaWithNoProof) {
  // (a)(~a|b)(~b): empty clause is RUP with zero proof steps.
  const std::vector<Clause> formula = {{pos(0)}, {neg(0), pos(1)}, {neg(1)}};
  DratChecker checker;
  std::string error;
  EXPECT_TRUE(checker.check(formula, nullptr, 0, &error)) << error;
  EXPECT_EQ(checker.stats().checked_additions, 0u);
}

TEST(DratChecker, HandlesTautologyAndDuplicateLiterals) {
  // Inputs with duplicate and opposing literals must not break propagation
  // or the RUP check (the formula below is still UNSAT: square + noise).
  std::vector<Clause> formula = contradiction_square();
  formula.push_back({pos(2), pos(2)});
  formula.push_back({pos(3), neg(3)});
  const auto proof = make_proof({{kDratAdd, {pos(0)}}, {kDratAdd, {}}});
  DratChecker checker;
  std::string error;
  EXPECT_TRUE(checker.check(formula, proof, &error)) << error;
}

// ---- solver emission contract ---------------------------------------------

bool brute_force_unsat(int num_vars, const std::vector<Clause>& clauses) {
  for (std::uint64_t assignment = 0; assignment < (1ull << num_vars);
       ++assignment) {
    bool all = true;
    for (const Clause& clause : clauses) {
      bool any = false;
      for (const Lit lit : clause) {
        const bool value = ((assignment >> lit.var()) & 1) != 0;
        if (value != lit.sign()) any = true;
      }
      if (!any) {
        all = false;
        break;
      }
    }
    if (all) return false;
  }
  return true;
}

TEST(SolverProof, EveryRandomUnsatAnswerCarriesACheckableProof) {
  util::Xoshiro256 rng(2718);
  int unsat_seen = 0;
  for (int round = 0; round < 60; ++round) {
    constexpr int kVars = 9;
    ProofLog log;
    Solver solver;
    solver.set_proof_listener(&log);
    for (int v = 0; v < kVars; ++v) solver.new_var();
    std::vector<Clause> clauses;
    for (int c = 0; c < 48; ++c) {
      Clause clause;
      for (int k = 0; k < 3; ++k) {
        clause.emplace_back(static_cast<Var>(rng.next_below(kVars)),
                            rng.next_bool());
      }
      clauses.push_back(clause);
      solver.add_clause(clause);
    }
    const SolveResult result = solver.solve();
    ASSERT_EQ(result == SolveResult::kUnsat,
              brute_force_unsat(kVars, clauses));
    if (result != SolveResult::kUnsat) continue;
    unsat_seen++;
    ASSERT_EQ(log.marks().size(), 1u);
    ASSERT_EQ(log.formula().size(), clauses.size());
    EXPECT_TRUE(log.marks()[0].assumptions.empty());
    DratChecker checker;
    std::string error;
    EXPECT_TRUE(checker.check(log.formula(), log.drat().data(),
                              log.marks()[0].proof_bytes, &error))
        << "round " << round << ": " << error;
  }
  // 48 random ternary clauses over 9 vars are nearly always UNSAT; the
  // contract test is vacuous if none were.
  EXPECT_GT(unsat_seen, 30);
}

TEST(SolverProof, IncrementalAssumptionUnsatMarksAreEachCheckable) {
  // BMC-style usage: one solver, growing formula, one assumption per solve.
  // Every kUnsat answer must snapshot a (formula, proof, assumption) triple
  // the checker accepts in isolation.
  util::Xoshiro256 rng(3141);
  ProofLog log;
  Solver solver;
  solver.set_proof_listener(&log);
  constexpr int kVars = 12;
  for (int v = 0; v < kVars; ++v) solver.new_var();

  std::vector<ProofLog::UnsatMark> unsat_marks;
  for (int stage = 0; stage < 6; ++stage) {
    for (int c = 0; c < 14; ++c) {
      Clause clause;
      for (int k = 0; k < 3; ++k) {
        clause.emplace_back(static_cast<Var>(rng.next_below(kVars)),
                            rng.next_bool());
      }
      solver.add_clause(clause);
    }
    const Lit assumption(static_cast<Var>(stage % kVars), stage % 2 == 0);
    solver.solve({assumption});
    if (solver.is_trivially_unsat()) break;
  }
  for (const auto& mark : log.marks()) {
    std::vector<Clause> formula(
        log.formula().begin(),
        log.formula().begin() + static_cast<std::ptrdiff_t>(
                                    mark.formula_clauses));
    for (const Lit lit : mark.assumptions) formula.push_back({lit});
    DratChecker checker;
    std::string error;
    EXPECT_TRUE(
        checker.check(formula, log.drat().data(), mark.proof_bytes, &error))
        << error;
  }
}

TEST(SolverProof, DroppingEachAdditionNeverBreaksTheCheckerAndSomeAreCore) {
  // Take a real solver proof that needed search, then knock out one 'a'
  // record at a time. The checker must stay well-behaved on every mutant,
  // and if the original proof had a non-empty core, at least one knockout
  // must be rejected (the dropped-learned-clause mutation of the issue).
  ProofLog log;
  Solver solver;
  solver.set_proof_listener(&log);
  // 4-variable pigeonhole-flavored instance: 2 holes, 3 pigeons encoded
  // directly as pairwise-exclusion clauses — UNSAT and propagation-free.
  // p_i_h = pigeon i in hole h; vars: (i,h) -> 2i+h for i in 0..2.
  auto var = [](int pigeon, int hole) {
    return static_cast<Var>(pigeon * 2 + hole);
  };
  for (int v = 0; v < 6; ++v) solver.new_var();
  std::vector<Clause> clauses;
  for (int pigeon = 0; pigeon < 3; ++pigeon) {
    clauses.push_back({pos(var(pigeon, 0)), pos(var(pigeon, 1))});
  }
  for (int hole = 0; hole < 2; ++hole) {
    for (int a = 0; a < 3; ++a) {
      for (int b = a + 1; b < 3; ++b) {
        clauses.push_back({neg(var(a, hole)), neg(var(b, hole))});
      }
    }
  }
  for (const Clause& clause : clauses) solver.add_clause(clause);
  ASSERT_EQ(solver.solve(), SolveResult::kUnsat);

  DratChecker checker;
  std::string error;
  ASSERT_TRUE(checker.check(log.formula(), log.drat(), &error)) << error;
  ASSERT_GT(checker.stats().checked_additions, 0u);

  std::vector<DratStep> steps;
  ASSERT_TRUE(parse_drat(log.drat().data(), log.drat().size(), steps, &error));
  int rejected = 0;
  for (std::size_t drop = 0; drop < steps.size(); ++drop) {
    if (steps[drop].is_delete) continue;
    std::vector<std::uint8_t> mutant;
    for (std::size_t i = 0; i < steps.size(); ++i) {
      if (i == drop) continue;
      append_drat_record(mutant,
                         steps[i].is_delete ? kDratDelete : kDratAdd,
                         steps[i].clause);
    }
    DratChecker mutant_checker;
    if (!mutant_checker.check(log.formula(), mutant, &error)) rejected++;
  }
  EXPECT_GT(rejected, 0);
}

}  // namespace
}  // namespace trojanscout::proof
