// Audit daemon tests: an in-process AuditDaemon on a temp Unix socket must
// serve submitted jobs with DetectionReport signatures byte-identical to a
// direct ParallelDetector run over the same files, answer warm re-submits
// entirely from the shared verdict cache, respond to ping/stats, reject
// malformed jobs with an error response (connection stays usable), and
// shut down cleanly from both a client op and a server-side stop().
//
// Every leg that can block on daemon I/O (socket reads, wait(), joins) runs
// under run_leg(): a worker thread plus a condition-variable wait with a
// hard timeout. A deadlocked daemon then fails the suite with a diagnostic
// in seconds instead of hanging a TSan CI job until the outer timeout.
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <cmath>

#include "cache/verdict_cache.hpp"
#include "core/parallel_detector.hpp"
#include "designs/catalog.hpp"
#include "proof/json.hpp"
#include "service/client.hpp"
#include "service/daemon.hpp"
#include "service/exposition.hpp"
#include "service/protocol.hpp"
#include "service/telemetry_wire.hpp"
#include "specdsl/specdsl.hpp"
#include "telemetry/registry.hpp"
#include "verilog/reader.hpp"
#include "verilog/writer.hpp"

namespace trojanscout::service {
namespace {

namespace fs = std::filesystem;

/// Hard ceiling per blocking leg. Generous: the slowest leg is a cold
/// 2-job audit (~1 s release, several seconds under TSan); a leg that is
/// still blocked after two minutes is deadlocked, not slow.
constexpr std::chrono::seconds kLegTimeout{120};

/// Runs `body` on a worker thread and waits on a condition variable with
/// kLegTimeout. On timeout the worker is stuck in a blocking call that
/// nothing will interrupt, so the only useful move is to fail the whole
/// binary loudly — _Exit beats a silent CI hang.
void run_leg(const char* what, const std::function<void()>& body) {
  std::mutex mutex;
  std::condition_variable cv;
  bool done = false;
  std::thread worker([&] {
    body();
    {
      std::lock_guard<std::mutex> lock(mutex);
      done = true;
    }
    cv.notify_all();
  });
  std::unique_lock<std::mutex> lock(mutex);
  if (!cv.wait_for(lock, kLegTimeout, [&] { return done; })) {
    std::cerr << "FATAL: test leg '" << what << "' still blocked after "
              << kLegTimeout.count() << "s — daemon deadlock\n";
    std::_Exit(2);
  }
  lock.unlock();
  worker.join();
}

constexpr const char* kMc8051Spec =
    "register sp\n"
    "  way \"Reset\"     : reset == 1 -> const 0x07\n"
    "  way \"LCALL\"     : phase == 1 && opcode == 0x12 -> add 1\n"
    "  way \"RET\"       : phase == 1 && opcode == 0x22 -> sub 1\n"
    "  way \"MOV SP,#d\" : phase == 1 && opcode == 0x75 -> code_operand\n";

/// Work area holding the socket, the cache, and the design/spec files the
/// daemon loads by path.
struct ServiceFixture {
  ServiceFixture() {
    char tmpl[] = "/tmp/ts_service_test_XXXXXX";
    dir = ::mkdtemp(tmpl);
    socket_path = dir + "/daemon.sock";
    design_path = dir + "/mc8051.v";
    spec_path = dir + "/mc8051_sp.spec";
    const designs::Design design = designs::build_clean("mc8051");
    std::ofstream vs(design_path);
    verilog::write_verilog(vs, design.nl, design.name);
    std::ofstream ss(spec_path);
    ss << kMc8051Spec;
  }
  ~ServiceFixture() {
    std::error_code ec;
    fs::remove_all(dir, ec);
  }

  AuditJob job(std::size_t frames = 6) const {
    AuditJob j;
    j.id = "test-job";
    j.design_path = design_path;
    j.spec_path = spec_path;
    j.frames = frames;
    return j;
  }

  /// What the daemon must match: a direct parallel audit of the same files.
  std::string direct_signature(const AuditJob& j) const {
    designs::Design design;
    design.name = "design";
    std::ifstream in(j.design_path);
    design.nl = verilog::read_verilog(in);
    design.nl.validate();
    design.spec = specdsl::load_spec_file(design.nl, j.spec_path);
    for (const auto& reg_spec : design.spec.registers) {
      design.critical_registers.push_back(reg_spec.reg);
    }
    core::ParallelDetectorOptions options;
    options.detector = j.detector_options();
    options.jobs = 2;
    return core::ParallelDetector(design, options).run().signature();
  }

  std::string dir;
  std::string socket_path;
  std::string design_path;
  std::string spec_path;
};

TEST(AuditDaemon, SubmittedJobMatchesDirectAuditSignature) {
  ServiceFixture fx;
  AuditDaemon::Options options;
  options.endpoint = fx.socket_path;
  options.jobs = 2;
  AuditDaemon daemon(options);
  daemon.start();

  const AuditJob job = fx.job();
  std::size_t obligation_lines = 0;
  SubmitResult result;
  run_leg("submit", [&] {
    Client client(fx.socket_path);
    result =
        submit_audit(client, job, [&obligation_lines](const proof::Json& r) {
          const proof::Json* type = r.find("type");
          if (type != nullptr && type->is_string() &&
              type->as_string() == "obligation") {
            obligation_lines++;
          }
        });
  });
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_FALSE(result.trojan_found);
  EXPECT_EQ(result.signature, fx.direct_signature(job));
  EXPECT_GT(result.obligations, 0u);
  EXPECT_EQ(obligation_lines, result.obligations)
      << "every obligation must stream one response line";
  EXPECT_EQ(result.computed, result.obligations);

  daemon.stop();
  EXPECT_FALSE(fs::exists(fx.socket_path)) << "stop() must unlink the socket";
  EXPECT_EQ(daemon.jobs_completed(), 1u);
}

TEST(AuditDaemon, WarmResubmitIsServedEntirelyFromTheCache) {
  ServiceFixture fx;
  cache::VerdictCache cache({fx.dir + "/cache", cache::CacheMode::kReadWrite,
                             /*max_bytes=*/0});
  AuditDaemon::Options options;
  options.endpoint = fx.socket_path;
  options.jobs = 2;
  options.cache = &cache;
  AuditDaemon daemon(options);
  daemon.start();

  const AuditJob job = fx.job();
  SubmitResult cold;
  SubmitResult warm;
  run_leg("cold submit", [&] {
    Client client(fx.socket_path);
    cold = submit_audit(client, job);
  });
  run_leg("warm submit", [&] {
    Client client(fx.socket_path);
    warm = submit_audit(client, job);
  });
  daemon.stop();

  ASSERT_TRUE(cold.ok) << cold.error;
  ASSERT_TRUE(warm.ok) << warm.error;
  EXPECT_EQ(cold.cache_hits, 0u);
  EXPECT_EQ(cold.computed, cold.obligations);
  EXPECT_EQ(warm.cache_hits, warm.obligations)
      << "warm batch must perform zero engine runs";
  EXPECT_EQ(warm.computed, 0u);
  EXPECT_EQ(warm.signature, cold.signature);

  // Jobs with a different bound ask a different question — key must differ.
  EXPECT_EQ(cache.stats().misses, cold.obligations);
}

TEST(AuditDaemon, AnswersPingAndStatsAndErrorsKeepTheConnectionUsable) {
  ServiceFixture fx;
  AuditDaemon::Options options;
  options.endpoint = fx.socket_path;
  options.jobs = 1;
  AuditDaemon daemon(options);
  daemon.start();

  run_leg("ping/error/stats conversation", [&] {
    Client client(fx.socket_path);
    proof::Json response;

    client.send_line(control_request_line("ping"));
    ASSERT_TRUE(client.read_response(response));
    EXPECT_EQ(response.find("type")->as_string(), "pong");

    client.send_line("this is not json");
    ASSERT_TRUE(client.read_response(response));
    EXPECT_EQ(response.find("type")->as_string(), "error");

    client.send_line("{\"op\":\"audit\",\"design\":\"\",\"spec\":\"\"}");
    ASSERT_TRUE(client.read_response(response));
    EXPECT_EQ(response.find("type")->as_string(), "error");

    // A job whose design file does not exist fails that job, not the
    // daemon.
    AuditJob bad = fx.job();
    bad.design_path = fx.dir + "/missing.v";
    const SubmitResult result = submit_audit(client, bad);
    EXPECT_FALSE(result.ok);
    EXPECT_FALSE(result.error.empty());

    client.send_line(control_request_line("stats"));
    ASSERT_TRUE(client.read_response(response));
    EXPECT_EQ(response.find("type")->as_string(), "stats");
    ASSERT_NE(response.find("jobs_completed"), nullptr);

    // The connection survived all of the above: a real job still works.
    const SubmitResult good = submit_audit(client, fx.job());
    ASSERT_TRUE(good.ok) << good.error;
    EXPECT_EQ(good.signature, fx.direct_signature(fx.job()));
  });

  daemon.stop();
}

TEST(AuditDaemon, TcpEndpointWithEphemeralPortServesJobs) {
  ServiceFixture fx;
  AuditDaemon::Options options;
  options.endpoint = "tcp:127.0.0.1:0";
  options.jobs = 2;
  AuditDaemon daemon(options);
  daemon.start();
  // The kernel-assigned port must be visible so clients can attach.
  const std::string endpoint = daemon.bound_endpoint();
  EXPECT_EQ(endpoint.rfind("tcp:127.0.0.1:", 0), 0u) << endpoint;
  EXPECT_NE(endpoint, "tcp:127.0.0.1:0");

  const AuditJob job = fx.job();
  SubmitResult result;
  run_leg("tcp submit", [&] {
    Client client(endpoint);
    result = submit_audit(client, job);
  });
  daemon.stop();
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.signature, fx.direct_signature(job));
}

TEST(AuditDaemon, RejectsOversizedAndNonUtf8LinesWithoutClosing) {
  ServiceFixture fx;
  AuditDaemon::Options options;
  options.endpoint = fx.socket_path;
  options.jobs = 1;
  AuditDaemon daemon(options);
  daemon.start();

  run_leg("robustness conversation", [&] {
    Client client(fx.socket_path);
    proof::Json response;

    // A line past the 1 MiB cap is answered with a structured error and
    // discarded; the connection must stay usable.
    client.send_line(std::string((1 << 20) + 64, 'x'));
    ASSERT_TRUE(client.read_response(response));
    EXPECT_EQ(response.find("type")->as_string(), "error");
    EXPECT_EQ(response.find("code")->as_string(), "line_too_long");

    // Invalid UTF-8 never reaches the JSON parser.
    client.send_line("{\"op\": \"ping\xFF\xFE\"}");
    ASSERT_TRUE(client.read_response(response));
    EXPECT_EQ(response.find("type")->as_string(), "error");
    EXPECT_EQ(response.find("code")->as_string(), "bad_utf8");

    client.send_line(control_request_line("stats"));
    ASSERT_TRUE(client.read_response(response));
    EXPECT_EQ(response.find("type")->as_string(), "stats");
    ASSERT_NE(response.find("bad_requests"), nullptr);
    EXPECT_GE(response.find("bad_requests")->as_int(), 2);

    // The same connection still serves a real job afterwards.
    const SubmitResult result = submit_audit(client, fx.job());
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.signature, fx.direct_signature(fx.job()));
  });
  daemon.stop();
}

TEST(AuditDaemon, TcpRejectsBadLinesAndCountsThemOnce) {
  ServiceFixture fx;
  AuditDaemon::Options options;
  options.endpoint = "tcp:127.0.0.1:0";
  options.jobs = 1;
  AuditDaemon daemon(options);
  daemon.start();  // also enables the global telemetry registry

  telemetry::Registry& registry = telemetry::Registry::global();
  const auto counter_of = [&registry](const char* name) {
    for (const auto& counter : registry.snapshot().counters) {
      if (counter.name == name) return counter.value;
    }
    return std::uint64_t{0};
  };
  const std::uint64_t rejected_before = counter_of("service.bad_request");

  run_leg("tcp robustness conversation", [&] {
    Client client(daemon.bound_endpoint());
    proof::Json response;

    // Oversized and non-UTF8 lines must draw the same structured errors
    // over TCP as over a Unix socket (the framing layer is shared, but a
    // TCP read can split the oversized line across many segments).
    client.send_line(std::string((1 << 20) + 64, 'x'));
    ASSERT_TRUE(client.read_response(response));
    EXPECT_EQ(response.find("type")->as_string(), "error");
    EXPECT_EQ(response.find("code")->as_string(), "line_too_long");

    client.send_line("{\"op\": \"ping\xFF\xFE\"}");
    ASSERT_TRUE(client.read_response(response));
    EXPECT_EQ(response.find("type")->as_string(), "error");
    EXPECT_EQ(response.find("code")->as_string(), "bad_utf8");

    // The stats reply identifies the process and carries a full registry
    // snapshot; its bad_requests tally and the service.bad_request counter
    // share one accounting path, so they must agree exactly.
    client.send_line(control_request_line("stats"));
    ASSERT_TRUE(client.read_response(response));
    EXPECT_EQ(response.find("type")->as_string(), "stats");
    ASSERT_NE(response.find("pid"), nullptr);
    EXPECT_EQ(response.find("pid")->as_int(),
              static_cast<std::int64_t>(::getpid()));
    ASSERT_NE(response.find("uptime_s"), nullptr);
    EXPECT_GE(response.find("uptime_s")->as_double(), 0.0);
    ASSERT_NE(response.find("bad_requests"), nullptr);
    EXPECT_EQ(response.find("bad_requests")->as_int(), 2);
    const proof::Json* snapshot = response.find("telemetry");
    ASSERT_NE(snapshot, nullptr);
    telemetry::Registry::Snapshot parsed;
    std::string error;
    ASSERT_TRUE(snapshot_from_json(*snapshot, parsed, &error)) << error;

    // The connection survived both rejections.
    const SubmitResult result = submit_audit(client, fx.job());
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.signature, fx.direct_signature(fx.job()));
  });
  const std::uint64_t rejected_after = counter_of("service.bad_request");
  EXPECT_EQ(rejected_after - rejected_before, 2u)
      << "each rejected line bumps service.bad_request exactly once";
  daemon.stop();
}

/// Upper bucket edge (µs) of the q-quantile sample: the log2 histogram
/// cannot say more precisely than "which bucket", which is exactly what
/// the merge must preserve.
std::uint64_t quantile_bucket_us(
    const telemetry::Registry::HistogramValue& hist, double q) {
  if (hist.count == 0) return 0;
  const auto rank = static_cast<std::uint64_t>(
      q * static_cast<double>(hist.count - 1));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < hist.buckets.size(); ++b) {
    seen += hist.buckets[b];
    if (seen > rank) return std::uint64_t{1} << b;
  }
  return std::uint64_t{1} << (hist.buckets.size() - 1);
}

TEST(TelemetryWire, SnapshotRoundTripsThroughJsonText) {
  telemetry::Registry::Snapshot snapshot;
  snapshot.counters = {{"cache.hits", 7}, {"fleet.jobs", 0}};
  telemetry::Registry::HistogramValue hist;
  hist.name = "engine.solve";
  hist.count = 3;
  hist.sum_seconds = 0.75;
  hist.min_seconds = 0.001;
  hist.max_seconds = 0.5;
  hist.buckets[10] = 2;
  hist.buckets[19] = 1;
  snapshot.histograms = {hist};

  // Full wire cycle: object → text → object, as between two processes.
  proof::Json parsed;
  std::string error;
  ASSERT_TRUE(
      proof::Json::parse(snapshot_to_json(snapshot).dump(), parsed, &error))
      << error;
  telemetry::Registry::Snapshot back;
  ASSERT_TRUE(snapshot_from_json(parsed, back, &error)) << error;

  ASSERT_EQ(back.counters.size(), 2u);
  EXPECT_EQ(back.counters[0].name, "cache.hits");
  EXPECT_EQ(back.counters[0].value, 7u);
  EXPECT_EQ(back.counters[1].name, "fleet.jobs");
  EXPECT_EQ(back.counters[1].value, 0u);
  ASSERT_EQ(back.histograms.size(), 1u);
  EXPECT_EQ(back.histograms[0].name, "engine.solve");
  EXPECT_EQ(back.histograms[0].count, 3u);
  EXPECT_DOUBLE_EQ(back.histograms[0].sum_seconds, 0.75);
  EXPECT_DOUBLE_EQ(back.histograms[0].min_seconds, 0.001);
  EXPECT_DOUBLE_EQ(back.histograms[0].max_seconds, 0.5);
  EXPECT_EQ(back.histograms[0].buckets, hist.buckets);

  // Malformed documents are rejected, not half-parsed.
  proof::Json bad;
  ASSERT_TRUE(proof::Json::parse(
      R"({"counters": {}, "histograms": {"h": {"count": 1, "sum_s": 0.1,
          "min_s": 0.1, "max_s": 0.1, "buckets": [1, 2, 3]}}})",
      bad, &error))
      << error;
  telemetry::Registry::Snapshot rejected;
  EXPECT_FALSE(snapshot_from_json(bad, rejected, &error))
      << "a 3-bucket histogram must not pass for a 40-bucket one";
}

TEST(TelemetryWire, MergedQuantilesEqualQuantilesOfBucketWiseSum) {
  using Histogram = telemetry::Registry::HistogramValue;
  // Adversarial shapes: one worker's mass entirely sub-microsecond, one a
  // sparse spike at the top bucket, one bimodal, one empty. Any
  // approximate merge (sampling, dropping sparse tails, re-bucketing)
  // breaks the tail quantiles here.
  Histogram low;
  low.name = "engine.solve";
  low.count = 1000;
  low.sum_seconds = 0.001;
  low.min_seconds = 1e-7;
  low.max_seconds = 9e-7;
  low.buckets[0] = 1000;
  Histogram spike;
  spike.name = "engine.solve";
  spike.count = 5;
  spike.sum_seconds = 5000.0;
  spike.min_seconds = 900.0;
  spike.max_seconds = 1100.0;
  spike.buckets[30] = 5;
  Histogram bimodal;
  bimodal.name = "engine.solve";
  bimodal.count = 60;
  bimodal.sum_seconds = 2.0;
  bimodal.min_seconds = 5e-6;
  bimodal.max_seconds = 0.08;
  bimodal.buckets[3] = 30;
  bimodal.buckets[17] = 30;
  Histogram empty;
  empty.name = "engine.solve";

  telemetry::Registry::Snapshot merged;
  for (const Histogram& hist : {low, spike, bimodal, empty}) {
    telemetry::Registry::Snapshot worker;
    worker.histograms = {hist};
    merge_snapshot(merged, worker);
  }

  Histogram expected;
  expected.name = "engine.solve";
  for (const Histogram& hist : {low, spike, bimodal, empty}) {
    expected.count += hist.count;
    expected.sum_seconds += hist.sum_seconds;
    for (std::size_t b = 0; b < expected.buckets.size(); ++b) {
      expected.buckets[b] += hist.buckets[b];
    }
  }

  ASSERT_EQ(merged.histograms.size(), 1u);
  const Histogram& got = merged.histograms[0];
  EXPECT_EQ(got.count, expected.count);
  EXPECT_EQ(got.buckets, expected.buckets)
      << "the merge must be the exact bucket-wise sum";
  EXPECT_DOUBLE_EQ(got.sum_seconds, expected.sum_seconds);
  EXPECT_DOUBLE_EQ(got.min_seconds, 1e-7) << "min of populated histograms";
  EXPECT_DOUBLE_EQ(got.max_seconds, 1100.0) << "max of populated histograms";
  for (const double q : {0.0, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    EXPECT_EQ(quantile_bucket_us(got, q), quantile_bucket_us(expected, q))
        << "quantile q=" << q;
  }
  // Spot-check against hand-computed ranks: 1000 of 1065 samples are
  // sub-µs, so the median is bucket 0; the 99.9th percentile is the
  // 5-sample spike at bucket 30.
  EXPECT_EQ(quantile_bucket_us(got, 0.5), 1u);
  EXPECT_EQ(quantile_bucket_us(got, 0.999), std::uint64_t{1} << 30);
}

TEST(AuditDaemon, ClientShutdownOpStopsTheDaemon) {
  ServiceFixture fx;
  AuditDaemon::Options options;
  options.endpoint = fx.socket_path;
  options.jobs = 1;
  AuditDaemon daemon(options);
  daemon.start();

  run_leg("shutdown op", [&] {
    std::thread waiter([&daemon] { daemon.wait(); });
    {
      Client client(fx.socket_path);
      client.send_line(control_request_line("shutdown"));
      proof::Json response;
      ASSERT_TRUE(client.read_response(response));
      EXPECT_EQ(response.find("type")->as_string(), "bye");
    }
    waiter.join();  // wait() returns once the shutdown op lands
  });
  daemon.stop();
  EXPECT_FALSE(daemon.running());
}

TEST(AuditDaemon, StopWakesAnIdleConnection) {
  ServiceFixture fx;
  AuditDaemon::Options options;
  options.endpoint = fx.socket_path;
  options.jobs = 1;
  AuditDaemon daemon(options);
  daemon.start();
  // An idle client blocked in the daemon's read() must not hang stop().
  Client client(fx.socket_path);
  run_leg("stop with idle connection", [&] { daemon.stop(); });
  EXPECT_FALSE(daemon.running());
}

TEST(AuditDaemon, ConcurrentConnectionsAllMatchTheDirectSignature) {
  ServiceFixture fx;
  cache::VerdictCache cache({fx.dir + "/cache", cache::CacheMode::kReadWrite,
                             /*max_bytes=*/0});
  AuditDaemon::Options options;
  options.endpoint = fx.socket_path;
  options.jobs = 2;
  options.cache = &cache;
  AuditDaemon daemon(options);
  daemon.start();

  const AuditJob job = fx.job();
  const std::string expected = fx.direct_signature(job);
  constexpr int kClients = 4;
  std::vector<SubmitResult> results(kClients);
  run_leg("concurrent submits", [&] {
    std::vector<std::thread> threads;
    threads.reserve(kClients);
    for (int i = 0; i < kClients; ++i) {
      threads.emplace_back([&fx, &job, &results, i] {
        Client client(fx.socket_path);
        results[i] = submit_audit(client, job);
      });
    }
    for (auto& t : threads) t.join();
  });
  daemon.stop();

  std::uint64_t computed = 0;
  for (const auto& result : results) {
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.signature, expected);
    computed += result.computed;
  }
  // Identical concurrent jobs share engine runs (in-flight dedupe) or hit
  // the cache; each obligation is computed at most once.
  const std::uint64_t obligations = results[0].obligations;
  EXPECT_EQ(computed, obligations)
      << "in-flight dedupe must compute each obligation exactly once";
  EXPECT_EQ(daemon.jobs_completed(), static_cast<std::uint64_t>(kClients));
}

// ---- Prometheus exposition (the `metrics` verb's wire format) ------------

TEST(Exposition, RenderedDocumentParsesBackExactly) {
  telemetry::Registry registry;
  registry.set_enabled(true);
  registry.add(registry.counter("cache.hit"), 42);
  const telemetry::MetricId solve = registry.histogram("solve");
  registry.record_seconds(solve, 0.001);
  registry.record_seconds(solve, 0.004);

  const std::vector<ExtraCounter> extra = {{"service.jobs_completed", 7}};
  const std::vector<GaugeSample> gauges = {
      {"trojanscout_worker_up", 1.0, {{"worker", "w0"}}},
      {"trojanscout_worker_up", 0.0, {{"worker", "w1"}}},
      {"trojanscout_queue_depth", 3.0, {}},
  };
  const std::string text =
      to_prometheus_text(registry.snapshot(), extra, gauges);

  ParsedExposition parsed;
  std::string error;
  ASSERT_TRUE(parse_prometheus_text(text, parsed, &error)) << error;

  // Counters go through the sanitize/prefix/suffix mapping.
  EXPECT_EQ(parsed.counters.at("trojanscout_cache_hit_total"), 42u);
  EXPECT_EQ(parsed.counters.at("trojanscout_service_jobs_completed_total"),
            7u);

  // The parser keeps the first sample of a labelled gauge family and the
  // family only carries one TYPE line for both workers.
  EXPECT_EQ(parsed.gauges.at("trojanscout_worker_up"), 1.0);
  EXPECT_EQ(parsed.gauges.at("trojanscout_queue_depth"), 3.0);

  const auto& hist = parsed.histograms.at("trojanscout_solve_seconds");
  EXPECT_EQ(hist.count, 2u);
  EXPECT_NEAR(hist.sum_seconds, 0.005, 1e-9);
  ASSERT_FALSE(hist.buckets.empty());
  // Bucket bounds are strictly increasing and counts cumulative; the
  // closing bucket is +Inf and equals _count.
  for (std::size_t i = 1; i < hist.buckets.size(); ++i) {
    EXPECT_LT(hist.buckets[i - 1].first, hist.buckets[i].first);
    EXPECT_LE(hist.buckets[i - 1].second, hist.buckets[i].second);
  }
  EXPECT_TRUE(std::isinf(hist.buckets.back().first));
  EXPECT_EQ(hist.buckets.back().second, hist.count);

  // Determinism: the identical snapshot renders byte-identically.
  EXPECT_EQ(text, to_prometheus_text(registry.snapshot(), extra, gauges));
}

TEST(Exposition, ParserRejectsMalformedDocuments) {
  const auto rejects = [](const std::string& text) {
    ParsedExposition parsed;
    std::string error;
    const bool ok = parse_prometheus_text(text, parsed, &error);
    EXPECT_FALSE(ok) << "accepted:\n" << text;
    if (!ok) EXPECT_FALSE(error.empty());
    return !ok;
  };

  // Sample before its TYPE line.
  EXPECT_TRUE(rejects("trojanscout_x_total 1\n"));
  // Duplicate TYPE for the same family.
  EXPECT_TRUE(
      rejects("# TYPE trojanscout_x_total counter\n"
              "trojanscout_x_total 1\n"
              "# TYPE trojanscout_x_total counter\n"
              "trojanscout_x_total 2\n"));
  // Histogram buckets must be cumulative.
  EXPECT_TRUE(
      rejects("# TYPE trojanscout_h_seconds histogram\n"
              "trojanscout_h_seconds_bucket{le=\"0.001\"} 5\n"
              "trojanscout_h_seconds_bucket{le=\"0.002\"} 3\n"
              "trojanscout_h_seconds_bucket{le=\"+Inf\"} 5\n"
              "trojanscout_h_seconds_sum 0.01\n"
              "trojanscout_h_seconds_count 5\n"));
  // The +Inf bucket must equal _count.
  EXPECT_TRUE(
      rejects("# TYPE trojanscout_h_seconds histogram\n"
              "trojanscout_h_seconds_bucket{le=\"0.001\"} 4\n"
              "trojanscout_h_seconds_bucket{le=\"+Inf\"} 4\n"
              "trojanscout_h_seconds_sum 0.01\n"
              "trojanscout_h_seconds_count 5\n"));
}

TEST(TelemetryWire, MergeSnapshotEdgeCases) {
  telemetry::Registry empty_a;
  telemetry::Registry empty_b;
  empty_a.set_enabled(true);
  empty_b.set_enabled(true);

  // empty + empty stays empty.
  telemetry::Registry::Snapshot into = empty_a.snapshot();
  merge_snapshot(into, empty_b.snapshot());
  EXPECT_TRUE(into.counters.empty());
  EXPECT_TRUE(into.histograms.empty());

  // Merging into an empty snapshot copies the source exactly.
  telemetry::Registry source;
  source.set_enabled(true);
  source.add(source.counter("x"), 3);
  source.record_seconds(source.histogram("h"), 0.002);
  merge_snapshot(into, source.snapshot());
  ASSERT_EQ(into.counters.size(), 1u);
  EXPECT_EQ(into.counters[0].name, "x");
  EXPECT_EQ(into.counters[0].value, 3u);
  ASSERT_EQ(into.histograms.size(), 1u);
  EXPECT_EQ(into.histograms[0].count, 1u);

  // Disjoint names interleave sorted; shared names sum.
  telemetry::Registry other;
  other.set_enabled(true);
  other.add(other.counter("w"), 1);
  other.add(other.counter("x"), 2);
  other.record_seconds(other.histogram("h"), 0.008);
  merge_snapshot(into, other.snapshot());
  ASSERT_EQ(into.counters.size(), 2u);
  EXPECT_EQ(into.counters[0].name, "w");
  EXPECT_EQ(into.counters[0].value, 1u);
  EXPECT_EQ(into.counters[1].name, "x");
  EXPECT_EQ(into.counters[1].value, 5u);
  ASSERT_EQ(into.histograms.size(), 1u);
  EXPECT_EQ(into.histograms[0].count, 2u);
  EXPECT_NEAR(into.histograms[0].sum_seconds, 0.010, 1e-9);
  EXPECT_NEAR(into.histograms[0].min_seconds, 0.002, 1e-9);
  EXPECT_NEAR(into.histograms[0].max_seconds, 0.008, 1e-9);
}

TEST(AuditDaemon, MetricsVerbRendersExpositionConsistentWithStats) {
  ServiceFixture fx;
  AuditDaemon::Options options;
  options.endpoint = fx.socket_path;
  options.jobs = 2;
  options.sample_interval_ms = 25;
  AuditDaemon daemon(options);
  daemon.start();

  proof::Json stats;
  proof::Json metrics;
  run_leg("submit + stats + metrics conversation", [&] {
    Client client(fx.socket_path);
    const SubmitResult result = submit_audit(client, fx.job());
    ASSERT_TRUE(result.ok) << result.error;

    client.send_line(control_request_line("stats"));
    ASSERT_TRUE(client.read_response(stats));
    client.send_line(control_request_line("metrics"));
    ASSERT_TRUE(client.read_response(metrics));
  });
  daemon.stop();

  ASSERT_EQ(stats.find("type")->as_string(), "stats");
  ASSERT_EQ(metrics.find("type")->as_string(), "metrics");
  EXPECT_EQ(metrics.find("content_type")->as_string(),
            "text/plain; version=0.0.4");

  ParsedExposition parsed;
  std::string error;
  ASSERT_NE(metrics.find("body"), nullptr);
  ASSERT_TRUE(parse_prometheus_text(metrics.find("body")->as_string(), parsed,
                                    &error))
      << error;

  // Daemon-level extra counters agree with the stats reply.
  const auto jobs = static_cast<std::uint64_t>(
      stats.find("jobs_completed")->as_int());
  EXPECT_EQ(jobs, 1u);
  EXPECT_EQ(parsed.counters.at("trojanscout_service_jobs_completed_total"),
            jobs);

  // Registry counters agree: both replies read the same (idle) registry.
  telemetry::Registry::Snapshot snapshot;
  ASSERT_NE(stats.find("telemetry"), nullptr);
  ASSERT_TRUE(snapshot_from_json(*stats.find("telemetry"), snapshot, &error))
      << error;
  for (const auto& counter : snapshot.counters) {
    if (counter.name != "engine.runs") continue;
    EXPECT_EQ(parsed.counters.at("trojanscout_engine_runs_total"),
              counter.value);
  }

  // Liveness gauges.
  EXPECT_EQ(parsed.gauges.at("trojanscout_up"), 1.0);
  EXPECT_GE(parsed.gauges.at("trojanscout_uptime_seconds"), 0.0);
  // The last obligation's pool task may still be retiring when the job
  // reply lands, so the depth is 0 or a small residue — never negative.
  EXPECT_GE(parsed.gauges.at("trojanscout_queue_depth"), 0.0);
  EXPECT_LE(parsed.gauges.at("trojanscout_queue_depth"), 2.0);
  EXPECT_GE(parsed.gauges.at("trojanscout_sampler_last_sample_age_seconds"),
            0.0);

  // The background sampler ran: uptime_ms + sampler block + series array.
  ASSERT_NE(stats.find("uptime_ms"), nullptr);
  const proof::Json* sampler = stats.find("sampler");
  ASSERT_NE(sampler, nullptr);
  EXPECT_TRUE(sampler->find("enabled")->as_bool());
  EXPECT_EQ(sampler->find("interval_ms")->as_double(), 25.0);
  EXPECT_GE(sampler->find("samples")->as_int(), 1);
  const proof::Json* series = stats.find("series");
  ASSERT_NE(series, nullptr);
  EXPECT_TRUE(series->is_array());
}

}  // namespace
}  // namespace trojanscout::service
