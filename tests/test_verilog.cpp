// Verilog writer/reader tests: structural content and behavioural
// round-trip equivalence (write → read → co-simulate).
#include <gtest/gtest.h>

#include "designs/mc8051.hpp"
#include "netlist/wordops.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "verilog/reader.hpp"
#include "verilog/writer.hpp"

namespace trojanscout::verilog {
namespace {

using netlist::Netlist;
using netlist::SignalId;
using netlist::Word;

Netlist small_design() {
  Netlist nl;
  const Word a = nl.add_input_port("a", 4);
  const Word b = nl.add_input_port("b", 4);
  const SignalId sel = nl.add_input_port("sel", 1)[0];
  const Word sum = netlist::w_add(nl, a, b);
  const Word muxed = netlist::w_mux(nl, sel, sum, netlist::w_xor(nl, a, b));
  const Word reg = netlist::w_make_register(nl, "acc", 4, 0x5);
  netlist::w_connect(nl, reg, muxed);
  nl.add_output_port("q", reg);
  nl.add_output_port("direct", muxed);
  return nl;
}

TEST(VerilogWriter, EmitsModuleStructure) {
  const Netlist nl = small_design();
  const std::string text = to_verilog_string(nl, "dut");
  EXPECT_NE(text.find("module dut (clk, a, b, sel, q, direct);"),
            std::string::npos);
  EXPECT_NE(text.find("input [3:0] a;"), std::string::npos);
  EXPECT_NE(text.find("output [3:0] q;"), std::string::npos);
  EXPECT_NE(text.find("always @(posedge clk)"), std::string::npos);
  EXPECT_NE(text.find("// @register acc"), std::string::npos);
  EXPECT_NE(text.find("endmodule"), std::string::npos);
}

TEST(VerilogRoundTrip, BehaviouralEquivalence) {
  const Netlist original = small_design();
  const Netlist reread = read_verilog_string(to_verilog_string(original, "dut"));
  ASSERT_TRUE(reread.has_register("acc"));
  reread.validate();

  sim::Simulator s1(original);
  sim::Simulator s2(reread);
  util::Xoshiro256 rng(77);
  for (int t = 0; t < 50; ++t) {
    const std::uint64_t a = rng.next_below(16);
    const std::uint64_t b = rng.next_below(16);
    const std::uint64_t sel = rng.next_below(2);
    for (auto* s : {&s1, &s2}) {
      s->set_input_port("a", a);
      s->set_input_port("b", b);
      s->set_input_port("sel", sel);
      s->step();
    }
    EXPECT_EQ(s1.read_output("q"), s2.read_output("q")) << "cycle " << t;
    EXPECT_EQ(s1.read_output("direct"), s2.read_output("direct"));
  }
}

TEST(VerilogRoundTrip, FullCpuCoreSurvives) {
  const designs::Design design = designs::build_mc8051({});
  const Netlist reread =
      read_verilog_string(to_verilog_string(design.nl, "mc8051"));
  reread.validate();
  ASSERT_TRUE(reread.has_register("sp"));

  sim::Simulator s1(design.nl);
  sim::Simulator s2(reread);
  util::Xoshiro256 rng(99);
  for (int t = 0; t < 60; ++t) {
    const std::uint64_t op = rng.next_below(256);
    const std::uint64_t operand = rng.next_below(256);
    for (auto* s : {&s1, &s2}) {
      s->set_input_port("reset", t == 0 ? 1 : 0);
      s->set_input_port("code_op", op);
      s->set_input_port("code_operand", operand);
      s->set_input_port("uart_rx", operand ^ 0x55);
      s->set_input_port("xram_in", op ^ 0x0F);
      s->set_input_port("int_req", t % 7 == 0 ? 1 : 0);
      s->step();
    }
    EXPECT_EQ(s1.read_register("sp"), s2.read_register("sp")) << "t=" << t;
    EXPECT_EQ(s1.read_register("acc"), s2.read_register("acc"));
    EXPECT_EQ(s1.read_output("pc_out"), s2.read_output("pc_out"));
  }
}

TEST(VerilogReader, RejectsMalformedInput) {
  EXPECT_THROW(read_verilog_string("assign x = y &; "), std::runtime_error);
  EXPECT_THROW(read_verilog_string("input [x:0] p;\n"), std::runtime_error);
  EXPECT_THROW(read_verilog_string("assign a = unknown_net;\n"),
               std::runtime_error);
}

}  // namespace
}  // namespace trojanscout::verilog
