// Baseline tests: FANCI and VeriTrust must (a) catch the naive Trojan
// variants they were designed for, and (b) miss the DeTrust-hardened
// benchmark Trojans — reproducing Table 1's "No" columns and the premise of
// the paper.
#include <gtest/gtest.h>

#include "baselines/fanci.hpp"
#include "baselines/salmani.hpp"
#include "baselines/veritrust.hpp"
#include "baselines/workloads.hpp"
#include "designs/aes.hpp"
#include "designs/catalog.hpp"
#include "designs/mc8051.hpp"
#include "designs/risc.hpp"

namespace trojanscout::baselines {
namespace {

/// True if any flagged suspect is a Trojan gate of the design.
template <typename Report>
bool flags_trojan(const designs::Design& design, const Report& report) {
  for (const auto& suspect : report.suspects) {
    if (design.is_trojan_gate(suspect.signal)) return true;
  }
  return false;
}

FanciOptions fast_fanci() {
  FanciOptions options;
  options.samples = 2048;
  return options;
}

TEST(Fanci, FlagsTheNaiveMc8051Trojan) {
  designs::Mc8051Options options;
  options.trojan = designs::Mc8051Trojan::kT700;
  options.detrust_hardened = false;
  const designs::Design design = designs::build_mc8051(options);
  const FanciReport report = run_fanci(design.nl, fast_fanci());
  EXPECT_TRUE(flags_trojan(design, report))
      << "a 24-bit combinational comparator must have vanishing control "
         "values";
}

TEST(Fanci, MissesTheHardenedMc8051Trojans) {
  for (const auto trojan : {designs::Mc8051Trojan::kT400,
                            designs::Mc8051Trojan::kT700,
                            designs::Mc8051Trojan::kT800}) {
    designs::Mc8051Options options;
    options.trojan = trojan;
    const designs::Design design = designs::build_mc8051(options);
    const FanciReport report = run_fanci(design.nl, fast_fanci());
    EXPECT_FALSE(flags_trojan(design, report))
        << "trojan variant " << static_cast<int>(trojan);
  }
}

TEST(Fanci, MissesTheHardenedRiscTrojan) {
  designs::RiscOptions options;
  options.trojan = designs::RiscTrojan::kT100;
  options.trigger_count = 25;
  const designs::Design design = designs::build_risc(options);
  const FanciReport report = run_fanci(design.nl, fast_fanci());
  EXPECT_FALSE(flags_trojan(design, report));
}

TEST(Fanci, FlagsNaiveAesComparatorButNotHardenedScan) {
  designs::AesOptions naive;
  naive.trojan = designs::AesTrojan::kT700;
  naive.detrust_hardened = false;
  const designs::Design naive_design = designs::build_aes(naive);
  EXPECT_TRUE(flags_trojan(naive_design, run_fanci(naive_design.nl, fast_fanci())));

  designs::AesOptions hardened;
  hardened.trojan = designs::AesTrojan::kT700;
  const designs::Design hardened_design = designs::build_aes(hardened);
  EXPECT_FALSE(
      flags_trojan(hardened_design, run_fanci(hardened_design.nl, fast_fanci())));
}

TEST(Fanci, CleanDesignHasBoundedSuspectRate) {
  // FANCI famously has false positives on rare-decode logic; sanity-bound
  // the rate rather than expecting zero.
  const designs::Design design = designs::build_clean("mc8051");
  const FanciReport report = run_fanci(design.nl, fast_fanci());
  EXPECT_LT(report.suspects.size(), report.wires_analyzed / 5);
}

// ---- VeriTrust ---------------------------------------------------------------

TEST(VeriTrust, FlagsTheNaiveMc8051Trojan) {
  designs::Mc8051Options options;
  options.trojan = designs::Mc8051Trojan::kT700;
  options.detrust_hardened = false;
  const designs::Design design = designs::build_mc8051(options);
  const auto frames = generate_workload(design.nl, "mc8051", 20000, 42);
  const VeriTrustReport report = run_veritrust(design.nl, frames);
  EXPECT_TRUE(flags_trojan(design, report))
      << "the secret comparator chain is dormant under functional stimuli";
}

TEST(VeriTrust, MissesTheHardenedMc8051Trojans) {
  for (const auto trojan : {designs::Mc8051Trojan::kT400,
                            designs::Mc8051Trojan::kT700,
                            designs::Mc8051Trojan::kT800}) {
    designs::Mc8051Options options;
    options.trojan = trojan;
    const designs::Design design = designs::build_mc8051(options);
    const auto frames = generate_workload(design.nl, "mc8051", 20000, 42);
    const VeriTrustReport report = run_veritrust(design.nl, frames);
    EXPECT_FALSE(flags_trojan(design, report))
        << "trojan variant " << static_cast<int>(trojan);
  }
}

TEST(VeriTrust, MissesTheHardenedRiscTrojans) {
  for (const auto trojan :
       {designs::RiscTrojan::kT100, designs::RiscTrojan::kT300,
        designs::RiscTrojan::kT400}) {
    designs::RiscOptions options;
    options.trojan = trojan;
    options.trigger_count = 25;
    const designs::Design design = designs::build_risc(options);
    const auto frames = generate_workload(design.nl, "risc", 20000, 42);
    const VeriTrustReport report = run_veritrust(design.nl, frames);
    EXPECT_FALSE(flags_trojan(design, report))
        << "trojan variant " << static_cast<int>(trojan);
  }
}

TEST(VeriTrust, MissesTheHardenedAesTrojans) {
  for (const auto trojan :
       {designs::AesTrojan::kT700, designs::AesTrojan::kT800,
        designs::AesTrojan::kT1200}) {
    designs::AesOptions options;
    options.trojan = trojan;
    const designs::Design design = designs::build_aes(options);
    const auto frames = generate_workload(design.nl, "aes", 4000, 42);
    const VeriTrustReport report = run_veritrust(design.nl, frames);
    EXPECT_FALSE(flags_trojan(design, report))
        << "trojan variant " << static_cast<int>(trojan);
  }
}

// ---- Salmani (controllability) ------------------------------------------------

TEST(Salmani, FlagsTheNaiveComparatorButNotTheHardenedTrojan) {
  designs::Mc8051Options naive;
  naive.trojan = designs::Mc8051Trojan::kT700;
  naive.detrust_hardened = false;
  const designs::Design naive_design = designs::build_mc8051(naive);
  EXPECT_TRUE(flags_trojan(naive_design, run_salmani(naive_design.nl)))
      << "a 24-bit secret comparator is essentially uncontrollable-to-1";

  designs::Mc8051Options hardened;
  hardened.trojan = designs::Mc8051Trojan::kT700;
  const designs::Design hardened_design = designs::build_mc8051(hardened);
  EXPECT_FALSE(flags_trojan(hardened_design, run_salmani(hardened_design.nl)));
}

TEST(Salmani, CleanDesignsHaveABoundedSuspectRate) {
  // Like FANCI, testability analysis flags legitimate deep logic (carry
  // chains, wide decodes); the realistic claim is a bounded triage list,
  // not zero false positives.
  const designs::Design design = designs::build_clean("mc8051");
  const auto report = run_salmani(design.nl);
  EXPECT_LT(report.suspects.size(), report.signals_analyzed / 5);
}

TEST(Workloads, Mc8051WorkloadKeepsTheCoreBusy) {
  const designs::Design design = designs::build_clean("mc8051");
  const auto frames = generate_workload(design.nl, "mc8051", 100, 7);
  EXPECT_EQ(frames.size(), 100u);
  // Reset bit must stay low everywhere.
  const auto& reset_port = design.nl.input_port("reset");
  const std::size_t reset_index = design.nl.input_index(reset_port.bits[0]);
  for (const auto& frame : frames) {
    EXPECT_FALSE(frame.get(reset_index));
  }
}

TEST(Workloads, UnknownFamilyThrows) {
  const designs::Design design = designs::build_clean("mc8051");
  EXPECT_THROW(generate_workload(design.nl, "z80", 10, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace trojanscout::baselines
