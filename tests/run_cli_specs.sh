#!/bin/sh
# Integration test for the spec-file path on the RISC core: audit the
# generated Verilog against specs/risc_sp.spec, confirm the contract scopes
# to the stack pointer (a program-counter Trojan stays invisible to it),
# and require warm verdict-cache re-audits to be hit-only with a
# byte-identical report signature.
set -e
CLI="$1"
SPEC_DIR="$2"
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

"$CLI" gen --family=risc --out="$WORK/risc.v"
"$CLI" info --design="$WORK/risc.v" | grep -q "registers:.*stack_pointer"

# Clean core satisfies the Table 2 stack-pointer contract.
"$CLI" audit --design="$WORK/risc.v" --spec="$SPEC_DIR/risc_sp.spec" \
  --frames=24 > "$WORK/clean.log"
grep -q "No data-corruption Trojan" "$WORK/clean.log"

# One register checks out via the single-property path too.
"$CLI" check --design="$WORK/risc.v" --spec="$SPEC_DIR/risc_sp.spec" \
  --register=stack_pointer --frames=24 | grep -q "clean"

# RISC-T100 corrupts the program counter; the stack-pointer spec must not
# (and cannot) flag it — specs scope the audit to the registers they cover.
"$CLI" gen --family=risc --trojan=RISC-T100 --out="$WORK/t100.v"
"$CLI" audit --design="$WORK/t100.v" --spec="$SPEC_DIR/risc_sp.spec" \
  --frames=24 > "$WORK/t100.log"
grep -q "No data-corruption Trojan" "$WORK/t100.log"

# Verdict cache: a cold audit stores every obligation, the warm re-audit
# answers them all from disk (zero misses) with the same report signature.
"$CLI" audit --design="$WORK/risc.v" --spec="$SPEC_DIR/risc_sp.spec" \
  --frames=24 --cache-dir="$WORK/cache" --signature-out="$WORK/sig_cold" \
  > "$WORK/cold.log"
grep -q "cache (rw .*): 0 hits" "$WORK/cold.log"
"$CLI" audit --design="$WORK/risc.v" --spec="$SPEC_DIR/risc_sp.spec" \
  --frames=24 --cache-dir="$WORK/cache" --signature-out="$WORK/sig_warm" \
  > "$WORK/warm.log"
grep -q "hits, 0 misses, 0 stores" "$WORK/warm.log"
cmp "$WORK/sig_cold" "$WORK/sig_warm" || {
  echo "warm cache signature differs from cold run"; exit 1; }

# A different bound is a different question: the warm entry must NOT hit.
"$CLI" audit --design="$WORK/risc.v" --spec="$SPEC_DIR/risc_sp.spec" \
  --frames=12 --cache-dir="$WORK/cache" > "$WORK/other.log"
grep -q "cache (rw .*): 0 hits" "$WORK/other.log"

echo "cli specs OK"
